(* B14: the enumeration/evaluation kernel — sequential throughput of the
   single-closure backtracking enumerator and the compiled predicate
   evaluator against the pre-kernel reference pipeline, with the
   deterministic outputs pinned alongside the timings. Writes
   BENCH_core.json.

   Two workloads:
   - modelcheck: Modelcheck.verify over the B12 universe tier (the
     standard T2 sizes plus (4,2)/(4,3)/(3,4); --deep switches to the
     full deep tier). The "reference" arm re-enacts the pre-kernel
     pipeline from public API: materialized permutations enumeration
     (Enumerate.runs_ref), a second from-scratch closure per run
     (Run.Abstract.create), the scalar limit checks (check_causal /
     check_sync) and the interpreting evaluator (Eval.satisfies_ref).
     The "kernel" arm is Modelcheck.verify itself. Counts and lemma
     verdicts must agree between the arms and be byte-identical at
     every job count of the sweep.
   - eval: every Catalog predicate evaluated over every abstract run at
     (3 procs, 3 msgs), compiled-plan vs reference-interpreter arms;
     per-predicate violation counts pinned.
   - sym (B18): the symmetry-quotiented enumerator (Modelcheck.verify
     ~sym:true) against the concrete kernel on the same tier, verdicts
     byte-identical between the arms and across the jobs sweep, plus
     the vast tier (77,830,564 orbit-expanded runs) walked quotiented
     only, its exact cardinalities pinned as integer gate keys.

   Timing keys follow the gate's conventions: wall_s (lower is better),
   throughput (higher is better), kernel_speedup / sym_speedup (higher
   is better — the acceptance bars are >= 3x kernel_speedup for the
   modelcheck workload and >= 5x sym_speedup on the deep tier). *)

open Mo_order
open Mo_core

let j_int i = Mo_obs.Jsonb.Int i
let j_str s = Mo_obs.Jsonb.String s
let j_bool b = Mo_obs.Jsonb.Bool b
let j_float f = Mo_obs.Jsonb.Float f

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let universe_sizes ~deep =
  if deep then Modelcheck.deep_sizes
  else Modelcheck.standard_sizes @ [ (4, 2); (4, 3); (3, 4) ]

(* ---- the pre-kernel reference pipeline --------------------------- *)

(* the old Run.to_abstract: rebuild the closure from scratch out of the
   program-order chains (Abstract.create adds the x.s ▷ x.r edges) *)
let abstract_ref run =
  let nmsgs = Run.nmsgs run in
  let attrs =
    Array.init nmsgs (fun m ->
        Run.attrs_known ~src:(Run.msg_src run m) ~dst:(Run.msg_dst run m) ())
  in
  let edges = ref [] in
  for p = 0 to Run.nprocs run - 1 do
    let rec chain = function
      | a :: (b :: _ as rest) ->
          edges := (a, b) :: !edges;
          chain rest
      | [ _ ] | [] -> ()
    in
    chain (Run.sequence run p)
  done;
  Run.Abstract.create_exn ~nmsgs ~attrs !edges

type ref_acc = {
  r_runs : int;
  r_causal : int;
  r_sync : int;
  r_ok : bool; (* conjunction of all three lemma verdict families *)
}

let reference_verify sizes =
  let b1 = Catalog.causal_b1.Catalog.pred
  and b2 = Catalog.causal_b2.Catalog.pred
  and b3 = Catalog.causal_b3.Catalog.pred
  and asyncs =
    List.map (fun (e : Catalog.entry) -> e.Catalog.pred) Catalog.async_forms
  in
  let step acc run =
    let r = abstract_ref run in
    let causal = Result.is_ok (Limits.check_causal r)
    and sync = Result.is_ok (Limits.check_sync r) in
    let s2 = Eval.satisfies_ref b2 r in
    {
      r_runs = acc.r_runs + 1;
      r_causal = (acc.r_causal + if causal then 1 else 0);
      r_sync = (acc.r_sync + if sync then 1 else 0);
      r_ok =
        acc.r_ok
        && ((not sync) || causal)
        && Eval.satisfies_ref b1 r = s2
        && Eval.satisfies_ref b3 r = s2
        && s2 = causal
        && List.for_all (fun p -> Eval.satisfies_ref p r) asyncs;
    }
  in
  List.fold_left
    (fun acc (nprocs, nmsgs) ->
      List.fold_left
        (fun acc msgs ->
          List.fold_left step acc (Enumerate.runs_ref ~nprocs ~msgs))
        acc
        (Enumerate.configs ~nprocs ~nmsgs ()))
    { r_runs = 0; r_causal = 0; r_sync = 0; r_ok = true }
    sizes

(* ---- workload 1: the model checker ------------------------------- *)

let verdict_json (v : Modelcheck.verdict) =
  Mo_obs.Jsonb.Obj
    [
      ("runs", j_int v.Modelcheck.counts.Modelcheck.runs);
      ("causal", j_int v.Modelcheck.counts.Modelcheck.causal);
      ("sync", j_int v.Modelcheck.counts.Modelcheck.sync);
      ("ok", j_bool (Modelcheck.ok v));
    ]

let bench_modelcheck ~deep ~jobs_list =
  let sizes = universe_sizes ~deep in
  Format.printf "@.-- modelcheck (%d sizes)@." (List.length sizes);
  let ref_acc, ref_wall = time (fun () -> reference_verify sizes) in
  let kern, kern_wall =
    time (fun () ->
        Modelcheck.verify ~pool:(Mo_par.Pool.create ~jobs:1 ()) ~sizes ())
  in
  (* the two pipelines must tell the same story before timing means
     anything *)
  if
    ref_acc.r_runs <> kern.Modelcheck.counts.Modelcheck.runs
    || ref_acc.r_causal <> kern.Modelcheck.counts.Modelcheck.causal
    || ref_acc.r_sync <> kern.Modelcheck.counts.Modelcheck.sync
    || ref_acc.r_ok <> Modelcheck.ok kern
  then failwith "core bench: reference and kernel pipelines disagree";
  (* byte-identical results at every job count *)
  let base = Mo_obs.Jsonb.to_string (verdict_json kern) in
  List.iter
    (fun jobs ->
      let v =
        Modelcheck.verify ~pool:(Mo_par.Pool.create ~jobs ()) ~sizes ()
      in
      if Mo_obs.Jsonb.to_string (verdict_json v) <> base then
        failwith
          (Printf.sprintf "core bench: verdict at %d jobs differs from jobs=1"
             jobs))
    (List.filter (fun j -> j <> 1) jobs_list);
  let runs = float_of_int ref_acc.r_runs in
  let speedup = ref_wall /. kern_wall in
  Format.printf
    "  reference: %7.3f s  %9.0f runs/s@.  kernel:    %7.3f s  %9.0f \
     runs/s@.  kernel speedup %.2fx  (results identical at jobs %s)@."
    ref_wall (runs /. ref_wall) kern_wall (runs /. kern_wall) speedup
    (String.concat "," (List.map string_of_int jobs_list));
  if speedup < 3.0 then
    Format.printf "  WARNING: kernel speedup below the 3x acceptance bar@.";
  ( "modelcheck",
    Mo_obs.Jsonb.Obj
      [
        ("result", verdict_json kern);
        ( "jobs_checked",
          Mo_obs.Jsonb.List (List.map j_int jobs_list) );
        ( "timings",
          Mo_obs.Jsonb.Obj
            [
              ( "reference",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float ref_wall);
                    ("throughput", j_float (runs /. ref_wall));
                  ] );
              ( "kernel",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float kern_wall);
                    ("throughput", j_float (runs /. kern_wall));
                  ] );
              ("kernel_speedup", j_float speedup);
            ] );
      ] )

(* ---- workload 2: predicate evaluation ---------------------------- *)

let eval_repeat = 5

let bench_eval () =
  let runs = Enumerate.abstract_runs ~nprocs:3 ~nmsgs:3 () in
  let entries = Catalog.all in
  let nevals =
    List.length runs * List.length entries * eval_repeat
  in
  Format.printf "@.-- eval (%d runs x %d predicates x %d passes)@."
    (List.length runs) (List.length entries) eval_repeat;
  (* per-predicate violation counts: the deterministic output both arms
     must agree on *)
  let count holds_of =
    List.map
      (fun (e : Catalog.entry) ->
        let holds = holds_of e.Catalog.pred in
        ( e.Catalog.name,
          List.fold_left (fun n r -> if holds r then n + 1 else n) 0 runs ))
      entries
  in
  let timed holds_of =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to eval_repeat do
          last := count holds_of
        done;
        !last)
  in
  let ref_counts, ref_wall = timed (fun p -> Eval.holds_ref p) in
  let kern_counts, kern_wall =
    timed (fun p ->
        let c = Eval.compile p in
        fun r -> Eval.holds_c c r)
  in
  if ref_counts <> kern_counts then
    failwith "core bench: compiled evaluator disagrees with the reference";
  let evals = float_of_int nevals in
  let speedup = ref_wall /. kern_wall in
  Format.printf
    "  reference: %7.3f s  %9.0f evals/s@.  kernel:    %7.3f s  %9.0f \
     evals/s@.  kernel speedup %.2fx@."
    ref_wall (evals /. ref_wall) kern_wall (evals /. kern_wall) speedup;
  ( "eval",
    Mo_obs.Jsonb.Obj
      [
        ( "result",
          Mo_obs.Jsonb.Obj
            [
              ("runs", j_int (List.length runs));
              ("predicates", j_int (List.length entries));
              ( "violations",
                Mo_obs.Jsonb.Obj
                  (List.map (fun (n, c) -> (n, j_int c)) kern_counts) );
            ] );
        ( "timings",
          Mo_obs.Jsonb.Obj
            [
              ( "reference",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float ref_wall);
                    ("throughput", j_float (evals /. ref_wall));
                  ] );
              ( "kernel",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float kern_wall);
                    ("throughput", j_float (evals /. kern_wall));
                  ] );
              ("kernel_speedup", j_float speedup);
            ] );
      ] )

(* ---- workload 3 (B18): the symmetry-quotiented kernel ------------- *)

(* B18: Modelcheck.verify with ~sym:true — one canonical representative
   per process/message symmetry orbit, counts expanded by exact orbit
   sizes, decided subtrees pruned (DESIGN.md §3j) — against the concrete
   kernel on the same tier. The verdicts must be byte-identical between
   the arms and across the jobs sweep; the acceptance bar is
   sym_speedup >= 5x on the deep tier. The vast tier (deep + the
   5-process/5-message sizes, 77,830,564 orbit-expanded runs, ~83x deep)
   is only ever walked quotiented; its cardinalities are pinned as exact
   integer gate keys. *)
let bench_sym ~deep ~jobs_list =
  let sizes = universe_sizes ~deep in
  Format.printf "@.-- sym (%d sizes%s + vast)@." (List.length sizes)
    (if deep then ", deep" else "");
  let kern, kern_wall =
    time (fun () ->
        Modelcheck.verify ~pool:(Mo_par.Pool.create ~jobs:1 ()) ~sizes ())
  in
  let sym, sym_wall =
    time (fun () ->
        Modelcheck.verify
          ~pool:(Mo_par.Pool.create ~jobs:1 ())
          ~sym:true ~sizes ())
  in
  let base = Mo_obs.Jsonb.to_string (verdict_json kern) in
  if Mo_obs.Jsonb.to_string (verdict_json sym) <> base then
    failwith "core bench: sym verdict differs from the concrete kernel";
  List.iter
    (fun jobs ->
      let v =
        Modelcheck.verify
          ~pool:(Mo_par.Pool.create ~jobs ())
          ~sym:true ~sizes ()
      in
      if Mo_obs.Jsonb.to_string (verdict_json v) <> base then
        failwith
          (Printf.sprintf
             "core bench: sym verdict at %d jobs differs from jobs=1" jobs))
    (List.filter (fun j -> j <> 1) jobs_list);
  let runs = float_of_int kern.Modelcheck.counts.Modelcheck.runs in
  let speedup = kern_wall /. sym_wall in
  Format.printf
    "  concrete:  %7.3f s  %9.0f runs/s@.  sym:       %7.3f s  %9.0f \
     runs/s (orbit-expanded)@.  sym speedup %.2fx  (verdicts identical at \
     jobs %s)@."
    kern_wall (runs /. kern_wall) sym_wall (runs /. sym_wall) speedup
    (String.concat "," (List.map string_of_int jobs_list));
  if deep && speedup < 5.0 then
    Format.printf "  WARNING: sym speedup below the 5x deep-tier bar@.";
  let vast, vast_wall =
    time (fun () ->
        Modelcheck.verify
          ~pool:(Mo_par.Pool.create ~jobs:1 ())
          ~sym:true ~sizes:Modelcheck.vast_sizes ())
  in
  if not (Modelcheck.ok vast) then
    failwith "core bench: vast-tier lemma identities failed";
  let vruns = float_of_int vast.Modelcheck.counts.Modelcheck.runs in
  Format.printf
    "  vast:      %7.3f s  %9.0f runs/s  (%d orbit-expanded runs over %d \
     sizes)@."
    vast_wall (vruns /. vast_wall) vast.Modelcheck.counts.Modelcheck.runs
    (List.length Modelcheck.vast_sizes);
  ( "sym",
    Mo_obs.Jsonb.Obj
      [
        ("result", verdict_json sym);
        ( "vast",
          Mo_obs.Jsonb.Obj
            [
              ("sizes", j_int (List.length Modelcheck.vast_sizes));
              ("runs", j_int vast.Modelcheck.counts.Modelcheck.runs);
              ("causal", j_int vast.Modelcheck.counts.Modelcheck.causal);
              ("sync", j_int vast.Modelcheck.counts.Modelcheck.sync);
              ("ok", j_bool (Modelcheck.ok vast));
            ] );
        ("jobs_checked", Mo_obs.Jsonb.List (List.map j_int jobs_list));
        ( "timings",
          Mo_obs.Jsonb.Obj
            [
              ( "concrete",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float kern_wall);
                    ("throughput", j_float (runs /. kern_wall));
                  ] );
              ( "sym",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float sym_wall);
                    ("throughput", j_float (runs /. sym_wall));
                  ] );
              ("sym_speedup", j_float speedup);
              ( "vast",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float vast_wall);
                    ("throughput", j_float (vruns /. vast_wall));
                  ] );
            ] );
      ] )

(* ---- entry point ------------------------------------------------- *)

let summary ?(deep = false) ?(jobs_list = [ 1; 2; 4 ]) () =
  Format.printf
    "@.%s@.== B14+B18: enumeration + evaluation kernel throughput%s@.%s@."
    (String.make 74 '=')
    (if deep then " (deep universe)" else "")
    (String.make 74 '=');
  let modelcheck = bench_modelcheck ~deep ~jobs_list in
  let eval = bench_eval () in
  let sym = bench_sym ~deep ~jobs_list in
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "host",
          Mo_obs.Jsonb.Obj
            [
              ("ocaml", j_str Sys.ocaml_version);
              ("domains", j_bool Mo_par.available);
              ("cores", j_int (Mo_par.recommended_jobs ()));
            ] );
        ("deep", j_bool deep);
        ("workloads", Mo_obs.Jsonb.Obj [ modelcheck; eval; sym ]);
      ]
  in
  let oc = open_out "BENCH_core.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  kernel results written to BENCH_core.json@."
