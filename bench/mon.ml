(* B15: streaming predicate monitors — aggregate events/sec of the
   keyed, domain-sharded monitor driver, with the memory ceiling and the
   seeded verdicts pinned alongside the timings. Writes BENCH_mon.json.

   The workload is Mo_workload.Stream's synthetic keyed traffic: [nkeys]
   ordering keys (50k in CI, 1M with --soak), 24 messages / 48 events
   each, 5% delivery disorder, one compiled FIFO monitor per key with a
   16-slot window — above the in-flight bound, so retirement is
   exercised on every key. Deterministic outputs, gated exactly:

   - the total violation count (a pure function of the seed);
   - the per-monitor resident frontier bytes, which every key must agree
     on (the monitor's state is sized by (window, nprocs) only);
   - frontier_bounded: the same frontier on a 10x longer stream — the
     bounded-memory claim of DESIGN.md §3h as a bit;
   - an MD5 over the per-key reports, computed at every job count of the
     sweep — sharding may not change a byte.

   Timing keys follow the gate's conventions: wall_s lower-is-better,
   throughput (events/sec) higher-is-better, compared only across
   same-core hosts. The EXPERIMENTS.md acceptance bar is >= 1M
   events/sec aggregate at the best sweep point. *)

open Mo_core

let j_int i = Mo_obs.Jsonb.Int i
let j_str s = Mo_obs.Jsonb.String s
let j_bool b = Mo_obs.Jsonb.Bool b
let j_float f = Mo_obs.Jsonb.Float f

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let fifo_src = "x.s < y.s & y.r < x.r & src(x) = src(y)"
let seed = 17
let window = 16
let profile = { Mo_workload.Stream.default_profile with disorder = 0.05 }

(* the reports are the deterministic artifact: fingerprint them so the
   sweep can assert byte-identity without holding every array *)
let digest_reports reports =
  let buf = Buffer.create (Array.length reports * 24) in
  Array.iter
    (fun (r : Mo_workload.Stream.report) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d:%d:%s;" r.key r.events r.frontier_bytes
           (match r.verdict with
           | None -> "-"
           | Some v ->
               Printf.sprintf "%d@[%s]" v.Pmon.at
                 (String.concat ","
                    (List.map string_of_int (Array.to_list v.Pmon.witness))))))
    reports;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let summary ?(soak = false) ?(jobs_list = [ 1; 2; 4 ]) () =
  Format.printf
    "@.%s@.== B15: streaming monitor throughput (keyed, sharded)%s@.%s@."
    (String.make 74 '=')
    (if soak then " (soak)" else "")
    (String.make 74 '=');
  let nkeys = if soak then 1_000_000 else 50_000 in
  let pred = Eval.compile (Parse.predicate_exn fifo_src) in
  let run jobs =
    let pool = Mo_par.Pool.create ~jobs () in
    time (fun () ->
        Mo_workload.Stream.monitor_keys ~pool ~pred ~window ~profile ~nkeys
          ~seed ())
  in
  let sweep =
    List.map
      (fun jobs ->
        let reports, wall = run jobs in
        (jobs, reports, wall))
      jobs_list
  in
  let reports, _ =
    match sweep with
    | (_, r, w) :: _ -> (r, w)
    | [] -> failwith "mon bench: empty jobs sweep"
  in
  let digest = digest_reports reports in
  List.iter
    (fun (jobs, r, _) ->
      if digest_reports r <> digest then
        failwith
          (Printf.sprintf "mon bench: reports at %d jobs differ from jobs=%d"
             jobs (match sweep with (j, _, _) :: _ -> j | [] -> 0)))
    sweep;
  let events =
    Array.fold_left
      (fun acc (r : Mo_workload.Stream.report) -> acc + r.events)
      0 reports
  in
  let violations = Mo_workload.Stream.violations reports in
  let frontier = reports.(0).Mo_workload.Stream.frontier_bytes in
  if
    not
      (Array.for_all
         (fun (r : Mo_workload.Stream.report) -> r.frontier_bytes = frontier)
         reports)
  then failwith "mon bench: frontier bytes differ across keys";
  (* the bounded-memory claim: a 10x longer stream through the same
     window leaves the same resident frontier *)
  let long =
    let pool = Mo_par.Pool.create ~jobs:1 () in
    Mo_workload.Stream.monitor_keys ~pool ~pred ~window
      ~profile:{ profile with Mo_workload.Stream.nmsgs = profile.nmsgs * 10 }
      ~nkeys:1 ~seed ()
  in
  let bounded = long.(0).Mo_workload.Stream.frontier_bytes = frontier in
  if not bounded then
    Format.printf "  WARNING: frontier grows with stream length@.";
  let ev = float_of_int events in
  let best =
    List.fold_left (fun acc (_, _, wall) -> max acc (ev /. wall)) 0. sweep
  in
  Format.printf "  %d keys x %d events  (violations %d, frontier %d B)@."
    nkeys
    (2 * profile.Mo_workload.Stream.nmsgs)
    violations frontier;
  List.iter
    (fun (jobs, _, wall) ->
      Format.printf "  jobs %d: %7.3f s  %9.0f events/s@." jobs wall
        (ev /. wall))
    sweep;
  Format.printf "  best %9.0f events/s  (reports identical at jobs %s)@."
    best
    (String.concat "," (List.map string_of_int jobs_list));
  if best < 1e6 then
    Format.printf
      "  WARNING: throughput below the 1M events/sec acceptance bar@.";
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "host",
          Mo_obs.Jsonb.Obj
            [
              ("ocaml", j_str Sys.ocaml_version);
              ("domains", j_bool Mo_par.available);
              ("cores", j_int (Mo_par.recommended_jobs ()));
            ] );
        ("soak", j_bool soak);
        ( "workload",
          Mo_obs.Jsonb.Obj
            [
              ("keys", j_int nkeys);
              ("events_per_key", j_int (2 * profile.Mo_workload.Stream.nmsgs));
              ("events", j_int events);
              ("window", j_int window);
              ("predicate", j_str fifo_src);
            ] );
        ( "result",
          Mo_obs.Jsonb.Obj
            [
              ("violations", j_int violations);
              ("frontier_bytes_per_monitor", j_int frontier);
              ("frontier_bounded", j_bool bounded);
              ("report_digest", j_str digest);
            ] );
        ( "sweep",
          Mo_obs.Jsonb.Obj
            (List.map
               (fun (jobs, _, wall) ->
                 ( string_of_int jobs,
                   Mo_obs.Jsonb.Obj
                     [
                       ("wall_s", j_float wall);
                       ("throughput", j_float (ev /. wall));
                     ] ))
               sweep) );
        ("throughput", j_float best);
      ]
  in
  let oc = open_out "BENCH_mon.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  monitor results written to BENCH_mon.json@."
