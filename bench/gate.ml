(* The bench-regression gate: compare a fresh BENCH_*.json against the
   committed baseline.

   Usage: gate.exe BASELINE FRESH [--tolerance PCT]

   Two kinds of leaves:
   - deterministic outputs (counts, verdicts, seeded metrics): exact
     equality, any drift is a failure — these are the artifacts the
     paper's tables pin;
   - wall-clock timings (keys wall_s / speedup / efficiency): compared
     with a one-sided tolerance (default 25%: slower-than-baseline by
     more than that fails), and only when both files were produced on a
     host with the same core count — the "host" section is recorded for
     exactly this decision and is otherwise informational.

   Additionally, parallel-scaling expectations — speedup / efficiency
   leaves nested under a numeric job-count key, i.e. inside a --jobs
   sweep — are skipped outright when the BASELINE was recorded on a
   1-core host: such a baseline bakes in speedups < 1.0 (domains pay
   overhead with no parallelism to win), which is not an expectation any
   rerun should be held to; the note printed at the end names the full
   path of every leaf skipped this way. Sequential ratios (B13's
   warm/cold cache speedup, B14's kernel_speedup, B18's sym_speedup)
   are not scaling expectations and are always compared. *)

let tolerance = ref 0.25

let fail_count = ref 0
let skip_count = ref 0

(* full paths of the scaling leaves skipped under a 1-core baseline, so
   the note can say which sweep each one belonged to *)
let scaling_skipped : string list ref = ref []

let failure path msg =
  incr fail_count;
  Printf.printf "FAIL %s: %s\n" path msg

let load path =
  let s =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error _ ->
      Printf.eprintf
        "gate: cannot read %s\n\
         If this is a missing baseline, regenerate every BENCH_*.json \
         with\n\
        \  dune exec bench/main.exe -- --repro-only\n\
         and commit the refreshed artifact.\n"
        path;
      exit 2
  in
  match Mo_obs.Jsonb.of_string s with
  | Ok j -> j
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2

let member key = function
  | Mo_obs.Jsonb.Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Mo_obs.Jsonb.Int i -> Some (float_of_int i)
  | Mo_obs.Jsonb.Float f -> Some f
  | _ -> None

(* "bigger is worse" for wall-clock, "smaller is worse" for speedup and
   efficiency; both one-sided, so a faster fresh run never fails *)
let timing_direction key =
  match key with
  | "wall_s" | "first_to_steady_ratio" -> Some `Lower_is_better
  | "speedup" | "efficiency" | "throughput" | "kernel_speedup"
  | "sym_speedup" ->
      Some `Higher_is_better
  | _ -> None

let check_timing ~path ~key base fresh =
  match (to_float base, to_float fresh) with
  | Some b, Some f -> (
      match timing_direction key with
      | Some `Lower_is_better when f > b *. (1. +. !tolerance) ->
          failure path
            (Printf.sprintf "%.4f slower than baseline %.4f (+%.0f%% limit)" f
               b (!tolerance *. 100.))
      | Some `Higher_is_better when f < b /. (1. +. !tolerance) ->
          failure path
            (Printf.sprintf "%.4f below baseline %.4f (-%.0f%% limit)" f b
               (!tolerance *. 100.))
      | _ -> ())
  | _ -> failure path "timing leaf is not numeric"

let is_scaling_key = function
  | "speedup" | "efficiency" -> true
  | _ -> false

(* a sweep point's object is keyed by its job count *)
let is_jobs_key k =
  k <> "" && String.for_all (fun c -> c >= '0' && c <= '9') k

let rec compare_json ?(in_sweep = false) ~timings_comparable
    ~baseline_single_core ~path base fresh =
  let open Mo_obs.Jsonb in
  match (base, fresh) with
  | Obj bf, Obj ff ->
      let bkeys = List.map fst bf and fkeys = List.map fst ff in
      List.iter
        (fun k ->
          if not (List.mem k fkeys) then
            failure (path ^ "." ^ k) "missing from fresh results")
        bkeys;
      List.iter
        (fun k ->
          if not (List.mem k bkeys) then
            failure (path ^ "." ^ k) "not in baseline (new key)")
        fkeys;
      List.iter
        (fun (k, bv) ->
          match List.assoc_opt k ff with
          | None -> ()
          | Some fv -> (
              let sub = path ^ "." ^ k in
              if k = "host" then
                (* informational: recorded so the gate can decide whether
                   the timings are comparable, never a failure *)
                ()
              else
                match timing_direction k with
                | Some _ ->
                    if baseline_single_core && in_sweep && is_scaling_key k
                    then scaling_skipped := sub :: !scaling_skipped
                    else if timings_comparable then
                      check_timing ~path:sub ~key:k bv fv
                    else incr skip_count
                | None ->
                    compare_json
                      ~in_sweep:(in_sweep || is_jobs_key k)
                      ~timings_comparable ~baseline_single_core ~path:sub bv
                      fv))
        bf
  | List bl, List fl ->
      if List.length bl <> List.length fl then
        failure path
          (Printf.sprintf "array length %d -> %d" (List.length bl)
             (List.length fl))
      else
        List.iteri
          (fun i (bv, fv) ->
            compare_json ~in_sweep ~timings_comparable ~baseline_single_core
              ~path:(Printf.sprintf "%s[%d]" path i)
              bv fv)
          (List.combine bl fl)
  | _ ->
      if to_string base <> to_string fresh then
        failure path
          (Printf.sprintf "baseline %s, fresh %s" (to_string base)
             (to_string fresh))

let () =
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> tolerance := t /. 100.
        | _ ->
            prerr_endline "gate: --tolerance expects a percentage";
            exit 2);
        parse rest
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !positional with
  | [ base_path; fresh_path ] ->
      let base = load base_path and fresh = load fresh_path in
      let cores j = member "host" j |> Fun.flip Option.bind (member "cores") in
      let timings_comparable =
        match (cores base, cores fresh) with
        | Some b, Some f -> b = f
        | _ -> false
      in
      let baseline_single_core =
        match cores base with Some (Mo_obs.Jsonb.Int 1) -> true | _ -> false
      in
      compare_json ~timings_comparable ~baseline_single_core ~path:"$" base
        fresh;
      if (not timings_comparable) && !skip_count > 0 then
        Printf.printf
          "note: %d timing comparisons skipped (different host core \
           counts)\n"
          !skip_count;
      (match List.rev !scaling_skipped with
      | [] -> ()
      | skipped ->
          Printf.printf
            "note: %d parallel-scaling comparisons skipped (baseline host \
             has 1 core):\n"
            (List.length skipped);
          List.iter (Printf.printf "  skipped %s\n") skipped);
      if !fail_count = 0 then begin
        Printf.printf "gate ok: %s vs %s\n" base_path fresh_path;
        exit 0
      end
      else begin
        Printf.printf "gate FAILED: %d mismatches\n" !fail_count;
        exit 1
      end
  | _ ->
      prerr_endline "usage: gate BASELINE FRESH [--tolerance PCT]";
      exit 2
