(* B11: the price of reliability — protocol overhead under faults.

   A loss sweep plus a partition scenario, representative protocols
   wrapped in the ack/retransmit recovery layer. The interesting columns
   are the recovery costs (retransmissions, acks, timeouts, recovery
   latency) against the clean-network baseline of B10, and the makespan
   growth as the fault rate climbs. Deterministic seeded output; writes
   BENCH_reliab.json.

   B16: the price of sharing a transport — the same transport-fault
   schedule (a stall window then a crash-restart window, struck at the
   transport carrying channel 0→1) run over the three channel
   topologies. Under per-pair transports the blast radius is one
   channel; under split2 it is half the channels; under shared it is
   every channel at once, so head-of-line waits, crash drops and
   retransmit cost climb as channels pile onto fewer transports. All
   leaves are seeded integers, gated exactly. *)

open Mo_protocol
open Mo_workload

let protocols =
  [
    ("tagless", Tagless.factory);
    ("fifo", Fifo.factory);
    ("causal-rst", Causal_rst.factory);
    ("sync-token", Sync_token.factory);
  ]

let scenarios =
  [
    ("clean", Net.none);
    ("drop50", Net.make ~drop_permille:50 ());
    ("drop100", Net.make ~drop_permille:100 ());
    ("drop200", Net.make ~drop_permille:200 ());
    ( "part+drop",
      Net.make ~drop_permille:100
        ~partitions:
          [ { Net.from_proc = 0; to_proc = 1; start_at = 50; stop_at = 250 } ]
        () );
  ]

let nprocs = 4
let nmsgs = 120
let seed = 42

(* ---- B16: topology sweep under a fixed transport-fault schedule ---- *)

(* every paper protocol under its natural workload — BSS and total order
   are broadcast primitives (every process must see every message), the
   rest run point-to-point, matching the fault-matrix convention *)
let all_protocols =
  [
    ("tagless", Tagless.factory, `Unicast);
    ("fifo", Fifo.factory, `Unicast);
    ("causal-rst", Causal_rst.factory, `Unicast);
    ("causal-ses", Causal_ses.factory, `Unicast);
    ("causal-bss", Causal_bss.factory, `Broadcast);
    ("sync-token", Sync_token.factory, `Unicast);
    ("sync-priority", Sync_priority.factory, `Unicast);
    ("flush", Flush.factory, `Unicast);
    ("total-order", Total_order.factory, `Broadcast);
  ]

let b16_schedule tr =
  (* a stall then a crash-restart, on whichever transport carries channel
     0→1 under the topology at hand — same schedule, different blast
     radius *)
  [
    { Net.transport = tr; kind = Net.T_stall; start_at = 40; stop_at = 90 };
    { Net.transport = tr; kind = Net.T_crash; start_at = 120; stop_at = 160 };
  ]

let b16_topologies ops =
  Format.printf
    "@.-- B16: topology sweep (stall 40-90 + crash 120-160 on the transport \
     of channel 0>1, reliable wrapper)@.";
  let bcast_ops =
    (Gen.broadcast ~nprocs ~nbcasts:(nmsgs / (nprocs - 1)) ~seed).Gen.ops
  in
  let topo_json =
    List.map
      (fun topo ->
        let tname = Transport.topology_to_string topo in
        let tr =
          Transport.transport_of topo ~nprocs ~from_proc:0 ~to_proc:1
        in
        let faults = Net.make ~transport_faults:(b16_schedule tr) () in
        let cfg =
          {
            (Sim.default_config ~nprocs) with
            Sim.seed;
            faults;
            topology = Some topo;
          }
        in
        Format.printf "@.   %s (%d transport%s, faults on transport %d)@."
          tname
          (Transport.ntransports topo ~nprocs)
          (if Transport.ntransports topo ~nprocs = 1 then "" else "s")
          tr;
        Format.printf
          "   %-14s %5s %8s %8s %8s %6s %6s %7s %6s@." "protocol" "live"
          "lat_tot" "lat_max" "makespan" "retx" "drops" "hol" "resync";
        let proto_json =
          List.filter_map
            (fun (pname, factory, shape) ->
              let ops =
                match shape with `Unicast -> ops | `Broadcast -> bcast_ops
              in
              let registry = Mo_obs.Metrics.create () in
              let wrapped = Wrap.reliable ~registry factory in
              match Observe.run ~config:cfg ~registry wrapped ops with
              | Error e ->
                  Format.printf "   %-14s simulation error: %s@." pname e;
                  None
              | Ok (_, outcome) ->
                  let s = outcome.Sim.stats in
                  let tc =
                    match outcome.Sim.transport with
                    | Some ts -> Transport.counters ts
                    | None -> assert false
                  in
                  Format.printf
                    "   %-14s %5s %8d %8d %8d %6d %6d %7d %6d@." pname
                    (if outcome.Sim.all_delivered then "yes" else "NO")
                    s.Sim.latency_total s.Sim.latency_max s.Sim.makespan
                    s.Sim.retransmits s.Sim.fault_drops
                    tc.Transport.hol_released tc.Transport.resyncs;
                  let i k v = (k, Mo_obs.Jsonb.Int v) in
                  Some
                    ( pname,
                      Mo_obs.Jsonb.Obj
                        [
                          i "live" (if outcome.Sim.all_delivered then 1 else 0);
                          i "latency_total" s.Sim.latency_total;
                          i "latency_max" s.Sim.latency_max;
                          i "makespan" s.Sim.makespan;
                          i "retransmits" s.Sim.retransmits;
                          i "fault_drops" s.Sim.fault_drops;
                          i "stall_delays" tc.Transport.stall_delays;
                          i "crash_drops" tc.Transport.crash_drops;
                          i "resyncs" tc.Transport.resyncs;
                          i "hol_released" tc.Transport.hol_released;
                          i "hol_wait_ticks" tc.Transport.hol_wait_ticks;
                        ] ))
            all_protocols
        in
        ( tname,
          Mo_obs.Jsonb.Obj
            [
              ( "transports",
                Mo_obs.Jsonb.Int (Transport.ntransports topo ~nprocs) );
              ("faulted_transport", Mo_obs.Jsonb.Int tr);
              ("faults", Mo_obs.Jsonb.String (Net.to_string faults));
              ("protocols", Mo_obs.Jsonb.Obj proto_json);
            ] ))
      Transport.all_topologies
  in
  Mo_obs.Jsonb.Obj
    [
      ( "schedule",
        Mo_obs.Jsonb.String
          "stall@40-90 + tcrash@120-160 on the transport of channel 0>1" );
      ("topologies", Mo_obs.Jsonb.Obj topo_json);
    ]

let summary () =
  Format.printf
    "@.%s@.== B11: protocol overhead under faults (reliable wrapper, seeded, \
     %d procs, %d msgs)@.%s@."
    (String.make 74 '=') nprocs nmsgs (String.make 74 '=');
  let ops = (Gen.uniform ~nprocs ~nmsgs ~seed).Gen.ops in
  let scenario_json =
    List.filter_map
      (fun (sname, faults) ->
        let cfg = { (Sim.default_config ~nprocs) with Sim.seed; faults } in
        Format.printf "@.-- %s (faults: %s)@." sname (Net.to_string faults);
        let rows =
          List.filter_map
            (fun (pname, factory) ->
              let registry = Mo_obs.Metrics.create () in
              let wrapped = Wrap.reliable ~registry factory in
              match Observe.run ~config:cfg ~registry wrapped ops with
              | Error e ->
                  Format.printf "  %s: simulation error: %s@." pname e;
                  None
              | Ok (registry, outcome) ->
                  if not outcome.Sim.all_delivered then
                    Format.printf "  %s: NOT LIVE under %s@." pname sname;
                  Some (Observe.report_row registry ~factory:wrapped))
            protocols
        in
        Format.printf "%a@." Mo_obs.Report.pp_comparison rows;
        if rows = [] then None
        else
          Some
            ( sname,
              Mo_obs.Jsonb.Obj
                [
                  ("faults", Mo_obs.Jsonb.String (Net.to_string faults));
                  ("metrics", Mo_obs.Report.to_json rows);
                ] ))
      scenarios
  in
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "workload",
          Mo_obs.Jsonb.Obj
            [
              ("name", Mo_obs.Jsonb.String "uniform");
              ("nprocs", Mo_obs.Jsonb.Int nprocs);
              ("nmsgs", Mo_obs.Jsonb.Int nmsgs);
              ("seed", Mo_obs.Jsonb.Int seed);
            ] );
        ("scenarios", Mo_obs.Jsonb.Obj scenario_json);
      ]
  in
  let b16 = b16_topologies ops in
  let json =
    match json with
    | Mo_obs.Jsonb.Obj fields ->
        Mo_obs.Jsonb.Obj (fields @ [ ("b16", b16) ])
    | j -> j
  in
  let oc = open_out "BENCH_reliab.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  fault-overhead metrics written to BENCH_reliab.json@."
