(* B13: the classification service — decision-cache effectiveness on a
   repetitive query stream. Writes BENCH_svc.json.

   The workload models what mopcd actually sees: a modest set of
   distinct specifications queried over and over under different
   variable namings and clause orders. The stream is [distinct]
   predicates x [renamings] random alpha-renamings each, interleaved.
   Two engines answer the identical stream:

   - cold: cache capacity 0 — every request canonicalizes and computes
     (classification, witness construction, payload rendering);
   - warm: the default cache, pre-warmed with one pass — every request
     canonicalizes, then hits.

   The hit/miss counters are a pure function of the seeded stream, so
   the gate compares them exactly; the wall-clock and throughput fields
   are host-dependent timings (the warm/cold throughput ratio is the
   point of the cache: the EXPERIMENTS.md acceptance bar is >= 5x). *)

open Mo_core

let j_int i = Mo_obs.Jsonb.Int i
let j_str s = Mo_obs.Jsonb.String s
let j_bool b = Mo_obs.Jsonb.Bool b
let j_float f = Mo_obs.Jsonb.Float f

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* ---- the query stream -------------------------------------------- *)

let distinct_preds = 12
let renamings = 16

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* a union of [ncycles] random Hamiltonian cycles over one variable
   set: strongly connected, free of same-variable conjuncts, and rich
   in composite simple cycles — the shape on which the classifier's
   cycle enumeration (and hence the cache) actually earns its keep *)
let multi_cycle ~nvars ~ncycles ~seed =
  let rng = Mo_par.rng ~seed ~stream:1 in
  let one_cycle () =
    let perm = Array.init nvars Fun.id in
    shuffle rng perm;
    List.init nvars (fun i ->
        let a = perm.(i) and b = perm.((i + 1) mod nvars) in
        let pt v = if Random.State.bool rng then Term.s v else Term.r v in
        Term.(pt a @> pt b))
  in
  Forbidden.make ~nvars
    (List.concat (List.init ncycles (fun _ -> one_cycle ())))

(* the catalog's shapes, degenerate random ones (mostly settled by
   simplification alone) and hard multi-cycle ones: enough variety to
   exercise every classifier branch, expensive enough in aggregate that
   decision work dominates canonicalization *)
let base_predicates =
  let parsed =
    List.map Parse.predicate_exn
      [
        "x.s < y.s & y.r < x.r";
        "x.s < y.s & y.r < x.r & src(x) = src(y)";
        "x.s < y.r & y.s < x.r";
        "x.r < y.s & y.r < z.s & z.r < x.s";
      ]
  in
  let random =
    List.init 4 (fun i ->
        if i mod 2 = 0 then
          Mo_workload.Random_pred.guarded_predicate ~max_vars:8
            ~max_conjuncts:16 ~seed:(1000 + i) ()
        else
          Mo_workload.Random_pred.predicate ~max_vars:8 ~max_conjuncts:16
            ~seed:(2000 + i) ())
  in
  let hard =
    List.init
      (distinct_preds - List.length parsed - List.length random)
      (fun i -> multi_cycle ~nvars:(8 + (i mod 2)) ~ncycles:5 ~seed:(30 + i))
  in
  parsed @ random @ hard

let rename rng p =
  let n = Forbidden.nvars p in
  let perm = Array.init n Fun.id in
  shuffle rng perm;
  let ep (e : Term.endpoint) = { e with Term.var = perm.(e.Term.var) } in
  let conjuncts =
    Array.of_list
      (List.map
         (fun (c : Term.conjunct) ->
           Term.(ep c.Term.before @> ep c.Term.after))
         (Forbidden.conjuncts p))
  in
  let guards =
    Array.of_list
      (List.map
         (function
           | Term.Same_src (x, y) -> Term.Same_src (perm.(x), perm.(y))
           | Term.Same_dst (x, y) -> Term.Same_dst (perm.(x), perm.(y))
           | Term.Color_is (x, c) -> Term.Color_is (perm.(x), c))
         (Forbidden.guards p))
  in
  shuffle rng conjuncts;
  shuffle rng guards;
  Forbidden.make ~nvars:n
    ~guards:(Array.to_list guards)
    (Array.to_list conjuncts)

(* interleaved: round-robin over the distinct predicates so cold never
   benefits from temporal locality it was not granted *)
let stream =
  lazy
    (let rng = Mo_par.rng ~seed:13 ~stream:0 in
     List.concat_map
       (fun _round -> List.map (rename rng) base_predicates)
       (List.init renamings Fun.id))

let drive engine reqs =
  List.iteri
    (fun i p ->
      let env =
        { Mo_service.Codec.id = i; deadline_ms = None; req = Mo_service.Codec.Classify p }
      in
      match
        Mo_service.Codec.result_of_response
          (Mo_service.Engine.handle engine env)
      with
      | Ok _ -> ()
      | Error e -> failwith ("svc bench: " ^ e))
    reqs

let counters engine =
  let reg = Mo_service.Engine.registry engine in
  let v name = Option.value ~default:0 (Mo_obs.Metrics.value reg name) in
  (v "svc.cache_hits", v "svc.cache_misses")

(* ---- the experiment ---------------------------------------------- *)

let summary () =
  Format.printf "@.%s@.== B13: decision-cache throughput (mopcd engine)@.%s@."
    (String.make 74 '=') (String.make 74 '=');
  let reqs = Lazy.force stream in
  let nreqs = List.length reqs in
  let digests =
    List.sort_uniq compare (List.map Mo_core.Canon.digest reqs)
  in
  let cold_engine = Mo_service.Engine.create ~cache_capacity:0 () in
  let (), cold_wall = time (fun () -> drive cold_engine reqs) in
  let cold_hits, cold_misses = counters cold_engine in
  let warm_engine = Mo_service.Engine.create () in
  drive warm_engine reqs;
  (* measured pass: every digest is now resident *)
  let warm_before = counters warm_engine in
  let (), warm_wall = time (fun () -> drive warm_engine reqs) in
  let warm_after = counters warm_engine in
  let warm_hits = fst warm_after - fst warm_before in
  let warm_misses = snd warm_after - snd warm_before in
  let throughput wall = float_of_int nreqs /. wall in
  let speedup = cold_wall /. warm_wall in
  Format.printf
    "  %d requests (%d distinct specs, %d renamings each)@.  cold: %7.3f s \
     (%8.0f req/s)  hits %d  misses %d@.  warm: %7.3f s (%8.0f req/s)  hits \
     %d  misses %d@.  warm/cold speedup %.1fx@."
    nreqs distinct_preds renamings cold_wall (throughput cold_wall) cold_hits
    cold_misses warm_wall (throughput warm_wall) warm_hits warm_misses
    speedup;
  let pass_json hits misses wall =
    Mo_obs.Jsonb.Obj
      [
        ("hits", j_int hits);
        ("misses", j_int misses);
        ("wall_s", j_float wall);
        ("throughput", j_float (throughput wall));
      ]
  in
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "host",
          Mo_obs.Jsonb.Obj
            [
              ("ocaml", j_str Sys.ocaml_version);
              ("domains", j_bool Mo_par.available);
              ("cores", j_int (Mo_par.recommended_jobs ()));
            ] );
        ( "workload",
          Mo_obs.Jsonb.Obj
            [
              ("distinct", j_int distinct_preds);
              ("renamings", j_int renamings);
              ("requests", j_int nreqs);
              ("distinct_digests", j_int (List.length digests));
            ] );
        ("cold", pass_json cold_hits cold_misses cold_wall);
        ("warm", pass_json warm_hits warm_misses warm_wall);
        ("speedup", j_float speedup);
      ]
  in
  let oc = open_out "BENCH_svc.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  service results written to BENCH_svc.json@."
