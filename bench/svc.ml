(* B13: the classification service — decision-cache effectiveness,
   cold-path scaling over the worker pool, warm hot-path throughput,
   and restart-warm latency. Writes BENCH_svc.json.

   The workload models what mopcd actually sees: a modest set of
   distinct specifications queried over and over under different
   variable namings and clause orders. The stream is [distinct]
   predicates x [renamings] random alpha-renamings each, interleaved.
   Four experiments:

   - cold vs warm (sequential): cache capacity 0 — every request
     canonicalizes and computes — against the default cache pre-warmed
     with one pass, on the identical stream. The warm/cold throughput
     ratio is the point of the cache: the EXPERIMENTS.md bar is >= 5x.
   - sweep: the same stream issued as pipelined groups against a cold
     engine at --jobs 1/2/4 — the misses shard over the pool, so the
     wall-clock exposes cold-path scaling (speedup/efficiency leaves
     sit under numeric job keys, which the gate skips on 1-core
     baseline hosts).
   - hot: a small-predicate catalog (2-3 variables — canonicalization
     is the whole per-request cost) answered warm; the bar is the
     100k req/s EXPERIMENTS.md row.
   - restart: snapshot the warm table, restore it into a fresh engine
     (the --persist path), and compare the first post-restore pass
     against steady-state — a warm restart's first queries must cost
     hits, not recomputation.

   The hit/miss counters are a pure function of the seeded stream, so
   the gate compares them exactly; wall-clock, throughput, speedup and
   first_to_steady_ratio are host-dependent timings under the gate's
   one-sided tolerance. *)

open Mo_core

let j_int i = Mo_obs.Jsonb.Int i
let j_str s = Mo_obs.Jsonb.String s
let j_bool b = Mo_obs.Jsonb.Bool b
let j_float f = Mo_obs.Jsonb.Float f

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* ---- the query stream -------------------------------------------- *)

let distinct_preds = 12
let renamings = 16

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* a union of [ncycles] random Hamiltonian cycles over one variable
   set: strongly connected, free of same-variable conjuncts, and rich
   in composite simple cycles — the shape on which the classifier's
   cycle enumeration (and hence the cache) actually earns its keep *)
let multi_cycle ~nvars ~ncycles ~seed =
  let rng = Mo_par.rng ~seed ~stream:1 in
  let one_cycle () =
    let perm = Array.init nvars Fun.id in
    shuffle rng perm;
    List.init nvars (fun i ->
        let a = perm.(i) and b = perm.((i + 1) mod nvars) in
        let pt v = if Random.State.bool rng then Term.s v else Term.r v in
        Term.(pt a @> pt b))
  in
  Forbidden.make ~nvars
    (List.concat (List.init ncycles (fun _ -> one_cycle ())))

(* the catalog's shapes, degenerate random ones (mostly settled by
   simplification alone) and hard multi-cycle ones: enough variety to
   exercise every classifier branch, expensive enough in aggregate that
   decision work dominates canonicalization *)
let base_predicates =
  let parsed =
    List.map Parse.predicate_exn
      [
        "x.s < y.s & y.r < x.r";
        "x.s < y.s & y.r < x.r & src(x) = src(y)";
        "x.s < y.r & y.s < x.r";
        "x.r < y.s & y.r < z.s & z.r < x.s";
      ]
  in
  let random =
    List.init 4 (fun i ->
        if i mod 2 = 0 then
          Mo_workload.Random_pred.guarded_predicate ~max_vars:8
            ~max_conjuncts:16 ~seed:(1000 + i) ()
        else
          Mo_workload.Random_pred.predicate ~max_vars:8 ~max_conjuncts:16
            ~seed:(2000 + i) ())
  in
  let hard =
    List.init
      (distinct_preds - List.length parsed - List.length random)
      (fun i -> multi_cycle ~nvars:(8 + (i mod 2)) ~ncycles:5 ~seed:(30 + i))
  in
  parsed @ random @ hard

let rename rng p =
  let n = Forbidden.nvars p in
  let perm = Array.init n Fun.id in
  shuffle rng perm;
  let ep (e : Term.endpoint) = { e with Term.var = perm.(e.Term.var) } in
  let conjuncts =
    Array.of_list
      (List.map
         (fun (c : Term.conjunct) ->
           Term.(ep c.Term.before @> ep c.Term.after))
         (Forbidden.conjuncts p))
  in
  let guards =
    Array.of_list
      (List.map
         (function
           | Term.Same_src (x, y) -> Term.Same_src (perm.(x), perm.(y))
           | Term.Same_dst (x, y) -> Term.Same_dst (perm.(x), perm.(y))
           | Term.Color_is (x, c) -> Term.Color_is (perm.(x), c))
         (Forbidden.guards p))
  in
  shuffle rng conjuncts;
  shuffle rng guards;
  Forbidden.make ~nvars:n
    ~guards:(Array.to_list guards)
    (Array.to_list conjuncts)

(* interleaved: round-robin over the distinct predicates so cold never
   benefits from temporal locality it was not granted *)
let stream =
  lazy
    (let rng = Mo_par.rng ~seed:13 ~stream:0 in
     List.concat_map
       (fun _round -> List.map (rename rng) base_predicates)
       (List.init renamings Fun.id))

let drive engine reqs =
  List.iteri
    (fun i p ->
      let env =
        { Mo_service.Codec.id = i; deadline_ms = None; req = Mo_service.Codec.Classify p }
      in
      match
        Mo_service.Codec.result_of_response
          (Mo_service.Engine.handle engine env)
      with
      | Ok _ -> ()
      | Error e -> failwith ("svc bench: " ^ e))
    reqs

let counters engine =
  let reg = Mo_service.Engine.registry engine in
  let v name = Option.value ~default:0 (Mo_obs.Metrics.value reg name) in
  (v "svc.cache_hits", v "svc.cache_misses")

(* ---- cold-path scaling: the stream as pipelined groups ----------- *)

(* one group per renaming round: [distinct_preds] distinct digests per
   group, so a cold engine shards exactly that many misses over the
   pool each round — the unit of parallelism mopcd's dispatch hands the
   engine *)
let grouped_stream reqs =
  let rec chunk acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | p :: rest ->
        if n = distinct_preds then chunk (List.rev cur :: acc) [ p ] 1 rest
        else chunk acc (p :: cur) (n + 1) rest
  in
  chunk [] [] 0 reqs

let drive_grouped engine groups =
  List.iter
    (fun group ->
      let envs =
        List.mapi
          (fun i p ->
            { Mo_service.Codec.id = i; deadline_ms = None;
              req = Mo_service.Codec.Classify p })
          group
      in
      let responses, _stop = Mo_service.Engine.serve_many engine envs in
      List.iter
        (fun r ->
          match Mo_service.Codec.result_of_response r with
          | Ok _ -> ()
          | Error e -> failwith ("svc bench: " ^ e))
        responses)
    groups

let sweep_point ~jobs groups nreqs =
  let pool = Mo_par.Pool.create ~jobs () in
  let engine = Mo_service.Engine.create ~cache_capacity:0 ~pool () in
  let (), wall = time (fun () -> drive_grouped engine groups) in
  let _, misses = counters engine in
  (wall, misses, nreqs)

(* ---- warm hot path: small-catalog repeat traffic ----------------- *)

(* 2-3 variable shapes: canonicalization is microseconds, so the warm
   per-request cost is digest + striped lookup — the regime the
   100k req/s bar talks about *)
let hot_base =
  List.map Parse.predicate_exn
    [
      "x.s < y.s & y.r < x.r";
      "x.s < y.s & y.r < x.r & src(x) = src(y)";
      "x.s < y.r & y.s < x.r";
      "x.r < y.s & y.r < z.s & z.r < x.s";
    ]

let hot_renamings = 8
let hot_passes = 400

let hot_envelopes () =
  let rng = Mo_par.rng ~seed:29 ~stream:2 in
  let preds =
    List.concat_map
      (fun _ -> List.map (rename rng) hot_base)
      (List.init hot_renamings Fun.id)
  in
  Array.of_list
    (List.mapi
       (fun i p ->
         { Mo_service.Codec.id = i; deadline_ms = None;
           req = Mo_service.Codec.Classify p })
       preds)

let drive_hot engine envs passes =
  for _ = 1 to passes do
    Array.iter
      (fun env -> ignore (Mo_service.Engine.handle engine env))
      envs
  done

(* ---- the experiment ---------------------------------------------- *)

let summary () =
  Format.printf "@.%s@.== B13: decision-cache throughput (mopcd engine)@.%s@."
    (String.make 74 '=') (String.make 74 '=');
  let reqs = Lazy.force stream in
  let nreqs = List.length reqs in
  let digests =
    List.sort_uniq compare (List.map Mo_core.Canon.digest reqs)
  in
  let cold_engine = Mo_service.Engine.create ~cache_capacity:0 () in
  let (), cold_wall = time (fun () -> drive cold_engine reqs) in
  let cold_hits, cold_misses = counters cold_engine in
  let warm_engine = Mo_service.Engine.create () in
  drive warm_engine reqs;
  (* measured pass: every digest is now resident *)
  let warm_before = counters warm_engine in
  let (), warm_wall = time (fun () -> drive warm_engine reqs) in
  let warm_after = counters warm_engine in
  let warm_hits = fst warm_after - fst warm_before in
  let warm_misses = snd warm_after - snd warm_before in
  let throughput wall = float_of_int nreqs /. wall in
  let speedup = cold_wall /. warm_wall in
  Format.printf
    "  %d requests (%d distinct specs, %d renamings each)@.  cold: %7.3f s \
     (%8.0f req/s)  hits %d  misses %d@.  warm: %7.3f s (%8.0f req/s)  hits \
     %d  misses %d@.  warm/cold speedup %.1fx@."
    nreqs distinct_preds renamings cold_wall (throughput cold_wall) cold_hits
    cold_misses warm_wall (throughput warm_wall) warm_hits warm_misses
    speedup;
  (* cold-path scaling over the dispatch pool *)
  let groups = grouped_stream reqs in
  let sweep_jobs = [ 1; 2; 4 ] in
  let sweep =
    List.map
      (fun jobs -> (jobs, sweep_point ~jobs groups nreqs))
      sweep_jobs
  in
  let base_wall =
    match sweep with (_, (w, _, _)) :: _ -> w | [] -> assert false
  in
  List.iter
    (fun (jobs, (wall, misses, n)) ->
      Format.printf
        "  jobs %d: %7.3f s (%8.0f req/s)  misses %d  speedup %.2fx@." jobs
        wall
        (float_of_int n /. wall)
        misses (base_wall /. wall))
    sweep;
  (* warm hot path: small-catalog repeat traffic *)
  let hot_envs = hot_envelopes () in
  let hot_engine = Mo_service.Engine.create () in
  drive_hot hot_engine hot_envs 1;
  let hot_before = counters hot_engine in
  let (), hot_wall = time (fun () -> drive_hot hot_engine hot_envs hot_passes) in
  let hot_after = counters hot_engine in
  let hot_n = Array.length hot_envs * hot_passes in
  let hot_tp = float_of_int hot_n /. hot_wall in
  Format.printf "  hot:  %7.3f s (%8.0f req/s)  hits %d  misses %d@." hot_wall
    hot_tp
    (fst hot_after - fst hot_before)
    (snd hot_after - snd hot_before);
  (* restart-warm: restore the snapshot, then first pass vs steady *)
  let snap = Mo_service.Engine.snapshot hot_engine in
  let restarted = Mo_service.Engine.create () in
  let restored = Mo_service.Engine.restore restarted snap in
  let (), first_wall =
    time (fun () -> drive_hot restarted hot_envs 1)
  in
  let steady_passes = 50 in
  let (), steady_total =
    time (fun () -> drive_hot restarted hot_envs steady_passes)
  in
  let steady_wall = steady_total /. float_of_int steady_passes in
  let r_hits, r_misses = counters restarted in
  let ratio = first_wall /. steady_wall in
  Format.printf
    "  restart: restored %d, first pass %.6f s, steady %.6f s \
     (first/steady %.2fx)@."
    restored first_wall steady_wall ratio;
  let pass_json hits misses wall =
    Mo_obs.Jsonb.Obj
      [
        ("hits", j_int hits);
        ("misses", j_int misses);
        ("wall_s", j_float wall);
        ("throughput", j_float (throughput wall));
      ]
  in
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "host",
          Mo_obs.Jsonb.Obj
            [
              ("ocaml", j_str Sys.ocaml_version);
              ("domains", j_bool Mo_par.available);
              ("cores", j_int (Mo_par.recommended_jobs ()));
            ] );
        ( "workload",
          Mo_obs.Jsonb.Obj
            [
              ("distinct", j_int distinct_preds);
              ("renamings", j_int renamings);
              ("requests", j_int nreqs);
              ("distinct_digests", j_int (List.length digests));
            ] );
        ("cold", pass_json cold_hits cold_misses cold_wall);
        ("warm", pass_json warm_hits warm_misses warm_wall);
        ("speedup", j_float speedup);
        ( "sweep",
          Mo_obs.Jsonb.Obj
            (List.map
               (fun (jobs, (wall, misses, n)) ->
                 ( string_of_int jobs,
                   Mo_obs.Jsonb.Obj
                     [
                       ("requests", j_int n);
                       ("misses", j_int misses);
                       ("wall_s", j_float wall);
                       ("throughput", j_float (float_of_int n /. wall));
                       ("speedup", j_float (base_wall /. wall));
                       ( "efficiency",
                         j_float (base_wall /. wall /. float_of_int jobs) );
                     ] ))
               sweep) );
        ( "hot",
          Mo_obs.Jsonb.Obj
            [
              ("requests", j_int hot_n);
              ("distinct", j_int (List.length hot_base));
              ("hits", j_int (fst hot_after - fst hot_before));
              ("misses", j_int (snd hot_after - snd hot_before));
              ("wall_s", j_float hot_wall);
              ("throughput", j_float hot_tp);
            ] );
        ( "restart",
          Mo_obs.Jsonb.Obj
            [
              ("restored", j_int restored);
              ("hits", j_int r_hits);
              ("misses", j_int r_misses);
              ("first", Mo_obs.Jsonb.Obj [ ("wall_s", j_float first_wall) ]);
              ( "steady",
                Mo_obs.Jsonb.Obj
                  [
                    ("wall_s", j_float steady_wall);
                    ( "throughput",
                      j_float (float_of_int (Array.length hot_envs) /. steady_wall)
                    );
                  ] );
              ("first_to_steady_ratio", j_float ratio);
            ] );
      ]
  in
  let oc = open_out "BENCH_svc.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  service results written to BENCH_svc.json@."
