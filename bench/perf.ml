(* Quantitative benchmarks (experiments B2-B4): Bechamel timing of the
   classifier, the run matcher, the weakening step, and full protocol
   simulations. One Test.make per measured configuration. *)

open Bechamel
open Toolkit
open Mo_core
open Mo_order
open Mo_protocol
open Mo_workload

(* ---- B2: classifier scaling in predicate size ---- *)

let classify_tests =
  let mk m =
    (* a fixed random predicate of m variables and ~2m conjuncts, plus the
       m-crown (the worst case for beta counting: one cycle through all
       vertices) *)
    let random =
      Random_pred.predicate ~max_vars:m ~max_conjuncts:(2 * m) ~seed:(m * 7) ()
    in
    let crown = (Catalog.sync_crown m).Catalog.pred in
    [
      Test.make
        ~name:(Printf.sprintf "random-m%d" m)
        (Staged.stage (fun () -> ignore (Classify.classify random)));
      Test.make
        ~name:(Printf.sprintf "crown-m%d" m)
        (Staged.stage (fun () -> ignore (Classify.classify crown)));
    ]
  in
  Test.make_grouped ~name:"B2-classify" (List.concat_map mk [ 3; 5; 8; 12 ])

(* ---- B3: matcher scaling in run size ---- *)

let eval_tests =
  let run_of nmsgs =
    let cfg = Sim.default_config ~nprocs:4 in
    let ops = (Gen.uniform ~nprocs:4 ~nmsgs ~seed:23).Gen.ops in
    match Sim.execute cfg Causal_rst.factory ops with
    | Ok { Sim.run = Some r; _ } -> Run.to_abstract r
    | Ok _ | Error _ -> failwith "bench workload failed"
  in
  let causal = Catalog.causal_b2.Catalog.pred in
  let fifo = Catalog.fifo.Catalog.pred in
  let tests =
    List.concat_map
      (fun nmsgs ->
        let r = run_of nmsgs in
        [
          Test.make
            ~name:(Printf.sprintf "causal-sat-%dmsg" nmsgs)
            (Staged.stage (fun () -> ignore (Eval.satisfies causal r)));
          Test.make
            ~name:(Printf.sprintf "fifo-sat-%dmsg" nmsgs)
            (Staged.stage (fun () -> ignore (Eval.satisfies fifo r)));
        ])
      [ 10; 50; 200 ]
  in
  Test.make_grouped ~name:"B3-eval" tests

(* ---- B4: ablations — cycle detection vs full enumeration; weakening ---- *)

let ablation_tests =
  let dense m =
    (* complete digraph on m vertices: the cycle-enumeration stress case *)
    let conjuncts =
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j -> if i <> j then Some Term.(s i @> s j) else None)
            (List.init m Fun.id))
        (List.init m Fun.id)
    in
    Forbidden.make ~nvars:m conjuncts
  in
  let g5 = Pgraph.of_predicate (dense 5) in
  let crown8 = (Catalog.sync_crown 8).Catalog.pred in
  let cycle8 =
    match Cycles.enumerate (Pgraph.of_predicate crown8) with
    | [ c ] -> c
    | _ -> failwith "crown should be one cycle"
  in
  Test.make_grouped ~name:"B4-ablation"
    [
      Test.make ~name:"has_cycle-dense5"
        (Staged.stage (fun () -> ignore (Cycles.has_cycle g5)));
      Test.make ~name:"enumerate-dense5"
        (Staged.stage (fun () -> ignore (Cycles.enumerate g5)));
      Test.make ~name:"enumerate-capped100-dense5"
        (Staged.stage (fun () ->
             ignore (Cycles.enumerate ~max_cycles:100 g5)));
      Test.make ~name:"weaken-crown8"
        (Staged.stage (fun () -> ignore (Weaken.contract cycle8)));
      Test.make ~name:"witness-crown8"
        (Staged.stage (fun () -> ignore (Witness.build crown8)));
    ]

(* ---- B7: online monitor vs offline checker ---- *)

let online_tests =
  let tests =
    List.concat_map
      (fun nmsgs ->
        let r = Random_run.causal_run ~nprocs:4 ~nmsgs ~seed:13 () in
        let a = Run.to_abstract r in
        [
          Test.make
            ~name:(Printf.sprintf "online-%dmsg" nmsgs)
            (Staged.stage (fun () -> ignore (Online.feed_run r)));
          Test.make
            ~name:(Printf.sprintf "offline-eval-%dmsg" nmsgs)
            (Staged.stage (fun () ->
                 ignore
                   (Eval.satisfies Catalog.causal_b2.Catalog.pred a
                   && Limits.is_sync a)));
        ])
      [ 50; 200 ]
  in
  let big = Random_run.run ~nprocs:6 ~nmsgs:2000 ~seed:3 () in
  Test.make_grouped ~name:"B7-monitor"
    (tests
    @ [
        Test.make ~name:"online-2000msg"
          (Staged.stage (fun () -> ignore (Online.feed_run big)));
      ])

(* ---- B1 timing companion: protocol simulation throughput ---- *)

let sim_tests =
  let mk name factory =
    let cfg = Sim.default_config ~nprocs:4 in
    let ops = (Gen.uniform ~nprocs:4 ~nmsgs:100 ~seed:3).Gen.ops in
    Test.make ~name
      (Staged.stage (fun () ->
           match Sim.execute cfg factory ops with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  Test.make_grouped ~name:"B1-sim-100msg"
    [
      mk "tagless" Tagless.factory;
      mk "fifo" Fifo.factory;
      mk "causal-rst" Causal_rst.factory;
      mk "causal-ses" Causal_ses.factory;
      mk "sync-token" Sync_token.factory;
      mk "sync-priority" Sync_priority.factory;
      mk "flush" Flush.factory;
    ]

(* ---- B10: protocol cost accounting via the observability layer ---- *)

let obs_protocols =
  [
    ("tagless", Tagless.factory);
    ("fifo", Fifo.factory);
    ("causal-rst", Causal_rst.factory);
    ("causal-ses", Causal_ses.factory);
    ("causal-bss", Causal_bss.factory);
    ("sync-token", Sync_token.factory);
    ("sync-priority", Sync_priority.factory);
    ("flush", Flush.factory);
    ("total-order", Total_order.factory);
  ]

let obs_summary () =
  Format.printf "@.%s@.== B10: protocol cost accounting (seeded, 4 procs, \
                 200 msgs)@.%s@."
    (String.make 74 '=') (String.make 74 '=');
  let ops = (Gen.uniform ~nprocs:4 ~nmsgs:200 ~seed:42).Gen.ops in
  let cfg = Sim.default_config ~nprocs:4 in
  let rows =
    List.filter_map
      (fun (name, factory) ->
        match Observe.run ~config:cfg factory ops with
        | Error e ->
            Format.printf "  %s: simulation error: %s@." name e;
            None
        | Ok (registry, _) -> Some (Observe.report_row registry ~factory))
      obs_protocols
  in
  Format.printf "%a@." Mo_obs.Report.pp_comparison rows;
  let meta =
    Mo_obs.Jsonb.Obj
      [
        ("name", Mo_obs.Jsonb.String "uniform");
        ("nprocs", Mo_obs.Jsonb.Int 4);
        ("nmsgs", Mo_obs.Jsonb.Int 200);
        ("seed", Mo_obs.Jsonb.Int 42);
      ]
  in
  let json =
    match Mo_obs.Report.to_json rows with
    | Mo_obs.Jsonb.Obj fields ->
        Mo_obs.Jsonb.Obj (("workload", meta) :: fields)
    | j -> j
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  per-protocol metrics written to BENCH_obs.json@."

let run_group group =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances group in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> rows := (name, est) :: !rows
          | _ -> ())
        tbl)
    results;
  List.iter
    (fun (name, est) ->
      if est > 1_000_000.0 then
        Format.printf "  %-32s %12.2f ms/run@." name (est /. 1_000_000.0)
      else if est > 1_000.0 then
        Format.printf "  %-32s %12.2f us/run@." name (est /. 1_000.0)
      else Format.printf "  %-32s %12.1f ns/run@." name est)
    (List.sort compare !rows)

let run_all () =
  Format.printf "@.%s@.== B1-B4: Bechamel timings@.%s@."
    (String.make 74 '=') (String.make 74 '=');
  List.iter run_group
    [ classify_tests; eval_tests; ablation_tests; online_tests; sim_tests ]
