(* B12: the parallel engine — speedup and efficiency of the ported hot
   loops at increasing job counts, with the deterministic outputs pinned
   alongside the timings. Writes BENCH_par.json.

   Three workloads, one per ported loop:
   - universe: exhaustive run enumeration + Lemma 3 classification
     (sharded by message configuration);
   - explore:  exhaustive schedule exploration of a protocol (sharded by
     schedule-tree prefix);
   - matrix:   a slice of the fault-matrix conformance grid (sharded by
     (protocol, fault, seed) cell).

   The deterministic fields (counts, views, verdicts) must be identical
   at every job count — the regression gate compares them exactly. The
   wall-clock fields depend on the host; the JSON records the core count
   so the gate only compares timings between like hosts. *)

open Mo_core
open Mo_protocol
open Mo_workload

let j_int i = Mo_obs.Jsonb.Int i
let j_str s = Mo_obs.Jsonb.String s
let j_bool b = Mo_obs.Jsonb.Bool b
let j_float f = Mo_obs.Jsonb.Float f

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* ---- the three workloads ---------------------------------------- *)

(* big enough that a sweep point runs for seconds, not domain-spawn
   noise: the standard T2 sizes plus the 4-process / 4-message tiers *)
let universe_sizes ~deep =
  if deep then Modelcheck.deep_sizes
  else Modelcheck.standard_sizes @ [ (4, 2); (4, 3); (3, 4) ]

let run_universe ~deep pool =
  let v = Modelcheck.verify ~pool ~sizes:(universe_sizes ~deep) () in
  Mo_obs.Jsonb.Obj
    [
      ("runs", j_int v.Modelcheck.counts.Modelcheck.runs);
      ("causal", j_int v.Modelcheck.counts.Modelcheck.causal);
      ("sync", j_int v.Modelcheck.counts.Modelcheck.sync);
      ("ok", j_bool (Modelcheck.ok v));
    ]

let explore_ops =
  [
    Sim.op ~at:0 ~src:0 ~dst:1 ();
    Sim.op ~at:1 ~src:0 ~dst:1 ();
    Sim.op ~at:2 ~src:1 ~dst:0 ();
    Sim.op ~at:3 ~src:1 ~dst:0 ();
    Sim.op ~at:4 ~src:0 ~dst:1 ();
  ]

let run_explore pool =
  match
    Explore.distinct_user_views_par ~pool ~max_executions:2_000_000 ~nprocs:2
      Fifo.factory explore_ops
  with
  | Error e -> failwith ("explore bench: " ^ e)
  | Ok (views, stats) ->
      Mo_obs.Jsonb.Obj
        [
          ("executions", j_int stats.Explore.executions);
          ("views", j_int (List.length views));
          ("truncated", j_bool stats.Explore.truncated);
        ]

let matrix_protocols =
  [
    ("tagless", Tagless.factory);
    ("fifo", Fifo.factory);
    ("causal-rst", Causal_rst.factory);
    ("causal-ses", Causal_ses.factory);
    ("sync-token", Sync_token.factory);
    ("sync-priority", Sync_priority.factory);
    ("flush", Flush.factory);
  ]

let matrix_faults =
  [
    ("drop150", Net.make ~drop_permille:150 ());
    ("drop+dup", Net.make ~drop_permille:100 ~duplicate_permille:100 ());
  ]

let matrix_seeds = [ 1; 2; 3; 4; 5 ]

let matrix_cells =
  List.concat_map
    (fun (pname, factory) ->
      List.concat_map
        (fun (fname, faults) ->
          List.map (fun seed -> (pname, factory, fname, faults, seed))
            matrix_seeds)
        matrix_faults)
    matrix_protocols
  |> Array.of_list

let run_matrix pool =
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:150 ~seed:6).Gen.ops in
  let verdicts =
    Mo_par.Pool.map pool (Array.length matrix_cells) ~f:(fun i ->
        let _, factory, _, faults, seed = matrix_cells.(i) in
        let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed; faults } in
        let r = Conformance.check_exn cfg (Wrap.reliable factory) ops in
        r.Conformance.live && r.Conformance.traffic_consistent)
  in
  Mo_obs.Jsonb.Obj
    [
      ("cells", j_int (Array.length verdicts));
      ("all_pass", j_bool (Array.for_all Fun.id verdicts));
    ]

(* ---- the sweep --------------------------------------------------- *)

let sweep ~name ~jobs_list run =
  Format.printf "@.-- %s@." name;
  let timed =
    List.map
      (fun jobs ->
        let pool = Mo_par.Pool.create ~jobs () in
        let result, wall = time (fun () -> run pool) in
        (jobs, result, wall))
      jobs_list
  in
  let t1 =
    match timed with
    | (1, _, w) :: _ -> w
    | _ -> (match timed with (_, _, w) :: _ -> w | [] -> 1.0)
  in
  let result0 =
    match timed with (_, r, _) :: _ -> r | [] -> Mo_obs.Jsonb.Null
  in
  List.iter
    (fun (jobs, result, wall) ->
      if Mo_obs.Jsonb.to_string result <> Mo_obs.Jsonb.to_string result0 then
        failwith
          (Printf.sprintf "%s: result at %d jobs differs from jobs=1" name
             jobs);
      Format.printf "  jobs %d: %7.3f s  speedup %5.2fx  efficiency %3.0f%%@."
        jobs wall (t1 /. wall)
        (t1 /. wall /. float_of_int jobs *. 100.))
    timed;
  let timings =
    List.map
      (fun (jobs, _, wall) ->
        ( string_of_int jobs,
          Mo_obs.Jsonb.Obj
            [
              ("wall_s", j_float wall);
              ("speedup", j_float (t1 /. wall));
              ("efficiency", j_float (t1 /. wall /. float_of_int jobs));
            ] ))
      timed
  in
  (name, Mo_obs.Jsonb.Obj [ ("result", result0); ("timings", Mo_obs.Jsonb.Obj timings) ])

let summary ?(deep = false) ?(jobs_list = [ 1; 2; 4 ]) () =
  Format.printf
    "@.%s@.== B12: parallel engine speedup (jobs %s%s)@.%s@."
    (String.make 74 '=')
    (String.concat "," (List.map string_of_int jobs_list))
    (if deep then ", deep universe" else "")
    (String.make 74 '=');
  let universe = sweep ~name:"universe" ~jobs_list (run_universe ~deep) in
  let explore = sweep ~name:"explore" ~jobs_list run_explore in
  let matrix = sweep ~name:"matrix" ~jobs_list run_matrix in
  let workloads = [ universe; explore; matrix ] in
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "host",
          Mo_obs.Jsonb.Obj
            [
              ("ocaml", j_str Sys.ocaml_version);
              ("domains", j_bool Mo_par.available);
              ("cores", j_int (Mo_par.recommended_jobs ()));
            ] );
        ("jobs", Mo_obs.Jsonb.List (List.map j_int jobs_list));
        ("deep", j_bool deep);
        ("workloads", Mo_obs.Jsonb.Obj workloads);
      ]
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  parallel-engine results written to BENCH_par.json@."
