(* The experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index), then runs the quantitative
   Bechamel benchmarks. `dune exec bench/main.exe` prints everything;
   pass `--repro-only`, `--perf-only`, `--par-only`, `--mon-only` or
   `--lat-only` to run a slice.
   `--jobs 1,2,4` sets the B12 sweep points; `--deep` extends its
   universe workload to 4 processes / 4 messages; `--soak` grows the
   B15 monitor stream to a million keys. *)

let () =
  let args = Array.to_list Sys.argv in
  let mon_only = List.mem "--mon-only" args in
  let lat_only = List.mem "--lat-only" args in
  let solo = mon_only || lat_only in
  let repro =
    (not solo)
    && not (List.mem "--perf-only" args || List.mem "--par-only" args)
  in
  let perf =
    (not solo)
    && not (List.mem "--repro-only" args || List.mem "--par-only" args)
  in
  let deep = List.mem "--deep" args in
  let jobs_list =
    let rec find = function
      | "--jobs" :: v :: _ -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    match find args with
    | None -> [ 1; 2; 4 ]
    | Some v -> (
        match
          String.split_on_char ',' v
          |> List.map (fun s -> int_of_string_opt (String.trim s))
        with
        | js when List.for_all (function Some j -> j >= 1 | None -> false) js
          ->
            List.filter_map Fun.id js
        | _ ->
            prerr_endline "bench: --jobs expects a comma list of positive ints";
            exit 2)
  in
  if repro then begin
    Repro.run_all ();
    (* B10 is deterministic seeded output (and writes BENCH_obs.json), so
       it belongs to the reproduction pass, not the timing pass *)
    Perf.obs_summary ();
    (* B11: fault-overhead accounting, also deterministic (writes
       BENCH_reliab.json) *)
    Reliab.summary ();
    (* B13: decision-cache throughput; its hit/miss accounting is a pure
       function of the seeded stream (writes BENCH_svc.json) *)
    Svc.summary ()
  end;
  (* B17: lattice membership, mask vs reference; the per-model member
     counts are exact artifacts (writes BENCH_lat.json) *)
  if repro || lat_only then Lat.summary ();
  (* B12, B14+B18 and B15 run in every mode: their deterministic outputs
     belong to the reproduction artifacts and their timings to the perf
     sweep. `--soak` grows B15 to the nightly million-key stream. *)
  if not solo then begin
    Par_bench.summary ~deep ~jobs_list ();
    Core_bench.summary ~deep ~jobs_list ()
  end;
  if not lat_only then
    Mon.summary ~soak:(List.mem "--soak" args) ~jobs_list ();
  if perf then Perf.run_all ()
