(* B17: communication-model lattice — membership throughput of the mask
   fast path against the witness-producing reference, per lattice point,
   over the materialized 125,768-run standard-plus universe. Writes
   BENCH_lat.json.

   The universe is enumerated once up front so the two arms time pure
   membership, not the enumeration kernel, and warmed with one reference
   pass so the first timed model does not pay the lazy poset
   construction for all of them. Each timed arm reports the minimum over
   several repeated batches — the robust estimator for sub-100ms sweeps
   under scheduler noise, and the only way the gate's one-sided 25%
   tolerance holds across same-core reruns. [async] is exempt from the
   timed sweep altogether (its membership is constant-true — there is
   nothing to time, only noise). Deterministic outputs, gated exactly:

   - the member count of every lattice point (the classification table
     DESIGN.md pins; any drift is an enumeration or membership bug);
   - mask/reference agreement, run for run (the differential bar shared
     with test/test_lattice.ml) — a disagreement aborts the bench;
   - the shape of the finite sublattice at kmax=3: 9 points, 10
     covering pairs.

   Timing keys follow the gate's conventions: wall_s lower-is-better,
   kernel_speedup (reference wall over mask wall) and throughput
   (memberships/sec, mask arm) higher-is-better. The EXPERIMENTS.md
   acceptance bar is a >= 3x aggregate mask-vs-reference speedup. *)

open Mo_order
module Modelcheck = Mo_core.Modelcheck

let j_int i = Mo_obs.Jsonb.Int i
let j_str s = Mo_obs.Jsonb.String s
let j_bool b = Mo_obs.Jsonb.Bool b
let j_float f = Mo_obs.Jsonb.Float f

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* min-of-batches wall clock per single execution of [f]: each batch
   runs [f] [reps] times, and the fastest batch is the estimate *)
let bench ~batches ~reps f =
  let best = ref infinity in
  for _ = 1 to batches do
    let _, w =
      time (fun () ->
          for _ = 1 to reps do
            ignore (f ())
          done)
    in
    best := Float.min !best (w /. float_of_int reps)
  done;
  !best

let kmax = 3

let universe () =
  let runs =
    List.fold_left
      (fun acc (nprocs, nmsgs) ->
        List.fold_left
          (fun acc msgs ->
            Enumerate.fold_abstracts ~nprocs ~msgs ~init:acc
              ~f:(fun acc r -> r :: acc))
          acc
          (Enumerate.configs ~nprocs ~nmsgs ()))
      [] Modelcheck.universe_sizes
  in
  Array.of_list (List.rev runs)

let summary () =
  Format.printf
    "@.%s@.== B17: lattice membership (mask fast path vs reference)@.%s@."
    (String.make 74 '=') (String.make 74 '=');
  let runs = universe () in
  let n = Array.length runs in
  let models = Lattice.points ~kmax () in
  (* warm the lazy posets so the reference timings measure membership,
     not construction *)
  Array.iter (fun r -> ignore (Lattice.check Lattice.Causal r)) runs;
  let mask_reps = 20 and mask_batches = 5 and ref_batches = 3 in
  let count_mask m =
    let c = ref 0 in
    Array.iter (fun r -> if Lattice.is_member m r then incr c) runs;
    !c
  in
  let rows =
    List.map
      (fun m ->
        let mask = count_mask m in
        let refc =
          let c = ref 0 in
          Array.iter
            (fun r ->
              match Lattice.check m r with Ok () -> incr c | Error _ -> ())
            runs;
          !c
        in
        if mask <> refc then
          failwith
            (Printf.sprintf "lat bench: %s mask=%d reference=%d disagree"
               (Lattice.to_string m) mask refc);
        (m, mask))
      models
  in
  let timed = List.filter (fun m -> m <> Lattice.Async) models in
  let sweep =
    List.map
      (fun m ->
        let mask_w =
          bench ~batches:mask_batches ~reps:mask_reps (fun () ->
              count_mask m)
        in
        let ref_w =
          bench ~batches:ref_batches ~reps:1 (fun () ->
              Array.iter (fun r -> ignore (Lattice.check m r)) runs)
        in
        (m, mask_w, ref_w))
      timed
  in
  let mask_total = List.fold_left (fun a (_, w, _) -> a +. w) 0. sweep in
  let ref_total = List.fold_left (fun a (_, _, w) -> a +. w) 0. sweep in
  let speedup = ref_total /. mask_total in
  let throughput = float_of_int (n * List.length timed) /. mask_total in
  List.iter
    (fun (m, members) ->
      match List.find_opt (fun (m', _, _) -> m' = m) sweep with
      | Some (_, mask_w, ref_w) ->
          Format.printf
            "  %-8s |X_M| = %6d  mask %6.3f s  reference %6.3f s  (%5.1fx)@."
            (Lattice.to_string m) members mask_w ref_w (ref_w /. mask_w)
      | None ->
          Format.printf "  %-8s |X_M| = %6d  (untimed: constant-true)@."
            (Lattice.to_string m) members)
    rows;
  Format.printf
    "  %d runs x %d timed models: mask %.3f s vs reference %.3f s  (%.1fx, \
     %9.0f memberships/s)@."
    n (List.length timed) mask_total ref_total speedup throughput;
  if speedup < 3. then
    Format.printf
      "  WARNING: mask speedup below the 3x acceptance bar@.";
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "host",
          Mo_obs.Jsonb.Obj
            [
              ("ocaml", j_str Sys.ocaml_version);
              ("domains", j_bool Mo_par.available);
              ("cores", j_int (Mo_par.recommended_jobs ()));
            ] );
        ( "workload",
          Mo_obs.Jsonb.Obj
            [
              ("runs", j_int n);
              ("sizes", j_int (List.length Modelcheck.universe_sizes));
              ("kmax", j_int kmax);
              ("mask_reps", j_int mask_reps);
              ("timed_models", j_int (List.length timed));
            ] );
        ( "lattice",
          Mo_obs.Jsonb.Obj
            [
              ("points", j_int (List.length models));
              ("hasse_edges", j_int (List.length (Lattice.hasse ~kmax ())));
            ] );
        ( "members",
          Mo_obs.Jsonb.Obj
            (List.map (fun (m, c) -> (Lattice.to_string m, j_int c)) rows)
        );
        ("mask_matches_reference", j_bool true);
        (* per-model gating covers the mask arm only: the reference arm
           is allocation-heavy and its per-model walls jitter well past
           the gate's tolerance between same-core runs — it is gated in
           the aggregate, where the noise averages out *)
        ( "sweep",
          Mo_obs.Jsonb.Obj
            (List.map
               (fun (m, mask_w, _) ->
                 ( Lattice.to_string m,
                   Mo_obs.Jsonb.Obj
                     [
                       ("wall_s", j_float mask_w);
                       ( "throughput",
                         j_float (float_of_int n /. mask_w) );
                     ] ))
               sweep) );
        ("kernel_speedup", j_float speedup);
        ("throughput", j_float throughput);
      ]
  in
  let oc = open_out "BENCH_lat.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  lattice results written to BENCH_lat.json@."
