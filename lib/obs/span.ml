type t = {
  msg : int;
  src : int;
  dst : int;
  invoke : int;
  send : int;
  recv : int;
  deliver : int;
}

let none = -1

let make ~msg ~src ~dst ~invoke ~send ~recv ~deliver =
  { msg; src; dst; invoke; send; recv; deliver }

let events t =
  let b x = if x >= 0 then 1 else 0 in
  b t.invoke + b t.send + b t.recv + b t.deliver

let is_complete t = events t = 4

let duration a b = if a >= 0 && b >= 0 then Some (b - a) else None

let inhibition t = duration t.invoke t.send

let delivery_delay t = duration t.recv t.deliver

let in_flight t = duration t.send t.recv

let latency t = duration t.invoke t.deliver

let record registry ?(prefix = "") spans =
  let name s = prefix ^ s in
  let inhibit =
    Metrics.histogram registry
      ~help:"s* -> s hold per message (virtual ticks)"
      (name "span.inhibition_time")
  and delay =
    Metrics.histogram registry
      ~help:"r* -> r hold per message (virtual ticks)"
      (name "span.delivery_delay")
  and flight =
    Metrics.histogram registry ~help:"s -> r* network latency"
      (name "span.in_flight_time")
  and latency_h =
    Metrics.histogram registry ~help:"s* -> r end-to-end latency"
      (name "span.latency")
  and events_c =
    Metrics.counter registry ~help:"lifecycle events recorded"
      (name "span.events_total")
  and complete =
    Metrics.counter registry ~help:"messages with all four events"
      (name "span.complete_total")
  and incomplete =
    Metrics.counter registry ~help:"messages missing an event"
      (name "span.incomplete_total")
  in
  Array.iter
    (fun s ->
      Metrics.add events_c (events s);
      if is_complete s then Metrics.inc complete else Metrics.inc incomplete;
      let obs h = function Some d -> Metrics.observe h d | None -> () in
      obs inhibit (inhibition s);
      obs delay (delivery_delay s);
      obs flight (in_flight s);
      obs latency_h (latency s))
    spans

let to_json t =
  let ts v = if v >= 0 then Jsonb.Int v else Jsonb.Null in
  Jsonb.Obj
    [
      ("msg", Jsonb.Int t.msg);
      ("src", Jsonb.Int t.src);
      ("dst", Jsonb.Int t.dst);
      ("invoke", ts t.invoke);
      ("send", ts t.send);
      ("recv", ts t.recv);
      ("deliver", ts t.deliver);
    ]

let pp ppf t =
  let ts ppf v =
    if v >= 0 then Format.pp_print_int ppf v
    else Format.pp_print_string ppf "-"
  in
  Format.fprintf ppf "x%d %d->%d s*=%a s=%a r*=%a r=%a" t.msg t.src t.dst ts
    t.invoke ts t.send ts t.recv ts t.deliver
