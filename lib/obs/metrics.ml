(* counters and gauges are atomics: the mopcd worker domains bump
   shared service counters concurrently, and a plain mutable int would
   lose increments under that interleaving. Histograms stay single-owner
   (the simulator fills them from one domain; parallel workers fill
   per-domain registries and [merge] at join). *)
type counter = { c : int Atomic.t }

type gauge = { g : int Atomic.t }

type histogram = {
  bounds : int array;  (* inclusive upper bounds, strictly increasing *)
  buckets : int array;  (* length bounds + 1; last is the overflow bucket *)
  mutable sum : int;
  mutable n : int;
  mutable hmax : int;
}

type metric = Counter of counter | Gauge of gauge | Hist of histogram

type entry = { help : string; metric : metric }

type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let register t ?(help = "") name fresh =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e.metric
  | None ->
      let metric = fresh () in
      Hashtbl.replace t.tbl name { help; metric };
      metric

let counter t ?help name =
  match register t ?help name (fun () -> Counter { c = Atomic.make 0 }) with
  | Counter c -> c
  | m ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %S is already a %s" name
           (kind_name m))

let inc c = Atomic.incr c.c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  ignore (Atomic.fetch_and_add c.c n)

let counter_value c = Atomic.get c.c

let gauge t ?help name =
  match register t ?help name (fun () -> Gauge { g = Atomic.make 0 }) with
  | Gauge g -> g
  | m ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %S is already a %s" name (kind_name m))

let set g v = Atomic.set g.g v

let observe_max g v =
  (* CAS loop: concurrent high-watermark updates must not regress *)
  let rec go () =
    let cur = Atomic.get g.g in
    if v > cur && not (Atomic.compare_and_set g.g cur v) then go ()
  in
  go ()

let gauge_value g = Atomic.get g.g

let default_buckets =
  [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let histogram t ?help ?(buckets = default_buckets) name =
  let fresh () =
    if buckets = [] then invalid_arg "Metrics.histogram: no buckets";
    let bounds = Array.of_list buckets in
    Array.iteri
      (fun i b ->
        if i > 0 && bounds.(i - 1) >= b then
          invalid_arg "Metrics.histogram: buckets must be strictly increasing")
      bounds;
    Hist
      {
        bounds;
        buckets = Array.make (Array.length bounds + 1) 0;
        sum = 0;
        n = 0;
        hmax = 0;
      }
  in
  match register t ?help name fresh with
  | Hist h -> h
  | m ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S is already a %s" name
           (kind_name m))

let observe h v =
  (* first bucket whose bound covers v; overflow bucket otherwise *)
  let nb = Array.length h.bounds in
  let rec find i = if i >= nb || v <= h.bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.sum <- h.sum + v;
  h.n <- h.n + 1;
  if v > h.hmax then h.hmax <- v

let hist_count h = h.n

let hist_sum h = h.sum

let hist_max h = h.hmax

let hist_mean h = if h.n = 0 then 0. else float_of_int h.sum /. float_of_int h.n

let merge ~into src =
  if into == src then invalid_arg "Metrics.merge: cannot merge a registry into itself";
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) src.tbl []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      let { help; metric } = Hashtbl.find src.tbl name in
      match (metric, Hashtbl.find_opt into.tbl name) with
      | _, None ->
          let fresh =
            match metric with
            | Counter c -> Counter { c = Atomic.make (Atomic.get c.c) }
            | Gauge g -> Gauge { g = Atomic.make (Atomic.get g.g) }
            | Hist h ->
                Hist
                  {
                    bounds = Array.copy h.bounds;
                    buckets = Array.copy h.buckets;
                    sum = h.sum;
                    n = h.n;
                    hmax = h.hmax;
                  }
          in
          Hashtbl.replace into.tbl name { help; metric = fresh }
      | Counter c, Some { metric = Counter c'; _ } ->
          ignore (Atomic.fetch_and_add c'.c (Atomic.get c.c))
      | Gauge g, Some { metric = Gauge g'; _ } -> observe_max g' (Atomic.get g.g)
      | Hist h, Some { metric = Hist h'; _ } ->
          if h.bounds <> h'.bounds then
            invalid_arg
              (Printf.sprintf "Metrics.merge: %S has different buckets" name);
          Array.iteri (fun i b -> h'.buckets.(i) <- h'.buckets.(i) + b) h.buckets;
          h'.sum <- h'.sum + h.sum;
          h'.n <- h'.n + h.n;
          if h.hmax > h'.hmax then h'.hmax <- h.hmax
      | m, Some { metric = m'; _ } ->
          invalid_arg
            (Printf.sprintf "Metrics.merge: %S is a %s here, a %s there" name
               (kind_name m') (kind_name m)))
    names

let find t name = Hashtbl.find_opt t.tbl name

let value t name =
  match find t name with
  | None -> None
  | Some { metric = Counter c; _ } -> Some (Atomic.get c.c)
  | Some { metric = Gauge g; _ } -> Some (Atomic.get g.g)
  | Some { metric = Hist h; _ } -> Some h.n

let find_histogram t name =
  match find t name with Some { metric = Hist h; _ } -> Some h | _ -> None

let mem t name = Hashtbl.mem t.tbl name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
  |> List.sort String.compare

let to_json t =
  let field name =
    let e = Hashtbl.find t.tbl name in
    let base kind rest =
      let help =
        if e.help = "" then [] else [ ("help", Jsonb.String e.help) ]
      in
      (name, Jsonb.Obj ((("kind", Jsonb.String kind) :: rest) @ help))
    in
    match e.metric with
    | Counter c -> base "counter" [ ("value", Jsonb.Int (Atomic.get c.c)) ]
    | Gauge g -> base "gauge" [ ("value", Jsonb.Int (Atomic.get g.g)) ]
    | Hist h ->
        let buckets =
          List.concat
            [
              Array.to_list
                (Array.mapi
                   (fun i b ->
                     Jsonb.Obj
                       [ ("le", Jsonb.Int h.bounds.(i)); ("n", Jsonb.Int b) ])
                   (Array.sub h.buckets 0 (Array.length h.bounds)));
              [
                Jsonb.Obj
                  [
                    ("le", Jsonb.String "+inf");
                    ("n", Jsonb.Int h.buckets.(Array.length h.bounds));
                  ];
              ];
            ]
        in
        base "histogram"
          [
            ("count", Jsonb.Int h.n);
            ("sum", Jsonb.Int h.sum);
            ("max", Jsonb.Int h.hmax);
            ("mean", Jsonb.Float (hist_mean h));
            ("buckets", Jsonb.List buckets);
          ]
  in
  Jsonb.Obj (List.map field (names t))

let pp_table ppf t =
  let ns = names t in
  let width =
    List.fold_left (fun acc n -> max acc (String.length n)) 10 ns
  in
  List.iter
    (fun name ->
      let e = Hashtbl.find t.tbl name in
      (match e.metric with
      | Counter c -> Format.fprintf ppf "  %-*s %12d" width name (Atomic.get c.c)
      | Gauge g -> Format.fprintf ppf "  %-*s %12d" width name (Atomic.get g.g)
      | Hist h ->
          Format.fprintf ppf "  %-*s %12d obs  mean %8.2f  max %6d" width
            name h.n (hist_mean h) h.hmax);
      if e.help <> "" then Format.fprintf ppf "   (%s)" e.help;
      Format.fprintf ppf "@.")
    ns

let to_table t = Format.asprintf "%a" pp_table t
