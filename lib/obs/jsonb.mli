(** A minimal JSON tree and serializer (stdlib-only).

    Just enough structure for the observability exports: objects keep the
    insertion order of their fields, so a registry dumped twice under the
    same seed produces byte-identical output — the property the bench
    artifacts and the CLI tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization with full string escaping. *)

val to_string_pretty : t -> string
(** Two-space indented serialization, trailing newline. *)

val of_string : string -> (t, string) result
(** Parse a JSON document (the dialect {!to_string} emits, plus standard
    escapes and whitespace). Numbers containing ['.'], ['e'] or ['E']
    become [Float], the rest [Int]; object field order is preserved.
    Round-trip law: [of_string (to_string v) = Ok v] for every [v] whose
    floats are finite. Used by the bench-regression gate to compare fresh
    exports against committed baselines. *)
