type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no NaN/Infinity; clamp to null-ish sentinels is overkill for
     virtual-time metrics, so print a lossless-enough fixed form *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () =
    if indent then Buffer.add_string buf "\n" else ()
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      sep ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          emit buf ~indent ~level:(level + 1) item)
        items;
      sep ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      sep ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          emit buf ~indent ~level:(level + 1) item)
        fields;
      sep ();
      pad level;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf ~indent:false ~level:0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  emit buf ~indent:true ~level:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — a recursive-descent reader for the dialect we emit, plus  *)
(* the usual JSON escapes. Numbers with '.', 'e' or 'E' become Float;  *)
(* everything else integral becomes Int.                               *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %C, found %C" c c'
    | None -> error "expected %C, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then error "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 ->
                  Buffer.add_char buf (Char.chr code)
              | Some code ->
                  (* non-ASCII escapes: re-encode as UTF-8 *)
                  if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | None -> error "bad \\u escape %S" hex);
              pos := !pos + 4;
              go ()
          | _ -> error "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "bad number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> error "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some c -> error "unexpected %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m
