(** Metrics registry: counters, gauges and fixed-bucket histograms.

    The instrumentation backbone of the protocol stack. All values are
    integers — the simulator's virtual clock, byte counts and event counts
    are all integral — which keeps every export deterministic for a given
    seed. Stdlib-only by design.

    Registration is idempotent: asking twice for the same name returns the
    same metric, so per-process protocol instances can share one aggregate
    counter without coordination. Asking for an existing name with a
    different metric kind raises [Invalid_argument].

    Naming convention (see DESIGN.md "Observability"): lowercase
    [subsystem.quantity_unit] — e.g. [sim.tag_bytes],
    [proto.control_packets], [span.inhibition_time]. *)

type t
(** A registry. Exports list metrics in sorted name order. *)

val create : unit -> t

(** {1 Counters} — monotonically increasing totals.

    Counters and gauges are atomic: they may be bumped concurrently from
    several domains (the mopcd worker pool shares one registry) without
    losing increments. Histograms are single-owner — fill per-domain
    registries and {!merge} at join. *)

type counter

val counter : t -> ?help:string -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — last-written or high-watermark values. *)

type gauge

val gauge : t -> ?help:string -> string -> gauge

val set : gauge -> int -> unit

val observe_max : gauge -> int -> unit
(** Raise the gauge to [v] if [v] exceeds its current value — for
    high-watermarks such as pending-queue depth. *)

val gauge_value : gauge -> int

(** {1 Histograms} — fixed bucket boundaries, cumulative on export. *)

type histogram

val default_buckets : int list
(** Powers of two from 1 to 4096 — sized for virtual-time durations and
    per-message byte counts. *)

val histogram : t -> ?help:string -> ?buckets:int list -> string -> histogram
(** [buckets] are the inclusive upper bounds of each bucket, strictly
    increasing; an implicit overflow bucket catches the rest.
    @raise Invalid_argument if [buckets] is empty or not increasing. *)

val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

val hist_mean : histogram -> float
(** 0. when nothing was observed. *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src]'s values into [into]: counters add,
    gauges keep the maximum (they are high-watermarks here), histograms
    add bucket-wise; metrics absent from [into] are copied (with their
    help text). [src] is not modified. The operation is commutative and
    associative in its effect on [into], so per-domain registries filled
    by parallel workers can be merged at join in any order and export
    byte-identical JSON — the race-free aggregation path used by the
    parallel engine (workers never share a registry; each fills its own
    and the caller merges after {!Mo_par.Pool.map} returns).
    @raise Invalid_argument if a name is registered with different kinds
    or different histogram buckets, or if [src == into]. *)

(** {1 Lookup and export} *)

val value : t -> string -> int option
(** Current value of the counter or gauge registered under this name;
    for a histogram, its observation count. [None] if unregistered. *)

val find_histogram : t -> string -> histogram option
(** The histogram registered under this name, without creating one. *)

val mem : t -> string -> bool

val names : t -> string list
(** Sorted. *)

val to_json : t -> Jsonb.t
(** One object field per metric: counters and gauges as
    [{kind; value; help?}], histograms as
    [{kind; count; sum; max; mean; buckets: [{le; n}]}]. *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable aligned table, one metric per line; histograms show
    count/mean/max. *)

val to_table : t -> string
