(** Keyed event streams and the domain-sharded monitor driver.

    The deployment shape behind `mopc monitor` at scale is the pubsub
    ordering-key contract: events of one key are a sequential stream
    (one {!Mo_core.Pmon} each), distinct keys are independent and
    monitored concurrently. This module generates synthetic keyed
    traffic — deterministic in [(seed, key)], so any shard layout sees
    identical per-key streams — and drives one monitor per key over a
    {!Mo_par.Pool}. Reports inherit the pool's determinism contract:
    byte-identical at every job count (bench B15, and the sharding fuzz
    test in test/test_monitor.ml). *)

type event =
  | Send of { msg : int; src : int; dst : int }
  | Deliver of { msg : int }

type profile = {
  nprocs : int;
  nmsgs : int;  (** messages per key; [2 * nmsgs] events *)
  inflight : int;  (** max sent-but-undelivered messages at any point *)
  disorder : float;
      (** probability that a delivery takes the {e newest} pending
          message instead of the oldest. [0.] yields oldest-first
          delivery, which is FIFO- and causally-clean; anything above
          plants occasional reorderings whose violation count the bench
          pins *)
}

val default_profile : profile
(** 3 processes, 24 messages, 6 in flight, 2% disorder. *)

val key_events : profile -> seed:int -> key:int -> event list
(** The event stream of one ordering key. Endpoints and delivery order
    are drawn from {!Mo_par.rng}[ ~seed ~stream:key] — deterministic and
    decorrelated across keys. *)

type report = {
  key : int;
  events : int;
  verdict : Mo_core.Pmon.verdict option;
  frontier_bytes : int;
}

val monitor_keys :
  pool:Mo_par.Pool.t ->
  pred:Mo_core.Eval.compiled ->
  ?window:int ->
  ?profile:profile ->
  nkeys:int ->
  seed:int ->
  unit ->
  report array
(** One monitor per key, fed that key's {!key_events}, sharded over the
    pool; reports in key order. [window] defaults to 16 — above
    [default_profile.inflight], so retirement is exercised but the
    window never exhausts. *)

val violations : report array -> int
