type event =
  | Send of { msg : int; src : int; dst : int }
  | Deliver of { msg : int }

type profile = {
  nprocs : int;
  nmsgs : int;
  inflight : int;
  disorder : float;
}

let default_profile = { nprocs = 3; nmsgs = 24; inflight = 6; disorder = 0.02 }

let key_events p ~seed ~key =
  if p.nprocs <= 0 || p.nmsgs < 0 || p.inflight < 1 then
    invalid_arg "Stream.key_events: bad profile";
  let rng = Mo_par.rng ~seed ~stream:key in
  let out = ref [] in
  (* pending messages in send order; oldest first *)
  let pending = Queue.create () in
  let next = ref 0 in
  while !next < p.nmsgs || not (Queue.is_empty pending) do
    let can_send = !next < p.nmsgs && Queue.length pending < p.inflight in
    if can_send && (Queue.is_empty pending || Random.State.bool rng) then (
      let msg = !next in
      let src = Random.State.int rng p.nprocs in
      let dst = Random.State.int rng p.nprocs in
      out := Send { msg; src; dst } :: !out;
      Queue.add msg pending;
      incr next)
    else
      (* oldest-first keeps every order; with probability [disorder] the
         newest pending message jumps the whole queue instead *)
      let jump =
        Queue.length pending > 1
        && Random.State.float rng 1.0 < p.disorder
      in
      let msg =
        if jump then (
          (* the newest pending message is the queue's tail *)
          let target = Queue.fold (fun _ m -> m) (-1) pending in
          let keep = Queue.create () in
          Queue.iter
            (fun m -> if m <> target then Queue.add m keep)
            pending;
          Queue.clear pending;
          Queue.transfer keep pending;
          target)
        else Queue.take pending
      in
      out := Deliver { msg } :: !out
  done;
  List.rev !out

type report = {
  key : int;
  events : int;
  verdict : Mo_core.Pmon.verdict option;
  frontier_bytes : int;
}

let monitor_key ~pred ~window p ~seed key =
  let t = Mo_core.Pmon.create ~window ~nprocs:p.nprocs pred in
  List.iter
    (function
      | Send { msg; src; dst } ->
          ignore (Mo_core.Pmon.send t ~msg ~src ~dst ())
      | Deliver { msg } -> ignore (Mo_core.Pmon.deliver t ~msg))
    (key_events p ~seed ~key);
  let mon = Mo_core.Pmon.monitor t in
  {
    key;
    events = Mo_order.Monitor.events mon;
    verdict = Mo_core.Pmon.verdict t;
    frontier_bytes = Mo_order.Monitor.frontier_bytes mon;
  }

let monitor_keys ~pool ~pred ?(window = 16) ?(profile = default_profile)
    ~nkeys ~seed () =
  Mo_par.Pool.map pool nkeys ~f:(monitor_key ~pred ~window profile ~seed)

let violations reports =
  Array.fold_left
    (fun n r -> if Option.is_some r.verdict then n + 1 else n)
    0 reports
