(** Reading and writing run traces in the `mopc monitor` text format:

    {v
      send <msg> <src> <dst> [color]
      deliver <msg>
    v}

    one event per line, ['#'] comments, the optional trailing color
    feeding [color(x) = c] predicate guards. Writing a recorded run
    gives a file the CLI monitor (and any external tool) can consume;
    parsing gives back a {!Mo_order.Run.t}. The serialized order is a
    linear extension of the run (per-process order and
    send-before-delivery are preserved), so feeding it to the online
    monitor reproduces the run's verdicts.

    Parsing is total: truncated, garbage or adversarial input (negative
    or absurd message ids, duplicate events, deliveries of unsent
    messages) yields a typed {!error} naming the offending line — it
    never raises and never allocates proportionally to a claimed id.
    {!parse} requires a complete run (every message delivered);
    {!parse_prefix} accepts any valid stream prefix, which is what the
    streaming predicate monitors consume. *)

type error = {
  line : int;
      (** 1-based line the error was detected on; [0] for whole-trace
          errors (an unreadable file, a message sent but never
          delivered). *)
  reason : string;
}

val error_to_string : error -> string
(** ["line N: reason"], or just the reason when [line = 0]. *)

val max_msg_id : int
(** Upper bound on accepted message ids — a sanity cap so a garbage
    line like [send 999999999999 0 0] is rejected instead of sizing an
    array to it. *)

val to_string : Mo_order.Run.t -> string

val write : string -> Mo_order.Run.t -> unit
(** [write path run]. *)

val parse : string -> (Mo_order.Run.t, error) result
(** Parse trace text (not a path). *)

val read : string -> (Mo_order.Run.t, error) result
(** [read path]. An unreadable file is an [error] with [line = 0]. *)

type prefix = {
  p_nprocs : int;  (** 1 + the largest process id mentioned *)
  p_sends : int;  (** distinct messages sent *)
  p_pending : int;  (** sent but not (yet) delivered *)
  p_events : [ `Send of int * int * int * int option | `Deliver of int ] list;
      (** the events in trace order; the send payload is
          [(msg, src, dst, color)] *)
}

val parse_prefix : string -> (prefix, error) result
(** The syntactic pass alone: same validation as {!parse} except that
    undelivered messages are allowed, and message ids are kept verbatim
    (they need not be dense). *)

val read_prefix : string -> (prefix, error) result
