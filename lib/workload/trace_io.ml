open Mo_order

type error = { line : int; reason : string }

let error_to_string e =
  if e.line = 0 then e.reason
  else Printf.sprintf "line %d: %s" e.line e.reason

let max_msg_id = 1_000_000

let to_string run =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : Event.t) ->
      match e.point with
      | Event.S ->
          Buffer.add_string buf
            (Printf.sprintf "send %d %d %d\n" e.msg (Run.msg_src run e.msg)
               (Run.msg_dst run e.msg))
      | Event.R -> Buffer.add_string buf (Printf.sprintf "deliver %d\n" e.msg))
    (Run.linearize run);
  Buffer.contents buf

let write path run =
  let oc = open_out path in
  output_string oc (to_string run);
  close_out oc

(* Parsing proceeds in two passes: a per-line syntactic pass that also
   validates ids and event uniqueness (so every malformed shape is
   reported with its line number), then the Run.of_schedule replay,
   whose residual errors (a message sent but never delivered) are not
   tied to any one line. *)

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let err = ref None in
  let fail lineno reason =
    if !err = None then err := Some { line = lineno; reason }
  in
  let sent = Hashtbl.create 64 in
  let delivered = Hashtbl.create 64 in
  let check_id lineno what m k =
    if m < 0 then fail lineno (Printf.sprintf "negative %s id %d" what m)
    else if m > max_msg_id then
      fail lineno
        (Printf.sprintf "%s id %d exceeds the %d limit" what m max_msg_id)
    else k ()
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !err = None then
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> ()
        | [ "send"; m; src; dst ] -> (
            match
              ( int_of_string_opt m,
                int_of_string_opt src,
                int_of_string_opt dst )
            with
            | Some m, Some src, Some dst ->
                check_id lineno "message" m (fun () ->
                    if src < 0 || dst < 0 then
                      fail lineno "negative process id"
                    else if Hashtbl.mem sent m then
                      fail lineno
                        (Printf.sprintf "message %d sent twice" m)
                    else begin
                      Hashtbl.replace sent m ();
                      entries := `Send (m, src, dst) :: !entries
                    end)
            | _ ->
                fail lineno
                  "bad send: expected 'send <msg> <src> <dst>' with \
                   integer fields")
        | [ "deliver"; m ] -> (
            match int_of_string_opt m with
            | Some m ->
                check_id lineno "message" m (fun () ->
                    if not (Hashtbl.mem sent m) then
                      fail lineno
                        (Printf.sprintf
                           "message %d delivered before (or without) its \
                            send"
                           m)
                    else if Hashtbl.mem delivered m then
                      fail lineno
                        (Printf.sprintf "message %d delivered twice" m)
                    else begin
                      Hashtbl.replace delivered m ();
                      entries := `Deliver m :: !entries
                    end)
            | None ->
                fail lineno
                  "bad deliver: expected 'deliver <msg>' with an integer \
                   field")
        | _ ->
            fail lineno
              "unrecognized entry: expected 'send <msg> <src> <dst>' or \
               'deliver <msg>'")
    lines;
  match !err with
  | Some e -> Error e
  | None -> (
      let entries = List.rev !entries in
      let sends =
        List.filter_map
          (function
            | `Send (m, s, d) -> Some (m, (s, d)) | `Deliver _ -> None)
          entries
      in
      let nmsgs = List.fold_left (fun acc (m, _) -> max acc (m + 1)) 0 sends in
      let msgs = Array.make (max nmsgs 0) (0, 0) in
      List.iter (fun (m, sd) -> msgs.(m) <- sd) sends;
      let nprocs =
        Array.fold_left (fun acc (s, d) -> max acc (max s d + 1)) 1 msgs
      in
      let sched =
        List.map
          (function
            | `Send (m, _, _) -> Run.Do_send m
            | `Deliver m -> Run.Do_deliver m)
          entries
      in
      match Run.of_schedule ~nprocs ~msgs sched with
      | Ok run -> Ok run
      | Error reason -> Error { line = 0; reason })

let read path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text -> parse text
  | exception Sys_error e -> Error { line = 0; reason = e }
