open Mo_order

type error = { line : int; reason : string }

let error_to_string e =
  if e.line = 0 then e.reason
  else Printf.sprintf "line %d: %s" e.line e.reason

let max_msg_id = 1_000_000

type prefix = {
  p_nprocs : int;
  p_sends : int;
  p_pending : int;
  p_events : [ `Send of int * int * int * int option | `Deliver of int ] list;
}

let to_string run =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : Event.t) ->
      match e.point with
      | Event.S ->
          Buffer.add_string buf
            (match Run.msg_color run e.msg with
            | None ->
                Printf.sprintf "send %d %d %d\n" e.msg
                  (Run.msg_src run e.msg) (Run.msg_dst run e.msg)
            | Some c ->
                Printf.sprintf "send %d %d %d %d\n" e.msg
                  (Run.msg_src run e.msg) (Run.msg_dst run e.msg) c)
      | Event.R -> Buffer.add_string buf (Printf.sprintf "deliver %d\n" e.msg))
    (Run.linearize run);
  Buffer.contents buf

let write path run =
  let oc = open_out path in
  output_string oc (to_string run);
  close_out oc

(* Parsing proceeds in two passes: a per-line syntactic pass that also
   validates ids and event uniqueness (so every malformed shape is
   reported with its line number), then — for complete runs — the
   Run.of_schedule replay, whose residual errors (a message sent but
   never delivered) are not tied to any one line. The syntactic pass
   alone is parse_prefix: pending messages are fine there, which is
   what a streaming monitor consumes. *)

let parse_prefix text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let err = ref None in
  let fail lineno reason =
    if !err = None then err := Some { line = lineno; reason }
  in
  let sent = Hashtbl.create 64 in
  let delivered = Hashtbl.create 64 in
  let nprocs = ref 1 in
  let check_id lineno what m k =
    if m < 0 then fail lineno (Printf.sprintf "negative %s id %d" what m)
    else if m > max_msg_id then
      fail lineno
        (Printf.sprintf "%s id %d exceeds the %d limit" what m max_msg_id)
    else k ()
  in
  let add_send lineno m src dst color =
    check_id lineno "message" m (fun () ->
        if src < 0 || dst < 0 then fail lineno "negative process id"
        else if (match color with Some c -> c < 0 | None -> false) then
          fail lineno "negative color"
        else if Hashtbl.mem sent m then
          fail lineno (Printf.sprintf "message %d sent twice" m)
        else begin
          Hashtbl.replace sent m ();
          nprocs := max !nprocs (max src dst + 1);
          entries := `Send (m, src, dst, color) :: !entries
        end)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !err = None then
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> ()
        | [ "send"; m; src; dst ] -> (
            match
              ( int_of_string_opt m,
                int_of_string_opt src,
                int_of_string_opt dst )
            with
            | Some m, Some src, Some dst -> add_send lineno m src dst None
            | _ ->
                fail lineno
                  "bad send: expected 'send <msg> <src> <dst> [color]' with \
                   integer fields")
        | [ "send"; m; src; dst; color ] -> (
            match
              ( int_of_string_opt m,
                int_of_string_opt src,
                int_of_string_opt dst,
                int_of_string_opt color )
            with
            | Some m, Some src, Some dst, Some c ->
                add_send lineno m src dst (Some c)
            | _ ->
                fail lineno
                  "bad send: expected 'send <msg> <src> <dst> [color]' with \
                   integer fields")
        | [ "deliver"; m ] -> (
            match int_of_string_opt m with
            | Some m ->
                check_id lineno "message" m (fun () ->
                    if not (Hashtbl.mem sent m) then
                      fail lineno
                        (Printf.sprintf
                           "message %d delivered before (or without) its \
                            send"
                           m)
                    else if Hashtbl.mem delivered m then
                      fail lineno
                        (Printf.sprintf "message %d delivered twice" m)
                    else begin
                      Hashtbl.replace delivered m ();
                      entries := `Deliver m :: !entries
                    end)
            | None ->
                fail lineno
                  "bad deliver: expected 'deliver <msg>' with an integer \
                   field")
        | _ ->
            fail lineno
              "unrecognized entry: expected 'send <msg> <src> <dst> [color]' \
               or 'deliver <msg>'")
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      Ok
        {
          p_nprocs = !nprocs;
          p_sends = Hashtbl.length sent;
          p_pending = Hashtbl.length sent - Hashtbl.length delivered;
          p_events = List.rev !entries;
        }

let parse text =
  match parse_prefix text with
  | Error e -> Error e
  | Ok p -> (
      let sends =
        List.filter_map
          (function
            | `Send (m, s, d, c) -> Some (m, (s, d), c) | `Deliver _ -> None)
          p.p_events
      in
      let nmsgs =
        List.fold_left (fun acc (m, _, _) -> max acc (m + 1)) 0 sends
      in
      let msgs = Array.make (max nmsgs 0) (0, 0) in
      let colors = Array.make (max nmsgs 0) None in
      List.iter
        (fun (m, sd, c) ->
          msgs.(m) <- sd;
          colors.(m) <- c)
        sends;
      let sched =
        List.map
          (function
            | `Send (m, _, _, _) -> Run.Do_send m
            | `Deliver m -> Run.Do_deliver m)
          p.p_events
      in
      match Run.of_schedule ~nprocs:p.p_nprocs ~msgs ~colors sched with
      | Ok run -> Ok run
      | Error reason -> Error { line = 0; reason })

let read path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text -> parse text
  | exception Sys_error e -> Error { line = 0; reason = e }

let read_prefix path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    text
  with
  | text -> parse_prefix text
  | exception Sys_error e -> Error { line = 0; reason = e }
