(* Shared-transport substrate: logical channels multiplexed over few
   simulated transports. A channel is a directed process pair; the
   topology says which transport carries it. Within a channel the wire
   is FIFO (per-channel seqnos, reorder buffer at the receiving
   endpoint); across channels and transports there is no guarantee.
   Transport-domain faults (stall, partition, crash-restart) strike the
   whole transport and therefore correlate failures across every channel
   riding it. *)

type topology = Shared | Per_pair | Split2

let topology_to_string = function
  | Shared -> "shared"
  | Per_pair -> "per-pair"
  | Split2 -> "split2"

let topology_of_string = function
  | "shared" -> Ok Shared
  | "per-pair" | "per_pair" -> Ok Per_pair
  | "split2" -> Ok Split2
  | other ->
      Error
        (Printf.sprintf
           "unknown topology %S (choose from: shared, per-pair, split2)" other)

let all_topologies = [ Shared; Per_pair; Split2 ]

let ntransports topology ~nprocs =
  match topology with
  | Shared -> 1
  | Per_pair -> nprocs * nprocs
  | Split2 -> 2

let transport_of topology ~nprocs ~from_proc ~to_proc =
  match topology with
  | Shared -> 0
  | Per_pair -> (from_proc * nprocs) + to_proc
  | Split2 -> (from_proc + to_proc) mod 2

type counters = {
  mutable stall_delays : int;
  mutable part_drops : int;
  mutable crash_drops : int;
  mutable resyncs : int;
  mutable hol_released : int;
  mutable hol_wait_ticks : int;
  mutable wire_dups : int;
}

let fresh_counters () =
  {
    stall_delays = 0;
    part_drops = 0;
    crash_drops = 0;
    resyncs = 0;
    hol_released = 0;
    hol_wait_ticks = 0;
    wire_dups = 0;
  }

type t = {
  topology : topology;
  nprocs : int;
  faults : Net.t;
  counters : counters;
  (* sender-side wire state, per channel from→to *)
  send_epoch : int array;
  send_seq : int array;
  (* receiver-side wire state, per channel *)
  recv_epoch : int array;
  cursor : int array;  (* next expected seq in the current epoch *)
  (* out-of-order arrivals waiting for a predecessor, and seqs known
     lost at entry (the gap the cursor may skip). Keyed by
     (channel, epoch, seq); one seq can hold several packets under
     duplication. [arrived_at] feeds the head-of-line wait accounting. *)
  buffer : (int * int * int, (Message.packet * int) list) Hashtbl.t;
  lost : (int * int * int, unit) Hashtbl.t;
}

let create topology ~nprocs ~faults =
  let nchan = nprocs * nprocs in
  {
    topology;
    nprocs;
    faults;
    counters = fresh_counters ();
    send_epoch = Array.make nchan 0;
    send_seq = Array.make nchan 0;
    recv_epoch = Array.make nchan 0;
    cursor = Array.make nchan 0;
    buffer = Hashtbl.create 64;
    lost = Hashtbl.create 64;
  }

let counters t = t.counters
let topology t = t.topology

let chan t ~from_proc ~to_proc = (from_proc * t.nprocs) + to_proc

let transport t ~from_proc ~to_proc =
  transport_of t.topology ~nprocs:t.nprocs ~from_proc ~to_proc

type verdict = Entered of { epoch : int; seq : int } | Entry_lost

let enter t ~now ~from_proc ~to_proc =
  let tr = transport t ~from_proc ~to_proc in
  if Net.transport_faulted t.faults ~transport:tr ~kind:Net.T_crash ~at:now
  then begin
    t.counters.crash_drops <- t.counters.crash_drops + 1;
    Entry_lost
  end
  else if
    Net.transport_faulted t.faults ~transport:tr ~kind:Net.T_partition
      ~at:now
  then begin
    t.counters.part_drops <- t.counters.part_drops + 1;
    Entry_lost
  end
  else begin
    let c = chan t ~from_proc ~to_proc in
    let epoch = Net.transport_epoch t.faults ~transport:tr ~at:now in
    if epoch > t.send_epoch.(c) then begin
      (* the transport restarted since this channel last sent: wire
         seqnos do not survive, start the new epoch from zero *)
      t.send_epoch.(c) <- epoch;
      t.send_seq.(c) <- 0
    end;
    let seq = t.send_seq.(c) in
    t.send_seq.(c) <- seq + 1;
    Entered { epoch; seq }
  end

let mark_lost t ~from_proc ~to_proc ~epoch ~seq =
  (* a packet destroyed at entry (random loss): the receiver must not
     wait for this seq. Recorded here; the cursor skips it on the next
     arrival. No successor can be buffered yet — seqnos are assigned at
     send time, so every higher seq is sent, and arrives, strictly
     later. *)
  let c = chan t ~from_proc ~to_proc in
  Hashtbl.replace t.lost (c, epoch, seq) ()

let arrival t ~now ~from_proc ~to_proc ~base =
  (* a stalled transport holds every arrival to the window end — the
     head-of-line blocking a shared transport imposes on all its
     channels at once. [now] is unused but keeps the call shape uniform
     with entry-side checks. *)
  ignore now;
  let tr = transport t ~from_proc ~to_proc in
  let rec push at moved =
    match Net.transport_stalled_until t.faults ~transport:tr ~at with
    | Some stop -> push stop true
    | None ->
        if moved then t.counters.stall_delays <- t.counters.stall_delays + 1;
        at
  in
  push base false

let clear_channel t c ~epoch =
  (* the transport crashed with packets in its reorder buffers: they die
     with it. Returns how many were destroyed. *)
  let doomed =
    Hashtbl.fold
      (fun ((c', e, _) as key) pkts acc ->
        if c' = c && e <= epoch then (key, List.length pkts) :: acc else acc)
      t.buffer []
  in
  List.iter (fun (key, _) -> Hashtbl.remove t.buffer key) doomed;
  Hashtbl.iter
    (fun ((c', e, _) as key) () ->
      if c' = c && e <= epoch then Hashtbl.remove t.lost key)
    (Hashtbl.copy t.lost);
  List.fold_left (fun acc (_, n) -> acc + n) 0 doomed

let resolve t c ~epoch ~now =
  (* advance the cursor over lost seqs and release every buffered run of
     consecutive seqs, in seq order (FIFO within the channel) *)
  let released = ref [] in
  let continue = ref true in
  while !continue do
    let key = (c, epoch, t.cursor.(c)) in
    if Hashtbl.mem t.lost key then begin
      Hashtbl.remove t.lost key;
      t.cursor.(c) <- t.cursor.(c) + 1
    end
    else
      match Hashtbl.find_opt t.buffer key with
      | Some pkts ->
          Hashtbl.remove t.buffer key;
          List.iter
            (fun (p, arrived_at) ->
              if arrived_at < now then begin
                t.counters.hol_released <- t.counters.hol_released + 1;
                t.counters.hol_wait_ticks <-
                  t.counters.hol_wait_ticks + (now - arrived_at)
              end;
              released := p :: !released)
            pkts;
          t.cursor.(c) <- t.cursor.(c) + 1
      | None -> continue := false
  done;
  List.rev !released

let receive t ~now ~from_proc ~to_proc ~epoch ~seq packet =
  let tr = transport t ~from_proc ~to_proc in
  let c = chan t ~from_proc ~to_proc in
  if Net.transport_faulted t.faults ~transport:tr ~kind:Net.T_crash ~at:now
  then begin
    (* the transport is down at the arrival instant: this packet was in
       flight when it crashed, and whatever the channel had buffered
       dies with the transport's memory *)
    let buried = clear_channel t c ~epoch in
    t.counters.crash_drops <- t.counters.crash_drops + 1 + buried;
    ([], 1 + buried)
  end
  else
    let cur_epoch = Net.transport_epoch t.faults ~transport:tr ~at:now in
    if epoch < cur_epoch then begin
      (* sent before a crash the transport has since restarted from:
         the packet did not survive the restart *)
      t.counters.crash_drops <- t.counters.crash_drops + 1;
      ([], 1)
    end
    else begin
      let dropped = ref 0 in
      if epoch > t.recv_epoch.(c) then begin
        (* first packet of the new epoch: resynchronize the channel —
           pre-crash reorder state is gone *)
        let buried = clear_channel t c ~epoch:(epoch - 1) in
        dropped := buried;
        t.counters.crash_drops <- t.counters.crash_drops + buried;
        t.counters.resyncs <- t.counters.resyncs + 1;
        t.recv_epoch.(c) <- epoch;
        t.cursor.(c) <- 0
      end;
      if seq < t.cursor.(c) then begin
        (* a duplicate of an already-released seq: hand it through out of
           band — duplication is a channel fault the layers above must
           absorb, the wire does not hide it *)
        t.counters.wire_dups <- t.counters.wire_dups + 1;
        ([ packet ], !dropped)
      end
      else begin
        let key = (c, epoch, seq) in
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt t.buffer key)
        in
        Hashtbl.replace t.buffer key (prev @ [ (packet, now) ]);
        (resolve t c ~epoch ~now, !dropped)
      end
    end

let pending t =
  Hashtbl.fold (fun _ pkts acc -> acc + List.length pkts) t.buffer 0

let to_json t =
  let c = t.counters in
  Mo_obs.Jsonb.Obj
    [
      ("topology", Mo_obs.Jsonb.String (topology_to_string t.topology));
      ( "transports",
        Mo_obs.Jsonb.Int (ntransports t.topology ~nprocs:t.nprocs) );
      ("stall_delays", Mo_obs.Jsonb.Int c.stall_delays);
      ("part_drops", Mo_obs.Jsonb.Int c.part_drops);
      ("crash_drops", Mo_obs.Jsonb.Int c.crash_drops);
      ("resyncs", Mo_obs.Jsonb.Int c.resyncs);
      ("hol_released", Mo_obs.Jsonb.Int c.hol_released);
      ("hol_wait_ticks", Mo_obs.Jsonb.Int c.hol_wait_ticks);
      ("wire_dups", Mo_obs.Jsonb.Int c.wire_dups);
    ]
