(** Protocol synthesis from a classification — the hook toward the
    companion paper [19].

    The classification theorems make synthesis trivial once the class is
    known: each class has a universal protocol whose reachable set is the
    class's limit set ([X_async] / [X_co] / [X_sync]), and
    [X_limit ⊆ X_B] makes that protocol safe for [X_B]. The synthesized
    protocol may be stricter than necessary — per-predicate optimization is
    the companion paper's subject — but it is always sound and live. *)

val choose : Mo_core.Classify.verdict -> (Protocol.factory, string) result
(** [Tagless → do-nothing], [Tagged → RST causal],
    [General → token-serialized sync]; [Error] for an unimplementable
    verdict. *)

val for_predicate :
  Mo_core.Forbidden.t ->
  (Protocol.factory * Mo_core.Classify.result, string) result
(** Classify, then choose. *)

val for_spec :
  Mo_core.Spec.t -> (Protocol.factory, string) result

type choice = { factory : Protocol.factory; rationale : string }

val optimize :
  ?result:Mo_core.Classify.result ->
  Mo_core.Forbidden.t ->
  (choice, string) result
(** Per-predicate protocol optimization — a slice of the companion
    paper's generator. [result], when given, must be the caller's
    [Classify.classify p] (avoids classifying the same predicate twice per
    request). Looks for a sub-pattern of the predicate that a
    {e cheaper} protocol than the class-universal one already forbids:

    - a same-channel send chain [v0.s ▷ … ▷ vL.s] (channel equality
      derived from the [src]/[dst] guards) closed by [vL.r ▷ v0.r] is
      impossible under per-channel sequencing, so the FIFO protocol
      (constant-size tags) suffices when [L = 1], and the k-weaker window
      protocol with [k = L - 1] (weaker, lower latency) when [L > 1];
    - otherwise the classification's universal protocol is used.

    Soundness: [B] is a conjunction, so a protocol that makes any subset of
    its conjuncts (under the guards) unsatisfiable makes [B] unsatisfiable;
    guards only enlarge [X_B], never shrink it. The returned [rationale]
    says which rule fired. *)
