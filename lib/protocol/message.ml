type flush_kind = Ordinary | Forward | Backward | Two_way

type tag =
  | No_tag
  | Seqno of int
  | Flush of { seqno : int; barrier : int; kind : flush_kind }
  | Vector of Mo_order.Vclock.t
  | Matrix of Mo_order.Mclock.t
  | Ses of { tm : Mo_order.Vclock.t; dep : (int * Mo_order.Vclock.t) list }
  | Bounded_matrix of { m : Mo_order.Mclock.t; slack : int }
  | Ticket of int

let int_bytes = 4

let tag_bytes = function
  | No_tag -> 0
  | Seqno _ -> int_bytes
  | Flush _ -> 3 * int_bytes
  | Vector v -> int_bytes * Mo_order.Vclock.size v
  | Ses { tm; dep } ->
      (int_bytes * Mo_order.Vclock.size tm)
      + List.fold_left
          (fun acc (_, v) ->
            acc + int_bytes + (int_bytes * Mo_order.Vclock.size v))
          0 dep
  | Matrix m ->
      let n = Mo_order.Mclock.size m in
      int_bytes * n * n
  | Bounded_matrix { m; _ } ->
      let n = Mo_order.Mclock.size m in
      (int_bytes * n * n) + int_bytes
  | Ticket _ -> int_bytes

let tag_name = function
  | No_tag -> "none"
  | Seqno _ -> "seqno"
  | Flush _ -> "flush"
  | Vector _ -> "vector"
  | Ses _ -> "ses"
  | Matrix _ -> "matrix"
  | Bounded_matrix _ -> "bounded-matrix"
  | Ticket _ -> "ticket"

type user = {
  id : int;
  src : int;
  dst : int;
  color : int option;
  payload : int;
  tag : tag;
}

type control = { kind : string; data : int array }

let control_bytes c = String.length c.kind + (int_bytes * Array.length c.data)

type rel = { seq : int; cum_ack : int }

let rel_bytes = 2 * int_bytes

type packet =
  | User of user
  | Control of control
  | Framed of { rel : rel; inner : packet }

let is_control = function
  | Control _ -> true
  | User _ -> false
  | Framed { inner; _ } -> ( match inner with User _ -> false | _ -> true)

let rec pp_packet ppf = function
  | User u ->
      Format.fprintf ppf "user#%d %d->%d [%s]" u.id u.src u.dst
        (tag_name u.tag)
  | Control c ->
      Format.fprintf ppf "ctl:%s(%a)" c.kind
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        (Array.to_list c.data)
  | Framed { rel; inner } ->
      Format.fprintf ppf "rel[seq=%d,ack=%d](%a)" rel.seq rel.cum_ack
        pp_packet inner
