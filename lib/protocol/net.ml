type partition = {
  from_proc : int;
  to_proc : int;
  start_at : int;
  stop_at : int;
}

type crash = { proc : int; start_at : int; stop_at : int }

type spike = { permille : int; factor : int }

type tkind = T_stall | T_partition | T_crash

type tfault = { transport : int; kind : tkind; start_at : int; stop_at : int }

type t = {
  drop_permille : int;
  duplicate_permille : int;
  spike : spike;
  partitions : partition list;
  crashes : crash list;
  transport_faults : tfault list;
}

let no_spike = { permille = 0; factor = 1 }

let none =
  {
    drop_permille = 0;
    duplicate_permille = 0;
    spike = no_spike;
    partitions = [];
    crashes = [];
    transport_faults = [];
  }

let make ?(drop_permille = 0) ?(duplicate_permille = 0) ?(spike = no_spike)
    ?(partitions = []) ?(crashes = []) ?(transport_faults = []) () =
  {
    drop_permille;
    duplicate_permille;
    spike;
    partitions;
    crashes;
    transport_faults;
  }

let is_none t = t = none

let partitioned t ~from_proc ~to_proc ~at =
  List.exists
    (fun p ->
      p.from_proc = from_proc && p.to_proc = to_proc && at >= p.start_at
      && at < p.stop_at)
    t.partitions

let crashed_until t ~proc ~at =
  List.fold_left
    (fun acc c ->
      if c.proc = proc && at >= c.start_at && at < c.stop_at then
        match acc with
        | None -> Some c.stop_at
        | Some s -> Some (max s c.stop_at)
      else acc)
    None t.crashes

(* ---- transport fault domain ---- *)

let transport_faulted t ~transport ~kind ~at =
  List.exists
    (fun f ->
      f.transport = transport && f.kind = kind && at >= f.start_at
      && at < f.stop_at)
    t.transport_faults

let transport_stalled_until t ~transport ~at =
  List.fold_left
    (fun acc f ->
      if
        f.transport = transport && f.kind = T_stall && at >= f.start_at
        && at < f.stop_at
      then
        match acc with
        | None -> Some f.stop_at
        | Some s -> Some (max s f.stop_at)
      else acc)
    None t.transport_faults

let transport_epoch t ~transport ~at =
  (* how many crash-restart cycles the transport has completed: wire
     sequence state does not survive a restart, so each completed window
     starts a fresh epoch *)
  List.fold_left
    (fun acc f ->
      if f.transport = transport && f.kind = T_crash && at >= f.stop_at then
        acc + 1
      else acc)
    0 t.transport_faults

let validate ~nprocs t =
  let in_range p = p >= 0 && p < nprocs in
  if
    t.drop_permille < 0 || t.duplicate_permille < 0
    || t.drop_permille + t.duplicate_permille > 1000
  then Error "fault probabilities out of range"
  else if t.spike.permille < 0 || t.spike.permille > 1000 then
    Error "spike probability out of range"
  else if t.spike.factor < 1 then Error "spike factor must be at least 1"
  else
    let bad_window start stop = stop <= start in
    let rec check_parts = function
      | [] -> check_crashes t.crashes
      | p :: rest ->
          if not (in_range p.from_proc && in_range p.to_proc) then
            Error "partition endpoint out of range"
          else if bad_window p.start_at p.stop_at then
            Error "partition window is empty"
          else check_parts rest
    and check_crashes = function
      | [] -> check_tfaults t.transport_faults
      | c :: rest ->
          if not (in_range c.proc) then Error "crashed process out of range"
          else if bad_window c.start_at c.stop_at then
            Error "crash window is empty"
          else check_crashes rest
    and check_tfaults = function
      | [] -> Ok ()
      | f :: rest ->
          if f.transport < 0 then Error "transport id must be non-negative"
          else if bad_window f.start_at f.stop_at then
            Error "transport fault window is empty"
          else check_tfaults rest
    in
    check_parts t.partitions

(* ---- CLI syntax ---- *)

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_window what s =
  (* "T1-T2" *)
  match String.split_on_char '-' s with
  | [ a; b ] -> (
      match (parse_int what a, parse_int what b) with
      | Ok a, Ok b -> Ok (a, b)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | _ -> Error (Printf.sprintf "%s: expected T1-T2, got %S" what s)

let parse_clause acc clause =
  match String.index_opt clause '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" clause)
  | Some i -> (
      let key = String.trim (String.sub clause 0 i) in
      let v =
        String.trim (String.sub clause (i + 1) (String.length clause - i - 1))
      in
      match key with
      | "drop" ->
          Result.map (fun n -> { acc with drop_permille = n })
            (parse_int "drop" v)
      | "dup" ->
          Result.map (fun n -> { acc with duplicate_permille = n })
            (parse_int "dup" v)
      | "spike" -> (
          (* NxF: permille x factor *)
          match String.split_on_char 'x' v with
          | [ n; f ] -> (
              match (parse_int "spike" n, parse_int "spike factor" f) with
              | Ok n, Ok f -> Ok { acc with spike = { permille = n; factor = f } }
              | (Error _ as e), _ | _, (Error _ as e) -> e)
          | _ -> Error (Printf.sprintf "spike: expected NxF, got %S" v))
      | "part" -> (
          (* SRC>DST@T1-T2 *)
          match String.index_opt v '@' with
          | None -> Error (Printf.sprintf "part: expected SRC>DST@T1-T2, got %S" v)
          | Some j -> (
              let link = String.sub v 0 j
              and win = String.sub v (j + 1) (String.length v - j - 1) in
              match String.split_on_char '>' link with
              | [ src; dst ] -> (
                  match
                    ( parse_int "part src" src,
                      parse_int "part dst" dst,
                      parse_window "part window" win )
                  with
                  | Ok f, Ok t, Ok (start_at, stop_at) ->
                      Ok
                        {
                          acc with
                          partitions =
                            acc.partitions
                            @ [ { from_proc = f; to_proc = t; start_at; stop_at } ];
                        }
                  | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e)
                    -> e)
              | _ ->
                  Error (Printf.sprintf "part: expected SRC>DST@T1-T2, got %S" v)))
      | "crash" -> (
          (* P@T1-T2 *)
          match String.index_opt v '@' with
          | None -> Error (Printf.sprintf "crash: expected P@T1-T2, got %S" v)
          | Some j -> (
              let p = String.sub v 0 j
              and win = String.sub v (j + 1) (String.length v - j - 1) in
              match (parse_int "crash proc" p, parse_window "crash window" win) with
              | Ok proc, Ok (start_at, stop_at) ->
                  Ok
                    {
                      acc with
                      crashes = acc.crashes @ [ { proc; start_at; stop_at } ];
                    }
              | (Error _ as e), _ | _, (Error _ as e) -> e))
      | ("stall" | "tpart" | "tcrash") as tk -> (
          (* T@T1-T2: a fault on a whole transport — every channel riding
             it is affected at once *)
          let kind =
            match tk with
            | "stall" -> T_stall
            | "tpart" -> T_partition
            | _ -> T_crash
          in
          match String.index_opt v '@' with
          | None -> Error (Printf.sprintf "%s: expected T@T1-T2, got %S" tk v)
          | Some j -> (
              let tr = String.sub v 0 j
              and win = String.sub v (j + 1) (String.length v - j - 1) in
              match
                ( parse_int (tk ^ " transport") tr,
                  parse_window (tk ^ " window") win )
              with
              | Ok transport, Ok (start_at, stop_at) ->
                  Ok
                    {
                      acc with
                      transport_faults =
                        acc.transport_faults
                        @ [ { transport; kind; start_at; stop_at } ];
                    }
              | (Error _ as e), _ | _, (Error _ as e) -> e))
      | other -> Error (Printf.sprintf "unknown fault kind %S" other))

let parse s =
  let clauses =
    List.filter
      (fun c -> String.trim c <> "")
      (String.split_on_char ',' s)
  in
  List.fold_left
    (fun acc clause ->
      match acc with Error _ -> acc | Ok t -> parse_clause t clause)
    (Ok none) clauses

let to_string t =
  let clauses =
    (if t.drop_permille > 0 then [ Printf.sprintf "drop=%d" t.drop_permille ]
     else [])
    @ (if t.duplicate_permille > 0 then
         [ Printf.sprintf "dup=%d" t.duplicate_permille ]
       else [])
    @ (if t.spike.permille > 0 then
         [ Printf.sprintf "spike=%dx%d" t.spike.permille t.spike.factor ]
       else [])
    @ List.map
        (fun p ->
          Printf.sprintf "part=%d>%d@%d-%d" p.from_proc p.to_proc p.start_at
            p.stop_at)
        t.partitions
    @ List.map
        (fun c -> Printf.sprintf "crash=%d@%d-%d" c.proc c.start_at c.stop_at)
        t.crashes
    @ List.map
        (fun f ->
          let k =
            match f.kind with
            | T_stall -> "stall"
            | T_partition -> "tpart"
            | T_crash -> "tcrash"
          in
          Printf.sprintf "%s=%d@%d-%d" k f.transport f.start_at f.stop_at)
        t.transport_faults
  in
  String.concat "," clauses

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "none"
  else Format.pp_print_string ppf (to_string t)
