(** Ack/retransmit recovery layer: the reliable-network assumption as a
    derived property.

    The paper's theory (Theorem 1, the §4.3 cost table) is stated over a
    reliable asynchronous network. {!wrap} rebuilds that assumption on top
    of the lossy, partitioned substrate of {!Net}: every packet the inner
    protocol emits — user or control — is framed with a per-directed-
    channel sequence number ({!Message.rel}), buffered in a retransmission
    queue, and re-sent on timeout with exponential backoff until the
    receiver's cumulative acknowledgement covers it (or a retry cap is
    hit). The receive side deduplicates by channel sequence number, so the
    inner protocol sees each packet exactly once, in arbitrary order.

    The layer is deliberately {e reliable but not order-restoring}: frames
    are handed to the inner protocol the moment they first arrive, gaps
    and all. Whatever ordering guarantee the wrapped protocol provides is
    therefore still the protocol's own doing, and its conformance results
    under faults re-verify the ordering theorems end to end rather than
    smuggling FIFO in through the transport.

    Acknowledgements are piggybacked on every outgoing frame of the
    reverse channel and also sent standalone (an unsequenced frame with
    [seq = -1]) on each sequenced arrival, so a one-way channel still
    drains its retransmission queue.

    Cost metrics land in the registry under [net.*]:
    [net.retransmits_total], [net.timeouts_total], [net.acks_total],
    [net.dup_frames_total], [net.gave_up_total], and the
    [net.recovery_latency] histogram (first transmission → covering ack,
    for frames that needed at least one retransmission). *)

module Window : sig
  (** Bounded duplicate-suppression memory.

      Exact membership for identifiers within [size] of the highest
      identifier seen; anything older is {e assumed} already seen (a
      duplicate), which is sound whenever the network cannot delay a
      first arrival by more than [size] fresh identifiers from the same
      peer. Memory is a fixed [size]-slot array — it does not grow with
      run length, which is the point (see {!Wrap.dedup}). *)

  type t

  val create : size:int -> t
  (** @raise Invalid_argument when [size < 1]. *)

  val capacity : t -> int
  (** The fixed slot count — the memory bound. *)

  val mem : t -> int -> bool
  (** Has this identifier been marked (or aged out of the window)?
      Identifiers are non-negative. *)

  val mark : t -> int -> bool
  (** Mark an identifier as seen; [true] when it was fresh, [false] when
      {!mem} already held. *)
end

type config = {
  rto : int;  (** initial retransmission timeout, in virtual-time ticks *)
  backoff : int;  (** timeout multiplier per retry, ≥ 1 *)
  max_rto : int;  (** ceiling on the backed-off timeout *)
  max_retries : int;
      (** retransmissions per frame before the sender gives up on it
          (liveness is then honestly lost — the run reports
          [all_delivered = false] rather than spinning forever) *)
}

val default_config : config
(** rto 24 (three times the default worst-case round trip), backoff 2,
    max_rto 2048, max_retries 12 — rides out every fault window the test
    grids use. *)

val wrap :
  ?config:config ->
  ?registry:Mo_obs.Metrics.t ->
  Protocol.factory ->
  Protocol.factory
(** [wrap factory] is [factory] behind the recovery layer. The name gains
    ["+rel"]; the kind becomes {!Protocol.General} — reliability costs
    control traffic, whatever the inner class was. [registry] receives the
    [net.*] metrics (a private throwaway registry is used when omitted).
    The wrapper owns even timer keys and remaps the inner protocol's keys
    to odd ones, so timer-using protocols compose. *)
