open Mo_order

type pending = { id : int; from : int; st : Mclock.t }

type state = {
  mutable sent : Mclock.t;
  deliv : int array; (* deliv.(k): messages from k delivered here *)
  mutable buffer : pending list; (* arrival order preserved *)
}

let make ~nprocs ~me =
  let st =
    { sent = Mclock.create nprocs; deliv = Array.make nprocs 0; buffer = [] }
  in
  let deliverable (p : pending) =
    let ok = ref true in
    for k = 0 to nprocs - 1 do
      if st.deliv.(k) < Mclock.get p.st k me then ok := false
    done;
    !ok
  in
  let deliver (p : pending) =
    st.deliv.(p.from) <- st.deliv.(p.from) + 1;
    st.sent <- Mclock.merge st.sent p.st;
    (* account for the delivered message itself: its sender recorded it in
       SENT only after tagging, so the merged matrix excludes it *)
    if Mclock.get st.sent p.from me < st.deliv.(p.from) then
      st.sent <- Mclock.record_send st.sent ~src:p.from ~dst:me;
    Protocol.Deliver p.id
  in
  let rec drain acc =
    match List.partition deliverable st.buffer with
    | [], _ -> List.rev acc
    | ready, rest ->
        st.buffer <- rest;
        let acts = List.map deliver ready in
        drain (List.rev_append acts acc)
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        let tag = Message.Matrix st.sent in
        st.sent <- Mclock.record_send st.sent ~src:me ~dst:intent.dst;
        [
          Protocol.Send_user
            {
              Message.id = intent.id;
              src = me;
              dst = intent.dst;
              color = intent.color;
              payload = intent.payload;
              tag;
            };
        ]);
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User { id; tag = Message.Matrix m; _ } ->
            st.buffer <- st.buffer @ [ { id; from; st = m } ];
            drain []
        | Message.User _ ->
            invalid_arg "Causal_rst: user message without matrix tag"
        | Message.Control _ | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth = (fun () -> List.length st.buffer);
  }

let factory =
  { Protocol.proto_name = "causal-rst"; kind = Protocol.Tagged; make }
