(** Shared-transport substrate: channels multiplexed over transports.

    The paper's channel model gives every directed process pair its own
    private wire. Real stacks multiplex many logical channels over a few
    transports (one TCP connection, one message bus), which changes the
    failure shape: a transport fault strikes {e every} channel riding the
    transport at once, while per-channel faults (drop, dup, delay spike)
    stay independent. This module is the simulator's model of that layer:

    - a {e channel} is a directed process pair; the {!topology} maps it
      to a transport;
    - within a channel the wire is FIFO: packets get per-channel seqnos
      at entry and a reorder buffer at the receiving endpoint releases
      them in seq order — a packet overtaking its predecessor waits
      (head-of-line blocking);
    - across channels — even channels of the same transport — and across
      transports there is no ordering guarantee;
    - transport faults ({!Net.tfault}) correlate failures: a stall holds
      every channel's arrivals to the window end, a partition kills every
      entering packet, a crash-restart destroys in-flight and buffered
      packets and resets wire seqnos (a new {e epoch}) on all channels.

    The simulator owns event timing and randomness; this module owns only
    wire state (seqnos, epochs, reorder buffers) and fault accounting, so
    runs stay deterministic. Enabled per run via {!Sim.config}[.topology];
    [None] bypasses it entirely and preserves the historical per-pair
    behavior byte for byte. *)

type topology =
  | Shared  (** one transport carries every channel *)
  | Per_pair  (** a private transport per directed pair (paper model) *)
  | Split2  (** two transports; channel [from → to] rides [(from+to) mod 2] *)

val all_topologies : topology list

val topology_of_string : string -> (topology, string) result
(** Accepts ["shared"], ["per-pair"] (or ["per_pair"]), ["split2"]. *)

val topology_to_string : topology -> string

val ntransports : topology -> nprocs:int -> int

val transport_of : topology -> nprocs:int -> from_proc:int -> to_proc:int -> int
(** Which transport carries the channel [from_proc → to_proc]. *)

(** Per-run fault and head-of-line accounting, all monotone counters. *)
type counters = {
  mutable stall_delays : int;
      (** packets whose arrival was deferred by a stalled transport *)
  mutable part_drops : int;  (** packets killed entering a partitioned transport *)
  mutable crash_drops : int;
      (** packets lost to a transport crash: at entry, in flight, or
          sitting in a reorder buffer when the transport died *)
  mutable resyncs : int;
      (** channel receive-side seqno resets after a crash-restart *)
  mutable hol_released : int;
      (** packets released from the reorder buffer strictly later than
          they arrived (head-of-line blocked behind a missing seq) *)
  mutable hol_wait_ticks : int;  (** total virtual time those packets waited *)
  mutable wire_dups : int;
      (** duplicates of an already-released seq, passed through out of band *)
}

type t

val create : topology -> nprocs:int -> faults:Net.t -> t
val topology : t -> topology
val counters : t -> counters

type verdict =
  | Entered of { epoch : int; seq : int }
      (** wire coordinates the packet carries to {!receive} *)
  | Entry_lost  (** destroyed entering a partitioned or crashed transport *)

val enter : t -> now:int -> from_proc:int -> to_proc:int -> verdict
(** A packet enters its channel's transport. Assigns the next per-channel
    seqno in the transport's current epoch (resetting the channel's seq
    counter first if the transport restarted since the channel last
    sent), or kills the packet if the transport is partitioned or down. *)

val mark_lost : t -> from_proc:int -> to_proc:int -> epoch:int -> seq:int -> unit
(** The packet with these wire coordinates was destroyed after entry
    (per-channel random loss). The receive cursor will skip the seq
    instead of blocking the channel forever. *)

val arrival : t -> now:int -> from_proc:int -> to_proc:int -> base:int -> int
(** Actual arrival instant for a packet due at [base]: a stalled
    transport holds it (and every other arrival on the transport) to the
    stall window's end. *)

val receive :
  t ->
  now:int ->
  from_proc:int ->
  to_proc:int ->
  epoch:int ->
  seq:int ->
  Message.packet ->
  Message.packet list * int
(** A packet reaches the receiving endpoint of its channel. Returns
    [(released, destroyed)]: the packets the wire releases to the process
    {e in seq order} (possibly none, if this one must wait for a
    predecessor; possibly several, if it fills a gap), and how many
    packets the transport destroyed at this instant (this one arriving
    into a crash window or from a pre-restart epoch, plus any buffered
    packets that died with the transport's memory). Duplicates of an
    already-released seq pass straight through — duplication is a
    channel fault the layers above must absorb. *)

val pending : t -> int
(** Packets currently held in reorder buffers (never released). *)

val to_json : t -> Mo_obs.Jsonb.t
(** Topology, transport count and all {!counters} as a JSON object. *)
