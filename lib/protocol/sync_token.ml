type waiting = { id : int; dst : int; color : int option; payload : int }

type state = {
  me : int;
  (* sender side: intents waiting for a grant, in request order *)
  mutable wanting : waiting list;
  (* coordinator side (only used on process 0) *)
  mutable queue : int list; (* requesting processes, FIFO *)
  mutable busy : bool;
  mutable next_ticket : int;
}

let coordinator = 0

let ctl kind data = { Message.kind; data }

let make ~nprocs:_ ~me =
  let st = { me; wanting = []; queue = []; busy = false; next_ticket = 0 } in
  let grant_next () =
    (* coordinator: issue a grant if idle and someone is waiting *)
    if (not st.busy) && st.queue <> [] then begin
      match st.queue with
      | p :: rest ->
          st.queue <- rest;
          st.busy <- true;
          let t = st.next_ticket in
          st.next_ticket <- t + 1;
          [ Protocol.Send_control { dst = p; ctl = ctl "grant" [| t |] } ]
      | [] -> []
    end
    else []
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        st.wanting <-
          st.wanting
          @ [
              {
                id = intent.id;
                dst = intent.dst;
                color = intent.color;
                payload = intent.payload;
              };
            ];
        [
          Protocol.Send_control
            { dst = coordinator; ctl = ctl "req" [| st.me |] };
        ]);
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User u ->
            (* serialization makes immediate delivery safe *)
            [
              Protocol.Deliver u.Message.id;
              Protocol.Send_control
                { dst = coordinator; ctl = ctl "ack" [||] };
            ]
        | Message.Control { kind = "req"; data } ->
            st.queue <- st.queue @ [ data.(0) ];
            grant_next ()
        | Message.Control { kind = "grant"; data } -> (
            match st.wanting with
            | w :: rest ->
                st.wanting <- rest;
                [
                  Protocol.Send_user
                    {
                      Message.id = w.id;
                      src = st.me;
                      dst = w.dst;
                      color = w.color;
                      payload = w.payload;
                      tag = Message.Ticket data.(0);
                    };
                ]
            | [] -> invalid_arg "Sync_token: grant without pending intent")
        | Message.Control { kind = "ack"; _ } ->
            st.busy <- false;
            ignore from;
            grant_next ()
        | Message.Control { kind; _ } ->
            invalid_arg ("Sync_token: unknown control kind " ^ kind)
        | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth =
      (fun () -> List.length st.wanting + List.length st.queue);
  }

let factory =
  { Protocol.proto_name = "sync-token"; kind = Protocol.General; make }
