open Mo_order

type pending = { id : int; tm : Vclock.t; constr : Vclock.t option }
(* constr: timestamp of the latest earlier message to me, if any *)

type state = {
  me : int;
  mutable v : Vclock.t;
      (* delivered-knowledge vector; own entry counts own sends *)
  dep : (int, Vclock.t) Hashtbl.t;
      (* per destination: timestamp of the latest message sent to it in
         our causal past *)
  mutable buffer : pending list;
}

let merge_dep dep (k, t) =
  match Hashtbl.find_opt dep k with
  | Some t' -> Hashtbl.replace dep k (Vclock.merge t t')
  | None -> Hashtbl.replace dep k t

let make ~nprocs ~me =
  let st =
    { me; v = Vclock.create nprocs; dep = Hashtbl.create 8; buffer = [] }
  in
  let deliverable (p : pending) =
    match p.constr with
    | None -> true
    | Some t -> Vclock.leq t st.v
  in
  let rec drain acc =
    match List.partition deliverable st.buffer with
    | [], _ -> List.rev acc
    | ready, rest ->
        st.buffer <- rest;
        let acts =
          List.map
            (fun (p : pending) ->
              st.v <- Vclock.merge st.v p.tm;
              Protocol.Deliver p.id)
            ready
        in
        drain (List.rev_append acts acc)
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        (* the send is an event: bump our own entry; tm identifies it *)
        st.v <- Vclock.tick st.v st.me;
        let tm = st.v in
        let dep_list =
          Hashtbl.fold (fun k t acc -> (k, t) :: acc) st.dep []
        in
        (* record this message as the latest one sent to its destination *)
        merge_dep st.dep (intent.dst, tm);
        [
          Protocol.Send_user
            {
              Message.id = intent.id;
              src = st.me;
              dst = intent.dst;
              color = intent.color;
              payload = intent.payload;
              tag = Message.Ses { tm; dep = dep_list };
            };
        ]);
    on_packet =
      (fun ~now:_ ~from:_ packet ->
        match packet with
        | Message.User { id; tag = Message.Ses { tm; dep }; _ } ->
            (* fold the sender's knowledge of traffic to OTHER destinations
               into ours (it is in our causal past once we deliver, but
               merging at receive is also safe: it only strengthens the
               constraints on our future sends) *)
            let constr =
              List.fold_left
                (fun acc (k, t) ->
                  if k = st.me then
                    Some
                      (match acc with
                      | Some t' -> Vclock.merge t t'
                      | None -> t)
                  else begin
                    merge_dep st.dep (k, t);
                    acc
                  end)
                None dep
            in
            st.buffer <- st.buffer @ [ { id; tm; constr } ];
            drain []
        | Message.User _ -> invalid_arg "Causal_ses: user message without tag"
        | Message.Control _ | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth = (fun () -> List.length st.buffer);
  }

let factory =
  { Protocol.proto_name = "causal-ses"; kind = Protocol.Tagged; make }
