open Mo_obs

let record registry (o : Sim.outcome) =
  let c name help v = Metrics.add (Metrics.counter registry ~help name) v
  and g name help v = Metrics.set (Metrics.gauge registry ~help name) v in
  let s = o.Sim.stats in
  let delivered =
    Array.fold_left
      (fun acc sp -> if Span.is_complete sp then acc + 1 else acc)
      0 o.Sim.spans
  in
  c "sim.msgs_total" "messages in the workload" (Array.length o.Sim.msgs);
  c "sim.delivered_total" "messages with a complete lifecycle" delivered;
  c "sim.user_packets" "user messages put on the wire" s.Sim.user_packets;
  c "sim.control_packets" "control messages put on the wire"
    s.Sim.control_packets;
  c "sim.tag_bytes" "piggybacked tag bytes (paper: tagging cost)"
    s.Sim.tag_bytes;
  c "sim.control_bytes" "control traffic bytes (paper: general cost)"
    s.Sim.control_bytes;
  c "sim.retransmits" "framed packets re-emitted by a recovery layer"
    s.Sim.retransmits;
  c "sim.fault_drops" "packets destroyed by fault injection"
    s.Sim.fault_drops;
  g "sim.makespan" "virtual time of the last event" s.Sim.makespan;
  g "sim.max_pending" "protocol queue-depth high-watermark" s.Sim.max_pending;
  g "sim.live" "1 when every message was delivered"
    (if o.Sim.all_delivered then 1 else 0);
  (* transport-domain fault accounting, only when the run multiplexed
     channels over shared transports — keeps legacy registries stable *)
  (match o.Sim.transport with
  | None -> ()
  | Some ts ->
      let tc = Transport.counters ts in
      c "net.transport.stall_delays"
        "arrivals deferred by a stalled transport" tc.Transport.stall_delays;
      c "net.transport.part_drops"
        "packets killed entering a partitioned transport"
        tc.Transport.part_drops;
      c "net.transport.crash_drops"
        "packets lost to a transport crash (entry, in flight, or buffered)"
        tc.Transport.crash_drops;
      c "net.transport.resyncs"
        "channel seqno resynchronizations after a transport restart"
        tc.Transport.resyncs;
      c "net.transport.hol_released"
        "packets released late from a reorder buffer (head-of-line blocked)"
        tc.Transport.hol_released;
      c "net.transport.hol_wait_ticks"
        "total virtual time head-of-line-blocked packets waited"
        tc.Transport.hol_wait_ticks;
      c "net.transport.wire_dups"
        "duplicates of an already-released seq passed through"
        tc.Transport.wire_dups;
      c "net.transport.pending"
        "packets still held in reorder buffers at the end of the run"
        (Transport.pending ts));
  Span.record registry o.Sim.spans

let run ?config ?registry factory ops =
  let config =
    match config with Some c -> c | None -> Sim.default_config ~nprocs:4
  in
  let registry =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  match Sim.execute config (Wrap.instrument registry factory) ops with
  | Error e -> Error e
  | Ok outcome ->
      record registry outcome;
      Ok (registry, outcome)

let report_row registry ~(factory : Protocol.factory) =
  Report.row ~label:factory.Protocol.proto_name
    ~kind:(Protocol.kind_to_string factory.Protocol.kind)
    registry
