open Mo_order
module Sset = Set.Make (String)

type outcome = {
  run : Run.t option;
  all_delivered : bool;
  control_packets : int;
}

type stats = { executions : int; truncated : bool }

type pending =
  | P_invoke of { proc : int; intent : Protocol.intent }
  | P_arrive of { dst : int; from : int; packet : Message.packet }
  | P_timer of { proc : int; key : int }

(* replay one execution following [choices]; at the first unconsumed choice
   point return how many alternatives there are *)
type step_result =
  | Done of outcome
  | Branch of int (* pending-event count at the unconsumed choice point *)
  | Misbehaviour of string

let expand ~nprocs ops =
  (* reuse the simulator's broadcast expansion by time-then-index order;
     per-process invoke order = op order *)
  let intents = ref [] in
  let next_id = ref 0 in
  List.iteri
    (fun group (op : Sim.op) ->
      let mk dst =
        let id = !next_id in
        incr next_id;
        {
          Protocol.id;
          dst;
          color = op.Sim.color;
          payload = op.Sim.payload;
          group = Some group;
          flush = op.Sim.flush;
        }
      in
      match op.Sim.dst with
      | Sim.Unicast d -> intents := (op.Sim.src, mk d) :: !intents
      | Sim.Broadcast ->
          for d = 0 to nprocs - 1 do
            if d <> op.Sim.src then intents := (op.Sim.src, mk d) :: !intents
          done)
    ops;
  List.rev !intents

let replay ~nprocs factory intents choices =
  let nmsgs = List.length intents in
  let msgs = Array.make nmsgs (0, 0) in
  let colors = Array.make nmsgs None in
  List.iter
    (fun (src, (i : Protocol.intent)) ->
      msgs.(i.Protocol.id) <- (src, i.Protocol.dst);
      colors.(i.Protocol.id) <- i.Protocol.color)
    intents;
  let instances =
    Array.init nprocs (fun me -> factory.Protocol.make ~nprocs ~me)
  in
  (* per-process invoke queues, fixed order *)
  let invokes = Array.make nprocs [] in
  List.iter
    (fun (src, i) -> invokes.(src) <- invokes.(src) @ [ i ])
    intents;
  let arrivals = ref [] in
  (* in-flight packets, stable order *)
  let timers = ref [] in
  (* armed timers; the explorer is untimed, so a timer may fire only once
     every packet in flight has been consumed (quiescence) — a sound
     schedule, and the one that keeps retransmission layers terminating:
     by quiescence every ack has arrived, so the timer is a no-op *)
  let seq_rev = Array.make nprocs [] in
  let record p e = seq_rev.(p) <- e :: seq_rev.(p) in
  let sent = Array.make nmsgs false
  and received = Array.make nmsgs false
  and delivered = Array.make nmsgs false in
  let control_packets = ref 0 in
  let error = ref None in
  let fail s = if !error = None then error := Some s in
  let apply_actions p actions =
    List.iter
      (fun (a : Protocol.action) ->
        match a with
        | Protocol.Send_user u ->
            if u.Message.src <> p then fail "user message with wrong src"
            else if u.Message.id < 0 || u.Message.id >= nmsgs then
              fail "unknown message id"
            else if sent.(u.Message.id) then fail "message sent twice"
            else begin
              sent.(u.Message.id) <- true;
              record p { Event.Sys.msg = u.Message.id; kind = Event.Sys.Send };
              arrivals :=
                !arrivals
                @ [
                    P_arrive
                      { dst = u.Message.dst; from = p; packet = Message.User u };
                  ]
            end
        | Protocol.Send_control { dst; ctl } ->
            incr control_packets;
            arrivals :=
              !arrivals
              @ [ P_arrive { dst; from = p; packet = Message.Control ctl } ]
        | Protocol.Deliver id ->
            if id < 0 || id >= nmsgs then fail "unknown delivery id"
            else if not received.(id) then fail "delivered before receive"
            else if delivered.(id) then fail "delivered twice"
            else if snd msgs.(id) <> p then fail "delivered at wrong process"
            else begin
              delivered.(id) <- true;
              record p { Event.Sys.msg = id; kind = Event.Sys.Deliver }
            end
        | Protocol.Send_framed { dst; rel; packet; retransmit } -> (
            let enqueue () =
              arrivals :=
                !arrivals
                @ [
                    P_arrive
                      {
                        dst;
                        from = p;
                        packet = Message.Framed { rel; inner = packet };
                      };
                  ]
            in
            match packet with
            | Message.Framed _ -> fail "nested framing"
            | Message.User u ->
                if u.Message.src <> p then fail "user message with wrong src"
                else if u.Message.id < 0 || u.Message.id >= nmsgs then
                  fail "unknown message id"
                else if retransmit then
                  if not sent.(u.Message.id) then
                    fail "retransmit before first send"
                  else enqueue ()
                else if sent.(u.Message.id) then fail "message sent twice"
                else begin
                  sent.(u.Message.id) <- true;
                  record p
                    { Event.Sys.msg = u.Message.id; kind = Event.Sys.Send };
                  enqueue ()
                end
            | Message.Control _ ->
                if not retransmit then incr control_packets;
                enqueue ())
        | Protocol.Set_timer { delay; key } ->
            if delay < 1 then fail "timer delay must be positive"
            else timers := !timers @ [ P_timer { proc = p; key } ])
      actions
  in
  let pending () =
    let live =
      List.filter_map
        (fun p ->
          match invokes.(p) with
          | i :: _ -> Some (P_invoke { proc = p; intent = i })
          | [] -> None)
        (List.init nprocs Fun.id)
      @ !arrivals
    in
    if live <> [] then live else !timers
  in
  let exec_event ev =
    match ev with
    | P_invoke { proc; intent } ->
        invokes.(proc) <- List.tl invokes.(proc);
        record proc
          { Event.Sys.msg = intent.Protocol.id; kind = Event.Sys.Invoke };
        apply_actions proc (instances.(proc).Protocol.on_invoke ~now:0 intent)
    | P_arrive { dst; from; packet } ->
        arrivals := List.filter (fun e -> e != ev) !arrivals;
        (match packet with
        | Message.User u | Message.Framed { inner = Message.User u; _ } ->
            if not received.(u.Message.id) then begin
              received.(u.Message.id) <- true;
              record dst
                { Event.Sys.msg = u.Message.id; kind = Event.Sys.Receive }
            end
        | Message.Control _ | Message.Framed _ -> ());
        apply_actions dst (instances.(dst).Protocol.on_packet ~now:0 ~from packet)
    | P_timer { proc; key } ->
        timers := List.filter (fun e -> e != ev) !timers;
        apply_actions proc (instances.(proc).Protocol.on_timer ~now:0 ~key)
  in
  let rec consume = function
    | [] -> (
        match (!error, pending ()) with
        | Some e, _ -> Misbehaviour e
        | None, [] ->
            let all_delivered = Array.for_all Fun.id delivered in
            let run =
              if not all_delivered then None
              else
                let user_seq =
                  Array.map
                    (fun events ->
                      List.filter_map
                        (fun (e : Event.Sys.t) ->
                          match e.kind with
                          | Event.Sys.Send -> Some (Event.send e.msg)
                          | Event.Sys.Deliver -> Some (Event.deliver e.msg)
                          | Event.Sys.Invoke | Event.Sys.Receive -> None)
                        (List.rev events))
                    seq_rev
                in
                match Run.of_sequences ~nprocs ~msgs ~colors user_seq with
                | Ok r -> Some r
                | Error _ -> None
            in
            Done
              {
                run;
                all_delivered;
                control_packets = !control_packets;
              }
        | None, ps -> Branch (List.length ps))
    | c :: rest -> (
        match !error with
        | Some e -> Misbehaviour e
        | None -> (
            let ps = pending () in
            match List.nth_opt ps c with
            | Some ev ->
                exec_event ev;
                consume rest
            | None -> Misbehaviour "internal: stale choice"))
  in
  consume choices

let explore ?(max_executions = 200_000) ~nprocs factory ops ~on_outcome =
  let intents = expand ~nprocs ops in
  let executions = ref 0 in
  let truncated = ref false in
  let error = ref None in
  let rec dfs choices =
    if !truncated || !error <> None then ()
    else
      match replay ~nprocs factory intents choices with
      | Misbehaviour e -> error := Some e
      | Done outcome ->
          incr executions;
          if !executions >= max_executions then truncated := true;
          on_outcome outcome
      | Branch n ->
          let i = ref 0 in
          while !i < n && (not !truncated) && !error = None do
            dfs (choices @ [ !i ]);
            incr i
          done
  in
  dfs [];
  match !error with
  | Some e -> Error e
  | None -> Ok { executions = !executions; truncated = !truncated }

let view_key r =
  String.concat "|"
    (List.init (Run.nprocs r) (fun p ->
         String.concat ","
           (List.map
              (fun e -> string_of_int (Event.encode e))
              (Run.sequence r p))))

let distinct_user_views ?max_executions ~nprocs factory ops =
  let seen = Hashtbl.create 64 in
  let runs = ref [] in
  match
    explore ?max_executions ~nprocs factory ops ~on_outcome:(fun o ->
        match o.run with
        | Some r ->
            let k = view_key r in
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.replace seen k ();
              runs := r :: !runs
            end
        | None -> ())
  with
  | Ok _ -> Ok (List.rev !runs)
  | Error e -> Error e

(* ---- parallel exploration ---- *)

(* BFS-expand the root of the schedule tree into choice prefixes until
   there are enough subtrees to feed every worker, or the tree proves
   shallow. Prefixes whose replay already completes (or misbehaves) stay
   as leaves; expanding a Branch replaces the prefix by its children in
   choice order, so reading the final list left to right visits subtrees
   exactly in sequential DFS order. *)
let shard_prefixes ~target ~nprocs factory intents =
  let max_depth = 4 in
  let rec grow depth frontier nleaves =
    if depth >= max_depth || nleaves >= target then frontier
    else begin
      let expanded = ref false in
      let nleaves = ref 0 in
      let next =
        List.concat_map
          (fun (leaf, prefix) ->
            if leaf then begin
              incr nleaves;
              [ (true, prefix) ]
            end
            else
              match replay ~nprocs factory intents prefix with
              | Done _ | Misbehaviour _ ->
                  incr nleaves;
                  [ (true, prefix) ]
              | Branch n ->
                  expanded := true;
                  nleaves := !nleaves + n;
                  List.init n (fun i -> (false, prefix @ [ i ])))
          frontier
      in
      if !expanded then grow (depth + 1) next !nleaves else next
    end
  in
  List.map snd (grow 0 [ (false, []) ] 1)

let explore_par ?pool ?(max_executions = 200_000) ~nprocs factory ops ~init ~f
    ~merge () =
  let intents = expand ~nprocs ops in
  let with_pool k =
    match pool with Some p -> k p | None -> k (Mo_par.Pool.create ())
  in
  with_pool (fun pool ->
      let jobs = Mo_par.Pool.jobs pool in
      let shards =
        Array.of_list
          (shard_prefixes ~target:(jobs * 8) ~nprocs factory intents)
      in
      (* the execution budget is shared: exactly [max_executions] complete
         executions are folded in total, mirroring the sequential
         truncation point. Which executions survive truncation is
         schedule-dependent for jobs > 1 — runs that never truncate (the
         only ones the tests pin) are byte-identical at every job
         count. *)
      let budget = Atomic.make max_executions in
      let truncated = Atomic.make false in
      let error = Atomic.make None in
      let stop () = Atomic.get truncated || Atomic.get error <> None in
      let run_shard i =
        let acc = ref init in
        let rec dfs choices =
          if stop () then ()
          else
            match replay ~nprocs factory intents choices with
            | Misbehaviour e ->
                ignore (Atomic.compare_and_set error None (Some e))
            | Done outcome ->
                let before = Atomic.fetch_and_add budget (-1) in
                if before <= 0 then Atomic.set truncated true
                else begin
                  if before = 1 then Atomic.set truncated true;
                  acc := f !acc outcome
                end
            | Branch n ->
                let i = ref 0 in
                while !i < n && not (stop ()) do
                  dfs (choices @ [ !i ]);
                  incr i
                done
        in
        dfs shards.(i);
        !acc
      in
      let total =
        Mo_par.Pool.fold pool (Array.length shards) ~f:run_shard ~merge ~init
      in
      match Atomic.get error with
      | Some e -> Error e
      | None ->
          let executions = max_executions - max 0 (Atomic.get budget) in
          Ok (total, { executions; truncated = Atomic.get truncated }))

type views = { vkeys : Sset.t; vruns_rev : Run.t list }

let views_add acc r =
  let k = view_key r in
  if Sset.mem k acc.vkeys then acc
  else { vkeys = Sset.add k acc.vkeys; vruns_rev = r :: acc.vruns_rev }

let distinct_user_views_par ?pool ?max_executions ~nprocs factory ops =
  match
    explore_par ?pool ?max_executions ~nprocs factory ops
      ~init:{ vkeys = Sset.empty; vruns_rev = [] }
      ~f:(fun acc o ->
        match o.run with Some r -> views_add acc r | None -> acc)
      ~merge:(fun a b ->
        (* first occurrence wins, shards in DFS order: same dedup order
           as the sequential Hashtbl pass *)
        List.fold_left views_add a (List.rev b.vruns_rev))
      ()
  with
  | Ok (acc, stats) -> Ok (List.rev acc.vruns_rev, stats)
  | Error e -> Error e
