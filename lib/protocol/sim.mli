(** Discrete-event simulator for message-ordering protocols.

    The simulated substrate is the paper's model: an asynchronous reliable
    network with arbitrary finite per-packet delays (not FIFO), processes
    executing events one at a time. The simulator drives a
    {!Protocol.factory} over a workload of send requests, records the
    four system events of every message, and returns both the system-view
    run and its user-view projection, plus the traffic statistics the
    overhead benches report.

    Determinism: all delays and fault decisions come from a seeded PRNG in
    the {!config} (windowed faults are fixed data), so a given (config,
    protocol, workload) triple always yields the same run — with or
    without fault injection. *)

type dest = Unicast of int | Broadcast
(** [Broadcast] expands to one copy per other process, sharing a
    {!Protocol.intent} group. *)

type op = {
  at : int;  (** request (invoke) time *)
  src : int;
  dst : dest;
  color : int option;
  payload : int;  (** application data carried end-to-end; 0 if unused *)
  flush : Message.flush_kind;
}

val op :
  ?color:int -> ?payload:int -> ?flush:Message.flush_kind -> at:int ->
  src:int -> dst:int -> unit -> op

val bcast : ?color:int -> ?payload:int -> at:int -> src:int -> unit -> op

type faults = Net.t
(** The full fault model: random loss/duplication, delay spikes, link
    partitions, process crash-restart — see {!Net}. The paper's model is
    a reliable network; faults exist to show the conformance harness
    flagging the resulting liveness failures, and to let {!Reliable}
    demonstrably restore the reliable-network assumption. Under network
    duplication the trace records one receive while the protocol sees the
    packet twice — protocols without deduplication then double-deliver,
    which the simulator reports as misbehaviour (see {!Wrap.dedup}). *)

val no_faults : faults

type config = {
  nprocs : int;
  seed : int;
  min_delay : int;  (** lower bound on packet latency; must be ≥ 1 *)
  jitter : int;  (** uniform extra delay in [0, jitter] — breaks FIFO *)
  max_steps : int;  (** safety bound on simulator events *)
  faults : faults;
  topology : Transport.topology option;
      (** [Some _] multiplexes every channel over the shared-transport
          substrate ({!Transport}): per-channel wire seqnos, FIFO within
          a channel, head-of-line blocking, transport-domain faults.
          [None] (the default) keeps the historical per-pair wire,
          byte-for-byte — and rejects transport faults in {!faults}. *)
}

val default_config : nprocs:int -> config
(** seed 42, delays in [1, 8], one million steps, no faults, no
    topology. *)

type stats = {
  user_packets : int;
  control_packets : int;
  tag_bytes : int;  (** total tag overhead across user packets *)
  control_bytes : int;
  latency_total : int;  (** sum over messages of delivery − invoke time *)
  latency_max : int;
  makespan : int;  (** time of the last event *)
  max_pending : int;
      (** high-watermark of {!Protocol.instance}'s [pending_depth] over
          all processes and times — the buffered-state cost of the
          ordering guarantee *)
  retransmits : int;
      (** framed packets re-emitted by a recovery layer
          ({!Protocol.action}'s [Send_framed] with [retransmit = true]) *)
  fault_drops : int;
      (** packets destroyed by fault injection: random loss, a partitioned
          link, or arrival at a crashed process *)
}

val mean_latency : stats -> nmsgs:int -> float

type outcome = {
  sys_run : Mo_order.Sys_run.t;
  run : Mo_order.Run.t option;
      (** the user-view projection; [None] when liveness failed (some
          message was never sent or delivered) *)
  all_delivered : bool;
  stats : stats;
  msgs : (int * int) array;  (** (src, dst) per message id *)
  colors : int option array;
  groups : int array;
      (** per message id, the workload op it came from; copies of one
          broadcast share a group *)
  spans : Mo_obs.Span.t array;
      (** per message id, the lifecycle span with the virtual timestamps of
          all four system events ([-1] for events that never happened) —
          inhibition time and delivery delay read directly off these *)
  transport : Transport.t option;
      (** the shared-transport substrate state after the run (fault and
          head-of-line accounting via {!Transport.counters}); [None] when
          the run used the historical per-pair wire *)
}

val execute :
  config -> Protocol.factory -> op list -> (outcome, string) result
(** [Error] on protocol misbehaviour (delivering an unreceived message,
    sending from the wrong process, exceeding [max_steps], duplicate
    deliveries) — never on mere liveness failure, which is reported in the
    outcome. *)
