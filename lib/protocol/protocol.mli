(** The protocol interface of the simulator.

    A protocol instance mediates between the application and the network on
    one process, mirroring the paper's inhibitory protocols (§3.2): the
    application {e requests} a send (the invoke event [x.s✱]); the protocol
    decides when the user message is actually emitted (the send event
    [x.s]) and when a received message (receive event [x.r✱]) is delivered
    (delivery event [x.r]). Invokes and receives cannot be refused — only
    sends and deliveries may be delayed, exactly the condition
    [I ∪ R ⊆ P(H) ⊆ I ∪ R ∪ C] of §3.2.

    Instances are closures over their own mutable state; {!factory}
    produces one instance per process. *)

type intent = {
  id : int;  (** message id in the recorded run *)
  dst : int;
  color : int option;
  payload : int;  (** application data, carried opaquely; 0 if unused *)
  group : int option;
      (** broadcast group: copies of one application-level broadcast share
          a group and are invoked consecutively *)
  flush : Message.flush_kind;
      (** flush-channel send type; [Ordinary] unless the workload says
          otherwise *)
}

type action =
  | Send_user of Message.user
      (** emit this user message to the network now — this is [x.s] *)
  | Send_control of { dst : int; ctl : Message.control }
  | Deliver of int
      (** deliver the received user message with this id — this is [x.r] *)
  | Send_framed of {
      dst : int;
      rel : Message.rel;
      packet : Message.packet;
      retransmit : bool;
    }
      (** emit a reliability-framed packet ({!Reliable}). For a framed
          user message, [retransmit = false] is the message's one send
          event [x.s] (the simulator rejects a second); [retransmit =
          true] re-emits an already-sent message without a new trace
          event, counted in {!Sim.stats}' [retransmits]. *)
  | Set_timer of { delay : int; key : int }
      (** ask the simulator to call [on_timer ~key] after [delay] ticks
          of virtual time ([delay ≥ 1]). Timers cannot be cancelled; a
          protocol that no longer cares simply returns [[]] when the
          timer fires. *)

type instance = {
  on_invoke : now:int -> intent -> action list;
      (** the application requested a send ([x.s✱] just happened) *)
  on_packet : now:int -> from:int -> Message.packet -> action list;
      (** a packet arrived; for a user packet, [x.r✱] just happened *)
  on_timer : now:int -> key:int -> action list;
      (** a timer set with [Set_timer] expired. Timers belonging to a
          crashed process are deferred to its restart instant. Protocols
          that never set timers can use {!no_timer}. *)
  pending_depth : unit -> int;
      (** how many messages the protocol currently holds back on this
          process — buffered receives not yet delivered plus inhibited
          intents not yet sent. Pure introspection for the observability
          layer; the simulator samples it after every handler to report the
          high-watermark queue depth each ordering guarantee costs. *)
}

val no_timer : now:int -> key:int -> action list
(** [fun ~now ~key -> []] — the [on_timer] of a protocol without timers. *)

type kind = Tagless | Tagged | General
(** Which protocol class (§3.2) the implementation belongs to: does it tag
    user messages, does it emit control messages? Checked against observed
    traffic by the conformance harness. *)

val kind_to_string : kind -> string

type factory = {
  proto_name : string;
  kind : kind;
  make : nprocs:int -> me:int -> instance;
}
