module Window = struct
  (* circular residue table: slot id mod n holds the last id written
     there. Two distinct live ids can only collide when they differ by a
     multiple of n, i.e. when one has already aged out of the window, so
     membership is exact within the window. *)
  type t = { slots : int array; mutable high : int }

  let create ~size =
    if size < 1 then
      invalid_arg "Reliable.Window.create: size must be positive";
    { slots = Array.make size (-1); high = -1 }

  let capacity t = Array.length t.slots

  let mem t id =
    let n = Array.length t.slots in
    (t.high >= 0 && id <= t.high - n) || t.slots.(id mod n) = id

  let mark t id =
    if mem t id then false
    else begin
      t.slots.(id mod Array.length t.slots) <- id;
      if id > t.high then t.high <- id;
      true
    end
end

type config = { rto : int; backoff : int; max_rto : int; max_retries : int }

let default_config = { rto = 24; backoff = 2; max_rto = 2048; max_retries = 12 }

type frame = {
  packet : Message.packet;
  first_sent : int;
  mutable attempts : int;
}

let wrap ?(config = default_config) ?registry (inner : Protocol.factory) =
  if config.rto < 1 || config.backoff < 1 || config.max_rto < config.rto then
    invalid_arg "Reliable.wrap: bad timeout configuration";
  let registry =
    match registry with Some r -> r | None -> Mo_obs.Metrics.create ()
  in
  let open Mo_obs in
  let retransmits =
    Metrics.counter registry ~help:"frames re-sent after a timeout"
      "net.retransmits_total"
  and timeouts =
    Metrics.counter registry ~help:"retransmission timer expiries acted on"
      "net.timeouts_total"
  and acks =
    Metrics.counter registry ~help:"standalone ack frames sent"
      "net.acks_total"
  and dup_frames =
    Metrics.counter registry
      ~help:"received frames suppressed as channel duplicates"
      "net.dup_frames_total"
  and gave_up =
    Metrics.counter registry
      ~help:"frames abandoned after exhausting the retry cap"
      "net.gave_up_total"
  and recovery =
    Metrics.histogram registry
      ~help:
        "first transmission to covering ack, frames that needed retransmission"
      "net.recovery_latency"
  in
  let make ~nprocs ~me =
    let i = inner.Protocol.make ~nprocs ~me in
    (* sender side, per destination channel me→d *)
    let next_seq = Array.make nprocs 0 in
    let acked = Array.make nprocs (-1) in
    let unacked : (int * int, frame) Hashtbl.t = Hashtbl.create 64 in
    let timer_slots : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
    let next_key = ref 0 in
    (* receiver side, per source channel s→me *)
    let cum = Array.make nprocs (-1) in
    let above : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let frame_out ~now ~dst packet =
      let seq = next_seq.(dst) in
      next_seq.(dst) <- seq + 1;
      Hashtbl.replace unacked (dst, seq)
        { packet; first_sent = now; attempts = 0 };
      let key = !next_key in
      next_key := !next_key + 2;
      Hashtbl.replace timer_slots key (dst, seq);
      [
        Protocol.Send_framed
          {
            dst;
            rel = { Message.seq; cum_ack = cum.(dst) };
            packet;
            retransmit = false;
          };
        Protocol.Set_timer { delay = config.rto; key };
      ]
    in
    let lift ~now actions =
      List.concat_map
        (fun (a : Protocol.action) ->
          match a with
          | Protocol.Send_user u ->
              frame_out ~now ~dst:u.Message.dst (Message.User u)
          | Protocol.Send_control { dst; ctl } ->
              frame_out ~now ~dst (Message.Control ctl)
          | Protocol.Deliver _ -> [ a ]
          | Protocol.Set_timer { delay; key } ->
              (* the inner protocol's timers live in the odd key space *)
              [ Protocol.Set_timer { delay; key = (2 * key) + 1 } ]
          | Protocol.Send_framed _ ->
              (* an already-framed action from a nested layer; not ours *)
              [ a ])
        actions
    in
    let process_ack ~now ~from a =
      if a > acked.(from) then begin
        for s = acked.(from) + 1 to a do
          match Hashtbl.find_opt unacked (from, s) with
          | Some fr ->
              Hashtbl.remove unacked (from, s);
              if fr.attempts > 0 then
                Metrics.observe recovery (now - fr.first_sent)
          | None -> ()
        done;
        acked.(from) <- a
      end
    in
    let note_receive ~from seq =
      if seq <= cum.(from) || Hashtbl.mem above (from, seq) then false
      else begin
        Hashtbl.replace above (from, seq) ();
        while Hashtbl.mem above (from, cum.(from) + 1) do
          Hashtbl.remove above (from, cum.(from) + 1);
          cum.(from) <- cum.(from) + 1
        done;
        true
      end
    in
    let standalone_ack from =
      Metrics.inc acks;
      [
        Protocol.Send_framed
          {
            dst = from;
            rel = { Message.seq = -1; cum_ack = cum.(from) };
            packet = Message.Control { Message.kind = "rel-ack"; data = [||] };
            retransmit = false;
          };
      ]
    in
    let backed_off attempts =
      let d = ref config.rto in
      for _ = 1 to attempts do
        d := min config.max_rto (!d * config.backoff)
      done;
      !d
    in
    {
      Protocol.on_invoke =
        (fun ~now intent -> lift ~now (i.Protocol.on_invoke ~now intent));
      on_packet =
        (fun ~now ~from packet ->
          match packet with
          | Message.Framed { rel; inner = ip } ->
              process_ack ~now ~from rel.Message.cum_ack;
              if rel.Message.seq < 0 then []
              else if note_receive ~from rel.Message.seq then
                standalone_ack from
                @ lift ~now (i.Protocol.on_packet ~now ~from ip)
              else begin
                (* duplicate: the ack may have been lost — re-ack, but the
                   inner protocol must not see the packet again *)
                Metrics.inc dup_frames;
                standalone_ack from
              end
          | Message.User _ | Message.Control _ ->
              (* an unframed peer (mixed deployment): stay transparent *)
              lift ~now (i.Protocol.on_packet ~now ~from packet))
      ;
      on_timer =
        (fun ~now ~key ->
          if key land 1 = 1 then
            lift ~now (i.Protocol.on_timer ~now ~key:(key asr 1))
          else
            match Hashtbl.find_opt timer_slots key with
            | None -> []
            | Some (dst, seq) -> (
                match Hashtbl.find_opt unacked (dst, seq) with
                | None ->
                    (* acked in the meantime *)
                    Hashtbl.remove timer_slots key;
                    []
                | Some fr ->
                    Metrics.inc timeouts;
                    if fr.attempts >= config.max_retries then begin
                      Hashtbl.remove unacked (dst, seq);
                      Hashtbl.remove timer_slots key;
                      Metrics.inc gave_up;
                      []
                    end
                    else begin
                      fr.attempts <- fr.attempts + 1;
                      Metrics.inc retransmits;
                      [
                        Protocol.Send_framed
                          {
                            dst;
                            rel = { Message.seq = seq; cum_ack = cum.(dst) };
                            packet = fr.packet;
                            retransmit = true;
                          };
                        Protocol.Set_timer
                          { delay = backed_off fr.attempts; key };
                      ]
                    end));
      pending_depth =
        (fun () -> i.Protocol.pending_depth () + Hashtbl.length unacked);
    }
  in
  {
    Protocol.proto_name = inner.Protocol.proto_name ^ "+rel";
    kind = Protocol.General;
    make;
  }
