open Mo_order

type pending = { id : int; from : int; tag : Vclock.t }

type state = {
  mutable own_sent : int;
  deliv : int array; (* per originator: broadcasts delivered here *)
  mutable last_group : int option;
  mutable group_tag : Vclock.t;
  mutable buffer : pending list;
}

let make ~nprocs ~me =
  let st =
    {
      own_sent = 0;
      deliv = Array.make nprocs 0;
      last_group = None;
      group_tag = Vclock.create nprocs;
      buffer = [];
    }
  in
  let snapshot () =
    Vclock.of_array
      (Array.init nprocs (fun k ->
           if k = me then st.own_sent else st.deliv.(k)))
  in
  let seen k = if k = me then st.own_sent else st.deliv.(k) in
  let deliverable (p : pending) =
    (* an originator counts its own broadcasts as seen: copies are not
       sent back to it, so they can never appear in deliv *)
    let ok = ref (st.deliv.(p.from) = Vclock.get p.tag p.from) in
    for k = 0 to nprocs - 1 do
      if k <> p.from && seen k < Vclock.get p.tag k then ok := false
    done;
    !ok
  in
  let rec drain acc =
    match List.partition deliverable st.buffer with
    | [], _ -> List.rev acc
    | ready, rest ->
        st.buffer <- rest;
        let acts =
          List.map
            (fun (p : pending) ->
              st.deliv.(p.from) <- st.deliv.(p.from) + 1;
              Protocol.Deliver p.id)
            ready
        in
        drain (List.rev_append acts acc)
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        (* copies of one broadcast arrive as consecutive invokes sharing a
           group; tag the whole group with one snapshot *)
        if st.last_group <> intent.group then begin
          st.last_group <- intent.group;
          st.group_tag <- snapshot ();
          st.own_sent <- st.own_sent + 1
        end;
        [
          Protocol.Send_user
            {
              Message.id = intent.id;
              src = me;
              dst = intent.dst;
              color = intent.color;
              payload = intent.payload;
              tag = Message.Vector st.group_tag;
            };
        ]);
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User { id; tag = Message.Vector v; _ } ->
            st.buffer <- st.buffer @ [ { id; from; tag = v } ];
            drain []
        | Message.User _ ->
            invalid_arg "Causal_bss: user message without vector tag"
        | Message.Control _ | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth = (fun () -> List.length st.buffer);
  }

let factory =
  { Protocol.proto_name = "causal-bss"; kind = Protocol.Tagged; make }
