let make ~nprocs:_ ~me =
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        [
          Protocol.Send_user
            {
              Message.id = intent.id;
              src = me;
              dst = intent.dst;
              color = intent.color;
              payload = intent.payload;
              tag = Message.No_tag;
            };
        ]);
    on_packet =
      (fun ~now:_ ~from:_ packet ->
        match packet with
        | Message.User u -> [ Protocol.Deliver u.Message.id ]
        | Message.Control _ | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth = (fun () -> 0);
  }

let factory =
  { Protocol.proto_name = "tagless"; kind = Protocol.Tagless; make }
