open Mo_order

type dest = Unicast of int | Broadcast

type op = {
  at : int;
  src : int;
  dst : dest;
  color : int option;
  payload : int;
  flush : Message.flush_kind;
}

let op ?color ?(payload = 0) ?(flush = Message.Ordinary) ~at ~src ~dst () =
  { at; src; dst = Unicast dst; color; payload; flush }

let bcast ?color ?(payload = 0) ~at ~src () =
  { at; src; dst = Broadcast; color; payload; flush = Message.Ordinary }

type faults = Net.t

let no_faults = Net.none

type config = {
  nprocs : int;
  seed : int;
  min_delay : int;
  jitter : int;
  max_steps : int;
  faults : faults;
  topology : Transport.topology option;
}

let default_config ~nprocs =
  {
    nprocs;
    seed = 42;
    min_delay = 1;
    jitter = 7;
    max_steps = 1_000_000;
    faults = no_faults;
    topology = None;
  }

type stats = {
  user_packets : int;
  control_packets : int;
  tag_bytes : int;
  control_bytes : int;
  latency_total : int;
  latency_max : int;
  makespan : int;
  max_pending : int;
  retransmits : int;
  fault_drops : int;
}

let mean_latency s ~nmsgs =
  if nmsgs = 0 then 0. else float_of_int s.latency_total /. float_of_int nmsgs

type outcome = {
  sys_run : Sys_run.t;
  run : Run.t option;
  all_delivered : bool;
  stats : stats;
  msgs : (int * int) array;
  colors : int option array;
  groups : int array;
  spans : Mo_obs.Span.t array;
  transport : Transport.t option;
}

(* ---- event queue: a simple binary min-heap on (time, tiebreak) ---- *)

type ev =
  | Ev_invoke of { proc : int; intent : Protocol.intent }
  | Ev_arrive of {
      dst : int;
      from : int;
      packet : Message.packet;
      wire : (int * int) option;
          (* (epoch, seq) assigned by the transport substrate, when on *)
    }
  | Ev_timer of { proc : int; key : int }

module Heap = struct
  type entry = { time : int; tie : int; ev : ev }

  type t = {
    mutable data : entry array;
    mutable len : int;
    mutable next_tie : int;
  }

  let dummy =
    {
      time = 0;
      tie = 0;
      ev =
        Ev_invoke
          {
            proc = 0;
            intent =
              {
                Protocol.id = -1;
                dst = 0;
                color = None;
                payload = 0;
                group = None;
                flush = Message.Ordinary;
              };
          };
    }

  let create () = { data = Array.make 64 dummy; len = 0; next_tie = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.tie < b.tie)

  let push t time ev =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    let e = { time; tie = t.next_tie; ev } in
    t.next_tie <- t.next_tie + 1;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.data.(!i) <- e;
    while !i > 0 && less t.data.(!i) t.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.data.(p) in
      t.data.(p) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.data.(0) in
      t.len <- t.len - 1;
      t.data.(0) <- t.data.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some (top.time, top.ev)
    end
end

(* ---- broadcast expansion: one message id per point-to-point copy ---- *)

let expand_ops ~nprocs ops =
  let intents = ref [] in
  (* (at, src, intent) in op order; ids densely assigned *)
  let next_id = ref 0 in
  List.iteri
    (fun group op ->
      match op.dst with
      | Unicast d ->
          let id = !next_id in
          incr next_id;
          intents :=
            ( op.at,
              op.src,
              {
                Protocol.id;
                dst = d;
                color = op.color;
                payload = op.payload;
                group = Some group;
                flush = op.flush;
              } )
            :: !intents
      | Broadcast ->
          for d = 0 to nprocs - 1 do
            if d <> op.src then begin
              let id = !next_id in
              incr next_id;
              intents :=
                ( op.at,
                  op.src,
                  {
                    Protocol.id;
                    dst = d;
                    color = op.color;
                    payload = op.payload;
                    group = Some group;
                    flush = op.flush;
                  } )
                :: !intents
            end
          done)
    ops;
  List.rev !intents

let execute config factory ops =
  let nprocs = config.nprocs in
  if nprocs <= 0 then invalid_arg "Sim.execute: nprocs must be positive";
  if config.min_delay < 1 then
    invalid_arg
      "Sim.execute: min_delay must be at least 1 (packets never arrive at \
       their send instant)";
  (match Net.validate ~nprocs config.faults with
  | Ok () -> ()
  | Error e -> invalid_arg ("Sim.execute: " ^ e));
  (match (config.topology, config.faults.Net.transport_faults) with
  | None, [] -> ()
  | None, _ :: _ ->
      invalid_arg
        "Sim.execute: transport faults require a topology (config.topology)"
  | Some topo, tfs ->
      let n = Transport.ntransports topo ~nprocs in
      List.iter
        (fun (f : Net.tfault) ->
          if f.Net.transport >= n then
            invalid_arg
              (Printf.sprintf
                 "Sim.execute: transport %d out of range for topology %s (%d \
                  transport%s)"
                 f.Net.transport
                 (Transport.topology_to_string topo)
                 n
                 (if n = 1 then "" else "s")))
        tfs);
  let tstate =
    Option.map
      (fun topo -> Transport.create topo ~nprocs ~faults:config.faults)
      config.topology
  in
  let rng = Random.State.make [| config.seed |] in
  let delay () =
    let base = config.min_delay + Random.State.int rng (config.jitter + 1) in
    (* heavy-tailed burst: a spiked packet's latency is multiplied, which
       breaks timing assumptions without losing the packet. The roll is
       only drawn when spikes are configured, so fault-free runs consume
       the same random sequence as before. *)
    let spike = config.faults.Net.spike in
    if
      spike.Net.permille > 0
      && Random.State.int rng 1000 < spike.Net.permille
    then base * spike.Net.factor
    else base
  in
  let fate () =
    (* per-packet network fate: deliver once, drop, or duplicate *)
    let roll = Random.State.int rng 1000 in
    if roll < config.faults.Net.drop_permille then `Drop
    else if
      roll
      < config.faults.Net.drop_permille + config.faults.Net.duplicate_permille
    then `Duplicate
    else `Deliver
  in
  let intents = expand_ops ~nprocs ops in
  let nmsgs = List.length intents in
  let msgs = Array.make nmsgs (0, 0) in
  let colors = Array.make nmsgs None in
  let groups = Array.make nmsgs (-1) in
  List.iter
    (fun (_, src, (i : Protocol.intent)) ->
      msgs.(i.id) <- (src, i.dst);
      colors.(i.id) <- i.color;
      groups.(i.id) <- Option.value ~default:(-1) i.group)
    intents;
  let instances =
    Array.init nprocs (fun me -> factory.Protocol.make ~nprocs ~me)
  in
  let heap = Heap.create () in
  List.iter
    (fun (at, src, intent) ->
      Heap.push heap at (Ev_invoke { proc = src; intent }))
    intents;
  (* trace recording *)
  let seq_rev = Array.make nprocs [] in
  let record p (e : Event.Sys.t) = seq_rev.(p) <- e :: seq_rev.(p) in
  let invoked = Array.make nmsgs (-1)
  and sent = Array.make nmsgs (-1)
  and received = Array.make nmsgs (-1)
  and delivered = Array.make nmsgs (-1) in
  let user_packets = ref 0
  and control_packets = ref 0
  and tag_bytes = ref 0
  and control_bytes = ref 0
  and makespan = ref 0
  and max_pending = ref 0
  and retransmits = ref 0
  and fault_drops = ref 0 in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let schedule_packet now ~dst ~from packet =
    (* a packet entering a partitioned link dies on the link *)
    if Net.partitioned config.faults ~from_proc:from ~to_proc:dst ~at:now then
      incr fault_drops
    else
      match tstate with
      | None -> (
          (* historical per-pair substrate: the channel is the wire *)
          match fate () with
          | `Drop -> incr fault_drops
          | `Deliver ->
              Heap.push heap (now + delay ())
                (Ev_arrive { dst; from; packet; wire = None })
          | `Duplicate ->
              Heap.push heap (now + delay ())
                (Ev_arrive { dst; from; packet; wire = None });
              Heap.push heap (now + delay ())
                (Ev_arrive { dst; from; packet; wire = None }))
      | Some ts -> (
          (* shared-transport substrate: the packet first enters its
             channel's transport, picking up wire coordinates (or dying
             in a transport-domain fault); per-channel fate applies on
             top. A stalled transport defers the arrival to the window
             end — head-of-line blocking for every channel it carries. *)
          match Transport.enter ts ~now ~from_proc:from ~to_proc:dst with
          | Transport.Entry_lost -> incr fault_drops
          | Transport.Entered { epoch; seq } -> (
              let push_wire () =
                let at =
                  Transport.arrival ts ~now ~from_proc:from ~to_proc:dst
                    ~base:(now + delay ())
                in
                Heap.push heap at
                  (Ev_arrive { dst; from; packet; wire = Some (epoch, seq) })
              in
              match fate () with
              | `Drop ->
                  Transport.mark_lost ts ~from_proc:from ~to_proc:dst ~epoch
                    ~seq;
                  incr fault_drops
              | `Deliver -> push_wire ()
              | `Duplicate ->
                  push_wire ();
                  push_wire ()))
  in
  let apply_actions p now actions =
    List.iter
      (fun (a : Protocol.action) ->
        match a with
        | Protocol.Send_user u ->
            if u.Message.src <> p then
              fail "protocol on P%d emitted a user message with src %d" p
                u.Message.src
            else if u.id < 0 || u.id >= nmsgs then
              fail "protocol emitted unknown message id %d" u.Message.id
            else if sent.(u.id) >= 0 then
              fail "message %d sent twice" u.Message.id
            else if invoked.(u.id) < 0 then
              fail "message %d sent before its invoke" u.Message.id
            else begin
              sent.(u.id) <- now;
              record p { Event.Sys.msg = u.id; kind = Event.Sys.Send };
              incr user_packets;
              tag_bytes := !tag_bytes + Message.tag_bytes u.Message.tag;
              schedule_packet now ~dst:u.Message.dst ~from:p
                (Message.User u)
            end
        | Protocol.Send_control { dst; ctl } ->
            incr control_packets;
            control_bytes := !control_bytes + Message.control_bytes ctl;
            schedule_packet now ~dst ~from:p (Message.Control ctl)
        | Protocol.Send_framed { dst; rel; packet; retransmit } -> (
            let wire = Message.Framed { rel; inner = packet } in
            match packet with
            | Message.Framed _ -> fail "nested reliability framing"
            | Message.User u ->
                if u.Message.src <> p then
                  fail "protocol on P%d framed a user message with src %d" p
                    u.Message.src
                else if u.id < 0 || u.id >= nmsgs then
                  fail "protocol framed unknown message id %d" u.Message.id
                else if u.Message.dst <> dst then
                  fail "framed message %d addressed to P%d but sent to P%d"
                    u.Message.id u.Message.dst dst
                else if retransmit then
                  if sent.(u.id) < 0 then
                    fail "retransmission of message %d before its send"
                      u.Message.id
                  else begin
                    incr retransmits;
                    control_bytes := !control_bytes + Message.rel_bytes;
                    schedule_packet now ~dst ~from:p wire
                  end
                else if sent.(u.id) >= 0 then
                  fail "message %d sent twice" u.Message.id
                else if invoked.(u.id) < 0 then
                  fail "message %d sent before its invoke" u.Message.id
                else begin
                  sent.(u.id) <- now;
                  record p { Event.Sys.msg = u.id; kind = Event.Sys.Send };
                  incr user_packets;
                  tag_bytes := !tag_bytes + Message.tag_bytes u.Message.tag;
                  control_bytes := !control_bytes + Message.rel_bytes;
                  schedule_packet now ~dst ~from:p wire
                end
            | Message.Control c ->
                incr control_packets;
                if retransmit then incr retransmits;
                control_bytes :=
                  !control_bytes + Message.control_bytes c + Message.rel_bytes;
                schedule_packet now ~dst ~from:p wire)
        | Protocol.Set_timer { delay; key } ->
            if delay < 1 then
              fail "timer delay must be at least 1 (got %d)" delay
            else Heap.push heap (now + delay) (Ev_timer { proc = p; key })
        | Protocol.Deliver id ->
            if id < 0 || id >= nmsgs then
              fail "protocol delivered unknown message id %d" id
            else if received.(id) < 0 then
              fail "message %d delivered before it was received" id
            else if delivered.(id) >= 0 then fail "message %d delivered twice" id
            else if snd msgs.(id) <> p then
              fail "message %d delivered on P%d, destination is P%d" id p
                (snd msgs.(id))
            else begin
              delivered.(id) <- now;
              record p { Event.Sys.msg = id; kind = Event.Sys.Deliver }
            end)
      actions;
    (* the queue-depth high-watermark: what the ordering guarantee costs in
       buffered state, sampled while the hold is in force *)
    max_pending := max !max_pending (instances.(p).Protocol.pending_depth ())
  in
  let steps = ref 0 in
  let rec loop () =
    if !error <> None then ()
    else if !steps > config.max_steps then
      fail "exceeded max_steps (%d): runaway protocol?" config.max_steps
    else
      match Heap.pop heap with
      | None -> ()
      | Some (now, ev) ->
          incr steps;
          (match ev with
          | Ev_invoke { proc; intent } -> (
              match Net.crashed_until config.faults ~proc ~at:now with
              | Some restart ->
                  (* the process is down: the application's request waits
                     for the restart *)
                  Heap.push heap restart ev
              | None ->
                  makespan := max !makespan now;
                  invoked.(intent.Protocol.id) <- now;
                  record proc
                    {
                      Event.Sys.msg = intent.Protocol.id;
                      kind = Event.Sys.Invoke;
                    };
                  apply_actions proc now
                    (instances.(proc).on_invoke ~now intent))
          | Ev_timer { proc; key } -> (
              match Net.crashed_until config.faults ~proc ~at:now with
              | Some restart ->
                  (* protocol state survives the crash; its timers resume
                     at the restart instant *)
                  Heap.push heap restart ev
              | None ->
                  let actions = instances.(proc).on_timer ~now ~key in
                  (* an expired timer nobody cares about is not an event
                     of the run; don't let it stretch the makespan *)
                  if actions <> [] then makespan := max !makespan now;
                  apply_actions proc now actions)
          | Ev_arrive { dst; from; packet; wire } -> (
              let deliver_one packet =
                match Net.crashed_until config.faults ~proc:dst ~at:now with
                | Some _ ->
                    (* crash-restart loses in-flight receives *)
                    incr fault_drops
                | None ->
                    makespan := max !makespan now;
                    (match packet with
                    | Message.User u
                    | Message.Framed { inner = Message.User u; _ } ->
                        (* a duplicated packet is still handed to the
                           protocol, but the trace records one receive
                           event *)
                        if received.(u.id) < 0 then begin
                          received.(u.id) <- now;
                          record dst
                            { Event.Sys.msg = u.id; kind = Event.Sys.Receive }
                        end
                    | Message.Control _ | Message.Framed _ -> ());
                    apply_actions dst now
                      (instances.(dst).on_packet ~now ~from packet)
              in
              match (wire, tstate) with
              | None, _ -> deliver_one packet
              | Some (epoch, seq), Some ts ->
                  (* the wire releases packets in per-channel seq order:
                     this arrival may be held for a predecessor, or may
                     release a buffered run behind it. Receive events are
                     recorded at release time, so head-of-line wait shows
                     up in message latency. *)
                  let released, destroyed =
                    Transport.receive ts ~now ~from_proc:from ~to_proc:dst
                      ~epoch ~seq packet
                  in
                  fault_drops := !fault_drops + destroyed;
                  List.iter deliver_one released
              | Some _, None ->
                  fail "wire-tagged packet without a transport substrate"));
          loop ()
  in
  loop ();
  match !error with
  | Some e -> Error e
  | None ->
      let seq = Array.map List.rev seq_rev in
      (match Sys_run.of_sequences ~nprocs ~msgs seq with
      | Error e -> Error ("recorded trace is not a run: " ^ e)
      | Ok sys_run ->
          let all_delivered =
            Array.for_all (fun t -> t >= 0) delivered
          in
          let latency_total = ref 0 and latency_max = ref 0 in
          for i = 0 to nmsgs - 1 do
            if delivered.(i) >= 0 && invoked.(i) >= 0 then begin
              let l = delivered.(i) - invoked.(i) in
              latency_total := !latency_total + l;
              latency_max := max !latency_max l
            end
          done;
          let stats =
            {
              user_packets = !user_packets;
              control_packets = !control_packets;
              tag_bytes = !tag_bytes;
              control_bytes = !control_bytes;
              latency_total = !latency_total;
              latency_max = !latency_max;
              makespan = !makespan;
              max_pending = !max_pending;
              retransmits = !retransmits;
              fault_drops = !fault_drops;
            }
          in
          let spans =
            Array.init nmsgs (fun i ->
                let src, dst = msgs.(i) in
                Mo_obs.Span.make ~msg:i ~src ~dst ~invoke:invoked.(i)
                  ~send:sent.(i) ~recv:received.(i) ~deliver:delivered.(i))
          in
          let run =
            (* the user-view projection, with message colors preserved for
               the guarded specifications (flush, handoff) *)
            if not all_delivered then None
            else
              let user_seq =
                Array.map
                  (fun events ->
                    List.filter_map
                      (fun (e : Event.Sys.t) ->
                        match e.kind with
                        | Event.Sys.Send -> Some (Event.send e.msg)
                        | Event.Sys.Deliver -> Some (Event.deliver e.msg)
                        | Event.Sys.Invoke | Event.Sys.Receive -> None)
                      events)
                  seq
              in
              match Run.of_sequences ~nprocs ~msgs ~colors user_seq with
              | Ok r -> Some r
              | Error _ -> None
          in
          Ok
            {
              sys_run;
              run;
              all_delivered;
              stats;
              msgs;
              colors;
              groups;
              spans;
              transport = tstate;
            })
