let conservative k =
  {
    Causal_rst.factory with
    Protocol.proto_name = Printf.sprintf "k-weaker-conservative-%d" k;
  }

type buffered = { id : int; seq : int }

type chan_recv = {
  mutable delivered : bool array;
  mutable delivered_below : int;
  mutable buffer : buffered list;
}

let ensure_capacity cr seq =
  if seq >= Array.length cr.delivered then begin
    let bigger = Array.make (max 16 (2 * (seq + 1))) false in
    Array.blit cr.delivered 0 bigger 0 (Array.length cr.delivered);
    cr.delivered <- bigger
  end

let window k =
  if k < 0 then invalid_arg "Kweaker.window: negative k";
  let make ~nprocs ~me =
    let next_seq = Array.make nprocs 0 in
    let recv =
      Array.init nprocs (fun _ ->
          { delivered = Array.make 16 false; delivered_below = 0; buffer = [] })
    in
    let deliverable cr (m : buffered) =
      (* everything at distance > k below is already delivered *)
      cr.delivered_below >= m.seq - k
    in
    let mark cr seq =
      ensure_capacity cr seq;
      cr.delivered.(seq) <- true;
      while
        cr.delivered_below < Array.length cr.delivered
        && cr.delivered.(cr.delivered_below)
      do
        cr.delivered_below <- cr.delivered_below + 1
      done
    in
    let rec drain cr acc =
      match List.partition (deliverable cr) cr.buffer with
      | [], _ -> List.rev acc
      | ready, rest ->
          cr.buffer <- rest;
          let acts =
            List.map
              (fun (m : buffered) ->
                mark cr m.seq;
                Protocol.Deliver m.id)
              ready
          in
          drain cr (List.rev_append acts acc)
    in
    {
      Protocol.on_invoke =
        (fun ~now:_ (intent : Protocol.intent) ->
          let seq = next_seq.(intent.dst) in
          next_seq.(intent.dst) <- seq + 1;
          [
            Protocol.Send_user
              {
                Message.id = intent.id;
                src = me;
                dst = intent.dst;
                color = intent.color;
                payload = intent.payload;
                tag = Message.Seqno seq;
              };
          ]);
      on_packet =
        (fun ~now:_ ~from packet ->
          match packet with
          | Message.User { id; tag = Message.Seqno seq; _ } ->
              let cr = recv.(from) in
              ensure_capacity cr seq;
              cr.buffer <- cr.buffer @ [ { id; seq } ];
              drain cr []
          | Message.User _ ->
              invalid_arg "Kweaker.window: user message without seqno"
          | Message.Control _ | Message.Framed _ -> []);
      on_timer = Protocol.no_timer;
      pending_depth =
        (fun () ->
          Array.fold_left (fun acc cr -> acc + List.length cr.buffer) 0 recv);
    }
  in
  {
    Protocol.proto_name = Printf.sprintf "k-weaker-window-%d" k;
    kind = Protocol.Tagged;
    make;
  }
