type pending_send = { id : int; dst : int; color : int option; payload : int }

type phase =
  | Idle
  | Requesting of { yielded : bool }
      (** [req] sent; [yielded] when we granted a higher-priority requester
          meanwhile and must abandon the grant we are waiting for *)
  | Engaged  (** user message in flight, awaiting the delivery ack *)

type state = {
  me : int;
  mutable phase : phase;
  mutable obligations : int;
      (** grants issued whose user message we have not yet delivered: we
          must not execute a send while any is outstanding, or a crown
          could close through us *)
  mutable queue : pending_send list;  (** own intents, FIFO *)
  mutable deferred : int list;  (** requesters to grant once safe *)
}

let ctl kind = { Message.kind; data = [||] }

(* lower process id = higher priority; any fixed total order works *)
let outranks q me = q < me

let make ~nprocs:_ ~me =
  let st = { me; phase = Idle; obligations = 0; queue = []; deferred = [] } in
  let grant q =
    st.obligations <- st.obligations + 1;
    Protocol.Send_control { dst = q; ctl = ctl "ok" }
  in
  (* housekeeping after every handler: when idle, first grant everyone we
     deferred, then (once all obligations are delivered) start our own
     next request *)
  let react () =
    match st.phase with
    | Requesting _ | Engaged -> []
    | Idle ->
        let grants = List.rev_map grant st.deferred in
        st.deferred <- [];
        if grants <> [] then grants
        else if st.obligations = 0 then
          match st.queue with
          | next :: _ ->
              st.phase <- Requesting { yielded = false };
              [ Protocol.Send_control { dst = next.dst; ctl = ctl "req" } ]
          | [] -> []
        else []
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        st.queue <-
          st.queue
          @ [
              {
                id = intent.id;
                dst = intent.dst;
                color = intent.color;
                payload = intent.payload;
              };
            ];
        react ());
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User u ->
            (* every incoming user message carries one of our grants *)
            st.obligations <- st.obligations - 1;
            [
              Protocol.Deliver u.Message.id;
              Protocol.Send_control { dst = from; ctl = ctl "ack" };
            ]
            @ react ()
        | Message.Control { kind = "req"; _ } -> (
            match st.phase with
            | Idle -> [ grant from ]
            | Requesting { yielded = _ } when outranks from st.me ->
                (* we may grant, but our own pending grant (if it arrives)
                   is now poisoned: our send may no longer happen before
                   the granted message is delivered *)
                st.phase <- Requesting { yielded = true };
                [ grant from ]
            | Requesting _ | Engaged ->
                st.deferred <- from :: st.deferred;
                [])
        | Message.Control { kind = "ok"; _ } -> (
            match (st.phase, st.queue) with
            | Requesting { yielded = false }, next :: rest ->
                st.queue <- rest;
                st.phase <- Engaged;
                [
                  Protocol.Send_user
                    {
                      Message.id = next.id;
                      src = st.me;
                      dst = next.dst;
                      color = next.color;
                      payload = next.payload;
                      tag = Message.No_tag;
                    };
                ]
            | Requesting { yielded = true }, _ ->
                (* abandon: tell the grantor to release its obligation and
                   try again once ours are delivered *)
                st.phase <- Idle;
                Protocol.Send_control { dst = from; ctl = ctl "cancel" }
                :: react ()
            | (Idle | Engaged | Requesting _), _ ->
                invalid_arg "Sync_priority: unexpected grant")
        | Message.Control { kind = "cancel"; _ } ->
            st.obligations <- st.obligations - 1;
            react ()
        | Message.Control { kind = "ack"; _ } ->
            st.phase <- Idle;
            react ()
        | Message.Control { kind; _ } ->
            invalid_arg ("Sync_priority: unknown control kind " ^ kind)
        | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth = (fun () -> List.length st.queue);
  }

let factory =
  { Protocol.proto_name = "sync-priority"; kind = Protocol.General; make }
