(** Network fault model.

    The paper assumes a reliable asynchronous network; the simulator's
    substrate is deliberately weaker, and this module is its fault
    vocabulary. Four independent fault kinds compose:

    - {e random loss / duplication}: per-packet, Bernoulli with permille
      probabilities (the original {!Sim.faults} pair);
    - {e delay spikes}: with probability [spike.permille] a packet's
      latency is multiplied by [spike.factor] — a heavy-tailed burst that
      breaks any timing assumption without losing the packet;
    - {e link partitions}: a directed link is dead during a virtual-time
      window; every packet entering the link in the window is lost;
    - {e process crash-restart}: a process is silent during a window. It
      loses every packet that arrives while it is down (its in-flight
      receives), but keeps its protocol state; pending invokes and timers
      are deferred to the restart instant.

    When the simulator runs over the shared-transport substrate
    ({!Transport}), a second fault domain opens up: faults that strike a
    whole {e transport} and therefore correlate failures across every
    logical channel multiplexed onto it —

    - {e transport stall}: nothing moves on the transport during the
      window; packets due to arrive inside it are held to the restart
      instant (head-of-line blocking across all its channels);
    - {e transport partition}: every packet entering the transport during
      the window is lost, on all channels at once;
    - {e transport crash-restart}: in-flight and reorder-buffered packets
      are lost and the per-channel wire sequence state resets — senders
      restart channel seqnos from zero (a new {e epoch}), receivers
      resynchronize on the first post-restart packet.

    Transport faults are inert unless a topology is configured
    ({!Sim.config}); {!Sim.execute} rejects them otherwise.

    All faults are driven by the simulator's seeded PRNG or by fixed
    windows, so faulty runs are exactly as deterministic as fault-free
    ones. {!Reliable} rebuilds the paper's reliable network on top of
    this model. *)

type partition = {
  from_proc : int;
  to_proc : int;  (** directed: only [from_proc → to_proc] packets die *)
  start_at : int;
  stop_at : int;  (** half-open window [start_at, stop_at) *)
}

type crash = {
  proc : int;
  start_at : int;
  stop_at : int;  (** half-open window; the process restarts at [stop_at] *)
}

type spike = {
  permille : int;  (** per-packet probability (‰) of a delay spike *)
  factor : int;  (** latency multiplier for spiked packets, ≥ 1 *)
}

type tkind =
  | T_stall  (** transport frozen: arrivals deferred to the window end *)
  | T_partition  (** packets entering the transport in the window die *)
  | T_crash  (** in-flight loss + wire-seqno reset (a new epoch) *)

type tfault = {
  transport : int;  (** transport id under the configured topology *)
  kind : tkind;
  start_at : int;
  stop_at : int;  (** half-open window [start_at, stop_at) *)
}

type t = {
  drop_permille : int;  (** per-packet probability (‰) of silent loss *)
  duplicate_permille : int;  (** per-packet probability (‰) of duplication *)
  spike : spike;
  partitions : partition list;
  crashes : crash list;
  transport_faults : tfault list;
      (** transport-domain faults; require a topology ({!Sim.config}) *)
}

val none : t

val make :
  ?drop_permille:int ->
  ?duplicate_permille:int ->
  ?spike:spike ->
  ?partitions:partition list ->
  ?crashes:crash list ->
  ?transport_faults:tfault list ->
  unit ->
  t
(** All fields default to the fault-free value. *)

val is_none : t -> bool

val partitioned : t -> from_proc:int -> to_proc:int -> at:int -> bool
(** Is the directed link dead at this instant? *)

val crashed_until : t -> proc:int -> at:int -> int option
(** [Some stop] when the process is down at [at], where [stop] is the
    restart instant of the latest crash window covering [at]. *)

val transport_faulted : t -> transport:int -> kind:tkind -> at:int -> bool
(** Is a fault of this kind active on the transport at this instant? *)

val transport_stalled_until : t -> transport:int -> at:int -> int option
(** [Some stop] when the transport is stalled at [at], where [stop] is
    the latest covering stall window's end. *)

val transport_epoch : t -> transport:int -> at:int -> int
(** Number of crash-restart cycles the transport has completed by [at]:
    wire sequence state does not survive a restart, so each completed
    [T_crash] window starts a fresh epoch. *)

val validate : nprocs:int -> t -> (unit, string) result
(** Probabilities in range ([drop + duplicate ≤ 1000]), factor ≥ 1,
    windows non-empty, process indices within [0, nprocs), transport ids
    non-negative (range against the topology is checked by
    {!Sim.execute}, which knows the transport count). *)

val parse : string -> (t, string) result
(** Parse the CLI fault syntax: a comma-separated list of
    [drop=N], [dup=N], [spike=NxF], [part=SRC>DST\@T1-T2],
    [crash=P\@T1-T2], [stall=T\@T1-T2], [tpart=T\@T1-T2] and
    [tcrash=T\@T1-T2] clauses (window clauses may repeat), e.g.
    ["drop=150,part=0>1\@100-400,stall=0\@200-500"]. Empty string means
    no faults. *)

val to_string : t -> string
(** Inverse of {!parse} (canonical clause order). *)

val pp : Format.formatter -> t -> unit
