open Mo_order

type report = {
  outcome : Sim.outcome;
  live : bool;
  spec_ok : bool option;
  violation : (Mo_core.Forbidden.t * int array) option;
  run_class : Limits.cls option;
  traffic_consistent : bool;
}

let traffic_consistent (factory : Protocol.factory) (stats : Sim.stats) =
  match factory.kind with
  | Protocol.Tagless -> stats.tag_bytes = 0 && stats.control_packets = 0
  | Protocol.Tagged -> stats.control_packets = 0
  | Protocol.General -> true

let check ?spec config factory ops =
  match Sim.execute config factory ops with
  | Error e -> Error e
  | Ok outcome ->
      let abstract = Option.map Run.to_abstract outcome.run in
      let spec_ok, violation =
        match (spec, abstract) with
        | Some s, Some a -> (
            match Mo_core.Spec.first_violation s a with
            | Some v -> (Some false, Some v)
            | None -> (Some true, None))
        | _ -> (None, None)
      in
      Ok
        {
          outcome;
          live = outcome.all_delivered;
          spec_ok;
          violation;
          run_class = Option.map Limits.classify abstract;
          traffic_consistent = traffic_consistent factory outcome.stats;
        }

let check_exn ?spec config factory ops =
  match check ?spec config factory ops with
  | Ok r -> r
  | Error e -> invalid_arg ("Conformance.check: " ^ e)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>live: %b" r.live;
  (match r.spec_ok with
  | Some ok -> Format.fprintf ppf "@ spec: %s" (if ok then "ok" else "VIOLATED")
  | None -> ());
  (match r.violation with
  | Some (p, a) ->
      Format.fprintf ppf "@ violation: %a with messages %a" Mo_core.Forbidden.pp
        p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        (Array.to_list a)
  | None -> ());
  (match r.run_class with
  | Some c -> Format.fprintf ppf "@ run class: %s" (Limits.cls_to_string c)
  | None -> ());
  Format.fprintf ppf "@ traffic consistent: %b" r.traffic_consistent;
  let s = r.outcome.stats in
  Format.fprintf ppf
    "@ user packets: %d, control packets: %d, tag bytes: %d, control bytes: \
     %d, max pending: %d, makespan: %d"
    s.user_packets s.control_packets s.tag_bytes s.control_bytes s.max_pending
    s.makespan;
  if s.retransmits > 0 || s.fault_drops > 0 then
    Format.fprintf ppf "@ retransmits: %d, fault drops: %d" s.retransmits
      s.fault_drops;
  Format.fprintf ppf "@]"
