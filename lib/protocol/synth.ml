let choose = function
  | Mo_core.Classify.Not_implementable ->
      Error
        "no protocol can guarantee safety and liveness for this \
         specification (X_sync is not contained in it)"
  | Mo_core.Classify.Implementable Mo_core.Classify.Tagless ->
      Ok Tagless.factory
  | Mo_core.Classify.Implementable Mo_core.Classify.Tagged ->
      Ok Causal_rst.factory
  | Mo_core.Classify.Implementable Mo_core.Classify.General ->
      Ok Sync_token.factory

let for_predicate p =
  let result = Mo_core.Classify.classify p in
  match choose result.verdict with
  | Ok f -> Ok (f, result)
  | Error e -> Error e

let for_spec s = choose (Mo_core.Spec.classify s)

type choice = { factory : Protocol.factory; rationale : string }

(* ---- per-predicate optimization ---- *)

module F = Mo_core.Forbidden
module T = Mo_core.Term

let rec uf_find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- uf_find parent parent.(i);
    parent.(i)
  end

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

(* two variables denote messages on the same channel when the guards force
   both the same source and the same destination *)
let same_channel_classes p =
  let n = F.nvars p in
  let src = Array.init n Fun.id and dst = Array.init n Fun.id in
  List.iter
    (fun (g : T.guard) ->
      match g with
      | T.Same_src (x, y) -> uf_union src x y
      | T.Same_dst (x, y) -> uf_union dst x y
      | T.Color_is _ -> ())
    (F.guards p);
  fun x y -> uf_find src x = uf_find src y && uf_find dst x = uf_find dst y

(* longest simple s-chain from [b] to [a] within one channel class; length
   counted in edges *)
let longest_chain p ~same_channel ~from_ ~to_ =
  let n = F.nvars p in
  let succ = Array.make n [] in
  List.iter
    (fun (c : T.conjunct) ->
      match (c.before.point, c.after.point) with
      | Mo_order.Event.S, Mo_order.Event.S
        when c.before.var <> c.after.var
             && same_channel c.before.var c.after.var
             && same_channel c.before.var from_ ->
          succ.(c.before.var) <- c.after.var :: succ.(c.before.var)
      | _ -> ())
    (F.conjuncts p);
  let best = ref (-1) in
  let on_path = Array.make n false in
  let rec dfs v depth =
    if v = to_ then best := max !best depth
    else
      List.iter
        (fun w ->
          if not on_path.(w) then begin
            on_path.(w) <- true;
            dfs w (depth + 1);
            on_path.(w) <- false
          end)
        succ.(v)
  in
  on_path.(from_) <- true;
  dfs from_ 0;
  if !best >= 1 then Some !best else None

(* a same-channel overtake pattern s(a) > s(b) & r(b) > r(a) where one
   side is color-guarded: only messages around that color need inhibiting *)
let find_colored_overtake p =
  let same_channel = same_channel_classes p in
  let color_of v =
    List.find_map
      (fun (g : T.guard) ->
        match g with
        | T.Color_is (x, c) when x = v -> Some c
        | _ -> None)
      (F.guards p)
  in
  let conjuncts = F.conjuncts p in
  List.find_map
    (fun (c1 : T.conjunct) ->
      match (c1.before.point, c1.after.point) with
      | Mo_order.Event.S, Mo_order.Event.S when c1.before.var <> c1.after.var
        ->
          let a = c1.before.var and b = c1.after.var in
          if
            same_channel a b
            && List.exists
                 (fun (c2 : T.conjunct) ->
                   c2.before.var = b && c2.after.var = a
                   && c2.before.point = Mo_order.Event.R
                   && c2.after.point = Mo_order.Event.R)
                 conjuncts
          then
            match (color_of b, color_of a) with
            | Some c, _ -> Some (`Forward c)
            | None, Some c -> Some (`Backward c)
            | None, None -> None
          else None
      | _ -> None)
    conjuncts

let find_channel_window p =
  let same_channel = same_channel_classes p in
  List.filter_map
    (fun (c : T.conjunct) ->
      match (c.before.point, c.after.point) with
      | Mo_order.Event.R, Mo_order.Event.R
        when c.before.var <> c.after.var
             && same_channel c.before.var c.after.var ->
          (* r(a) ▷ r(b): look for an s-chain b -> … -> a *)
          longest_chain p ~same_channel ~from_:c.after.var ~to_:c.before.var
      | _ -> None)
    (F.conjuncts p)
  |> function
  | [] -> None
  | lengths -> Some (List.fold_left max 1 lengths)

let optimize ?result p =
  let result =
    match result with Some r -> r | None -> Mo_core.Classify.classify p
  in
  match result.Mo_core.Classify.verdict with
  | Mo_core.Classify.Not_implementable ->
      Error "not implementable: no protocol exists"
  | Mo_core.Classify.Implementable Mo_core.Classify.Tagless ->
      Ok
        {
          factory = Tagless.factory;
          rationale = "predicate unsatisfiable: the do-nothing protocol";
        }
  | Mo_core.Classify.Implementable Mo_core.Classify.General ->
      Ok
        {
          factory = Sync_token.factory;
          rationale = "order >= 2: control messages are necessary";
        }
  | Mo_core.Classify.Implementable Mo_core.Classify.Tagged -> (
      match (F.simplify p, find_colored_overtake p, find_channel_window p) with
      | F.Simplified p', _, _ when F.conjuncts p' = [] ->
          (* cannot happen for a Tagged verdict, but keep the match total *)
          Ok { factory = Tagless.factory; rationale = "trivial" }
      | _, Some (`Forward c), _ ->
          Ok
            {
              factory = Flush.selective_forward ~color:c;
              rationale =
                Printf.sprintf
                  "only color-%d messages may not overtake on their \
                   channel: delay just those (selective forward flush)"
                  c;
            }
      | _, Some (`Backward c), _ ->
          Ok
            {
              factory = Flush.selective_backward ~color:c;
              rationale =
                Printf.sprintf
                  "nothing may overtake a color-%d message on its channel: \
                   wait only behind those (selective backward flush)"
                  c;
            }
      | _, None, Some 1 ->
          Ok
            {
              factory = Fifo.factory;
              rationale =
                "a same-channel overtake is forbidden: per-channel \
                 sequence numbers suffice";
            }
      | _, None, Some chain ->
          let k = chain - 1 in
          Ok
            {
              factory = Kweaker.window k;
              rationale =
                Printf.sprintf
                  "a same-channel %d-step chain is forbidden: a \
                   reordering window of %d suffices"
                  chain k;
            }
      | _, None, None ->
          Ok
            {
              factory = Causal_rst.factory;
              rationale =
                "order-1 cycle without a channel restriction: causal \
                 ordering (matrix tags)";
            })
