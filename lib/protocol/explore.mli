(** Exhaustive schedule exploration: run a protocol implementation under
    {e every} network delivery order of a small workload.

    The seeded simulator samples schedules; this module enumerates them.
    At each step the pending events are the next invoke of each process
    (application order per process is fixed) and every in-flight packet;
    the search branches on which happens next, replaying the protocol from
    scratch down each branch (instances are mutable closures, so there is
    nothing to snapshot). For a handful of messages this covers the entire
    nondeterminism of the paper's asynchronous network, turning the
    per-seed protocol tests into genuine model checking of the
    implementations — the executable complement to {!Inhibit}, which
    explores idealized enabled-set oracles rather than real protocols.

    Exponential, by design: use with ≤ 4-5 messages and protocols whose
    control traffic is bounded, and cap with [max_executions]. *)

type outcome = {
  run : Mo_order.Run.t option;  (** [None] when liveness failed *)
  all_delivered : bool;
  control_packets : int;
}

type stats = {
  executions : int;  (** complete executions visited *)
  truncated : bool;  (** hit [max_executions] before finishing *)
}

val explore :
  ?max_executions:int ->
  nprocs:int ->
  Protocol.factory ->
  Sim.op list ->
  on_outcome:(outcome -> unit) ->
  (stats, string) result
(** [Error] on protocol misbehaviour (same checks as {!Sim.execute});
    [max_executions] defaults to 200_000. Broadcast ops are expanded as in
    the simulator. *)

val view_key :
  Mo_order.Run.t -> string
(** Canonical rendering of the per-process user event sequences; two runs
    share a key iff every process saw the same view. *)

val distinct_user_views :
  ?max_executions:int ->
  nprocs:int ->
  Protocol.factory ->
  Sim.op list ->
  (Mo_order.Run.t list, string) result
(** All distinct complete user-view runs reachable under some schedule —
    the implementation's [X̄_P] restricted to this workload. *)

val explore_par :
  ?pool:Mo_par.Pool.t ->
  ?max_executions:int ->
  nprocs:int ->
  Protocol.factory ->
  Sim.op list ->
  init:'acc ->
  f:('acc -> outcome -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  ('acc * stats, string) result
(** {!explore} as a parallel fold. The schedule tree is split at the root
    into choice prefixes (at least 8 subtrees per pool worker when the
    tree is deep enough); each worker runs the sequential DFS over its
    subtrees, folding outcomes locally, and the per-subtree accumulators
    are combined with [merge] in DFS order. When the search completes
    within [max_executions], the result is identical for every job count
    (and to a sequential left fold in {!explore}'s outcome order). The
    execution budget is shared across workers, so a truncated search
    still folds exactly [max_executions] outcomes, but {e which}
    outcomes survive truncation — and which misbehaviour is reported
    when several subtrees contain one — may vary with the job count.
    [pool] defaults to a fresh {!Mo_par.Pool}. *)

val distinct_user_views_par :
  ?pool:Mo_par.Pool.t ->
  ?max_executions:int ->
  nprocs:int ->
  Protocol.factory ->
  Sim.op list ->
  (Mo_order.Run.t list * stats, string) result
(** {!distinct_user_views} on the parallel engine (first schedule
    reaching a view wins, in DFS order — the same list the sequential
    pass builds), also returning the search stats. *)
