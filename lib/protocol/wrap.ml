let dedup ?(window = 4096) (inner : Protocol.factory) =
  let make ~nprocs ~me =
    let i = inner.Protocol.make ~nprocs ~me in
    let seen = Reliable.Window.create ~size:window in
    {
      Protocol.on_invoke = i.Protocol.on_invoke;
      on_packet =
        (fun ~now ~from packet ->
          match packet with
          | Message.User u ->
              if Reliable.Window.mark seen u.Message.id then
                i.Protocol.on_packet ~now ~from packet
              else []
          | Message.Control _ | Message.Framed _ ->
              i.Protocol.on_packet ~now ~from packet);
      on_timer = i.Protocol.on_timer;
      pending_depth = i.Protocol.pending_depth;
    }
  in
  { inner with Protocol.proto_name = inner.Protocol.proto_name ^ "+dedup"; make }

let reliable = Reliable.wrap

let count_deliveries (inner : Protocol.factory) counters =
  let make ~nprocs ~me =
    if Array.length !counters <> nprocs then counters := Array.make nprocs 0;
    let i = inner.Protocol.make ~nprocs ~me in
    let observe actions =
      List.iter
        (fun (a : Protocol.action) ->
          match a with
          | Protocol.Deliver _ -> !counters.(me) <- !counters.(me) + 1
          | Protocol.Send_user _ | Protocol.Send_control _
          | Protocol.Send_framed _ | Protocol.Set_timer _ -> ())
        actions;
      actions
    in
    {
      Protocol.on_invoke =
        (fun ~now intent -> observe (i.Protocol.on_invoke ~now intent));
      on_packet =
        (fun ~now ~from packet ->
          observe (i.Protocol.on_packet ~now ~from packet));
      on_timer =
        (fun ~now ~key -> observe (i.Protocol.on_timer ~now ~key));
      pending_depth = i.Protocol.pending_depth;
    }
  in
  { inner with Protocol.make = make }

let instrument registry (inner : Protocol.factory) =
  let open Mo_obs in
  let invokes =
    Metrics.counter registry ~help:"send requests handed to the protocol"
      "proto.invokes_total"
  and packets =
    Metrics.counter registry ~help:"packets handed to the protocol"
      "proto.packets_total"
  and user_sends =
    Metrics.counter registry ~help:"user messages emitted"
      "proto.user_sends_total"
  and control_sends =
    Metrics.counter registry ~help:"control messages emitted"
      "proto.control_sends_total"
  and deliveries =
    Metrics.counter registry ~help:"messages delivered" "proto.deliveries_total"
  and tag_bytes =
    Metrics.counter registry ~help:"piggybacked tag bytes on user messages"
      "proto.tag_bytes"
  and control_bytes =
    Metrics.counter registry ~help:"control message payload bytes"
      "proto.control_bytes"
  and max_pending =
    Metrics.gauge registry
      ~help:"high-watermark of one process's pending queue"
      "proto.max_pending"
  in
  let make ~nprocs ~me =
    let i = inner.Protocol.make ~nprocs ~me in
    let rec observe_packet (p : Message.packet) ~retransmit =
      match p with
      | Message.User u ->
          if not retransmit then begin
            Metrics.inc user_sends;
            Metrics.add tag_bytes (Message.tag_bytes u.Message.tag)
          end
      | Message.Control ctl ->
          if not retransmit then begin
            Metrics.inc control_sends;
            Metrics.add control_bytes (Message.control_bytes ctl)
          end
      | Message.Framed { inner = ip; _ } -> observe_packet ip ~retransmit
    in
    let observe actions =
      List.iter
        (fun (a : Protocol.action) ->
          match a with
          | Protocol.Send_user u ->
              Metrics.inc user_sends;
              Metrics.add tag_bytes (Message.tag_bytes u.Message.tag)
          | Protocol.Send_control { ctl; _ } ->
              Metrics.inc control_sends;
              Metrics.add control_bytes (Message.control_bytes ctl)
          | Protocol.Deliver _ -> Metrics.inc deliveries
          | Protocol.Send_framed { packet; retransmit; _ } ->
              observe_packet packet ~retransmit
          | Protocol.Set_timer _ -> ())
        actions;
      Metrics.observe_max max_pending (i.Protocol.pending_depth ());
      actions
    in
    {
      Protocol.on_invoke =
        (fun ~now intent ->
          Metrics.inc invokes;
          observe (i.Protocol.on_invoke ~now intent));
      on_packet =
        (fun ~now ~from packet ->
          Metrics.inc packets;
          observe (i.Protocol.on_packet ~now ~from packet));
      on_timer =
        (fun ~now ~key -> observe (i.Protocol.on_timer ~now ~key));
      pending_depth = i.Protocol.pending_depth;
    }
  in
  { inner with Protocol.make }
