type protocol_class = Tagless | Tagged | General

let class_to_string = function
  | Tagless -> "tagless"
  | Tagged -> "tagged"
  | General -> "general"

let class_rank = function Tagless -> 0 | Tagged -> 1 | General -> 2

let class_leq a b = class_rank a <= class_rank b

type verdict = Not_implementable | Implementable of protocol_class

type result = {
  verdict : verdict;
  orders : int list;
  best_cycle : Cycles.cycle option;
  necessity_exact : bool;
  simplification : [ `None | `Dropped_tautologies | `Unsatisfiable ];
}

let classify p =
  let necessity_exact = not (Forbidden.is_guarded p) in
  match Forbidden.simplify p with
  | Forbidden.Unsatisfiable ->
      (* B never holds, so X_B is all of X_async: the do-nothing protocol
         already guarantees it. *)
      {
        verdict = Implementable Tagless;
        orders = [];
        best_cycle = None;
        necessity_exact;
        simplification = `Unsatisfiable;
      }
  | Forbidden.Simplified p' ->
      let simplification =
        if
          List.length (Forbidden.conjuncts p')
          = List.length (Forbidden.conjuncts p)
        then `None
        else `Dropped_tautologies
      in
      let graph = Pgraph.of_predicate p' in
      let cycles = Cycles.enumerate graph in
      let with_orders =
        List.map (fun c -> (Beta.order c, c)) cycles
      in
      let orders =
        List.sort_uniq Int.compare (List.map fst with_orders)
      in
      let best_cycle =
        match
          List.sort (fun (a, _) (b, _) -> Int.compare a b) with_orders
        with
        | (_, c) :: _ -> Some c
        | [] -> None
      in
      let verdict =
        match orders with
        | [] -> Not_implementable
        | least :: _ ->
            if least = 0 then Implementable Tagless
            else if least = 1 then Implementable Tagged
            else Implementable General
      in
      { verdict; orders; best_cycle; necessity_exact; simplification }

let explain ?result p =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let r = match result with Some r -> r | None -> classify p in
  line "predicate B:  %s" (Forbidden.to_string p);
  (match r.simplification with
  | `Unsatisfiable ->
      line
        "a same-variable conjunct (x.r > x.s or x.p > x.p) can hold in no \
         partial order, so B never holds and X_B is all of X_async.";
      line
        "verdict: TAGLESS — the do-nothing protocol already guarantees the \
         specification (Theorem 3.1 degenerate case)."
  | `None | `Dropped_tautologies ->
      if r.simplification = `Dropped_tautologies then
        line
          "same-variable conjuncts x.s > x.r are true in every complete run \
           and were dropped; the specification is unchanged.";
      (match r.verdict with
      | Not_implementable ->
          line "the predicate graph has no cycle.";
          line
            "Theorem 2: acyclic graphs admit a logically synchronous run \
             satisfying B (linearize the graph and make every message \
             arrow vertical), so X_sync is not contained in X_B.";
          line
            "Corollary 1: a specification is implementable iff it contains \
             X_sync.";
          line "verdict: NOT IMPLEMENTABLE."
      | Implementable cls -> (
          (match r.best_cycle with
          | Some cycle ->
              line "certificate cycle:  %s"
                (Format.asprintf "%a" Cycles.pp_cycle cycle);
              let betas = Beta.beta_vertices cycle in
              line
                "beta vertices (incoming edge ends at .r, outgoing starts \
                 at .s): {%s} — order %d"
                (String.concat ", "
                   (List.map (fun v -> "x" ^ string_of_int v) betas))
                (List.length betas);
              if List.length cycle > 2 then begin
                let w = Weaken.contract cycle in
                line
                  "Lemma 4 contracts the cycle (eliminating non-beta \
                   vertices) to the weaker predicate:  %s"
                  (Format.asprintf "%a"
                     (Format.pp_print_list
                        ~pp_sep:(fun ppf () ->
                          Format.pp_print_string ppf " & ")
                        Term.pp_conjunct)
                     w.Weaken.final)
              end
          | None -> ());
          match cls with
          | Tagless ->
              line
                "an order-0 cycle implies an event h with h > h, which no \
                 partial order allows (Lemma 3.3): B is unsatisfiable and \
                 X_B = X_async.";
              line
                "verdict: TAGLESS — Theorem 3.1, the trivial protocol \
                 suffices."
          | Tagged ->
              line
                "an order-1 two-vertex cycle is one of the causal-ordering \
                 forms of Lemma 3.2, whose specification is exactly X_co; \
                 hence X_co is contained in X_B.";
              line
                "verdict: TAGGED — Theorem 3.2: a tagged protocol (e.g. \
                 RST matrix clocks) suffices; Theorem 4.3: the trivial \
                 protocol does not.";
              if not r.necessity_exact then
                line
                  "(guards present: sufficiency holds — guards only \
                   enlarge X_B — but the necessity direction of Theorem 4 \
                   is proved for unguarded predicates.)"
          | General ->
              line
                "every cycle has two or more beta vertices; contracting \
                 yields a crown x1.s > x2.r & ... & xk.s > x1.r (Lemma \
                 3.1), whose specification contains X_sync but not X_co.";
              line
                "verdict: GENERAL — Theorem 3.3: control messages \
                 suffice; Theorem 4.2: tagging alone cannot implement it.";
              if not r.necessity_exact then
                line
                  "(guards present: sufficiency holds; necessity is \
                   advisory.)")));
  Buffer.contents buf

let verdict_to_string = function
  | Not_implementable -> "not implementable"
  | Implementable c -> class_to_string c

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s" (verdict_to_string r.verdict);
  (match r.orders with
  | [] -> Format.fprintf ppf " (no cycle in the predicate graph)"
  | os ->
      Format.fprintf ppf " (cycle orders: %a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        os);
  (match r.best_cycle with
  | Some c -> Format.fprintf ppf "@ certificate cycle: %a" Cycles.pp_cycle c
  | None -> ());
  if not r.necessity_exact then
    Format.fprintf ppf
      "@ (guarded predicate: class is sufficient, necessity not decided)";
  Format.fprintf ppf "@]"
