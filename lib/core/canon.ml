(* Canonicalization: pick one representative per alpha-equivalence class.

   The variable renumbering is a tiny canonical-labeling problem (the
   predicate is a colored multigraph over its variables). We solve it the
   classic way: iterated signature refinement to split the variables into
   ordered classes, then exact minimization over the orders consistent
   with the classes. Predicates have single-digit arities in every
   workload we serve, so the exact step is cheap; [max_search] guards the
   pathological fully-symmetric case. *)

let max_search = 40320 (* 8! *)

let point_code = function Mo_order.Event.S -> 0 | Mo_order.Event.R -> 1

let point_of_code = function 0 -> Mo_order.Event.S | _ -> Mo_order.Event.R

(* conjunct as (before var, before point, after var, after point) *)
let conjunct_tuple (c : Term.conjunct) =
  ( c.Term.before.Term.var,
    point_code c.Term.before.Term.point,
    c.Term.after.Term.var,
    point_code c.Term.after.Term.point )

(* guards with symmetric arguments sorted; the tag orders guard kinds *)
type gkey = Gsrc of int * int | Gdst of int * int | Gcolor of int * int

let guard_key (g : Term.guard) =
  match g with
  | Term.Same_src (x, y) -> Gsrc (min x y, max x y)
  | Term.Same_dst (x, y) -> Gdst (min x y, max x y)
  | Term.Color_is (x, c) -> Gcolor (x, c)

let dedup_sorted l =
  let rec go = function
    | a :: b :: rest when compare a b = 0 -> go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go l

(* ---- signature refinement ---------------------------------------- *)

(* One refinement round: each variable's new signature is its old id
   plus the sorted multiset of its incidences, with neighbours
   represented by their old ids. Ids are re-assigned by rank, so they
   depend only on the structure, never on the incoming numbering. *)
let refine ~nvars conjs guards prev =
  let desc = Array.make nvars [] in
  let add v d = if v >= 0 && v < nvars then desc.(v) <- d :: desc.(v) in
  List.iter
    (fun (bv, bp, av, ap) ->
      let self = if bv = av then 1 else 0 in
      add bv (0, bp, ap, prev.(av), self);
      add av (1, ap, bp, prev.(bv), self))
    conjs;
  List.iter
    (fun g ->
      match g with
      | Gsrc (x, y) ->
          add x (2, 0, 0, prev.(y), 0);
          add y (2, 0, 0, prev.(x), 0)
      | Gdst (x, y) ->
          add x (3, 0, 0, prev.(y), 0);
          add y (3, 0, 0, prev.(x), 0)
      | Gcolor (x, c) -> add x (4, c, 0, 0, 0))
    guards;
  let sigs =
    Array.mapi (fun v d -> (prev.(v), List.sort compare d)) desc
  in
  let distinct = dedup_sorted (List.sort compare (Array.to_list sigs)) in
  let rank s =
    let rec go i = function
      | [] -> assert false
      | d :: rest -> if compare d s = 0 then i else go (i + 1) rest
    in
    go 0 distinct
  in
  Array.map rank sigs

let signature_classes ~nvars conjs guards =
  let ids = ref (Array.make nvars 0) in
  (* n rounds always reach a fixpoint of the refinement *)
  for _ = 1 to max 1 nvars do
    ids := refine ~nvars conjs guards !ids
  done;
  let by_id = Hashtbl.create 8 in
  Array.iteri
    (fun v id ->
      Hashtbl.replace by_id id
        (v :: Option.value ~default:[] (Hashtbl.find_opt by_id id)))
    !ids;
  Hashtbl.fold (fun id vs acc -> (id, List.rev vs) :: acc) by_id []
  |> List.sort compare
  |> List.map snd

(* ---- exact minimization within classes --------------------------- *)

let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: ys ->
      (x :: y :: ys) :: List.map (fun zs -> y :: zs) (insertions x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insertions x) (permutations xs)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

(* all variable orders consistent with the class partition (classes stay
   in signature order; members permute within their class), or just the
   refinement order when there are too many. The budget fold saturates at
   [max_search + 1]: a class of more than 8 members blows the budget on
   its own (9! > 8! = max_search), and keeping the accumulator at most
   [max_search] before each multiplication keeps the product far from
   native-int overflow — a fully symmetric 21-variable predicate must
   fall back, not wrap negative and enumerate 21! orders. *)
let candidate_orders classes =
  let budget =
    List.fold_left
      (fun acc c ->
        let n = List.length c in
        if acc > max_search || n > 8 then max_search + 1
        else acc * factorial n)
      1 classes
  in
  if budget > max_search then [ List.concat classes ]
  else
    List.fold_left
      (fun acc cls ->
        let ps = permutations cls in
        List.concat_map (fun prefix -> List.map (fun p -> prefix @ p) ps) acc)
      [ [] ] classes

let key_under ~nvars order conjs guards =
  let pos = Array.make nvars 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  let conjs' =
    List.sort compare
      (List.map
         (fun (bv, bp, av, ap) -> (pos.(bv), bp, pos.(av), ap))
         conjs)
  in
  let guards' =
    List.sort compare
      (List.map
         (fun g ->
           match g with
           | Gsrc (x, y) -> Gsrc (min pos.(x) pos.(y), max pos.(x) pos.(y))
           | Gdst (x, y) -> Gdst (min pos.(x) pos.(y), max pos.(x) pos.(y))
           | Gcolor (x, c) -> Gcolor (pos.(x), c))
         guards)
  in
  (conjs', guards')

let canonical_key t =
  let nvars = Forbidden.nvars t in
  let conjs = List.map conjunct_tuple (Forbidden.conjuncts t) in
  let guards = List.map guard_key (Forbidden.guards t) in
  if nvars = 0 then (0, ([], List.sort compare guards))
  else
    let classes = signature_classes ~nvars conjs guards in
    let best =
      List.fold_left
        (fun acc order ->
          let k = key_under ~nvars order conjs guards in
          match acc with
          | None -> Some k
          | Some k0 -> if compare k k0 < 0 then Some k else acc)
        None
        (candidate_orders classes)
    in
    (nvars, Option.get best)

let predicate t =
  let nvars, (conjs, guards) = canonical_key t in
  let conjuncts =
    List.map
      (fun (bv, bp, av, ap) ->
        Term.(
          { var = bv; point = point_of_code bp }
          @> { var = av; point = point_of_code ap }))
      conjs
  in
  let guards =
    List.map
      (fun g ->
        match g with
        | Gsrc (x, y) -> Term.Same_src (x, y)
        | Gdst (x, y) -> Term.Same_dst (x, y)
        | Gcolor (x, c) -> Term.Color_is (x, c))
      guards
  in
  Forbidden.make ~nvars ~guards conjuncts

let render_key (nvars, (conjs, guards)) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "n=%d|c=" nvars);
  List.iter
    (fun (bv, bp, av, ap) ->
      Buffer.add_string buf (Printf.sprintf "%d.%d<%d.%d;" bv bp av ap))
    conjs;
  Buffer.add_string buf "|g=";
  List.iter
    (fun g ->
      Buffer.add_string buf
        (match g with
        | Gsrc (x, y) -> Printf.sprintf "s%d=%d;" x y
        | Gdst (x, y) -> Printf.sprintf "d%d=%d;" x y
        | Gcolor (x, c) -> Printf.sprintf "k%d=%d;" x c))
    guards;
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (render_key (canonical_key t)))

let equal a b = compare (canonical_key a) (canonical_key b) = 0

let spec (s : Spec.t) =
  let members =
    List.map (fun p -> (digest p, predicate p)) s.Spec.predicates
    |> List.sort (fun (d1, _) (d2, _) -> String.compare d1 d2)
  in
  let rec dedup = function
    | (d1, _) :: ((d2, _) :: _ as rest) when String.equal d1 d2 ->
        dedup rest
    | m :: rest -> m :: dedup rest
    | [] -> []
  in
  Spec.make ~name:s.Spec.name (List.map snd (dedup members))

let spec_digest s =
  let canonical = spec s in
  let digests = List.map digest canonical.Spec.predicates in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "spec:%d:%s" (List.length digests)
          (String.concat "," digests)))
