(** The paper's decision algorithm (Theorems 2, 3 and 4).

    Given a forbidden predicate [B] with specification [X_B]:
    - [X_B] is implementable iff the predicate graph has a cycle
      (Theorem 2);
    - the trivial (tagless) protocol suffices iff some cycle has order 0
      (then [X_B = X_async]);
    - tagging suffices (no control messages) iff some cycle has order ≤ 1
      (then [X_co ⊆ X_B]);
    - otherwise control messages are necessary and sufficient
      ([X_sync ⊆ X_B] but [X_co ⊄ X_B]).

    The necessity directions (Theorem 4) are proved for unguarded
    predicates; for guarded predicates the reported class is an upper bound
    (sufficiency still holds because guards only enlarge [X_B]), and
    {!result}'s [necessity_exact] is [false]. *)

type protocol_class = Tagless | Tagged | General

val class_to_string : protocol_class -> string

val class_leq : protocol_class -> protocol_class -> bool
(** [Tagless ≤ Tagged ≤ General]: protocol power ordering. *)

type verdict =
  | Not_implementable
      (** No protocol can guarantee safety and liveness:
          [X_sync ⊄ X_B]. *)
  | Implementable of protocol_class
      (** The weakest protocol class that implements the specification. *)

type result = {
  verdict : verdict;
  orders : int list;
      (** Sorted, deduplicated orders of all simple cycles found. *)
  best_cycle : Cycles.cycle option;
      (** A cycle of minimal order — the certificate behind the verdict. *)
  necessity_exact : bool;
      (** [true] for unguarded predicates: the class is also necessary.
          [false] when guards are present (class is sufficient only) —
          see module comment. *)
  simplification : [ `None | `Dropped_tautologies | `Unsatisfiable ];
      (** What {!Forbidden.simplify} did. [`Unsatisfiable] forces verdict
          [Implementable Tagless] regardless of the graph. *)
}

val classify : Forbidden.t -> result

val explain : ?result:result -> Forbidden.t -> string
(** A multi-line, human-readable justification of the verdict, citing the
    theorem that applies, the certificate cycle with its β-vertices, and
    the Lemma 4 contraction to a canonical form. Meant for the CLI and for
    teaching; the content mirrors the paper's proof structure.

    [result], when given, must be [classify p] computed by the caller —
    [explain] then reuses it instead of classifying a second time. *)

val verdict_to_string : verdict -> string

val pp_result : Format.formatter -> result -> unit
