open Mo_order

type verdict = { at : int; witness : int array }

type t = {
  mon : Monitor.t;
  matcher : Eval.Masked.matcher;
  mutable verdict : verdict option;
}

let create ?window ?distinct ~nprocs c =
  {
    mon = Monitor.create ?window ~nprocs ();
    matcher = Eval.Masked.make ?distinct c;
    verdict = None;
  }

let exact ?distinct c run =
  let nmsgs = Run.nmsgs run in
  if nmsgs > Monitor.max_wide_window then
    invalid_arg "Pmon.exact: run exceeds the monitor window";
  create ~window:(max nmsgs 1) ?distinct ~nprocs:(Run.nprocs run) c

let verdict t = t.verdict

let monitor t = t.mon

(* evaluate the predicate over the frontier; the first match is final *)
let check t =
  (match t.verdict with
  | Some _ -> ()
  | None -> (
      let mon = t.mon in
      match
        if Monitor.is_wide mon then
          Eval.Masked.find_wide t.matcher ~n:(Monitor.window mon)
            ~live:(Monitor.wide_live mon) ~rel:(Monitor.wide_rel mon)
            ~src:(Monitor.slot_src mon) ~dst:(Monitor.slot_dst mon)
            ~color:(Monitor.slot_color mon)
        else
          Eval.Masked.find t.matcher ~n:(Monitor.window mon)
            ~live:(Monitor.live mon) ~masks:(Monitor.masks mon)
            ~src:(Monitor.slot_src mon) ~dst:(Monitor.slot_dst mon)
            ~color:(Monitor.slot_color mon)
      with
      | None -> ()
      | Some a ->
          let witness = Array.map (Monitor.slot_msg mon) a in
          t.verdict <- Some { at = Monitor.events mon - 1; witness }));
  t.verdict

let send t ~msg ~src ~dst ?color () =
  Monitor.send t.mon ~msg ~src ~dst ?color ();
  check t

let deliver t ~msg =
  Monitor.deliver t.mon ~msg;
  check t

let feed_events t run events =
  List.iter
    (fun (e : Event.t) ->
      match e.point with
      | Event.S ->
          ignore
            (send t ~msg:e.msg ~src:(Run.msg_src run e.msg)
               ~dst:(Run.msg_dst run e.msg)
               ?color:(Run.msg_color run e.msg) ())
      | Event.R -> ignore (deliver t ~msg:e.msg))
    events;
  t.verdict

let feed_run ?distinct c run =
  feed_events (exact ?distinct c run) run (Run.linearize run)
