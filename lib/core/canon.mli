(** Canonical forms and stable digests for predicates and specs.

    Two forbidden predicates that differ only in the numbering of their
    message variables, the order of their conjuncts, or the writing
    direction of symmetric guards denote the same specification — the
    existential quantifier in Definition 4.1 makes [X_B] invariant under
    any bijective renaming of [x_1 … x_m]. Real query streams are heavily
    repetitive modulo exactly these presentational choices, so the
    decision cache in [Mo_service] keys on the canonical form computed
    here: one cache entry per alpha-equivalence class.

    Canonicalization performs, in order:
    - guard normalization: [src(x)=src(y)] and [dst(x)=dst(y)] are
      symmetric, so their arguments are sorted;
    - variable renumbering: variables are partitioned by an iterated
      structural signature (a Weisfeiler–Leman-style refinement over the
      conjunct/guard incidence structure), then the renumbering that
      minimizes the sorted conjunct list is chosen among the orders
      consistent with that partition;
    - conjunct and guard sorting under the new numbering.

    The result is a normal form: any two alpha-equivalent predicates map
    to structurally equal canonical predicates (hence equal digests), as
    long as the within-class permutation search is not truncated (see
    {!max_search}). Canonicalization never changes the denoted
    specification, and — because {!Classify.classify} is a function of
    the predicate graph up to variable renaming — it preserves the
    verdict, the cycle orders and [necessity_exact] exactly. The property
    suite pins this obligation over thousands of random renaming pairs. *)

val predicate : Forbidden.t -> Forbidden.t
(** The canonical representative of the predicate's alpha-equivalence
    class. Idempotent. *)

val digest : Forbidden.t -> string
(** Stable hex digest (MD5 of an unambiguous rendering) of
    [predicate t]. Equal for alpha-equivalent predicates; independent of
    process, host and session. *)

val spec : Spec.t -> Spec.t
(** Member predicates canonicalized, sorted by digest and deduplicated;
    the spec name is preserved (it is not part of {!spec_digest}). *)

val spec_digest : Spec.t -> string
(** Digest of the canonical member multiset — the cache key for
    spec-level operations such as [minimize]. *)

val equal : Forbidden.t -> Forbidden.t -> bool
(** Alpha-equivalence: structural equality of canonical forms, compared
    directly (not through {!digest}, so a hash collision cannot make
    distinct predicates equal). Strictly coarser than {!Forbidden.equal}
    and strictly finer than semantic equivalence
    ({!Implies.equivalent}). *)

val max_search : int
(** Safety valve: the permutation search enumerates at most this many
    orders (per predicate) within signature classes. Predicates whose
    refined signature classes are so symmetric that the bound is hit fall
    back to the refinement order — still deterministic, but two
    exotic renamings may then digest differently (a cache miss, never an
    unsoundness). Unreachable for the arities the paper and the catalog
    use. *)
