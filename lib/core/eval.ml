open Mo_order

let conjunct_holds run assignment (c : Term.conjunct) =
  let ev (e : Term.endpoint) =
    { Event.msg = assignment.(e.var); point = e.point }
  in
  Run.Abstract.lt run (ev c.before) (ev c.after)

let guard_holds run assignment (g : Term.guard) =
  let attrs v = Run.Abstract.attrs run assignment.(v) in
  match g with
  | Term.Same_src (x, y) -> (
      match ((attrs x).Run.src, (attrs y).Run.src) with
      | Some a, Some b -> a = b
      | _ -> false)
  | Term.Same_dst (x, y) -> (
      match ((attrs x).Run.dst, (attrs y).Run.dst) with
      | Some a, Some b -> a = b
      | _ -> false)
  | Term.Color_is (x, c) -> (attrs x).Run.color = Some c

let check_assignment p run assignment =
  if Array.length assignment <> Forbidden.nvars p then
    invalid_arg "Eval.check_assignment: arity mismatch";
  List.for_all (conjunct_holds run assignment) (Forbidden.conjuncts p)
  && List.for_all (guard_holds run assignment) (Forbidden.guards p)

(* ------------------------------------------------------------------ *)
(* Reference interpreter.                                             *)
(* ------------------------------------------------------------------ *)

(* Index conjuncts and guards by the highest variable they mention, so each
   is checked as soon as its last variable is assigned. *)
let stage_by_max_var p =
  let m = Forbidden.nvars p in
  let conj_at = Array.make (max m 1) [] in
  let guard_at = Array.make (max m 1) [] in
  List.iter
    (fun (c : Term.conjunct) ->
      let v = max c.before.var c.after.var in
      conj_at.(v) <- c :: conj_at.(v))
    (Forbidden.conjuncts p);
  List.iter
    (fun (g : Term.guard) ->
      let v =
        match g with
        | Term.Same_src (x, y) | Term.Same_dst (x, y) -> max x y
        | Term.Color_is (x, _) -> x
      in
      guard_at.(v) <- g :: guard_at.(v))
    (Forbidden.guards p);
  (conj_at, guard_at)

let search_ref ?(distinct = true) ?(limit = max_int) p run =
  let m = Forbidden.nvars p in
  let n = Run.Abstract.nmsgs run in
  if m = 0 then [ [||] ] (* empty conjunction: trivially true *)
  else if n = 0 || (distinct && n < m) then []
  else begin
    let conj_at, guard_at = stage_by_max_var p in
    let assignment = Array.make m (-1) in
    let used = Array.make n false in
    let results = ref [] in
    let count = ref 0 in
    let exception Done in
    let rec assign v =
      if v = m then begin
        incr count;
        results := Array.copy assignment :: !results;
        if !count >= limit then raise Done
      end
      else
        for msg = 0 to n - 1 do
          if not (distinct && used.(msg)) then begin
            assignment.(v) <- msg;
            used.(msg) <- true;
            let ok =
              List.for_all (conjunct_holds run assignment) conj_at.(v)
              && List.for_all (guard_holds run assignment) guard_at.(v)
            in
            if ok then assign (v + 1);
            used.(msg) <- false
          end
        done
    in
    (try assign 0 with Done -> ());
    List.rev !results
  end

let find_match_ref ?distinct p run =
  match search_ref ?distinct ~limit:1 p run with
  | a :: _ -> Some a
  | [] -> None

let find_matches_ref ?distinct ?(limit = 1000) p run =
  search_ref ?distinct ~limit p run

let holds_ref ?distinct p run = Option.is_some (find_match_ref ?distinct p run)

let satisfies_ref ?distinct p run = not (holds_ref ?distinct p run)

(* ------------------------------------------------------------------ *)
(* Compiled evaluator.                                                *)
(*                                                                    *)
(* A predicate compiles once into staged matching plans over the bit  *)
(* matrices of Run.Abstract.relations. At each stage the candidate    *)
(* set for the stage's variable starts as the full message universe   *)
(* (minus used messages under distinctness) and is narrowed by        *)
(* intersecting one matrix row per binary conjunct linking it to an   *)
(* already-bound variable; only same-variable conjuncts and guards    *)
(* remain as per-candidate scalar checks. Two plans are kept:         *)
(*                                                                    *)
(* - [lex]: identity variable order. Pruning only removes candidates  *)
(*   the reference interpreter would reject at the same stage, so     *)
(*   matches stream out in exactly the reference's lexicographic      *)
(*   order — find_match/find_matches stay byte-identical.             *)
(* - [fast]: most-constrained-variable-first order (greedy: most      *)
(*   conjunct links to already-ordered variables, then highest        *)
(*   degree). Used for the boolean queries, where only existence      *)
(*   matters and tighter early stages prune best.                     *)
(* ------------------------------------------------------------------ *)

(* which matrix row constrains the candidates of the current variable,
   given the bound endpoint's message *)
type sel = SS | SR | RS | RR | SS_T | SR_T | RS_T | RR_T

type cstage = {
  var : int;
  rows : (int * sel) array; (* (bound variable, matrix) per binary conjunct *)
  self_conj : Term.conjunct list; (* both endpoints on this variable *)
  sguards : Term.guard list; (* guards whose last variable is this one *)
}

type compiled = {
  pred : Forbidden.t;
  m : int;
  lex : cstage array;
  fast : cstage array;
}

let fwd_sel (b : Event.point) (a : Event.point) =
  match (b, a) with
  | Event.S, Event.S -> SS
  | Event.S, Event.R -> SR
  | Event.R, Event.S -> RS
  | Event.R, Event.R -> RR

let bwd_sel (b : Event.point) (a : Event.point) =
  match (b, a) with
  | Event.S, Event.S -> SS_T
  | Event.S, Event.R -> SR_T
  | Event.R, Event.S -> RS_T
  | Event.R, Event.R -> RR_T

let row_of (rel : Run.Abstract.relations) sel msg =
  match sel with
  | SS -> rel.Run.Abstract.ss.(msg)
  | SR -> rel.Run.Abstract.sr.(msg)
  | RS -> rel.Run.Abstract.rs.(msg)
  | RR -> rel.Run.Abstract.rr.(msg)
  | SS_T -> rel.Run.Abstract.ss_t.(msg)
  | SR_T -> rel.Run.Abstract.sr_t.(msg)
  | RS_T -> rel.Run.Abstract.rs_t.(msg)
  | RR_T -> rel.Run.Abstract.rr_t.(msg)

let build_stages p order =
  let m = Forbidden.nvars p in
  let pos_of = Array.make m 0 in
  Array.iteri (fun i v -> pos_of.(v) <- i) order;
  let rows = Array.make m [] in
  let self_conj = Array.make m [] in
  let sguards = Array.make m [] in
  List.iter
    (fun (c : Term.conjunct) ->
      let b = c.before.var and a = c.after.var in
      if b = a then self_conj.(pos_of.(b)) <- c :: self_conj.(pos_of.(b))
      else if pos_of.(b) < pos_of.(a) then
        (* [before] is bound when [after] is being chosen: candidates y
           with b_msg.point ▷ y.point' are a forward row at b's message *)
        rows.(pos_of.(a)) <-
          (b, fwd_sel c.before.point c.after.point) :: rows.(pos_of.(a))
      else
        (* [after] is bound first: candidates x with x.point ▷ a_msg.point'
           are a transposed row at a's message *)
        rows.(pos_of.(b)) <-
          (a, bwd_sel c.before.point c.after.point) :: rows.(pos_of.(b)))
    (Forbidden.conjuncts p);
  List.iter
    (fun (g : Term.guard) ->
      let pos =
        match g with
        | Term.Same_src (x, y) | Term.Same_dst (x, y) ->
            max pos_of.(x) pos_of.(y)
        | Term.Color_is (x, _) -> pos_of.(x)
      in
      sguards.(pos) <- g :: sguards.(pos))
    (Forbidden.guards p);
  Array.init m (fun i ->
      {
        var = order.(i);
        rows = Array.of_list (List.rev rows.(i));
        self_conj = List.rev self_conj.(i);
        sguards = List.rev sguards.(i);
      })

(* Greedy most-constrained-first: repeatedly pick the unordered variable
   with the most conjunct links to already-ordered ones; ties go to the
   higher total conjunct degree, then the lower index (determinism). *)
let constrained_order p =
  let m = Forbidden.nvars p in
  let degree = Array.make m 0 in
  let links = Array.make m [] in
  List.iter
    (fun (c : Term.conjunct) ->
      let b = c.before.var and a = c.after.var in
      degree.(b) <- degree.(b) + 1;
      if a <> b then begin
        degree.(a) <- degree.(a) + 1;
        links.(b) <- a :: links.(b);
        links.(a) <- b :: links.(a)
      end)
    (Forbidden.conjuncts p);
  let placed = Array.make m false in
  let bound_links = Array.make m 0 in
  Array.init m (fun _ ->
      let best = ref (-1) in
      for v = m - 1 downto 0 do
        if not placed.(v) then
          if
            !best < 0
            || bound_links.(v) > bound_links.(!best)
            || (bound_links.(v) = bound_links.(!best)
               && degree.(v) > degree.(!best))
          then best := v
      done;
      let v = !best in
      placed.(v) <- true;
      List.iter
        (fun w -> if not placed.(w) then bound_links.(w) <- bound_links.(w) + 1)
        links.(v);
      v)

let compile p =
  let m = Forbidden.nvars p in
  let identity = Array.init m Fun.id in
  {
    pred = p;
    m;
    lex = build_stages p identity;
    fast = build_stages p (constrained_order p);
  }

let predicate c = c.pred

let sel_index = function
  | SS -> 0
  | SR -> 1
  | RS -> 2
  | RR -> 3
  | SS_T -> 4
  | SR_T -> 5
  | RS_T -> 6
  | RR_T -> 7

(* The staged matcher over the packed int-mask rows (runs of ≤ 62
   messages, i.e. everything the enumeration kernel emits). Candidate and
   used sets are single ints; a self-conjunct is one bit test of the
   matrix diagonal — crucially {e not} an event-level [lt] query, which
   would force the lazy poset of a mask-built run. Candidates are visited
   ascending, matching the Bitset variant bit for bit. *)
let run_plan_masks plan ~m ~distinct run masks emit =
  let n = Run.Abstract.nmsgs run in
  if m = 0 then ignore (emit [||])
  else if n = 0 || (distinct && n < m) then ()
  else begin
    let full = (1 lsl n) - 1 in
    let assignment = Array.make m (-1) in
    let used = ref 0 in
    let exception Done in
    let rec go i =
      if i = m then begin
        if not (emit assignment) then raise Done
      end
      else begin
        let st = plan.(i) in
        let cand = ref (if distinct then full land lnot !used else full) in
        Array.iter
          (fun (w, s) ->
            cand := !cand land masks.((sel_index s * n) + assignment.(w)))
          st.rows;
        let cand = !cand in
        for c = 0 to n - 1 do
          if cand land (1 lsl c) <> 0 then begin
            assignment.(st.var) <- c;
            if
              List.for_all
                (fun (cj : Term.conjunct) ->
                  let k = sel_index (fwd_sel cj.before.point cj.after.point) in
                  masks.((k * n) + c) land (1 lsl c) <> 0)
                st.self_conj
              && List.for_all (guard_holds run assignment) st.sguards
            then begin
              if distinct then used := !used lor (1 lsl c);
              go (i + 1);
              if distinct then used := !used land lnot (1 lsl c)
            end
          end
        done
      end
    in
    try go 0 with Done -> ()
  end

(* The staged matcher over Bitset rows: the fallback for runs too large
   for packed masks. [emit] sees each full assignment (indexed by
   variable, not stage) and returns [true] to keep searching. *)
let run_plan_bitsets plan ~m ~distinct run emit =
  let n = Run.Abstract.nmsgs run in
  if m = 0 then ignore (emit [||])
  else if n = 0 || (distinct && n < m) then ()
  else begin
    let rel = Run.Abstract.relations run in
    let scratch = Array.init m (fun _ -> Bitset.create n) in
    let used = Bitset.create n in
    let assignment = Array.make m (-1) in
    let exception Done in
    let rec go i =
      if i = m then begin
        if not (emit assignment) then raise Done
      end
      else begin
        let st = plan.(i) in
        let cand = scratch.(i) in
        Bitset.set_all cand;
        if distinct then Bitset.diff_into ~dst:cand used;
        Array.iter
          (fun (w, s) -> Bitset.inter_into ~dst:cand (row_of rel s assignment.(w)))
          st.rows;
        Bitset.iter
          (fun c ->
            assignment.(st.var) <- c;
            if
              List.for_all (conjunct_holds run assignment) st.self_conj
              && List.for_all (guard_holds run assignment) st.sguards
            then begin
              if distinct then Bitset.add used c;
              go (i + 1);
              if distinct then Bitset.remove used c
            end)
          cand
      end
    in
    try go 0 with Done -> ()
  end

let run_plan plan ~m ~distinct run emit =
  match Run.Abstract.masks run with
  | Some masks -> run_plan_masks plan ~m ~distinct run masks emit
  | None -> run_plan_bitsets plan ~m ~distinct run emit

let search_compiled ?(distinct = true) ?(limit = max_int) c run =
  let results = ref [] in
  let count = ref 0 in
  run_plan c.lex ~m:c.m ~distinct run (fun a ->
      incr count;
      results := Array.copy a :: !results;
      !count < limit);
  List.rev !results

let find_match_c ?distinct c run =
  match search_compiled ?distinct ~limit:1 c run with
  | a :: _ -> Some a
  | [] -> None

let find_matches_c ?distinct ?(limit = 1000) c run =
  search_compiled ?distinct ~limit c run

let holds_c ?(distinct = true) c run =
  let found = ref false in
  run_plan c.fast ~m:c.m ~distinct run (fun _ ->
      found := true;
      false);
  !found

let satisfies_c ?distinct c run = not (holds_c ?distinct c run)

(* ------------------------------------------------------------------ *)
(* Default entry points: compile-and-go fast path.                    *)
(* ------------------------------------------------------------------ *)

let find_match ?distinct p run = find_match_c ?distinct (compile p) run

let find_matches ?distinct ?limit p run =
  find_matches_c ?distinct ?limit (compile p) run

let holds ?distinct p run = holds_c ?distinct (compile p) run

let satisfies ?distinct p run = satisfies_c ?distinct (compile p) run

(* ------------------------------------------------------------------ *)
(* Matching directly over raw mask rows.                              *)
(* ------------------------------------------------------------------ *)

module Masked = struct
  type matcher = { c : compiled; distinct : bool; assignment : int array }

  let make ?(distinct = true) c =
    { c; distinct; assignment = Array.make (max c.m 1) (-1) }

  (* Attribute guards over plain int arrays: [-1] means unknown, and an
     unknown attribute satisfies no guard (colors and processes are
     non-negative by construction). *)
  let guard_ok ~src ~dst ~color assignment (g : Term.guard) =
    match g with
    | Term.Same_src (x, y) ->
        let a = src.(assignment.(x)) in
        a >= 0 && a = src.(assignment.(y))
    | Term.Same_dst (x, y) ->
        let a = dst.(assignment.(x)) in
        a >= 0 && a = dst.(assignment.(y))
    | Term.Color_is (x, c) -> color.(assignment.(x)) = c

  exception Done

  let rec self_ok masks n c = function
    | [] -> true
    | (cj : Term.conjunct) :: rest ->
        let k = sel_index (fwd_sel cj.before.point cj.after.point) in
        masks.((k * n) + c) land (1 lsl c) <> 0 && self_ok masks n c rest

  let rec guards_ok ~src ~dst ~color assignment = function
    | [] -> true
    | g :: rest ->
        guard_ok ~src ~dst ~color assignment g
        && guards_ok ~src ~dst ~color assignment rest

  (* [run_plan_masks] with the run replaced by raw rows of stride [n]
     and a [live] occupancy mask: the streaming monitor's frontier
     ({!Mo_order.Monitor}) is matched in place, between events. This is
     the per-event hot path of [Pmon.check], so the search loop is kept
     allocation-free (B15 holds it to >= 1M events/sec). *)
  let run_plan u plan ~n ~live ~masks ~src ~dst ~color emit =
    let m = u.c.m in
    if m = 0 then ignore (emit u.assignment)
    else if live <> 0 then begin
      let assignment = u.assignment in
      let used = ref 0 in
      let rec go i =
        if i = m then begin
          if not (emit assignment) then raise_notrace Done
        end
        else begin
          let st = plan.(i) in
          let rows = st.rows in
          let cand =
            ref (if u.distinct then live land lnot !used else live)
          in
          for ri = 0 to Array.length rows - 1 do
            let w, s = rows.(ri) in
            cand := !cand land masks.((sel_index s * n) + assignment.(w))
          done;
          let cand = !cand in
          if cand <> 0 then
            for c = 0 to n - 1 do
              if cand land (1 lsl c) <> 0 then begin
                assignment.(st.var) <- c;
                if
                  self_ok masks n c st.self_conj
                  && guards_ok ~src ~dst ~color assignment st.sguards
                then begin
                  if u.distinct then used := !used lor (1 lsl c);
                  go (i + 1);
                  if u.distinct then used := !used land lnot (1 lsl c)
                end
              end
            done
        end
      in
      try go 0 with Done -> ()
    end

  let holds u ~n ~live ~masks ~src ~dst ~color =
    let found = ref false in
    run_plan u u.c.fast ~n ~live ~masks ~src ~dst ~color (fun _ ->
        found := true;
        false);
    !found

  let find u ~n ~live ~masks ~src ~dst ~color =
    let res = ref None in
    run_plan u u.c.fast ~n ~live ~masks ~src ~dst ~color (fun a ->
        res := Some (Array.copy a);
        false);
    !res

  let rec self_ok_wide rel n c = function
    | [] -> true
    | (cj : Term.conjunct) :: rest ->
        let k = sel_index (fwd_sel cj.before.point cj.after.point) in
        Bitset.mem rel.((k * n) + c) c && self_ok_wide rel n c rest

  (* the wide-window twin of [run_plan]: the same staged search over the
     Bitset rows of a wide monitor (cf. [run_plan_bitsets]). Scratch is
     allocated per call — the wide path trades the packed loop's
     allocation-free discipline for width *)
  let run_plan_wide u plan ~n ~live ~rel ~src ~dst ~color emit =
    let m = u.c.m in
    if m = 0 then ignore (emit u.assignment)
    else if not (Bitset.is_empty live) then begin
      let assignment = u.assignment in
      let scratch = Array.init m (fun _ -> Bitset.create n) in
      let used = Bitset.create n in
      let rec go i =
        if i = m then begin
          if not (emit assignment) then raise_notrace Done
        end
        else begin
          let st = plan.(i) in
          let cand = scratch.(i) in
          Bitset.copy_into ~dst:cand live;
          if u.distinct then Bitset.diff_into ~dst:cand used;
          Array.iter
            (fun (w, s) ->
              Bitset.inter_into ~dst:cand
                rel.((sel_index s * n) + assignment.(w)))
            st.rows;
          Bitset.iter
            (fun c ->
              assignment.(st.var) <- c;
              if
                self_ok_wide rel n c st.self_conj
                && guards_ok ~src ~dst ~color assignment st.sguards
              then begin
                if u.distinct then Bitset.add used c;
                go (i + 1);
                if u.distinct then Bitset.remove used c
              end)
            cand
        end
      in
      try go 0 with Done -> ()
    end

  let holds_wide u ~n ~live ~rel ~src ~dst ~color =
    let found = ref false in
    run_plan_wide u u.c.fast ~n ~live ~rel ~src ~dst ~color (fun _ ->
        found := true;
        false);
    !found

  let find_wide u ~n ~live ~rel ~src ~dst ~color =
    let res = ref None in
    run_plan_wide u u.c.fast ~n ~live ~rel ~src ~dst ~color (fun a ->
        res := Some (Array.copy a);
        false);
    !res
end
