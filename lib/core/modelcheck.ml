open Mo_order

type counts = { runs : int; causal : int; sync : int }

type verdict = {
  counts : counts;
  subset_chain : bool;
  lemma32_equiv : bool;
  lemma32_exact : bool;
  lemma33_unsat : bool;
}

let ok v =
  v.subset_chain && v.lemma32_equiv && v.lemma32_exact && v.lemma33_unsat

let standard_sizes = [ (2, 2); (3, 2); (2, 3); (3, 3) ]

let deep_sizes = standard_sizes @ [ (4, 2); (4, 3); (3, 4); (4, 4) ]

let universe_sizes = standard_sizes @ [ (4, 2); (4, 3); (3, 4) ]

let vast_sizes = deep_sizes @ [ (5, 2); (5, 3); (5, 4); (4, 5) ]

(* one pass accumulator: counts and the pointwise lemma identities, all
   combined with sums and conjunctions — commutative and associative, so
   the sharded reduction is order-insensitive (and the pool merges in
   enumeration order anyway) *)
type acc = {
  a_runs : int;
  a_causal : int;
  a_sync : int;
  a_sync_sub : bool; (* every sync run is causal *)
  a_equiv : bool; (* B1 = B2 = B3 pointwise *)
  a_exact : bool; (* X_B2 = X_co pointwise *)
  a_unsat : bool; (* every async form holds everywhere *)
}

let acc_init =
  {
    a_runs = 0;
    a_causal = 0;
    a_sync = 0;
    a_sync_sub = true;
    a_equiv = true;
    a_exact = true;
    a_unsat = true;
  }

let acc_merge x y =
  {
    a_runs = x.a_runs + y.a_runs;
    a_causal = x.a_causal + y.a_causal;
    a_sync = x.a_sync + y.a_sync;
    a_sync_sub = x.a_sync_sub && y.a_sync_sub;
    a_equiv = x.a_equiv && y.a_equiv;
    a_exact = x.a_exact && y.a_exact;
    a_unsat = x.a_unsat && y.a_unsat;
  }

(* The lemma predicates, compiled once per process. Eagerly forced so no
   worker domain ever races on a lazy; a compiled plan is immutable and
   safe to share (see Eval). *)
type plans = {
  p_b1 : Eval.compiled;
  p_b2 : Eval.compiled;
  p_b3 : Eval.compiled;
  p_async : Eval.compiled list;
}

let plans =
  lazy
    {
      p_b1 = Eval.compile Catalog.causal_b1.Catalog.pred;
      p_b2 = Eval.compile Catalog.causal_b2.Catalog.pred;
      p_b3 = Eval.compile Catalog.causal_b3.Catalog.pred;
      p_async =
        List.map
          (fun (e : Catalog.entry) -> Eval.compile e.Catalog.pred)
          Catalog.async_forms;
    }

let step_mult plans ~mult acc r =
  let causal = Limits.is_causal r and sync = Limits.is_sync r in
  let s2 = Eval.satisfies_c plans.p_b2 r in
  {
    a_runs = acc.a_runs + mult;
    a_causal = (acc.a_causal + if causal then mult else 0);
    a_sync = (acc.a_sync + if sync then mult else 0);
    a_sync_sub = acc.a_sync_sub && ((not sync) || causal);
    a_equiv =
      acc.a_equiv
      && Eval.satisfies_c plans.p_b1 r = s2
      && Eval.satisfies_c plans.p_b3 r = s2;
    a_exact = acc.a_exact && s2 = causal;
    a_unsat =
      acc.a_unsat
      && List.for_all (fun p -> Eval.satisfies_c p r) plans.p_async;
  }

let step plans acc r = step_mult plans ~mult:1 acc r

let with_pool pool f =
  match pool with
  | Some p -> f p
  | None -> f (Mo_par.Pool.create ())

(* Decided-subtree prune for [verify] (sound because every component of
   [acc] is then constant over the subtree — see DESIGN.md §3j):
   Eval.holds_c is monotone in the closure (conjuncts are positive ▷
   atoms), so once all three B-forms' patterns have matched and both
   limit violations are witnessed, every completion contributes
   runs-only. The async forms must be *statically* unsatisfiable for
   their conjunct to stay true — which is exactly Lemma 3.3's syntactic
   direction, so we check it with Forbidden.simplify rather than assume
   the semantic lemma under verification. *)
let verify_prune plans =
  let asyncs_unsat =
    List.for_all
      (fun (e : Catalog.entry) ->
        match Forbidden.simplify e.Catalog.pred with
        | Forbidden.Unsatisfiable -> true
        | Forbidden.Simplified _ -> false)
      Catalog.async_forms
  in
  let decided a =
    asyncs_unsat
    && (not (Limits.is_causal a))
    && (not (Limits.is_sync a))
    && Eval.holds_c plans.p_b2 a
    && Eval.holds_c plans.p_b1 a
    && Eval.holds_c plans.p_b3 a
  in
  let on_pruned acc ~mult ~runs _a =
    { acc with a_runs = acc.a_runs + (mult * runs) }
  in
  (decided, on_pruned)

let verify ?pool ?(sym = false) ~sizes () =
  (* force the compiled plans on this domain before any worker shards run *)
  let plans = Lazy.force plans in
  with_pool pool (fun pool ->
      let total =
        if sym then
          List.fold_left
            (fun acc (nprocs, nmsgs) ->
              acc_merge acc
                (Enumerate.fold_abstracts_sym_par ~pool ~nprocs ~nmsgs
                   ~prune:(verify_prune plans) ~init:acc_init
                   ~f:(fun acc ~mult r -> step_mult plans ~mult acc r)
                   ~merge:acc_merge ()))
            acc_init sizes
        else
          List.fold_left
            (fun acc (nprocs, nmsgs) ->
              acc_merge acc
                (Enumerate.fold_abstracts_par ~pool ~nprocs ~nmsgs
                   ~init:acc_init ~f:(step plans) ~merge:acc_merge ()))
            acc_init sizes
      in
      {
        counts =
          { runs = total.a_runs; causal = total.a_causal; sync = total.a_sync };
        subset_chain =
          total.a_sync_sub
          && total.a_sync < total.a_causal
          && total.a_causal < total.a_runs;
        lemma32_equiv = total.a_equiv;
        lemma32_exact = total.a_exact;
        lemma33_unsat = total.a_unsat;
      })

(* ------------------------------------------------------------------ *)
(* Online-vs-offline differential verification.                       *)
(* ------------------------------------------------------------------ *)

type monitor_report = {
  m_runs : int;
  m_violations : (string * int) list;
  m_agree : bool;
}

let monitor_preds =
  [
    ("fifo", Catalog.fifo.Catalog.pred);
    ("causal_b2", Catalog.causal_b2.Catalog.pred);
    ("crown2", (Catalog.sync_crown 2).Catalog.pred);
  ]

type macc = { ma_runs : int; ma_viol : int array; ma_agree : bool }

let verify_monitor ?pool ?(extensions = 3) ?(seed = 0) ?(sample = 1) ~sizes
    () =
  let plans =
    List.map (fun (name, p) -> (name, Eval.compile p)) monitor_preds
  in
  let npreds = List.length plans in
  let step acc (r : Run.t) =
    (* per-run extension seeds derived from the run content, so the
       sample is independent of sharding and job count *)
    let rseed = Hashtbl.hash (seed, Run.linearize r) in
    let monitored = sample <= 1 || rseed mod sample = 0 in
    let viol = Array.copy acc.ma_viol in
    let agree = ref acc.ma_agree in
    List.iteri
      (fun i (_, plan) ->
        let offline = Eval.holds_c plan (Run.to_abstract r) in
        if offline then viol.(i) <- viol.(i) + 1;
        if monitored then
          for e = 0 to extensions - 1 do
            let events =
              Run.linearize_random r ~seed:(Hashtbl.hash (rseed, e))
            in
            let online = Pmon.feed_events (Pmon.exact plan r) r events in
            if Option.is_some online <> offline then agree := false
          done)
      plans;
    { ma_runs = acc.ma_runs + 1; ma_viol = viol; ma_agree = !agree }
  in
  let merge x y =
    {
      ma_runs = x.ma_runs + y.ma_runs;
      ma_viol = Array.init npreds (fun i -> x.ma_viol.(i) + y.ma_viol.(i));
      ma_agree = x.ma_agree && y.ma_agree;
    }
  in
  let init = { ma_runs = 0; ma_viol = Array.make npreds 0; ma_agree = true } in
  with_pool pool (fun pool ->
      let total =
        List.fold_left
          (fun acc (nprocs, nmsgs) ->
            merge acc
              (Enumerate.fold_runs_par ~pool ~nprocs ~nmsgs ~init ~f:step
                 ~merge ()))
          init sizes
      in
      {
        m_runs = total.ma_runs;
        m_violations =
          List.mapi (fun i (name, _) -> (name, total.ma_viol.(i))) plans;
        m_agree = total.ma_agree;
      })

let count ?pool ?(sym = false) ~sizes () =
  let cstep ~mult acc r =
    {
      runs = acc.runs + mult;
      causal = (acc.causal + if Limits.is_causal r then mult else 0);
      sync = (acc.sync + if Limits.is_sync r then mult else 0);
    }
  in
  let cmerge x y =
    {
      runs = x.runs + y.runs;
      causal = x.causal + y.causal;
      sync = x.sync + y.sync;
    }
  in
  let czero = { runs = 0; causal = 0; sync = 0 } in
  (* both limit violations are monotone in the closure: a subtree where
     causality and synchrony are already broken only contributes runs *)
  let cprune =
    ( (fun a -> (not (Limits.is_causal a)) && not (Limits.is_sync a)),
      fun acc ~mult ~runs _a -> { acc with runs = acc.runs + (mult * runs) } )
  in
  with_pool pool (fun pool ->
      List.fold_left
        (fun acc (nprocs, nmsgs) ->
          let c =
            if sym then
              Enumerate.fold_abstracts_sym_par ~pool ~nprocs ~nmsgs
                ~prune:cprune ~init:czero
                ~f:(fun acc ~mult r -> cstep ~mult acc r)
                ~merge:cmerge ()
            else
              Enumerate.fold_abstracts_par ~pool ~nprocs ~nmsgs ~init:czero
                ~f:(fun acc r -> cstep ~mult:1 acc r)
                ~merge:cmerge ()
          in
          cmerge acc c)
        czero sizes)

(* ------------------------------------------------------------------ *)
(* Placement against the communication-model lattice.                  *)
(* ------------------------------------------------------------------ *)

type place = {
  pl_model : Lattice.model;
  pl_members : int;
  pl_inter : int;
  pl_model_in_spec : bool;
  pl_spec_in_model : bool;
}

type placement = {
  p_runs : int;
  p_spec : int;
  p_places : place list;
  p_sufficient : Lattice.model list;
  p_guarantees : Lattice.model list;
}

type pacc = {
  pa_runs : int;
  pa_spec : int;
  pa_members : int array;
  pa_inter : int array;
  pa_cont : bool array; (* X_M ⊆ X_B so far *)
  pa_contby : bool array; (* X_B ⊆ X_M so far *)
}

let placement ?pool ?(kmax = 3) ?(sym = false) ~sizes pred =
  let models = Array.of_list (Lattice.points ~kmax ()) in
  let nm = Array.length models in
  (* compiled before the worker shards run, as [verify] *)
  let plan = Eval.compile pred in
  let init =
    {
      pa_runs = 0;
      pa_spec = 0;
      pa_members = Array.make nm 0;
      pa_inter = Array.make nm 0;
      pa_cont = Array.make nm true;
      pa_contby = Array.make nm true;
    }
  in
  (* per-run copies keep the shard accumulators disjoint, as the
     monitor pass; everything reduces by sums and conjunctions, so the
     verdict is identical at every job count *)
  let step ~mult acc r =
    let sat = Eval.satisfies_c plan r in
    let members = Array.copy acc.pa_members
    and inter = Array.copy acc.pa_inter
    and cont = Array.copy acc.pa_cont
    and contby = Array.copy acc.pa_contby in
    for i = 0 to nm - 1 do
      let m = Lattice.is_member models.(i) r in
      if m then begin
        members.(i) <- members.(i) + mult;
        if sat then inter.(i) <- inter.(i) + mult else cont.(i) <- false
      end
      else if sat then contby.(i) <- false
    done;
    {
      pa_runs = acc.pa_runs + mult;
      pa_spec = (acc.pa_spec + if sat then mult else 0);
      pa_members = members;
      pa_inter = inter;
      pa_cont = cont;
      pa_contby = contby;
    }
  in
  let merge x y =
    {
      pa_runs = x.pa_runs + y.pa_runs;
      pa_spec = x.pa_spec + y.pa_spec;
      pa_members =
        Array.init nm (fun i -> x.pa_members.(i) + y.pa_members.(i));
      pa_inter = Array.init nm (fun i -> x.pa_inter.(i) + y.pa_inter.(i));
      pa_cont = Array.init nm (fun i -> x.pa_cont.(i) && y.pa_cont.(i));
      pa_contby = Array.init nm (fun i -> x.pa_contby.(i) && y.pa_contby.(i));
    }
  in
  (* Decided-subtree prune, per size: the spec's pattern has matched
     (Eval.holds_c is monotone, so no completion satisfies the spec) and
     every lattice point's membership is constant over the subtree —
     either statically true at this size (Async; Ksync k with k ≥ nmsgs,
     since no SCC can exceed the message count) or already violated
     (every non-membership witness is a present structure: a cycle, a
     large SCC, an overtaking pair — all monotone). Pruned runs are
     members of exactly the statically-true points, with empty spec
     intersection. *)
  let prune_for nmsgs =
    let trivially_in =
      Array.map
        (function
          | Lattice.Async -> true
          | Lattice.Ksync k -> k >= nmsgs
          | _ -> false)
        models
    in
    let decided a =
      Eval.holds_c plan a
      && Array.for_all2
           (fun triv m -> triv || not (Lattice.is_member m a))
           trivially_in models
    in
    let on_pruned acc ~mult ~runs _a =
      let members = Array.copy acc.pa_members
      and cont = Array.copy acc.pa_cont in
      for i = 0 to nm - 1 do
        if trivially_in.(i) then begin
          members.(i) <- members.(i) + (mult * runs);
          cont.(i) <- false
        end
      done;
      {
        acc with
        pa_runs = acc.pa_runs + (mult * runs);
        pa_members = members;
        pa_cont = cont;
      }
    in
    (decided, on_pruned)
  in
  with_pool pool (fun pool ->
      let total =
        List.fold_left
          (fun acc (nprocs, nmsgs) ->
            merge acc
              (if sym then
                 Enumerate.fold_abstracts_sym_par ~pool ~nprocs ~nmsgs
                   ~prune:(prune_for nmsgs) ~init
                   ~f:(fun acc ~mult r -> step ~mult acc r)
                   ~merge ()
               else
                 Enumerate.fold_abstracts_par ~pool ~nprocs ~nmsgs ~init
                   ~f:(fun acc r -> step ~mult:1 acc r)
                   ~merge ()))
          init sizes
      in
      let places =
        List.init nm (fun i ->
            {
              pl_model = models.(i);
              pl_members = total.pa_members.(i);
              pl_inter = total.pa_inter.(i);
              pl_model_in_spec = total.pa_cont.(i);
              pl_spec_in_model = total.pa_contby.(i);
            })
      in
      let chosen keep extreme =
        let set =
          List.filteri (fun i _ -> keep i) (Array.to_list models)
        in
        List.filter
          (fun m ->
            not
              (List.exists
                 (fun m' -> (not (Lattice.equal m m')) && extreme m m')
                 set))
          set
      in
      {
        p_runs = total.pa_runs;
        p_spec = total.pa_spec;
        p_places = places;
        (* strongest guarantee: maximal models whose runs all satisfy
           the spec *)
        p_sufficient =
          chosen (fun i -> total.pa_cont.(i)) (fun m m' -> Lattice.leq m m');
        (* weakest model already implied by the spec: minimal models
           containing every satisfying run *)
        p_guarantees =
          chosen
            (fun i -> total.pa_contby.(i))
            (fun m m' -> Lattice.leq m' m);
      })

let pp_placement ppf p =
  Format.fprintf ppf "universe: %d runs, |X_B| = %d@." p.p_runs p.p_spec;
  List.iter
    (fun pl ->
      Format.fprintf ppf
        "  %-8s |X_M| = %6d  |X_M ∩ X_B| = %6d  M ⊆ B:%s  B ⊆ M:%s@."
        (Lattice.to_string pl.pl_model)
        pl.pl_members pl.pl_inter
        (if pl.pl_model_in_spec then "yes" else "no ")
        (if pl.pl_spec_in_model then "yes" else "no "))
    p.p_places;
  let names ms = String.concat ", " (List.map Lattice.to_string ms) in
  Format.fprintf ppf "  strongest models inside X_B: %s@."
    (match p.p_sufficient with [] -> "(none)" | ms -> names ms);
  Format.fprintf ppf "  weakest models containing X_B: %s@."
    (names p.p_guarantees)

let pp_verdict ppf v =
  Format.fprintf ppf
    "universe: %d runs, |X_sync| = %d, |X_co| = %d@.\
     [%s] X_sync subset of X_co subset of X_async (strict)@.\
     [%s] Lemma 3.2: X_B1 = X_B2 = X_B3 on every run@.\
     [%s] Lemma 3.2: X_B2 is exactly the causally ordered runs@.\
     [%s] Lemma 3.3: the order-0 predicates hold in no run"
    v.counts.runs v.counts.sync v.counts.causal
    (if v.subset_chain then "ok" else "MISMATCH")
    (if v.lemma32_equiv then "ok" else "MISMATCH")
    (if v.lemma32_exact then "ok" else "MISMATCH")
    (if v.lemma33_unsat then "ok" else "MISMATCH")
