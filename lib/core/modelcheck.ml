open Mo_order

type counts = { runs : int; causal : int; sync : int }

type verdict = {
  counts : counts;
  subset_chain : bool;
  lemma32_equiv : bool;
  lemma32_exact : bool;
  lemma33_unsat : bool;
}

let ok v =
  v.subset_chain && v.lemma32_equiv && v.lemma32_exact && v.lemma33_unsat

let standard_sizes = [ (2, 2); (3, 2); (2, 3); (3, 3) ]

let deep_sizes = standard_sizes @ [ (4, 2); (4, 3); (3, 4); (4, 4) ]

(* one pass accumulator: counts and the pointwise lemma identities, all
   combined with sums and conjunctions — commutative and associative, so
   the sharded reduction is order-insensitive (and the pool merges in
   enumeration order anyway) *)
type acc = {
  a_runs : int;
  a_causal : int;
  a_sync : int;
  a_sync_sub : bool; (* every sync run is causal *)
  a_equiv : bool; (* B1 = B2 = B3 pointwise *)
  a_exact : bool; (* X_B2 = X_co pointwise *)
  a_unsat : bool; (* every async form holds everywhere *)
}

let acc_init =
  {
    a_runs = 0;
    a_causal = 0;
    a_sync = 0;
    a_sync_sub = true;
    a_equiv = true;
    a_exact = true;
    a_unsat = true;
  }

let acc_merge x y =
  {
    a_runs = x.a_runs + y.a_runs;
    a_causal = x.a_causal + y.a_causal;
    a_sync = x.a_sync + y.a_sync;
    a_sync_sub = x.a_sync_sub && y.a_sync_sub;
    a_equiv = x.a_equiv && y.a_equiv;
    a_exact = x.a_exact && y.a_exact;
    a_unsat = x.a_unsat && y.a_unsat;
  }

(* The lemma predicates, compiled once per process. Eagerly forced so no
   worker domain ever races on a lazy; a compiled plan is immutable and
   safe to share (see Eval). *)
type plans = {
  p_b1 : Eval.compiled;
  p_b2 : Eval.compiled;
  p_b3 : Eval.compiled;
  p_async : Eval.compiled list;
}

let plans =
  lazy
    {
      p_b1 = Eval.compile Catalog.causal_b1.Catalog.pred;
      p_b2 = Eval.compile Catalog.causal_b2.Catalog.pred;
      p_b3 = Eval.compile Catalog.causal_b3.Catalog.pred;
      p_async =
        List.map
          (fun (e : Catalog.entry) -> Eval.compile e.Catalog.pred)
          Catalog.async_forms;
    }

let step plans acc r =
  let causal = Limits.is_causal r and sync = Limits.is_sync r in
  let s2 = Eval.satisfies_c plans.p_b2 r in
  {
    a_runs = acc.a_runs + 1;
    a_causal = (acc.a_causal + if causal then 1 else 0);
    a_sync = (acc.a_sync + if sync then 1 else 0);
    a_sync_sub = acc.a_sync_sub && ((not sync) || causal);
    a_equiv =
      acc.a_equiv
      && Eval.satisfies_c plans.p_b1 r = s2
      && Eval.satisfies_c plans.p_b3 r = s2;
    a_exact = acc.a_exact && s2 = causal;
    a_unsat =
      acc.a_unsat
      && List.for_all (fun p -> Eval.satisfies_c p r) plans.p_async;
  }

let with_pool pool f =
  match pool with
  | Some p -> f p
  | None -> f (Mo_par.Pool.create ())

let verify ?pool ~sizes () =
  (* force the compiled plans on this domain before any worker shards run *)
  let plans = Lazy.force plans in
  with_pool pool (fun pool ->
      let total =
        List.fold_left
          (fun acc (nprocs, nmsgs) ->
            acc_merge acc
              (Enumerate.fold_abstracts_par ~pool ~nprocs ~nmsgs
                 ~init:acc_init ~f:(step plans) ~merge:acc_merge ()))
          acc_init sizes
      in
      {
        counts =
          { runs = total.a_runs; causal = total.a_causal; sync = total.a_sync };
        subset_chain =
          total.a_sync_sub
          && total.a_sync < total.a_causal
          && total.a_causal < total.a_runs;
        lemma32_equiv = total.a_equiv;
        lemma32_exact = total.a_exact;
        lemma33_unsat = total.a_unsat;
      })

let count ?pool ~sizes () =
  with_pool pool (fun pool ->
      List.fold_left
        (fun acc (nprocs, nmsgs) ->
          let c =
            Enumerate.fold_abstracts_par ~pool ~nprocs ~nmsgs
              ~init:{ runs = 0; causal = 0; sync = 0 }
              ~f:(fun acc r ->
                {
                  runs = acc.runs + 1;
                  causal = (acc.causal + if Limits.is_causal r then 1 else 0);
                  sync = (acc.sync + if Limits.is_sync r then 1 else 0);
                })
              ~merge:(fun x y ->
                {
                  runs = x.runs + y.runs;
                  causal = x.causal + y.causal;
                  sync = x.sync + y.sync;
                })
              ()
          in
          { runs = acc.runs + c.runs;
            causal = acc.causal + c.causal;
            sync = acc.sync + c.sync })
        { runs = 0; causal = 0; sync = 0 }
        sizes)

let pp_verdict ppf v =
  Format.fprintf ppf
    "universe: %d runs, |X_sync| = %d, |X_co| = %d@.\
     [%s] X_sync subset of X_co subset of X_async (strict)@.\
     [%s] Lemma 3.2: X_B1 = X_B2 = X_B3 on every run@.\
     [%s] Lemma 3.2: X_B2 is exactly the causally ordered runs@.\
     [%s] Lemma 3.3: the order-0 predicates hold in no run"
    v.counts.runs v.counts.sync v.counts.causal
    (if v.subset_chain then "ok" else "MISMATCH")
    (if v.lemma32_equiv then "ok" else "MISMATCH")
    (if v.lemma32_exact then "ok" else "MISMATCH")
    (if v.lemma33_unsat then "ok" else "MISMATCH")
