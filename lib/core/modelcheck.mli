(** Parallel model checking of the Lemma 3 identities over exhaustively
    enumerated universes (experiment T2, and its [--deep] extension).

    The sequential T2 harness walks every concrete run with 2–3 processes
    and 2–3 messages (2,804 of them). This module runs the same checks
    sharded over a {!Mo_par.Pool} — one task per message configuration —
    which is what makes the 4-process / 4-message universe (about 4.6
    million additional runs) tractable. All reductions are sums and
    conjunctions, so every job count produces identical results. *)

type counts = { runs : int; causal : int; sync : int }
(** [|X_async|], [|X_co|], [|X_sync|] restricted to the checked sizes. *)

type verdict = {
  counts : counts;
  subset_chain : bool;
      (** [X_sync ⊂ X_co ⊂ X_async]: pointwise containment and strictness
          of both inclusions over the checked universe. *)
  lemma32_equiv : bool;  (** B1, B2, B3 agree on every run. *)
  lemma32_exact : bool;  (** [X_B2] is exactly the causal runs. *)
  lemma33_unsat : bool;  (** every order-0 async form holds everywhere. *)
}

val ok : verdict -> bool
(** All four checks passed. *)

val standard_sizes : (int * int) list
(** [(nprocs, nmsgs)] of T2: 2–3 processes × 2–3 messages, 2,804 runs. *)

val deep_sizes : (int * int) list
(** {!standard_sizes} plus the 4-process and 4-message universes up to
    (4, 4) — the [--deep] tier, only practical under the parallel
    engine. *)

val verify : ?pool:Mo_par.Pool.t -> sizes:(int * int) list -> unit -> verdict
(** Enumerate every size and check each run against all four identities
    in one pass. [pool] defaults to a fresh pool with
    {!Mo_par.default_jobs} workers. *)

val count : ?pool:Mo_par.Pool.t -> sizes:(int * int) list -> unit -> counts
(** Just the limit-set cardinalities (skips the predicate evaluations);
    at the standard sizes this is the pinned [1424 ⊆ 1840 ⊆ 2804]. *)

val pp_verdict : Format.formatter -> verdict -> unit
