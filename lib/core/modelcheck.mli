(** Parallel model checking of the Lemma 3 identities over exhaustively
    enumerated universes (experiment T2, and its [--deep] extension).

    The sequential T2 harness walks every concrete run with 2–3 processes
    and 2–3 messages (2,804 of them). This module runs the same checks
    sharded over a {!Mo_par.Pool} — one task per message configuration —
    which is what makes the 4-process / 4-message universe (about 4.6
    million additional runs) tractable. All reductions are sums and
    conjunctions, so every job count produces identical results. *)

type counts = { runs : int; causal : int; sync : int }
(** [|X_async|], [|X_co|], [|X_sync|] restricted to the checked sizes. *)

type verdict = {
  counts : counts;
  subset_chain : bool;
      (** [X_sync ⊂ X_co ⊂ X_async]: pointwise containment and strictness
          of both inclusions over the checked universe. *)
  lemma32_equiv : bool;  (** B1, B2, B3 agree on every run. *)
  lemma32_exact : bool;  (** [X_B2] is exactly the causal runs. *)
  lemma33_unsat : bool;  (** every order-0 async form holds everywhere. *)
}

val ok : verdict -> bool
(** All four checks passed. *)

val standard_sizes : (int * int) list
(** [(nprocs, nmsgs)] of T2: 2–3 processes × 2–3 messages, 2,804 runs. *)

val deep_sizes : (int * int) list
(** {!standard_sizes} plus the 4-process and 4-message universes up to
    (4, 4) — the [--deep] tier, only practical under the parallel
    engine. *)

val verify : ?pool:Mo_par.Pool.t -> sizes:(int * int) list -> unit -> verdict
(** Enumerate every size and check each run against all four identities
    in one pass. [pool] defaults to a fresh pool with
    {!Mo_par.default_jobs} workers. *)

type monitor_report = {
  m_runs : int;  (** concrete runs checked *)
  m_violations : (string * int) list;
      (** per predicate ([fifo], [causal_b2], [crown2]): offline-violating
          runs — extension-independent, so pinnable *)
  m_agree : bool;
      (** every sampled linear extension of every run produced the same
          verdict online ({!Pmon}) as the offline evaluator *)
}

val verify_monitor :
  ?pool:Mo_par.Pool.t ->
  ?extensions:int ->
  ?seed:int ->
  ?sample:int ->
  sizes:(int * int) list ->
  unit ->
  monitor_report
(** The online-vs-offline differential pass behind
    test/test_monitor.ml: every {e concrete} run of [sizes] is streamed
    through a compiled monitor ({!Pmon.exact}, so no retirement) along
    [extensions] (default 3) random linear extensions, and the sticky
    verdict is compared with {!Eval.holds} on the completed run.
    Extension seeds are derived from [seed] and the run content, never
    from sharding, so the result is identical at every job count.
    [sample] (default 1 = everything) streams only runs whose content
    hash is divisible by it — the nightly deep-tier mode, where the
    offline counts stay exact but only a deterministic ~[1/sample] of
    the universe is monitored. *)

val count : ?pool:Mo_par.Pool.t -> sizes:(int * int) list -> unit -> counts
(** Just the limit-set cardinalities (skips the predicate evaluations);
    at the standard sizes this is the pinned [1424 ⊆ 1840 ⊆ 2804]. *)

val pp_verdict : Format.formatter -> verdict -> unit
