(** Parallel model checking of the Lemma 3 identities over exhaustively
    enumerated universes (experiment T2, and its [--deep] extension).

    The sequential T2 harness walks every concrete run with 2–3 processes
    and 2–3 messages (2,804 of them). This module runs the same checks
    sharded over a {!Mo_par.Pool} — one task per message configuration —
    which is what makes the 4-process / 4-message universe (about 4.6
    million additional runs) tractable. All reductions are sums and
    conjunctions, so every job count produces identical results. *)

type counts = { runs : int; causal : int; sync : int }
(** [|X_async|], [|X_co|], [|X_sync|] restricted to the checked sizes. *)

type verdict = {
  counts : counts;
  subset_chain : bool;
      (** [X_sync ⊂ X_co ⊂ X_async]: pointwise containment and strictness
          of both inclusions over the checked universe. *)
  lemma32_equiv : bool;  (** B1, B2, B3 agree on every run. *)
  lemma32_exact : bool;  (** [X_B2] is exactly the causal runs. *)
  lemma33_unsat : bool;  (** every order-0 async form holds everywhere. *)
}

val ok : verdict -> bool
(** All four checks passed. *)

val standard_sizes : (int * int) list
(** [(nprocs, nmsgs)] of T2: 2–3 processes × 2–3 messages, 2,804 runs. *)

val deep_sizes : (int * int) list
(** {!standard_sizes} plus the 4-process and 4-message universes up to
    (4, 4) — the [--deep] tier, only practical under the parallel
    engine. *)

val universe_sizes : (int * int) list
(** {!standard_sizes} plus (4,2), (4,3) and (3,4) — the 125,768-run
    tier used by the lattice and monitor differential suites: large
    enough to separate every lattice point, small enough for tier-1
    tests. *)

val vast_sizes : (int * int) list
(** {!deep_sizes} plus (5,2), (5,3), (5,4) and (4,5) — 77,830,564
    orbit-expanded runs, ~83x the deep tier. Only practical with
    [~sym:true], which enumerates the tier's ~31,700 canonical orbit
    representatives and expands counts exactly (bench B18). *)

val verify :
  ?pool:Mo_par.Pool.t ->
  ?sym:bool ->
  sizes:(int * int) list ->
  unit ->
  verdict
(** Enumerate every size and check each run against all four identities
    in one pass. [pool] defaults to a fresh pool with
    {!Mo_par.default_jobs} workers. [sym] (default false) switches to
    the symmetry-quotiented kernel ({!Mo_order.Enumerate.fold_abstracts_sym_par}):
    one canonical representative per orbit, counts expanded by exact
    orbit sizes, decided subtrees pruned — the verdict is identical
    (verdicts are orbit-invariant; checked exhaustively by
    test/test_sym.ml), the wall time is not. *)

type monitor_report = {
  m_runs : int;  (** concrete runs checked *)
  m_violations : (string * int) list;
      (** per predicate ([fifo], [causal_b2], [crown2]): offline-violating
          runs — extension-independent, so pinnable *)
  m_agree : bool;
      (** every sampled linear extension of every run produced the same
          verdict online ({!Pmon}) as the offline evaluator *)
}

val verify_monitor :
  ?pool:Mo_par.Pool.t ->
  ?extensions:int ->
  ?seed:int ->
  ?sample:int ->
  sizes:(int * int) list ->
  unit ->
  monitor_report
(** The online-vs-offline differential pass behind
    test/test_monitor.ml: every {e concrete} run of [sizes] is streamed
    through a compiled monitor ({!Pmon.exact}, so no retirement) along
    [extensions] (default 3) random linear extensions, and the sticky
    verdict is compared with {!Eval.holds} on the completed run.
    Extension seeds are derived from [seed] and the run content, never
    from sharding, so the result is identical at every job count.
    [sample] (default 1 = everything) streams only runs whose content
    hash is divisible by it — the nightly deep-tier mode, where the
    offline counts stay exact but only a deterministic ~[1/sample] of
    the universe is monitored. *)

(** {1 Lattice placement}

    Locating a specification's run set against every point of the
    communication-model lattice ({!Mo_order.Lattice}): for each model
    [M], the cardinalities [|X_M|] and [|X_M ∩ X_B|] over the
    enumerated universe plus the two empirical inclusions [X_M ⊆ X_B]
    (running under [M] suffices for the spec) and [X_B ⊆ X_M] (the spec
    already forces [M]). All reductions are sums and conjunctions, so
    the verdict is byte-identical at every job count. *)

type place = {
  pl_model : Mo_order.Lattice.model;
  pl_members : int;  (** [|X_M|] over the checked universe *)
  pl_inter : int;  (** [|X_M ∩ X_B|] *)
  pl_model_in_spec : bool;  (** [X_M ⊆ X_B] pointwise *)
  pl_spec_in_model : bool;  (** [X_B ⊆ X_M] pointwise *)
}

type placement = {
  p_runs : int;
  p_spec : int;  (** [|X_B|] *)
  p_places : place list;  (** one per {!Mo_order.Lattice.points}, in order *)
  p_sufficient : Mo_order.Lattice.model list;
      (** the {e maximal} models with [X_M ⊆ X_B]: the strongest
          communication guarantees under which the spec always holds
          (empty when even RSC violates it). *)
  p_guarantees : Mo_order.Lattice.model list;
      (** the {e minimal} models with [X_B ⊆ X_M]: the weakest lattice
          points the spec forces (never empty — [Async] is the top). *)
}

val placement :
  ?pool:Mo_par.Pool.t ->
  ?kmax:int ->
  ?sym:bool ->
  sizes:(int * int) list ->
  Forbidden.t ->
  placement
(** One enumeration pass over [sizes], evaluating the compiled
    predicate and all lattice memberships per run. [kmax] (default 3)
    bounds the k-synchronous points swept. [sym] (default false) runs
    the quotiented kernel: member counts become exact orbit sums
    (lattice membership is orbit-invariant), byte-identical to the
    concrete pass at every job count. *)

val pp_placement : Format.formatter -> placement -> unit

val count :
  ?pool:Mo_par.Pool.t -> ?sym:bool -> sizes:(int * int) list -> unit -> counts
(** Just the limit-set cardinalities (skips the predicate evaluations);
    at the standard sizes this is the pinned [1424 ⊆ 1840 ⊆ 2804].
    [sym] as in {!verify}. *)

val pp_verdict : Format.formatter -> verdict -> unit
