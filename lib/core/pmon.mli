(** Compiled predicate monitors: one forbidden predicate, streamed.

    A [Pmon.t] couples the predicate-agnostic frontier automaton
    ({!Mo_order.Monitor}) with a compiled matching plan ({!Eval.Masked})
    and evaluates the predicate over the must-happened-before relation
    after every event. The first match is final — once [B] holds on the
    must-relation it holds in every completion, so the verdict is sticky
    and reported with the index of the event that made it unavoidable.

    Detection is {e earliest among relation-level monitors}: a violation
    fires at the first prefix whose must-relation satisfies [B], the
    same prefix at which the offline evaluator run over the must-closure
    would first say so (the oracle of test/test_monitor.ml). It is never
    speculative — no verdict depends on events that have not happened.
    See DESIGN.md §3h for the gap between this and full
    information-theoretic earliest detection (which is not computable in
    bounded memory).

    Monitors are single-threaded values; shard by ordering key and give
    each key its own monitor (see [Mo_workload.Stream]). The [compiled]
    plan is immutable and safely shared across all of them. *)

type t

type verdict = {
  at : int;
      (** 0-based index of the event at which the match became
          unavoidable *)
  witness : int array;  (** variable index → message id *)
}

val create :
  ?window:int -> ?distinct:bool -> nprocs:int -> Eval.compiled -> t
(** [window] (default 32) bounds resident state as in
    {!Mo_order.Monitor.create}; [distinct] defaults to [true] as the
    offline evaluators. *)

val exact : ?distinct:bool -> Eval.compiled -> Mo_order.Run.t -> t
(** A monitor sized for [run] so that no slot is ever retired: verdicts
    are exactly the offline ones on every linear extension of [run].
    Runs beyond {!Mo_order.Monitor.max_window} messages get the wide
    (Bitset) representation.
    @raise Invalid_argument when the run exceeds
    {!Mo_order.Monitor.max_wide_window} messages. *)

val send :
  t -> msg:int -> src:int -> dst:int -> ?color:int -> unit -> verdict option
(** Feed [msg.s]; returns the (sticky) verdict. Raises as
    {!Mo_order.Monitor.send}. *)

val deliver : t -> msg:int -> verdict option
(** Feed [msg.r]; returns the (sticky) verdict. Raises as
    {!Mo_order.Monitor.deliver}. *)

val verdict : t -> verdict option

val monitor : t -> Mo_order.Monitor.t
(** The underlying frontier, for accounting ([events], [pending],
    [frontier_bytes]). *)

val feed_events :
  t -> Mo_order.Run.t -> Mo_order.Event.t list -> verdict option
(** Feed a linear extension of [run] (message attributes are read from
    the run), stopping the predicate search — but not the stream — at
    the first violation. *)

val feed_run : ?distinct:bool -> Eval.compiled -> Mo_order.Run.t -> verdict option
(** [feed_events] of {!exact} over {!Mo_order.Run.linearize}. *)
