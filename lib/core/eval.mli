(** Evaluating forbidden predicates over runs.

    [B] {e holds} in a run when some instantiation of its variables by
    messages of the run satisfies every conjunct and guard; the run then
    violates the specification [X_B].

    Instantiations are {e injective} by default: distinct variables denote
    distinct messages. The paper quantifies plainly over [M], but its
    predicates only read correctly under distinctness — the SYNC crown
    [x1.s ▷ x2.r ∧ x2.s ▷ x1.r] would be "satisfied" by [x1 = x2 = x]
    through the tautology [x.s ▷ x.r], making [X_sync] empty. Pass
    [~distinct:false] to get the plain reading.

    Two matchers are provided. The {e compiled} evaluator (the default
    behind {!find_match}/{!holds}/{!satisfies}) stages the predicate once
    into a bit-matrix matching plan over {!Mo_order.Run.Abstract.relations}:
    candidate messages for each variable are narrowed by row intersections,
    with most-constrained-variable-first ordering for the boolean queries.
    The original backtracking interpreter is kept verbatim as the
    differential reference ([*_ref]); the two agree byte-for-byte (see
    test/test_eval_fast.ml). *)

val find_match :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> int array option
(** An assignment [a] (variable index → message index) making [B] true, if
    any. The lexicographically least one, as the reference returns. *)

val find_matches :
  ?distinct:bool ->
  ?limit:int ->
  Forbidden.t ->
  Mo_order.Run.Abstract.t ->
  int array list
(** Up to [limit] (default 1000) distinct assignments, in lexicographic
    order. *)

val holds : ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> bool
(** [B] is true somewhere in the run. *)

val satisfies :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> bool
(** The run belongs to [X_B]: no instantiation satisfies [B]. *)

val check_assignment :
  Forbidden.t -> Mo_order.Run.Abstract.t -> int array -> bool
(** Does this specific assignment satisfy all conjuncts and guards? *)

(** {1 Compile-once fast path}

    Callers evaluating one predicate against many runs (the model checker,
    the service layer) compile once and reuse the plan. A [compiled] value
    is immutable and safe to share across domains. *)

type compiled

val compile : Forbidden.t -> compiled

val predicate : compiled -> Forbidden.t

val find_match_c :
  ?distinct:bool -> compiled -> Mo_order.Run.Abstract.t -> int array option

val find_matches_c :
  ?distinct:bool ->
  ?limit:int ->
  compiled ->
  Mo_order.Run.Abstract.t ->
  int array list

val holds_c : ?distinct:bool -> compiled -> Mo_order.Run.Abstract.t -> bool

val satisfies_c : ?distinct:bool -> compiled -> Mo_order.Run.Abstract.t -> bool

(** {1 Matching over raw mask rows}

    The compiled plans evaluated directly against relation rows owned by
    someone else — in practice the streaming frontier of
    {!Mo_order.Monitor}, whose [masks]/[live]/attribute arrays have
    exactly this shape. No run value, no allocation per query: a
    [matcher] carries reusable scratch, so one per monitor (they are
    single-threaded, like the monitor itself). *)

module Masked : sig
  type matcher

  val make : ?distinct:bool -> compiled -> matcher
  (** [distinct] defaults to [true], as the predicate evaluators. *)

  val holds :
    matcher ->
    n:int ->
    live:int ->
    masks:int array ->
    src:int array ->
    dst:int array ->
    color:int array ->
    bool
  (** Is there a satisfying assignment over the live slots? [n] is the
      row stride ({!Mo_order.Monitor.window}), [masks] the eight
      sections in {!Mo_order.Run.Abstract.masks} order, [src]/[dst]/
      [color] per-slot attributes with [-1] for unknown (an unknown
      attribute satisfies no guard). *)

  val find :
    matcher ->
    n:int ->
    live:int ->
    masks:int array ->
    src:int array ->
    dst:int array ->
    color:int array ->
    int array option
  (** The first satisfying assignment (variable index → slot index) in
      the fast plan's order, if any. *)

  val holds_wide :
    matcher ->
    n:int ->
    live:Mo_order.Bitset.t ->
    rel:Mo_order.Bitset.t array ->
    src:int array ->
    dst:int array ->
    color:int array ->
    bool
  (** {!holds} over the Bitset rows of a {e wide} monitor
      ({!Mo_order.Monitor.wide_rel}): same plan, same candidate
      filtering, set operations instead of word ops. Allocates scratch
      per call. *)

  val find_wide :
    matcher ->
    n:int ->
    live:Mo_order.Bitset.t ->
    rel:Mo_order.Bitset.t array ->
    src:int array ->
    dst:int array ->
    color:int array ->
    int array option
end

(** {1 Reference interpreter}

    The pre-compilation backtracking matcher, kept as the differential
    baseline and for bench B14's "before" arm. *)

val find_match_ref :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> int array option

val find_matches_ref :
  ?distinct:bool ->
  ?limit:int ->
  Forbidden.t ->
  Mo_order.Run.Abstract.t ->
  int array list

val holds_ref :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> bool

val satisfies_ref :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> bool
