(** Exhaustive enumeration of small concrete runs.

    Used as a model checker: the theorems of the paper quantify over all
    runs, and for small universes (≤ 3 processes, ≤ 3 messages) we can check
    them against {e every} run rather than samples. A concrete run is
    determined by the per-process orderings of its events, subject to global
    acyclicity; enumeration is an in-place backtracking search over those
    orderings that maintains {e one} incremental happened-before closure per
    configuration ({!Order_builder}): placing an event pushes its
    program-order edge, backtracking pops it, and a placement that would
    close a cycle is pruned immediately. Runs sharing an enumeration prefix
    share the closure work for that prefix. *)

val permutations : 'a list -> 'a list list

val runs : nprocs:int -> msgs:(int * int) array -> Run.t list
(** All complete runs over exactly the given message set. Two runs are
    distinct iff some process executes its events in a different order. *)

val iter_runs : nprocs:int -> msgs:(int * int) array -> (Run.t -> unit) -> unit
(** Streaming form of {!runs}: the callback sees each run in enumeration
    order and no list is built. *)

val fold_runs :
  nprocs:int ->
  msgs:(int * int) array ->
  init:'acc ->
  f:('acc -> Run.t -> 'acc) ->
  'acc
(** Sequential fold over {!runs} in enumeration order, streaming. *)

val count_runs : nprocs:int -> msgs:(int * int) array -> int
(** [List.length (runs ~nprocs ~msgs)], but counted at the kernel's leaves:
    no run value, poset snapshot, or list is ever built. *)

val fold_abstracts :
  nprocs:int ->
  msgs:(int * int) array ->
  init:'acc ->
  f:('acc -> Run.Abstract.t -> 'acc) ->
  'acc
(** Like {!fold_runs} composed with {!Run.to_abstract}, but on the fast
    path: each abstract run is built directly from the kernel's live
    closure as packed relation masks ({!Run.Abstract.of_masks}) — no poset
    snapshot and no concrete run — and all runs of the configuration share
    one attrs array. Same enumeration order as {!fold_runs}. *)

val runs_ref : nprocs:int -> msgs:(int * int) array -> Run.t list
(** The pre-kernel reference enumerator (materialized permutations, product,
    from-scratch closure per candidate). Same run {e set} as {!runs} but in
    a different order; kept as the differential baseline and for bench B14's
    "before" arm. *)

val configs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> (int * int) array list
(** All assignments of sources and destinations to [nmsgs] messages.
    Self-addressed messages (src = dst) are excluded unless
    [allow_self:true]: the paper's message sets [M_ij] implicitly connect
    distinct processes, and its Lemma 3 equivalences fail when a process
    may message itself (see DESIGN.md, "Model subtleties"). *)

val all_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.t list
(** [runs] over every configuration of [configs]. Exponential; intended for
    [nprocs ≤ 3], [nmsgs ≤ 3]. *)

val abstract_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.Abstract.t list
(** The abstract projections of {!all_runs} (duplicates not removed). *)

val fold_runs_par :
  pool:Mo_par.Pool.t ->
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  init:'acc ->
  f:('acc -> Run.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** Parallel fold over every run of {!all_runs}, sharded by message
    configuration (the enumeration prefix). Each shard computes
    [fold_runs ~init ~f] over its configuration's runs in enumeration
    order; shard accumulators are then combined with [merge] in
    configuration order, giving
    [fold_left merge init [acc_0; acc_1; …]]. The result is independent
    of the pool's job count — identical to a sequential evaluation — and
    the universe is streamed one run at a time, so memory stays flat even
    at sizes where {!all_runs} would not fit. *)

val fold_abstracts_par :
  pool:Mo_par.Pool.t ->
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  init:'acc ->
  f:('acc -> Run.Abstract.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** {!fold_runs_par} with {!fold_abstracts} at the leaves: the abstract
    fast path, sharded and merged identically. *)
