(** Exhaustive enumeration of small concrete runs.

    Used as a model checker: the theorems of the paper quantify over all
    runs, and for small universes (≤ 3 processes, ≤ 3 messages) we can check
    them against {e every} run rather than samples. A concrete run is
    determined by the per-process orderings of its events, subject to global
    acyclicity; enumeration is an in-place backtracking search over those
    orderings that maintains {e one} incremental happened-before closure per
    configuration ({!Order_builder}): placing an event pushes its
    program-order edge, backtracking pops it, and a placement that would
    close a cycle is pruned immediately. Runs sharing an enumeration prefix
    share the closure work for that prefix. *)

val permutations : 'a list -> 'a list list

val runs : nprocs:int -> msgs:(int * int) array -> Run.t list
(** All complete runs over exactly the given message set. Two runs are
    distinct iff some process executes its events in a different order. *)

val iter_runs : nprocs:int -> msgs:(int * int) array -> (Run.t -> unit) -> unit
(** Streaming form of {!runs}: the callback sees each run in enumeration
    order and no list is built. *)

val fold_runs :
  nprocs:int ->
  msgs:(int * int) array ->
  init:'acc ->
  f:('acc -> Run.t -> 'acc) ->
  'acc
(** Sequential fold over {!runs} in enumeration order, streaming. *)

val count_runs : nprocs:int -> msgs:(int * int) array -> int
(** [List.length (runs ~nprocs ~msgs)], but counted at the kernel's leaves:
    no run value, poset snapshot, or list is ever built. *)

val fold_abstracts :
  nprocs:int ->
  msgs:(int * int) array ->
  init:'acc ->
  f:('acc -> Run.Abstract.t -> 'acc) ->
  'acc
(** Like {!fold_runs} composed with {!Run.to_abstract}, but on the fast
    path: each abstract run is built directly from the kernel's live
    closure as packed relation masks ({!Run.Abstract.of_masks}) — no poset
    snapshot and no concrete run — and all runs of the configuration share
    one attrs array. Same enumeration order as {!fold_runs}. *)

val runs_ref : nprocs:int -> msgs:(int * int) array -> Run.t list
(** The pre-kernel reference enumerator (materialized permutations, product,
    from-scratch closure per candidate). Same run {e set} as {!runs} but in
    a different order; kept as the differential baseline and for bench B14's
    "before" arm. *)

val configs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> (int * int) array list
(** All assignments of sources and destinations to [nmsgs] messages.
    Self-addressed messages (src = dst) are excluded unless
    [allow_self:true]: the paper's message sets [M_ij] implicitly connect
    distinct processes, and its Lemma 3 equivalences fail when a process
    may message itself (see DESIGN.md, "Model subtleties"). *)

val all_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.t list
(** [runs] over every configuration of [configs]. Exponential; intended for
    [nprocs ≤ 3], [nmsgs ≤ 3]. *)

val abstract_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.Abstract.t list
(** The abstract projections of {!all_runs} (duplicates not removed). *)

val fold_runs_par :
  pool:Mo_par.Pool.t ->
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  init:'acc ->
  f:('acc -> Run.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** Parallel fold over every run of {!all_runs}, sharded by message
    configuration (the enumeration prefix). Each shard computes
    [fold_runs ~init ~f] over its configuration's runs in enumeration
    order; shard accumulators are then combined with [merge] in
    configuration order, giving
    [fold_left merge init [acc_0; acc_1; …]]. The result is independent
    of the pool's job count — identical to a sequential evaluation — and
    the universe is streamed one run at a time, so memory stays flat even
    at sizes where {!all_runs} would not fit. *)

val fold_abstracts_par :
  pool:Mo_par.Pool.t ->
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  init:'acc ->
  f:('acc -> Run.Abstract.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** {!fold_runs_par} with {!fold_abstracts} at the leaves: the abstract
    fast path, sharded and merged identically. *)

(** {2 Symmetry quotients}

    Classification verdicts are invariant under process renaming (every
    predicate guard is an src/dst equality test; lattice membership and
    the causal/sync limits are structural) and under message relabeling
    (quantifiers range over message tuples; attrs travel with the
    relabeling). The entry points below exploit both: they enumerate one
    canonical representative per orbit and report exact orbit sizes, so
    orbit-expanded sums equal the unquotiented enumeration's — checked
    exhaustively by [test/test_sym.ml]. See DESIGN.md §3j. *)

val sym_mult : msgs:(int * int) array -> int
(** Size of the σ-orbit of any run of [msgs]: the product of [|c|!] over
    the interchangeability classes [c] (messages with identical
    (src, dst)). The σ-action — permuting messages within a class — is
    free on runs, so every orbit has exactly this many runs and exactly
    one canonical representative. *)

val configs_quotient :
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  unit ->
  ((int * int) array * int) list
(** {!configs} quotiented by process renaming: one lex-least
    representative per orbit, paired with the orbit's size
    (orbit-stabilizer: [nprocs! / |Stab|], obtained by direct counting).
    Multiplicity-expanded counts equal the unquotiented list's:
    [Σ mult = length (configs ())], and every representative is a member
    of [configs ()]. First-seen order, deterministic. *)

val configs_sym :
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  unit ->
  ((int * int) array * int) list
(** {!configs} quotiented by process renaming {e and} message reorder:
    one lex-least sorted representative per orbit. The multiplicity is
    the number of ordered configs in the orbit; every config in an orbit
    has an isomorphic run set, so
    [Σ (mult × count_runs rep) = Σ count_runs] over {!configs}. This is
    the sharding domain of {!fold_abstracts_sym_par}. *)

val count_runs_sym : nprocs:int -> msgs:(int * int) array -> int
(** Equals {!count_runs}, computed as [sym_mult × canonical count] with
    the canonical count memoized on packed closure signatures — the whole
    configuration collapses into boundary-count lookups and no leaf is
    enumerated. *)

val fold_abstracts_sym :
  nprocs:int ->
  msgs:(int * int) array ->
  ?prune:
    ((Run.Abstract.t -> bool)
    * ('acc -> runs:int -> Run.Abstract.t -> 'acc)) ->
  init:'acc ->
  f:('acc -> Run.Abstract.t -> 'acc) ->
  unit ->
  'acc
(** Fold over the canonical σ-representative runs of one configuration
    (each stands for {!sym_mult} concrete runs, all with the same
    verdicts). [prune = (decided, on_pruned)] enables decided-subtree
    pruning: at each process boundary [decided] sees the {e partial}
    closure's abstract projection, and when it answers true the subtree
    collapses into one [on_pruned ~runs:n] call, [n] counted via the
    memoized signature table instead of enumerated. [decided] {b must be
    monotone}: the closure only grows along a branch, so it may only
    test for the {e presence} of structure (a forbidden pattern already
    matched, a violation already witnessed) — never its absence. *)

val fold_abstracts_sym_par :
  pool:Mo_par.Pool.t ->
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  ?prune:
    ((Run.Abstract.t -> bool)
    * ('acc -> mult:int -> runs:int -> Run.Abstract.t -> 'acc)) ->
  init:'acc ->
  f:('acc -> mult:int -> Run.Abstract.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** Parallel quotiented fold over the whole universe, sharded by
    {!configs_sym} representative (the quotiented enumeration prefix)
    and merged in representative order — byte-identical at every job
    count. Each canonical leaf or pruned subtree arrives with
    [mult = config orbit size × sym_mult]: its verdict stands for
    exactly [mult] (resp. [mult × runs]) concrete runs of the
    unquotiented universe. *)
