(** Exhaustive enumeration of small concrete runs.

    Used as a model checker: the theorems of the paper quantify over all
    runs, and for small universes (≤ 3 processes, ≤ 3 messages) we can check
    them against {e every} run rather than samples. A concrete run is
    determined by the per-process orderings of its events, subject to global
    acyclicity, so enumeration is a filtered product of permutations. *)

val permutations : 'a list -> 'a list list

val runs : nprocs:int -> msgs:(int * int) array -> Run.t list
(** All complete runs over exactly the given message set. Two runs are
    distinct iff some process executes its events in a different order. *)

val count_runs : nprocs:int -> msgs:(int * int) array -> int

val configs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> (int * int) array list
(** All assignments of sources and destinations to [nmsgs] messages.
    Self-addressed messages (src = dst) are excluded unless
    [allow_self:true]: the paper's message sets [M_ij] implicitly connect
    distinct processes, and its Lemma 3 equivalences fail when a process
    may message itself (see DESIGN.md, "Model subtleties"). *)

val all_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.t list
(** [runs] over every configuration of [configs]. Exponential; intended for
    [nprocs ≤ 3], [nmsgs ≤ 3]. *)

val abstract_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.Abstract.t list
(** The abstract projections of {!all_runs} (duplicates not removed). *)

val fold_runs_par :
  pool:Mo_par.Pool.t ->
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  init:'acc ->
  f:('acc -> Run.t -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc
(** Parallel fold over every run of {!all_runs}, sharded by message
    configuration (the enumeration prefix). Each shard computes
    [List.fold_left f init] over its configuration's runs in enumeration
    order; shard accumulators are then combined with [merge] in
    configuration order, giving
    [fold_left merge init [acc_0; acc_1; …]]. The result is independent
    of the pool's job count — identical to a sequential evaluation — and
    the universe is streamed one configuration at a time, so memory stays
    flat even at sizes where {!all_runs} would not fit. *)
