type t = {
  n : int;
  succ : int list array; (* deduplicated generating edges *)
  reach : Bitset.t array; (* reach.(h) = { g | h ▷ g }, strict *)
}

let size t = t.n

(* Kahn's algorithm over the generators; detects cycles and yields a
   topological order used to fill the reachability rows bottom-up. *)
let topo_of_succ n succ =
  let indeg = Array.make n 0 in
  Array.iter (fun gs -> List.iter (fun g -> indeg.(g) <- indeg.(g) + 1) gs) succ;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    List.iter
      (fun g ->
        indeg.(g) <- indeg.(g) - 1;
        if indeg.(g) = 0 then Queue.add g queue)
      succ.(v)
  done;
  if !seen = n then Some (List.rev !order) else None

let dedup_succ n edges =
  let succ = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (h, g) ->
      if h < 0 || h >= n || g < 0 || g >= n then
        invalid_arg "Poset.of_edges: vertex out of range";
      if not (Hashtbl.mem seen (h, g)) then begin
        Hashtbl.add seen (h, g) ();
        succ.(h) <- g :: succ.(h)
      end)
    edges;
  succ

let of_edges n edges =
  if n < 0 then invalid_arg "Poset.of_edges: negative size";
  let succ = dedup_succ n edges in
  match topo_of_succ n succ with
  | None -> None
  | Some order ->
      let reach = Array.init n (fun _ -> Bitset.create n) in
      (* process in reverse topological order so successors are complete *)
      List.iter
        (fun h ->
          List.iter
            (fun g ->
              Bitset.add reach.(h) g;
              Bitset.union_into ~dst:reach.(h) reach.(g))
            succ.(h))
        (List.rev order);
      Some { n; succ; reach }

let of_closure_unchecked ~n ~succ ~reach =
  if n < 0 then invalid_arg "Poset.of_closure_unchecked: negative size";
  if Array.length succ <> n || Array.length reach <> n then
    invalid_arg "Poset.of_closure_unchecked: array length mismatch";
  { n; succ; reach }

let of_edges_exn n edges =
  match of_edges n edges with
  | Some t -> t
  | None -> invalid_arg "Poset.of_edges_exn: edges contain a cycle"

let empty n = of_edges_exn n []

let generators t =
  Array.to_list t.succ
  |> List.mapi (fun h gs -> List.map (fun g -> (h, g)) gs)
  |> List.concat

let lt t h g =
  if h < 0 || h >= t.n || g < 0 || g >= t.n then
    invalid_arg "Poset.lt: vertex out of range";
  Bitset.mem t.reach.(h) g

let le t h g = h = g || lt t h g

let concurrent t h g = h <> g && (not (lt t h g)) && not (lt t g h)

let comparable t h g = lt t h g || lt t g h

let down_set t g =
  let s = Bitset.create t.n in
  for h = 0 to t.n - 1 do
    if lt t h g then Bitset.add s h
  done;
  s

let up_set t h = Bitset.copy t.reach.(h)

let iter_above t h f =
  if h < 0 || h >= t.n then invalid_arg "Poset.iter_above: vertex out of range";
  Bitset.iter f t.reach.(h)

let topo_sort t =
  match topo_of_succ t.n t.succ with
  | Some o -> o
  | None -> assert false (* construction guarantees acyclicity *)

let linear_extensions ?limit t =
  let limit = Option.value limit ~default:max_int in
  let indeg = Array.make t.n 0 in
  Array.iter
    (fun gs -> List.iter (fun g -> indeg.(g) <- indeg.(g) + 1) gs)
    t.succ;
  let results = ref [] in
  let count = ref 0 in
  let prefix = ref [] in
  let rec go remaining =
    if !count >= limit then ()
    else if remaining = 0 then begin
      incr count;
      results := List.rev !prefix :: !results
    end
    else
      for v = 0 to t.n - 1 do
        if indeg.(v) = 0 then begin
          indeg.(v) <- -1;
          List.iter (fun g -> indeg.(g) <- indeg.(g) - 1) t.succ.(v);
          prefix := v :: !prefix;
          go (remaining - 1);
          prefix := List.tl !prefix;
          List.iter (fun g -> indeg.(g) <- indeg.(g) + 1) t.succ.(v);
          indeg.(v) <- 0
        end
      done
  in
  go t.n;
  List.rev !results

(* Same backtracking scheme as [linear_extensions], but only the counter is
   kept — no prefix list, no materialized results. *)
let count_linear_extensions ?limit t =
  let limit = Option.value limit ~default:max_int in
  let indeg = Array.make t.n 0 in
  Array.iter
    (fun gs -> List.iter (fun g -> indeg.(g) <- indeg.(g) + 1) gs)
    t.succ;
  let count = ref 0 in
  let rec go remaining =
    if !count >= limit then ()
    else if remaining = 0 then incr count
    else
      for v = 0 to t.n - 1 do
        if indeg.(v) = 0 then begin
          indeg.(v) <- -1;
          List.iter (fun g -> indeg.(g) <- indeg.(g) - 1) t.succ.(v);
          go (remaining - 1);
          List.iter (fun g -> indeg.(g) <- indeg.(g) + 1) t.succ.(v);
          indeg.(v) <- 0
        end
      done
  in
  go t.n;
  !count

let covers t =
  let acc = ref [] in
  for h = 0 to t.n - 1 do
    Bitset.iter
      (fun g ->
        let between = ref false in
        Bitset.iter (fun k -> if lt t k g then between := true) t.reach.(h);
        if not !between then acc := (h, g) :: !acc)
      t.reach.(h)
  done;
  List.rev !acc

let minimal_elements t =
  let has_pred = Array.make t.n false in
  for h = 0 to t.n - 1 do
    Bitset.iter (fun g -> has_pred.(g) <- true) t.reach.(h)
  done;
  List.filter (fun v -> not has_pred.(v)) (List.init t.n Fun.id)

let maximal_elements t =
  List.filter
    (fun v -> Bitset.is_empty t.reach.(v))
    (List.init t.n Fun.id)

let restrict t keep =
  let keep_arr = Array.of_list keep in
  let m = Array.length keep_arr in
  let index = Hashtbl.create m in
  Array.iteri (fun i v -> Hashtbl.replace index v i) keep_arr;
  let edges = ref [] in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j && lt t keep_arr.(i) keep_arr.(j) then
        edges := (i, j) :: !edges
    done
  done;
  match of_edges m !edges with
  | Some p -> (p, keep_arr)
  | None -> assert false (* restriction of a partial order is one *)

let add_edges t edges = of_edges t.n (generators t @ edges)

let relation_equal a b =
  a.n = b.n
  && Array.for_all2 (fun x y -> Bitset.equal x y) a.reach b.reach

let relation_subset a b =
  a.n = b.n
  && Array.for_all2 (fun x y -> Bitset.subset x y) a.reach b.reach

let is_total t =
  let ok = ref true in
  for h = 0 to t.n - 1 do
    for g = h + 1 to t.n - 1 do
      if not (comparable t h g) then ok := false
    done
  done;
  !ok

let pairs t =
  let acc = ref [] in
  for h = t.n - 1 downto 0 do
    Bitset.iter (fun g -> acc := (h, g) :: !acc) t.reach.(h)
  done;
  (* note: per-row order preserved; overall order unspecified *)
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>poset(%d):" t.n;
  List.iter (fun (h, g) -> Format.fprintf ppf "@ %d -> %d" h g) (covers t);
  Format.fprintf ppf "@]"
