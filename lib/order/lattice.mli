(** The communication-model lattice: rendez-vous → asynchronous.

    The paper characterizes implementability against three limit sets
    [X_sync ⊆ X_co ⊆ X_async] ({!Limits}). Di Giusto, Ferré, Laversa and
    Lozes ("A partial order view of message-passing communication
    models") show these are three points of a richer lattice of
    communication models, each definable as a partial-order membership
    predicate on abstract runs:

    - [Rsc] — realizable with synchronous communication (rendez-vous):
      the message graph is acyclic, exactly the paper's [X_sync].
    - [Ksync k] — k-synchronous: every strongly connected component of
      the message graph spans at most [k] messages (a run is realizable
      with channel capacity [k], exchanging at most [k] messages per
      synchronous phase). [Ksync 1] is order-equal to [Rsc], and the
      chain [Ksync 1 ⊆ Ksync 2 ⊆ …] converges to [Async].
    - [Fifo_nn] — one global FIFO queue shared by all processes: the
      message digraph restricted to the [ss ∪ rs ∪ rr] edges is acyclic
      (enqueue order, dequeue order, and enqueue-after-dequeue order can
      be realized by a single queue).
    - [Causal] — causally ordered delivery, the paper's [X_co]: no pair
      with [x.s ▷ y.s] and [y.r ▷ x.r].
    - [Fifo_1n] — mailbox/FIFO 1-n: no such overtaking pair {e sent by
      the same process} (messages from one sender are delivered in send
      order, to anyone).
    - [Fifo_n1] — FIFO n-1: no overtaking pair {e delivered to the same
      process}.
    - [Fifo_11] — per-pair FIFO: no overtaking pair on the same
      (sender, destination) channel.
    - [Async] — fully asynchronous, the ground set [X_async].

    The FIFO guards read the per-message {!Run.attrs}: an unknown
    attribute satisfies no guard, so attribute-less runs vacuously
    belong to every FIFO model (matching the guarded-predicate
    convention of {!Mo_core.Eval}).

    The inclusion order is

    {v
        Rsc ⊆ Fifo_nn ⊆ Causal ⊆ {Fifo_1n, Fifo_n1} ⊆ Fifo_11 ⊆ Async
        Rsc = Ksync 1 ⊆ Ksync 2 ⊆ … ⊆ Async
    v}

    with [Ksync k] (k ≥ 2) incomparable to every interior point of the
    FIFO chain (a 2-crown is k-synchronous but not [Rsc]; an overtaking
    pair is [Ksync 2] but not causal; large crowns are causal but not
    [Ksync k] for any fixed [k]). Every pairwise inclusion, and every
    claimed non-inclusion, is verified empirically over the 125,768-run
    standard universe in test/test_lattice.ml. *)

type model =
  | Rsc
  | Ksync of int  (** [k >= 1]; [Ksync 1] is order-equal to [Rsc]. *)
  | Fifo_nn
  | Causal
  | Fifo_1n
  | Fifo_n1
  | Fifo_11
  | Async

type violation = Limits.violation = { cycle : int list; reason : string }

val is_member : model -> Run.Abstract.t -> bool
(** Membership of the run in the model's limit set, over the packed
    {!Run.Abstract.masks} rows when available (runs of ≤ 62 messages)
    with a {!Bitset} fallback over {!Run.Abstract.relations} otherwise.
    @raise Invalid_argument on [Ksync k] with [k < 1]. *)

val check : model -> Run.Abstract.t -> (unit, violation) result
(** The witness-producing reference: recomputes membership over
    {!Run.Abstract.lt} / {!Run.Abstract.message_graph} without touching
    the mask fast path, and on failure names the offending messages —
    the overtaking pair for the FIFO/causal models, the message cycle
    for [Rsc]/[Fifo_nn], the oversized strongly connected component for
    [Ksync]. Agrees with {!is_member} on every run (the differential
    bar of test/test_lattice.ml and bench B17). *)

(** {1 The lattice order, as data} *)

val equal : model -> model -> bool
(** Order-equality: [equal Rsc (Ksync 1)] is [true]. *)

val leq : model -> model -> bool
(** [leq a b] iff [X_a ⊆ X_b] over all runs. A partial order up to
    {!equal}. *)

val join : model -> model -> model
(** Least upper bound; e.g. [join Fifo_1n Fifo_n1 = Fifo_11] and
    [join (Ksync 2) Causal = Async]. *)

val meet : model -> model -> model
(** Greatest lower bound; e.g. [meet Fifo_1n Fifo_n1 = Causal] and
    [meet (Ksync 2) Causal = Rsc]. *)

val points : ?kmax:int -> unit -> model list
(** The finite sublattice used for classification sweeps: [Rsc],
    [Ksync 2 .. Ksync kmax] ([kmax] defaults to 3), the FIFO/causal
    chain, and [Async] — in a fixed order ({!leq}-compatible: a model
    never precedes one it strictly contains). *)

val hasse : ?kmax:int -> unit -> (model * model) list
(** The covering pairs [(a, b)] (a ⊂ b, nothing strictly between) of
    {!points} — the Hasse diagram of the finite sublattice. *)

val to_string : model -> string
(** Canonical names: ["rsc"], ["ksync2"], ["fifo-nn"], ["causal"],
    ["fifo-1n"], ["fifo-n1"], ["fifo-11"], ["async"]. *)

val of_string : string -> model option
(** Inverse of {!to_string}; also accepts ["sync"], ["co"], ["mailbox"]
    and underscore/undashed spellings. *)

val pp_violation : Format.formatter -> violation -> unit
