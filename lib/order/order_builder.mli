(** Incremental strict partial orders with an undo log.

    The enumeration kernel ({!Enumerate}) maintains {e one} order per
    configuration: placing the next event pushes its program-order edge,
    backtracking pops it. Reachability rows are unboxed int masks, so the
    universe is capped at 62 vertices — far above any enumerable run size
    (a run with [m] messages has [2m] events).

    Invariants maintained by [add_edge]/[undo]:
    - [reach.(h)] is always the {e strict} transitive closure of the edges
      accepted so far (bit [g] set iff [h ▷ g]);
    - each row mutation logs the previous mask, and [undo] replays the log
      suffix in reverse order, so a row touched by several pushes is
      restored to its value at the mark;
    - a rejected ([`Cycle]) or implied (already [h ▷ g]) edge leaves the
      builder — including the log — untouched. *)

type t

type mark
(** A point in the undo log. Marks taken earlier may be undone to in any
    order as long as each [undo] target is no newer than the previous
    state (stack discipline). *)

val create : int -> t
(** [create n] is the discrete order on [{0..n-1}].
    @raise Invalid_argument when [n < 0] or [n > 62]. *)

val size : t -> int

val lt : t -> int -> int -> bool
(** [lt t h g] is [h ▷ g] in the current closure. *)

val mark : t -> mark

val add_edge : t -> int -> int -> [ `Ok | `Cycle ]
(** [add_edge t h g] extends the order with [h ▷ g] and closes
    transitively, logging every changed row. [`Cycle] (with no state
    change) when [h = g] or [g ▷ h] already holds. An edge already implied
    is accepted without logging anything. *)

val add_edge_exn : t -> int -> int -> unit
(** Like {!add_edge}. @raise Invalid_argument on [`Cycle]. *)

val undo : t -> mark -> unit
(** Restore the builder to its state when [mark] was taken. *)

val snapshot : t -> Poset.t
(** An immutable {!Poset.t} of the current order. O(n²) bits copied; the
    closure is {e not} recomputed. *)

val reach_mask : t -> int -> int
(** The raw reachability row of a vertex (bit [g] set iff [h ▷ g]). *)
