(** The limit sets of §3.4: [X_sync ⊆ X_co ⊆ X_async].

    These are the three specifications that characterize implementability
    (Theorem 1): a specification [Y] admits a general / tagged / tagless
    protocol iff [X_sync ⊆ Y] / [X_co ⊆ Y] / [X_async ⊆ Y].

    Membership tests operate on abstract user-view runs:
    - every complete run is in [X_async];
    - a run is in [X_co] when no pair of messages violates causal ordering
      ([x.s ▷ y.s ⟹ ¬(y.r ▷ x.r)]);
    - a run is in [X_sync] when its time diagram can be drawn with vertical
      message arrows, equivalently (§3.4, after [18]) when the message graph
      is acyclic, in which case a numbering [T : M → ℕ] with
      [x.h ▷ y.f ⟹ T(x) < T(y)] exists. *)

type violation = {
  cycle : int list;
      (** Messages forming the offending structure: for a causal violation
          the pair [[x; y]] with [x.s ▷ y.s] and [y.r ▷ x.r]; for a sync
          violation the message cycle (a "crown"). *)
  reason : string;
}

val is_async : Run.Abstract.t -> bool
(** Always [true]: [X_async] is the ground set. Provided for symmetry and
    used when a table over all three sets is produced. *)

val check_causal : Run.Abstract.t -> (unit, violation) result

val is_causal : Run.Abstract.t -> bool
(** Equivalent to [Result.is_ok (check_causal r)], computed over the run's
    {!Run.Abstract.relations} bit matrices (no violation reported). *)

val check_sync : Run.Abstract.t -> (int array, violation) result
(** On success returns a numbering [T] (indexed by message) witnessing the
    SYNC condition. *)

val is_sync : Run.Abstract.t -> bool
(** Equivalent to [Result.is_ok (check_sync r)], computed over the run's
    {!Run.Abstract.relations} bit matrices (no witness produced). *)

type cls = Sync | Causal_only | Async_only
(** The strongest limit set a run belongs to: [Sync] means
    [r ∈ X_sync]; [Causal_only] means [r ∈ X_co - X_sync]; [Async_only]
    means [r ∈ X_async - X_co]. *)

val classify : Run.Abstract.t -> cls

val cls_to_string : cls -> string

val pp_violation : Format.formatter -> violation -> unit
