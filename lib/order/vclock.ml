type t = int array

let create n =
  if n <= 0 then invalid_arg "Vclock.create";
  Array.make n 0

let size = Array.length

let get v i = v.(i)

let tick v i =
  let w = Array.copy v in
  w.(i) <- w.(i) + 1;
  w

let merge a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock.merge";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let compare = Stdlib.compare

let to_array = Array.copy

let of_array = Array.copy

let lt_arrays a b =
  let le = ref true and eq = ref true in
  Array.iteri
    (fun i x ->
      if x > b.(i) then le := false;
      if x <> b.(i) then eq := false)
    a;
  !le && not !eq

let merge_into ~into b =
  Array.iteri (fun i x -> if x > into.(i) then into.(i) <- x) b

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_list v)
