type model =
  | Rsc
  | Ksync of int
  | Fifo_nn
  | Causal
  | Fifo_1n
  | Fifo_n1
  | Fifo_11
  | Async

type violation = Limits.violation = { cycle : int list; reason : string }

let norm = function
  | Ksync k when k < 1 -> invalid_arg "Lattice: Ksync k requires k >= 1"
  | Ksync 1 -> Rsc
  | m -> m

let to_string = function
  | Rsc -> "rsc"
  | Ksync k -> "ksync" ^ string_of_int k
  | Fifo_nn -> "fifo-nn"
  | Causal -> "causal"
  | Fifo_1n -> "fifo-1n"
  | Fifo_n1 -> "fifo-n1"
  | Fifo_11 -> "fifo-11"
  | Async -> "async"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "rsc" | "sync" -> Some Rsc
  | "fifo-nn" | "fifo_nn" | "fifonn" -> Some Fifo_nn
  | "causal" | "co" -> Some Causal
  | "fifo-1n" | "fifo_1n" | "fifo1n" | "mailbox" -> Some Fifo_1n
  | "fifo-n1" | "fifo_n1" | "fifon1" -> Some Fifo_n1
  | "fifo-11" | "fifo_11" | "fifo11" -> Some Fifo_11
  | "async" -> Some Async
  | s when String.length s > 5 && String.sub s 0 5 = "ksync" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some k when k >= 1 -> Some (Ksync k)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Membership fast paths (masks when <= 62 messages, Bitsets beyond)  *)
(* ------------------------------------------------------------------ *)

(* Message-digraph rows over the forward sections: always ss/rs/rr,
   plus sr for the full message graph ([with_sr]). Self-bit dropped —
   sr.(x) contains x via the implicit x.s ▷ x.r edge. *)
let mg_rows_masks mk n ~with_sr =
  Array.init n (fun x ->
      let row = mk.(x) lor mk.((2 * n) + x) lor mk.((3 * n) + x) in
      let row = if with_sr then row lor mk.(n + x) else row in
      row land lnot (1 lsl x))

let mg_rows_bitsets rel n ~with_sr =
  Array.init n (fun x ->
      let row = Bitset.copy rel.Run.Abstract.ss.(x) in
      if with_sr then Bitset.union_into ~dst:row rel.Run.Abstract.sr.(x);
      Bitset.union_into ~dst:row rel.Run.Abstract.rs.(x);
      Bitset.union_into ~dst:row rel.Run.Abstract.rr.(x);
      Bitset.remove row x;
      row)

let acyclic_int_rows succ n =
  let indeg = Array.make n 0 in
  Array.iter
    (fun row ->
      for y = 0 to n - 1 do
        if row land (1 lsl y) <> 0 then indeg.(y) <- indeg.(y) + 1
      done)
    succ;
  let queue = Queue.create () in
  for x = 0 to n - 1 do
    if indeg.(x) = 0 then Queue.add x queue
  done;
  let numbered = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    incr numbered;
    let row = succ.(x) in
    for y = 0 to n - 1 do
      if row land (1 lsl y) <> 0 then begin
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then Queue.add y queue
      end
    done
  done;
  !numbered = n

let acyclic_bitset_rows succ n =
  let indeg = Array.make n 0 in
  Array.iter
    (fun row -> Bitset.iter (fun y -> indeg.(y) <- indeg.(y) + 1) row)
    succ;
  let queue = Queue.create () in
  for x = 0 to n - 1 do
    if indeg.(x) = 0 then Queue.add x queue
  done;
  let numbered = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    incr numbered;
    Bitset.iter
      (fun y ->
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then Queue.add y queue)
      succ.(x)
  done;
  !numbered = n

let is_fifo_nn r =
  let n = Run.Abstract.nmsgs r in
  if n <= 1 then true
  else
    match Run.Abstract.masks r with
    | Some mk -> acyclic_int_rows (mg_rows_masks mk n ~with_sr:false) n
    | None ->
        acyclic_bitset_rows
          (mg_rows_bitsets (Run.Abstract.relations r) n ~with_sr:false)
          n

(* Largest strongly connected component of the message graph, by
   Warshall closure over bit rows (n <= 62 on the mask path, and the
   universes are tiny anyway): x and y share a component iff each
   reaches the other. *)
let max_scc r =
  let n = Run.Abstract.nmsgs r in
  if n <= 1 then n
  else
    match Run.Abstract.masks r with
    | Some mk ->
        let reach = mg_rows_masks mk n ~with_sr:true in
        for k = 0 to n - 1 do
          for x = 0 to n - 1 do
            if reach.(x) land (1 lsl k) <> 0 then
              reach.(x) <- reach.(x) lor reach.(k)
          done
        done;
        let best = ref 1 in
        for x = 0 to n - 1 do
          let scc = ref 1 in
          for y = 0 to n - 1 do
            if
              y <> x
              && reach.(x) land (1 lsl y) <> 0
              && reach.(y) land (1 lsl x) <> 0
            then incr scc
          done;
          if !scc > !best then best := !scc
        done;
        !best
    | None ->
        let rel = Run.Abstract.relations r in
        let reach = mg_rows_bitsets rel n ~with_sr:true in
        for k = 0 to n - 1 do
          for x = 0 to n - 1 do
            if Bitset.mem reach.(x) k then
              Bitset.union_into ~dst:reach.(x) reach.(k)
          done
        done;
        let best = ref 1 in
        for x = 0 to n - 1 do
          let scc = ref 1 in
          for y = 0 to n - 1 do
            if y <> x && Bitset.mem reach.(x) y && Bitset.mem reach.(y) x then
              incr scc
          done;
          if !scc > !best then best := !scc
        done;
        !best

(* The FIFO family: no overtaking pair (x.s ▷ y.s ∧ y.r ▷ x.r) whose
   attributes match the scope. Unknown attributes satisfy no guard. *)
type scope = By_src | By_dst | By_pair

let scope_same r scope x y =
  let ax = Run.Abstract.attrs r x and ay = Run.Abstract.attrs r y in
  let same a b = match (a, b) with Some a, Some b -> a = b | _ -> false in
  match scope with
  | By_src -> same ax.Run.src ay.Run.src
  | By_dst -> same ax.Run.dst ay.Run.dst
  | By_pair -> same ax.Run.src ay.Run.src && same ax.Run.dst ay.Run.dst

let is_fifo scope r =
  let n = Run.Abstract.nmsgs r in
  if n <= 1 then true
  else begin
    let ok = ref true in
    (match Run.Abstract.masks r with
    | Some mk -> (
        (* overtaking candidates for x: ss.(x) ∩ rr_t.(x) ∖ {x}, as the
           causal fast path, then filtered by the attribute guard *)
        try
          for x = 0 to n - 1 do
            let c = mk.(x) land mk.((7 * n) + x) land lnot (1 lsl x) in
            if c <> 0 then
              for y = 0 to n - 1 do
                if c land (1 lsl y) <> 0 && scope_same r scope x y then begin
                  ok := false;
                  raise Exit
                end
              done
          done
        with Exit -> ())
    | None -> (
        let rel = Run.Abstract.relations r in
        let scratch = Bitset.create n in
        try
          for x = 0 to n - 1 do
            Bitset.copy_into ~dst:scratch rel.Run.Abstract.ss.(x);
            Bitset.inter_into ~dst:scratch rel.Run.Abstract.rr_t.(x);
            Bitset.remove scratch x;
            Bitset.iter
              (fun y ->
                if scope_same r scope x y then begin
                  ok := false;
                  raise Exit
                end)
              scratch
          done
        with Exit -> ()));
    !ok
  end

let is_member m r =
  match norm m with
  | Rsc -> Limits.is_sync r
  | Ksync k -> max_scc r <= k
  | Fifo_nn -> is_fifo_nn r
  | Causal -> Limits.is_causal r
  | Fifo_1n -> is_fifo By_src r
  | Fifo_n1 -> is_fifo By_dst r
  | Fifo_11 -> is_fifo By_pair r
  | Async -> true

(* ------------------------------------------------------------------ *)
(* Witness-producing references (lt / message_graph, no masks)        *)
(* ------------------------------------------------------------------ *)

(* Kahn over successor lists with cycle extraction, as
   Limits.check_sync. *)
let acyclic_or_cycle succ n ~what =
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun y -> indeg.(y) <- indeg.(y) + 1)) succ;
  let queue = Queue.create () in
  for x = 0 to n - 1 do
    if indeg.(x) = 0 then Queue.add x queue
  done;
  let numbering = Array.make n (-1) in
  let next = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    numbering.(x) <- !next;
    incr next;
    List.iter
      (fun y ->
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then Queue.add y queue)
      succ.(x)
  done;
  if !next = n then Ok ()
  else begin
    let in_cycle x = numbering.(x) < 0 in
    let start =
      let rec find x = if in_cycle x then x else find (x + 1) in
      find 0
    in
    let visited = Array.make n (-1) in
    let rec walk x step path =
      if visited.(x) >= 0 then
        let rec take acc = function
          | [] -> acc
          | y :: rest -> if y = x then y :: acc else take (y :: acc) rest
        in
        take [] path
      else begin
        visited.(x) <- step;
        match List.find_opt in_cycle succ.(x) with
        | Some y -> walk y (step + 1) (x :: path)
        | None -> List.rev (x :: path)
      end
    in
    let cycle = walk start 0 [] in
    Error
      {
        cycle;
        reason =
          Printf.sprintf "%s graph has a cycle of length %d" what
            (List.length cycle);
      }
  end

let check_overtake r scope ~what =
  let n = Run.Abstract.nmsgs r in
  let found = ref None in
  (try
     for x = 0 to n - 1 do
       for y = 0 to n - 1 do
         if
           x <> y
           && Run.Abstract.lt r (Event.send x) (Event.send y)
           && Run.Abstract.lt r (Event.deliver y) (Event.deliver x)
           && scope_same r scope x y
         then begin
           found :=
             Some
               {
                 cycle = [ x; y ];
                 reason =
                   Printf.sprintf
                     "x%d.s > x%d.s but x%d.r > x%d.r with %s: x%d overtaken"
                     x y y x what x;
               };
           raise Exit
         end
       done
     done
   with Exit -> ());
  match !found with None -> Ok () | Some v -> Error v

let check m r =
  let n = Run.Abstract.nmsgs r in
  match norm m with
  | Async -> Ok ()
  | Rsc -> (
      match Limits.check_sync r with Ok _ -> Ok () | Error v -> Error v)
  | Causal -> Limits.check_causal r
  | Ksync k ->
      let succ = Array.make n [] in
      List.iter
        (fun (x, y) -> succ.(x) <- y :: succ.(x))
        (Run.Abstract.message_graph r);
      let reach =
        Array.init n (fun s ->
            let seen = Array.make n false in
            let rec dfs x =
              List.iter
                (fun y ->
                  if not seen.(y) then begin
                    seen.(y) <- true;
                    dfs y
                  end)
                succ.(x)
            in
            dfs s;
            seen)
      in
      let best = ref [] and best_len = ref 0 in
      for x = 0 to n - 1 do
        let scc = ref [] and len = ref 0 in
        for y = n - 1 downto 0 do
          if y = x || (reach.(x).(y) && reach.(y).(x)) then begin
            scc := y :: !scc;
            incr len
          end
        done;
        if !len > !best_len then begin
          best := !scc;
          best_len := !len
        end
      done;
      if !best_len <= k then Ok ()
      else
        Error
          {
            cycle = !best;
            reason =
              Printf.sprintf
                "message graph has a strongly connected component of %d \
                 messages > k = %d"
                !best_len k;
          }
  | Fifo_nn ->
      let succ = Array.make n [] in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          if
            x <> y
            && (Run.Abstract.lt r (Event.send x) (Event.send y)
               || Run.Abstract.lt r (Event.deliver x) (Event.send y)
               || Run.Abstract.lt r (Event.deliver x) (Event.deliver y))
          then succ.(x) <- y :: succ.(x)
        done
      done;
      acyclic_or_cycle succ n ~what:"one-queue FIFO"
  | Fifo_1n -> check_overtake r By_src ~what:"the same sender"
  | Fifo_n1 -> check_overtake r By_dst ~what:"the same destination"
  | Fifo_11 -> check_overtake r By_pair ~what:"the same channel"

(* ------------------------------------------------------------------ *)
(* The order, as data                                                 *)
(* ------------------------------------------------------------------ *)

let equal a b = norm a = norm b

let leq a b =
  let a = norm a and b = norm b in
  if a = b then true
  else
    match (a, b) with
    | Rsc, _ -> true
    | _, Async -> true
    | Async, _ | _, Rsc -> false
    | Ksync j, Ksync k -> j <= k
    | Ksync _, _ | _, Ksync _ -> false
    | Fifo_nn, (Causal | Fifo_1n | Fifo_n1 | Fifo_11) -> true
    | Causal, (Fifo_1n | Fifo_n1 | Fifo_11) -> true
    | (Fifo_1n | Fifo_n1), Fifo_11 -> true
    | _ -> false

let join a b =
  let a = norm a and b = norm b in
  if leq a b then b
  else if leq b a then a
  else
    match (a, b) with
    | Fifo_1n, Fifo_n1 | Fifo_n1, Fifo_1n -> Fifo_11
    | _ ->
        (* the only other incomparable pairs put Ksync k (k >= 2)
           against the FIFO/causal chain; no Ksync bound exists (crowns
           grow unboundedly within Causal), so the join is the top *)
        Async

let meet a b =
  let a = norm a and b = norm b in
  if leq a b then a
  else if leq b a then b
  else
    match (a, b) with
    | Fifo_1n, Fifo_n1 | Fifo_n1, Fifo_1n -> Causal
    | _ -> Rsc

let points ?(kmax = 3) () =
  let ks =
    if kmax < 2 then [] else List.init (kmax - 1) (fun i -> Ksync (i + 2))
  in
  (Rsc :: ks) @ [ Fifo_nn; Causal; Fifo_1n; Fifo_n1; Fifo_11; Async ]

let hasse ?(kmax = 3) () =
  let pts = points ~kmax () in
  let strict a b = leq a b && not (leq b a) in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if
            strict a b
            && not (List.exists (fun c -> strict a c && strict c b) pts)
          then Some (a, b)
          else None)
        pts)
    pts

let pp_violation = Limits.pp_violation
