(** Vector clocks.

    The classic mechanism for tracking causality in the tagged-protocol
    world (§2 of the paper): each process keeps one counter per process;
    entrywise maximum on receipt. Used by the Birman–Schiper–Stephenson
    causal broadcast protocol and by the online causal-order checker. *)

type t

val create : int -> t
(** [create n] is the zero vector for [n] processes. *)

val size : t -> int

val get : t -> int -> int

val tick : t -> int -> t
(** [tick v i] increments component [i] (a local event at process [i]).
    Persistent: returns a fresh clock. *)

val merge : t -> t -> t
(** Entrywise maximum. *)

val leq : t -> t -> bool
(** [leq a b] iff every component of [a] is ≤ the matching one of [b]. *)

val lt : t -> t -> bool
(** [leq a b] and [a <> b]: the happened-before test. *)

val concurrent : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order for use in maps; {e not} the causal order. *)

val to_array : t -> int array

val of_array : int array -> t

(** {1 In-place helpers}

    For streaming monitors that keep raw stamp arrays and cannot afford
    a fresh clock per event. Both assume equal lengths. *)

val lt_arrays : int array -> int array -> bool
(** {!lt} directly on stamp arrays, allocation-free. *)

val merge_into : into:int array -> int array -> unit
(** Entrywise maximum, accumulated into [into]. *)

val pp : Format.formatter -> t -> unit
