(* Streaming must-happened-before frontier over a bounded slot window.

   Two representations of the same automaton. [Packed] (windows up to
   62 slots) keeps the eight relation sections as rows packed into
   ints, exactly the Run.Abstract.masks layout: section k, row x lives
   at masks.(k * window + x); bit y of a forward row means x.p ▷ y.q,
   transpose rows mirror column reads. [Wide] replays the identical
   update rules over Bitset rows, one Bitset per row, so windows beyond
   the word size (e.g. --window 128) work at a constant factor's cost.
   Every update keeps forward and transpose sections in lock step.

   Per process p the monitor keeps past_s.(p) / past_r.(p): the slots
   whose send (resp. delivery) is in the causal past of p's latest
   event. Per slot j, sp_s.(j) / sp_r.(j) freeze those masks at j's
   send, so j's delivery can reconstruct the send's past without
   history. pend_to.(p) tracks slots pending delivery at p: whenever
   p's past grows, the new events gain must-edges into those virtual
   deliveries. *)

let max_window = 62
let max_wide_window = 4096

(* section offsets, as Run.Abstract: ss sr rs rr then transposes *)
let ss = 0
and sr = 1
and rs = 2
and rr = 3
and ss_t = 4
and sr_t = 5
and rs_t = 6
and rr_t = 7

module Packed = struct
  type t = {
    window : int;
    nprocs : int;
    masks : int array; (* 8 * window rows, Run.Abstract section order *)
    slot_id : int array; (* message id per slot, -1 when free *)
    slot_src : int array;
    slot_dst : int array;
    slot_color : int array; (* -1 = no color *)
    delivered : int array; (* mask of delivered live slots *)
    sp_s : int array; (* per slot: sends in the past of its send *)
    sp_r : int array; (* per slot: deliveries in the past of its send *)
    past_s : int array; (* per process *)
    past_r : int array; (* per process *)
    pend_to : int array; (* per process: pending slots addressed to it *)
    slot_of : (int, int) Hashtbl.t; (* message id -> slot *)
    retire_q : int Queue.t; (* delivered slots, delivery order *)
    mutable live : int;
    mutable events : int;
    mutable retired : int;
  }

  let create ~window ~nprocs () =
    {
      window;
      nprocs;
      masks = Array.make (8 * window) 0;
      slot_id = Array.make window (-1);
      slot_src = Array.make window (-1);
      slot_dst = Array.make window (-1);
      slot_color = Array.make window (-1);
      delivered = Array.make 1 0;
      sp_s = Array.make window 0;
      sp_r = Array.make window 0;
      past_s = Array.make nprocs 0;
      past_r = Array.make nprocs 0;
      pend_to = Array.make nprocs 0;
      slot_of = Hashtbl.create (2 * window);
      retire_q = Queue.create ();
      live = 0;
      events = 0;
      retired = 0;
    }

  let popcount n =
    let c = ref 0 and v = ref n in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done;
    !c

  let pending t =
    let p = ref 0 in
    for q = 0 to t.nprocs - 1 do
      p := !p + popcount t.pend_to.(q)
    done;
    !p

  let slot_msg t j =
    if j < 0 || j >= t.window || t.slot_id.(j) < 0 then
      invalid_arg "Monitor.slot_msg: free slot";
    t.slot_id.(j)

  let slot_delivered t j = t.delivered.(0) land (1 lsl j) <> 0

  (* call f on each set bit of [bits]; O(window) regardless of density *)
  let iter_bits t bits f =
    if bits <> 0 then
      for k = 0 to t.window - 1 do
        if bits land (1 lsl k) <> 0 then f k
      done

  (* recycle slot k: erase it from every row, past and index *)
  let retire t k =
    let keep = lnot (1 lsl k) in
    let m = t.masks in
    for i = 0 to (8 * t.window) - 1 do
      m.(i) <- m.(i) land keep
    done;
    for s = 0 to 7 do
      m.((s * t.window) + k) <- 0
    done;
    for j = 0 to t.window - 1 do
      t.sp_s.(j) <- t.sp_s.(j) land keep;
      t.sp_r.(j) <- t.sp_r.(j) land keep
    done;
    for p = 0 to t.nprocs - 1 do
      t.past_s.(p) <- t.past_s.(p) land keep;
      t.past_r.(p) <- t.past_r.(p) land keep
    done;
    Hashtbl.remove t.slot_of t.slot_id.(k);
    t.slot_id.(k) <- -1;
    t.delivered.(0) <- t.delivered.(0) land keep;
    t.live <- t.live land keep;
    t.retired <- t.retired + 1

  let full_mask t = (1 lsl t.window) - 1

  let alloc t =
    if t.live <> full_mask t then (
      let k = ref 0 in
      while t.live land (1 lsl !k) <> 0 do
        incr k
      done;
      !k)
    else
      match Queue.take_opt t.retire_q with
      | Some k ->
          retire t k;
          k
      | None ->
          invalid_arg "Monitor.send: window exhausted (every slot pending)"

  let send t ~msg ~src ~dst ~color =
    if Hashtbl.mem t.slot_of msg then
      invalid_arg "Monitor.send: duplicate send";
    let j = alloc t in
    let bj = 1 lsl j in
    let w = t.window and m = t.masks in
    Hashtbl.replace t.slot_of msg j;
    t.slot_id.(j) <- msg;
    t.slot_src.(j) <- src;
    t.slot_dst.(j) <- dst;
    t.slot_color.(j) <- color;
    let ps = t.past_s.(src) and pr = t.past_r.(src) in
    t.sp_s.(j) <- ps;
    t.sp_r.(j) <- pr;
    (* edges into the new send event: k.s ▷ j.s and k.r ▷ j.s *)
    iter_bits t ps (fun k -> m.((ss * w) + k) <- m.((ss * w) + k) lor bj);
    m.((ss_t * w) + j) <- ps;
    iter_bits t pr (fun k -> m.((rs * w) + k) <- m.((rs * w) + k) lor bj);
    m.((rs_t * w) + j) <- pr;
    (* must-edges into j's virtual delivery: j.r follows j.s (hence the
       send's whole past) and the current past of dst, in every
       completion *)
    let vs = ps lor bj lor t.past_s.(dst) in
    let vr = pr lor t.past_r.(dst) in
    iter_bits t vs (fun k -> m.((sr * w) + k) <- m.((sr * w) + k) lor bj);
    m.((sr_t * w) + j) <- vs;
    iter_bits t vr (fun k -> m.((rr * w) + k) <- m.((rr * w) + k) lor bj);
    m.((rr_t * w) + j) <- vr;
    (* j.s is now in src's past, so it precedes every delivery still
       pending at src *)
    let p = t.pend_to.(src) in
    if p <> 0 then (
      m.((sr * w) + j) <- m.((sr * w) + j) lor p;
      iter_bits t p (fun y ->
          m.((sr_t * w) + y) <- m.((sr_t * w) + y) lor bj));
    t.past_s.(src) <- ps lor bj;
    t.pend_to.(dst) <- t.pend_to.(dst) lor bj;
    t.live <- t.live lor bj;
    t.events <- t.events + 1

  let deliver t ~msg =
    match Hashtbl.find_opt t.slot_of msg with
    | None -> invalid_arg "Monitor.deliver: message not sent"
    | Some j ->
        if slot_delivered t j then
          invalid_arg "Monitor.deliver: duplicate delivery";
        let bj = 1 lsl j in
        let w = t.window and m = t.masks in
        let q = t.slot_dst.(j) in
        (* the real past of j.r: q's past joined with the send's past.
           The virtual rows written at send time are always a subset, so
           only the delta needs forward updates. *)
        let es = t.past_s.(q) lor t.sp_s.(j) lor bj in
        let er = t.past_r.(q) lor t.sp_r.(j) in
        iter_bits t
          (es land lnot m.((sr_t * w) + j))
          (fun k -> m.((sr * w) + k) <- m.((sr * w) + k) lor bj);
        m.((sr_t * w) + j) <- es;
        iter_bits t
          (er land lnot m.((rr_t * w) + j))
          (fun k -> m.((rr * w) + k) <- m.((rr * w) + k) lor bj);
        m.((rr_t * w) + j) <- er;
        (* q's past grows: the newly absorbed events (and j.r itself)
           precede every delivery still pending at q *)
        let ds = es land lnot t.past_s.(q) in
        let dr = (er lor bj) land lnot t.past_r.(q) in
        let p = t.pend_to.(q) land lnot bj in
        if p <> 0 then (
          iter_bits t ds (fun u ->
              m.((sr * w) + u) <- m.((sr * w) + u) lor p);
          iter_bits t dr (fun u ->
              m.((rr * w) + u) <- m.((rr * w) + u) lor p);
          iter_bits t p (fun y ->
              m.((sr_t * w) + y) <- m.((sr_t * w) + y) lor ds;
              m.((rr_t * w) + y) <- m.((rr_t * w) + y) lor dr));
        t.past_s.(q) <- es;
        t.past_r.(q) <- er lor bj;
        t.pend_to.(q) <- t.pend_to.(q) land lnot bj;
        t.delivered.(0) <- t.delivered.(0) lor bj;
        Queue.add j t.retire_q;
        t.events <- t.events + 1

  let frontier_bytes t =
    let word = Sys.word_size / 8 in
    let ints =
      (8 * t.window) (* masks *)
      + (6 * t.window) (* slot_id/src/dst/color, sp_s, sp_r *)
      + (3 * t.nprocs) (* past_s, past_r, pend_to *)
      + 1 (* delivered *)
      + 4 (* live, events, retired, and the queue head *)
    in
    (* hash table and retire queue are bounded by the window *)
    word * (ints + (4 * t.window))
end

module Wide = struct
  (* the Packed automaton verbatim, with every slot mask a Bitset of
     capacity [window]; the update rules translate operation for
     operation (lor -> union/add, land lnot -> diff/remove), so the
     differential test against the packed path on a truncated window is
     exact equality of relations *)
  type t = {
    window : int;
    nprocs : int;
    rel : Bitset.t array; (* 8 * window rows, Run.Abstract section order *)
    slot_id : int array;
    slot_src : int array;
    slot_dst : int array;
    slot_color : int array;
    delivered : Bitset.t;
    sp_s : Bitset.t array;
    sp_r : Bitset.t array;
    past_s : Bitset.t array;
    past_r : Bitset.t array;
    pend_to : Bitset.t array;
    slot_of : (int, int) Hashtbl.t;
    retire_q : int Queue.t;
    live : Bitset.t;
    mutable events : int;
    mutable retired : int;
    empty : Bitset.t; (* constant, for clearing rows *)
    tmp_a : Bitset.t; (* scratch, valid within one operation *)
    tmp_b : Bitset.t;
  }

  let create ~window ~nprocs () =
    let bs () = Bitset.create window in
    {
      window;
      nprocs;
      rel = Array.init (8 * window) (fun _ -> bs ());
      slot_id = Array.make window (-1);
      slot_src = Array.make window (-1);
      slot_dst = Array.make window (-1);
      slot_color = Array.make window (-1);
      delivered = bs ();
      sp_s = Array.init window (fun _ -> bs ());
      sp_r = Array.init window (fun _ -> bs ());
      past_s = Array.init nprocs (fun _ -> bs ());
      past_r = Array.init nprocs (fun _ -> bs ());
      pend_to = Array.init nprocs (fun _ -> bs ());
      slot_of = Hashtbl.create (2 * window);
      retire_q = Queue.create ();
      live = bs ();
      events = 0;
      retired = 0;
      empty = bs ();
      tmp_a = bs ();
      tmp_b = bs ();
    }

  let pending t =
    let p = ref 0 in
    for q = 0 to t.nprocs - 1 do
      p := !p + Bitset.cardinal t.pend_to.(q)
    done;
    !p

  let slot_msg t j =
    if j < 0 || j >= t.window || t.slot_id.(j) < 0 then
      invalid_arg "Monitor.slot_msg: free slot";
    t.slot_id.(j)

  let slot_delivered t j = Bitset.mem t.delivered j

  let retire t k =
    for i = 0 to (8 * t.window) - 1 do
      Bitset.remove t.rel.(i) k
    done;
    for s = 0 to 7 do
      Bitset.copy_into ~dst:t.rel.((s * t.window) + k) t.empty
    done;
    for j = 0 to t.window - 1 do
      Bitset.remove t.sp_s.(j) k;
      Bitset.remove t.sp_r.(j) k
    done;
    for p = 0 to t.nprocs - 1 do
      Bitset.remove t.past_s.(p) k;
      Bitset.remove t.past_r.(p) k
    done;
    Hashtbl.remove t.slot_of t.slot_id.(k);
    t.slot_id.(k) <- -1;
    Bitset.remove t.delivered k;
    Bitset.remove t.live k;
    t.retired <- t.retired + 1

  let alloc t =
    if Bitset.cardinal t.live < t.window then (
      let k = ref 0 in
      while Bitset.mem t.live !k do
        incr k
      done;
      !k)
    else
      match Queue.take_opt t.retire_q with
      | Some k ->
          retire t k;
          k
      | None ->
          invalid_arg "Monitor.send: window exhausted (every slot pending)"

  let send t ~msg ~src ~dst ~color =
    if Hashtbl.mem t.slot_of msg then
      invalid_arg "Monitor.send: duplicate send";
    let j = alloc t in
    let w = t.window and m = t.rel in
    Hashtbl.replace t.slot_of msg j;
    t.slot_id.(j) <- msg;
    t.slot_src.(j) <- src;
    t.slot_dst.(j) <- dst;
    t.slot_color.(j) <- color;
    let ps = t.past_s.(src) and pr = t.past_r.(src) in
    Bitset.copy_into ~dst:t.sp_s.(j) ps;
    Bitset.copy_into ~dst:t.sp_r.(j) pr;
    Bitset.iter (fun k -> Bitset.add m.((ss * w) + k) j) ps;
    Bitset.copy_into ~dst:m.((ss_t * w) + j) ps;
    Bitset.iter (fun k -> Bitset.add m.((rs * w) + k) j) pr;
    Bitset.copy_into ~dst:m.((rs_t * w) + j) pr;
    let vs = t.tmp_a in
    Bitset.copy_into ~dst:vs ps;
    Bitset.add vs j;
    Bitset.union_into ~dst:vs t.past_s.(dst);
    let vr = t.tmp_b in
    Bitset.copy_into ~dst:vr pr;
    Bitset.union_into ~dst:vr t.past_r.(dst);
    Bitset.iter (fun k -> Bitset.add m.((sr * w) + k) j) vs;
    Bitset.copy_into ~dst:m.((sr_t * w) + j) vs;
    Bitset.iter (fun k -> Bitset.add m.((rr * w) + k) j) vr;
    Bitset.copy_into ~dst:m.((rr_t * w) + j) vr;
    let p = t.pend_to.(src) in
    if not (Bitset.is_empty p) then (
      Bitset.union_into ~dst:m.((sr * w) + j) p;
      Bitset.iter (fun y -> Bitset.add m.((sr_t * w) + y) j) p);
    Bitset.add t.past_s.(src) j;
    Bitset.add t.pend_to.(dst) j;
    Bitset.add t.live j;
    t.events <- t.events + 1

  let deliver t ~msg =
    match Hashtbl.find_opt t.slot_of msg with
    | None -> invalid_arg "Monitor.deliver: message not sent"
    | Some j ->
        if slot_delivered t j then
          invalid_arg "Monitor.deliver: duplicate delivery";
        let w = t.window and m = t.rel in
        let q = t.slot_dst.(j) in
        let es = t.tmp_a in
        Bitset.copy_into ~dst:es t.past_s.(q);
        Bitset.union_into ~dst:es t.sp_s.(j);
        Bitset.add es j;
        let er = t.tmp_b in
        Bitset.copy_into ~dst:er t.past_r.(q);
        Bitset.union_into ~dst:er t.sp_r.(j);
        (* delta-only forward updates, as the packed path *)
        let delta = Bitset.copy es in
        Bitset.diff_into ~dst:delta m.((sr_t * w) + j);
        Bitset.iter (fun k -> Bitset.add m.((sr * w) + k) j) delta;
        Bitset.copy_into ~dst:m.((sr_t * w) + j) es;
        let delta = Bitset.copy er in
        Bitset.diff_into ~dst:delta m.((rr_t * w) + j);
        Bitset.iter (fun k -> Bitset.add m.((rr * w) + k) j) delta;
        Bitset.copy_into ~dst:m.((rr_t * w) + j) er;
        let ds = Bitset.copy es in
        Bitset.diff_into ~dst:ds t.past_s.(q);
        let dr = Bitset.copy er in
        Bitset.add dr j;
        Bitset.diff_into ~dst:dr t.past_r.(q);
        let p = Bitset.copy t.pend_to.(q) in
        Bitset.remove p j;
        if not (Bitset.is_empty p) then (
          Bitset.iter
            (fun u -> Bitset.union_into ~dst:m.((sr * w) + u) p)
            ds;
          Bitset.iter
            (fun u -> Bitset.union_into ~dst:m.((rr * w) + u) p)
            dr;
          Bitset.iter
            (fun y ->
              Bitset.union_into ~dst:m.((sr_t * w) + y) ds;
              Bitset.union_into ~dst:m.((rr_t * w) + y) dr)
            p);
        Bitset.copy_into ~dst:t.past_s.(q) es;
        Bitset.copy_into ~dst:t.past_r.(q) er;
        Bitset.add t.past_r.(q) j;
        Bitset.remove t.pend_to.(q) j;
        Bitset.add t.delivered j;
        Queue.add j t.retire_q;
        t.events <- t.events + 1

  let frontier_bytes t =
    let word = Sys.word_size / 8 in
    (* a Bitset of capacity w is ~ceil(w/8) bytes plus a boxed header *)
    let bs = ((t.window + 7) / 8) + (2 * word) in
    let sets =
      (8 * t.window) (* rel *) + (2 * t.window) (* sp_s, sp_r *)
      + (3 * t.nprocs) (* past_s, past_r, pend_to *)
      + 4 (* delivered, live, scratch *)
    in
    (sets * bs)
    + (word * (4 * t.window)) (* slot arrays *)
    + (word * (4 * t.window)) (* hash table and retire queue bound *)
end

type t = P of Packed.t | W of Wide.t

let create ?(window = 32) ?wide ~nprocs () =
  if window < 1 || window > max_wide_window then
    invalid_arg "Monitor.create: window out of range";
  if nprocs <= 0 then invalid_arg "Monitor.create: nprocs must be positive";
  let wide =
    match wide with Some w -> w || window > max_window | None -> window > max_window
  in
  if wide then W (Wide.create ~window ~nprocs ())
  else P (Packed.create ~window ~nprocs ())

let window = function P p -> p.Packed.window | W w -> w.Wide.window
let nprocs = function P p -> p.Packed.nprocs | W w -> w.Wide.nprocs
let events = function P p -> p.Packed.events | W w -> w.Wide.events
let retired = function P p -> p.Packed.retired | W w -> w.Wide.retired
let pending = function P p -> Packed.pending p | W w -> Wide.pending w
let is_wide = function P _ -> false | W _ -> true

let slot_src = function P p -> p.Packed.slot_src | W w -> w.Wide.slot_src
let slot_dst = function P p -> p.Packed.slot_dst | W w -> w.Wide.slot_dst

let slot_color = function
  | P p -> p.Packed.slot_color
  | W w -> w.Wide.slot_color

let slot_msg t j =
  match t with P p -> Packed.slot_msg p j | W w -> Wide.slot_msg w j

let slot_delivered t j =
  match t with
  | P p -> Packed.slot_delivered p j
  | W w -> Wide.slot_delivered w j

let live = function
  | P p -> p.Packed.live
  | W _ -> invalid_arg "Monitor.live: wide window (use wide_live)"

let masks = function
  | P p -> p.Packed.masks
  | W _ -> invalid_arg "Monitor.masks: wide window (use wide_rel)"

let wide_rel = function
  | W w -> w.Wide.rel
  | P _ -> invalid_arg "Monitor.wide_rel: packed window (use masks)"

let wide_live = function
  | W w -> w.Wide.live
  | P _ -> invalid_arg "Monitor.wide_live: packed window (use live)"

let send t ~msg ~src ~dst ?(color = -1) () =
  if src < 0 || src >= nprocs t then invalid_arg "Monitor.send: bad src";
  if dst < 0 || dst >= nprocs t then invalid_arg "Monitor.send: bad dst";
  match t with
  | P p -> Packed.send p ~msg ~src ~dst ~color
  | W w -> Wide.send w ~msg ~src ~dst ~color

let deliver t ~msg =
  match t with P p -> Packed.deliver p ~msg | W w -> Wide.deliver w ~msg

let frontier_bytes = function
  | P p -> Packed.frontier_bytes p
  | W w -> Wide.frontier_bytes w
