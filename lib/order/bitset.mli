(** Fixed-capacity bit sets over the universe [0 .. capacity-1].

    Used as the reachability rows of {!Poset}. Mutable by design: closure
    computation updates rows in place; callers that need persistence use
    {!copy}. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst]. The two sets
    must have the same capacity. *)

val inter_into : dst:t -> t -> unit

val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] removes every element of [src] from [dst]. *)

val set_all : t -> unit
(** Make [t] the full universe [{0 .. capacity-1}]. *)

val copy : t -> t

val copy_into : dst:t -> t -> unit
(** [copy_into ~dst src] overwrites [dst] with the contents of [src]. *)

val cardinal : t -> int

val is_empty : t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] when every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list

val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit
