type t = { cap : int; words : Bytes.t }

(* A byte-backed representation keeps the implementation portable and avoids
   boxing; all hot loops below operate word-wise on bytes. *)

let bytes_needed cap = (cap + 7) / 8

let create cap =
  if cap < 0 then invalid_arg "Bitset.create: negative capacity";
  { cap; words = Bytes.make (bytes_needed cap) '\000' }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.cap)

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = i lsr 3 in
  let v = Char.code (Bytes.unsafe_get t.words b) lor (1 lsl (i land 7)) in
  Bytes.unsafe_set t.words b (Char.unsafe_chr v)

let remove t i =
  check t i;
  let b = i lsr 3 in
  let v =
    Char.code (Bytes.unsafe_get t.words b) land lnot (1 lsl (i land 7))
  in
  Bytes.unsafe_set t.words b (Char.unsafe_chr (v land 0xff))

let same_cap a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst src =
  same_cap dst src;
  for b = 0 to Bytes.length dst.words - 1 do
    let v =
      Char.code (Bytes.unsafe_get dst.words b)
      lor Char.code (Bytes.unsafe_get src.words b)
    in
    Bytes.unsafe_set dst.words b (Char.unsafe_chr v)
  done

let inter_into ~dst src =
  same_cap dst src;
  for b = 0 to Bytes.length dst.words - 1 do
    let v =
      Char.code (Bytes.unsafe_get dst.words b)
      land Char.code (Bytes.unsafe_get src.words b)
    in
    Bytes.unsafe_set dst.words b (Char.unsafe_chr v)
  done

let diff_into ~dst src =
  same_cap dst src;
  for b = 0 to Bytes.length dst.words - 1 do
    let v =
      Char.code (Bytes.unsafe_get dst.words b)
      land lnot (Char.code (Bytes.unsafe_get src.words b))
    in
    Bytes.unsafe_set dst.words b (Char.unsafe_chr (v land 0xff))
  done

let set_all t =
  let nbytes = Bytes.length t.words in
  if nbytes > 0 then begin
    Bytes.fill t.words 0 nbytes '\255';
    (* clear the tail bits beyond capacity so equal/is_empty stay exact *)
    let rem = t.cap land 7 in
    if rem <> 0 then
      Bytes.unsafe_set t.words (nbytes - 1)
        (Char.unsafe_chr ((1 lsl rem) - 1))
  end

let copy t = { cap = t.cap; words = Bytes.copy t.words }

let copy_into ~dst src =
  same_cap dst src;
  Bytes.blit src.words 0 dst.words 0 (Bytes.length src.words)

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let is_empty t = Bytes.for_all (fun c -> c = '\000') t.words

let equal a b = a.cap = b.cap && Bytes.equal a.words b.words

let subset a b =
  same_cap a b;
  let ok = ref true in
  for i = 0 to Bytes.length a.words - 1 do
    let x = Char.code (Bytes.unsafe_get a.words i)
    and y = Char.code (Bytes.unsafe_get b.words i) in
    if x land lnot y <> 0 then ok := false
  done;
  !ok

let iter f t =
  for b = 0 to Bytes.length t.words - 1 do
    let v = Char.code (Bytes.unsafe_get t.words b) in
    if v <> 0 then
      for k = 0 to 7 do
        if v land (1 lsl k) <> 0 then f ((b lsl 3) + k)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list cap l =
  let t = create cap in
  List.iter (add t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
