type violation = {
  kind : [ `Fifo | `Causal ];
  earlier : int;
  later : int;
  at : int;
  channel : int * int;
}

type msg_state = {
  mutable sent : bool;
  mutable delivered : bool;
  mutable src : int;
  mutable dst : int;
  mutable seq : int; (* per-channel sequence number *)
  mutable stamp : int array; (* vector clock at send *)
  mutable send_past : Bitset.t option; (* messages causally before the send *)
}

type t = {
  nprocs : int;
  nmsgs : int;
  clocks : int array array; (* per-process vector clock *)
  past : Bitset.t array; (* per-process: messages in its causal past *)
  msgs : msg_state array;
  next_seq : (int * int, int) Hashtbl.t; (* channel -> next seqno *)
  chan_pending : (int * int, (int, int) Hashtbl.t) Hashtbl.t;
      (* channel -> (seq -> msg id) of sent-but-undelivered *)
  dst_pending : (int, unit) Hashtbl.t array; (* per dst: undelivered msg ids *)
  pred : Bitset.t array; (* per message: messages with an event before one of
                            its events; filled at delivery *)
  mutable events : int; (* stream position, for violation reports *)
}

let create ~nprocs ~nmsgs =
  if nprocs <= 0 || nmsgs < 0 then invalid_arg "Online.create";
  {
    nprocs;
    nmsgs;
    clocks = Array.init nprocs (fun _ -> Array.make nprocs 0);
    past = Array.init nprocs (fun _ -> Bitset.create nmsgs);
    msgs =
      Array.init nmsgs (fun _ ->
          {
            sent = false;
            delivered = false;
            src = -1;
            dst = -1;
            seq = -1;
            stamp = [||];
            send_past = None;
          });
    next_seq = Hashtbl.create 16;
    chan_pending = Hashtbl.create 16;
    dst_pending = Array.init nprocs (fun _ -> Hashtbl.create 16);
    pred = Array.init nmsgs (fun _ -> Bitset.create nmsgs);
    events = 0;
  }

let events t = t.events

let pending t =
  Array.fold_left (fun n h -> n + Hashtbl.length h) 0 t.dst_pending

let send t ~msg ~src ~dst =
  if msg < 0 || msg >= t.nmsgs then invalid_arg "Online.send: bad msg id";
  if src < 0 || src >= t.nprocs || dst < 0 || dst >= t.nprocs then
    invalid_arg "Online.send: bad process";
  let m = t.msgs.(msg) in
  if m.sent then invalid_arg "Online.send: duplicate send";
  m.sent <- true;
  m.src <- src;
  m.dst <- dst;
  (* channel sequence number *)
  let seq = Option.value ~default:0 (Hashtbl.find_opt t.next_seq (src, dst)) in
  Hashtbl.replace t.next_seq (src, dst) (seq + 1);
  m.seq <- seq;
  let chan =
    match Hashtbl.find_opt t.chan_pending (src, dst) with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace t.chan_pending (src, dst) h;
        h
  in
  Hashtbl.replace chan seq msg;
  Hashtbl.replace t.dst_pending.(dst) msg ();
  (* vector clock: the send is an event at src *)
  t.clocks.(src).(src) <- t.clocks.(src).(src) + 1;
  m.stamp <- Array.copy t.clocks.(src);
  (* causal past of the send, for the message graph *)
  m.send_past <- Some (Bitset.copy t.past.(src));
  Bitset.add t.past.(src) msg;
  t.events <- t.events + 1

let deliver t ~msg =
  if msg < 0 || msg >= t.nmsgs then invalid_arg "Online.deliver: bad msg id";
  let m = t.msgs.(msg) in
  if not m.sent then invalid_arg "Online.deliver: message not sent";
  if m.delivered then invalid_arg "Online.deliver: duplicate delivery";
  m.delivered <- true;
  let q = m.dst in
  let at = t.events and channel = (m.src, m.dst) in
  let violations = ref [] in
  (* FIFO: an undelivered same-channel message with a smaller seqno *)
  (match Hashtbl.find_opt t.chan_pending (m.src, m.dst) with
  | Some chan ->
      Hashtbl.iter
        (fun seq earlier ->
          if seq < m.seq then
            violations :=
              { kind = `Fifo; earlier; later = msg; at; channel }
              :: !violations)
        chan;
      Hashtbl.remove chan m.seq
  | None -> ());
  (* causal: an undelivered message to q whose send happened-before ours *)
  Hashtbl.remove t.dst_pending.(q) msg;
  Hashtbl.iter
    (fun earlier () ->
      let m' = t.msgs.(earlier) in
      if Vclock.lt_arrays m'.stamp m.stamp then
        violations :=
          { kind = `Causal; earlier; later = msg; at; channel }
          :: !violations)
    t.dst_pending.(q);
  (* message-graph predecessors: everything before this delivery *)
  Bitset.union_into ~dst:t.pred.(msg) t.past.(q);
  (match m.send_past with
  | Some p -> Bitset.union_into ~dst:t.pred.(msg) p
  | None -> ());
  Bitset.remove t.pred.(msg) msg;
  (* the delivery is an event at q: merge clocks and update the past *)
  let cq = t.clocks.(q) in
  Vclock.merge_into ~into:cq m.stamp;
  cq.(q) <- cq.(q) + 1;
  (match m.send_past with
  | Some p -> Bitset.union_into ~dst:t.past.(q) p
  | None -> ());
  Bitset.add t.past.(q) msg;
  t.events <- t.events + 1;
  List.rev !violations

let frontier_bytes t =
  let word = Sys.word_size / 8 in
  let bits = Sys.word_size - 2 in
  let bs_words = 1 + ((max t.nmsgs 1 + bits - 1) / bits) in
  let sent =
    Array.fold_left (fun n m -> if m.sent then n + 1 else n) 0 t.msgs
  in
  let words =
    (t.nprocs * t.nprocs) (* clocks *)
    + (t.nprocs * bs_words) (* pasts *)
    + (8 * t.nmsgs) (* msg records *)
    + (sent * (t.nprocs + bs_words)) (* stamps and send pasts *)
    + (t.nmsgs * bs_words) (* message-graph predecessors *)
    + (3 * Hashtbl.length t.next_seq)
    + Array.fold_left (fun n h -> n + (3 * Hashtbl.length h)) 0 t.dst_pending
  in
  word * words

let finalize_sync t =
  let n = t.nmsgs in
  let removed = Array.make n false in
  let indeg = Array.make n 0 in
  for y = 0 to n - 1 do
    indeg.(y) <- Bitset.cardinal t.pred.(y)
  done;
  let queue = Queue.create () in
  for y = 0 to n - 1 do
    if indeg.(y) = 0 then Queue.add y queue
  done;
  let numbering = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    numbering.(x) <- !count;
    incr count;
    removed.(x) <- true;
    for y = 0 to n - 1 do
      if (not removed.(y)) && Bitset.mem t.pred.(y) x then begin
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then Queue.add y queue
      end
    done
  done;
  if !count = n then Ok numbering
  else
    Error
      (List.filter (fun y -> not removed.(y)) (List.init n Fun.id))

let feed_run run =
  let nmsgs = Run.nmsgs run in
  let t = create ~nprocs:(Run.nprocs run) ~nmsgs in
  let violations = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.point with
      | Event.S ->
          send t ~msg:e.msg ~src:(Run.msg_src run e.msg)
            ~dst:(Run.msg_dst run e.msg)
      | Event.R -> violations := !violations @ deliver t ~msg:e.msg)
    (Run.linearize run);
  (!violations, finalize_sync t)
