(* Incremental strict partial orders with an undo log.

   The enumeration kernel pushes one edge per chosen event and pops it on
   backtrack, so reachability rows are kept as unboxed int masks (the
   universe of a run with m messages has 2m ≤ 62 vertices) and every row
   mutation is logged as a (row, previous mask) pair. Undo restores the log
   suffix in reverse, which is correct even when one row is touched by
   several pushes: the oldest logged value for the mark's suffix wins. *)

type mark = { m_log : int; m_edges : (int * int) list }

type t = {
  n : int;
  reach : int array; (* reach.(h) has bit g set iff h ▷ g, strict *)
  mutable edges : (int * int) list; (* generating edges, newest first *)
  mutable log_rows : int array;
  mutable log_vals : int array;
  mutable log_len : int;
}

let max_size = 62

let create n =
  if n < 0 then invalid_arg "Order_builder.create: negative size";
  if n > max_size then
    invalid_arg
      (Printf.sprintf "Order_builder.create: size %d exceeds %d" n max_size);
  {
    n;
    reach = Array.make n 0;
    edges = [];
    log_rows = Array.make 16 0;
    log_vals = Array.make 16 0;
    log_len = 0;
  }

let size t = t.n

let check t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Order_builder: vertex %d out of [0,%d)" v t.n)

let lt t h g =
  check t h;
  check t g;
  t.reach.(h) land (1 lsl g) <> 0

let mark t = { m_log = t.log_len; m_edges = t.edges }

let log_row t row =
  if t.log_len = Array.length t.log_rows then begin
    let cap = 2 * t.log_len in
    let rows = Array.make cap 0 and vals = Array.make cap 0 in
    Array.blit t.log_rows 0 rows 0 t.log_len;
    Array.blit t.log_vals 0 vals 0 t.log_len;
    t.log_rows <- rows;
    t.log_vals <- vals
  end;
  t.log_rows.(t.log_len) <- row;
  t.log_vals.(t.log_len) <- t.reach.(row);
  t.log_len <- t.log_len + 1

let add_edge t h g =
  check t h;
  check t g;
  if h = g || t.reach.(g) land (1 lsl h) <> 0 then `Cycle
  else if t.reach.(h) land (1 lsl g) <> 0 then
    (* already implied: nothing to close over, nothing to undo *)
    `Ok
  else begin
    (* every row that can reach h (plus h itself) now also reaches g and
       everything g reaches; g's own row is untouched because g ▷̸ h *)
    let gained = (1 lsl g) lor t.reach.(g) in
    let h_bit = 1 lsl h in
    for w = 0 to t.n - 1 do
      if w = h || t.reach.(w) land h_bit <> 0 then begin
        let old = t.reach.(w) in
        let updated = old lor gained in
        if updated <> old then begin
          log_row t w;
          t.reach.(w) <- updated
        end
      end
    done;
    t.edges <- (h, g) :: t.edges;
    `Ok
  end

let add_edge_exn t h g =
  match add_edge t h g with
  | `Ok -> ()
  | `Cycle -> invalid_arg "Order_builder.add_edge_exn: cycle"

let undo t m =
  if m.m_log > t.log_len then
    invalid_arg "Order_builder.undo: stale mark";
  for i = t.log_len - 1 downto m.m_log do
    t.reach.(t.log_rows.(i)) <- t.log_vals.(i)
  done;
  t.log_len <- m.m_log;
  t.edges <- m.m_edges

let snapshot t =
  let succ = Array.make t.n [] in
  List.iter (fun (h, g) -> succ.(h) <- g :: succ.(h)) t.edges;
  let reach =
    Array.init t.n (fun h ->
        let row = Bitset.create t.n in
        let bits = t.reach.(h) in
        for g = 0 to t.n - 1 do
          if bits land (1 lsl g) <> 0 then Bitset.add row g
        done;
        row)
  in
  Poset.of_closure_unchecked ~n:t.n ~succ ~reach

let reach_mask t h =
  check t h;
  t.reach.(h)
