type violation = { cycle : int list; reason : string }

let is_async (_ : Run.Abstract.t) = true

let check_causal r =
  let n = Run.Abstract.nmsgs r in
  let found = ref None in
  (try
     for x = 0 to n - 1 do
       for y = 0 to n - 1 do
         if
           x <> y
           && Run.Abstract.lt r (Event.send x) (Event.send y)
           && Run.Abstract.lt r (Event.deliver y) (Event.deliver x)
         then begin
           found :=
             Some
               {
                 cycle = [ x; y ];
                 reason =
                   Printf.sprintf
                     "x%d.s > x%d.s but x%d.r > x%d.r: x%d overtaken" x y y x
                     x;
               };
           raise Exit
         end
       done
     done
   with Exit -> ());
  match !found with None -> Ok () | Some v -> Error v

(* Fast membership test over the relation matrices: a causal violation is
   some x with ss.(x) ∩ rr_t.(x) ∖ {x} ≠ ∅, i.e. a y overtaken by x.
   [check_causal] above stays as the reporting (and differential-reference)
   path. *)
let is_causal r =
  let n = Run.Abstract.nmsgs r in
  if n <= 1 then true
  else
    match Run.Abstract.masks r with
    | Some mk ->
        (* packed rows: ss is section 0, rr_t section 7 *)
        let ok = ref true in
        (try
           for x = 0 to n - 1 do
             if mk.(x) land mk.((7 * n) + x) land lnot (1 lsl x) <> 0 then begin
               ok := false;
               raise Exit
             end
           done
         with Exit -> ());
        !ok
    | None ->
        let rel = Run.Abstract.relations r in
        let scratch = Bitset.create n in
        let ok = ref true in
        (try
           for x = 0 to n - 1 do
             Bitset.copy_into ~dst:scratch rel.Run.Abstract.ss.(x);
             Bitset.inter_into ~dst:scratch rel.Run.Abstract.rr_t.(x);
             Bitset.remove scratch x;
             if not (Bitset.is_empty scratch) then begin
               ok := false;
               raise Exit
             end
           done
         with Exit -> ());
        !ok

(* SYNC membership: build the message graph and attempt a topological
   numbering. A cycle in the message graph is a crown; we report it. *)
let check_sync r =
  let n = Run.Abstract.nmsgs r in
  let succ = Array.make n [] in
  List.iter
    (fun (x, y) -> succ.(x) <- y :: succ.(x))
    (Run.Abstract.message_graph r);
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun y -> indeg.(y) <- indeg.(y) + 1)) succ;
  let queue = Queue.create () in
  for x = 0 to n - 1 do
    if indeg.(x) = 0 then Queue.add x queue
  done;
  let numbering = Array.make n (-1) in
  let next = ref 0 in
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    numbering.(x) <- !next;
    incr next;
    List.iter
      (fun y ->
        indeg.(y) <- indeg.(y) - 1;
        if indeg.(y) = 0 then Queue.add y queue)
      succ.(x)
  done;
  if !next = n then Ok numbering
  else begin
    (* extract one cycle among the unnumbered messages *)
    let in_cycle x = numbering.(x) < 0 in
    let start =
      let rec find x = if in_cycle x then x else find (x + 1) in
      find 0
    in
    let visited = Array.make n (-1) in
    let rec walk x step path =
      if visited.(x) >= 0 then
        (* [path] holds the walk in reverse; the cycle is the suffix of the
           walk from the first visit of [x], i.e. the prefix of [path] up
           to and including [x], re-reversed *)
        let rec take acc = function
          | [] -> acc
          | y :: rest -> if y = x then y :: acc else take (y :: acc) rest
        in
        take [] path
      else begin
        visited.(x) <- step;
        let next_in_cycle = List.find_opt in_cycle succ.(x) in
        match next_in_cycle with
        | Some y -> walk y (step + 1) (x :: path)
        | None -> List.rev (x :: path)
      end
    in
    let cycle = walk start 0 [] in
    Error
      {
        cycle;
        reason =
          Printf.sprintf "message graph has a cycle (crown) of length %d"
            (List.length cycle);
      }
  end

(* Fast SYNC membership: Kahn over the message graph assembled as bitset
   rows (union of the four endpoint relations, self-loops dropped — sr.(x)
   always contains x via x.s ▷ x.r). [check_sync] stays as the
   witness-producing reference. *)
let is_sync r =
  let n = Run.Abstract.nmsgs r in
  if n <= 1 then true
  else
    match Run.Abstract.masks r with
    | Some mk ->
        (* message-graph rows as single ints: union of the four forward
           sections, self-bit dropped *)
        let succ =
          Array.init n (fun x ->
              (mk.(x) lor mk.(n + x) lor mk.((2 * n) + x) lor mk.((3 * n) + x))
              land lnot (1 lsl x))
        in
        let indeg = Array.make n 0 in
        Array.iter
          (fun row ->
            for y = 0 to n - 1 do
              if row land (1 lsl y) <> 0 then indeg.(y) <- indeg.(y) + 1
            done)
          succ;
        let queue = Queue.create () in
        for x = 0 to n - 1 do
          if indeg.(x) = 0 then Queue.add x queue
        done;
        let numbered = ref 0 in
        while not (Queue.is_empty queue) do
          let x = Queue.pop queue in
          incr numbered;
          let row = succ.(x) in
          for y = 0 to n - 1 do
            if row land (1 lsl y) <> 0 then begin
              indeg.(y) <- indeg.(y) - 1;
              if indeg.(y) = 0 then Queue.add y queue
            end
          done
        done;
        !numbered = n
    | None ->
        let rel = Run.Abstract.relations r in
        let succ =
          Array.init n (fun x ->
              let row = Bitset.copy rel.Run.Abstract.ss.(x) in
              Bitset.union_into ~dst:row rel.Run.Abstract.sr.(x);
              Bitset.union_into ~dst:row rel.Run.Abstract.rs.(x);
              Bitset.union_into ~dst:row rel.Run.Abstract.rr.(x);
              Bitset.remove row x;
              row)
        in
        let indeg = Array.make n 0 in
        Array.iter
          (fun row -> Bitset.iter (fun y -> indeg.(y) <- indeg.(y) + 1) row)
          succ;
        let queue = Queue.create () in
        for x = 0 to n - 1 do
          if indeg.(x) = 0 then Queue.add x queue
        done;
        let numbered = ref 0 in
        while not (Queue.is_empty queue) do
          let x = Queue.pop queue in
          incr numbered;
          Bitset.iter
            (fun y ->
              indeg.(y) <- indeg.(y) - 1;
              if indeg.(y) = 0 then Queue.add y queue)
            succ.(x)
        done;
        !numbered = n

type cls = Sync | Causal_only | Async_only

let classify r =
  if is_sync r then Sync else if is_causal r then Causal_only else Async_only

let cls_to_string = function
  | Sync -> "X_sync"
  | Causal_only -> "X_co - X_sync"
  | Async_only -> "X_async - X_co"

let pp_violation ppf v =
  Format.fprintf ppf "%s (messages %a)" v.reason
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    v.cycle
