(** Online (streaming) ordering monitors.

    The offline checkers ({!Limits}, predicate evaluation) build the full
    happened-before poset — quadratic space, fine for analysis but not for
    monitoring long executions. This module detects FIFO and causal-order
    violations {e as events arrive}, the way a deployed protocol would,
    using per-channel counters and vector clocks; the SYNC property (a
    global acyclicity condition) is checked at the end from message-graph
    edges collected along the way.

    Feed events in execution order (any linear extension of the run:
    per-process order must be respected, and a send must precede its
    delivery). The monitor is the runtime face of the paper's tagging
    story: everything it needs for FIFO/causal is exactly what the tagged
    protocols carry.

    For arbitrary forbidden predicates (and bounded memory on unbounded
    streams) see {!Monitor} and [Mo_core.Pmon], which generalize the
    FIFO/causal halves of this monitor; this one remains the cheap
    special case and the only SYNC checker. *)

type t

type violation = {
  kind : [ `Fifo | `Causal ];
  earlier : int;  (** the overtaken message *)
  later : int;  (** the message delivered too early *)
  at : int;
      (** 0-based index, in the event stream, of the delivery that
          completed the violation *)
  channel : int * int;  (** (src, dst) of the [later] message *)
}

val create : nprocs:int -> nmsgs:int -> t
(** Monitor for a run of at most [nmsgs] messages over [nprocs]
    processes. *)

val send : t -> msg:int -> src:int -> dst:int -> unit
(** Record [msg.s] executed at [src]. @raise Invalid_argument on reuse of
    a message id or out-of-range arguments. *)

val deliver : t -> msg:int -> violation list
(** Record [msg.r] executed at the destination; returns the FIFO and/or
    causal violations this delivery completes (empty list if none). The
    monitor keeps running after violations. *)

val events : t -> int
(** Events consumed so far (sends and deliveries). *)

val pending : t -> int
(** Messages sent but not yet delivered. *)

val frontier_bytes : t -> int
(** Resident bytes of the monitor state: clocks, pasts, per-message
    records and pending indices. Unlike {!Monitor.frontier_bytes} this
    grows with [nmsgs] — the SYNC check needs the whole message graph —
    which is exactly the ceiling the B15 bench makes visible. *)

val finalize_sync : t -> (int array, int list) result
(** After the run: [Ok numbering] if the run was logically synchronous
    (the SYNC numbering over messages), or [Error cycle] with a message
    cycle (crown). *)

val feed_run : Run.t -> violation list * (int array, int list) result
(** Drive the monitor with a recorded run (events in a linear extension)
    and return everything it found — the bridge used by tests to compare
    against the offline checkers. *)
