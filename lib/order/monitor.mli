(** The streaming frontier automaton behind compiled predicate monitors.

    {!Online} detects the three fixed properties (FIFO, causal, SYNC).
    This module is the predicate-{e agnostic} half of the generalized
    monitor: it consumes send/delivery events one at a time and maintains
    the {e must-happened-before} relation of the stream — the set of
    endpoint pairs [x.p ▷ y.q] that hold in {e every} completion of the
    prefix seen so far — as packed bit-matrix rows in exactly the layout
    of {!Run.Abstract.masks}. A compiled forbidden predicate evaluated
    over these rows (see [Mo_core.Eval.Masked] and [Mo_core.Pmon]) then
    flags a violation the moment a match becomes unavoidable, not when
    it is finally observed.

    Must-edges beyond the observed order come from pending deliveries:
    once [y] is sent, its delivery [y.r] is a {e virtual} event that every
    completion must execute at [dst y], so [u ▷ y.r] is unavoidable as
    soon as [u ▷ y.s] holds or [u] enters the causal past of [dst y].
    Virtual events never gain {e outgoing} edges (a completion may always
    schedule [y.r] last, touching nothing), so the relation grows
    monotonically toward the real one: when [y] is actually delivered its
    rows are completed in place. See DESIGN.md §3h for the unavoidability
    argument.

    State is a fixed {e window} of message slots: per-slot relation
    rows, per-slot causal stamps, and per-process past masks — no
    poset, no event history. Windows up to {!max_window} (62) use
    packed int rows with no per-event allocation; wider windows (up to
    {!max_wide_window}) transparently fall back to {!Bitset} rows — the
    same automaton, update for update, at a constant factor's cost.
    Delivered messages are retired oldest-first when the window fills, so
    resident memory is a constant of [(window, nprocs)], independent of
    stream length. Retirement bounds what the monitor can match:
    detection is exact for matches whose messages are simultaneously
    resident (always true when [window >= nmsgs], the differential-test
    configuration). A send arriving while every slot holds an undelivered
    message raises [Invalid_argument] — size the window above the per-key
    in-flight bound. *)

type t

val max_window : int
(** 62: one slot per bit of an OCaml int, as {!Run.Abstract.masks} —
    the widest {e packed} window. Larger windows are served by the
    Bitset representation. *)

val max_wide_window : int
(** 4096: the widest window of the Bitset fallback. *)

val create : ?window:int -> ?wide:bool -> nprocs:int -> unit -> t
(** [window] defaults to 32. Windows above {!max_window} get the Bitset
    representation ({!is_wide}); [wide:true] forces it at any window —
    how the differential tests drive both representations over one
    stream ([wide:false] cannot override the width-mandated fallback).
    @raise Invalid_argument if [window] is outside
    [1 .. max_wide_window] or [nprocs <= 0]. *)

val window : t -> int

val nprocs : t -> int

val events : t -> int
(** Events consumed so far. *)

val pending : t -> int
(** Messages sent but not yet delivered (resident, by construction). *)

val retired : t -> int
(** Delivered messages whose slots have been recycled. *)

val send : t -> msg:int -> src:int -> dst:int -> ?color:int -> unit -> unit
(** Record [msg.s] at [src]. Message ids are arbitrary ints, unique per
    stream. [color] (default none) feeds [color(x) = c] guards.
    @raise Invalid_argument on a duplicate or out-of-range argument, or
    when the window is exhausted (every slot pending). *)

val deliver : t -> msg:int -> unit
(** Record [msg.r] at the destination given at send time.
    @raise Invalid_argument if [msg] is unknown (never sent, or already
    retired) or already delivered. *)

(** {1 The matcher's view}

    Read-only access for predicate evaluation; the arrays are owned by
    the monitor and mutated by {!send}/{!deliver}. Slots are assigned in
    arrival order and recycled, so a slot index is only meaningful
    between events. A monitor exposes exactly one representation:
    {!masks}/{!live} when packed, {!wide_rel}/{!wide_live} when wide —
    dispatch on {!is_wide}. *)

val is_wide : t -> bool
(** [true] when the window exceeds {!max_window} and the state lives in
    Bitset rows. *)

val live : t -> int
(** Bit mask of occupied slots.
    @raise Invalid_argument on a wide monitor. *)

val masks : t -> int array
(** The eight must-relation sections over slots, row [x] of relation [k]
    at index [k * window + x], in the {!Run.Abstract.masks} order
    [ss sr rs rr ss_t sr_t rs_t rr_t].
    @raise Invalid_argument on a wide monitor. *)

val wide_live : t -> Bitset.t
(** Occupied slots of a wide monitor.
    @raise Invalid_argument on a packed monitor. *)

val wide_rel : t -> Bitset.t array
(** The eight must-relation sections of a wide monitor as Bitset rows,
    indexed exactly as {!masks}.
    @raise Invalid_argument on a packed monitor. *)

val slot_src : t -> int array
(** Per-slot sending process ([-1] on free slots). *)

val slot_dst : t -> int array

val slot_color : t -> int array
(** Per-slot color, [-1] when the send carried none. *)

val slot_msg : t -> int -> int
(** The message id held by an occupied slot. *)

val slot_delivered : t -> int -> bool

val frontier_bytes : t -> int
(** Resident bytes of the frontier state — the windows, stamps, and
    per-process masks. A constant of [(window, nprocs)]: feeding more
    events never grows it (the B15 memory-ceiling bar). *)
