type attrs = { src : int option; dst : int option; color : int option }

let no_attrs = { src = None; dst = None; color = None }

let attrs_known ~src ~dst ?color () =
  { src = Some src; dst = Some dst; color }

module Abstract = struct
  type relations = {
    ss : Bitset.t array;
    sr : Bitset.t array;
    rs : Bitset.t array;
    rr : Bitset.t array;
    ss_t : Bitset.t array;
    sr_t : Bitset.t array;
    rs_t : Bitset.t array;
    rr_t : Bitset.t array;
  }

  type t = {
    nmsgs : int;
    po_l : Poset.t Lazy.t;
        (* lazy so the enumeration kernel can hand over only the packed
           closure masks; forced on the first event-level query *)
    attrs : attrs array;
    mutable rels : relations option; (* Bitset view, computed on first use *)
    mutable masks : int array option;
        (* packed relation rows: row x of relation k at index k*nmsgs + x,
           in the order ss sr rs rr ss_t sr_t rs_t rr_t. Only when
           nmsgs <= 62; computed on first use unless supplied by the
           enumeration kernel. *)
  }

  let create ~nmsgs ?attrs edges =
    let attrs =
      match attrs with
      | Some a ->
          if Array.length a <> nmsgs then
            invalid_arg "Run.Abstract.create: attrs length mismatch";
          a
      | None -> Array.make nmsgs no_attrs
    in
    let implicit =
      List.init nmsgs (fun m ->
          (Event.encode (Event.send m), Event.encode (Event.deliver m)))
    in
    let encoded =
      List.map (fun (h, g) -> (Event.encode h, Event.encode g)) edges
    in
    match Poset.of_edges (2 * nmsgs) (implicit @ encoded) with
    | None -> None
    | Some po ->
        Some
          { nmsgs; po_l = Lazy.from_val po; attrs; rels = None; masks = None }

  let create_exn ~nmsgs ?attrs edges =
    match create ~nmsgs ?attrs edges with
    | Some t -> t
    | None -> invalid_arg "Run.Abstract.create_exn: not a partial order"

  let nmsgs t = t.nmsgs

  let attrs t m =
    if m < 0 || m >= t.nmsgs then invalid_arg "Run.Abstract.attrs";
    t.attrs.(m)

  let poset t = Lazy.force t.po_l

  (* capacity of the packed int-mask representation: one bit per message
     per row, so it carries runs of up to 62 messages (every enumerable
     universe; the bench harness's synthetic multi-thousand-message runs
     fall back to the Bitset view) *)
  let max_mask_msgs = 62

  (* De-interleave the event-level reachability rows into the four msg×msg
     endpoint relations (plus their transposes, sections 4-7). Even
     vertices are sends, odd ones deliveries (see Event.encode). *)
  let build_masks t =
    let n = t.nmsgs in
    let masks = Array.make (8 * n) 0 in
    let po = poset t in
    for u = 0 to (2 * n) - 1 do
      let x = u lsr 1 in
      let base = if u land 1 = 0 then 0 else 2 in
      Poset.iter_above po u (fun v ->
          let y = v lsr 1 in
          let k = base + (v land 1) in
          masks.((k * n) + x) <- masks.((k * n) + x) lor (1 lsl y);
          masks.(((k + 4) * n) + y) <-
            masks.(((k + 4) * n) + y) lor (1 lsl x))
    done;
    masks

  let masks t =
    match t.masks with
    | Some _ as m -> m
    | None ->
        if t.nmsgs > max_mask_msgs then None
        else begin
          let m = build_masks t in
          t.masks <- Some m;
          Some m
        end

  (* reconstruct the event-level order from the packed masks: the closure
     is already known, so the "generators" are the closure edges
     themselves (Poset only needs them acyclic, not reduced) *)
  let poset_of_masks ~nmsgs masks =
    let n2 = 2 * nmsgs in
    let succ = Array.make n2 [] in
    let reach = Array.init n2 (fun _ -> Bitset.create n2) in
    for u = 0 to n2 - 1 do
      let x = u lsr 1 in
      let base = if u land 1 = 0 then 0 else 2 in
      let sbits = masks.((base * nmsgs) + x)
      and rbits = masks.(((base + 1) * nmsgs) + x) in
      let row = reach.(u) in
      let out = ref [] in
      for y = nmsgs - 1 downto 0 do
        if rbits land (1 lsl y) <> 0 then begin
          Bitset.add row ((2 * y) + 1);
          out := ((2 * y) + 1) :: !out
        end;
        if sbits land (1 lsl y) <> 0 then begin
          Bitset.add row (2 * y);
          out := (2 * y) :: !out
        end
      done;
      succ.(u) <- !out
    done;
    Poset.of_closure_unchecked ~n:n2 ~succ ~reach

  (* Trusted constructor for the enumeration kernel: [masks] must be the
     packed relation rows of a complete run's order. The poset view is
     rebuilt lazily from the masks if ever queried. *)
  let of_masks ~nmsgs ~attrs masks =
    if nmsgs > max_mask_msgs then invalid_arg "Run.Abstract.of_masks: too big";
    if Array.length attrs <> nmsgs then
      invalid_arg "Run.Abstract.of_masks: attrs length mismatch";
    if Array.length masks <> 8 * nmsgs then
      invalid_arg "Run.Abstract.of_masks: masks length mismatch";
    {
      nmsgs;
      po_l = lazy (poset_of_masks ~nmsgs masks);
      attrs;
      rels = None;
      masks = Some masks;
    }

  let relations t =
    match t.rels with
    | Some r -> r
    | None ->
        let n = t.nmsgs in
        let r =
          match masks t with
          | Some mk ->
              let section k =
                Array.init n (fun x ->
                    let bits = mk.((k * n) + x) in
                    let row = Bitset.create n in
                    for y = 0 to n - 1 do
                      if bits land (1 lsl y) <> 0 then Bitset.add row y
                    done;
                    row)
              in
              {
                ss = section 0;
                sr = section 1;
                rs = section 2;
                rr = section 3;
                ss_t = section 4;
                sr_t = section 5;
                rs_t = section 6;
                rr_t = section 7;
              }
          | None ->
              (* > 62 messages: build the Bitset view off the poset *)
              let mk () = Array.init n (fun _ -> Bitset.create n) in
              let ss = mk ()
              and sr = mk ()
              and rs = mk ()
              and rr = mk ()
              and ss_t = mk ()
              and sr_t = mk ()
              and rs_t = mk ()
              and rr_t = mk () in
              let po = poset t in
              for u = 0 to (2 * n) - 1 do
                let x = u lsr 1 in
                let u_send = u land 1 = 0 in
                Poset.iter_above po u (fun v ->
                    let y = v lsr 1 in
                    match (u_send, v land 1 = 0) with
                    | true, true ->
                        Bitset.add ss.(x) y;
                        Bitset.add ss_t.(y) x
                    | true, false ->
                        Bitset.add sr.(x) y;
                        Bitset.add sr_t.(y) x
                    | false, true ->
                        Bitset.add rs.(x) y;
                        Bitset.add rs_t.(y) x
                    | false, false ->
                        Bitset.add rr.(x) y;
                        Bitset.add rr_t.(y) x)
              done;
              { ss; sr; rs; rr; ss_t; sr_t; rs_t; rr_t }
        in
        t.rels <- Some r;
        r

  let lt t h g = Poset.lt (poset t) (Event.encode h) (Event.encode g)

  let concurrent t h g =
    Poset.concurrent (poset t) (Event.encode h) (Event.encode g)

  let message_graph t =
    let acc = ref [] in
    for x = 0 to t.nmsgs - 1 do
      for y = 0 to t.nmsgs - 1 do
        if x <> y then
          let precedes =
            List.exists
              (fun (h, f) -> lt t h f)
              [
                (Event.send x, Event.send y);
                (Event.send x, Event.deliver y);
                (Event.deliver x, Event.send y);
                (Event.deliver x, Event.deliver y);
              ]
          in
          if precedes then acc := (x, y) :: !acc
      done
    done;
    List.rev !acc

  let events t =
    List.init (2 * t.nmsgs) Event.decode

  let attrs_equal a b = a.src = b.src && a.dst = b.dst && a.color = b.color

  let equal a b =
    a.nmsgs = b.nmsgs
    && Poset.relation_equal (poset a) (poset b)
    && Array.for_all2 attrs_equal a.attrs b.attrs

  let pp ppf t =
    Format.fprintf ppf "@[<v>run(%d msgs):" t.nmsgs;
    List.iter
      (fun (h, g) ->
        Format.fprintf ppf "@ %a -> %a" Event.pp (Event.decode h) Event.pp
          (Event.decode g))
      (Poset.covers (poset t));
    Format.fprintf ppf "@]"
end

type t = {
  nprocs : int;
  msgs : (int * int) array;
  colors : int option array;
  seq : Event.t list array;
  po : Poset.t;
}

type schedule_entry = Do_send of int | Do_deliver of int

let validate_placement ~nprocs ~msgs seq =
  let nmsgs = Array.length msgs in
  let seen = Array.make (2 * nmsgs) false in
  let err = ref None in
  let set_err s = if !err = None then err := Some s in
  Array.iteri
    (fun p events ->
      List.iter
        (fun (e : Event.t) ->
          if e.msg < 0 || e.msg >= nmsgs then
            set_err (Printf.sprintf "event of unknown message %d" e.msg)
          else begin
            let src, dst = msgs.(e.msg) in
            (match e.point with
            | Event.S ->
                if p <> src then
                  set_err
                    (Printf.sprintf "x%d.s on process %d, expected src %d"
                       e.msg p src)
            | Event.R ->
                if p <> dst then
                  set_err
                    (Printf.sprintf "x%d.r on process %d, expected dst %d"
                       e.msg p dst));
            let i = Event.encode e in
            if seen.(i) then
              set_err (Format.asprintf "duplicate event %a" Event.pp e)
            else seen.(i) <- true
          end)
        events)
    seq;
  Array.iteri
    (fun i (src, dst) ->
      if src < 0 || src >= nprocs || dst < 0 || dst >= nprocs then
        set_err (Printf.sprintf "message %d has endpoint out of range" i);
      if not seen.(Event.encode (Event.send i)) then
        set_err (Printf.sprintf "x%d.s missing (incomplete run)" i);
      if not seen.(Event.encode (Event.deliver i)) then
        set_err (Printf.sprintf "x%d.r missing (incomplete run)" i))
    msgs;
  !err

let build_poset ~msgs seq =
  let nmsgs = Array.length msgs in
  let edges = ref [] in
  Array.iter
    (fun events ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
            edges := (Event.encode a, Event.encode b) :: !edges;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain events)
    seq;
  for m = 0 to nmsgs - 1 do
    edges :=
      (Event.encode (Event.send m), Event.encode (Event.deliver m)) :: !edges
  done;
  Poset.of_edges (2 * nmsgs) !edges

let of_sequences ~nprocs ~msgs ?colors seq =
  if Array.length seq <> nprocs then
    invalid_arg "Run.of_sequences: sequence array length <> nprocs";
  let colors =
    match colors with
    | Some c ->
        if Array.length c <> Array.length msgs then
          invalid_arg "Run.of_sequences: colors length mismatch";
        c
    | None -> Array.make (Array.length msgs) None
  in
  match validate_placement ~nprocs ~msgs seq with
  | Some e -> Error e
  | None -> (
      match build_poset ~msgs seq with
      | None -> Error "process sequences induce a cyclic order"
      | Some po -> Ok { nprocs; msgs; colors; seq; po })

let of_enumeration ~nprocs ~msgs ?colors ~po seq =
  let colors =
    match colors with
    | Some c ->
        if Array.length c <> Array.length msgs then
          invalid_arg "Run.of_enumeration: colors length mismatch";
        c
    | None -> Array.make (Array.length msgs) None
  in
  if Array.length seq <> nprocs then
    invalid_arg "Run.of_enumeration: sequence array length <> nprocs";
  if Poset.size po <> 2 * Array.length msgs then
    invalid_arg "Run.of_enumeration: poset size <> 2 * nmsgs";
  { nprocs; msgs; colors; seq; po }

let of_schedule ~nprocs ~msgs ?colors sched =
  let nmsgs = Array.length msgs in
  let sent = Array.make nmsgs false in
  let seq_rev = Array.make nprocs [] in
  let err = ref None in
  List.iter
    (fun entry ->
      if !err = None then
        match entry with
        | Do_send m ->
            if m < 0 || m >= nmsgs then
              err := Some (Printf.sprintf "send of unknown message %d" m)
            else begin
              sent.(m) <- true;
              let src, _ = msgs.(m) in
              seq_rev.(src) <- Event.send m :: seq_rev.(src)
            end
        | Do_deliver m ->
            if m < 0 || m >= nmsgs then
              err := Some (Printf.sprintf "deliver of unknown message %d" m)
            else if not sent.(m) then
              err :=
                Some
                  (Printf.sprintf "x%d.r scheduled before x%d.s (spurious)" m
                     m)
            else
              let _, dst = msgs.(m) in
              seq_rev.(dst) <- Event.deliver m :: seq_rev.(dst))
    sched;
  match !err with
  | Some e -> Error e
  | None ->
      of_sequences ~nprocs ~msgs ?colors (Array.map List.rev seq_rev)

let nprocs t = t.nprocs

let nmsgs t = Array.length t.msgs

let msg_src t m = fst t.msgs.(m)

let msg_dst t m = snd t.msgs.(m)

let msg_color t m = t.colors.(m)

let sequence t i =
  if i < 0 || i >= t.nprocs then invalid_arg "Run.sequence";
  t.seq.(i)

let lt t h g = Poset.lt t.po (Event.encode h) (Event.encode g)

let concurrent t h g = Poset.concurrent t.po (Event.encode h) (Event.encode g)

let to_abstract t =
  let nmsgs = Array.length t.msgs in
  let attrs =
    Array.init nmsgs (fun m ->
        let src, dst = t.msgs.(m) in
        { src = Some src; dst = Some dst; color = t.colors.(m) })
  in
  (* the concrete order already lives on Event.encode'd vertices and
     includes every x.s ▷ x.r edge, so the abstract view can share the
     poset instead of rebuilding its closure *)
  {
    Abstract.nmsgs;
    po_l = Lazy.from_val t.po;
    attrs;
    rels = None;
    masks = None;
  }

let linearize t =
  let cursors = Array.copy t.seq in
  let sent = Array.make (Array.length t.msgs) false in
  let out = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun p events ->
        match events with
        | (e : Event.t) :: rest -> (
            match e.point with
            | Event.S ->
                sent.(e.msg) <- true;
                out := e :: !out;
                cursors.(p) <- rest;
                progress := true
            | Event.R ->
                if sent.(e.msg) then begin
                  out := e :: !out;
                  cursors.(p) <- rest;
                  progress := true
                end)
        | [] -> ())
      cursors
  done;
  (* a valid run always drains: every delivery's send is in some sequence *)
  assert (Array.for_all (fun c -> c = []) cursors);
  List.rev !out

let linearize_random t ~seed =
  let rng = Random.State.make [| 0x6d6f6c72; seed |] in
  let cursors = Array.copy t.seq in
  let sent = Array.make (Array.length t.msgs) false in
  let total = Array.fold_left (fun n l -> n + List.length l) 0 t.seq in
  let enabled = Array.make (max t.nprocs 1) 0 in
  let out = ref [] in
  for _ = 1 to total do
    let n = ref 0 in
    Array.iteri
      (fun p events ->
        match events with
        | ({ point = Event.S; _ } : Event.t) :: _ ->
            enabled.(!n) <- p;
            incr n
        | { point = Event.R; msg } :: _ when sent.(msg) ->
            enabled.(!n) <- p;
            incr n
        | _ -> ())
      cursors;
    (* a valid run always has an enabled event until it drains *)
    assert (!n > 0);
    let p = enabled.(Random.State.int rng !n) in
    match cursors.(p) with
    | [] -> assert false
    | (e : Event.t) :: rest ->
        if e.point = Event.S then sent.(e.msg) <- true;
        out := e :: !out;
        cursors.(p) <- rest
  done;
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun p events ->
      Format.fprintf ppf "P%d: @[<h>%a@]@ " p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Event.pp)
        events)
    t.seq;
  Format.fprintf ppf "@]"
