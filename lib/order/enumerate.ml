let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: rest ->
      (x :: y :: rest)
      :: List.map (fun l -> y :: l) (insert_everywhere x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)

let runs ~nprocs ~msgs =
  let nmsgs = Array.length msgs in
  let events_of p =
    let acc = ref [] in
    for m = nmsgs - 1 downto 0 do
      let src, dst = msgs.(m) in
      (* deliveries first so sends tend to come first after List.rev-free
         permutation enumeration; order is irrelevant for completeness *)
      if dst = p then acc := Event.deliver m :: !acc;
      if src = p then acc := Event.send m :: !acc
    done;
    !acc
  in
  let per_proc = Array.init nprocs (fun p -> permutations (events_of p)) in
  let acc = ref [] in
  let seq = Array.make nprocs [] in
  let rec product p =
    if p = nprocs then begin
      match Run.of_sequences ~nprocs ~msgs (Array.copy seq) with
      | Ok r -> acc := r :: !acc
      | Error _ -> ()
    end
    else
      List.iter
        (fun order ->
          seq.(p) <- order;
          product (p + 1))
        per_proc.(p)
  in
  product 0;
  List.rev !acc

let count_runs ~nprocs ~msgs = List.length (runs ~nprocs ~msgs)

let configs ?(allow_self = false) ~nprocs ~nmsgs () =
  let endpoints =
    List.concat_map
      (fun s -> List.init nprocs (fun d -> (s, d)))
      (List.init nprocs Fun.id)
    |> List.filter (fun (s, d) -> allow_self || s <> d)
  in
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun e -> List.map (fun l -> e :: l) rest) endpoints
  in
  List.map Array.of_list (go nmsgs)

let all_runs ?allow_self ~nprocs ~nmsgs () =
  List.concat_map
    (fun msgs -> runs ~nprocs ~msgs)
    (configs ?allow_self ~nprocs ~nmsgs ())

let abstract_runs ?allow_self ~nprocs ~nmsgs () =
  List.map Run.to_abstract (all_runs ?allow_self ~nprocs ~nmsgs ())

let fold_runs_par ~pool ?allow_self ~nprocs ~nmsgs ~init ~f ~merge () =
  (* shard by enumeration prefix: one task per message configuration, the
     outermost loop of [all_runs]. Each task folds its configuration's
     runs in the sequential enumeration order; the pool merges the partial
     accumulators in configuration order, so the reduction visits run
     results exactly as the sequential [all_runs] fold would — counts and
     even ordered collections come out byte-identical for every job
     count. Runs are materialized one configuration at a time, never the
     whole universe. *)
  let cfgs = Array.of_list (configs ?allow_self ~nprocs ~nmsgs ()) in
  Mo_par.Pool.fold pool (Array.length cfgs)
    ~f:(fun i -> List.fold_left f init (runs ~nprocs ~msgs:cfgs.(i)))
    ~merge ~init
