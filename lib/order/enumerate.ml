let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: rest ->
      (x :: y :: rest)
      :: List.map (fun l -> y :: l) (insert_everywhere x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)

(* Per-process events in canonical order: message index ascending, send
   before delivery (both only land on one process when src = dst). *)
let events_of ~nmsgs ~msgs p =
  let acc = ref [] in
  for m = nmsgs - 1 downto 0 do
    let src, dst = msgs.(m) in
    if dst = p then acc := Event.deliver m :: !acc;
    if src = p then acc := Event.send m :: !acc
  done;
  !acc

(* The backtracking kernel. One Order_builder carries the happened-before
   closure across the whole configuration: it starts with the x.s ▷ x.r
   edge of every message, and placing an event as the next step of its
   process pushes one program-order edge (undone on backtrack). Runs that
   share an enumeration prefix share all closure work for that prefix, and
   cyclic placements are pruned as soon as the offending edge is pushed
   instead of after a full from-scratch closure in Run.of_sequences.

   [leaf ~seq ~builder] is called once per complete run; [seq] holds each
   process's chosen order (valid only for the duration of the call) and
   [builder] the live closure of exactly that run's order. *)
let enum ~nprocs ~msgs ~leaf =
  let nmsgs = Array.length msgs in
  let valid =
    Array.for_all
      (fun (src, dst) -> src >= 0 && src < nprocs && dst >= 0 && dst < nprocs)
      msgs
  in
  if valid then begin
    let b = Order_builder.create (2 * nmsgs) in
    for m = 0 to nmsgs - 1 do
      Order_builder.add_edge_exn b
        (Event.encode (Event.send m))
        (Event.encode (Event.deliver m))
    done;
    let evs =
      Array.init nprocs (fun p ->
          Array.of_list (events_of ~nmsgs ~msgs p))
    in
    let nev = Array.map Array.length evs in
    let used = Array.map (fun e -> Array.make (Array.length e) false) evs in
    let chosen =
      Array.map (fun e -> Array.make (Array.length e) (Event.send 0)) evs
    in
    let rec proc p =
      if p = nprocs then leaf ~seq:chosen ~builder:b else place p 0 (-1)
    and place p i prev =
      if i = nev.(p) then proc (p + 1)
      else
        for j = 0 to nev.(p) - 1 do
          if not used.(p).(j) then begin
            let e = evs.(p).(j) in
            let enc = Event.encode e in
            let m = Order_builder.mark b in
            let ok = prev < 0 || Order_builder.add_edge b prev enc = `Ok in
            if ok then begin
              used.(p).(j) <- true;
              chosen.(p).(i) <- e;
              place p (i + 1) enc;
              used.(p).(j) <- false
            end;
            Order_builder.undo b m
          end
        done
    in
    proc 0
  end

let fold_runs ~nprocs ~msgs ~init ~f =
  let acc = ref init in
  enum ~nprocs ~msgs ~leaf:(fun ~seq ~builder ->
      let r =
        Run.of_enumeration ~nprocs ~msgs
          ~po:(Order_builder.snapshot builder)
          (Array.map Array.to_list seq)
      in
      acc := f !acc r);
  !acc

let iter_runs ~nprocs ~msgs f =
  enum ~nprocs ~msgs ~leaf:(fun ~seq ~builder ->
      f
        (Run.of_enumeration ~nprocs ~msgs
           ~po:(Order_builder.snapshot builder)
           (Array.map Array.to_list seq)))

let runs ~nprocs ~msgs =
  List.rev (fold_runs ~nprocs ~msgs ~init:[] ~f:(fun acc r -> r :: acc))

let count_runs ~nprocs ~msgs =
  (* leaves are counted off the live closure: no snapshot, no Run value *)
  let n = ref 0 in
  enum ~nprocs ~msgs ~leaf:(fun ~seq:_ ~builder:_ -> incr n);
  !n

(* De-interleave a builder's event-level reach rows into Run.Abstract's
   packed msg×msg masks (rows ss sr rs rr, then their transposes). Valid
   on partial closures too: the projection of whatever edges are present. *)
let masks_of_builder ~nmsgs b =
  let masks = Array.make (8 * nmsgs) 0 in
  for u = 0 to (2 * nmsgs) - 1 do
    let x = u lsr 1 in
    let base = if u land 1 = 0 then 0 else 2 in
    let row = Order_builder.reach_mask b u in
    let sm = ref 0 and rm = ref 0 in
    for y = 0 to nmsgs - 1 do
      if row land (1 lsl (2 * y)) <> 0 then sm := !sm lor (1 lsl y);
      if row land (1 lsl ((2 * y) + 1)) <> 0 then rm := !rm lor (1 lsl y)
    done;
    masks.((base * nmsgs) + x) <- !sm;
    masks.(((base + 1) * nmsgs) + x) <- !rm
  done;
  for k = 0 to 3 do
    let fwd = k * nmsgs and bwd = (k + 4) * nmsgs in
    for x = 0 to nmsgs - 1 do
      let bits = masks.(fwd + x) and xb = 1 lsl x in
      for y = 0 to nmsgs - 1 do
        if bits land (1 lsl y) <> 0 then
          masks.(bwd + y) <- masks.(bwd + y) lor xb
      done
    done
  done;
  masks

let shared_attrs msgs =
  Array.map (fun (src, dst) -> Run.attrs_known ~src ~dst ()) msgs

(* The abstract fast path: de-interleave the builder's event-level reach
   rows straight into Run.Abstract's packed msg×msg masks at each leaf —
   no poset snapshot, no concrete Run.t, no per-run attrs. All runs of a
   configuration share one attrs array (the records are immutable). *)
let fold_abstracts ~nprocs ~msgs ~init ~f =
  let nmsgs = Array.length msgs in
  let attrs = shared_attrs msgs in
  let acc = ref init in
  enum ~nprocs ~msgs ~leaf:(fun ~seq:_ ~builder ->
      acc :=
        f !acc
          (Run.Abstract.of_masks ~nmsgs ~attrs (masks_of_builder ~nmsgs builder)));
  !acc

(* The pre-kernel reference enumerator: materialized per-process
   permutations, a filtered product, and a from-scratch closure per
   candidate in Run.of_sequences. Kept verbatim as the differential
   baseline for the incremental kernel (test/test_eval_fast.ml) and as the
   "before" arm of bench B14. Note the two enumerators agree on the *set*
   of runs but emit them in different orders. *)
let runs_ref ~nprocs ~msgs =
  let nmsgs = Array.length msgs in
  let per_proc =
    Array.init nprocs (fun p -> permutations (events_of ~nmsgs ~msgs p))
  in
  let acc = ref [] in
  let seq = Array.make nprocs [] in
  let rec product p =
    if p = nprocs then begin
      match Run.of_sequences ~nprocs ~msgs (Array.copy seq) with
      | Ok r -> acc := r :: !acc
      | Error _ -> ()
    end
    else
      List.iter
        (fun order ->
          seq.(p) <- order;
          product (p + 1))
        per_proc.(p)
  in
  product 0;
  List.rev !acc

let configs ?(allow_self = false) ~nprocs ~nmsgs () =
  let endpoints =
    List.concat_map
      (fun s -> List.init nprocs (fun d -> (s, d)))
      (List.init nprocs Fun.id)
    |> List.filter (fun (s, d) -> allow_self || s <> d)
  in
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun e -> List.map (fun l -> e :: l) rest) endpoints
  in
  List.map Array.of_list (go nmsgs)

let all_runs ?allow_self ~nprocs ~nmsgs () =
  List.concat_map
    (fun msgs -> runs ~nprocs ~msgs)
    (configs ?allow_self ~nprocs ~nmsgs ())

let abstract_runs ?allow_self ~nprocs ~nmsgs () =
  List.rev
    (List.fold_left
       (fun acc msgs ->
         fold_abstracts ~nprocs ~msgs ~init:acc ~f:(fun acc r -> r :: acc))
       []
       (configs ?allow_self ~nprocs ~nmsgs ()))

let fold_runs_par ~pool ?allow_self ~nprocs ~nmsgs ~init ~f ~merge () =
  (* shard by enumeration prefix: one task per message configuration, the
     outermost loop of [all_runs]. Each task folds its configuration's
     runs in the sequential enumeration order; the pool merges the partial
     accumulators in configuration order, so the reduction visits run
     results exactly as the sequential [all_runs] fold would — counts and
     even ordered collections come out byte-identical for every job
     count. Runs are streamed off the backtracking kernel one at a time,
     never materialized per configuration. *)
  let cfgs = Array.of_list (configs ?allow_self ~nprocs ~nmsgs ()) in
  Mo_par.Pool.fold pool (Array.length cfgs)
    ~f:(fun i -> fold_runs ~nprocs ~msgs:cfgs.(i) ~init ~f)
    ~merge ~init

let fold_abstracts_par ~pool ?allow_self ~nprocs ~nmsgs ~init ~f ~merge () =
  (* same sharding and merge order as [fold_runs_par], with the abstract
     fast path at the leaves *)
  let cfgs = Array.of_list (configs ?allow_self ~nprocs ~nmsgs ()) in
  Mo_par.Pool.fold pool (Array.length cfgs)
    ~f:(fun i -> fold_abstracts ~nprocs ~msgs:cfgs.(i) ~init ~f)
    ~merge ~init

(* ------------------------------------------------------------------ *)
(* Symmetry quotients (DESIGN.md §3j). Two nested, exact quotients:

   Across configurations — [configs] is closed under process renaming,
   and every classification verdict is invariant under it (predicate
   guards are src/dst equality tests, lattice membership and the
   causal/sync limits are purely structural), so the model checker only
   needs one representative per renaming orbit, weighted by the orbit's
   size. Orbit sizes come out of orbit-stabilizer (|orbit| =
   nprocs!/|Stab|); here we obtain them by direct counting while
   canonicalizing, which is the same number without needing the
   stabilizer explicitly. [configs_sym] additionally identifies configs
   that differ only in message *order*: relabeling messages maps runs to
   runs bijectively and no predicate can observe the labels (quantifiers
   range over message tuples, attrs travel with the relabeling).

   Within a configuration — messages with identical (src, dst) are
   interchangeable: permuting them inside their class maps runs to runs
   and preserves every verdict. That action is free (two distinct
   messages give the permuted run a different send order somewhere),
   so each orbit has exactly [sym_mult] runs and exactly one canonical
   representative: the run in which each class's send events appear in
   message-index order in the sender's sequence. *)

let proc_perms nprocs =
  List.map Array.of_list (permutations (List.init nprocs Fun.id))

let rename_config pi msgs = Array.map (fun (s, d) -> (pi.(s), pi.(d))) msgs

let sym_mult ~msgs =
  (* ∏ over interchangeability classes of |class|!, computed as: the c-th
     copy of an endpoint pair contributes a factor c *)
  let n = Array.length msgs in
  let mult = ref 1 in
  for m = 0 to n - 1 do
    let c = ref 1 in
    for m' = 0 to m - 1 do
      if msgs.(m') = msgs.(m) then incr c
    done;
    mult := !mult * !c
  done;
  !mult

(* Group a (config, weight) stream by canonical key, preserving
   first-seen order so enumeration order is deterministic. *)
let group_by_canon canon stream =
  let counts = Hashtbl.create 97 in
  let order = ref [] in
  List.iter
    (fun (msgs, w) ->
      let key = canon msgs in
      match Hashtbl.find_opt counts key with
      | None ->
          Hashtbl.add counts key w;
          order := key :: !order
      | Some n -> Hashtbl.replace counts key (n + w))
    stream;
  List.rev_map (fun key -> (key, Hashtbl.find counts key)) !order

let configs_quotient ?allow_self ~nprocs ~nmsgs () =
  (* quotient by process renaming only; representative = lex-least
     renamed config, multiplicity = orbit size among ordered configs *)
  let perms = proc_perms nprocs in
  let canon msgs =
    List.fold_left
      (fun best pi ->
        let c = rename_config pi msgs in
        match best with Some b when compare b c <= 0 -> best | _ -> Some c)
      None perms
    |> Option.get
  in
  group_by_canon canon
    (List.map (fun c -> (c, 1)) (configs ?allow_self ~nprocs ~nmsgs ()))

(* All sorted configs (non-decreasing endpoint pairs) with the count of
   ordered configs each stands for: nmsgs!/∏(run lengths!). Iterating
   these instead of the full product is what keeps canonicalization cheap
   at vast sizes. *)
let sorted_configs ?(allow_self = false) ~nprocs ~nmsgs () =
  let endpoints =
    List.concat_map
      (fun s -> List.init nprocs (fun d -> (s, d)))
      (List.init nprocs Fun.id)
    |> List.filter (fun (s, d) -> allow_self || s <> d)
    |> Array.of_list
  in
  let ne = Array.length endpoints in
  let fact = Array.make (nmsgs + 1) 1 in
  for i = 1 to nmsgs do
    fact.(i) <- fact.(i - 1) * i
  done;
  if nmsgs = 0 then [ ([||], 1) ]
  else begin
    let acc = ref [] in
    let idx = Array.make nmsgs 0 in
    let rec go k lo =
      if k = nmsgs then begin
        let mult = ref fact.(nmsgs) in
        let i = ref 0 in
        while !i < nmsgs do
          let j = ref !i in
          while !j < nmsgs && idx.(!j) = idx.(!i) do
            incr j
          done;
          mult := !mult / fact.(!j - !i);
          i := !j
        done;
        acc := (Array.map (fun i -> endpoints.(i)) idx, !mult) :: !acc
      end
      else
        for e = lo to ne - 1 do
          idx.(k) <- e;
          go (k + 1) e
        done
    in
    go 0 0;
    List.rev !acc
  end

let configs_sym ?allow_self ~nprocs ~nmsgs () =
  (* quotient by process renaming × message reorder; representative =
     lex-least sorted renamed config, multiplicity = number of ordered
     configs whose run sets are isomorphic to the representative's *)
  let perms = proc_perms nprocs in
  let canon msgs =
    List.fold_left
      (fun best pi ->
        let c = rename_config pi msgs in
        Array.sort compare c;
        match best with Some b when compare b c <= 0 -> best | _ -> Some c)
      None perms
    |> Option.get
  in
  group_by_canon canon (sorted_configs ?allow_self ~nprocs ~nmsgs ())

(* ------------------------------------------------------------------ *)
(* The canonical-representative kernel. Same backtracking shape as
   [enum], with three additions:

   - σ symmetry breaking: event j of process p is placeable only once
     [need.(p).(j)] ⊆ used — the earlier send events of j's
     interchangeability class — so exactly the canonical run of each
     σ-orbit survives the search; non-canonical subtrees are pruned at
     the choice point, never generated and filtered.

   - decided-subtree pruning: at each process boundary, an optional
     [prune = (decided, on_pruned)] inspects the *partial* closure's
     abstract projection. [decided] must be monotone — closures only
     grow along a branch, so once it answers true it stays true on every
     completion — and when it fires the whole subtree collapses into one
     [on_pruned ~runs:n] callback, where n canonical completions are
     counted without building their abstracts.

   - memoized completion counting: the count of canonical completions
     from a boundary depends only on (next process, reach rows) — the
     closure determines every future cycle check and the need masks are
     static — so counts are cached in a bounded direct-mapped table
     keyed on that packed signature. Collisions overwrite; soundness
     comes from the structural key comparison, the bound keeps memory
     flat per configuration. *)

let sig_tbl_size = 1 lsl 12

let enum_sym ~nprocs ~msgs ~prune ~leaf =
  let nmsgs = Array.length msgs in
  let valid =
    Array.for_all
      (fun (src, dst) -> src >= 0 && src < nprocs && dst >= 0 && dst < nprocs)
      msgs
  in
  if valid then begin
    let b = Order_builder.create (2 * nmsgs) in
    for m = 0 to nmsgs - 1 do
      Order_builder.add_edge_exn b
        (Event.encode (Event.send m))
        (Event.encode (Event.deliver m))
    done;
    let evs =
      Array.init nprocs (fun p -> Array.of_list (events_of ~nmsgs ~msgs p))
    in
    let nev = Array.map Array.length evs in
    let enc = Array.map (Array.map Event.encode) evs in
    let need =
      Array.init nprocs (fun p ->
          Array.init nev.(p) (fun j ->
              let ej = enc.(p).(j) in
              if ej land 1 = 1 then 0
              else begin
                let m = ej lsr 1 in
                let mask = ref 0 in
                for j' = 0 to nev.(p) - 1 do
                  let e' = enc.(p).(j') in
                  if e' land 1 = 0 && e' lsr 1 < m && msgs.(e' lsr 1) = msgs.(m)
                  then mask := !mask lor (1 lsl j')
                done;
                !mask
              end))
    in
    let used = Array.make nprocs 0 in
    let attrs = shared_attrs msgs in
    let abstract () =
      Run.Abstract.of_masks ~nmsgs ~attrs (masks_of_builder ~nmsgs b)
    in
    let keys = Array.make sig_tbl_size [||] in
    let vals = Array.make sig_tbl_size 0 in
    let signature p =
      let key = Array.make (1 + (2 * nmsgs)) p in
      for u = 0 to (2 * nmsgs) - 1 do
        key.(u + 1) <- Order_builder.reach_mask b u
      done;
      key
    in
    let rec count_proc p =
      if p = nprocs then 1
      else begin
        let key = signature p in
        let h = ref 0 in
        Array.iter (fun x -> h := ((!h * 0x01000193) lxor x) land max_int) key;
        let slot = !h land (sig_tbl_size - 1) in
        if keys.(slot) = key then vals.(slot)
        else begin
          let n = count_place p 0 (-1) in
          keys.(slot) <- key;
          vals.(slot) <- n;
          n
        end
      end
    and count_place p i prev =
      if i = nev.(p) then count_proc (p + 1)
      else begin
        let total = ref 0 in
        let u = used.(p) in
        for j = 0 to nev.(p) - 1 do
          if u land (1 lsl j) = 0 && need.(p).(j) land lnot u = 0 then begin
            let e = enc.(p).(j) in
            let m = Order_builder.mark b in
            let ok = prev < 0 || Order_builder.add_edge b prev e = `Ok in
            if ok then begin
              used.(p) <- u lor (1 lsl j);
              total := !total + count_place p (i + 1) e;
              used.(p) <- u
            end;
            Order_builder.undo b m
          end
        done;
        !total
      end
    in
    let rec proc p =
      if p = nprocs then leaf (abstract ())
      else begin
        let handled =
          match prune with
          | Some (decided, on_pruned) ->
              let a = abstract () in
              if decided a then begin
                let n = count_proc p in
                if n > 0 then on_pruned ~runs:n a;
                true
              end
              else false
          | None -> false
        in
        if not handled then place p 0 (-1)
      end
    and place p i prev =
      if i = nev.(p) then proc (p + 1)
      else begin
        let u = used.(p) in
        for j = 0 to nev.(p) - 1 do
          if u land (1 lsl j) = 0 && need.(p).(j) land lnot u = 0 then begin
            let e = enc.(p).(j) in
            let m = Order_builder.mark b in
            let ok = prev < 0 || Order_builder.add_edge b prev e = `Ok in
            if ok then begin
              used.(p) <- u lor (1 lsl j);
              place p (i + 1) e;
              used.(p) <- u
            end;
            Order_builder.undo b m
          end
        done
      end
    in
    proc 0
  end

let fold_abstracts_sym ~nprocs ~msgs ?prune ~init ~f () =
  let acc = ref init in
  let prune =
    Option.map
      (fun (decided, on_pruned) ->
        (decided, fun ~runs a -> acc := on_pruned !acc ~runs a))
      prune
  in
  enum_sym ~nprocs ~msgs ~prune ~leaf:(fun a -> acc := f !acc a);
  !acc

let count_runs_sym ~nprocs ~msgs =
  (* the always-true prune collapses the whole configuration into one
     memoized count at the p = 0 boundary; no leaf is ever enumerated *)
  let n = ref 0 in
  enum_sym ~nprocs ~msgs
    ~prune:(Some ((fun _ -> true), fun ~runs _ -> n := !n + runs))
    ~leaf:(fun _ -> ());
  !n * sym_mult ~msgs

let fold_abstracts_sym_par ~pool ?allow_self ~nprocs ~nmsgs ?prune ~init ~f
    ~merge () =
  (* shard by canonical-representative config (the quotiented enumeration
     prefix); merge in representative order, so aggregates are
     byte-identical at every job count *)
  let cfgs = Array.of_list (configs_sym ?allow_self ~nprocs ~nmsgs ()) in
  Mo_par.Pool.fold pool (Array.length cfgs)
    ~f:(fun i ->
      let msgs, cmult = cfgs.(i) in
      let mult = cmult * sym_mult ~msgs in
      let prune =
        Option.map
          (fun (decided, on_pruned) ->
            (decided, fun acc ~runs a -> on_pruned acc ~mult ~runs a))
          prune
      in
      fold_abstracts_sym ~nprocs ~msgs ?prune ~init
        ~f:(fun acc a -> f acc ~mult a)
        ())
    ~merge ~init
