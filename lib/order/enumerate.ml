let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: rest ->
      (x :: y :: rest)
      :: List.map (fun l -> y :: l) (insert_everywhere x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)

(* Per-process events in canonical order: message index ascending, send
   before delivery (both only land on one process when src = dst). *)
let events_of ~nmsgs ~msgs p =
  let acc = ref [] in
  for m = nmsgs - 1 downto 0 do
    let src, dst = msgs.(m) in
    if dst = p then acc := Event.deliver m :: !acc;
    if src = p then acc := Event.send m :: !acc
  done;
  !acc

(* The backtracking kernel. One Order_builder carries the happened-before
   closure across the whole configuration: it starts with the x.s ▷ x.r
   edge of every message, and placing an event as the next step of its
   process pushes one program-order edge (undone on backtrack). Runs that
   share an enumeration prefix share all closure work for that prefix, and
   cyclic placements are pruned as soon as the offending edge is pushed
   instead of after a full from-scratch closure in Run.of_sequences.

   [leaf ~seq ~builder] is called once per complete run; [seq] holds each
   process's chosen order (valid only for the duration of the call) and
   [builder] the live closure of exactly that run's order. *)
let enum ~nprocs ~msgs ~leaf =
  let nmsgs = Array.length msgs in
  let valid =
    Array.for_all
      (fun (src, dst) -> src >= 0 && src < nprocs && dst >= 0 && dst < nprocs)
      msgs
  in
  if valid then begin
    let b = Order_builder.create (2 * nmsgs) in
    for m = 0 to nmsgs - 1 do
      Order_builder.add_edge_exn b
        (Event.encode (Event.send m))
        (Event.encode (Event.deliver m))
    done;
    let evs =
      Array.init nprocs (fun p ->
          Array.of_list (events_of ~nmsgs ~msgs p))
    in
    let nev = Array.map Array.length evs in
    let used = Array.map (fun e -> Array.make (Array.length e) false) evs in
    let chosen =
      Array.map (fun e -> Array.make (Array.length e) (Event.send 0)) evs
    in
    let rec proc p =
      if p = nprocs then leaf ~seq:chosen ~builder:b else place p 0 (-1)
    and place p i prev =
      if i = nev.(p) then proc (p + 1)
      else
        for j = 0 to nev.(p) - 1 do
          if not used.(p).(j) then begin
            let e = evs.(p).(j) in
            let enc = Event.encode e in
            let m = Order_builder.mark b in
            let ok = prev < 0 || Order_builder.add_edge b prev enc = `Ok in
            if ok then begin
              used.(p).(j) <- true;
              chosen.(p).(i) <- e;
              place p (i + 1) enc;
              used.(p).(j) <- false
            end;
            Order_builder.undo b m
          end
        done
    in
    proc 0
  end

let fold_runs ~nprocs ~msgs ~init ~f =
  let acc = ref init in
  enum ~nprocs ~msgs ~leaf:(fun ~seq ~builder ->
      let r =
        Run.of_enumeration ~nprocs ~msgs
          ~po:(Order_builder.snapshot builder)
          (Array.map Array.to_list seq)
      in
      acc := f !acc r);
  !acc

let iter_runs ~nprocs ~msgs f =
  enum ~nprocs ~msgs ~leaf:(fun ~seq ~builder ->
      f
        (Run.of_enumeration ~nprocs ~msgs
           ~po:(Order_builder.snapshot builder)
           (Array.map Array.to_list seq)))

let runs ~nprocs ~msgs =
  List.rev (fold_runs ~nprocs ~msgs ~init:[] ~f:(fun acc r -> r :: acc))

let count_runs ~nprocs ~msgs =
  (* leaves are counted off the live closure: no snapshot, no Run value *)
  let n = ref 0 in
  enum ~nprocs ~msgs ~leaf:(fun ~seq:_ ~builder:_ -> incr n);
  !n

(* The abstract fast path: de-interleave the builder's event-level reach
   rows straight into Run.Abstract's packed msg×msg masks at each leaf —
   no poset snapshot, no concrete Run.t, no per-run attrs. All runs of a
   configuration share one attrs array (the records are immutable). *)
let fold_abstracts ~nprocs ~msgs ~init ~f =
  let nmsgs = Array.length msgs in
  let attrs =
    Array.init nmsgs (fun m ->
        let src, dst = msgs.(m) in
        Run.attrs_known ~src ~dst ())
  in
  let acc = ref init in
  enum ~nprocs ~msgs ~leaf:(fun ~seq:_ ~builder ->
      let masks = Array.make (8 * nmsgs) 0 in
      for u = 0 to (2 * nmsgs) - 1 do
        let x = u lsr 1 in
        let base = if u land 1 = 0 then 0 else 2 in
        let row = Order_builder.reach_mask builder u in
        let sm = ref 0 and rm = ref 0 in
        for y = 0 to nmsgs - 1 do
          if row land (1 lsl (2 * y)) <> 0 then sm := !sm lor (1 lsl y);
          if row land (1 lsl ((2 * y) + 1)) <> 0 then rm := !rm lor (1 lsl y)
        done;
        masks.((base * nmsgs) + x) <- !sm;
        masks.(((base + 1) * nmsgs) + x) <- !rm
      done;
      for k = 0 to 3 do
        let fwd = k * nmsgs and bwd = (k + 4) * nmsgs in
        for x = 0 to nmsgs - 1 do
          let bits = masks.(fwd + x) and xb = 1 lsl x in
          for y = 0 to nmsgs - 1 do
            if bits land (1 lsl y) <> 0 then
              masks.(bwd + y) <- masks.(bwd + y) lor xb
          done
        done
      done;
      acc := f !acc (Run.Abstract.of_masks ~nmsgs ~attrs masks));
  !acc

(* The pre-kernel reference enumerator: materialized per-process
   permutations, a filtered product, and a from-scratch closure per
   candidate in Run.of_sequences. Kept verbatim as the differential
   baseline for the incremental kernel (test/test_eval_fast.ml) and as the
   "before" arm of bench B14. Note the two enumerators agree on the *set*
   of runs but emit them in different orders. *)
let runs_ref ~nprocs ~msgs =
  let nmsgs = Array.length msgs in
  let per_proc =
    Array.init nprocs (fun p -> permutations (events_of ~nmsgs ~msgs p))
  in
  let acc = ref [] in
  let seq = Array.make nprocs [] in
  let rec product p =
    if p = nprocs then begin
      match Run.of_sequences ~nprocs ~msgs (Array.copy seq) with
      | Ok r -> acc := r :: !acc
      | Error _ -> ()
    end
    else
      List.iter
        (fun order ->
          seq.(p) <- order;
          product (p + 1))
        per_proc.(p)
  in
  product 0;
  List.rev !acc

let configs ?(allow_self = false) ~nprocs ~nmsgs () =
  let endpoints =
    List.concat_map
      (fun s -> List.init nprocs (fun d -> (s, d)))
      (List.init nprocs Fun.id)
    |> List.filter (fun (s, d) -> allow_self || s <> d)
  in
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun e -> List.map (fun l -> e :: l) rest) endpoints
  in
  List.map Array.of_list (go nmsgs)

let all_runs ?allow_self ~nprocs ~nmsgs () =
  List.concat_map
    (fun msgs -> runs ~nprocs ~msgs)
    (configs ?allow_self ~nprocs ~nmsgs ())

let abstract_runs ?allow_self ~nprocs ~nmsgs () =
  List.rev
    (List.fold_left
       (fun acc msgs ->
         fold_abstracts ~nprocs ~msgs ~init:acc ~f:(fun acc r -> r :: acc))
       []
       (configs ?allow_self ~nprocs ~nmsgs ()))

let fold_runs_par ~pool ?allow_self ~nprocs ~nmsgs ~init ~f ~merge () =
  (* shard by enumeration prefix: one task per message configuration, the
     outermost loop of [all_runs]. Each task folds its configuration's
     runs in the sequential enumeration order; the pool merges the partial
     accumulators in configuration order, so the reduction visits run
     results exactly as the sequential [all_runs] fold would — counts and
     even ordered collections come out byte-identical for every job
     count. Runs are streamed off the backtracking kernel one at a time,
     never materialized per configuration. *)
  let cfgs = Array.of_list (configs ?allow_self ~nprocs ~nmsgs ()) in
  Mo_par.Pool.fold pool (Array.length cfgs)
    ~f:(fun i -> fold_runs ~nprocs ~msgs:cfgs.(i) ~init ~f)
    ~merge ~init

let fold_abstracts_par ~pool ?allow_self ~nprocs ~nmsgs ~init ~f ~merge () =
  (* same sharding and merge order as [fold_runs_par], with the abstract
     fast path at the leaves *)
  let cfgs = Array.of_list (configs ?allow_self ~nprocs ~nmsgs ()) in
  Mo_par.Pool.fold pool (Array.length cfgs)
    ~f:(fun i -> fold_abstracts ~nprocs ~msgs:cfgs.(i) ~init ~f)
    ~merge ~init
