(** The platform seam of the parallel engine: real domains on OCaml 5,
    inline execution on OCaml 4.14.

    Which implementation backs this interface is decided by the build (see
    the dune rules next to this file); {!available} lets callers decide at
    runtime whether parallelism is real. Everything above this module —
    the pool, the deques, the ports — is version-agnostic. *)

val available : bool
(** [true] when {!spawn} creates a real domain that runs concurrently;
    [false] when it runs the thunk inline (OCaml 4.14). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5, [1] otherwise. *)

type 'a handle

val spawn : (unit -> 'a) -> 'a handle
(** On OCaml 4.14 the thunk runs inline, to completion, before [spawn]
    returns — callers must not rely on concurrent progress. *)

val join : 'a handle -> 'a

val cpu_relax : unit -> unit
(** A pause hint inside spin loops; a no-op on 4.14. *)
