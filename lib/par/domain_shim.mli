(** The platform seam of the parallel engine: real domains on OCaml 5,
    inline execution on OCaml 4.14.

    Which implementation backs this interface is decided by the build (see
    the dune rules next to this file); {!available} lets callers decide at
    runtime whether parallelism is real. Everything above this module —
    the pool, the deques, the ports — is version-agnostic. *)

val available : bool
(** [true] when {!spawn} creates a real domain that runs concurrently;
    [false] when it runs the thunk inline (OCaml 4.14). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5, [1] otherwise. *)

type 'a handle

val spawn : (unit -> 'a) -> 'a handle
(** On OCaml 4.14 the thunk runs inline, to completion, before [spawn]
    returns — callers must not rely on concurrent progress. *)

val join : 'a handle -> 'a

val cpu_relax : unit -> unit
(** A pause hint inside spin loops; a no-op on 4.14. *)

(** A mutual-exclusion lock: a real [Mutex] on OCaml 5, a no-op token on
    4.14 (where there is exactly one thread of control, so exclusion is
    vacuous). *)
module Lock : sig
  type t

  val create : unit -> t

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Runs the thunk holding the lock; always releases, even on raise. *)
end

(** A persistent task pool: [jobs] long-lived worker domains draining a
    shared FIFO queue on OCaml 5; on 4.14 [submit] runs the task inline
    before returning (the jobs=1 schedule). *)
module Workers : sig
  type t

  val create : jobs:int -> t
  (** @raise Invalid_argument if [jobs < 1]. *)

  val jobs : t -> int

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a task. Exceptions escaping a task are swallowed (workers
      never die); tasks that care must catch their own. Submitting after
      {!shutdown} raises [Invalid_argument]. *)

  val shutdown : t -> unit
  (** Stop accepting work, drain the queue, join the workers. Idempotent. *)
end
