let available = Domain_shim.available
let recommended_jobs () = Domain_shim.recommended_jobs ()

let default_jobs () =
  match Option.bind (Sys.getenv_opt "MO_JOBS") int_of_string_opt with
  | Some j when j >= 1 -> j
  | Some _ | None -> if available then Domain_shim.recommended_jobs () else 1

module Lock = Domain_shim.Lock
module Workers = Domain_shim.Workers

let rng ~seed ~stream =
  (* distinct constants keep (seed, stream) pairs from aliasing
     (seed+1, stream-1); SplitMix-style odd multipliers *)
  Random.State.make [| 0x6d6f5061; seed; stream * 0x9e3779b9; stream |]

(* A fixed-backlog work-stealing deque: chunk ids are dealt out at
   creation, the owner pops from the bottom, thieves take from the top.
   Nothing is ever pushed after start, so "empty" is permanent and
   termination is a single sweep over all deques. A spinlock (one atomic
   per deque) is plenty at chunk granularity — claims are rare and
   microseconds apart; the atomic also provides the happens-before edge
   for the plain [top]/[bottom] fields under the OCaml 5 memory model. *)
module Deque = struct
  type t = {
    chunks : int array;
    mutable top : int; (* next index thieves take *)
    mutable bottom : int; (* one past the owner's end *)
    busy : bool Atomic.t;
  }

  let make chunks =
    { chunks; top = 0; bottom = Array.length chunks; busy = Atomic.make false }

  let locked d f =
    while not (Atomic.compare_and_set d.busy false true) do
      Domain_shim.cpu_relax ()
    done;
    let r = f d in
    Atomic.set d.busy false;
    r

  let pop d =
    locked d (fun d ->
        if d.top < d.bottom then begin
          d.bottom <- d.bottom - 1;
          Some d.chunks.(d.bottom)
        end
        else None)

  let steal d =
    locked d (fun d ->
        if d.top < d.bottom then begin
          let c = d.chunks.(d.top) in
          d.top <- d.top + 1;
          Some c
        end
        else None)
end

module Pool = struct
  type t = { jobs : int }

  let create ?jobs () =
    let j = match jobs with Some j -> j | None -> default_jobs () in
    if j < 1 then invalid_arg "Mo_par.Pool.create: jobs must be >= 1";
    { jobs = (if available then j else 1) }

  let jobs t = t.jobs

  let chunk_bounds ~n ~chunk c = (c * chunk, min n ((c + 1) * chunk) - 1)

  let map t ?chunk n ~f =
    if n < 0 then invalid_arg "Par.Pool.map: negative size";
    let jobs = min t.jobs (max 1 n) in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Par.Pool.map: chunk must be >= 1"
      | None -> max 1 ((n + (jobs * 8) - 1) / (jobs * 8))
    in
    if n = 0 then [||]
    else if jobs = 1 then Array.init n f
    else begin
      let nchunks = (n + chunk - 1) / chunk in
      let results = Array.make n None in
      (* block-deal the chunks: worker w owns a contiguous range, so its
         own pops walk the index space in order and stealing only kicks
         in when a neighbour's range was cheaper than predicted *)
      let deques =
        Array.init jobs (fun w ->
            let lo = w * nchunks / jobs and hi = (w + 1) * nchunks / jobs in
            (* owner pops from the bottom: store the range reversed so its
               first pop is its lowest chunk id *)
            Deque.make (Array.init (hi - lo) (fun i -> hi - 1 - i)))
      in
      let failure = Atomic.make None in
      let worker w () =
        (* try self first (pop), then the other deques round-robin (steal);
           nothing is ever re-enqueued, so a full empty sweep terminates *)
        let rec claim k =
          if k = jobs then None
          else
            let v = (w + k) mod jobs in
            match
              if v = w then Deque.pop deques.(v) else Deque.steal deques.(v)
            with
            | Some c -> Some c
            | None -> claim (k + 1)
        in
        let rec loop () =
          if Atomic.get failure <> None then ()
          else match claim 0 with None -> () | Some c -> run c
        and run c =
          let lo, hi = chunk_bounds ~n ~chunk c in
          (try
             for i = lo to hi do
               results.(i) <- Some (f i)
             done
           with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        in
        loop ()
      in
      let handles =
        List.init (jobs - 1) (fun k -> Domain_shim.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter Domain_shim.join handles;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end

  let fold t ?chunk n ~f ~merge ~init =
    Array.fold_left merge init (map t ?chunk n ~f)
end
