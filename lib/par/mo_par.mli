(** Parallel execution over OCaml 5 domains, with deterministic results.

    The engine behind the exhaustive explorers, the fault-matrix suite and
    the bench sweeps. Work is split into contiguous {e chunks} of an index
    range; each worker owns a deque of chunks and steals from the others
    when its own runs dry. Results are keyed by item index and merged in
    index order, so the outcome is a pure function of [(n, f)] — which
    domain computed which chunk is invisible. On OCaml 4.14 (no domains)
    the pool runs the same chunk schedule inline; [jobs] is forced to 1.

    Determinism contract: for any [f] free of shared mutable state,
    [map pool n ~f] and [fold pool n ~f ~merge ~init] return the same
    value for every job count and chunk size, byte for byte. This is what
    lets `--jobs N` change wall-clock time and nothing else. *)

val available : bool
(** Whether real domains back the pool (OCaml >= 5.0). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the host's usable core count
    (1 on OCaml 4.14). Recorded by the bench artifacts so the regression
    gate knows whether two timing runs are comparable. *)

val default_jobs : unit -> int
(** The [MO_JOBS] environment variable when set to a positive integer,
    otherwise {!recommended_jobs} (1 on OCaml 4.14). *)

val rng : seed:int -> stream:int -> Random.State.t
(** An independent PRNG stream: deterministic in [(seed, stream)] and
    decorrelated across streams. Shard work by stream id — never share
    one [Random.State] between domains. *)

(** A mutual-exclusion lock: a real mutex when domains are available, a
    no-op token on OCaml 4.14 (one thread of control — exclusion is
    vacuous). The striped service cache guards each stripe with one. *)
module Lock : sig
  type t

  val create : unit -> t

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Runs the thunk holding the lock; always releases, even on raise. *)
end

(** A persistent dispatch pool: [jobs] long-lived worker domains
    draining one FIFO task queue — the engine behind the mopcd accept
    loop, where tasks are whole connections rather than index ranges
    (use {!Pool} for data-parallel maps with deterministic merges; use
    this for long-running independent tasks). On OCaml 4.14 [submit]
    runs the task inline before returning — the jobs=1 schedule. *)
module Workers : sig
  type t

  val create : jobs:int -> t
  (** Spawns the worker domains immediately.
      @raise Invalid_argument if [jobs < 1]. *)

  val jobs : t -> int
  (** 1 when domains are unavailable. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a task; any idle worker picks it up in FIFO order.
      Exceptions escaping the task are swallowed — workers never die;
      tasks that care must catch their own. Submitting after
      {!shutdown} raises [Invalid_argument]. *)

  val shutdown : t -> unit
  (** Stop accepting work, run everything still queued, join the
      workers. Blocks until in-flight and queued tasks finish.
      Idempotent. *)
end

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** [jobs] defaults to {!default_jobs}; forced to 1 when domains are
      unavailable. @raise Invalid_argument if [jobs < 1]. *)

  val jobs : t -> int

  val map : t -> ?chunk:int -> int -> f:(int -> 'a) -> 'a array
  (** [map t n ~f] is [[| f 0; …; f (n-1) |]], computed by up to [jobs]
      domains over chunks of [chunk] consecutive indices (default: an
      8-chunks-per-worker split). [f] runs off the main domain: it must
      not touch shared mutable state, raise to communicate, or call back
      into the pool. The first exception raised by any [f] is re-raised
      in the caller after all workers join. *)

  val fold :
    t ->
    ?chunk:int ->
    int ->
    f:(int -> 'a) ->
    merge:('b -> 'a -> 'b) ->
    init:'b ->
    'b
  (** [List.fold_left merge init [f 0; …; f (n-1)]], with the [f]s
      evaluated in parallel and [merge] applied on the caller's domain in
      index order — order-independent reductions are not required, ordered
      ones stay ordered. *)
end
