let available = true

let recommended_jobs () = Domain.recommended_domain_count ()

type 'a handle = 'a Domain.t

let spawn = Domain.spawn

let join = Domain.join

let cpu_relax = Domain.cpu_relax

module Lock = struct
  type t = Mutex.t

  let create () = Mutex.create ()

  let with_lock m f =
    Mutex.lock m;
    match f () with
    | v ->
        Mutex.unlock m;
        v
    | exception e ->
        Mutex.unlock m;
        raise e
end

module Workers = struct
  type t = {
    jobs : int;
    queue : (unit -> unit) Queue.t;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable closing : bool;
    mutable handles : unit Domain.t list;
  }

  (* classic bounded-worker loop: wait while the queue is empty and the
     pool is open; run everything still queued before honoring a close,
     so shutdown drains rather than drops *)
  let worker t () =
    let rec next () =
      Mutex.lock t.m;
      let rec claim () =
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.m;
            Some task
        | None ->
            if t.closing then begin
              Mutex.unlock t.m;
              None
            end
            else begin
              Condition.wait t.nonempty t.m;
              claim ()
            end
      in
      match claim () with
      | None -> ()
      | Some task ->
          (try task () with _ -> ());
          next ()
    in
    next ()

  let create ~jobs =
    if jobs < 1 then invalid_arg "Workers.create: jobs must be >= 1";
    let t =
      {
        jobs;
        queue = Queue.create ();
        m = Mutex.create ();
        nonempty = Condition.create ();
        closing = false;
        handles = [];
      }
    in
    t.handles <- List.init jobs (fun _ -> Domain.spawn (worker t));
    t

  let jobs t = t.jobs

  let submit t task =
    Mutex.lock t.m;
    if t.closing then begin
      Mutex.unlock t.m;
      invalid_arg "Workers.submit: pool is shut down"
    end;
    Queue.push task t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let shutdown t =
    Mutex.lock t.m;
    let fresh = not t.closing in
    t.closing <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    if fresh then begin
      List.iter Domain.join t.handles;
      t.handles <- []
    end
end
