let available = true

let recommended_jobs () = Domain.recommended_domain_count ()

type 'a handle = 'a Domain.t

let spawn = Domain.spawn

let join = Domain.join

let cpu_relax = Domain.cpu_relax
