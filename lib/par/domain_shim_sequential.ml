(* OCaml 4.14 fallback: no domains, so a "spawned" computation simply runs
   inline. The pool degrades to a sequential left-to-right sweep — exactly
   the jobs=1 schedule, which the determinism suite pins as the reference
   result for every job count. *)

let available = false

let recommended_jobs () = 1

type 'a handle = 'a

let spawn f = f ()

let join h = h

let cpu_relax () = ()

module Lock = struct
  type t = unit

  let create () = ()

  let with_lock () f = f ()
end

module Workers = struct
  (* no domains: a task runs inline at submit, which is exactly the
     jobs=1 schedule the determinism suites pin *)
  type t = { mutable closing : bool }

  let create ~jobs =
    if jobs < 1 then invalid_arg "Workers.create: jobs must be >= 1";
    { closing = false }

  let jobs _ = 1

  let submit t task =
    if t.closing then invalid_arg "Workers.submit: pool is shut down";
    try task () with _ -> ()

  let shutdown t = t.closing <- true
end
