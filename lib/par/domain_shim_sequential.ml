(* OCaml 4.14 fallback: no domains, so a "spawned" computation simply runs
   inline. The pool degrades to a sequential left-to-right sweep — exactly
   the jobs=1 schedule, which the determinism suite pins as the reference
   result for every job count. *)

let available = false

let recommended_jobs () = 1

type 'a handle = 'a

let spawn f = f ()

let join h = h

let cpu_relax () = ()
