type config = {
  socket_path : string;
  cache_capacity : int;
  jobs : int option;
  max_frame : int;
  recv_timeout_s : float;
  max_conn_requests : int;
}

let default_config ~socket_path =
  {
    socket_path;
    cache_capacity = 4096;
    jobs = None;
    max_frame = Codec.default_max_frame;
    recv_timeout_s = 10.;
    max_conn_requests = 10_000;
  }

let log fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "mopcd: %s\n%!" s) fmt

(* a socket file left behind by a kill-9'd daemon would make bind fail
   forever; but blindly unlinking would steal the socket from a live
   daemon. Probe with a connect: refused means nobody is listening (the
   file is a corpse, remove it); accepted or queued means a live daemon
   owns it (refuse to start). *)
let remove_stale_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match
          Unix.set_nonblock probe;
          Unix.connect probe (Unix.ADDR_UNIX path)
        with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
        | exception
            Unix.Unix_error
              ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* connect pending or the listen queue is full: either way,
               someone is listening *)
            `Live
        | exception Unix.Unix_error (e, _, _) ->
            `Error (Unix.error_message e)
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      match verdict with
      | `Gone -> Ok ()
      | `Stale -> (
          log "removing stale socket %s" path;
          match Unix.unlink path with
          | () -> Ok ()
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
          | exception Unix.Unix_error (e, _, _) ->
              Error
                (Printf.sprintf "cannot remove stale socket %s: %s" path
                   (Unix.error_message e)))
      | `Live ->
          Error
            (Printf.sprintf "socket %s is in use by a live daemon" path)
      | `Error e ->
          Error (Printf.sprintf "cannot probe socket %s: %s" path e))
  | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message e))

(* serve one connection; returns [true] when a shutdown was requested *)
let serve_connection cfg engine conn =
  (try
     Unix.setsockopt_float conn Unix.SO_RCVTIMEO cfg.recv_timeout_s;
     Unix.setsockopt_float conn Unix.SO_SNDTIMEO cfg.recv_timeout_s
   with Unix.Unix_error _ -> ());
  let r = Codec.reader conn in
  let shutdown = ref false in
  let rec loop served =
    match Codec.read_frame ~max_len:cfg.max_frame r with
    | Ok None -> ()
    | Error e ->
        (* framing is broken: answer if possible, then hang up *)
        (try Codec.write_frame conn (Codec.error_response ~id:0 e)
         with Unix.Unix_error _ | Sys_error _ -> ());
        log "closing connection: %s" e
    | Ok (Some json) ->
        let received = Unix.gettimeofday () in
        let resp, wants_shutdown = Engine.serve_json engine ~received json in
        Codec.write_frame conn resp;
        if wants_shutdown then shutdown := true
        else if served + 1 >= cfg.max_conn_requests then
          (* request budget spent: hang up so the accept loop gets back
             to the other clients waiting in the listen queue *)
          log "closing connection: served %d requests" (served + 1)
        else loop (served + 1)
  in
  (try loop 0 with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      log "closing connection: read timeout"
  | Unix.Unix_error (e, _, _) ->
      log "closing connection: %s" (Unix.error_message e)
  | Sys_error e -> log "closing connection: %s" e);
  (try Unix.close conn with Unix.Unix_error _ -> ());
  !shutdown

let run ?engine ?(on_ready = fun () -> ()) cfg =
  let engine =
    match engine with
    | Some e -> e
    | None ->
        let pool =
          match cfg.jobs with
          | Some j -> Mo_par.Pool.create ~jobs:j ()
          | None -> Mo_par.Pool.create ()
        in
        Engine.create ~cache_capacity:cfg.cache_capacity ~pool ()
  in
  let stop = ref false in
  let previous =
    List.map
      (fun sg ->
        (sg, Sys.signal sg (Sys.Signal_handle (fun _ -> stop := true))))
      [ Sys.sigint; Sys.sigterm ]
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
    List.iter (fun (sg, h) -> Sys.set_signal sg h) previous;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  (try
     (match remove_stale_socket cfg.socket_path with
     | Ok () -> ()
     | Error e -> failwith e);
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen fd 64
   with e ->
     (* don't let the cleanup unlink a live daemon's socket: we never
        bound it *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     List.iter (fun (sg, h) -> Sys.set_signal sg h) previous;
     Sys.set_signal Sys.sigpipe prev_pipe;
     raise e);
  on_ready ();
  while not !stop do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept fd with
        | conn, _ ->
            if
              try serve_connection cfg engine conn
              with e ->
                log "connection handler died: %s" (Printexc.to_string e);
                false
            then stop := true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  cleanup ()
