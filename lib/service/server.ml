type transport = Uds of string | Tcp of string * int

module Metrics = Mo_obs.Metrics

type config = {
  transport : transport;
  cache_capacity : int;
  stripes : int;
  jobs : int option;
  max_frame : int;
  recv_timeout_s : float;
  max_conn_requests : int;
  pipeline_depth : int;
  persist : string option;
  persist_interval_s : float option;
}

let default_config ~socket_path =
  {
    transport = Uds socket_path;
    cache_capacity = 4096;
    stripes = 8;
    jobs = None;
    max_frame = Codec.default_max_frame;
    recv_timeout_s = 10.;
    max_conn_requests = 10_000;
    pipeline_depth = 64;
    persist = None;
    persist_interval_s = None;
  }

let log fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "mopcd: %s\n%!" s) fmt

(* a socket file left behind by a kill-9'd daemon would make bind fail
   forever; but blindly unlinking would steal the socket from a live
   daemon. Probe with a connect: refused means nobody is listening (the
   file is a corpse, remove it); accepted or queued means a live daemon
   owns it (refuse to start). *)
let remove_stale_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match
          Unix.set_nonblock probe;
          Unix.connect probe (Unix.ADDR_UNIX path)
        with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
        | exception
            Unix.Unix_error
              ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* connect pending or the listen queue is full: either way,
               someone is listening *)
            `Live
        | exception Unix.Unix_error (e, _, _) ->
            `Error (Unix.error_message e)
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      match verdict with
      | `Gone -> Ok ()
      | `Stale -> (
          log "removing stale socket %s" path;
          match Unix.unlink path with
          | () -> Ok ()
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
          | exception Unix.Unix_error (e, _, _) ->
              Error
                (Printf.sprintf "cannot remove stale socket %s: %s" path
                   (Unix.error_message e)))
      | `Live ->
          Error
            (Printf.sprintf "socket %s is in use by a live daemon" path)
      | `Error e ->
          Error (Printf.sprintf "cannot probe socket %s: %s" path e))
  | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message e))

(* Open-connection registry: the stop path unblocks workers parked in a
   blocking read by shutting their sockets down ([Unix.shutdown] makes
   the read return EOF). Every operation holds the one lock, so a
   worker's close can never race the sweep into shutting down a freshly
   reused descriptor. *)
module Registry = struct
  type t = {
    lock : Mo_par.Lock.t;
    tbl : (int, Unix.file_descr) Hashtbl.t;
    mutable next : int;
  }

  let create () =
    { lock = Mo_par.Lock.create (); tbl = Hashtbl.create 16; next = 0 }

  let add t fd =
    Mo_par.Lock.with_lock t.lock (fun () ->
        let id = t.next in
        t.next <- id + 1;
        Hashtbl.replace t.tbl id fd;
        id)

  let close t id fd =
    Mo_par.Lock.with_lock t.lock (fun () ->
        Hashtbl.remove t.tbl id;
        try Unix.close fd with Unix.Unix_error _ -> ())

  let shutdown_all t =
    Mo_par.Lock.with_lock t.lock (fun () ->
        Hashtbl.iter
          (fun _ fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.tbl)
end

(* serve one connection, pipelined; returns [true] when a top-level
   shutdown request was admitted *)
let serve_connection cfg engine conn =
  (try
     Unix.setsockopt_float conn Unix.SO_RCVTIMEO cfg.recv_timeout_s;
     Unix.setsockopt_float conn Unix.SO_SNDTIMEO cfg.recv_timeout_s
   with Unix.Unix_error _ -> ());
  (match cfg.transport with
  | Tcp _ -> (
      try Unix.setsockopt conn Unix.TCP_NODELAY true
      with Unix.Unix_error _ -> ())
  | Uds _ -> ());
  let r = Codec.reader conn in
  let shutdown = ref false in
  let hangup e =
    (* framing is broken: answer if possible, then hang up *)
    (try Codec.write_frame conn (Codec.error_response ~id:0 e)
     with Unix.Unix_error _ | Sys_error _ -> ());
    log "closing connection: %s" e
  in
  let rec loop served =
    match Codec.read_frame ~max_len:cfg.max_frame r with
    | Ok None -> ()
    | Error e -> hangup e
    | Ok (Some json) ->
        let received = Unix.gettimeofday () in
        (* decode-ahead: pick up the frames that already arrived (up to
           [pipeline_depth] and the connection's remaining request
           budget) so their distinct cache misses compute in parallel —
           responses still go out in request order, in one write *)
        let budget =
          min cfg.pipeline_depth (cfg.max_conn_requests - served)
        in
        let rec gather acc k =
          if k >= budget then (List.rev acc, None)
          else
            match Codec.read_frame_nonblock ~max_len:cfg.max_frame r with
            | `Frame j -> gather (j :: acc) (k + 1)
            | `Nothing | `Eof -> (List.rev acc, None)
            | `Error e -> (List.rev acc, Some e)
        in
        let group, frame_err = gather [ json ] 1 in
        let responses, wants_shutdown =
          Engine.serve_json_many engine ~received group
        in
        Codec.write_frames conn responses;
        let served = served + List.length group in
        if wants_shutdown then shutdown := true
        else (
          match frame_err with
          | Some e -> hangup e
          | None ->
              if served >= cfg.max_conn_requests then
                (* request budget spent: hang up so the dispatch pool
                   gets back to the other clients *)
                log "closing connection: served %d requests" served
              else loop served)
  in
  (try loop 0 with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      log "closing connection: read timeout"
  | Unix.Unix_error (e, _, _) ->
      log "closing connection: %s" (Unix.error_message e)
  | Sys_error e -> log "closing connection: %s" e);
  !shutdown

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))

let listen_socket cfg =
  let bound domain addr =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match
      (match addr with
      | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
      | Unix.ADDR_UNIX _ -> ());
      Unix.bind fd addr;
      Unix.listen fd 64;
      Unix.set_nonblock fd
    with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  match cfg.transport with
  | Uds path ->
      (match remove_stale_socket path with
      | Ok () -> ()
      | Error e -> failwith e);
      bound Unix.PF_UNIX (Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      bound Unix.PF_INET (Unix.ADDR_INET (resolve_host host, port))

let run ?engine ?(on_ready = fun (_ : Unix.sockaddr) -> ()) cfg =
  let engine =
    match engine with
    | Some e -> e
    | None ->
        let pool =
          match cfg.jobs with
          | Some j -> Mo_par.Pool.create ~jobs:j ()
          | None -> Mo_par.Pool.create ()
        in
        Engine.create ~cache_capacity:cfg.cache_capacity
          ~stripes:cfg.stripes ~pool ()
  in
  (* warm restart: feed the persisted decision table back in before the
     first connection; a bad snapshot means a cold start, not a death *)
  (match cfg.persist with
  | None -> ()
  | Some path -> (
      match Persist.load ~path with
      | Ok None -> ()
      | Ok (Some entries) ->
          let n = Engine.restore engine entries in
          log "restored %d cached decisions from %s" n path
      | Error e -> log "ignoring snapshot %s: %s (starting cold)" path e));
  let c_saves =
    Metrics.counter
      (Engine.registry engine)
      ~help:"persist snapshots written (periodic and shutdown)"
      "svc.persist.saves"
  in
  let save_snapshot ~why path =
    let entries = Engine.snapshot engine in
    match Persist.save ~path entries with
    | () ->
        Metrics.inc c_saves;
        log "persisted %d cached decisions to %s (%s)"
          (List.length entries) path why
    | exception e ->
        log "cannot persist to %s: %s" path (Printexc.to_string e)
  in
  (* periodic snapshots ride the accept loop: with an interval
     configured, select gets a finite timeout and the loop writes a
     snapshot whenever the deadline passes — a kill-9'd daemon restarts
     warm from the last interval, not cold *)
  let periodic =
    match (cfg.persist, cfg.persist_interval_s) with
    | Some path, Some s when s > 0. -> Some (path, s)
    | _ -> None
  in
  let next_save =
    ref
      (match periodic with
      | Some (_, s) -> Unix.gettimeofday () +. s
      | None -> infinity)
  in
  let stop = Atomic.make false in
  (* self-pipe: signal handlers and workers that admitted a shutdown
     request wake the accept loop by writing one byte — the loop blocks
     in select with no timeout, so shutdown latency is one wakeup, not
     a poll interval *)
  let pipe_rd, pipe_wr = Unix.pipe () in
  let request_stop () =
    Atomic.set stop true;
    try ignore (Unix.single_write pipe_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let previous =
    List.map
      (fun sg ->
        (sg, Sys.signal sg (Sys.Signal_handle (fun _ -> request_stop ()))))
      [ Sys.sigint; Sys.sigterm ]
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    List.iter (fun (sg, h) -> Sys.set_signal sg h) previous;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  let close_pipe () =
    (try Unix.close pipe_rd with Unix.Unix_error _ -> ());
    (try Unix.close pipe_wr with Unix.Unix_error _ -> ())
  in
  let fd =
    match listen_socket cfg with
    | fd -> fd
    | exception e ->
        restore_signals ();
        close_pipe ();
        raise e
  in
  let workers =
    Mo_par.Workers.create
      ~jobs:
        (match cfg.jobs with
        | Some j -> j
        | None -> Mo_par.default_jobs ())
  in
  let registry = Registry.create () in
  on_ready (Unix.getsockname fd);
  let drain_pipe () =
    let b = Bytes.create 16 in
    try ignore (Unix.read pipe_rd b 0 16) with Unix.Unix_error _ -> ()
  in
  while not (Atomic.get stop) do
    let timeout =
      match periodic with
      | None -> -1.
      | Some _ -> Float.max 0. (!next_save -. Unix.gettimeofday ())
    in
    match Unix.select [ fd; pipe_rd ] [] [] timeout with
    | rs, _, _ ->
        (match periodic with
        | Some (path, s) when Unix.gettimeofday () >= !next_save ->
            save_snapshot ~why:"interval" path;
            next_save := Unix.gettimeofday () +. s
        | _ -> ());
        if List.mem pipe_rd rs then drain_pipe ();
        if (not (Atomic.get stop)) && List.mem fd rs then (
          match Unix.accept fd with
          | conn, _ ->
              Unix.clear_nonblock conn;
              (* the whole connection is one task: a worker domain owns
                 it from first frame to close *)
              Mo_par.Workers.submit workers (fun () ->
                  let id = Registry.add registry conn in
                  let wants =
                    try serve_connection cfg engine conn
                    with e ->
                      log "connection handler died: %s"
                        (Printexc.to_string e);
                      false
                  in
                  Registry.close registry id conn;
                  if wants then request_stop ())
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (* stop accepting, unblock parked readers, then drain the workers —
     in-flight connections finish before the snapshot is taken *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Registry.shutdown_all registry;
  Mo_par.Workers.shutdown workers;
  (match cfg.persist with
  | None -> ()
  | Some path -> save_snapshot ~why:"shutdown" path);
  (match cfg.transport with
  | Uds path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  close_pipe ();
  restore_signals ()
