(** The mopcd wire codec: length-prefixed JSON frames.

    One frame is [<decimal byte length>\n<payload>\n] where the payload
    is a compact {!Mo_obs.Jsonb} document. The explicit length makes
    truncation detectable (a dead client can never leave the server
    waiting on an unbounded line) and caps the damage of garbage input:
    oversized or non-numeric headers are rejected before any payload is
    read.

    Requests and responses are JSON objects. A request carries [id]
    (echoed back), an [op], optional [deadline_ms], and the op's
    arguments; a response carries [id], [ok], and either [result] or
    [error]. The payload builders below are shared verbatim with the
    CLI's [--json] output, so the two surfaces cannot drift. *)

type request =
  | Classify of Mo_core.Forbidden.t
  | Implies of Mo_core.Forbidden.t * Mo_core.Forbidden.t
  | Minimize of Mo_core.Forbidden.t list
  | Witness of Mo_core.Forbidden.t
  | Monitor of Mo_core.Forbidden.t * string * int option
      (** [(pred, trace, window)]: stream a trace (the
          [Mo_workload.Trace_io] text format, prefixes allowed) through
          a compiled monitor for [pred]. Never cached — the payload
          depends on the trace, not just the predicate. [window]
          defaults to {!Mo_order.Monitor.max_window}. *)
  | Lattice of Mo_core.Forbidden.t * int option
      (** [(pred, kmax)]: place the spec's run set against every point
          of the communication-model lattice over the 125,768-run
          standard universe ({!Mo_core.Modelcheck.placement}). [kmax]
          (default 3) bounds the k-synchronous points swept. Cached
          under the canonical digest {e and} kmax, like [classify]. *)
  | Stats
  | Shutdown
  | Batch of envelope list
      (** Independent sub-requests answered in order; cache misses are
          sharded over the worker pool. Batches do not nest. *)

and envelope = { id : int; deadline_ms : int option; req : request }

exception Bad_request of string
(** Raised by payload builders on invalid {e arguments} (a malformed
    trace, an exhausted monitor window); the engine answers these with
    the message verbatim, unlike unexpected exceptions which are
    reported as internal errors. *)

val request_of_json :
  Mo_obs.Jsonb.t -> (envelope, int * string) result
(** Parse a request object. On error the [int] is the request's [id]
    when one could be extracted (so the error response can still be
    correlated), [0] otherwise. *)

val request_to_json : envelope -> Mo_obs.Jsonb.t

(** {1 Responses} *)

val ok_response : id:int -> Mo_obs.Jsonb.t -> Mo_obs.Jsonb.t

val error_response : id:int -> string -> Mo_obs.Jsonb.t

val result_of_response :
  Mo_obs.Jsonb.t -> (Mo_obs.Jsonb.t, string) result
(** Extract [result] from an [ok] response, or the [error] message. *)

(** {1 Result payloads} — shared by the service and the CLI [--json]. *)

val classify_payload : Mo_core.Forbidden.t -> Mo_obs.Jsonb.t
(** Canonical predicate, digest, verdict, protocol class, cycle orders,
    [necessity_exact] and the simplification outcome. The rendering is
    of the {e canonical} form, so alpha-equivalent inputs produce
    byte-identical payloads — the invariant the decision cache relies
    on. *)

val implies_payload : Mo_core.Forbidden.t -> Mo_core.Forbidden.t -> Mo_obs.Jsonb.t

val witness_payload : Mo_core.Forbidden.t -> Mo_obs.Jsonb.t

val minimize_payload : Mo_core.Forbidden.t list -> Mo_obs.Jsonb.t

val monitor_payload :
  ?window:int -> Mo_core.Forbidden.t -> trace:string -> Mo_obs.Jsonb.t
(** Events consumed, pending count, window, resident frontier bytes, and
    the violation ([null], or [{at; witness}] with the 0-based index of
    the event at which the match became unavoidable and the matched
    message ids). The predicate is monitored as written — not
    canonicalized — so [witness] indices line up with the caller's
    variable order. @raise Bad_request on a malformed trace or an
    exhausted window. *)

val lattice_payload : ?kmax:int -> Mo_core.Forbidden.t -> Mo_obs.Jsonb.t
(** Canonical predicate, digest, [kmax], universe size, [|X_B|], one
    row per lattice point ([members], [intersection], and the two
    empirical inclusions), plus the [sufficient] (maximal models inside
    [X_B]) and [guarantees] (minimal models containing it) summaries.
    [kmax] (default 3) bounds the k-synchronous sweep. Rendered from
    the canonical form, so alpha-equivalent inputs produce
    byte-identical payloads — the cache invariant of
    {!classify_payload}. @raise Bad_request when [kmax < 1]. *)

(** {1 Framing} *)

val default_max_frame : int
(** 1 MiB. *)

val encode_frame : Mo_obs.Jsonb.t -> string

val write_frame : Unix.file_descr -> Mo_obs.Jsonb.t -> unit
(** Write a whole frame; retries partial writes. *)

val write_frames : Unix.file_descr -> Mo_obs.Jsonb.t list -> unit
(** Write several frames as one contiguous byte run (one syscall batch
    in the common case) — how a pipelined connection's responses go out
    in request order. *)

type reader
(** Growable buffered frame reader over a file descriptor. Bytes are
    consumed from the descriptor in bulk, so several pipelined frames
    arriving together are each parseable without another [read]. *)

val reader : Unix.file_descr -> reader

val read_frame :
  ?max_len:int -> reader -> (Mo_obs.Jsonb.t option, string) result
(** Block until one whole frame (or end-of-stream) is available.
    [Ok None] on end-of-stream at a frame boundary; [Error _] on a
    malformed header, an oversized frame ([max_len], default
    {!default_max_frame}), bad JSON, or EOF mid-frame. *)

val read_frame_nonblock :
  ?max_len:int ->
  reader ->
  [ `Frame of Mo_obs.Jsonb.t | `Nothing | `Eof | `Error of string ]
(** Like {!read_frame} but never blocks: parse a frame already
    buffered, else poll the descriptor once ([select] with a zero
    timeout) and read whatever is ready. [`Nothing] means no complete
    frame yet — the decode-ahead signal that lets the server keep
    computing earlier requests while a later one is still in flight. *)
