(** Bounded LRU decision cache, keyed on canonical digests.

    A classification answered once is answered forever: the payload of a
    [classify]/[implies]/[witness]/[minimize] request is a pure function
    of the canonical form of its arguments, so the service memoizes
    payloads under digest-derived string keys. The cache is bounded
    (least-recently-used entry evicted at capacity) and instrumented:
    [svc.cache_hits], [svc.cache_misses], [svc.cache_evictions] counters
    and the [svc.cache_size] gauge live in the supplied
    {!Mo_obs.Metrics} registry, so a [stats] query — and the B13 bench
    artifact — can report exact, deterministic hit accounting.

    Not thread-safe by design: all cache traffic happens on the server's
    dispatch domain (the worker pool computes payloads, never touches
    the cache), which keeps hit/miss counts a pure function of the
    request stream. *)

type 'a t

val create :
  capacity:int -> ?registry:Mo_obs.Metrics.t -> unit -> 'a t
(** [capacity 0] disables caching: every lookup misses, nothing is
    stored. @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int

val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used; counts a hit or a miss. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the least-recently-used entry when the
    capacity is exceeded. *)

val hits : 'a t -> int

val misses : 'a t -> int

val evictions : 'a t -> int
