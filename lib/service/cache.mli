(** Striped, bounded LRU decision cache, keyed on canonical digests.

    A classification answered once is answered forever: the payload of a
    [classify]/[implies]/[witness]/[minimize] request is a pure function
    of the canonical form of its arguments, so the service memoizes
    payloads under digest-derived string keys.

    The key space is partitioned over [stripes] independent LRU
    structures, each with its own lock and its own share of the
    capacity. Different canonical digests hash to different stripes (a
    deterministic function of the key), so concurrent worker domains
    serving distinct specifications never contend on one lock — the
    per-key independence the pooled server is built on. [stripes = 1]
    (the default) is the PR 4 single-LRU cache exactly.

    Accounting is two-level: aggregate [svc.cache_hits] /
    [svc.cache_misses] / [svc.cache_evictions] counters and the
    [svc.cache_size] gauge live in the supplied {!Mo_obs.Metrics}
    registry (atomic — safe under concurrent workers), while each stripe
    keeps its own hit/miss/eviction tallies under its stripe lock
    ({!stripe_stats}), which is how the tests prove distinct-digest
    traffic stays on distinct stripes. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  age_min_s : float;
      (** seconds since the stripe's most recently touched entry was
          inserted or last hit; [0.] on an empty stripe *)
  age_median_s : float;
      (** median entry age (mean of the middle two on even sizes) *)
  age_max_s : float;
      (** age of the stripe's LRU entry — how stale the next eviction
          victim is *)
}
(** One stripe's accounting. Entry age is measured against the cache's
    clock from the entry's last touch (insert, refresh or hit), so the
    LRU recency list is also the age order: [age_min_s] belongs to the
    MRU head, [age_max_s] to the LRU tail. *)

val create :
  capacity:int ->
  ?stripes:int ->
  ?registry:Mo_obs.Metrics.t ->
  ?clock:(unit -> float) ->
  unit ->
  'a t
(** [capacity] is the {e total} entry budget, distributed over the
    stripes (the first [capacity mod stripes] stripes hold one more).
    [capacity 0] disables caching: every lookup misses, nothing is
    stored. [stripes] defaults to 1. [clock] (default
    [Unix.gettimeofday]) stamps entries for the age statistics —
    injectable so tests can age entries deterministically.
    @raise Invalid_argument if [capacity < 0] or [stripes < 1]. *)

val capacity : 'a t -> int

val nstripes : 'a t -> int

val size : 'a t -> int
(** Total resident entries across all stripes. *)

val find : 'a t -> string -> 'a option
(** Bumps the entry to most-recently-used within its stripe; counts a
    hit or a miss (aggregate and per-stripe). *)

val put : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts the stripe's least-recently-used entry
    when the stripe's share of the capacity is exceeded. *)

val snapshot : 'a t -> (string * 'a) list
(** Every resident entry, least-recently-used first within each stripe —
    the order {!restore} needs to reproduce recency exactly. This is the
    payload of the [--persist] checkpoint. *)

val restore : 'a t -> (string * 'a) list -> int
(** Insert entries without touching hit/miss accounting (a warm restart
    is not a request stream); evictions past capacity are still counted.
    Returns the number of entries processed, which {!loaded} then
    reports. No-op (returning 0) on a capacity-0 cache. *)

val loaded : 'a t -> int
(** Entries ever fed through {!restore} — how warm this instance started. *)

val stripe_stats : 'a t -> stats array
(** Per-stripe hit/miss/eviction/size accounting plus entry-age
    min/median/max, index = stripe id. One clock read covers the whole
    sweep, so ages are mutually consistent across stripes. *)

val hits : 'a t -> int

val misses : 'a t -> int

val evictions : 'a t -> int
