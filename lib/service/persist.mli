(** Disk persistence of the digest -> decision table.

    A classification answered once is answered forever (the cache keys
    are canonical digests), so the decision table survives restarts
    losslessly: [mopcd --persist FILE] loads a snapshot at startup and
    writes one at shutdown, and a restarted daemon answers its first
    repeat query from the warm table instead of recomputing.

    The on-disk format is one compact JSON document
    [{"version": 1, "entries": [[key, payload], ...]}], entries in the
    order {!Cache.snapshot} emits (least-recently-used first within
    each stripe) so a load replays recency exactly.

    Crash safety: {!save} writes [FILE.tmp], fsyncs, then renames over
    [FILE] — a crash mid-save leaves the previous snapshot intact, and
    readers never observe a torn file. *)

val version : int
(** Current snapshot format version (1). *)

val save : path:string -> (string * Mo_obs.Jsonb.t) list -> unit
(** Atomically replace the snapshot at [path]. Raises [Sys_error] /
    [Unix.Unix_error] on I/O failure; the previous snapshot (if any)
    is untouched in that case. *)

val load :
  path:string -> ((string * Mo_obs.Jsonb.t) list option, string) result
(** [Ok None] when [path] does not exist (a cold start, not an error);
    [Error _] on unreadable, unparsable, or wrong-version snapshots —
    the daemon reports these and starts cold rather than dying. *)
