(* LRU over a hash table plus an intrusive doubly-linked recency list:
   O(1) find, put and eviction, deterministic in the lookup sequence. *)

module Metrics = Mo_obs.Metrics

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option; (* towards most-recent *)
  mutable next : 'a node option; (* towards least-recent *)
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_evictions : Metrics.counter;
  g_size : Metrics.gauge;
}

let create ~capacity ?registry () =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  let registry =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    c_hits =
      Metrics.counter registry ~help:"decision cache hits" "svc.cache_hits";
    c_misses =
      Metrics.counter registry ~help:"decision cache misses"
        "svc.cache_misses";
    c_evictions =
      Metrics.counter registry ~help:"decision cache LRU evictions"
        "svc.cache_evictions";
    g_size =
      Metrics.gauge registry ~help:"decision cache resident entries"
        "svc.cache_size";
  }

let capacity t = t.cap

let size t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      Metrics.inc t.c_hits;
      unlink t n;
      push_front t n;
      Some n.value
  | None ->
      Metrics.inc t.c_misses;
      None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      Metrics.inc t.c_evictions

let put t key value =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.tbl key with
    | Some n ->
        n.value <- value;
        unlink t n;
        push_front t n
    | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n;
        if Hashtbl.length t.tbl > t.cap then evict_lru t);
    Metrics.set t.g_size (Hashtbl.length t.tbl)
  end

let hits t = Metrics.counter_value t.c_hits

let misses t = Metrics.counter_value t.c_misses

let evictions t = Metrics.counter_value t.c_evictions
