(* Striped LRU: the key space is partitioned over [stripes] independent
   LRU structures (hash table plus an intrusive doubly-linked recency
   list, O(1) find/put/evict), each guarded by its own lock. Requests
   for different canonical digests land on different stripes and never
   contend on one lock — the per-key independence the pooled server
   needs. With one stripe this is exactly the PR 4 cache. *)

module Metrics = Mo_obs.Metrics

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable stamp : float; (* clock time of insert / last touch *)
  mutable prev : 'a node option; (* towards most-recent *)
  mutable next : 'a node option; (* towards least-recent *)
}

type 'a stripe = {
  lock : Mo_par.Lock.t;
  s_cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  (* per-stripe accounting, written only under [lock]: the evidence that
     traffic on distinct digests never serializes behind one stripe *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  age_min_s : float;
  age_median_s : float;
  age_max_s : float;
}

type 'a t = {
  cap : int;
  clock : unit -> float;
  stripes : 'a stripe array;
  resident : int Atomic.t; (* total entries, all stripes *)
  loaded : int Atomic.t; (* entries restored from a persisted snapshot *)
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_evictions : Metrics.counter;
  g_size : Metrics.gauge;
}

let create ~capacity ?(stripes = 1) ?registry ?clock () =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  if stripes < 1 then invalid_arg "Cache.create: stripes must be >= 1";
  let registry =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  let clock =
    match clock with Some c -> c | None -> Unix.gettimeofday
  in
  let stripe i =
    (* distribute the capacity; the first [cap mod n] stripes take the
       remainder so the total is exact *)
    let s_cap = (capacity / stripes) + (if i < capacity mod stripes then 1 else 0) in
    {
      lock = Mo_par.Lock.create ();
      s_cap;
      tbl = Hashtbl.create (max 16 s_cap);
      head = None;
      tail = None;
      s_hits = 0;
      s_misses = 0;
      s_evictions = 0;
    }
  in
  {
    cap = capacity;
    clock;
    stripes = Array.init stripes stripe;
    resident = Atomic.make 0;
    loaded = Atomic.make 0;
    c_hits =
      Metrics.counter registry ~help:"decision cache hits" "svc.cache_hits";
    c_misses =
      Metrics.counter registry ~help:"decision cache misses"
        "svc.cache_misses";
    c_evictions =
      Metrics.counter registry ~help:"decision cache LRU evictions"
        "svc.cache_evictions";
    g_size =
      Metrics.gauge registry ~help:"decision cache resident entries"
        "svc.cache_size";
  }

let capacity t = t.cap

let nstripes t = Array.length t.stripes

let size t = Atomic.get t.resident

let loaded t = Atomic.get t.loaded

(* Hashtbl.hash is deterministic on strings, so the digest -> stripe map
   is a pure function of the key — stripe accounting stays reproducible *)
let stripe_of t key =
  t.stripes.(Hashtbl.hash key mod Array.length t.stripes)

let unlink s n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> s.head <- n.next);
  (match n.next with
  | Some nx -> nx.prev <- n.prev
  | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.next <- s.head;
  n.prev <- None;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let find t key =
  let s = stripe_of t key in
  let now = t.clock () in
  let hit =
    Mo_par.Lock.with_lock s.lock (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some n ->
            s.s_hits <- s.s_hits + 1;
            n.stamp <- now;
            unlink s n;
            push_front s n;
            Some n.value
        | None ->
            s.s_misses <- s.s_misses + 1;
            None)
  in
  (match hit with
  | Some _ -> Metrics.inc t.c_hits
  | None -> Metrics.inc t.c_misses);
  hit

let evict_lru s =
  match s.tail with
  | None -> false
  | Some n ->
      unlink s n;
      Hashtbl.remove s.tbl n.key;
      s.s_evictions <- s.s_evictions + 1;
      true

(* shared by put (counted) and restore (silent on hit/miss, counted on
   eviction): returns (inserted, evicted) deltas for the global gauges *)
let insert s key value ~now =
  match Hashtbl.find_opt s.tbl key with
  | Some n ->
      n.value <- value;
      n.stamp <- now;
      unlink s n;
      push_front s n;
      (0, 0)
  | None ->
      let n = { key; value; stamp = now; prev = None; next = None } in
      Hashtbl.replace s.tbl key n;
      push_front s n;
      if Hashtbl.length s.tbl > s.s_cap && evict_lru s then (1, 1)
      else (1, 0)

let apply_deltas t ~inserted ~evicted =
  let delta = inserted - evicted in
  if delta <> 0 then ignore (Atomic.fetch_and_add t.resident delta);
  if evicted > 0 then Metrics.add t.c_evictions evicted;
  Metrics.set t.g_size (Atomic.get t.resident)

let put t key value =
  if t.cap > 0 then begin
    let s = stripe_of t key in
    let now = t.clock () in
    let inserted, evicted =
      Mo_par.Lock.with_lock s.lock (fun () -> insert s key value ~now)
    in
    apply_deltas t ~inserted ~evicted
  end

let restore t entries =
  if t.cap = 0 then 0
  else begin
    let n = ref 0 in
    let now = t.clock () in
    List.iter
      (fun (key, value) ->
        let s = stripe_of t key in
        let inserted, evicted =
          Mo_par.Lock.with_lock s.lock (fun () -> insert s key value ~now)
        in
        apply_deltas t ~inserted ~evicted;
        incr n)
      entries;
    ignore (Atomic.fetch_and_add t.loaded !n);
    !n
  end

let snapshot t =
  (* least-recent first within each stripe, so replaying the list
     through [restore] (which pushes to the front) reproduces each
     stripe's recency order exactly *)
  let stripe_entries s =
    Mo_par.Lock.with_lock s.lock (fun () ->
        let rec walk acc = function
          | None -> acc
          | Some n -> walk ((n.key, n.value) :: acc) n.next
        in
        (* walk head -> tail accumulating in reverse: tail ends up first *)
        walk [] s.head)
  in
  Array.to_list t.stripes |> List.concat_map stripe_entries

let stripe_stats t =
  let now = t.clock () in
  Array.map
    (fun s ->
      Mo_par.Lock.with_lock s.lock (fun () ->
          (* the recency list is stamp-sorted (every touch both fronts
             the node and refreshes its stamp), so ages come out sorted
             head -> tail: min is the head, max the tail, and the median
             one walk to the middle *)
          let ages =
            let rec walk acc = function
              | None -> acc
              | Some n -> walk (Float.max 0. (now -. n.stamp) :: acc) n.next
            in
            (* head -> tail accumulated in reverse: oldest first *)
            Array.of_list (walk [] s.head)
          in
          let k = Array.length ages in
          let age_min_s = if k = 0 then 0. else ages.(k - 1) in
          let age_max_s = if k = 0 then 0. else ages.(0) in
          let age_median_s =
            if k = 0 then 0.
            else if k land 1 = 1 then ages.(k / 2)
            else 0.5 *. (ages.((k / 2) - 1) +. ages.(k / 2))
          in
          {
            hits = s.s_hits;
            misses = s.s_misses;
            evictions = s.s_evictions;
            size = Hashtbl.length s.tbl;
            age_min_s;
            age_median_s;
            age_max_s;
          }))
    t.stripes

let hits t = Metrics.counter_value t.c_hits

let misses t = Metrics.counter_value t.c_misses

let evictions t = Metrics.counter_value t.c_evictions
