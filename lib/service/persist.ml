module J = Mo_obs.Jsonb

let version = 1

let to_json entries =
  J.Obj
    [
      ("version", J.Int version);
      ( "entries",
        J.List
          (List.map (fun (k, v) -> J.List [ J.String k; v ]) entries) );
    ]

let entries_of_json = function
  | J.Obj fields -> (
      match List.assoc_opt "version" fields with
      | Some (J.Int v) when v = version -> (
          match List.assoc_opt "entries" fields with
          | Some (J.List items) ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | J.List [ J.String k; payload ] :: rest ->
                    go ((k, payload) :: acc) rest
                | _ -> Error "malformed snapshot entry (want [key, payload])"
              in
              go [] items
          | _ -> Error "snapshot missing list field \"entries\"")
      | Some (J.Int v) ->
          Error (Printf.sprintf "unsupported snapshot version %d" v)
      | _ -> Error "snapshot missing int field \"version\"")
  | _ -> Error "snapshot is not an object"

(* write tmp, fsync, rename: the published file is always a complete
   snapshot — either the old one or the new one, never a torn mix *)
let save ~path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (J.to_string (to_json entries));
     output_char oc '\n';
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then Ok None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | contents -> (
        match J.of_string contents with
        | Error e -> Error ("bad snapshot JSON: " ^ e)
        | Ok json -> (
            match entries_of_json json with
            | Ok entries -> Ok (Some entries)
            | Error e -> Error e))
