open Mo_core
module J = Mo_obs.Jsonb

type request =
  | Classify of Forbidden.t
  | Implies of Forbidden.t * Forbidden.t
  | Minimize of Forbidden.t list
  | Witness of Forbidden.t
  | Monitor of Forbidden.t * string * int option
  | Lattice of Forbidden.t * int option
  | Stats
  | Shutdown
  | Batch of envelope list

and envelope = { id : int; deadline_ms : int option; req : request }

exception Bad_request of string

(* ---- JSON helpers ------------------------------------------------ *)

let member key = function J.Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function J.Int i -> Some i | _ -> None

let to_str = function J.String s -> Some s | _ -> None

let parse_pred s =
  match Parse.predicate s with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "cannot parse %S: %s" s e)

(* ---- requests ---------------------------------------------------- *)

let rec envelope_of_json ~allow_batch json =
  let id =
    Option.value ~default:0 (Option.bind (member "id" json) to_int)
  in
  let fail msg = Error (id, msg) in
  let deadline_ms = Option.bind (member "deadline_ms" json) to_int in
  let pred_field key =
    match Option.bind (member key json) to_str with
    | None -> Error (id, Printf.sprintf "missing string field %S" key)
    | Some s -> (
        match parse_pred s with Ok p -> Ok p | Error e -> Error (id, e))
  in
  match Option.bind (member "op" json) to_str with
  | None -> fail "missing string field \"op\""
  | Some op -> (
      let wrap req = Ok { id; deadline_ms; req } in
      match op with
      | "classify" ->
          Result.bind (pred_field "pred") (fun p -> wrap (Classify p))
      | "witness" ->
          Result.bind (pred_field "pred") (fun p -> wrap (Witness p))
      | "implies" ->
          Result.bind (pred_field "pred") (fun a ->
              Result.bind (pred_field "pred2") (fun b ->
                  wrap (Implies (a, b))))
      | "minimize" -> (
          match member "preds" json with
          | Some (J.List items) ->
              let rec go acc = function
                | [] -> wrap (Minimize (List.rev acc))
                | J.String s :: rest -> (
                    match parse_pred s with
                    | Ok p -> go (p :: acc) rest
                    | Error e -> fail e)
                | _ -> fail "\"preds\" must be a list of strings"
              in
              go [] items
          | _ -> fail "missing list field \"preds\"")
      | "monitor" ->
          Result.bind (pred_field "pred") (fun p ->
              match Option.bind (member "trace" json) to_str with
              | None -> fail "missing string field \"trace\""
              | Some trace ->
                  let window =
                    Option.bind (member "window" json) to_int
                  in
                  wrap (Monitor (p, trace, window)))
      | "lattice" -> (
          Result.bind (pred_field "pred") (fun p ->
              match Option.bind (member "kmax" json) to_int with
              | Some k when k < 1 -> fail "\"kmax\" must be >= 1"
              | kmax -> wrap (Lattice (p, kmax))))
      | "stats" -> wrap Stats
      | "shutdown" -> wrap Shutdown
      | "batch" -> (
          if not allow_batch then fail "batches do not nest"
          else
            match member "reqs" json with
            | Some (J.List items) ->
                let rec go acc = function
                  | [] -> wrap (Batch (List.rev acc))
                  | item :: rest -> (
                      match envelope_of_json ~allow_batch:false item with
                      | Ok env -> go (env :: acc) rest
                      | Error (sub_id, e) ->
                          fail
                            (Printf.sprintf "batch request %d: %s" sub_id e))
                in
                go [] items
            | _ -> fail "missing list field \"reqs\"")
      | other -> fail (Printf.sprintf "unknown op %S" other))

let request_of_json json = envelope_of_json ~allow_batch:true json

let rec request_to_json { id; deadline_ms; req } =
  let base = [ ("id", J.Int id) ] in
  let deadline =
    match deadline_ms with
    | None -> []
    | Some d -> [ ("deadline_ms", J.Int d) ]
  in
  let pred p = ("pred", J.String (Forbidden.to_string p)) in
  let op name rest = J.Obj (base @ [ ("op", J.String name) ] @ rest @ deadline) in
  match req with
  | Classify p -> op "classify" [ pred p ]
  | Witness p -> op "witness" [ pred p ]
  | Implies (a, b) ->
      op "implies" [ pred a; ("pred2", J.String (Forbidden.to_string b)) ]
  | Minimize ps ->
      op "minimize"
        [
          ( "preds",
            J.List
              (List.map (fun p -> J.String (Forbidden.to_string p)) ps) );
        ]
  | Monitor (p, trace, window) ->
      op "monitor"
        ([ pred p; ("trace", J.String trace) ]
        @ match window with None -> [] | Some w -> [ ("window", J.Int w) ])
  | Lattice (p, kmax) ->
      op "lattice"
        ([ pred p ]
        @ match kmax with None -> [] | Some k -> [ ("kmax", J.Int k) ])
  | Stats -> op "stats" []
  | Shutdown -> op "shutdown" []
  | Batch envs ->
      op "batch" [ ("reqs", J.List (List.map request_to_json envs)) ]

(* ---- responses --------------------------------------------------- *)

let ok_response ~id payload =
  J.Obj [ ("id", J.Int id); ("ok", J.Bool true); ("result", payload) ]

let error_response ~id msg =
  J.Obj [ ("id", J.Int id); ("ok", J.Bool false); ("error", J.String msg) ]

let result_of_response json =
  match member "ok" json with
  | Some (J.Bool true) -> (
      match member "result" json with
      | Some r -> Ok r
      | None -> Error "response has no result field")
  | Some (J.Bool false) -> (
      match Option.bind (member "error" json) to_str with
      | Some e -> Error e
      | None -> Error "request failed (no error message)")
  | _ -> Error "response has no ok field"

(* ---- result payloads (shared with the CLI --json output) --------- *)

let classify_payload pred =
  let canonical = Canon.predicate pred in
  let r = Classify.classify canonical in
  let implementable, cls =
    match r.Classify.verdict with
    | Classify.Not_implementable -> (false, J.Null)
    | Classify.Implementable c ->
        (true, J.String (Classify.class_to_string c))
  in
  J.Obj
    [
      ("predicate", J.String (Forbidden.to_string canonical));
      ("digest", J.String (Canon.digest pred));
      ("verdict", J.String (Classify.verdict_to_string r.Classify.verdict));
      ("implementable", J.Bool implementable);
      ("class", cls);
      ("orders", J.List (List.map (fun o -> J.Int o) r.Classify.orders));
      ("necessity_exact", J.Bool r.Classify.necessity_exact);
      ( "simplification",
        J.String
          (match r.Classify.simplification with
          | `None -> "none"
          | `Dropped_tautologies -> "dropped-tautologies"
          | `Unsatisfiable -> "unsatisfiable") );
    ]

let implies_payload a b =
  let ca = Canon.predicate a and cb = Canon.predicate b in
  let fwd = Implies.check ca cb and bwd = Implies.check cb ca in
  J.Obj
    [
      ("pred", J.String (Forbidden.to_string ca));
      ("pred2", J.String (Forbidden.to_string cb));
      ("digest", J.String (Canon.digest a));
      ("digest2", J.String (Canon.digest b));
      ("forward", J.Bool fwd);
      ("backward", J.Bool bwd);
      ( "relationship",
        J.String
          (match Implies.compare_specs ca cb with
          | `Equivalent -> "equivalent"
          | `Stronger -> "stronger"
          | `Weaker -> "weaker"
          | `Incomparable -> "incomparable") );
    ]

let witness_payload pred =
  let canonical = Canon.predicate pred in
  let base =
    [
      ("predicate", J.String (Forbidden.to_string canonical));
      ("digest", J.String (Canon.digest pred));
    ]
  in
  match Witness.build canonical with
  | Witness.Witness w ->
      J.Obj
        (base
        @ [
            ("witness", J.Bool true);
            ( "limit_class",
              J.String
                (Mo_order.Limits.cls_to_string
                   (Mo_order.Limits.classify w.Witness.run)) );
            ( "diagram",
              J.String (Mo_order.Diagram.render_abstract w.Witness.run) );
          ])
  | Witness.Cyclic ->
      J.Obj
        (base
        @ [ ("witness", J.Bool false); ("reason", J.String "unsatisfiable") ])
  | Witness.Conflicting_guards ->
      J.Obj
        (base
        @ [
            ("witness", J.Bool false);
            ("reason", J.String "conflicting-guards");
          ])

let minimize_payload preds =
  let canonical = Canon.spec (Spec.make ~name:"query" preds) in
  let minimized = Spec.minimize canonical in
  J.Obj
    [
      ("members", J.Int (List.length preds));
      ("canonical_members", J.Int (List.length canonical.Spec.predicates));
      ( "kept",
        J.List
          (List.map
             (fun p -> J.String (Forbidden.to_string p))
             minimized.Spec.predicates) );
      ( "dropped",
        J.Int
          (List.length canonical.Spec.predicates
          - List.length minimized.Spec.predicates) );
      ("digest", J.String (Canon.spec_digest canonical));
    ]

let monitor_payload ?window pred ~trace =
  let module T = Mo_workload.Trace_io in
  match T.parse_prefix trace with
  | Error e -> raise (Bad_request ("bad trace: " ^ T.error_to_string e))
  | Ok p -> (
      match
        let window =
          Option.value ~default:Mo_order.Monitor.max_window window
        in
        let t =
          Mo_core.Pmon.create ~window
            ~nprocs:(max p.T.p_nprocs 1)
            (Eval.compile pred)
        in
        List.iter
          (function
            | `Send (msg, src, dst, color) ->
                ignore (Mo_core.Pmon.send t ~msg ~src ~dst ?color ())
            | `Deliver msg -> ignore (Mo_core.Pmon.deliver t ~msg))
          p.T.p_events;
        t
      with
      | exception Invalid_argument msg -> raise (Bad_request msg)
      | t ->
          let mon = Mo_core.Pmon.monitor t in
          let module M = Mo_order.Monitor in
          J.Obj
            [
              ("predicate", J.String (Forbidden.to_string pred));
              ("events", J.Int (M.events mon));
              ("pending", J.Int (M.pending mon));
              ("window", J.Int (M.window mon));
              ("frontier_bytes", J.Int (M.frontier_bytes mon));
              ( "violation",
                match Mo_core.Pmon.verdict t with
                | None -> J.Null
                | Some v ->
                    J.Obj
                      [
                        ("at", J.Int v.Mo_core.Pmon.at);
                        ( "witness",
                          J.List
                            (List.map
                               (fun m -> J.Int m)
                               (Array.to_list v.Mo_core.Pmon.witness)) );
                      ] );
            ])

let lattice_payload ?(kmax = 3) pred =
  if kmax < 1 then raise (Bad_request "kmax must be >= 1");
  let canonical = Canon.predicate pred in
  (* an inline jobs=1 pool: lattice placements already run inside the
     engine's worker pool, and membership over the standard universe is
     fast enough sequentially (the cache amortizes repeats anyway) *)
  let pl =
    Modelcheck.placement
      ~pool:(Mo_par.Pool.create ~jobs:1 ())
      ~kmax ~sizes:Modelcheck.universe_sizes canonical
  in
  let names ms =
    J.List
      (List.map (fun m -> J.String (Mo_order.Lattice.to_string m)) ms)
  in
  J.Obj
    [
      ("predicate", J.String (Forbidden.to_string canonical));
      ("digest", J.String (Canon.digest pred));
      ("kmax", J.Int kmax);
      ("runs", J.Int pl.Modelcheck.p_runs);
      ("spec_members", J.Int pl.Modelcheck.p_spec);
      ( "models",
        J.List
          (List.map
             (fun (p : Modelcheck.place) ->
               J.Obj
                 [
                   ( "model",
                     J.String (Mo_order.Lattice.to_string p.Modelcheck.pl_model)
                   );
                   ("members", J.Int p.Modelcheck.pl_members);
                   ("intersection", J.Int p.Modelcheck.pl_inter);
                   ("model_in_spec", J.Bool p.Modelcheck.pl_model_in_spec);
                   ("spec_in_model", J.Bool p.Modelcheck.pl_spec_in_model);
                 ])
             pl.Modelcheck.p_places) );
      ("sufficient", names pl.Modelcheck.p_sufficient);
      ("guarantees", names pl.Modelcheck.p_guarantees);
    ]

(* ---- framing ----------------------------------------------------- *)

let default_max_frame = 1 lsl 20

let encode_frame json =
  let payload = J.to_string json in
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let write_frame fd json = write_all fd (encode_frame json)

let write_frames fd jsons =
  (* one syscall batch for a whole pipeline's worth of responses *)
  match jsons with
  | [] -> ()
  | jsons -> write_all fd (String.concat "" (List.map encode_frame jsons))

(* The reader buffers whatever the descriptor delivers and parses frames
   out of the buffer, so several pipelined frames arriving in one read
   are each available without touching the socket again. [pos..len) is
   the unconsumed window; the buffer grows (it never shrinks) when a
   frame straddles its end. *)
type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable pos : int; (* start of unconsumed data *)
  mutable len : int; (* end of valid data *)
  mutable eof : bool;
}

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0; eof = false }

(* compact, grow if full, then read once; sets [eof] on a 0-byte read *)
let refill r =
  if r.pos > 0 then begin
    Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
    r.len <- r.len - r.pos;
    r.pos <- 0
  end;
  if r.len = Bytes.length r.buf then begin
    let nb = Bytes.create (2 * Bytes.length r.buf) in
    Bytes.blit r.buf 0 nb 0 r.len;
    r.buf <- nb
  end;
  let n = Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) in
  if n = 0 then r.eof <- true else r.len <- r.len + n;
  n

(* Try to parse one complete frame out of the buffer. Consumes bytes
   only on [`Frame]; [`Need] means the buffer holds a prefix of a valid
   frame and more bytes must arrive first. The trailing '\n' is part of
   the frame (optional only at end-of-stream), so a parsed frame never
   leaves its terminator behind to poison the next header. *)
let parse ~max_len r =
  if r.len = r.pos then (if r.eof then `Eof else `Need)
  else begin
    let finish payload consumed_to =
      match J.of_string payload with
      | Ok json ->
          r.pos <- consumed_to;
          `Frame json
      | Error e -> `Error ("bad frame JSON: " ^ e)
    in
    (* header: decimal length terminated by '\n' *)
    let rec header i acc ndigits =
      if ndigits > 10 then `Error "frame header too long"
      else if i >= r.len then
        if r.eof then `Error "eof inside frame header" else `Need
      else
        match Bytes.get r.buf i with
        | '\n' ->
            if ndigits = 0 then `Error "empty frame header"
            else `Header (i + 1, acc)
        | '0' .. '9' as c ->
            header (i + 1) ((acc * 10) + (Char.code c - Char.code '0'))
              (ndigits + 1)
        | c -> `Error (Printf.sprintf "bad frame header byte %C" c)
    in
    match header r.pos 0 0 with
    | `Error e -> `Error e
    | `Need -> `Need
    | `Header (body, n) ->
        if n > max_len then
          `Error (Printf.sprintf "frame of %d bytes exceeds limit %d" n max_len)
        else if r.len - body < n then
          if r.eof then `Error "eof inside frame payload" else `Need
        else begin
          let payload = Bytes.sub_string r.buf body n in
          let after = body + n in
          if after < r.len then
            match Bytes.get r.buf after with
            | '\n' -> finish payload (after + 1)
            | c -> `Error (Printf.sprintf "expected frame terminator, got %C" c)
          else if r.eof then finish payload after
          else `Need
        end
  end

let read_frame ?(max_len = default_max_frame) r =
  let rec loop () =
    match parse ~max_len r with
    | `Frame j -> Ok (Some j)
    | `Eof -> Ok None
    | `Error e -> Error e
    | `Need ->
        ignore (refill r);
        loop ()
  in
  loop ()

let read_frame_nonblock ?(max_len = default_max_frame) r =
  match parse ~max_len r with
  | (`Frame _ | `Eof | `Error _) as res -> res
  | `Need -> (
      (* at most one poll + one read per call; the caller decides
         whether to come back (pipelining) or block (read_frame) *)
      match Unix.select [ r.fd ] [] [] 0.0 with
      | [], _, _ -> `Nothing
      | _ -> (
          ignore (refill r);
          match parse ~max_len r with
          | (`Frame _ | `Eof | `Error _) as res -> res
          | `Need -> `Nothing))
