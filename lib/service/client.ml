type t = {
  fd : Unix.file_descr;
  reader : Codec.reader;
  mutable next_id : int;
}

type retry = {
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  connect_timeout_s : float;
}

let default_retry =
  { attempts = 5; base_delay_s = 0.05; max_delay_s = 0.8; connect_timeout_s = 5. }

let no_retry =
  { attempts = 1; base_delay_s = 0.; max_delay_s = 0.; connect_timeout_s = 5. }

(* errors a briefly-restarting or busy daemon produces: the socket file
   not written yet, a stale file nobody listens on, or a full listen
   queue. Anything else (permissions, not a socket) will not get better
   by waiting. *)
let transient = function
  | Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EWOULDBLOCK
  | Unix.EINTR | Unix.ETIMEDOUT | Unix.ECONNRESET ->
      true
  | _ -> false

(* one bounded connect attempt: non-blocking so a wedged daemon turns
   into ETIMEDOUT after [timeout_s] instead of hanging the client *)
let connect_once ~timeout_s socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
       match Unix.select [] [ fd ] [] timeout_s with
       | _, [ _ ], _ -> (
           match Unix.getsockopt_error fd with
           | None -> ()
           | Some e -> raise (Unix.Unix_error (e, "connect", socket_path)))
       | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", socket_path))));
    Unix.clear_nonblock fd
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

let connect ?(retry = default_retry) ?(sleep = Unix.sleepf) ~socket_path () =
  let attempts = max 1 retry.attempts in
  let rec go n delay last_err =
    if n >= attempts then
      Error
        (Printf.sprintf "cannot connect to %s after %d attempt%s: %s"
           socket_path attempts
           (if attempts = 1 then "" else "s")
           (Unix.error_message last_err))
    else
      match connect_once ~timeout_s:retry.connect_timeout_s socket_path with
      | Ok fd -> Ok { fd; reader = Codec.reader fd; next_id = 1 }
      | Error e when transient e && n + 1 < attempts ->
          sleep delay;
          go (n + 1) (Float.min retry.max_delay_s (delay *. 2.)) e
      | Error e ->
          Error
            (Printf.sprintf "cannot connect to %s%s: %s" socket_path
               (if n > 0 then Printf.sprintf " after %d attempts" (n + 1)
                else "")
               (Unix.error_message e))
  in
  go 0 retry.base_delay_s Unix.ECONNREFUSED

let call_raw t json =
  match
    Codec.write_frame t.fd json;
    Codec.read_frame t.reader
  with
  | Ok (Some resp) -> Ok resp
  | Ok None -> Error "server closed the connection"
  | Error e -> Error ("transport: " ^ e)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("transport: " ^ Unix.error_message e)

let call t ?deadline_ms req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let env = { Codec.id; deadline_ms; req } in
  match call_raw t (Codec.request_to_json env) with
  | Error e -> Error e
  | Ok resp -> Codec.result_of_response resp

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
