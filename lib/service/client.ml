type t = {
  fd : Unix.file_descr;
  reader : Codec.reader;
  mutable next_id : int;
}

type addr = Uds of string | Tcp of string * int

let addr_to_string = function
  | Uds path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type retry = {
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  connect_timeout_s : float;
}

let default_retry =
  { attempts = 5; base_delay_s = 0.05; max_delay_s = 0.8; connect_timeout_s = 5. }

let no_retry =
  { attempts = 1; base_delay_s = 0.; max_delay_s = 0.; connect_timeout_s = 5. }

(* errors a briefly-restarting or busy daemon produces: the socket file
   not written yet, a stale file nobody listens on, or a full listen
   queue. Anything else (permissions, not a socket) will not get better
   by waiting. *)
let transient = function
  | Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EWOULDBLOCK
  | Unix.EINTR | Unix.ETIMEDOUT | Unix.ECONNRESET ->
      true
  | _ -> false

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))

(* may raise Failure on an unresolvable host — a permanent error *)
let sockaddr_of = function
  | Uds path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))

(* one bounded connect attempt: non-blocking so a wedged daemon turns
   into ETIMEDOUT after [timeout_s] instead of hanging the client *)
let connect_once ~timeout_s addr =
  let target = addr_to_string addr in
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd sockaddr
     with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
       match Unix.select [] [ fd ] [] timeout_s with
       | _, [ _ ], _ -> (
           match Unix.getsockopt_error fd with
           | None -> ()
           | Some e -> raise (Unix.Unix_error (e, "connect", target)))
       | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", target))));
    Unix.clear_nonblock fd;
    match addr with
    | Tcp _ -> (
        (* latency: pipelined frames must not wait out Nagle *)
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ())
    | Uds _ -> ()
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

let connect_addr ?(retry = default_retry) ?(sleep = Unix.sleepf) addr =
  let target = addr_to_string addr in
  let attempts = max 1 retry.attempts in
  let rec go n delay last_err =
    if n >= attempts then
      Error
        (Printf.sprintf "cannot connect to %s after %d attempt%s: %s" target
           attempts
           (if attempts = 1 then "" else "s")
           (Unix.error_message last_err))
    else
      match connect_once ~timeout_s:retry.connect_timeout_s addr with
      | Ok fd -> Ok { fd; reader = Codec.reader fd; next_id = 1 }
      | Error e when transient e && n + 1 < attempts ->
          sleep delay;
          go (n + 1) (Float.min retry.max_delay_s (delay *. 2.)) e
      | Error e ->
          Error
            (Printf.sprintf "cannot connect to %s%s: %s" target
               (if n > 0 then Printf.sprintf " after %d attempts" (n + 1)
                else "")
               (Unix.error_message e))
      | exception Failure msg -> Error msg
  in
  go 0 retry.base_delay_s Unix.ECONNREFUSED

let connect ?retry ?sleep ~socket_path () =
  connect_addr ?retry ?sleep (Uds socket_path)

let call_raw t json =
  match
    Codec.write_frame t.fd json;
    Codec.read_frame t.reader
  with
  | Ok (Some resp) -> Ok resp
  | Ok None -> Error "server closed the connection"
  | Error e -> Error ("transport: " ^ e)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("transport: " ^ Unix.error_message e)

let call t ?deadline_ms req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let env = { Codec.id; deadline_ms; req } in
  match call_raw t (Codec.request_to_json env) with
  | Error e -> Error e
  | Ok resp -> Codec.result_of_response resp

let call_pipelined t ?deadline_ms reqs =
  let envs =
    List.map
      (fun req ->
        let id = t.next_id in
        t.next_id <- id + 1;
        { Codec.id; deadline_ms; req })
      reqs
  in
  (* all requests go out in one write; responses come back in request
     order (the server's pipelining contract) *)
  match Codec.write_frames t.fd (List.map Codec.request_to_json envs) with
  | exception Unix.Unix_error (e, _, _) ->
      let err = Error ("transport: " ^ Unix.error_message e) in
      List.map (fun _ -> err) envs
  | () ->
      let rec read_all acc = function
        | [] -> List.rev acc
        | _ :: rest as pending -> (
            let fill err =
              List.rev_append acc (List.map (fun _ -> Error err) pending)
            in
            match Codec.read_frame t.reader with
            | Ok (Some resp) ->
                read_all (Codec.result_of_response resp :: acc) rest
            | Ok None -> fill "server closed the connection"
            | Error e -> fill ("transport: " ^ e)
            | exception Unix.Unix_error (e, _, _) ->
                fill ("transport: " ^ Unix.error_message e))
      in
      read_all [] envs

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
