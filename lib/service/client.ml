type t = {
  fd : Unix.file_descr;
  reader : Codec.reader;
  mutable next_id : int;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () -> Ok { fd; reader = Codec.reader fd; next_id = 1 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket_path
           (Unix.error_message e))

let call_raw t json =
  match
    Codec.write_frame t.fd json;
    Codec.read_frame t.reader
  with
  | Ok (Some resp) -> Ok resp
  | Ok None -> Error "server closed the connection"
  | Error e -> Error ("transport: " ^ e)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("transport: " ^ Unix.error_message e)

let call t ?deadline_ms req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let env = { Codec.id; deadline_ms; req } in
  match call_raw t (Codec.request_to_json env) with
  | Error e -> Error e
  | Ok resp -> Codec.result_of_response resp

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
