(** The request engine: canonicalize, consult the cache, compute, reply.

    Transport-free core of mopcd — the server feeds it parsed request
    envelopes, the tests and the B13 bench drive it directly. Every
    cacheable endpoint goes through the same funnel:

    {v input predicate(s) → Canon digest → LRU lookup → payload v}

    so the response to a request is a pure function of the
    alpha-equivalence class of its arguments, and hit/miss counters are
    a pure function of the request stream (the property the bench gate
    pins). [stats] and [shutdown] are never cached.

    Batches: sub-requests are admitted (deadline check, cache lookup) in
    order on the caller's domain; the payloads of the distinct missing
    keys are then computed in parallel over the worker pool and inserted
    in first-occurrence order. Responses are therefore byte-identical
    for every job count. *)

type t

val create :
  ?cache_capacity:int ->
  ?registry:Mo_obs.Metrics.t ->
  ?pool:Mo_par.Pool.t ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [cache_capacity] defaults to 4096 entries (0 disables caching);
    [registry] to a fresh one; [pool] to a default {!Mo_par.Pool};
    [clock] (seconds, used only for deadlines) to [Unix.gettimeofday] —
    injectable so deadline behaviour is testable. *)

val registry : t -> Mo_obs.Metrics.t

val cache_stats : t -> Mo_obs.Jsonb.t
(** [{capacity; size; hits; misses; evictions}]. *)

val handle : t -> ?received:float -> Codec.envelope -> Mo_obs.Jsonb.t
(** The response (an [ok]/[error] object echoing the request id).
    [received] is the request's arrival time on the engine clock
    (default: [clock ()] at entry — the server passes the moment the
    frame was read, so queueing delay counts against the deadline). A
    request whose [deadline_ms] has already elapsed since [received]
    when admitted is rejected with an error response; a top-level
    [Shutdown] request is answered [ok] (stopping the accept loop is the
    server's job), while a [Shutdown] nested in a batch is answered with
    an error — a batch member must never stop the server. Never raises
    on any input. *)

val serve : t -> ?received:float -> Codec.envelope -> Mo_obs.Jsonb.t * bool
(** [handle] plus whether the envelope was an {e admitted} top-level
    [Shutdown] (deadline-expired shutdowns report [false]) — the flag
    the server's accept loop stops on, so frames are parsed exactly
    once. *)

val handle_json : t -> ?received:float -> Mo_obs.Jsonb.t -> Mo_obs.Jsonb.t
(** Parse and handle; a request that does not parse yields an error
    response rather than an exception. *)

val serve_json :
  t -> ?received:float -> Mo_obs.Jsonb.t -> Mo_obs.Jsonb.t * bool
(** Parse and {!serve}; unparsable requests yield an error response and
    [false]. *)
