(** The request engine: canonicalize, consult the cache, compute, reply.

    Transport-free core of mopcd — the server feeds it parsed request
    envelopes, the tests and the B13 bench drive it directly. Every
    cacheable endpoint goes through the same funnel:

    {v input predicate(s) → Canon digest → LRU lookup → payload v}

    so the response to a request is a pure function of the
    alpha-equivalence class of its arguments, and hit/miss counters are
    a pure function of the request stream (the property the bench gate
    pins). [stats] and [shutdown] are never cached.

    Batches: sub-requests are admitted (deadline check, cache lookup) in
    order on the caller's domain; the payloads of the distinct missing
    keys are then computed in parallel over the worker pool and inserted
    in first-occurrence order. Responses are therefore byte-identical
    for every job count. Pipelined groups ({!serve_many}) reuse the same
    admit-then-resolve machinery, so the guarantee carries over.

    The engine is safe to drive from several worker domains at once:
    the cache is striped ({!Cache}), the counters are atomic, and every
    compute is pure. Responses stay a pure function of each request;
    only wall-clock and lock micro-contention vary with concurrency. *)

type t

val create :
  ?cache_capacity:int ->
  ?stripes:int ->
  ?registry:Mo_obs.Metrics.t ->
  ?pool:Mo_par.Pool.t ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [cache_capacity] defaults to 4096 entries (0 disables caching);
    [stripes] (cache lock stripes, see {!Cache.create}) to 8;
    [registry] to a fresh one; [pool] to a default {!Mo_par.Pool};
    [clock] (seconds, used only for deadlines) to [Unix.gettimeofday] —
    injectable so deadline behaviour is testable. *)

val registry : t -> Mo_obs.Metrics.t

val cache_stats : t -> Mo_obs.Jsonb.t
(** [{capacity; stripes; size; loaded; hits; misses; evictions}]. *)

val snapshot : t -> (string * Mo_obs.Jsonb.t) list
(** The resident decision table, in the order {!restore} wants —
    what [--persist] writes at shutdown (see {!Cache.snapshot}). *)

val restore : t -> (string * Mo_obs.Jsonb.t) list -> int
(** Warm the decision table from a persisted snapshot; returns entries
    processed. Does not count hits or misses ({!Cache.restore}). *)

val stripe_stats : t -> Cache.stats array
(** Per-stripe cache accounting — the striping tests' probe. *)

val handle : t -> ?received:float -> Codec.envelope -> Mo_obs.Jsonb.t
(** The response (an [ok]/[error] object echoing the request id).
    [received] is the request's arrival time on the engine clock
    (default: [clock ()] at entry — the server passes the moment the
    frame was read, so queueing delay counts against the deadline). A
    request whose [deadline_ms] has already elapsed since [received]
    when admitted is rejected with an error response; a top-level
    [Shutdown] request is answered [ok] (stopping the accept loop is the
    server's job), while a [Shutdown] nested in a batch is answered with
    an error — a batch member must never stop the server. Never raises
    on any input. *)

val serve : t -> ?received:float -> Codec.envelope -> Mo_obs.Jsonb.t * bool
(** [handle] plus whether the envelope was an {e admitted} top-level
    [Shutdown] (deadline-expired shutdowns report [false]) — the flag
    the server's accept loop stops on, so frames are parsed exactly
    once. *)

val handle_json : t -> ?received:float -> Mo_obs.Jsonb.t -> Mo_obs.Jsonb.t
(** Parse and handle; a request that does not parse yields an error
    response rather than an exception. *)

val serve_json :
  t -> ?received:float -> Mo_obs.Jsonb.t -> Mo_obs.Jsonb.t * bool
(** Parse and {!serve}; unparsable requests yield an error response and
    [false]. *)

val serve_many :
  t -> ?received:float -> Codec.envelope list -> Mo_obs.Jsonb.t list * bool
(** Serve a pipelined group: every envelope is admitted in order on the
    caller's domain, the distinct missing keys are computed in parallel
    over the pool, and responses come back in request order — one per
    envelope, byte-identical to serving them one at a time (cache
    hit/miss {e counts} may differ: duplicates inside one group are all
    admitted before the first compute lands). The flag is [true] iff
    some envelope was an admitted top-level [Shutdown]; later envelopes
    in the group are still answered. *)

val serve_json_many :
  t -> ?received:float -> Mo_obs.Jsonb.t list -> Mo_obs.Jsonb.t list * bool
(** Parse and {!serve_many}; unparsable members yield error responses in
    their slots. The server's decode-ahead path. *)
