(** The mopcd accept loop: a dispatch pool in front of {!Engine}.

    The main domain owns the listening socket (Unix-domain or TCP) and
    blocks in [select] on two descriptors: the listener and a self-pipe.
    Each accepted connection is handed whole to a {!Mo_par.Workers}
    dispatch pool — one long-lived worker domain owns it from first
    frame to close, so [jobs] connections make independent progress and
    a slow client no longer holds the daemon. On OCaml 4.14 (no
    domains) the pool degrades to serving each connection inline on the
    accept loop — exactly the old single-dispatch behaviour.

    Safety of concurrent dispatch: the decision cache is striped (per
    digest), counters are atomic, and every compute is pure, so
    responses are byte-identical for any [jobs] — only wall-clock
    changes. Per-connection budgets bound how long a worker can be
    held: [recv_timeout_s] between frames (and on sends — a client that
    stops reading cannot wedge a writer), and [max_conn_requests]
    frames per connection, after which the server hangs up.

    Pipelining: within a connection the server decodes ahead — frames
    that have already arrived (up to [pipeline_depth]) are admitted as
    one group, their distinct cache misses computed in parallel, and
    the responses written back in request order in one batch.

    Failure containment, in decreasing severity:
    - a frame that does not parse as JSON, or a request with a bad op or
      predicate, gets an error {e response} and the connection lives on;
    - a framing error (bad header, oversized frame, EOF mid-frame) or a
      read timeout closes that {e connection} — the byte stream can no
      longer be trusted;
    - nothing short of a signal stops the {e server}: per-connection
      exceptions are caught and logged to stderr.

    Shutdown is event-driven: SIGINT/SIGTERM handlers and a worker that
    admitted a [shutdown] request write one byte to the self-pipe, so
    the accept loop (blocked in [select] with no timeout) wakes
    immediately — there is no polling interval to wait out. The stop
    path closes the listener, [shutdown]s every registered in-flight
    connection (unblocking parked reads), drains the worker pool,
    writes the [--persist] snapshot if configured, and unlinks the
    socket file (UDS). *)

type transport =
  | Uds of string  (** Unix-domain socket at this path *)
  | Tcp of string * int
      (** [host:port]; port 0 binds an ephemeral port — [on_ready]
          receives the actual address *)

type config = {
  transport : transport;
  cache_capacity : int;  (** decision cache entries; 0 disables *)
  stripes : int;  (** cache lock stripes (see {!Cache.create}) *)
  jobs : int option;
      (** dispatch worker domains (and the engine pool's width);
          [None] = {!Mo_par.default_jobs} *)
  max_frame : int;  (** reject larger request frames *)
  recv_timeout_s : float;  (** per-read (and per-send) socket timeout *)
  max_conn_requests : int;
      (** frames served per connection before the server hangs up *)
  pipeline_depth : int;
      (** max frames admitted as one decode-ahead group *)
  persist : string option;
      (** snapshot file for the digest → decision table: loaded before
          the first connection, written atomically at shutdown *)
  persist_interval_s : float option;
      (** with [persist] set, additionally snapshot every this many
          seconds from the accept loop (select gets a finite timeout
          instead of blocking forever), so a kill-9'd daemon restarts
          warm from the last interval rather than cold; each save bumps
          the [svc.persist.saves] counter. Ignored without [persist] or
          when [<= 0]. *)
}

val default_config : socket_path:string -> config
(** UDS transport, 4096 cache entries over 8 stripes, default pool,
    1 MiB frames, 10 s socket timeout, 10_000 requests per connection,
    pipeline depth 64, no persistence. *)

val remove_stale_socket : string -> (unit, string) result
(** Crash-tolerant startup probe. A missing path is fine; a socket file
    nobody accepts on (a kill-9'd daemon's corpse, detected by a refused
    connect) is unlinked; a socket with a live listener, or a path that
    is not a socket at all, is an [Error] — starting would steal or
    clobber someone else's file. Called by {!run} before binding (UDS
    only). *)

val run :
  ?engine:Engine.t -> ?on_ready:(Unix.sockaddr -> unit) -> config -> unit
(** Bind, listen, dispatch until shutdown; then clean up. On startup a
    stale UDS socket file left by a crashed daemon is detected (liveness
    probe) and removed ({!remove_stale_socket}); a live daemon's socket
    is never stolen. [on_ready] fires once the socket is accepting,
    with the {e bound} address (so a TCP listener on port 0 can report
    the ephemeral port it got). [engine] defaults to a fresh one built
    from the config — injectable for tests; [--persist] restore/save
    applies either way.
    @raise Unix.Unix_error if the socket cannot be bound.
    @raise Failure if the socket path is owned by a live daemon, is not
    a socket, or the TCP host does not resolve. *)
