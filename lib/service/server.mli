(** The mopcd accept loop: a Unix-domain socket in front of {!Engine}.

    One dispatch thread of control: connections are accepted and served
    in order, each as a sequence of frames (see {!Codec}). This keeps
    every cache and counter update on one domain — parallelism lives
    inside the engine's batch path, where it cannot perturb the
    deterministic accounting. The price of that model is that the
    connection being served holds the daemon: later connections wait in
    the listen queue until it finishes. Three budgets bound how long it
    can hold on — [recv_timeout_s] between frames, the same timeout on
    sends (a client that stops reading cannot wedge the writer), and
    [max_conn_requests] frames per connection, after which the server
    hangs up (the client just reconnects) so a frame-streaming client
    cannot starve everyone else forever.

    Failure containment, in decreasing severity:
    - a frame that does not parse as JSON, or a request with a bad op or
      predicate, gets an error {e response} and the connection lives on;
    - a framing error (bad header, oversized frame, EOF mid-frame) or a
      read timeout closes that {e connection} — the byte stream can no
      longer be trusted;
    - nothing short of a signal stops the {e server}: per-connection
      exceptions are caught and logged to stderr.

    Graceful shutdown on SIGINT/SIGTERM or a [shutdown] request: the
    in-flight connection is finished, the listening socket is closed and
    the socket file unlinked. *)

type config = {
  socket_path : string;
  cache_capacity : int;  (** decision cache entries; 0 disables *)
  jobs : int option;  (** worker domains; [None] = pool default *)
  max_frame : int;  (** reject larger request frames *)
  recv_timeout_s : float;  (** per-read (and per-send) socket timeout *)
  max_conn_requests : int;
      (** frames served per connection before the server hangs up *)
}

val default_config : socket_path:string -> config
(** 4096 cache entries, default pool, 1 MiB frames, 10 s socket
    timeout, 10_000 requests per connection. *)

val remove_stale_socket : string -> (unit, string) result
(** Crash-tolerant startup probe. A missing path is fine; a socket file
    nobody accepts on (a kill-9'd daemon's corpse, detected by a refused
    connect) is unlinked; a socket with a live listener, or a path that
    is not a socket at all, is an [Error] — starting would steal or
    clobber someone else's file. Called by {!run} before binding. *)

val run : ?engine:Engine.t -> ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen, serve until shutdown; then clean up the socket file.
    On startup a stale socket file left by a crashed daemon is detected
    (liveness probe) and removed ({!remove_stale_socket}); a live
    daemon's socket is never stolen. [on_ready] fires once the socket is
    accepting (the daemon prints its ready line from here). [engine]
    defaults to a fresh one built from the config — injectable for
    tests.
    @raise Unix.Unix_error if the socket cannot be bound.
    @raise Failure if the socket path is owned by a live daemon or is
    not a socket. *)
