open Mo_core
module J = Mo_obs.Jsonb
module Metrics = Mo_obs.Metrics

type t = {
  cache : J.t Cache.t;
  reg : Metrics.t;
  pool : Mo_par.Pool.t;
  clock : unit -> float;
  c_requests : Metrics.counter;
  c_errors : Metrics.counter;
  c_deadline : Metrics.counter;
  c_batches : Metrics.counter;
}

let create ?(cache_capacity = 4096) ?(stripes = 8) ?registry ?pool ?clock
    () =
  let reg = match registry with Some r -> r | None -> Metrics.create () in
  let pool = match pool with Some p -> p | None -> Mo_par.Pool.create () in
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    cache =
      Cache.create ~capacity:cache_capacity ~stripes ~registry:reg ~clock
        ();
    reg;
    pool;
    clock;
    c_requests =
      Metrics.counter reg ~help:"requests admitted" "svc.requests";
    c_errors =
      Metrics.counter reg ~help:"requests answered with an error"
        "svc.errors";
    c_deadline =
      Metrics.counter reg ~help:"requests rejected past their deadline"
        "svc.deadline_expired";
    c_batches = Metrics.counter reg ~help:"batch requests" "svc.batches";
  }

let registry t = t.reg

let cache_stats t =
  let stripe (s : Cache.stats) =
    J.Obj
      [
        ("size", J.Int s.Cache.size);
        ("hits", J.Int s.Cache.hits);
        ("misses", J.Int s.Cache.misses);
        ("evictions", J.Int s.Cache.evictions);
        ("age_min_s", J.Float s.Cache.age_min_s);
        ("age_median_s", J.Float s.Cache.age_median_s);
        ("age_max_s", J.Float s.Cache.age_max_s);
      ]
  in
  J.Obj
    [
      ("capacity", J.Int (Cache.capacity t.cache));
      ("stripes", J.Int (Cache.nstripes t.cache));
      ("size", J.Int (Cache.size t.cache));
      ("loaded", J.Int (Cache.loaded t.cache));
      ("hits", J.Int (Cache.hits t.cache));
      ("misses", J.Int (Cache.misses t.cache));
      ("evictions", J.Int (Cache.evictions t.cache));
      ( "stripe_stats",
        J.List
          (Array.to_list
             (Array.map stripe (Cache.stripe_stats t.cache))) );
    ]

let snapshot t = Cache.snapshot t.cache

let restore t entries = Cache.restore t.cache entries

let stripe_stats t = Cache.stripe_stats t.cache

let stats_payload t =
  J.Obj
    [ ("cache", cache_stats t); ("metrics", Metrics.to_json t.reg) ]

(* payload thunk of a computable request, with its cache key when the
   payload is a pure function of the canonicalized arguments; [None] as
   the key means compute-always (a monitor verdict depends on the
   trace, which has no useful canonical form) *)
let computable (req : Codec.request) =
  match req with
  | Codec.Classify p ->
      Some
        ( Some ("c:" ^ Canon.digest p),
          fun () -> Codec.classify_payload p )
  | Codec.Witness p ->
      Some
        (Some ("w:" ^ Canon.digest p), fun () -> Codec.witness_payload p)
  | Codec.Implies (a, b) ->
      Some
        ( Some ("i:" ^ Canon.digest a ^ ":" ^ Canon.digest b),
          fun () -> Codec.implies_payload a b )
  | Codec.Minimize ps ->
      Some
        ( Some ("m:" ^ Canon.spec_digest (Spec.make ~name:"query" ps)),
          fun () -> Codec.minimize_payload ps )
  | Codec.Monitor (p, trace, window) ->
      Some (None, fun () -> Codec.monitor_payload ?window p ~trace)
  | Codec.Lattice (p, kmax) ->
      (* kmax in the cache key: placements at different sweeps produce
         different payloads and must not collide under one digest *)
      let k = Option.value ~default:3 kmax in
      Some
        ( Some (Printf.sprintf "l:%d:%s" k (Canon.digest p)),
          fun () -> Codec.lattice_payload ~kmax:k p )
  | Codec.Stats | Codec.Shutdown | Codec.Batch _ -> None

(* admission: None when the request may proceed, Some response when it
   is already past its deadline relative to its arrival time *)
let check_deadline t ~received (env : Codec.envelope) =
  match env.Codec.deadline_ms with
  | None -> None
  | Some d ->
      if (t.clock () -. received) *. 1000. > float_of_int d then begin
        Metrics.inc t.c_deadline;
        Metrics.inc t.c_errors;
        Some
          (Codec.error_response ~id:env.Codec.id
             (Printf.sprintf "deadline of %d ms exceeded" d))
      end
      else None

(* what the sequential admission pass decides about one envelope *)
type admitted =
  | Done of J.t (* response already known *)
  | Stop of J.t (* shutdown admitted: respond, then stop the server *)
  | Miss of int * string option * (unit -> J.t)
    (* id, cache key (None = uncached compute), pure compute *)

let admit t ~received ~in_batch (env : Codec.envelope) =
  Metrics.inc t.c_requests;
  match check_deadline t ~received env with
  | Some resp -> Done resp
  | None -> (
      let id = env.Codec.id in
      match env.Codec.req with
      | Codec.Stats -> Done (Codec.ok_response ~id (stats_payload t))
      | Codec.Shutdown ->
          if in_batch then begin
            Metrics.inc t.c_errors;
            Done
              (Codec.error_response ~id
                 "shutdown is not allowed inside a batch")
          end
          else
            Stop (Codec.ok_response ~id (J.Obj [ ("shutdown", J.Bool true) ]))
      | Codec.Batch _ ->
          Metrics.inc t.c_errors;
          Done (Codec.error_response ~id "batches do not nest")
      | req -> (
          match computable req with
          | None ->
              Metrics.inc t.c_errors;
              Done (Codec.error_response ~id "unsupported request")
          | Some ((Some key as k), compute) -> (
              match Cache.find t.cache key with
              | Some payload -> Done (Codec.ok_response ~id payload)
              | None -> Miss (id, k, compute))
          | Some (None, compute) -> Miss (id, None, compute)))

(* guard a pure compute so a bad predicate or trace can never kill the
   server; Bad_request carries a message meant for the client *)
let run_compute compute =
  try Ok (compute ()) with
  | Codec.Bad_request msg -> Error msg
  | e -> Error ("internal error: " ^ Printexc.to_string e)

let respond t ~id result =
  match result with
  | Ok payload -> Codec.ok_response ~id payload
  | Error msg ->
      Metrics.inc t.c_errors;
      Codec.error_response ~id msg

let finish_miss t ~id ~key result =
  (match (key, result) with
  | Some key, Ok payload -> Cache.put t.cache key payload
  | _ -> ());
  respond t ~id result

(* Resolve an admission pass: compute the distinct missing keys in
   parallel over the pool, insert payloads in first-occurrence order,
   fill one response per slot in admission order. Shared by batches and
   pipelined groups — both get byte-identical responses for every job
   count because admission was sequential and this merge is ordered. *)
let resolve t admitted =
  (* work units: the first occurrence of each missing cacheable key,
     plus every uncached miss (those are keyed by their position) *)
  let seen = Hashtbl.create 16 in
  let work = ref [] in
  Array.iteri
    (fun i a ->
      match a with
      | Done _ | Stop _ -> ()
      | Miss (_, Some key, compute) ->
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            work := (i, Some key, compute) :: !work
          end
      | Miss (_, None, compute) -> work := (i, None, compute) :: !work)
    admitted;
  let work = Array.of_list (List.rev !work) in
  let results =
    Mo_par.Pool.map t.pool (Array.length work) ~f:(fun i ->
        let _, _, compute = work.(i) in
        run_compute compute)
  in
  let by_key = Hashtbl.create 16 in
  let by_slot = Hashtbl.create 16 in
  Array.iteri
    (fun i result ->
      match work.(i) with
      | _, Some key, _ ->
          (match result with
          | Ok payload -> Cache.put t.cache key payload
          | Error _ -> ());
          Hashtbl.replace by_key key result
      | slot, None, _ -> Hashtbl.replace by_slot slot result)
    results;
  let lost ~id =
    Metrics.inc t.c_errors;
    Codec.error_response ~id "internal error: result lost"
  in
  Array.mapi
    (fun i a ->
      match a with
      | Done resp | Stop resp -> resp
      | Miss (id, Some key, _) -> (
          match Hashtbl.find_opt by_key key with
          | Some result -> respond t ~id result
          | None -> lost ~id)
      | Miss (id, None, _) -> (
          match Hashtbl.find_opt by_slot i with
          | Some result -> respond t ~id result
          | None -> lost ~id))
    admitted

let handle_batch t ~received envs =
  Metrics.inc t.c_batches;
  let admitted =
    Array.of_list (List.map (admit t ~received ~in_batch:true) envs)
  in
  Array.to_list (resolve t admitted)

let serve t ?received (env : Codec.envelope) =
  let received =
    match received with Some r -> r | None -> t.clock ()
  in
  match env.Codec.req with
  | Codec.Batch envs -> (
      match check_deadline t ~received env with
      | Some resp -> (resp, false)
      | None ->
          Metrics.inc t.c_requests;
          let responses = handle_batch t ~received envs in
          ( Codec.ok_response ~id:env.Codec.id
              (J.Obj [ ("responses", J.List responses) ]),
            false ))
  | _ -> (
      match admit t ~received ~in_batch:false env with
      | Done resp -> (resp, false)
      | Stop resp -> (resp, true)
      | Miss (id, key, compute) ->
          (finish_miss t ~id ~key (run_compute compute), false))

let handle t ?received env = fst (serve t ?received env)

let serve_json t ?received json =
  match Codec.request_of_json json with
  | Ok env -> serve t ?received env
  | Error (id, msg) ->
      Metrics.inc t.c_errors;
      (Codec.error_response ~id msg, false)

let handle_json t ?received json = fst (serve_json t ?received json)

(* ---- pipelined groups -------------------------------------------- *)

(* A pipelined slot: either admitted into the shared resolve pass, or
   answered whole at its position (batches run their own resolve; parse
   errors have their response already). *)
type slot = Simple of admitted | Whole of J.t * bool

let slot_of_env t ~received (env : Codec.envelope) =
  match env.Codec.req with
  | Codec.Batch _ ->
      let resp, stop = serve t ~received env in
      Whole (resp, stop)
  | _ -> Simple (admit t ~received ~in_batch:false env)

let serve_slots t slots =
  let simple =
    Array.of_list
      (List.filter_map
         (function Simple a -> Some a | Whole _ -> None)
         slots)
  in
  let resolved = resolve t simple in
  let k = ref 0 in
  let stop = ref false in
  let responses =
    List.map
      (function
        | Whole (resp, s) ->
            if s then stop := true;
            resp
        | Simple a ->
            let resp = resolved.(!k) in
            incr k;
            (match a with Stop _ -> stop := true | Done _ | Miss _ -> ());
            resp)
      slots
  in
  (responses, !stop)

let serve_many t ?received envs =
  let received = match received with Some r -> r | None -> t.clock () in
  serve_slots t (List.map (slot_of_env t ~received) envs)

let serve_json_many t ?received jsons =
  let received = match received with Some r -> r | None -> t.clock () in
  serve_slots t
    (List.map
       (fun json ->
         match Codec.request_of_json json with
         | Ok env -> slot_of_env t ~received env
         | Error (id, msg) ->
             Metrics.inc t.c_errors;
             Whole (Codec.error_response ~id msg, false))
       jsons)
