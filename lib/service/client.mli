(** Client side of the mopcd codec: one connection, sequential or
    pipelined calls, over a Unix-domain socket or TCP. *)

type t

type addr =
  | Uds of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val addr_to_string : addr -> string

type retry = {
  attempts : int;  (** total connect attempts, ≥ 1 *)
  base_delay_s : float;  (** sleep after the first failure *)
  max_delay_s : float;  (** cap for the doubling backoff *)
  connect_timeout_s : float;  (** per-attempt bound on the connect itself *)
}

val default_retry : retry
(** 5 attempts, 50 ms doubling to an 800 ms cap, 5 s connect timeout —
    a briefly-restarting or busy daemon is ridden out; a dead one turns
    into a clear error in under two seconds. *)

val no_retry : retry
(** A single attempt (still with the connect timeout). *)

val connect_addr :
  ?retry:retry -> ?sleep:(float -> unit) -> addr -> (t, string) result
(** Connect with bounded retries: transient failures (socket file not
    there yet, nobody listening on a stale one, full listen queue,
    connect timeout, connection refused/reset) are retried with capped
    exponential backoff; permanent ones (permissions, not a socket, an
    unresolvable host) fail immediately. Each attempt's connect is
    itself bounded by [retry.connect_timeout_s], so a wedged daemon
    yields a timeout error rather than a hang. TCP connections set
    [TCP_NODELAY] — pipelined frames must not wait out Nagle. [sleep]
    (default [Unix.sleepf]) is injectable for deterministic tests. *)

val connect :
  ?retry:retry ->
  ?sleep:(float -> unit) ->
  socket_path:string ->
  unit ->
  (t, string) result
(** [connect_addr (Uds socket_path)]. *)

val call :
  t ->
  ?deadline_ms:int ->
  Codec.request ->
  (Mo_obs.Jsonb.t, string) result
(** Send one request (ids are assigned internally) and wait for its
    response; returns the [result] payload, or the server's [error]
    message, or a transport error. *)

val call_pipelined :
  t ->
  ?deadline_ms:int ->
  Codec.request list ->
  (Mo_obs.Jsonb.t, string) result list
(** Send every request in one write, then collect the responses in
    request order — one result per request (same order), exercising the
    server's decode-ahead path. A transport failure mid-stream fills
    the remaining slots with that error. *)

val call_raw : t -> Mo_obs.Jsonb.t -> (Mo_obs.Jsonb.t, string) result
(** Send a pre-built request object and return the raw response object —
    the CLI uses this to print full responses. *)

val close : t -> unit
