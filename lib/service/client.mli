(** Client side of the mopcd codec: one connection, sequential calls. *)

type t

val connect : socket_path:string -> (t, string) result

val call :
  t ->
  ?deadline_ms:int ->
  Codec.request ->
  (Mo_obs.Jsonb.t, string) result
(** Send one request (ids are assigned internally) and wait for its
    response; returns the [result] payload, or the server's [error]
    message, or a transport error. *)

val call_raw : t -> Mo_obs.Jsonb.t -> (Mo_obs.Jsonb.t, string) result
(** Send a pre-built request object and return the raw response object —
    the CLI uses this to print full responses. *)

val close : t -> unit
