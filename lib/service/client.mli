(** Client side of the mopcd codec: one connection, sequential calls. *)

type t

type retry = {
  attempts : int;  (** total connect attempts, ≥ 1 *)
  base_delay_s : float;  (** sleep after the first failure *)
  max_delay_s : float;  (** cap for the doubling backoff *)
  connect_timeout_s : float;  (** per-attempt bound on the connect itself *)
}

val default_retry : retry
(** 5 attempts, 50 ms doubling to an 800 ms cap, 5 s connect timeout —
    a briefly-restarting or busy daemon is ridden out; a dead one turns
    into a clear error in under two seconds. *)

val no_retry : retry
(** A single attempt (still with the connect timeout). *)

val connect :
  ?retry:retry ->
  ?sleep:(float -> unit) ->
  socket_path:string ->
  unit ->
  (t, string) result
(** Connect with bounded retries: transient failures (socket file not
    there yet, nobody listening on a stale one, full listen queue,
    connect timeout) are retried with capped exponential backoff;
    permanent ones (permissions, not a socket) fail immediately. Each
    attempt's connect is itself bounded by [retry.connect_timeout_s], so
    a wedged daemon yields a timeout error rather than a hang. [sleep]
    (default [Unix.sleepf]) is injectable for deterministic tests. *)

val call :
  t ->
  ?deadline_ms:int ->
  Codec.request ->
  (Mo_obs.Jsonb.t, string) result
(** Send one request (ids are assigned internally) and wait for its
    response; returns the [result] payload, or the server's [error]
    message, or a transport error. *)

val call_raw : t -> Mo_obs.Jsonb.t -> (Mo_obs.Jsonb.t, string) result
(** Send a pre-built request object and return the raw response object —
    the CLI uses this to print full responses. *)

val close : t -> unit
