(* Causal broadcast in a chat room — the classic motivation for causal
   ordering [4].

   Alice broadcasts a question; Bob broadcasts an answer after seeing it.
   Under the do-nothing protocol, Carol can receive the answer before the
   question. Causal ordering (an order-1 predicate: tagging suffices)
   restores sanity; the BSS vector protocol implements it with an n-entry
   tag.

   Run with: dune exec examples/causal_chat.exe *)

open Mo_core
open Mo_protocol

let nprocs = 4 (* Alice=0, Bob=1, Carol=2, Dave=3 *)

let name = function
  | 0 -> "alice"
  | 1 -> "bob"
  | 2 -> "carol"
  | _ -> "dave"

(* conversation: broadcasts spaced closer than the network jitter, so
   copies of successive messages from the same author can overtake each
   other in flight — the causal chain alice(0) -> alice(2) is program
   order, so its inversion at Carol is a genuine causal violation *)
let conversation =
  [
    (0, "anyone up for lunch?");
    (1, "yes! the usual place?");
    (0, "works for me");
    (3, "count me in");
  ]

let workload =
  List.mapi (fun i (who, _) -> Sim.bcast ~at:(i * 10) ~src:who ()) conversation

let text_of_group =
  (* message ids are assigned per copy in op order: 3 copies per
     broadcast *)
  fun id -> snd (List.nth conversation (id / (nprocs - 1)))

let author_of id = fst (List.nth conversation (id / (nprocs - 1)))

let transcript_for (run : Mo_order.Run.t) reader =
  List.filter_map
    (fun (e : Mo_order.Event.t) ->
      match e.point with
      | Mo_order.Event.R ->
          Some (Printf.sprintf "  %s sees <%s> %s" (name reader)
                  (name (author_of e.msg)) (text_of_group e.msg))
      | Mo_order.Event.S -> None)
    (Mo_order.Run.sequence run reader)

let causal_spec = Spec.make ~name:"causal" [ Catalog.causal_b2.Catalog.pred ]

let show ?(reader = 2) factory seed =
  let cfg = { (Sim.default_config ~nprocs) with Sim.seed; jitter = 25 } in
  let r = Conformance.check_exn ~spec:causal_spec cfg factory workload in
  (match r.Conformance.outcome.Sim.run with
  | Some run -> List.iter print_endline (transcript_for run reader)
  | None -> print_endline "  (deadlocked)");
  r

let () =
  Format.printf "classification of causal ordering: %a@.@." Classify.pp_result
    (Classify.classify Catalog.causal_b2.Catalog.pred);

  (* find a seed where the unprotected chat confuses Carol *)
  let confusing =
    List.find_opt
      (fun seed ->
        let cfg = { (Sim.default_config ~nprocs) with Sim.seed; jitter = 25 } in
        let r = Conformance.check_exn ~spec:causal_spec cfg Tagless.factory workload in
        r.Conformance.spec_ok = Some false)
      (List.init 100 Fun.id)
  in
  (match confusing with
  | Some seed ->
      (* print the transcript of the process that actually got confused *)
      let cfg = { (Sim.default_config ~nprocs) with Sim.seed; jitter = 25 } in
      let probe = Conformance.check_exn ~spec:causal_spec cfg Tagless.factory workload in
      let reader =
        match probe.Conformance.violation with
        | Some (_, a) -> snd probe.Conformance.outcome.Sim.msgs.(a.(0))
        | None -> 2
      in
      Format.printf "without ordering (seed %d), %s reads:@." seed (name reader);
      ignore (show ~reader Tagless.factory seed);
      Format.printf "@.with BSS causal broadcast, same seed:@.";
      let r = show ~reader Causal_bss.factory seed in
      Format.printf "  [causal spec satisfied: %b, tag bytes: %d]@."
        (r.Conformance.spec_ok = Some true)
        r.Conformance.outcome.Sim.stats.Sim.tag_bytes
  | None ->
      Format.printf "no confusing interleaving found in 100 seeds@.");

  (* RST also works, at matrix-tag cost *)
  Format.printf "@.with RST causal ordering (matrix tags), seed 0:@.";
  let r = show Causal_rst.factory 0 in
  Format.printf "  [causal spec satisfied: %b, tag bytes: %d]@."
    (r.Conformance.spec_ok = Some true)
    r.Conformance.outcome.Sim.stats.Sim.tag_bytes
