(* Quickstart: specify a message ordering with a forbidden predicate,
   classify it, inspect the certificate, synthesize a protocol, and check a
   simulated run against the specification.

   Run with:  dune exec examples/quickstart.exe
   Or:        dune exec examples/quickstart.exe -- "x.s < y.s & y.r < x.r"
*)

open Mo_core
open Mo_protocol
open Mo_workload

let default = "x.s < y.s & y.r < x.r" (* causal ordering *)

let () =
  let input = if Array.length Sys.argv > 1 then Sys.argv.(1) else default in
  Format.printf "forbidden predicate B:  %s@." input;

  (* 1. parse the specification *)
  let pred =
    match Parse.predicate input with
    | Ok p -> p
    | Error e ->
        Format.eprintf "parse error: %s@." e;
        exit 1
  in

  (* 2. build the predicate graph and classify (Theorems 2-4) *)
  let result = Classify.classify pred in
  Format.printf "@.classification:@.  %a@." Classify.pp_result result;

  (* 3. show the Lemma 4 weakening of the certificate cycle *)
  (match result.Classify.best_cycle with
  | Some cycle ->
      let contraction = Weaken.contract cycle in
      Format.printf "@.lemma 4 contraction:@.  %a@." Weaken.pp contraction
  | None -> ());

  (* 4. the witness run of Theorem 2/4, and where it falls *)
  (match Witness.build pred with
  | Witness.Witness w ->
      Format.printf "@.witness run (violates the specification):@.%s"
        (Mo_order.Diagram.render_abstract w.Witness.run);
      Format.printf "witness is in: %s@."
        (Mo_order.Limits.cls_to_string (Mo_order.Limits.classify w.Witness.run))
  | Witness.Cyclic ->
      Format.printf
        "@.no witness: B can hold in no run, the specification is all of \
         X_async@."
  | Witness.Conflicting_guards ->
      Format.printf "@.no witness: the guards are unsatisfiable@.");

  (* 5. synthesize a protocol and run it on a workload *)
  match Synth.for_predicate pred with
  | Error e -> Format.printf "@.synthesis: %s@." e
  | Ok (factory, _) ->
      Format.printf "@.synthesized protocol: %s@." factory.Protocol.proto_name;
      let w = Gen.uniform ~nprocs:4 ~nmsgs:40 ~seed:7 in
      let spec = Spec.make ~name:"user-spec" [ pred ] in
      let report =
        Conformance.check_exn ~spec (Sim.default_config ~nprocs:4) factory
          w.Gen.ops
      in
      Format.printf "conformance on a 40-message workload:@.%a@."
        Conformance.pp_report report
