(* Chandy-Lamport global snapshots need FIFO channels — the paper's §2
   observation that "asynchronous consistent-cut protocols require some
   form of inhibition" made concrete.

   A bank: every process starts with 100 tokens and transfers random
   amounts. A snapshot records every balance plus the amounts in flight on
   each channel; it is consistent iff the recorded total equals the real
   total. Markers are ordinary user messages (colored MARKER) flowing
   through the same ordering protocol as the transfers, as in the original
   algorithm: a process records its balance when it first sends or
   delivers a marker, and the recording of channel p->q collects the
   transfers delivered from p after q recorded and before p's marker
   arrives.

   On FIFO channels the marker "flushes" each channel (the local
   forward-flush predicate of §6 — an order-1 cycle, tagging suffices) and
   the snapshot is consistent on every schedule. On raw channels a
   transfer sent before the marker can arrive after it and the money
   evaporates from the snapshot.

   Run with: dune exec examples/global_snapshot.exe *)

open Mo_protocol

let marker_color = 99

let nprocs = 4

let initial_balance = 100

type snapshot = {
  balances : int option array; (* recorded local states *)
  channels : (int * int, int) Hashtbl.t; (* (src, dst) -> recorded amount *)
  mutable closed : (int * int) list; (* channels whose marker arrived *)
}

let fresh_snapshot () =
  {
    balances = Array.make nprocs None;
    channels = Hashtbl.create 16;
    closed = [];
  }

(* Wrap an ordering protocol with the bank + snapshot application. The
   wrapper observes invokes and deliveries; the base protocol decides all
   ordering. *)
let bank_factory (base : Protocol.factory) (snap : snapshot)
    (balances : int array) =
  let make ~nprocs ~me =
    let inner = base.Protocol.make ~nprocs ~me in
    let meta = Hashtbl.create 32 in
    (* id -> (from, payload, is_marker), stashed at receive time *)
    let record_local () =
      if snap.balances.(me) = None then
        snap.balances.(me) <- Some balances.(me)
    in
    let on_deliver id =
      match Hashtbl.find_opt meta id with
      | None -> ()
      | Some (from, amount, is_marker) ->
          if is_marker then begin
            record_local ();
            snap.closed <- (from, me) :: snap.closed
          end
          else begin
            balances.(me) <- balances.(me) + amount;
            (* channel recording: delivered after my recording, before the
               channel's marker *)
            if
              snap.balances.(me) <> None
              && not (List.mem (from, me) snap.closed)
            then
              Hashtbl.replace snap.channels (from, me)
                (amount
                + Option.value ~default:0
                    (Hashtbl.find_opt snap.channels (from, me)))
          end
    in
    let observe actions =
      List.iter
        (fun (a : Protocol.action) ->
          match a with
          | Protocol.Deliver id -> on_deliver id
          | Protocol.Send_user _ | Protocol.Send_control _
          | Protocol.Send_framed _ | Protocol.Set_timer _ -> ())
        actions;
      actions
    in
    {
      Protocol.on_invoke =
        (fun ~now (intent : Protocol.intent) ->
          if intent.color = Some marker_color then record_local ()
          else balances.(me) <- balances.(me) - intent.payload;
          observe (inner.Protocol.on_invoke ~now intent));
      on_packet =
        (fun ~now ~from packet ->
          (match packet with
          | Message.User u ->
              Hashtbl.replace meta u.Message.id
                (from, u.Message.payload, u.Message.color = Some marker_color)
          | Message.Control _ | Message.Framed _ -> ());
          observe (inner.Protocol.on_packet ~now ~from packet));
      on_timer = inner.Protocol.on_timer;
      pending_depth = inner.Protocol.pending_depth;
    }
  in
  { base with Protocol.make = make }

(* transfers on every channel, with a marker wave in the middle *)
let workload seed =
  let rng = Random.State.make [| seed |] in
  let transfers at =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst ->
            if src = dst then None
            else
              Some
                (Sim.op
                   ~payload:(1 + Random.State.int rng 5)
                   ~at:(at + Random.State.int rng 4)
                   ~src ~dst ()))
          (List.init nprocs Fun.id))
      (List.init nprocs Fun.id)
  in
  let markers =
    (* every process initiates at (slightly different) times: the
       multiple-initiator variant of the algorithm *)
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst ->
            if src = dst then None
            else
              Some
                (Sim.op ~color:marker_color ~at:(20 + src) ~src ~dst ()))
          (List.init nprocs Fun.id))
      (List.init nprocs Fun.id)
  in
  transfers 0 @ transfers 10 @ markers @ transfers 24 @ transfers 34

let run_snapshot base seed =
  let snap = fresh_snapshot () in
  let balances = Array.make nprocs initial_balance in
  let cfg = { (Sim.default_config ~nprocs) with Sim.seed; jitter = 18 } in
  match Sim.execute cfg (bank_factory base snap balances) (workload seed) with
  | Error e -> Error e
  | Ok o ->
      if not o.Sim.all_delivered then Error "not all delivered"
      else
        let recorded_balances =
          Array.fold_left
            (fun acc b -> acc + Option.value ~default:0 b)
            0 snap.balances
        in
        let recorded_channels =
          Hashtbl.fold (fun _ v acc -> acc + v) snap.channels 0
        in
        Ok (recorded_balances, recorded_channels, balances)

let () =
  let total = nprocs * initial_balance in
  Format.printf
    "Chandy-Lamport snapshots over %d processes, true total = %d tokens@.@."
    nprocs total;

  (* FIFO: consistent on every seed *)
  let fifo_ok = ref 0 and fifo_bad = ref 0 in
  List.iter
    (fun seed ->
      match run_snapshot Fifo.factory seed with
      | Ok (b, c, final) ->
          if b + c = total then incr fifo_ok else incr fifo_bad;
          if seed = 0 then
            Format.printf
              "seed 0 on FIFO: recorded balances = %d, in channels = %d, \
               snapshot total = %d  [final live balances: %s]@."
              b c (b + c)
              (String.concat "+"
                 (List.map string_of_int (Array.to_list final)))
      | Error e -> Format.printf "seed %d on FIFO: %s@." seed e)
    (List.init 40 Fun.id);
  Format.printf "FIFO channels: %d/40 snapshots consistent@.@." !fifo_ok;

  (* raw (tagless) channels: some snapshot loses money *)
  let bad_example = ref None in
  let raw_ok = ref 0 in
  List.iter
    (fun seed ->
      match run_snapshot Tagless.factory seed with
      | Ok (b, c, _) ->
          if b + c = total then incr raw_ok
          else if !bad_example = None then bad_example := Some (seed, b, c)
      | Error e -> Format.printf "seed %d raw: %s@." seed e)
    (List.init 40 Fun.id);
  Format.printf "raw channels: %d/40 snapshots consistent@." !raw_ok;
  (match !bad_example with
  | Some (seed, b, c) ->
      let diff = (b + c) - total in
      Format.printf
        "  e.g. seed %d records %d + %d = %d tokens — %d tokens %s because \
         a transfer overtook (or was overtaken by) the marker@."
        seed b c (b + c) (abs diff)
        (if diff > 0 then "were double-counted" else "vanished")
  | None -> Format.printf "  (no inconsistency found in 40 seeds)@.");

  Format.printf
    "@.the marker guarantee is the local forward-flush predicate of §6:@.";
  Format.printf "  forbid %s@."
    (Mo_core.Forbidden.to_string
       Mo_core.Catalog.local_forward_flush.Mo_core.Catalog.pred);
  Format.printf "  classification: %s — tagging (FIFO seqnos) suffices@."
    (Mo_core.Classify.verdict_to_string
       (Mo_core.Classify.classify
          Mo_core.Catalog.local_forward_flush.Mo_core.Catalog.pred)
         .Mo_core.Classify.verdict)
