(* Designing a custom message ordering, end to end.

   Scenario: a trading gateway. Cancellation messages (color 9) must never
   arrive after two or more orders that were sent after them on the same
   connection — a bounded-overtaking guarantee for a distinguished message
   class, stronger than nothing, weaker than FIFO.

   The workflow this example walks through is the library's intended use:
     1. write the guarantee as a forbidden predicate;
     2. classify it (and read the explanation);
     3. compare it with the standard guarantees (implication);
     4. synthesize a protocol — both the universal one and the optimized
        one — and check conformance;
     5. monitor a live trace.

   Run with: dune exec examples/custom_ordering.exe *)

open Mo_core
open Mo_protocol
open Mo_workload

let cancel_color = 9

(* forbidden: a cancel (x0) overtaken by two same-channel messages sent
   after it: s(x0) < s(x1) < s(x2) but both delivered before the cancel *)
let spec_text =
  "c.s < a.s & a.s < b.s & a.r < c.r & b.r < c.r & src(c) = src(a) & \
   src(a) = src(b) & dst(c) = dst(a) & dst(a) = dst(b) & color(c) = 9"

let () =
  Format.printf "the guarantee, as a forbidden predicate:@.  %s@.@." spec_text;
  let pred = Parse.predicate_exn spec_text in

  (* 2. classification with explanation *)
  print_string (Classify.explain pred);

  (* 3. relate it to the standard guarantees *)
  Format.printf "@.relation to standard guarantees:@.";
  let rel name other =
    let fwd = Implies.check pred other and bwd = Implies.check other pred in
    Format.printf "  vs %-12s our pattern %s theirs; theirs %s ours@." name
      (if fwd then "implies" else "does not imply")
      (if bwd then "implies" else "does not imply")
  in
  rel "fifo" Catalog.fifo.Catalog.pred;
  rel "causal" Catalog.causal_b2.Catalog.pred;
  rel "backward-flush"
    (Forbidden.make ~nvars:2
       ~guards:
         Term.[ Same_src (0, 1); Same_dst (0, 1); Color_is (0, cancel_color) ]
       Term.[ s 0 @> s 1; r 1 @> r 0 ]);

  (* 4. synthesis: universal vs optimized *)
  (match (Synth.for_predicate pred, Synth.optimize pred) with
  | Ok (universal, _), Ok opt ->
      Format.printf "@.universal protocol: %s@." universal.Protocol.proto_name;
      Format.printf "optimized protocol: %s@.  (%s)@."
        opt.Synth.factory.Protocol.proto_name opt.Synth.rationale;
      (* conformance of both on a cancel-heavy workload *)
      let ops =
        (Gen.with_colors ~every:5 ~color:cancel_color
           (Gen.pairwise_flood ~nprocs:3 ~per_pair:15 ~seed:2))
          .Gen.ops
      in
      let spec = Spec.make ~name:"cancel-window" [ pred ] in
      List.iter
        (fun (label, factory) ->
          let cfg =
            { (Sim.default_config ~nprocs:3) with Sim.jitter = 25 }
          in
          let r = Conformance.check_exn ~spec cfg factory ops in
          Format.printf
            "  %-22s live=%b spec=%s tag bytes=%d mean latency=%.2f@." label
            r.Conformance.live
            (match r.Conformance.spec_ok with
            | Some true -> "ok"
            | Some false -> "VIOLATED"
            | None -> "-")
            r.Conformance.outcome.Sim.stats.Sim.tag_bytes
            (Sim.mean_latency r.Conformance.outcome.Sim.stats
               ~nmsgs:(Array.length r.Conformance.outcome.Sim.msgs)))
        [
          ("universal (RST)", Causal_rst.factory);
          ("optimized", opt.Synth.factory);
          ("tagless (unsafe?)", Tagless.factory);
        ]
  | Error e, _ | _, Error e -> Format.printf "synthesis failed: %s@." e);

  (* 5. the same guarantee, monitored on a hand-written trace *)
  Format.printf
    "@.monitoring a trace where the cancel is overtaken by two orders:@.";
  let t = Mo_order.Online.create ~nprocs:2 ~nmsgs:3 in
  Mo_order.Online.send t ~msg:0 ~src:0 ~dst:1;
  (* cancel *)
  Mo_order.Online.send t ~msg:1 ~src:0 ~dst:1;
  Mo_order.Online.send t ~msg:2 ~src:0 ~dst:1;
  List.iter
    (fun m ->
      List.iter
        (fun (v : Mo_order.Online.violation) ->
          Format.printf "  %s: x%d overtook x%d@."
            (match v.kind with `Fifo -> "fifo" | `Causal -> "causal")
            v.later v.earlier)
        (Mo_order.Online.deliver t ~msg:m))
    [ 1; 2; 0 ];
  Format.printf
    "  (the monitor reports per-channel overtakes; our spec tolerates one \
     overtake@.   of a cancel but not two — predicate evaluation on the \
     recorded run decides)@."
