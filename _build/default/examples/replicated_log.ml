(* State-machine replication needs total order, not just causal order.

   Four replicas hold a register and broadcast non-commutative commands
   (add n / double). If every replica applies every command in the same
   global order, the states converge; causal broadcast alone lets two
   concurrent commands be applied in different orders at different
   replicas, and the registers drift apart permanently.

   With the sequencer-based total-order protocol, a replica applies
   commands in ticket order — its own commands at their granted ticket,
   everyone else's at delivery. With BSS (causal only), the best a replica
   can do is apply its own commands immediately and others at delivery.

   Run with: dune exec examples/replicated_log.exe *)

open Mo_protocol

let nprocs = 4

(* commands encoded in the payload *)
let encode_add n = n

let encode_double = 1000

let apply state payload =
  if payload = encode_double then state * 2 else state + payload

(* commands: concurrent add/double bursts — order matters *)
let commands =
  [
    (0, encode_add 5);
    (1, encode_double);
    (2, encode_add 3);
    (3, encode_double);
    (1, encode_add 7);
    (0, encode_double);
  ]

let workload =
  List.mapi
    (fun i (who, payload) -> Sim.bcast ~payload ~at:(i * 2) ~src:who ())
    commands

(* --- replica built on the total-order protocol: apply in ticket order --- *)

let to_replicas () =
  let states = Array.make nprocs 0 in
  let applied = Array.make nprocs 0 (* next ticket to apply, per replica *) in
  let slots = Array.init nprocs (fun _ -> Hashtbl.create 16) in
  (* per replica: ticket -> payload *)
  let drain me =
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt slots.(me) applied.(me) with
      | Some payload ->
          states.(me) <- apply states.(me) payload;
          applied.(me) <- applied.(me) + 1
      | None -> continue := false
    done
  in
  let make ~nprocs ~me =
    let inner = Total_order.factory.Protocol.make ~nprocs ~me in
    let own_payloads = Queue.create () in
    (* grants come back in request order, which is invoke order *)
    let last_group = ref None in
    let payload_of = Hashtbl.create 16 in
    {
      Protocol.on_invoke =
        (fun ~now (intent : Protocol.intent) ->
          (* remember one payload per broadcast group *)
          if !last_group <> intent.group then begin
            last_group := intent.group;
            Queue.push intent.payload own_payloads
          end;
          inner.Protocol.on_invoke ~now intent);
      on_packet =
        (fun ~now ~from packet ->
          (match packet with
          | Message.User u -> (
              match u.Message.tag with
              | Message.Ticket t ->
                  Hashtbl.replace payload_of u.Message.id u.Message.payload;
                  Hashtbl.replace slots.(me) t u.Message.payload
              | _ -> ())
          | Message.Control { kind = "togrant"; data } ->
              (* my next queued command gets this ticket *)
              let t = data.(0) in
              let payload = Queue.pop own_payloads in
              Hashtbl.replace slots.(me) t payload
          | Message.Control _ | Message.Framed _ -> ());
          let actions = inner.Protocol.on_packet ~now ~from packet in
          drain me;
          actions);
      on_timer = inner.Protocol.on_timer;
      pending_depth = inner.Protocol.pending_depth;
    }
  in
  ({ Total_order.factory with Protocol.make }, states)

(* --- replica on causal broadcast: own commands at invoke, rest at
   delivery --- *)

let bss_replicas () =
  let states = Array.make nprocs 0 in
  let make ~nprocs ~me =
    let inner = Causal_bss.factory.Protocol.make ~nprocs ~me in
    let payload_of = Hashtbl.create 16 in
    let last_group = ref None in
    {
      Protocol.on_invoke =
        (fun ~now (intent : Protocol.intent) ->
          if !last_group <> intent.group then begin
            last_group := intent.group;
            states.(me) <- apply states.(me) intent.payload
          end;
          inner.Protocol.on_invoke ~now intent);
      on_packet =
        (fun ~now ~from packet ->
          (match packet with
          | Message.User u ->
              Hashtbl.replace payload_of u.Message.id u.Message.payload
          | Message.Control _ | Message.Framed _ -> ());
          let actions = inner.Protocol.on_packet ~now ~from packet in
          List.iter
            (fun (a : Protocol.action) ->
              match a with
              | Protocol.Deliver id ->
                  states.(me) <- apply states.(me) (Hashtbl.find payload_of id)
              | _ -> ())
            actions;
          actions);
      on_timer = inner.Protocol.on_timer;
      pending_depth = inner.Protocol.pending_depth;
    }
  in
  ({ Causal_bss.factory with Protocol.make }, states)

let show name states =
  Format.printf "  %-14s registers: [%s]  %s@." name
    (String.concat "; " (List.map string_of_int (Array.to_list states)))
    (if Array.for_all (fun s -> s = states.(0)) states then "CONVERGED"
     else "DIVERGED")

let () =
  Format.printf
    "six non-commutative commands broadcast concurrently by 4 replicas@.@.";
  let diverged = ref None in
  List.iter
    (fun seed ->
      let cfg = { (Sim.default_config ~nprocs) with Sim.seed; jitter = 20 } in
      (* total order *)
      let to_factory, to_states = to_replicas () in
      (match Sim.execute cfg to_factory workload with
      | Ok o when o.Sim.all_delivered ->
          if not (Array.for_all (fun s -> s = to_states.(0)) to_states) then
            Format.printf "UNEXPECTED: total order diverged at seed %d@." seed
      | Ok _ -> Format.printf "seed %d: total order not live@." seed
      | Error e -> Format.printf "seed %d: %s@." seed e);
      (* causal only *)
      let bss_factory, bss_states = bss_replicas () in
      match Sim.execute cfg bss_factory workload with
      | Ok o when o.Sim.all_delivered ->
          if
            (not (Array.for_all (fun s -> s = bss_states.(0)) bss_states))
            && !diverged = None
          then diverged := Some (seed, Array.copy bss_states)
      | Ok _ | Error _ -> ())
    (List.init 30 Fun.id);
  let cfg = { (Sim.default_config ~nprocs) with Sim.seed = 1; jitter = 20 } in
  let to_factory, to_states = to_replicas () in
  (match Sim.execute cfg to_factory workload with
  | Ok _ -> show "total-order" to_states
  | Error e -> Format.printf "error: %s@." e);
  (match !diverged with
  | Some (seed, states) ->
      Format.printf "@.causal-only replication at seed %d:@." seed;
      show "causal (BSS)" states
  | None ->
      Format.printf
        "@.causal-only replication happened to agree on all 30 seeds@.");
  Format.printf
    "@.total order held on all 30 seeds; causal delivery alone cannot \
     guarantee it@.(agreement between replicas is not a forbidden \
     predicate — see Mo_order.Broadcast_props).@."
