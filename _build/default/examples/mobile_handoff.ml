(* The mobile-computation scenario from Section 6 of the paper.

   When a mobile unit moves between cells, the old base station sends a
   HANDOFF message to the new one. Correctness requires that no in-flight
   message "straddles" the handoff: every other message must be wholly
   before or wholly after it, otherwise state transferred by the handoff
   can be stale or duplicated.

   The paper's conclusion: this guarantee cannot be achieved by tagging
   user messages — control messages are required. This example reproduces
   that: the spec classifies as `general`; the best tagged protocol (RST
   causal ordering) violates it under some schedule; the token-serialized
   general protocol always satisfies it.

   Run with: dune exec examples/mobile_handoff.exe *)

open Mo_core
open Mo_protocol

let handoff_color = 7

let spec =
  Spec.make ~name:"mobile-handoff" [ Catalog.mobile_handoff.Catalog.pred ]

(* Base stations 0 and 1 exchange traffic; station 0 hands the mobile off
   to station 1 while station 1 is still sending data back. *)
let workload =
  [
    Sim.op ~at:0 ~src:1 ~dst:0 ();
    (* data from the new cell... *)
    Sim.op ~at:0 ~src:0 ~dst:1 ~color:handoff_color ();
    (* ...crosses the handoff *)
    Sim.op ~at:4 ~src:1 ~dst:0 ();
    Sim.op ~at:6 ~src:0 ~dst:1 ();
  ]

let try_protocol factory seed =
  let cfg = { (Sim.default_config ~nprocs:2) with Sim.seed; jitter = 12 } in
  let r = Conformance.check_exn ~spec cfg factory workload in
  (r.Conformance.spec_ok = Some true, r)

let () =
  Format.printf "specification: no message straddles a handoff message@.";
  Format.printf "  forbid %s@.@."
    (Forbidden.to_string Catalog.mobile_handoff.Catalog.pred);
  let result = Classify.classify Catalog.mobile_handoff.Catalog.pred in
  Format.printf "classification: %a@.@." Classify.pp_result result;

  (* hunt for a schedule where the tagged protocol breaks the spec *)
  let violating_seed =
    List.find_opt
      (fun seed -> not (fst (try_protocol Causal_rst.factory seed)))
      (List.init 50 Fun.id)
  in
  (match violating_seed with
  | Some seed ->
      let _, r = try_protocol Causal_rst.factory seed in
      Format.printf
        "tagged protocol (RST causal) violates the spec under seed %d:@." seed;
      (match r.Conformance.violation with
      | Some (_, a) ->
          Format.printf "  messages %s straddle the handoff@."
            (String.concat "," (List.map string_of_int (Array.to_list a)))
      | None -> ());
      (match r.Conformance.outcome.Sim.run with
      | Some run -> print_string (Mo_order.Diagram.render_run run)
      | None -> ())
  | None ->
      Format.printf
        "no violating schedule found in 50 seeds (unexpected; the theorem \
         only promises existence)@.");

  (* the general protocol is always safe *)
  Format.printf
    "@.general protocol (token-serialized) across the same 50 seeds:@.";
  let all_ok =
    List.for_all
      (fun seed -> fst (try_protocol Sync_token.factory seed))
      (List.init 50 Fun.id)
  in
  Format.printf "  spec satisfied on every seed: %b@." all_ok;
  let _, r = try_protocol Sync_token.factory 0 in
  Format.printf "  control messages used: %d (tagged protocols used 0)@."
    r.Conformance.outcome.Sim.stats.Sim.control_packets
