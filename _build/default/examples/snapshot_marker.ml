(* Global forward-flush: the red-marker guarantee of §4.1 and §6.

   Global-snapshot algorithms in the Chandy-Lamport family send a marker
   and need every message sent causally before the marker to arrive before
   it; otherwise the snapshot records a message twice or not at all. The
   paper expresses this as the forbidden predicate

       x.s < marker.s  &  marker.r < x.r      (marker is red)

   whose graph has an order-1 cycle: tagging user messages suffices, no
   control messages needed. This example shows (a) the classification,
   (b) the do-nothing protocol corrupting a snapshot, and (c) the causal
   (RST) protocol — a tagged protocol — preserving it.

   Run with: dune exec examples/snapshot_marker.exe *)

open Mo_core
open Mo_protocol
open Mo_workload

let red = 1

let spec =
  Spec.make ~name:"global-forward-flush"
    [ Catalog.global_forward_flush.Catalog.pred ]

(* a busy 4-process workload with a marker broadcast in the middle *)
let workload =
  let base = (Gen.uniform ~nprocs:4 ~nmsgs:30 ~seed:3).Gen.ops in
  let with_markers =
    List.concat_map
      (fun (o : Sim.op) ->
        if o.Sim.at = 30 then
          (* the snapshot initiator (P0) sends red markers to everyone *)
          [ o; { (Sim.bcast ~at:30 ~src:0 ()) with Sim.color = Some red } ]
        else [ o ])
      base
  in
  with_markers

let check factory seed =
  let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed; jitter = 15 } in
  Conformance.check_exn ~spec cfg factory workload

let () =
  Format.printf "snapshot-marker ordering (global forward-flush):@.";
  Format.printf "  forbid %s@.@."
    (Forbidden.to_string Catalog.global_forward_flush.Catalog.pred);
  Format.printf "classification: %a@.@."
    Classify.pp_result
    (Classify.classify Catalog.global_forward_flush.Catalog.pred);

  (* do-nothing protocol: find a corrupted snapshot *)
  let bad_seed =
    List.find_opt
      (fun seed -> (check Tagless.factory seed).Conformance.spec_ok = Some false)
      (List.init 60 Fun.id)
  in
  (match bad_seed with
  | Some seed ->
      let r = check Tagless.factory seed in
      Format.printf "tagless protocol corrupts the snapshot (seed %d):@." seed;
      (match r.Conformance.violation with
      | Some (_, a) ->
          Format.printf
            "  message %d was sent before the marker %d but arrived after \
             it@."
            a.(0) a.(1)
      | None -> ())
  | None -> Format.printf "no corruption found in 60 seeds (unexpected)@.");

  (* tagged protocol: safe on every seed, and no control messages *)
  let ok = ref true and ctl = ref 0 in
  List.iter
    (fun seed ->
      let r = check Causal_rst.factory seed in
      if r.Conformance.spec_ok <> Some true then ok := false;
      ctl := !ctl + r.Conformance.outcome.Sim.stats.Sim.control_packets)
    (List.init 60 Fun.id);
  Format.printf
    "@.RST causal (tagged) across 60 seeds: spec always satisfied = %b, \
     control messages = %d@."
    !ok !ctl;

  (* the flush-channel protocol achieves the per-channel variant with a
     3-integer tag instead of an n-by-n matrix *)
  let flush_ops =
    (Gen.with_flush ~every:7 ~kind:Message.Forward
       (Gen.with_colors ~every:7 ~color:red
          (Gen.pairwise_flood ~nprocs:3 ~per_pair:8 ~seed:5)))
      .Gen.ops
  in
  let local_spec =
    Spec.make ~name:"local-forward-flush"
      [ Catalog.local_forward_flush.Catalog.pred ]
  in
  let r =
    Conformance.check_exn ~spec:local_spec
      { (Sim.default_config ~nprocs:3) with Sim.jitter = 15 }
      Flush.factory flush_ops
  in
  Format.printf
    "@.flush channels on the per-channel variant: spec=%b, tag bytes=%d \
     (vs matrix tags: %d)@."
    (r.Conformance.spec_ok = Some true)
    r.Conformance.outcome.Sim.stats.Sim.tag_bytes
    (match
       Sim.execute
         { (Sim.default_config ~nprocs:3) with Sim.jitter = 15 }
         Causal_rst.factory flush_ops
     with
    | Ok o -> o.Sim.stats.Sim.tag_bytes
    | Error _ -> -1)
