examples/mobile_handoff.mli:
