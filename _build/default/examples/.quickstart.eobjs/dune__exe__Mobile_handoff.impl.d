examples/mobile_handoff.ml: Array Catalog Causal_rst Classify Conformance Forbidden Format Fun List Mo_core Mo_order Mo_protocol Sim Spec String Sync_token
