examples/causal_chat.mli:
