examples/quickstart.mli:
