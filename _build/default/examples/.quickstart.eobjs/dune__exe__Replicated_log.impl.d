examples/replicated_log.ml: Array Causal_bss Format Fun Hashtbl List Message Mo_protocol Protocol Queue Sim String Total_order
