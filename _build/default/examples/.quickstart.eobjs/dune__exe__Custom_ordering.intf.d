examples/custom_ordering.mli:
