examples/global_snapshot.mli:
