examples/quickstart.ml: Array Classify Conformance Format Gen Mo_core Mo_order Mo_protocol Mo_workload Parse Protocol Sim Spec Synth Sys Weaken Witness
