examples/custom_ordering.ml: Array Catalog Causal_rst Classify Conformance Forbidden Format Gen Implies List Mo_core Mo_order Mo_protocol Mo_workload Parse Protocol Sim Spec Synth Tagless Term
