examples/snapshot_marker.mli:
