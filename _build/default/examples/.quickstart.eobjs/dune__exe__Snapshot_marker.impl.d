examples/snapshot_marker.ml: Array Catalog Causal_rst Classify Conformance Flush Forbidden Format Fun Gen List Message Mo_core Mo_protocol Mo_workload Sim Spec Tagless
