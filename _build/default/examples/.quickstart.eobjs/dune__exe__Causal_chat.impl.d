examples/causal_chat.ml: Array Catalog Causal_bss Causal_rst Classify Conformance Format Fun List Mo_core Mo_order Mo_protocol Printf Sim Spec Tagless
