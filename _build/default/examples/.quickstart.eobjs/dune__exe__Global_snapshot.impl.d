examples/global_snapshot.ml: Array Fifo Format Fun Hashtbl List Message Mo_core Mo_protocol Option Protocol Random Sim String Tagless
