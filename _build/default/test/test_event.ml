open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_encode_decode () =
  for i = 0 to 19 do
    let e = Event.decode i in
    check_int "user roundtrip" i (Event.encode e)
  done;
  for i = 0 to 39 do
    let e = Event.Sys.decode i in
    check_int "sys roundtrip" i (Event.Sys.encode e)
  done

let test_constructors () =
  check_int "send encode" 6 (Event.encode (Event.send 3));
  check_int "deliver encode" 7 (Event.encode (Event.deliver 3));
  check_bool "equal" true (Event.equal (Event.send 2) (Event.send 2));
  check_bool "not equal point" false
    (Event.equal (Event.send 2) (Event.deliver 2));
  check_bool "not equal msg" false (Event.equal (Event.send 2) (Event.send 3))

let test_compare () =
  check_bool "s before r" true
    (Event.compare (Event.send 1) (Event.deliver 1) < 0);
  check_bool "msg order" true
    (Event.compare (Event.deliver 0) (Event.send 1) < 0);
  check_int "eq" 0 (Event.compare (Event.send 5) (Event.send 5))

let test_pp () =
  check_str "send" "x3.s" (Format.asprintf "%a" Event.pp (Event.send 3));
  check_str "deliver" "x0.r" (Format.asprintf "%a" Event.pp (Event.deliver 0))

let test_sys_projection () =
  let open Event.Sys in
  check_bool "invoke hidden" false (is_user_visible { msg = 0; kind = Invoke });
  check_bool "receive hidden" false
    (is_user_visible { msg = 0; kind = Receive });
  check_bool "send visible" true (is_user_visible { msg = 0; kind = Send });
  check_bool "deliver visible" true
    (is_user_visible { msg = 0; kind = Deliver });
  (match to_user { msg = 4; kind = Send } with
  | Some (4, p) -> check_bool "send point" true (Event.point_equal p Event.S)
  | _ -> Alcotest.fail "to_user send");
  check_bool "to_user invoke" true (to_user { msg = 4; kind = Invoke } = None)

let test_sys_controllable () =
  let open Event.Sys in
  check_bool "send controllable" true
    (is_controllable { msg = 1; kind = Send });
  check_bool "deliver controllable" true
    (is_controllable { msg = 1; kind = Deliver });
  check_bool "invoke uncontrollable" false
    (is_controllable { msg = 1; kind = Invoke });
  check_bool "receive uncontrollable" false
    (is_controllable { msg = 1; kind = Receive })

let test_sys_pp () =
  let open Event.Sys in
  check_str "invoke" "x2.s*"
    (Format.asprintf "%a" pp { msg = 2; kind = Invoke });
  check_str "send" "x2.s" (Format.asprintf "%a" pp { msg = 2; kind = Send });
  check_str "receive" "x2.r*"
    (Format.asprintf "%a" pp { msg = 2; kind = Receive });
  check_str "deliver" "x2.r"
    (Format.asprintf "%a" pp { msg = 2; kind = Deliver })

let test_sys_order_within_message () =
  (* the encoding orders a message's four events invoke < send < receive <
     deliver, which several modules rely on *)
  let open Event.Sys in
  let encs =
    List.map
      (fun kind -> encode { msg = 1; kind })
      [ Invoke; Send; Receive; Deliver ]
  in
  check_bool "sorted" true (List.sort Int.compare encs = encs)

let () =
  Alcotest.run "event"
    [
      ( "unit",
        [
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "constructors" `Quick test_constructors;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "sys projection" `Quick test_sys_projection;
          Alcotest.test_case "sys controllable" `Quick test_sys_controllable;
          Alcotest.test_case "sys pp" `Quick test_sys_pp;
          Alcotest.test_case "sys order" `Quick test_sys_order_within_message;
        ] );
    ]
