open Mo_order

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_permutations () =
  check_int "3!" 6 (List.length (Enumerate.permutations [ 1; 2; 3 ]));
  check_int "0!" 1 (List.length (Enumerate.permutations []));
  let perms = Enumerate.permutations [ 1; 2 ] in
  check_bool "distinct" true
    (List.mem [ 1; 2 ] perms && List.mem [ 2; 1 ] perms)

let test_single_message () =
  (* one message 0->1: exactly one run *)
  check_int "one run" 1 (Enumerate.count_runs ~nprocs:2 ~msgs:[| (0, 1) |])

let test_same_channel () =
  (* two messages 0->1: sender picks an order (2), receiver picks an order
     (2) -> 4 runs, all valid *)
  check_int "2 msgs same channel" 4
    (Enumerate.count_runs ~nprocs:2 ~msgs:[| (0, 1); (0, 1) |])

let test_crossing () =
  (* x0: 0->1, x1: 1->0. P0 orders {s0, r1}: 2 ways; P1 orders {s1, r0}: 2
     ways. The combination (r1 before s0, r0 before s1) is cyclic -> 3 *)
  check_int "crossing" 3
    (Enumerate.count_runs ~nprocs:2 ~msgs:[| (0, 1); (1, 0) |])

let test_configs () =
  (* 2 procs, no self messages: each message has 2 choices *)
  check_int "configs 2x2" 4
    (List.length (Enumerate.configs ~nprocs:2 ~nmsgs:2 ()));
  check_int "configs with self" 16
    (List.length (Enumerate.configs ~allow_self:true ~nprocs:2 ~nmsgs:2 ()));
  check_int "configs 3 procs 1 msg" 6
    (List.length (Enumerate.configs ~nprocs:3 ~nmsgs:1 ()))

let test_all_runs_valid () =
  let runs = Enumerate.all_runs ~nprocs:2 ~nmsgs:2 () in
  check_bool "nonempty" true (runs <> []);
  List.iter
    (fun r ->
      (* every run is complete and well-ordered: s < r for each message *)
      for m = 0 to Run.nmsgs r - 1 do
        check_bool "s<r" true (Run.lt r (Event.send m) (Event.deliver m))
      done)
    runs

let test_exhaustiveness_spot () =
  (* the crossing crown must appear among enumerated runs *)
  let runs = Enumerate.runs ~nprocs:2 ~msgs:[| (0, 1); (1, 0) |] in
  let has_crown =
    List.exists
      (fun r ->
        let a = Run.to_abstract r in
        not (Limits.is_sync a))
      runs
  in
  check_bool "crown found" true has_crown;
  let has_sync =
    List.exists (fun r -> Limits.is_sync (Run.to_abstract r)) runs
  in
  check_bool "sync run found" true has_sync

let test_causal_violation_needs_enough_msgs () =
  (* with 2 messages on one channel, a causal violation is enumerable *)
  let runs = Enumerate.runs ~nprocs:2 ~msgs:[| (0, 1); (0, 1) |] in
  check_bool "violation found" true
    (List.exists (fun r -> not (Limits.is_causal (Run.to_abstract r))) runs)

let prop_runs_distinct =
  QCheck.Test.make ~name:"enumerated runs are pairwise distinct" ~count:10
    QCheck.unit
    (fun () ->
      let runs = Enumerate.runs ~nprocs:2 ~msgs:[| (0, 1); (0, 1); (1, 0) |] in
      let keys =
        List.map
          (fun r ->
            String.concat "|"
              (List.init (Run.nprocs r) (fun p ->
                   String.concat ","
                     (List.map
                        (fun e -> string_of_int (Event.encode e))
                        (Run.sequence r p)))))
          runs
      in
      List.length keys = List.length (List.sort_uniq compare keys))

let () =
  Alcotest.run "enumerate"
    [
      ( "unit",
        [
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "single message" `Quick test_single_message;
          Alcotest.test_case "same channel" `Quick test_same_channel;
          Alcotest.test_case "crossing" `Quick test_crossing;
          Alcotest.test_case "configs" `Quick test_configs;
          Alcotest.test_case "all runs valid" `Quick test_all_runs_valid;
          Alcotest.test_case "exhaustiveness" `Quick test_exhaustiveness_spot;
          Alcotest.test_case "causal violation enumerable" `Quick
            test_causal_violation_needs_enough_msgs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_runs_distinct ]);
    ]
