open Mo_order

let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let fifo_run () =
  match
    Run.of_schedule ~nprocs:2
      ~msgs:[| (0, 1); (0, 1) |]
      [ Run.Do_send 0; Run.Do_send 1; Run.Do_deliver 0; Run.Do_deliver 1 ]
  with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_render_run () =
  let out = Diagram.render_run (fifo_run ()) in
  List.iter
    (fun token ->
      check_bool (token ^ " present") true (contains out token))
    [ "P0"; "P1"; "s0"; "s1"; "r0"; "r1"; "x0: P0 -> P1" ]

let test_render_sys_run () =
  let module E = Event.Sys in
  let h =
    match
      Sys_run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1) |]
        [|
          [ { E.msg = 0; kind = E.Invoke }; { E.msg = 0; kind = E.Send } ];
          [ { E.msg = 0; kind = E.Receive }; { E.msg = 0; kind = E.Deliver } ];
        |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  let out = Diagram.render_sys_run h in
  List.iter
    (fun token -> check_bool (token ^ " present") true (contains out token))
    [ "s0*"; "s0"; "r0*"; "r0" ]

let test_render_abstract () =
  let a =
    Run.Abstract.create_exn ~nmsgs:2 [ (Event.send 0, Event.send 1) ]
  in
  let out = Diagram.render_abstract a in
  check_bool "header" true (contains out "2 messages");
  check_bool "edge" true (contains out "x0.s -> x1.s")

let test_columns_respect_order () =
  (* the column of s0 must be left of the column of r0: token order in the
     P-row lines reflects the linearization *)
  let out = Diagram.render_run (fifo_run ()) in
  let lines = String.split_on_char '\n' out in
  let p1 = List.find (fun l -> contains l "P1") lines in
  let idx tok =
    let rec go i =
      if i + String.length tok > String.length p1 then -1
      else if String.sub p1 i (String.length tok) = tok then i
      else go (i + 1)
    in
    go 0
  in
  check_bool "r0 left of r1" true (idx "r0" < idx "r1" && idx "r0" >= 0)

let () =
  Alcotest.run "diagram"
    [
      ( "unit",
        [
          Alcotest.test_case "render run" `Quick test_render_run;
          Alcotest.test_case "render sys run" `Quick test_render_sys_run;
          Alcotest.test_case "render abstract" `Quick test_render_abstract;
          Alcotest.test_case "columns" `Quick test_columns_respect_order;
        ] );
    ]
