open Mo_core
open Mo_order
open Term

let check_bool = Alcotest.(check bool)

let test_witness_satisfies_predicate () =
  (* the witness run satisfies B under the identity assignment, for every
     satisfiable catalog predicate *)
  List.iter
    (fun (e : Catalog.entry) ->
      match Witness.build e.pred with
      | Witness.Witness w ->
          check_bool
            (e.name ^ " identity assignment")
            true
            (Eval.check_assignment e.pred w.run w.assignment)
      | Witness.Cyclic ->
          (* only the async (order-0) forms are unsatisfiable *)
          check_bool (e.name ^ " cyclic only for tagless") true
            (e.expected = Classify.Implementable Classify.Tagless)
      | Witness.Conflicting_guards ->
          Alcotest.fail (e.name ^ ": unexpected guard conflict"))
    Catalog.all

let test_cyclic_for_contradictions () =
  (match Witness.build (Forbidden.make ~nvars:1 [ r 0 @> s 0 ]) with
  | Witness.Cyclic -> ()
  | _ -> Alcotest.fail "r < s should be cyclic");
  match
    Witness.build (Forbidden.make ~nvars:2 [ s 0 @> r 1; r 1 @> s 0 ])
  with
  | Witness.Cyclic -> ()
  | _ -> Alcotest.fail "two-variable event cycle should be Cyclic"

let test_guard_attrs () =
  match Witness.build Catalog.fifo.Catalog.pred with
  | Witness.Witness w ->
      let a0 = Run.Abstract.attrs w.run 0 and a1 = Run.Abstract.attrs w.run 1 in
      check_bool "same src" true (a0.Run.src = a1.Run.src && a0.Run.src <> None);
      check_bool "same dst" true (a0.Run.dst = a1.Run.dst && a0.Run.dst <> None);
      check_bool "src differs from dst" true (a0.Run.src <> a0.Run.dst)
  | _ -> Alcotest.fail "fifo witness should exist"

let test_color_attrs () =
  match Witness.build Catalog.global_forward_flush.Catalog.pred with
  | Witness.Witness w ->
      check_bool "x1 is red" true
        ((Run.Abstract.attrs w.run 1).Run.color = Some 1);
      check_bool "x0 uncolored" true
        ((Run.Abstract.attrs w.run 0).Run.color = None)
  | _ -> Alcotest.fail "flush witness should exist"

let test_conflicting_guards () =
  let p =
    Forbidden.make ~nvars:1
      ~guards:[ Color_is (0, 1); Color_is (0, 2) ]
      []
  in
  match Witness.build p with
  | Witness.Conflicting_guards -> ()
  | _ -> Alcotest.fail "conflicting colors should be detected"

let test_semantic_classification_known () =
  (* exact on the canonical unguarded entries, except the documented
     coarseness of B1/B3 on the tagged/general boundary *)
  let semantic name p = (name, Witness.classify p) in
  List.iter
    (fun (name, v) ->
      Alcotest.(check string)
        name "general"
        (Classify.verdict_to_string v))
    [
      semantic "causal-b1 (abstract semantics coarser)"
        Catalog.causal_b1.Catalog.pred;
      semantic "causal-b3 (abstract semantics coarser)"
        Catalog.causal_b3.Catalog.pred;
      semantic "crown" (Catalog.sync_crown 2).Catalog.pred;
    ];
  List.iter
    (fun (name, v) ->
      Alcotest.(check string) name "tagged" (Classify.verdict_to_string v))
    [
      semantic "causal-b2" Catalog.causal_b2.Catalog.pred;
      semantic "example-1" Catalog.example_1.Catalog.pred;
    ];
  Alcotest.(check string)
    "second-before-first" "not implementable"
    (Classify.verdict_to_string
       (Witness.classify Catalog.second_before_first.Catalog.pred))

let test_witness_run_shape () =
  match Witness.build Catalog.causal_b2.Catalog.pred with
  | Witness.Witness w ->
      check_bool "two messages" true (Run.Abstract.nmsgs w.run = 2);
      check_bool "s0 < s1" true
        (Run.Abstract.lt w.run (Event.send 0) (Event.send 1));
      check_bool "r1 < r0" true
        (Run.Abstract.lt w.run (Event.deliver 1) (Event.deliver 0));
      check_bool "s < r implicit" true
        (Run.Abstract.lt w.run (Event.send 1) (Event.deliver 1))
  | _ -> Alcotest.fail "witness should exist"

(* semantic classification is never finer than the graph one: it can say
   General where the graph says Tagged (abstract-poset coarseness) but
   never the other way, and they always agree on implementability and on
   Tagless. *)
let prop_semantic_sound =
  QCheck.Test.make ~name:"semantic vs graph classification" ~count:400
    QCheck.(int_bound 20_000)
    (fun seed ->
      let p = Mo_workload.Random_pred.predicate ~seed () in
      let graph = (Classify.classify p).Classify.verdict in
      let semantic = Witness.classify p in
      match (graph, semantic) with
      | Classify.Not_implementable, Classify.Not_implementable -> true
      | Classify.Not_implementable, _ | _, Classify.Not_implementable ->
          false
      | Classify.Implementable g, Classify.Implementable s -> (
          match (g, s) with
          | Classify.Tagless, Classify.Tagless -> true
          | Classify.Tagless, _ | _, Classify.Tagless -> false
          | Classify.Tagged, (Classify.Tagged | Classify.General) -> true
          | Classify.General, Classify.General -> true
          | Classify.General, Classify.Tagged -> false))

let () =
  Alcotest.run "witness"
    [
      ( "unit",
        [
          Alcotest.test_case "witness satisfies B" `Quick
            test_witness_satisfies_predicate;
          Alcotest.test_case "cyclic contradictions" `Quick
            test_cyclic_for_contradictions;
          Alcotest.test_case "guard attrs" `Quick test_guard_attrs;
          Alcotest.test_case "color attrs" `Quick test_color_attrs;
          Alcotest.test_case "conflicting guards" `Quick
            test_conflicting_guards;
          Alcotest.test_case "semantic classification" `Quick
            test_semantic_classification_known;
          Alcotest.test_case "witness shape" `Quick test_witness_run_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_semantic_sound ] );
    ]
