(* Experiment T2 as a test suite: verify the classification theorems
   against EVERY small concrete run (the realizable semantics), not just
   samples. See DESIGN.md experiment index. *)

open Mo_core
open Mo_order

let check_bool = Alcotest.(check bool)

(* all concrete runs with up to 3 messages over 2-3 processes, abstracted *)
let universe =
  lazy
    (Enumerate.abstract_runs ~nprocs:2 ~nmsgs:2 ()
    @ Enumerate.abstract_runs ~nprocs:3 ~nmsgs:2 ()
    @ Enumerate.abstract_runs ~nprocs:2 ~nmsgs:3 ()
    @ Enumerate.abstract_runs ~nprocs:3 ~nmsgs:3 ())

let filter_cls cls =
  List.filter (fun r -> Limits.classify r = cls) (Lazy.force universe)

let sync_runs = lazy (filter_cls Limits.Sync)
let causal_runs =
  lazy
    (List.filter (fun r -> Limits.is_causal r) (Lazy.force universe))
let causal_only_runs = lazy (filter_cls Limits.Causal_only)
let async_only_runs = lazy (filter_cls Limits.Async_only)

let test_universe_sane () =
  check_bool "has sync runs" true (Lazy.force sync_runs <> []);
  check_bool "has causal-only runs" true (Lazy.force causal_only_runs <> []);
  check_bool "has async-only runs" true (Lazy.force async_only_runs <> [])

(* Sufficiency direction of Theorem 3, checked exhaustively:
   - class Tagless: B holds in no run at all (X_B is everything);
   - class Tagged: every causally ordered run satisfies the spec;
   - class General: every logically synchronous run satisfies the spec. *)
let sufficiency_of (e : Catalog.entry) () =
  match e.expected with
  | Classify.Implementable Classify.Tagless ->
      List.iter
        (fun r -> check_bool e.name true (Eval.satisfies e.pred r))
        (Lazy.force universe)
  | Classify.Implementable Classify.Tagged ->
      List.iter
        (fun r -> check_bool e.name true (Eval.satisfies e.pred r))
        (Lazy.force causal_runs)
  | Classify.Implementable Classify.General ->
      List.iter
        (fun r -> check_bool e.name true (Eval.satisfies e.pred r))
        (Lazy.force sync_runs)
  | Classify.Not_implementable ->
      (* no protocol class has a sufficiency claim; the necessity witness
         (a sync run violating the spec) is checked separately *)
      ()

let small_entries =
  List.filter
    (fun (e : Catalog.entry) -> Forbidden.nvars e.pred <= 3)
    Catalog.all

(* Necessity direction of Theorem 4 for the canonical unguarded entries: a
   run in the next-weaker limit set violating the spec exists. *)
let test_tagged_necessity () =
  (* causal-b2 classified Tagged: some async-only run violates it, so no
     tagless protocol can implement it *)
  check_bool "causal violated by an async-only run" true
    (List.exists
       (fun r -> not (Eval.satisfies Catalog.causal_b2.Catalog.pred r))
       (Lazy.force async_only_runs))

let test_general_necessity () =
  (* crown-2 classified General: some causally ordered run violates it, so
     no tagged protocol can implement it (Theorem 4.2) *)
  check_bool "crown violated by a causal run" true
    (List.exists
       (fun r ->
         not (Eval.satisfies (Catalog.sync_crown 2).Catalog.pred r))
       (Lazy.force causal_only_runs))

let test_not_implementable_witness () =
  (* second-before-first: even a logically synchronous run violates it *)
  check_bool "violated by a sync run" true
    (List.exists
       (fun r ->
         not (Eval.satisfies Catalog.second_before_first.Catalog.pred r))
       (Lazy.force sync_runs))

(* Lemma 3.2: the three causal forms carve out the SAME specification over
   realizable runs. *)
let test_lemma_3_2_equivalence () =
  List.iter
    (fun r ->
      let s1 = Eval.satisfies Catalog.causal_b1.Catalog.pred r
      and s2 = Eval.satisfies Catalog.causal_b2.Catalog.pred r
      and s3 = Eval.satisfies Catalog.causal_b3.Catalog.pred r in
      check_bool "B1 = B2" true (s1 = s2);
      check_bool "B2 = B3" true (s2 = s3))
    (Lazy.force universe)

(* Lemma 3.2 again: X_B2 over realizable runs is exactly the causal runs *)
let test_causal_spec_is_causal_set () =
  List.iter
    (fun r ->
      check_bool "X_B2 = X_co" true
        (Eval.satisfies Catalog.causal_b2.Catalog.pred r = Limits.is_causal r))
    (Lazy.force universe)

(* Lemma 3.3: every async form is unsatisfiable over realizable runs *)
let test_lemma_3_3 () =
  List.iter
    (fun (e : Catalog.entry) ->
      List.iter
        (fun r -> check_bool e.name true (Eval.satisfies e.pred r))
        (Lazy.force universe))
    Catalog.async_forms

(* Lemma 3.1 for k = 2: violating the crown is exactly failing SYNC, over
   runs with 2 messages; with 3 messages a longer crown can also break
   SYNC, so containment (not equality) is the claim there. *)
let test_crown2_exactness_on_pairs () =
  List.iter
    (fun r ->
      if Run.Abstract.nmsgs r = 2 then
        check_bool "crown-2 ⟺ sync on 2-message runs" true
          (Eval.satisfies (Catalog.sync_crown 2).Catalog.pred r
          = Limits.is_sync r))
    (Lazy.force universe)

let test_crown_family_contains_sync () =
  (* every sync run satisfies all crowns (already covered by sufficiency)
     and every non-sync enumerated run violates SOME crown of length ≤ 3 *)
  List.iter
    (fun r ->
      if not (Limits.is_sync r) then
        check_bool "some crown matches" true
          (List.exists
             (fun k ->
               k <= Run.Abstract.nmsgs r
               && not (Eval.satisfies (Catalog.sync_crown k).Catalog.pred r))
             [ 2; 3 ]))
    (Lazy.force universe)

(* guarded specs: recolor enumerated overtaking runs *)
let test_forward_flush_guarded () =
  (* sufficiency on causal runs holds for every coloring because the
     underlying unguarded predicate is already causal; spot-check the
     violating run exists when the second message is red *)
  let red_overtake =
    match
      Run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1) |]
        ~colors:[| None; Some 1 |]
        [|
          [ Event.send 0; Event.send 1 ];
          [ Event.deliver 1; Event.deliver 0 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  check_bool "red marker overtaken is a violation" false
    (Eval.satisfies Catalog.global_forward_flush.Catalog.pred red_overtake);
  check_bool "local flush violated too (same channel)" false
    (Eval.satisfies Catalog.local_forward_flush.Catalog.pred red_overtake)

let test_handoff_guarded () =
  (* a crossing crown with the handoff-colored message straddled by
     another: causal but violating -> control messages needed *)
  let straddle =
    match
      Run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (1, 0) |]
        ~colors:[| None; Some 7 |]
        [|
          [ Event.send 0; Event.deliver 1 ];
          [ Event.send 1; Event.deliver 0 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  check_bool "straddle is causal" true (Limits.is_causal straddle);
  check_bool "straddle violates handoff" false
    (Eval.satisfies Catalog.mobile_handoff.Catalog.pred straddle);
  (* sync runs always satisfy it (sufficiency over all colorings of the
     enumerated sync runs is implied by the unguarded crown sufficiency) *)
  List.iter
    (fun r ->
      check_bool "sync satisfies handoff" true
        (Eval.satisfies Catalog.mobile_handoff.Catalog.pred r))
    (Lazy.force sync_runs)

let () =
  Alcotest.run "model_check"
    [
      ( "universe",
        [ Alcotest.test_case "universe sane" `Quick test_universe_sane ] );
      ( "sufficiency (Theorem 3)",
        List.map
          (fun (e : Catalog.entry) ->
            Alcotest.test_case e.name `Slow (sufficiency_of e))
          small_entries );
      ( "necessity (Theorem 4)",
        [
          Alcotest.test_case "tagged necessity" `Quick test_tagged_necessity;
          Alcotest.test_case "general necessity" `Quick
            test_general_necessity;
          Alcotest.test_case "not implementable witness" `Quick
            test_not_implementable_witness;
        ] );
      ( "lemma 3",
        [
          Alcotest.test_case "3.2 equivalence" `Slow test_lemma_3_2_equivalence;
          Alcotest.test_case "X_B2 = X_co" `Slow test_causal_spec_is_causal_set;
          Alcotest.test_case "3.3 async forms" `Slow test_lemma_3_3;
          Alcotest.test_case "crown-2 exact on pairs" `Slow
            test_crown2_exactness_on_pairs;
          Alcotest.test_case "crown family covers non-sync" `Slow
            test_crown_family_contains_sync;
        ] );
      ( "guarded",
        [
          Alcotest.test_case "forward flush" `Quick test_forward_flush_guarded;
          Alcotest.test_case "mobile handoff" `Quick test_handoff_guarded;
        ] );
    ]
