(* Per-protocol conformance over several workloads and seeds: the
   executable form of Theorem 1's safety direction, plus the negative
   results (weaker protocols violate stronger specs on adversarial
   schedules). *)

open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)

let causal_spec = Spec.make ~name:"causal" [ Catalog.causal_b2.Catalog.pred ]
let fifo_spec = Spec.make ~name:"fifo" [ Catalog.fifo.Catalog.pred ]

let sync_spec =
  Spec.make ~name:"sync"
    (List.map (fun k -> (Catalog.sync_crown k).Catalog.pred) [ 2; 3; 4 ])

let seeds = [ 1; 7; 42; 1234 ]

let workloads nprocs =
  [
    ("uniform", (Gen.uniform ~nprocs ~nmsgs:40 ~seed:5).Gen.ops);
    ("client-server", (Gen.client_server ~nprocs ~nmsgs:40 ~seed:5).Gen.ops);
    ("ring", (Gen.ring ~nprocs ~rounds:10 ~seed:5).Gen.ops);
    ("bursty", (Gen.bursty ~nprocs ~nmsgs:40 ~seed:5).Gen.ops);
    ("flood", (Gen.pairwise_flood ~nprocs ~per_pair:4 ~seed:5).Gen.ops);
  ]

let conformance_case factory spec () =
  List.iter
    (fun seed ->
      List.iter
        (fun (wname, ops) ->
          let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed = seed } in
          let r = Conformance.check_exn ?spec cfg factory ops in
          let label =
            Printf.sprintf "%s on %s seed %d" factory.Protocol.proto_name
              wname seed
          in
          check_bool (label ^ " live") true r.Conformance.live;
          check_bool
            (label ^ " traffic consistent")
            true r.Conformance.traffic_consistent;
          match (spec, r.Conformance.spec_ok) with
          | Some _, Some ok -> check_bool (label ^ " spec") true ok
          | Some _, None -> Alcotest.fail (label ^ ": no spec verdict")
          | None, _ -> ())
        (workloads 4))
    seeds

let test_fifo_conformance = conformance_case Fifo.factory (Some fifo_spec)

let test_rst_conformance = conformance_case Causal_rst.factory (Some causal_spec)

let test_ses_conformance = conformance_case Causal_ses.factory (Some causal_spec)

let test_rst_implies_fifo = conformance_case Causal_rst.factory (Some fifo_spec)

let test_sync_conformance = conformance_case Sync_token.factory (Some sync_spec)

let test_sync_implies_causal =
  conformance_case Sync_token.factory (Some causal_spec)

let test_flush_ordinary_is_safe =
  (* with only ordinary sends, the flush protocol imposes nothing and must
     still be live *)
  conformance_case Flush.factory None

let test_tagless_violates_causal_somewhere () =
  (* the do-nothing protocol eventually produces a causal violation *)
  let found = ref false in
  List.iter
    (fun seed ->
      let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed = seed } in
      let ops = (Gen.pairwise_flood ~nprocs:4 ~per_pair:6 ~seed).Gen.ops in
      let r = Conformance.check_exn ~spec:causal_spec cfg Tagless.factory ops in
      if r.Conformance.spec_ok = Some false then found := true)
    (List.init 10 (fun i -> i * 13));
  check_bool "violation found under some seed" true !found

let test_fifo_violates_sync_somewhere () =
  let found = ref false in
  List.iter
    (fun seed ->
      let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed = seed } in
      let ops = (Gen.ring ~nprocs:3 ~rounds:8 ~seed).Gen.ops in
      let r = Conformance.check_exn ~spec:sync_spec cfg Fifo.factory ops in
      if r.Conformance.spec_ok = Some false then found := true)
    (List.init 10 (fun i -> (i * 7) + 1));
  check_bool "fifo breaks sync under some seed" true !found

let test_bss_broadcast_conformance () =
  List.iter
    (fun seed ->
      let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed = seed } in
      let ops = (Gen.broadcast ~nprocs:4 ~nbcasts:15 ~seed).Gen.ops in
      let r = Conformance.check_exn ~spec:causal_spec cfg Causal_bss.factory ops in
      check_bool "bss live" true r.Conformance.live;
      check_bool "bss causal" true (r.Conformance.spec_ok = Some true))
    seeds

let test_bss_unicast_deadlocks () =
  (* documented behaviour: BSS on unicast workloads loses liveness *)
  let cfg = Sim.default_config ~nprocs:3 in
  let ops =
    [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:1 ~src:0 ~dst:2 () ]
  in
  let r = Conformance.check_exn cfg Causal_bss.factory ops in
  check_bool "not live" false r.Conformance.live

(* the classic causal triangle: A posts to C directly and via B; C must
   see A's message before B's reaction. Times are tight so the direct
   message is regularly overtaken on the wire. *)
let triangle_ops =
  [
    Sim.op ~at:0 ~src:0 ~dst:2 ();
    (* m0: A -> C, the slow path *)
    Sim.op ~at:1 ~src:0 ~dst:1 ();
    (* m1: A -> B *)
    Sim.op ~at:14 ~src:1 ~dst:2 ();
    (* m2: B -> C, after B saw m1 *)
  ]

let triangle_cfg seed =
  { (Sim.default_config ~nprocs:3) with Sim.seed; min_delay = 1; jitter = 20 }

let triangle_causal seed factory =
  match Sim.execute (triangle_cfg seed) factory triangle_ops with
  | Ok { Sim.run = Some r; _ } ->
      let a = Mo_order.Run.to_abstract r in
      (* the interesting instance: if s(m0) > s(m2) causally, then C must
         deliver m0 first *)
      Some (Mo_core.Eval.satisfies Catalog.causal_b2.Catalog.pred a)
  | Ok _ -> None
  | Error e -> Alcotest.fail e

let test_causal_triangle () =
  (* RST never reorders the triangle; tagless does for some seed *)
  List.iter
    (fun seed ->
      match triangle_causal seed Causal_rst.factory with
      | Some ok -> check_bool (Printf.sprintf "rst seed %d" seed) true ok
      | None -> Alcotest.fail "rst triangle not live")
    (List.init 30 Fun.id);
  List.iter
    (fun seed ->
      match triangle_causal seed Causal_ses.factory with
      | Some ok -> check_bool (Printf.sprintf "ses seed %d" seed) true ok
      | None -> Alcotest.fail "ses triangle not live")
    (List.init 30 Fun.id);
  check_bool "tagless reorders the triangle somewhere" true
    (List.exists
       (fun seed -> triangle_causal seed Tagless.factory = Some false)
       (List.init 30 Fun.id))

let test_rst_tag_grows_quadratically () =
  (* the RST tag is n^2 integers: 8 procs tags 4x the bytes of 4 procs *)
  let bytes nprocs =
    let cfg = Sim.default_config ~nprocs in
    let ops = (Gen.uniform ~nprocs ~nmsgs:20 ~seed:3).Gen.ops in
    match Sim.execute cfg Causal_rst.factory ops with
    | Ok o -> o.Sim.stats.Sim.tag_bytes
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "quadratic growth" (4 * bytes 4) (bytes 8)

let test_sync_uses_control_everyone_else_does_not () =
  let cfg = Sim.default_config ~nprocs:3 in
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:11).Gen.ops in
  let control factory =
    match Sim.execute cfg factory ops with
    | Ok o -> o.Sim.stats.Sim.control_packets
    | Error e -> Alcotest.fail e
  in
  check_bool "sync uses control" true (control Sync_token.factory > 0);
  Alcotest.(check int) "fifo no control" 0 (control Fifo.factory);
  Alcotest.(check int) "rst no control" 0 (control Causal_rst.factory);
  Alcotest.(check int) "tagless no control" 0 (control Tagless.factory)

let () =
  Alcotest.run "protocols"
    [
      ( "conformance",
        [
          Alcotest.test_case "fifo/fifo" `Slow test_fifo_conformance;
          Alcotest.test_case "rst/causal" `Slow test_rst_conformance;
          Alcotest.test_case "ses/causal" `Slow test_ses_conformance;
          Alcotest.test_case "rst/fifo" `Slow test_rst_implies_fifo;
          Alcotest.test_case "sync/sync" `Slow test_sync_conformance;
          Alcotest.test_case "sync/causal" `Slow test_sync_implies_causal;
          Alcotest.test_case "flush ordinary live" `Slow
            test_flush_ordinary_is_safe;
          Alcotest.test_case "bss broadcast" `Slow
            test_bss_broadcast_conformance;
        ] );
      ( "separations",
        [
          Alcotest.test_case "tagless breaks causal" `Slow
            test_tagless_violates_causal_somewhere;
          Alcotest.test_case "fifo breaks sync" `Slow
            test_fifo_violates_sync_somewhere;
          Alcotest.test_case "bss unicast deadlock" `Quick
            test_bss_unicast_deadlocks;
        ] );
      ( "scenarios",
        [ Alcotest.test_case "causal triangle" `Quick test_causal_triangle ]
      );
      ( "traffic",
        [
          Alcotest.test_case "rst tag quadratic" `Quick
            test_rst_tag_grows_quadratically;
          Alcotest.test_case "control usage" `Quick
            test_sync_uses_control_everyone_else_does_not;
        ] );
    ]
