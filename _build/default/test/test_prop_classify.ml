(* Property: the paper's graph-theoretic decision algorithm
   ([Classify.classify], Theorems 2–4) agrees with the semantic
   cross-check re-derived from first principles — build the Theorem-2
   witness run, then locate it in the limit-set hierarchy
   X_sync ⊆ X_co ⊆ X_async ([Limits.classify]):

     no witness (cyclic)        ⟺ B unsatisfiable  ⟺ tagless suffices
     witness ∈ X_sync           ⟺ not implementable
     witness ∈ X_co − X_sync    ⟹ semantic says general
     witness ∈ X_async − X_co   ⟹ semantic says tagged

   Over abstract posets the semantic answer is coarser on the
   tagged/general boundary (see Witness's module comment), never finer:
   the graph algorithm may answer Tagged where the semantics answers
   General, and they agree exactly on implementability and on Tagless.
   This extends the hand-picked catalog checks of test_classify.ml /
   test_witness.ml to random predicates under the in-repo harness. *)

open Mo_core

let gen_pred rng =
  match Prop.int_range 0 2 rng with
  | 0 -> Mo_workload.Random_pred.predicate ~seed:(Prop.int_range 0 1_000_000 rng) ()
  | 1 ->
      Mo_workload.Random_pred.predicate ~max_vars:8 ~max_conjuncts:14
        ~seed:(Prop.int_range 0 1_000_000 rng)
        ()
  | _ ->
      Mo_workload.Random_pred.cyclic_predicate
        ~nvars:(Prop.int_range 2 7 rng)
        ~seed:(Prop.int_range 0 1_000_000 rng)

let semantic_verdict p =
  match Witness.build p with
  | Witness.Cyclic | Witness.Conflicting_guards ->
      Classify.Implementable Classify.Tagless
  | Witness.Witness w -> (
      (* the witness must actually satisfy B — otherwise it certifies
         nothing *)
      if not (Eval.check_assignment p w.Witness.run w.Witness.assignment) then
        raise
          (Prop.Failed
             ("witness does not satisfy B: " ^ Forbidden.to_string p));
      match Mo_order.Limits.classify w.Witness.run with
      | Mo_order.Limits.Sync -> Classify.Not_implementable
      | Mo_order.Limits.Causal_only -> Classify.Implementable Classify.General
      | Mo_order.Limits.Async_only -> Classify.Implementable Classify.Tagged)

let agree p =
  let graph = (Classify.classify p).Classify.verdict in
  let semantic = semantic_verdict p in
  (* the semantic path above must match the packaged classifier … *)
  if semantic <> Witness.classify p then
    raise
      (Prop.Failed
         ("derived semantic verdict disagrees with Witness.classify: "
         ^ Forbidden.to_string p));
  (* … and relate to the graph algorithm exactly as the theory says *)
  match (graph, semantic) with
  | Classify.Not_implementable, Classify.Not_implementable -> true
  | Classify.Not_implementable, _ | _, Classify.Not_implementable -> false
  | Classify.Implementable g, Classify.Implementable s -> (
      match (g, s) with
      | Classify.Tagless, Classify.Tagless -> true
      | Classify.Tagless, _ | _, Classify.Tagless -> false
      | Classify.Tagged, (Classify.Tagged | Classify.General) -> true
      | Classify.General, Classify.General -> true
      | Classify.General, Classify.Tagged -> false)

let pp p =
  Printf.sprintf "%s [graph %s, semantic %s]"
    (Forbidden.to_string p)
    (Classify.verdict_to_string (Classify.classify p).Classify.verdict)
    (Classify.verdict_to_string (semantic_verdict p))

let () =
  Alcotest.run "prop_classify"
    [
      ( "agreement",
        [
          Alcotest.test_case "graph vs semantic, random predicates" `Quick
            (Prop.test ~count:500 ~seed:42
               ~name:"graph vs semantic classification" gen_pred ~pp agree);
          Alcotest.test_case "deterministic across runs" `Quick (fun () ->
              (* same seed, same verdicts: the whole pipeline is pure *)
              let v seed =
                List.map
                  (fun i ->
                    let rng = Prop.case_rng ~seed i in
                    (Classify.classify (gen_pred rng)).Classify.verdict)
                  (List.init 50 Fun.id)
              in
              Alcotest.(check bool) "stable" true (v 7 = v 7));
        ] );
    ]
