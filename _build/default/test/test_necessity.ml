open Mo_core
open Mo_order

let check_bool = Alcotest.(check bool)

let test_tagged_refutes_tagless () =
  (* causal ordering: an X_async run violating it exists (so the trivial
     protocol fails), but no causal run violates it *)
  (match Necessity.refutation Classify.Tagless Catalog.causal_b2.Catalog.pred with
  | Some run ->
      check_bool "refuting run violates the spec" false
        (Eval.satisfies Catalog.causal_b2.Catalog.pred (Run.to_abstract run))
  | None -> Alcotest.fail "tagless refutation should exist");
  check_bool "no tagged refutation" true
    (Necessity.refutation Classify.Tagged Catalog.causal_b2.Catalog.pred = None)

let test_general_refutes_tagged () =
  let crown = (Catalog.sync_crown 2).Catalog.pred in
  (match Necessity.refutation Classify.Tagged crown with
  | Some run ->
      let a = Run.to_abstract run in
      check_bool "refuting run is causal" true (Limits.is_causal a);
      check_bool "and violates the crown" false (Eval.satisfies crown a)
  | None -> Alcotest.fail "tagged refutation should exist");
  check_bool "no general refutation" true
    (Necessity.refutation Classify.General crown = None)

let test_not_implementable_refutes_general () =
  match
    Necessity.refutation Classify.General
      Catalog.second_before_first.Catalog.pred
  with
  | Some run ->
      check_bool "refuting run is sync" true
        (Limits.is_sync (Run.to_abstract run))
  | None -> Alcotest.fail "general refutation should exist"

let test_guarded_recoloring () =
  (* global forward flush needs a red message in the refuting run: the
     search must recolor *)
  match
    Necessity.refutation Classify.Tagless
      Catalog.global_forward_flush.Catalog.pred
  with
  | Some run ->
      let a = Run.to_abstract run in
      check_bool "violates with colors" false
        (Eval.satisfies Catalog.global_forward_flush.Catalog.pred a);
      (* some message is red *)
      let reds = ref 0 in
      for m = 0 to Run.nmsgs run - 1 do
        if (Run.Abstract.attrs a m).Run.color = Some 1 then incr reds
      done;
      check_bool "a red message exists" true (!reds > 0)
  | None -> Alcotest.fail "recolored refutation should exist"

let test_handoff_refutes_tagged () =
  match Necessity.refutation Classify.Tagged Catalog.mobile_handoff.Catalog.pred with
  | Some run -> check_bool "causal" true (Limits.is_causal (Run.to_abstract run))
  | None -> Alcotest.fail "handoff tagged refutation should exist"

let test_certificate_text () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let c = Necessity.certificate Catalog.causal_b2.Catalog.pred in
  check_bool "mentions tagless refutation" true
    (contains c "tagless cannot implement");
  check_bool "has a diagram" true (contains c "P0");
  let c2 = Necessity.certificate (Catalog.sync_crown 2).Catalog.pred in
  check_bool "crown refutes tagged" true (contains c2 "tagged cannot implement")

(* soundness: a refutation for class C can only exist when the verdict is
   strictly stronger than C — the sufficiency direction of Theorem 3 says
   class-C protocols DO implement their verdicts. (The converse —
   refutations always found — needs unboundedly many intermediate
   messages in general, so it is checked on the catalog in the unit
   tests, not here.) *)
let prop_refutation_sound =
  QCheck.Test.make ~name:"refutation soundness vs classification" ~count:60
    QCheck.(int_bound 5_000)
    (fun seed ->
      let p =
        Mo_workload.Random_pred.predicate ~max_vars:2 ~max_conjuncts:4 ~seed ()
      in
      let stronger_than cls =
        match (Classify.classify p).Classify.verdict with
        | Classify.Not_implementable -> true
        | Classify.Implementable v -> not (Classify.class_leq v cls)
      in
      List.for_all
        (fun cls ->
          Necessity.refutation cls p = None || stronger_than cls)
        [ Classify.Tagless; Classify.Tagged; Classify.General ])

let () =
  Alcotest.run "necessity"
    [
      ( "unit",
        [
          Alcotest.test_case "tagged refutes tagless" `Quick
            test_tagged_refutes_tagless;
          Alcotest.test_case "general refutes tagged" `Quick
            test_general_refutes_tagged;
          Alcotest.test_case "unimplementable refutes general" `Quick
            test_not_implementable_refutes_general;
          Alcotest.test_case "guarded recoloring" `Quick
            test_guarded_recoloring;
          Alcotest.test_case "handoff refutes tagged" `Quick
            test_handoff_refutes_tagged;
          Alcotest.test_case "certificate text" `Quick test_certificate_text;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_refutation_sound ] );
    ]
