open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)

let test_always_sync () =
  (* every recorded run is logically synchronous, across seeds and
     workload shapes *)
  List.iter
    (fun seed ->
      List.iter
        (fun ops ->
          let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed = seed } in
          match Sim.execute cfg Sync_token.factory ops with
          | Error e -> Alcotest.fail e
          | Ok o -> (
              check_bool "live" true o.all_delivered;
              match o.run with
              | Some r ->
                  check_bool "sync" true
                    (Mo_order.Limits.is_sync (Mo_order.Run.to_abstract r))
              | None -> Alcotest.fail "no run"))
        [
          (Gen.uniform ~nprocs:4 ~nmsgs:30 ~seed).Gen.ops;
          (Gen.bursty ~nprocs:4 ~nmsgs:30 ~seed).Gen.ops;
          (Gen.ring ~nprocs:4 ~rounds:6 ~seed).Gen.ops;
        ])
    [ 3; 11; 99 ]

let test_coordinator_sends_too () =
  (* process 0 (the coordinator) also originates messages; the grant path
     must work for it as well *)
  let cfg = Sim.default_config ~nprocs:3 in
  let ops =
    [
      Sim.op ~at:0 ~src:0 ~dst:1 ();
      Sim.op ~at:0 ~src:1 ~dst:0 ();
      Sim.op ~at:1 ~src:0 ~dst:2 ();
    ]
  in
  match Sim.execute cfg Sync_token.factory ops with
  | Error e -> Alcotest.fail e
  | Ok o -> check_bool "live" true o.all_delivered

let test_tickets_linearize () =
  (* tickets strictly increase along the message-graph topological order:
     read them back from the recorded tags *)
  let cfg = Sim.default_config ~nprocs:3 in
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:8).Gen.ops in
  (* capture tickets via a wrapping factory *)
  let tickets = Hashtbl.create 32 in
  let wrap (inner : Protocol.factory) =
    {
      inner with
      Protocol.make =
        (fun ~nprocs ~me ->
          let i = inner.Protocol.make ~nprocs ~me in
          {
            Protocol.on_invoke = i.Protocol.on_invoke;
            on_packet =
              (fun ~now ~from packet ->
                (match packet with
                | Message.User { id; tag = Message.Ticket t; _ } ->
                    Hashtbl.replace tickets id t
                | _ -> ());
                i.Protocol.on_packet ~now ~from packet);
            on_timer = i.Protocol.on_timer;
            pending_depth = i.Protocol.pending_depth;
          });
    }
  in
  match Sim.execute cfg (wrap Sync_token.factory) ops with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match o.run with
      | None -> Alcotest.fail "no run"
      | Some r ->
          let a = Mo_order.Run.to_abstract r in
          List.iter
            (fun (x, y) ->
              let tx = Hashtbl.find tickets x and ty = Hashtbl.find tickets y in
              check_bool
                (Printf.sprintf "T(%d) < T(%d)" x y)
                true (tx < ty))
            (Mo_order.Run.Abstract.message_graph a))

let test_control_overhead_linear () =
  (* three control messages per user message: req, grant, ack *)
  let cfg = Sim.default_config ~nprocs:3 in
  let n = 25 in
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:n ~seed:4).Gen.ops in
  match Sim.execute cfg Sync_token.factory ops with
  | Error e -> Alcotest.fail e
  | Ok o -> Alcotest.(check int) "3 per message" (3 * n) o.Sim.stats.Sim.control_packets

let test_satisfies_every_implementable_catalog_spec () =
  (* X_sync is inside every implementable specification: the sync protocol
     run must satisfy every implementable catalog predicate *)
  let cfg = Sim.default_config ~nprocs:4 in
  let ops = (Gen.uniform ~nprocs:4 ~nmsgs:25 ~seed:21).Gen.ops in
  match Sim.execute cfg Sync_token.factory ops with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match o.run with
      | None -> Alcotest.fail "no run"
      | Some r ->
          let a = Mo_order.Run.to_abstract r in
          List.iter
            (fun (e : Catalog.entry) ->
              match e.expected with
              | Classify.Implementable _ ->
                  check_bool e.name true (Eval.satisfies e.pred a)
              | Classify.Not_implementable -> ())
            Catalog.all)

let () =
  Alcotest.run "sync_token"
    [
      ( "unit",
        [
          Alcotest.test_case "always sync" `Slow test_always_sync;
          Alcotest.test_case "coordinator sends" `Quick
            test_coordinator_sends_too;
          Alcotest.test_case "tickets linearize" `Quick test_tickets_linearize;
          Alcotest.test_case "control overhead" `Quick
            test_control_overhead_linear;
          Alcotest.test_case "satisfies implementable specs" `Quick
            test_satisfies_every_implementable_catalog_spec;
        ] );
    ]
