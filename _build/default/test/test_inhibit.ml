open Mo_order
open Mo_protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let msgs_same_channel = [| (0, 1); (0, 1) |]
let msgs_crossing = [| (0, 1); (1, 0) |]

let test_enable_all_reaches_everything () =
  (* X_P for the trivial protocol contains every complete run of the
     universe *)
  let complete =
    Inhibit.complete_runs ~nprocs:2 ~msgs:msgs_same_channel Inhibit.enable_all
  in
  check_int "all four orderings reachable" 4 (List.length complete)

let test_enable_all_live () =
  check_bool "live" true
    (Inhibit.live ~nprocs:2 ~msgs:msgs_same_channel Inhibit.enable_all)

let test_fifo_protocol_safety () =
  let complete =
    Inhibit.complete_runs ~nprocs:2 ~msgs:msgs_same_channel Inhibit.fifo
  in
  check_bool "nonempty" true (complete <> []);
  List.iter
    (fun r ->
      let a = Run.to_abstract r in
      check_bool "fifo satisfied" true
        (Mo_core.Eval.satisfies Mo_core.Catalog.fifo.Mo_core.Catalog.pred a))
    complete;
  (* strictly fewer runs than the trivial protocol *)
  check_bool "inhibits something" true (List.length complete < 4)

let test_fifo_protocol_live () =
  check_bool "live" true
    (Inhibit.live ~nprocs:2 ~msgs:msgs_same_channel Inhibit.fifo)

let test_causal_protocol_safety () =
  List.iter
    (fun msgs ->
      List.iter
        (fun r ->
          check_bool "causal satisfied" true
            (Limits.is_causal (Run.to_abstract r)))
        (Inhibit.complete_runs ~nprocs:2 ~msgs Inhibit.causal))
    [ msgs_same_channel; msgs_crossing ]

let test_causal_protocol_live () =
  check_bool "live same channel" true
    (Inhibit.live ~nprocs:2 ~msgs:msgs_same_channel Inhibit.causal);
  check_bool "live crossing" true
    (Inhibit.live ~nprocs:2 ~msgs:msgs_crossing Inhibit.causal)

(* Lemma 2, executed: every live protocol must admit all of X_tl.
   The crossing crown's immediate-delivery run is in X_tl, hence reachable
   under the causal protocol too — and indeed the crown is causal. *)
let test_crossing_crown_reachable () =
  let complete =
    Inhibit.complete_runs ~nprocs:2 ~msgs:msgs_crossing Inhibit.causal
  in
  check_bool "a non-sync run is reachable under the causal protocol" true
    (List.exists (fun r -> not (Limits.is_sync (Run.to_abstract r))) complete)

(* the §3.2 class conditions, checked over all reachable runs *)
let test_class_conditions () =
  check_bool "enable-all is tagless-implementable" true
    (Inhibit.respects_tagless_condition ~nprocs:2 ~msgs:msgs_same_channel
       Inhibit.enable_all);
  (* FIFO's delivery decision depends on the sender's history, which is not
     in the receiver's local history: the tagless condition fails... *)
  check_bool "fifo violates the tagless condition" false
    (Inhibit.respects_tagless_condition ~nprocs:2 ~msgs:msgs_same_channel
       Inhibit.fifo);
  (* ...but the sender's relevant history is in the receiver's causal past:
     the tagged condition holds *)
  check_bool "fifo satisfies the tagged condition" true
    (Inhibit.respects_tagged_condition ~nprocs:2 ~msgs:msgs_same_channel
       Inhibit.fifo);
  check_bool "causal satisfies the tagged condition" true
    (Inhibit.respects_tagged_condition ~nprocs:2 ~msgs:msgs_same_channel
       Inhibit.causal)

(* The §2 remark, exactly: "no additional tagging of information can
   restrict the message ordering further" — the causal oracle's reachable
   set is EQUAL to the causal runs (X_P = X_co), not merely contained,
   so no cleverer tagged protocol can forbid more. Checked by comparing
   against exhaustive enumeration. *)
let run_key r =
  String.concat "|"
    (List.init (Run.nprocs r) (fun p ->
         String.concat ","
           (List.map
              (fun e -> string_of_int (Event.encode e))
              (Run.sequence r p))))

let reachable_equals_limit protocol ~msgs ~in_limit =
  let reachable =
    List.sort_uniq compare
      (List.map run_key (Inhibit.complete_runs ~nprocs:2 ~msgs protocol))
  in
  let limit =
    List.sort_uniq compare
      (List.filter_map
         (fun r ->
           if in_limit (Run.to_abstract r) then Some (run_key r) else None)
         (Enumerate.runs ~nprocs:2 ~msgs))
  in
  reachable = limit

let test_causal_reachable_set_is_exactly_x_co () =
  List.iter
    (fun msgs ->
      check_bool "X_P = X_co" true
        (reachable_equals_limit Inhibit.causal ~msgs ~in_limit:Limits.is_causal))
    [ msgs_same_channel; msgs_crossing; [| (0, 1); (1, 0); (0, 1) |] ]

let test_trivial_reachable_set_is_everything () =
  List.iter
    (fun msgs ->
      check_bool "X_P = X_async" true
        (reachable_equals_limit Inhibit.enable_all ~msgs ~in_limit:(fun _ ->
             true)))
    [ msgs_same_channel; msgs_crossing ]

let test_sync_reachable_set_is_exactly_x_sync () =
  List.iter
    (fun msgs ->
      check_bool "X_P = X_sync" true
        (reachable_equals_limit Inhibit.sync ~msgs ~in_limit:Limits.is_sync))
    [ msgs_same_channel; msgs_crossing ]

let test_sync_protocol () =
  List.iter
    (fun msgs ->
      (* safety: every complete run is logically synchronous *)
      List.iter
        (fun r ->
          check_bool "sync run" true (Limits.is_sync (Run.to_abstract r)))
        (Inhibit.complete_runs ~nprocs:2 ~msgs Inhibit.sync);
      check_bool "live" true (Inhibit.live ~nprocs:2 ~msgs Inhibit.sync))
    [ msgs_same_channel; msgs_crossing ];
  (* the crossing crown is NOT reachable: serialization prevents it *)
  check_bool "crown unreachable" true
    (List.for_all
       (fun r -> Limits.is_sync (Run.to_abstract r))
       (Inhibit.complete_runs ~nprocs:2 ~msgs:msgs_crossing Inhibit.sync))

let test_sync_needs_concurrent_knowledge () =
  (* the send decision depends on undelivered messages elsewhere — events
     outside the causal past. Theorem 4.2's content, observed directly:
     the oracle fails the tagged condition *)
  check_bool "sync violates the tagged condition" false
    (Inhibit.respects_tagged_condition ~nprocs:2 ~msgs:msgs_crossing
       Inhibit.sync)

(* Lemma 2.3 instance: X_tl runs (immediate requests, everything
   delivered) are reachable under ANY of our live protocols *)
let test_lemma2_tagless_runs_reachable () =
  let in_x_tl =
    List.filter Sys_run.Lemma2.in_tagless_set
      (Inhibit.reachable ~nprocs:2 ~msgs:msgs_same_channel Inhibit.enable_all)
  in
  check_bool "X_tl nonempty" true
    (List.exists Sys_run.is_complete in_x_tl);
  List.iter
    (fun p ->
      let reach = Inhibit.reachable ~nprocs:2 ~msgs:msgs_same_channel p in
      let keys =
        List.map (fun h -> Format.asprintf "%a" Sys_run.pp h) reach
      in
      List.iter
        (fun h ->
          if Sys_run.is_complete h && Sys_run.Lemma2.in_tagged_set h then
            check_bool
              (p.Inhibit.name ^ " admits X_td run")
              true
              (List.mem (Format.asprintf "%a" Sys_run.pp h) keys))
        in_x_tl)
    [ Inhibit.enable_all; Inhibit.causal ]

let () =
  Alcotest.run "inhibit"
    [
      ( "unit",
        [
          Alcotest.test_case "enable-all reaches everything" `Quick
            test_enable_all_reaches_everything;
          Alcotest.test_case "enable-all live" `Quick test_enable_all_live;
          Alcotest.test_case "fifo safety" `Quick test_fifo_protocol_safety;
          Alcotest.test_case "fifo live" `Quick test_fifo_protocol_live;
          Alcotest.test_case "causal safety" `Quick
            test_causal_protocol_safety;
          Alcotest.test_case "causal live" `Quick test_causal_protocol_live;
          Alcotest.test_case "crossing crown reachable" `Quick
            test_crossing_crown_reachable;
          Alcotest.test_case "X_P(causal) = X_co (§2 remark)" `Slow
            test_causal_reachable_set_is_exactly_x_co;
          Alcotest.test_case "X_P(trivial) = X_async" `Quick
            test_trivial_reachable_set_is_everything;
          Alcotest.test_case "X_P(sync) = X_sync" `Quick
            test_sync_reachable_set_is_exactly_x_sync;
          Alcotest.test_case "sync protocol" `Quick test_sync_protocol;
          Alcotest.test_case "sync needs concurrent knowledge" `Slow
            test_sync_needs_concurrent_knowledge;
          Alcotest.test_case "class conditions" `Slow test_class_conditions;
          Alcotest.test_case "lemma 2 tagless runs" `Slow
            test_lemma2_tagless_runs_reachable;
        ] );
    ]
