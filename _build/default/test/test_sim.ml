open Mo_protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let simple_ops =
  [
    Sim.op ~at:0 ~src:0 ~dst:1 ();
    Sim.op ~at:1 ~src:1 ~dst:0 ();
    Sim.op ~at:2 ~src:0 ~dst:1 ();
  ]

let test_basic_execution () =
  let cfg = Sim.default_config ~nprocs:2 in
  match Sim.execute cfg Tagless.factory simple_ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "all delivered" true o.all_delivered;
      check_bool "run produced" true (o.run <> None);
      check_int "user packets" 3 o.stats.user_packets;
      check_int "no control" 0 o.stats.control_packets;
      check_int "no tags" 0 o.stats.tag_bytes;
      check_int "three messages" 3 (Array.length o.msgs)

let test_determinism () =
  let cfg = Sim.default_config ~nprocs:2 in
  let run cfg =
    match Sim.execute cfg Fifo.factory simple_ops with
    | Ok o -> Format.asprintf "%a" Mo_order.Sys_run.pp o.sys_run
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "same seed same run" (run cfg) (run cfg);
  let other = run { cfg with Sim.seed = 99 } in
  (* different seeds usually give different interleavings; we only check
     the mechanism is seed-driven, so equality is not asserted here *)
  check_bool "other seed executes" true (String.length other > 0)

let test_broadcast_expansion () =
  let cfg = Sim.default_config ~nprocs:4 in
  match Sim.execute cfg Tagless.factory [ Sim.bcast ~at:0 ~src:2 () ] with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_int "three copies" 3 (Array.length o.msgs);
      Array.iter (fun (src, _) -> check_int "src" 2 src) o.msgs;
      let dsts = Array.to_list (Array.map snd o.msgs) in
      Alcotest.(check (list int)) "dsts" [ 0; 1; 3 ] (List.sort compare dsts)

let test_colors_recorded () =
  let cfg = Sim.default_config ~nprocs:2 in
  match
    Sim.execute cfg Tagless.factory [ Sim.op ~color:5 ~at:0 ~src:0 ~dst:1 () ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "color" true (o.colors.(0) = Some 5);
      (match o.run with
      | Some r ->
          check_bool "color in abstract run" true
            ((Mo_order.Run.Abstract.attrs (Mo_order.Run.to_abstract r) 0)
               .Mo_order.Run.color
            = Some 5)
      | None -> Alcotest.fail "run expected")

let misbehaving name on_invoke on_packet =
  {
    Protocol.proto_name = name;
    kind = Protocol.General;
    make =
      (fun ~nprocs:_ ~me:_ ->
        { Protocol.on_invoke; on_packet; on_timer = Protocol.no_timer;
          pending_depth = (fun () -> 0) });
  }

let test_double_delivery_detected () =
  let f =
    misbehaving "double-deliver"
      (fun ~now:_ (i : Protocol.intent) ->
        [
          Protocol.Send_user
            {
              Message.id = i.id;
              src = 0;
              dst = i.dst;
              color = None;
              payload = 0;
              tag = Message.No_tag;
            };
        ])
      (fun ~now:_ ~from:_ -> function
        | Message.User u -> [ Protocol.Deliver u.id; Protocol.Deliver u.id ]
        | Message.Control _ | Message.Framed _ -> [])
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match
    Sim.execute (Sim.default_config ~nprocs:2) f
      [ Sim.op ~at:0 ~src:0 ~dst:1 () ]
  with
  | Error e -> check_bool "reports double delivery" true (contains e "twice")
  | Ok _ -> Alcotest.fail "double delivery accepted"

let test_wrong_source_detected () =
  let f =
    misbehaving "wrong-src"
      (fun ~now:_ (i : Protocol.intent) ->
        [
          Protocol.Send_user
            {
              Message.id = i.id;
              src = 1 (* lies about its identity *);
              dst = i.dst;
              color = None;
              payload = 0;
              tag = Message.No_tag;
            };
        ])
      (fun ~now:_ ~from:_ _ -> [])
  in
  match
    Sim.execute (Sim.default_config ~nprocs:2) f
      [ Sim.op ~at:0 ~src:0 ~dst:1 () ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong source accepted"

let test_deliver_unreceived_detected () =
  let f =
    misbehaving "early-deliver"
      (fun ~now:_ (i : Protocol.intent) -> [ Protocol.Deliver i.id ])
      (fun ~now:_ ~from:_ _ -> [])
  in
  match
    Sim.execute (Sim.default_config ~nprocs:2) f
      [ Sim.op ~at:0 ~src:0 ~dst:1 () ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "delivery before receive accepted"

let test_liveness_failure_reported () =
  (* a protocol that never delivers: not an error, but not live *)
  let f =
    misbehaving "never-deliver"
      (fun ~now:_ (i : Protocol.intent) ->
        [
          Protocol.Send_user
            {
              Message.id = i.id;
              src = 0;
              dst = i.dst;
              color = None;
              payload = 0;
              tag = Message.No_tag;
            };
        ])
      (fun ~now:_ ~from:_ _ -> [])
  in
  match
    Sim.execute (Sim.default_config ~nprocs:2) f
      [ Sim.op ~at:0 ~src:0 ~dst:1 () ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "not live" false o.all_delivered;
      check_bool "no user view" true (o.run = None)

let test_max_steps () =
  (* a protocol that ping-pongs control messages forever *)
  let f =
    misbehaving "storm"
      (fun ~now:_ _ ->
        [
          Protocol.Send_control
            { dst = 1; ctl = { Message.kind = "ping"; data = [||] } };
        ])
      (fun ~now:_ ~from ->
        function
        | Message.Control _ ->
            [
              Protocol.Send_control
                { dst = from; ctl = { Message.kind = "ping"; data = [||] } };
            ]
        | Message.User _ | Message.Framed _ -> [])
  in
  match
    Sim.execute
      { (Sim.default_config ~nprocs:2) with Sim.max_steps = 500 }
      f
      [ Sim.op ~at:0 ~src:0 ~dst:1 () ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "runaway protocol not stopped"

let test_latency_stats () =
  let cfg =
    { (Sim.default_config ~nprocs:2) with Sim.min_delay = 3; jitter = 0 }
  in
  match
    Sim.execute cfg Tagless.factory [ Sim.op ~at:10 ~src:0 ~dst:1 () ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_int "latency = delay" 3 o.stats.latency_total;
      check_int "makespan" 13 o.stats.makespan;
      Alcotest.(check (float 0.001))
        "mean" 3.0
        (Sim.mean_latency o.stats ~nmsgs:1)

let () =
  Alcotest.run "sim"
    [
      ( "unit",
        [
          Alcotest.test_case "basic execution" `Quick test_basic_execution;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "broadcast expansion" `Quick
            test_broadcast_expansion;
          Alcotest.test_case "colors recorded" `Quick test_colors_recorded;
          Alcotest.test_case "double delivery" `Quick
            test_double_delivery_detected;
          Alcotest.test_case "wrong source" `Quick test_wrong_source_detected;
          Alcotest.test_case "deliver unreceived" `Quick
            test_deliver_unreceived_detected;
          Alcotest.test_case "liveness failure" `Quick
            test_liveness_failure_reported;
          Alcotest.test_case "max steps" `Quick test_max_steps;
          Alcotest.test_case "latency stats" `Quick test_latency_stats;
        ] );
    ]
