open Mo_order
open Mo_workload

let check_bool = Alcotest.(check bool)

let seeds = QCheck.(int_bound 5_000)

let prop_random_run_valid =
  QCheck.Test.make ~name:"random runs are valid complete runs" ~count:150
    seeds
    (fun seed ->
      let r = Random_run.run ~nprocs:4 ~nmsgs:20 ~seed () in
      Run.nmsgs r = 20
      && List.for_all
           (fun m -> Run.lt r (Event.send m) (Event.deliver m))
           (List.init 20 Fun.id))

let prop_causal_runs_causal =
  QCheck.Test.make ~name:"causal_run lands in X_co" ~count:150 seeds
    (fun seed ->
      let r = Random_run.causal_run ~nprocs:4 ~nmsgs:15 ~seed () in
      Limits.is_causal (Run.to_abstract r))

let prop_serialized_runs_sync =
  QCheck.Test.make ~name:"serialized_run lands in X_sync" ~count:150 seeds
    (fun seed ->
      let r = Random_run.serialized_run ~nprocs:4 ~nmsgs:15 ~seed () in
      Limits.is_sync (Run.to_abstract r))

(* limit containment on random runs: sync ⟹ causal *)
let prop_containment_sampled =
  QCheck.Test.make ~name:"X_sync ⊆ X_co on random runs" ~count:150 seeds
    (fun seed ->
      let a = Run.to_abstract (Random_run.run ~nprocs:3 ~nmsgs:12 ~seed ()) in
      (not (Limits.is_sync a)) || Limits.is_causal a)

(* causal runs satisfy every Tagged catalog spec; serialized runs satisfy
   every implementable one — Theorem 3 sampled at scale *)
let prop_causal_satisfies_tagged_specs =
  QCheck.Test.make ~name:"causal runs satisfy tagged specs" ~count:60 seeds
    (fun seed ->
      let a =
        Run.to_abstract (Random_run.causal_run ~nprocs:4 ~nmsgs:12 ~seed ())
      in
      List.for_all
        (fun (e : Mo_core.Catalog.entry) ->
          match e.expected with
          | Mo_core.Classify.Implementable Mo_core.Classify.Tagged
          | Mo_core.Classify.Implementable Mo_core.Classify.Tagless ->
              Mo_core.Eval.satisfies e.pred a
          | _ -> true)
        Mo_core.Catalog.all)

let prop_sync_satisfies_implementable_specs =
  QCheck.Test.make ~name:"sync runs satisfy implementable specs" ~count:60
    seeds
    (fun seed ->
      let a =
        Run.to_abstract
          (Random_run.serialized_run ~nprocs:4 ~nmsgs:12 ~seed ())
      in
      List.for_all
        (fun (e : Mo_core.Catalog.entry) ->
          match e.expected with
          | Mo_core.Classify.Implementable _ -> Mo_core.Eval.satisfies e.pred a
          | Mo_core.Classify.Not_implementable -> true)
        Mo_core.Catalog.all)

(* unrestricted random runs violate causal ordering reasonably often —
   the generator is not accidentally biased into X_co *)
let test_generator_not_degenerate () =
  let violations =
    List.length
      (List.filter
         (fun seed ->
           not
             (Limits.is_causal
                (Run.to_abstract (Random_run.run ~nprocs:3 ~nmsgs:15 ~seed ()))))
         (List.init 50 Fun.id))
  in
  check_bool "some runs violate causal" true (violations > 5);
  (* and causal_run is not accidentally always-sync *)
  let non_sync =
    List.length
      (List.filter
         (fun seed ->
           not
             (Limits.is_sync
                (Run.to_abstract
                   (Random_run.causal_run ~nprocs:3 ~nmsgs:15 ~seed ()))))
         (List.init 50 Fun.id))
  in
  check_bool "causal runs mostly not sync" true (non_sync > 5)

let test_determinism () =
  let a = Random_run.run ~nprocs:3 ~nmsgs:10 ~seed:4 () in
  let b = Random_run.run ~nprocs:3 ~nmsgs:10 ~seed:4 () in
  check_bool "same seed same run" true
    (Run.Abstract.equal (Run.to_abstract a) (Run.to_abstract b))

let () =
  Alcotest.run "random_run"
    [
      ( "unit",
        [
          Alcotest.test_case "not degenerate" `Quick
            test_generator_not_degenerate;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_run_valid;
            prop_causal_runs_causal;
            prop_serialized_runs_sync;
            prop_containment_sampled;
            prop_causal_satisfies_tagged_specs;
            prop_sync_satisfies_implementable_specs;
          ] );
    ]
