open Mo_order
module E = Event.Sys

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ev msg kind = { E.msg; kind }

let quad msg =
  (* invoke and send on the source, receive and deliver on the
     destination, as two sequence fragments *)
  ([ ev msg E.Invoke; ev msg E.Send ], [ ev msg E.Receive; ev msg E.Deliver ])

(* A three-process run in the spirit of Figure 1:
   x0: P0 -> P1, x1: P1 -> P2, x2: P0 -> P1 (x2 after x0 on P0, received
   after x1.s on P1). Only x0 and x1 reach P2 causally. *)
let figure1 () =
  let s0, r0 = quad 0 and s1, r1 = quad 1 and s2, r2 = quad 2 in
  match
    Sys_run.of_sequences ~nprocs:3
      ~msgs:[| (0, 1); (1, 2); (0, 1) |]
      [| s0 @ s2; r0 @ s1 @ r2; r1 |]
  with
  | Ok h -> h
  | Error e -> Alcotest.fail e

let test_construction () =
  let h = figure1 () in
  check_int "nprocs" 3 (Sys_run.nprocs h);
  check_int "nmsgs" 3 (Sys_run.nmsgs h);
  check_bool "complete" true (Sys_run.is_complete h);
  check_bool "x0.s < x1.s" true (Sys_run.lt h (ev 0 E.Send) (ev 1 E.Send));
  check_bool "x0.s < x1.r" true (Sys_run.lt h (ev 0 E.Send) (ev 1 E.Deliver));
  check_bool "x2 not before x1.s" false
    (Sys_run.lt h (ev 2 E.Send) (ev 1 E.Send))

let test_validation () =
  let msgs = [| (0, 1) |] in
  (* receive without send *)
  (match
     Sys_run.of_sequences ~nprocs:2 ~msgs
       [| []; [ ev 0 E.Receive; ev 0 E.Deliver ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spurious receive accepted");
  (* send without invoke *)
  (match Sys_run.of_sequences ~nprocs:2 ~msgs [| [ ev 0 E.Send ]; [] |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unrequested send accepted");
  (* wrong process *)
  (match
     Sys_run.of_sequences ~nprocs:2 ~msgs
       [| []; [ ev 0 E.Invoke; ev 0 E.Send ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "misplaced invoke accepted");
  (* deliver before receive *)
  match
    Sys_run.of_sequences ~nprocs:2 ~msgs
      [|
        [ ev 0 E.Invoke; ev 0 E.Send ]; [ ev 0 E.Deliver; ev 0 E.Receive ];
      |]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deliver before receive accepted"

let test_partial_runs () =
  (* prefixes are runs: requested but unsent, in transit, undelivered *)
  let msgs = [| (0, 1) |] in
  (match Sys_run.of_sequences ~nprocs:2 ~msgs [| [ ev 0 E.Invoke ]; [] |] with
  | Ok h ->
      check_bool "incomplete" false (Sys_run.is_complete h);
      check_bool "send pending" true
        (Sys_run.Pending.sends h 0 = [ ev 0 E.Send ])
  | Error e -> Alcotest.fail e);
  match
    Sys_run.of_sequences ~nprocs:2 ~msgs
      [| [ ev 0 E.Invoke; ev 0 E.Send ]; [ ev 0 E.Receive ] |]
  with
  | Ok h ->
      check_bool "delivery pending" true
        (Sys_run.Pending.deliveries h 1 = [ ev 0 E.Deliver ])
  | Error e -> Alcotest.fail e

let test_causal_past () =
  let h = figure1 () in
  let g = Sys_run.causal_past h 2 in
  (* P2 keeps its own events *)
  check_int "own events" 2 (List.length (Sys_run.sequence g 2));
  (* P1 keeps x0.r*, x0.r, x1.s*, x1.s but not x2.r*, x2.r *)
  check_bool "x1.s kept" true (Sys_run.mem g (ev 1 E.Send));
  check_bool "x0.r kept" true (Sys_run.mem g (ev 0 E.Deliver));
  check_bool "x2.r dropped" false (Sys_run.mem g (ev 2 E.Deliver));
  (* P0 keeps x0.s but not x2.s *)
  check_bool "x0.s kept" true (Sys_run.mem g (ev 0 E.Send));
  check_bool "x2.s dropped" false (Sys_run.mem g (ev 2 E.Send));
  check_bool "prefix of h" true (Sys_run.is_prefix g h)

let test_causal_past_idempotent () =
  (* CausalPast_i is a closure operator on runs: applying it twice changes
     nothing, and it is a prefix of the original *)
  let h = figure1 () in
  for i = 0 to 2 do
    let g = Sys_run.causal_past h i in
    let g2 = Sys_run.causal_past g i in
    check_bool
      (Printf.sprintf "idempotent at P%d" i)
      true
      (Sys_run.is_prefix g g2 && Sys_run.is_prefix g2 g);
    check_bool "prefix of original" true (Sys_run.is_prefix g h)
  done

let test_pending_sets () =
  let msgs = [| (0, 1); (1, 0) |] in
  let h =
    match
      Sys_run.of_sequences ~nprocs:2 ~msgs
        [| [ ev 0 E.Invoke; ev 0 E.Send ]; [] |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  check_bool "x1 not yet invoked" true
    (Sys_run.Pending.invokes h 1 = [ ev 1 E.Invoke ]);
  check_bool "x0 in transit" true
    (Sys_run.Pending.receives h 1 = [ ev 0 E.Receive ]);
  check_bool "nothing controllable at P1" true
    (Sys_run.Pending.controllable h 1 = []);
  check_bool "not all done" false (Sys_run.Pending.all_done h)

let test_extend () =
  let msgs = [| (0, 1) |] in
  let h =
    match Sys_run.of_sequences ~nprocs:2 ~msgs [| []; [] |] with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  let h1 =
    match Sys_run.extend h 0 (ev 0 E.Invoke) with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  check_bool "invoke recorded" true (Sys_run.mem h1 (ev 0 E.Invoke));
  check_bool "prefix" true (Sys_run.is_prefix h h1);
  (* invalid extension: deliver before receive *)
  match Sys_run.extend h1 1 (ev 0 E.Deliver) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid extension accepted"

let test_users_view () =
  let h = figure1 () in
  match Sys_run.users_view h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check_int "user events on P1" 3 (List.length (Run.sequence r 1));
      check_bool "x0.s < x1.r in user view" true
        (Run.lt r (Event.send 0) (Event.deliver 1))

(* Figure 4: in the system view s2 happens before r1 (the receive is taken
   early), but in the user's view s2 does not precede the delivery r1 *)
let test_figure4_views () =
  let h =
    match
      Sys_run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (1, 0) |]
        [|
          [ ev 0 E.Invoke; ev 0 E.Send; ev 1 E.Receive; ev 1 E.Deliver ];
          [ ev 1 E.Invoke; ev 1 E.Send; ev 0 E.Receive; ev 0 E.Deliver ];
        |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  (* system view: x1.s -> x1.r* and x1.r* is after x0.s on P0's sequence?
     no: x1.r* is on P0; x0.s precedes it in P0's order *)
  check_bool "sys: x0.s < x1.r*" true
    (Sys_run.lt h (ev 0 E.Send) (ev 1 E.Receive));
  match Sys_run.users_view h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check_bool "user: x0.s < x1.r still (process order)" true
        (Run.lt r (Event.send 0) (Event.deliver 1));
      check_bool "user: crossing deliveries concurrent with sends" true
        (Run.concurrent r (Event.send 0) (Event.send 1))

let test_lemma2_sets () =
  (* immediate style run: requests immediately precede executions *)
  let s0, r0 = quad 0 and s1, r1 = quad 1 in
  let immediate =
    match
      Sys_run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1) |]
        [| s0 @ s1; r0 @ r1 |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  check_bool "in X_tl" true (Sys_run.Lemma2.in_tagless_set immediate);
  check_bool "in X_td" true (Sys_run.Lemma2.in_tagged_set immediate);
  check_bool "in X_gn" true (Sys_run.Lemma2.in_general_set immediate);
  (* non-immediate: receive early, deliver later *)
  let delayed =
    match
      Sys_run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1) |]
        [|
          [ ev 0 E.Invoke; ev 0 E.Send; ev 1 E.Invoke; ev 1 E.Send ];
          [ ev 0 E.Receive; ev 1 E.Receive; ev 0 E.Deliver; ev 1 E.Deliver ];
        |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  check_bool "not in X_tl (requests not immediate)" false
    (Sys_run.Lemma2.in_tagless_set delayed);
  (* causally out of order on receives: x0.s < x1.s but x1.r* < x0.r* *)
  let swapped =
    match
      Sys_run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1) |]
        [|
          s0 @ s1;
          [ ev 1 E.Receive; ev 1 E.Deliver; ev 0 E.Receive; ev 0 E.Deliver ];
        |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  check_bool "swapped in X_tl" true (Sys_run.Lemma2.in_tagless_set swapped);
  check_bool "swapped not in X_td" false
    (Sys_run.Lemma2.in_tagged_set swapped)

let test_lemma2_containment () =
  (* X_tl ⊇ X_td ⊇ X_gn by definition; spot check with the crossing run *)
  let crossing =
    match
      Sys_run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (1, 0) |]
        [|
          [ ev 0 E.Invoke; ev 0 E.Send; ev 1 E.Receive; ev 1 E.Deliver ];
          [ ev 1 E.Invoke; ev 1 E.Send; ev 0 E.Receive; ev 0 E.Deliver ];
        |]
    with
    | Ok h -> h
    | Error e -> Alcotest.fail e
  in
  check_bool "crossing in X_tl" true (Sys_run.Lemma2.in_tagless_set crossing);
  check_bool "crossing in X_td" true (Sys_run.Lemma2.in_tagged_set crossing);
  (* the crossing messages cannot be drawn vertical *)
  check_bool "crossing not in X_gn" false
    (Sys_run.Lemma2.in_general_set crossing)

let () =
  Alcotest.run "sys_run"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "partial runs" `Quick test_partial_runs;
          Alcotest.test_case "causal past (fig 1)" `Quick test_causal_past;
          Alcotest.test_case "causal past idempotent" `Quick
            test_causal_past_idempotent;
          Alcotest.test_case "pending sets" `Quick test_pending_sets;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "users view" `Quick test_users_view;
          Alcotest.test_case "figure 4 views" `Quick test_figure4_views;
          Alcotest.test_case "lemma 2 sets" `Quick test_lemma2_sets;
          Alcotest.test_case "lemma 2 containment" `Quick
            test_lemma2_containment;
        ] );
    ]
