open Mo_core
open Term

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_make_validation () =
  Alcotest.check_raises "conjunct var out of range"
    (Invalid_argument "Forbidden.make: conjunct mentions x2, arity is 2")
    (fun () -> ignore (Forbidden.make ~nvars:2 [ s 0 @> s 2 ]));
  Alcotest.check_raises "guard var out of range"
    (Invalid_argument "Forbidden.make: guard mentions x5, arity is 1")
    (fun () ->
      ignore (Forbidden.make ~nvars:1 ~guards:[ Color_is (5, 0) ] []))

let test_dedup () =
  let p = Forbidden.make ~nvars:2 [ s 0 @> s 1; s 0 @> s 1; r 1 @> r 0 ] in
  check_int "conjuncts deduplicated" 2 (List.length (Forbidden.conjuncts p));
  let g =
    Forbidden.make ~nvars:2
      ~guards:[ Same_src (0, 1); Same_src (1, 0); Color_is (0, 2) ]
      []
  in
  (* Same_src is symmetric: (0,1) and (1,0) are the same guard *)
  check_int "guards deduplicated" 2 (List.length (Forbidden.guards g))

let test_simplify_tautology () =
  let p = Forbidden.make ~nvars:2 [ s 0 @> r 0; s 0 @> s 1 ] in
  match Forbidden.simplify p with
  | Forbidden.Simplified q ->
      check_int "tautology dropped" 1 (List.length (Forbidden.conjuncts q))
  | Forbidden.Unsatisfiable -> Alcotest.fail "not unsatisfiable"

let test_simplify_contradiction () =
  List.iter
    (fun c ->
      match Forbidden.simplify (Forbidden.make ~nvars:1 [ c ]) with
      | Forbidden.Unsatisfiable -> ()
      | Forbidden.Simplified _ -> Alcotest.fail "contradiction not detected")
    [ r 0 @> s 0; s 0 @> s 0; r 0 @> r 0 ]

let test_rename () =
  let p =
    Forbidden.make ~nvars:3
      ~guards:[ Same_src (0, 2); Color_is (1, 9) ]
      [ s 0 @> s 2; s 1 @> r 0; r 2 @> r 0 ]
  in
  let q = Forbidden.rename p ~keep:[ 0; 2 ] in
  check_int "arity" 2 (Forbidden.nvars q);
  (* conjuncts mentioning x1 dropped; x2 renumbered to 1 *)
  check_int "conjuncts" 2 (List.length (Forbidden.conjuncts q));
  check_bool "guard kept" true
    (List.exists
       (fun g -> Term.guard_equal g (Same_src (0, 1)))
       (Forbidden.guards q));
  check_int "color guard dropped" 1 (List.length (Forbidden.guards q))

let test_equal () =
  let a = Forbidden.make ~nvars:2 [ s 0 @> s 1; r 1 @> r 0 ] in
  let b = Forbidden.make ~nvars:2 [ r 1 @> r 0; s 0 @> s 1 ] in
  check_bool "order-insensitive" true (Forbidden.equal a b);
  let c = Forbidden.make ~nvars:2 [ s 0 @> s 1 ] in
  check_bool "different" false (Forbidden.equal a c)

let test_pp () =
  let p = Forbidden.make ~nvars:2 [ s 0 @> s 1; r 1 @> r 0 ] in
  check_str "pp" "x0.s < x1.s & x1.r < x0.r" (Forbidden.to_string p);
  let g =
    Forbidden.make ~nvars:2 ~guards:[ Same_src (0, 1) ] [ s 0 @> s 1 ]
  in
  check_str "pp guards" "x0.s < x1.s & src(x0) = src(x1)"
    (Forbidden.to_string g);
  check_str "empty" "true" (Forbidden.to_string (Forbidden.make ~nvars:0 []))

let test_is_guarded () =
  check_bool "unguarded" false
    (Forbidden.is_guarded (Forbidden.make ~nvars:2 [ s 0 @> s 1 ]));
  check_bool "guarded" true (Forbidden.is_guarded Catalog.fifo.Catalog.pred)

let () =
  Alcotest.run "forbidden"
    [
      ( "unit",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "simplify tautology" `Quick
            test_simplify_tautology;
          Alcotest.test_case "simplify contradiction" `Quick
            test_simplify_contradiction;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "pp" `Quick test_pp;
          Alcotest.test_case "is_guarded" `Quick test_is_guarded;
        ] );
    ]
