open Mo_order

let check_bool = Alcotest.(check bool)

let crown2 () =
  Run.Abstract.create_exn ~nmsgs:2
    [ (Event.send 0, Event.deliver 1); (Event.send 1, Event.deliver 0) ]

let causal_violation () =
  Run.Abstract.create_exn ~nmsgs:2
    [ (Event.send 0, Event.send 1); (Event.deliver 1, Event.deliver 0) ]

let chain () =
  (* x0 wholly before x1 *)
  Run.Abstract.create_exn ~nmsgs:2 [ (Event.deliver 0, Event.send 1) ]

let test_async () =
  check_bool "crown in X_async" true (Limits.is_async (crown2 ()));
  check_bool "violation in X_async" true (Limits.is_async (causal_violation ()))

let test_causal () =
  check_bool "crown is causal" true (Limits.is_causal (crown2 ()));
  check_bool "violation is not causal" false
    (Limits.is_causal (causal_violation ()));
  check_bool "chain is causal" true (Limits.is_causal (chain ()));
  match Limits.check_causal (causal_violation ()) with
  | Error v -> Alcotest.(check (list int)) "witness pair" [ 0; 1 ] v.cycle
  | Ok () -> Alcotest.fail "violation not detected"

let test_sync () =
  check_bool "crown not sync" false (Limits.is_sync (crown2 ()));
  check_bool "chain sync" true (Limits.is_sync (chain ()));
  check_bool "violation not sync" false (Limits.is_sync (causal_violation ()));
  (match Limits.check_sync (crown2 ()) with
  | Error v ->
      Alcotest.(check int) "crown length" 2 (List.length v.cycle)
  | Ok _ -> Alcotest.fail "crown not detected");
  match Limits.check_sync (chain ()) with
  | Ok t ->
      Alcotest.(check bool) "numbering respects order" true (t.(0) < t.(1))
  | Error _ -> Alcotest.fail "chain should be sync"

let test_classify () =
  Alcotest.(check string)
    "crown" "X_co - X_sync"
    (Limits.cls_to_string (Limits.classify (crown2 ())));
  Alcotest.(check string)
    "violation" "X_async - X_co"
    (Limits.cls_to_string (Limits.classify (causal_violation ())));
  Alcotest.(check string)
    "chain" "X_sync"
    (Limits.cls_to_string (Limits.classify (chain ())))

let test_sync_cycle_extraction () =
  (* regression: the reported crown must itself be a cycle of the message
     graph (the first walk implementation could cut the path wrongly) *)
  let check_cycle a =
    match Limits.check_sync a with
    | Ok _ -> Alcotest.fail "expected a crown"
    | Error v ->
        let edges = Run.Abstract.message_graph a in
        let arr = Array.of_list v.cycle in
        let k = Array.length arr in
        Alcotest.(check bool) "length >= 2" true (k >= 2);
        for i = 0 to k - 1 do
          check_bool
            (Printf.sprintf "edge %d->%d in graph" arr.(i) arr.((i + 1) mod k))
            true
            (List.mem (arr.(i), arr.((i + 1) mod k)) edges)
        done
  in
  check_cycle (crown2 ());
  (* 3-crown *)
  check_cycle
    (Run.Abstract.create_exn ~nmsgs:3
       [
         (Event.send 0, Event.deliver 1);
         (Event.send 1, Event.deliver 2);
         (Event.send 2, Event.deliver 0);
       ]);
  (* crown buried among extra sync messages *)
  check_cycle
    (Run.Abstract.create_exn ~nmsgs:4
       [
         (Event.deliver 2, Event.send 3);
         (Event.deliver 3, Event.send 0);
         (Event.send 0, Event.deliver 1);
         (Event.send 1, Event.deliver 0);
       ])

let test_sync_numbering_is_witness () =
  (* on a bigger sync run, the numbering satisfies the SYNC condition *)
  let a =
    Run.Abstract.create_exn ~nmsgs:3
      [
        (Event.deliver 0, Event.send 1);
        (Event.deliver 1, Event.send 2);
      ]
  in
  match Limits.check_sync a with
  | Error _ -> Alcotest.fail "should be sync"
  | Ok t ->
      let events = Run.Abstract.events a in
      List.iter
        (fun (h : Event.t) ->
          List.iter
            (fun (g : Event.t) ->
              if h.msg <> g.msg && Run.Abstract.lt a h g then
                check_bool "T monotone" true (t.(h.msg) < t.(g.msg)))
            events)
        events

(* Containment X_sync ⊆ X_co ⊆ X_async over all small concrete runs — the
   ordering the whole theory rests on (§3.4). *)
let prop_containment =
  QCheck.Test.make ~name:"X_sync ⊆ X_co over enumerated runs" ~count:200
    (QCheck.make
       (QCheck.Gen.oneofl
          (Enumerate.abstract_runs ~nprocs:3 ~nmsgs:2 ()
          @ Enumerate.abstract_runs ~nprocs:2 ~nmsgs:3 ())))
    (fun a -> if Limits.is_sync a then Limits.is_causal a else true)

(* a concrete run where every message is delivered before the next send is
   always sync *)
let prop_serialized_runs_sync =
  QCheck.Test.make ~name:"serialized runs are sync" ~count:50
    QCheck.(int_range 1 5)
    (fun n ->
      let msgs = Array.init n (fun i -> (i mod 2, 1 - (i mod 2))) in
      let sched =
        List.concat
          (List.init n (fun i -> [ Run.Do_send i; Run.Do_deliver i ]))
      in
      match Run.of_schedule ~nprocs:2 ~msgs sched with
      | Ok r -> Limits.is_sync (Run.to_abstract r)
      | Error _ -> false)

let () =
  Alcotest.run "limits"
    [
      ( "unit",
        [
          Alcotest.test_case "async" `Quick test_async;
          Alcotest.test_case "causal" `Quick test_causal;
          Alcotest.test_case "sync" `Quick test_sync;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "sync cycle extraction" `Quick
            test_sync_cycle_extraction;
          Alcotest.test_case "sync numbering" `Quick
            test_sync_numbering_is_witness;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_containment; prop_serialized_runs_sync ] );
    ]
