open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let diamond () =
  (* 0 < 1, 0 < 2, 1 < 3, 2 < 3 *)
  Poset.of_edges_exn 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_construction () =
  let p = diamond () in
  check_int "size" 4 (Poset.size p);
  check_bool "0<3 transitively" true (Poset.lt p 0 3);
  check_bool "1 || 2" true (Poset.concurrent p 1 2);
  check_bool "not 3<0" false (Poset.lt p 3 0);
  check_bool "irreflexive" false (Poset.lt p 1 1);
  check_bool "le reflexive" true (Poset.le p 1 1)

let test_cycle_rejected () =
  Alcotest.(check bool)
    "cycle" true
    (Poset.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] = None);
  Alcotest.(check bool)
    "self loop" true
    (Poset.of_edges 2 [ (1, 1) ] = None)

let test_duplicate_edges () =
  let p = Poset.of_edges_exn 2 [ (0, 1); (0, 1); (0, 1) ] in
  check_bool "0<1" true (Poset.lt p 0 1);
  check_int "generators deduplicated" 1 (List.length (Poset.generators p))

let test_topo_sort () =
  let p = diamond () in
  let order = Poset.topo_sort p in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  List.iter
    (fun (h, g) ->
      check_bool (Printf.sprintf "%d before %d" h g) true (pos.(h) < pos.(g)))
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_linear_extensions () =
  (* diamond has exactly 2 linear extensions *)
  check_int "diamond" 2 (Poset.count_linear_extensions (diamond ()));
  (* 3-element antichain: 3! *)
  check_int "antichain" 6 (Poset.count_linear_extensions (Poset.empty 3));
  (* chain: 1 *)
  check_int "chain" 1
    (Poset.count_linear_extensions (Poset.of_edges_exn 3 [ (0, 1); (1, 2) ]));
  check_int "limit" 3
    (List.length (Poset.linear_extensions ~limit:3 (Poset.empty 4)))

let test_covers () =
  (* transitive edge 0->3 must not be a cover *)
  let p = Poset.of_edges_exn 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check (list (pair int int)))
    "covers" [ (0, 1); (1, 2); (2, 3) ]
    (List.sort compare (Poset.covers p))

let test_min_max () =
  let p = diamond () in
  check_ints "minimal" [ 0 ] (Poset.minimal_elements p);
  check_ints "maximal" [ 3 ] (Poset.maximal_elements p)

let test_down_up () =
  let p = diamond () in
  check_ints "down 3" [ 0; 1; 2 ] (Bitset.elements (Poset.down_set p 3));
  check_ints "up 0" [ 1; 2; 3 ] (Bitset.elements (Poset.up_set p 0));
  check_ints "down 0" [] (Bitset.elements (Poset.down_set p 0))

let test_restrict () =
  let p = diamond () in
  let q, back = Poset.restrict p [ 0; 3 ] in
  check_int "restricted size" 2 (Poset.size q);
  check_bool "0<3 restricted" true (Poset.lt q 0 1);
  check_int "mapping" 3 back.(1)

let test_add_edges () =
  let p = Poset.of_edges_exn 3 [ (0, 1) ] in
  (match Poset.add_edges p [ (1, 2) ] with
  | Some q -> check_bool "0<2" true (Poset.lt q 0 2)
  | None -> Alcotest.fail "extension should succeed");
  check_bool "cycle rejected" true (Poset.add_edges p [ (1, 0) ] = None)

let test_relation_ops () =
  let p = Poset.of_edges_exn 3 [ (0, 1) ] in
  let q = Poset.of_edges_exn 3 [ (0, 1); (1, 2) ] in
  check_bool "subset" true (Poset.relation_subset p q);
  check_bool "not subset" false (Poset.relation_subset q p);
  check_bool "equal generators vs closure" true
    (Poset.relation_equal q
       (Poset.of_edges_exn 3 [ (0, 1); (1, 2); (0, 2) ]));
  check_bool "total chain" true
    (Poset.is_total (Poset.of_edges_exn 3 [ (0, 1); (1, 2) ]));
  check_bool "not total" false (Poset.is_total p)

(* random DAG generator: edges only from lower to higher vertex *)
let dag_gen =
  QCheck.Gen.(
    sized_size (int_bound 8) (fun n ->
        let n = n + 2 in
        let* edges =
          list_size (int_bound (n * 2)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
        in
        let edges =
          List.filter_map
            (fun (a, b) ->
              if a < b then Some (a, b) else if b < a then Some (b, a) else None)
            edges
        in
        return (n, edges)))

let dag_arb = QCheck.make ~print:(fun (n, e) ->
    Printf.sprintf "n=%d edges=%s" n
      (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))
    dag_gen

let prop_transitive =
  QCheck.Test.make ~name:"lt is transitive" ~count:200 dag_arb (fun (n, edges) ->
      match Poset.of_edges n edges with
      | None -> false (* ordered-pair edges can never cycle *)
      | Some p ->
          let ok = ref true in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              for c = 0 to n - 1 do
                if Poset.lt p a b && Poset.lt p b c && not (Poset.lt p a c)
                then ok := false
              done
            done
          done;
          !ok)

let prop_irreflexive =
  QCheck.Test.make ~name:"lt is irreflexive" ~count:200 dag_arb
    (fun (n, edges) ->
      match Poset.of_edges n edges with
      | None -> false
      | Some p ->
          List.for_all (fun v -> not (Poset.lt p v v)) (List.init n Fun.id))

let prop_topo_is_extension =
  QCheck.Test.make ~name:"topo_sort is a linear extension" ~count:200 dag_arb
    (fun (n, edges) ->
      match Poset.of_edges n edges with
      | None -> false
      | Some p ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) (Poset.topo_sort p);
          let ok = ref true in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              if Poset.lt p a b && pos.(a) >= pos.(b) then ok := false
            done
          done;
          !ok)

let prop_covers_regenerate =
  QCheck.Test.make ~name:"covers regenerate the order" ~count:200 dag_arb
    (fun (n, edges) ->
      match Poset.of_edges n edges with
      | None -> false
      | Some p ->
          let q = Poset.of_edges_exn n (Poset.covers p) in
          Poset.relation_equal p q)

let () =
  Alcotest.run "poset"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges;
          Alcotest.test_case "topo sort" `Quick test_topo_sort;
          Alcotest.test_case "linear extensions" `Quick test_linear_extensions;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "down/up sets" `Quick test_down_up;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "add edges" `Quick test_add_edges;
          Alcotest.test_case "relation ops" `Quick test_relation_ops;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_transitive;
            prop_irreflexive;
            prop_topo_is_extension;
            prop_covers_regenerate;
          ] );
    ]
