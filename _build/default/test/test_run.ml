open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The FIFO scenario of Figure 2/4: two messages P0 -> P1, delivered in
   sending order. *)
let fifo_run () =
  match
    Run.of_schedule ~nprocs:2
      ~msgs:[| (0, 1); (0, 1) |]
      [ Run.Do_send 0; Run.Do_send 1; Run.Do_deliver 0; Run.Do_deliver 1 ]
  with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_schedule_basic () =
  let r = fifo_run () in
  check_int "nprocs" 2 (Run.nprocs r);
  check_int "nmsgs" 2 (Run.nmsgs r);
  check_int "src" 0 (Run.msg_src r 0);
  check_int "dst" 1 (Run.msg_dst r 1);
  check_bool "s0 < r0" true (Run.lt r (Event.send 0) (Event.deliver 0));
  check_bool "s0 < s1" true (Run.lt r (Event.send 0) (Event.send 1));
  (* in the user view, s1 and r0 are concurrent: the ordering a FIFO
     implementation sees via the receive event (Figure 4) is not visible
     here *)
  check_bool "s1 concurrent with r0" true
    (Run.concurrent r (Event.send 1) (Event.deliver 0));
  check_bool "s0 < r1" true (Run.lt r (Event.send 0) (Event.deliver 1));
  check_bool "r0 < r1" true (Run.lt r (Event.deliver 0) (Event.deliver 1))

let test_schedule_errors () =
  let msgs = [| (0, 1) |] in
  (match Run.of_schedule ~nprocs:2 ~msgs [ Run.Do_deliver 0; Run.Do_send 0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deliver before send accepted");
  (match Run.of_schedule ~nprocs:2 ~msgs [ Run.Do_send 0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete run accepted");
  match Run.of_schedule ~nprocs:2 ~msgs [ Run.Do_send 5; Run.Do_deliver 5 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown message accepted"

let test_sequences_validation () =
  let msgs = [| (0, 1) |] in
  (* send placed on the wrong process *)
  (match
     Run.of_sequences ~nprocs:2 ~msgs
       [| [ Event.deliver 0 ]; [ Event.send 0 ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "misplaced events accepted");
  (* duplicate event *)
  (match
     Run.of_sequences ~nprocs:2 ~msgs
       [| [ Event.send 0; Event.send 0 ]; [ Event.deliver 0 ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate accepted");
  (* valid *)
  match
    Run.of_sequences ~nprocs:2 ~msgs
      [| [ Event.send 0 ]; [ Event.deliver 0 ] |]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_concurrent () =
  (* two messages crossing between P0 and P1 *)
  match
    Run.of_sequences ~nprocs:2
      ~msgs:[| (0, 1); (1, 0) |]
      [|
        [ Event.send 0; Event.deliver 1 ]; [ Event.send 1; Event.deliver 0 ];
      |]
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check_bool "sends concurrent" true
        (Run.concurrent r (Event.send 0) (Event.send 1));
      (* r1 follows s0 on P0's sequence *)
      check_bool "s0 < r1 via process order" true
        (Run.lt r (Event.send 0) (Event.deliver 1));
      check_bool "r1 not before s0" false
        (Run.lt r (Event.deliver 1) (Event.send 0))

let test_to_abstract () =
  let r = fifo_run () in
  let a = Run.to_abstract r in
  check_int "nmsgs" 2 (Run.Abstract.nmsgs a);
  check_bool "same relation s0<r1" true
    (Run.Abstract.lt a (Event.send 0) (Event.deliver 1));
  check_bool "same relation s1||r0" true
    (Run.Abstract.concurrent a (Event.send 1) (Event.deliver 0));
  let attrs = Run.Abstract.attrs a 0 in
  check_bool "src attr" true (attrs.Run.src = Some 0);
  check_bool "dst attr" true (attrs.Run.dst = Some 1);
  check_bool "no color" true (attrs.Run.color = None)

let test_colors_preserved () =
  match
    Run.of_schedule ~nprocs:2
      ~msgs:[| (0, 1) |]
      ~colors:[| Some 4 |]
      [ Run.Do_send 0; Run.Do_deliver 0 ]
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let a = Run.to_abstract r in
      check_bool "color attr" true ((Run.Abstract.attrs a 0).Run.color = Some 4)

let test_abstract_create () =
  (* implicit s < r edge *)
  let a = Run.Abstract.create_exn ~nmsgs:1 [] in
  check_bool "s<r implicit" true
    (Run.Abstract.lt a (Event.send 0) (Event.deliver 0));
  (* cyclic edges rejected *)
  check_bool "cycle None" true
    (Run.Abstract.create ~nmsgs:1 [ (Event.deliver 0, Event.send 0) ] = None)

let test_message_graph () =
  (* crown: x0.s < x1.r and x1.s < x0.r gives a 2-cycle *)
  let a =
    Run.Abstract.create_exn ~nmsgs:2
      [
        (Event.send 0, Event.deliver 1); (Event.send 1, Event.deliver 0);
      ]
  in
  let mg = List.sort compare (Run.Abstract.message_graph a) in
  Alcotest.(check (list (pair int int))) "crown graph" [ (0, 1); (1, 0) ] mg

let test_abstract_equal () =
  let a = Run.Abstract.create_exn ~nmsgs:2 [ (Event.send 0, Event.send 1) ] in
  let b =
    Run.Abstract.create_exn ~nmsgs:2
      [ (Event.send 0, Event.send 1); (Event.send 0, Event.deliver 1) ]
  in
  (* the second edge is implied: s0 < s1 < r1 *)
  check_bool "equal up to closure" true (Run.Abstract.equal a b);
  let c = Run.Abstract.create_exn ~nmsgs:2 [] in
  check_bool "different" false (Run.Abstract.equal a c)

(* round-trip: every enumerated concrete run's abstract projection keeps
   exactly the same happened-before relation on user events *)
let prop_projection_faithful =
  QCheck.Test.make ~name:"to_abstract preserves happened-before" ~count:50
    (QCheck.make (QCheck.Gen.oneofl (Enumerate.all_runs ~nprocs:2 ~nmsgs:2 ())))
    (fun r ->
      let a = Run.to_abstract r in
      let events = List.init (2 * Run.nmsgs r) Event.decode in
      List.for_all
        (fun h ->
          List.for_all
            (fun g -> Run.lt r h g = Run.Abstract.lt a h g)
            events)
        events)

let () =
  Alcotest.run "run"
    [
      ( "unit",
        [
          Alcotest.test_case "schedule basic" `Quick test_schedule_basic;
          Alcotest.test_case "schedule errors" `Quick test_schedule_errors;
          Alcotest.test_case "sequence validation" `Quick
            test_sequences_validation;
          Alcotest.test_case "concurrency" `Quick test_concurrent;
          Alcotest.test_case "to_abstract" `Quick test_to_abstract;
          Alcotest.test_case "colors preserved" `Quick test_colors_preserved;
          Alcotest.test_case "abstract create" `Quick test_abstract_create;
          Alcotest.test_case "message graph" `Quick test_message_graph;
          Alcotest.test_case "abstract equal" `Quick test_abstract_equal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_projection_faithful ] );
    ]
