open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_vclock_basics () =
  let v = Vclock.create 3 in
  check_int "size" 3 (Vclock.size v);
  check_int "zero" 0 (Vclock.get v 1);
  let v1 = Vclock.tick v 1 in
  check_int "ticked" 1 (Vclock.get v1 1);
  check_int "persistent" 0 (Vclock.get v 1);
  check_bool "leq" true (Vclock.leq v v1);
  check_bool "lt" true (Vclock.lt v v1);
  check_bool "not lt self" false (Vclock.lt v1 v1)

let test_vclock_concurrent () =
  let v = Vclock.create 2 in
  let a = Vclock.tick v 0 and b = Vclock.tick v 1 in
  check_bool "concurrent" true (Vclock.concurrent a b);
  let m = Vclock.merge a b in
  check_bool "merge above a" true (Vclock.leq a m);
  check_bool "merge above b" true (Vclock.leq b m);
  check_int "merge value" 1 (Vclock.get m 0)

let test_vclock_arrays () =
  let v = Vclock.of_array [| 3; 1; 4 |] in
  check_int "get" 4 (Vclock.get v 2);
  Alcotest.(check (array int)) "roundtrip" [| 3; 1; 4 |] (Vclock.to_array v)

(* vector clocks characterize happened-before on generated runs: simulate
   the standard algorithm over an enumerated run and compare lt with the
   run's order on send events *)
let vclock_characterizes_causality run =
  let n = Run.nprocs run in
  let clocks = Array.init n (fun _ -> Vclock.create n) in
  let stamp = Hashtbl.create 16 in
  (* replay in a linear extension: walk events of the run poset *)
  let events =
    List.concat (List.init n (fun p -> Run.sequence run p))
  in
  let unstamped e = not (Hashtbl.mem stamp (Event.encode e)) in
  let rec step remaining =
    match List.filter unstamped remaining with
    | [] -> ()
    | rem ->
        let ready =
          List.filter
            (fun e ->
              List.for_all
                (fun e' -> (not (Run.lt run e' e)) || not (unstamped e'))
                events)
            rem
        in
        assert (ready <> []);
        List.iter
          (fun (e : Event.t) ->
            let p =
              match e.point with
              | Event.S -> Run.msg_src run e.msg
              | Event.R -> Run.msg_dst run e.msg
            in
            let base =
              match e.point with
              | Event.S -> clocks.(p)
              | Event.R ->
                  Vclock.merge clocks.(p)
                    (Hashtbl.find stamp (Event.encode (Event.send e.msg)))
            in
            let c = Vclock.tick base p in
            clocks.(p) <- c;
            Hashtbl.replace stamp (Event.encode e) c)
          ready;
        step (List.filter unstamped rem)
  in
  step events;
  List.for_all
    (fun h ->
      List.for_all
        (fun g ->
          let vh = Hashtbl.find stamp (Event.encode h)
          and vg = Hashtbl.find stamp (Event.encode g) in
          if Event.equal h g then true else Run.lt run h g = Vclock.lt vh vg)
        events)
    events

let prop_vclock_causality =
  QCheck.Test.make ~name:"vector clocks characterize happened-before"
    ~count:80
    (QCheck.make (QCheck.Gen.oneofl (Enumerate.all_runs ~nprocs:3 ~nmsgs:2 ())))
    vclock_characterizes_causality

let test_mclock_basics () =
  let m = Mclock.create 3 in
  check_int "zero" 0 (Mclock.get m 0 1);
  let m1 = Mclock.record_send m ~src:0 ~dst:1 in
  check_int "recorded" 1 (Mclock.get m1 0 1);
  check_int "persistent" 0 (Mclock.get m 0 1);
  check_bool "leq" true (Mclock.leq m m1);
  check_bool "not leq" false (Mclock.leq m1 m)

let test_mclock_merge () =
  let a = Mclock.record_send (Mclock.create 2) ~src:0 ~dst:1 in
  let b = Mclock.record_send (Mclock.create 2) ~src:1 ~dst:0 in
  let m = Mclock.merge a b in
  check_int "a part" 1 (Mclock.get m 0 1);
  check_int "b part" 1 (Mclock.get m 1 0);
  check_bool "upper bound" true (Mclock.leq a m && Mclock.leq b m);
  Alcotest.(check (array int)) "row" [| 0; 1 |] (Mclock.row m 0)

let test_mclock_equal () =
  let a = Mclock.record_send (Mclock.create 2) ~src:0 ~dst:1 in
  let b = Mclock.record_send (Mclock.create 2) ~src:0 ~dst:1 in
  check_bool "equal" true (Mclock.equal a b);
  check_bool "not equal" false (Mclock.equal a (Mclock.create 2))

let () =
  Alcotest.run "clocks"
    [
      ( "vclock",
        [
          Alcotest.test_case "basics" `Quick test_vclock_basics;
          Alcotest.test_case "concurrent/merge" `Quick test_vclock_concurrent;
          Alcotest.test_case "arrays" `Quick test_vclock_arrays;
        ] );
      ( "mclock",
        [
          Alcotest.test_case "basics" `Quick test_mclock_basics;
          Alcotest.test_case "merge" `Quick test_mclock_merge;
          Alcotest.test_case "equal" `Quick test_mclock_equal;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_vclock_causality ] );
    ]
