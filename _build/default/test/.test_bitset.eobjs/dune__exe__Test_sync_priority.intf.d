test/test_sync_priority.mli:
