test/test_beta.mli:
