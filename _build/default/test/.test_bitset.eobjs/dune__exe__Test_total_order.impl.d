test/test_total_order.ml: Alcotest Array Broadcast_props Causal_bss Event Fun Gen Hashtbl List Message Mo_order Mo_protocol Mo_workload Printf Protocol Run Sim Tagless Total_order
