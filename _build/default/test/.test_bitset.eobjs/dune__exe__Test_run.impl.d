test/test_run.ml: Alcotest Enumerate Event List Mo_order QCheck QCheck_alcotest Run
