test/test_necessity.ml: Alcotest Catalog Classify Eval Limits List Mo_core Mo_order Mo_workload Necessity QCheck QCheck_alcotest Run String
