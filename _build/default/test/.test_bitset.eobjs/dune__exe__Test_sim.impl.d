test/test_sim.ml: Alcotest Array Fifo Format List Message Mo_order Mo_protocol Protocol Sim String Tagless
