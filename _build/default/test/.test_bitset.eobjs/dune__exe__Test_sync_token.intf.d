test/test_sync_token.mli:
