test/test_random_run.ml: Alcotest Event Fun Limits List Mo_core Mo_order Mo_workload QCheck QCheck_alcotest Random_run Run
