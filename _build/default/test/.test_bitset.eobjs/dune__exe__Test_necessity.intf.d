test/test_necessity.mli:
