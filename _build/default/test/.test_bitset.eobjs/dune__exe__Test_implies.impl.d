test/test_implies.ml: Alcotest Catalog Eval Forbidden Implies List Mo_core Mo_order Mo_workload QCheck QCheck_alcotest Spec Term
