test/test_prop_classify.ml: Alcotest Classify Eval Forbidden Fun List Mo_core Mo_order Mo_workload Printf Prop Witness
