test/test_reliable.mli:
