test/test_sys_run.ml: Alcotest Event List Mo_order Printf Run Sys_run
