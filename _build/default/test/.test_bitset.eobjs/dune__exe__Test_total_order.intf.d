test/test_total_order.mli:
