test/test_witness.ml: Alcotest Catalog Classify Eval Event Forbidden List Mo_core Mo_order Mo_workload QCheck QCheck_alcotest Run Term Witness
