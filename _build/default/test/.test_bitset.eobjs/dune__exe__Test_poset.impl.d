test/test_poset.ml: Alcotest Array Bitset Fun List Mo_order Poset Printf QCheck QCheck_alcotest String
