test/prop.ml: List Printexc Printf Random
