test/test_sync_priority.ml: Alcotest Catalog Conformance Fun Gen List Mo_core Mo_order Mo_protocol Mo_workload Printf Sim Spec Sync_priority Sync_token
