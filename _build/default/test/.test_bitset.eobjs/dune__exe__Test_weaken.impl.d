test/test_weaken.ml: Alcotest Array Beta Catalog Classify Cycles Forbidden Format Implies List Mo_core Mo_order Mo_workload Pgraph Printf Term Weaken Witness
