test/test_implies.mli:
