test/test_eval.ml: Alcotest Array Catalog Enumerate Eval Event Forbidden Fun List Mo_core Mo_order Mo_workload QCheck QCheck_alcotest Run Term
