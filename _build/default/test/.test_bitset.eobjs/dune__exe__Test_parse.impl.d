test/test_parse.ml: Alcotest Catalog Forbidden List Mo_core Parse Term
