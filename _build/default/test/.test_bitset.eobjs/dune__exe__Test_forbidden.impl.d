test/test_forbidden.ml: Alcotest Catalog Forbidden List Mo_core Term
