test/test_model_check.ml: Alcotest Catalog Classify Enumerate Eval Event Forbidden Lazy Limits List Mo_core Mo_order Run
