test/test_trace_io.ml: Alcotest Fifo Filename Gen List Mo_order Mo_protocol Mo_workload Online QCheck QCheck_alcotest Random_run Result Run Sim Sys Trace_io
