test/test_event.ml: Alcotest Event Format Int List Mo_order
