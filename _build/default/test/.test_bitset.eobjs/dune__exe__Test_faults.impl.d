test/test_faults.ml: Alcotest Array Causal_rst Conformance Fun Gen List Mo_core Mo_protocol Mo_workload Sim Tagless Wrap
