test/test_pgraph.ml: Alcotest Catalog Cycles Forbidden List Mo_core Mo_workload Pgraph Printf String Term
