test/test_enumerate.ml: Alcotest Enumerate Event Limits List Mo_order QCheck QCheck_alcotest Run String
