test/test_classify.ml: Alcotest Beta Catalog Classify Cycles Forbidden Format Int List Mo_core Mo_workload Pgraph QCheck QCheck_alcotest String Term Witness
