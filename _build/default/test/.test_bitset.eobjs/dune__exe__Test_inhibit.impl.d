test/test_inhibit.ml: Alcotest Enumerate Event Format Inhibit Limits List Mo_core Mo_order Mo_protocol Run String Sys_run
