test/test_beta.ml: Alcotest Beta Catalog Cycles List Mo_core Pgraph Printf
