test/test_synth.ml: Alcotest Array Catalog Classify Conformance Fifo Flush Forbidden Gen List Mo_core Mo_protocol Mo_workload Protocol Result Sim Spec Synth Term
