test/test_catalog.ml: Alcotest Catalog Classify Forbidden List Mo_core Mo_order Printf Spec Witness
