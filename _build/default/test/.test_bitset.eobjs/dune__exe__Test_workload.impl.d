test/test_workload.ml: Alcotest Gen List Message Mo_core Mo_protocol Mo_workload Random_pred Sim
