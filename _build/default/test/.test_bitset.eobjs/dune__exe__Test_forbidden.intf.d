test/test_forbidden.mli:
