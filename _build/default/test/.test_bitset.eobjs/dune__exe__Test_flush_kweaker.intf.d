test/test_flush_kweaker.mli:
