test/test_prop_parse.ml: Alcotest Classify Forbidden Fun List Mo_core Mo_workload Parse Printf Prop Random_pred Term
