test/test_prop_parse.mli:
