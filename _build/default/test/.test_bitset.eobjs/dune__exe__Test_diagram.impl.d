test/test_diagram.ml: Alcotest Diagram Event List Mo_order Run String Sys_run
