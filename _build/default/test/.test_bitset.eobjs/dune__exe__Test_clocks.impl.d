test/test_clocks.ml: Alcotest Array Enumerate Event Hashtbl List Mclock Mo_order QCheck QCheck_alcotest Run Vclock
