test/test_flush_kweaker.ml: Alcotest Catalog Classify Conformance Flush Forbidden Fun Gen Kweaker List Message Mo_core Mo_order Mo_protocol Mo_workload Printf Sim Spec Term
