test/test_online.ml: Alcotest Array Enumerate Event Limits List Mo_core Mo_order Mo_workload Online QCheck QCheck_alcotest Random_run Result Run
