test/test_protocols.ml: Alcotest Catalog Causal_bss Causal_rst Causal_ses Conformance Fifo Flush Fun Gen List Mo_core Mo_order Mo_protocol Mo_workload Printf Protocol Sim Spec Sync_token Tagless
