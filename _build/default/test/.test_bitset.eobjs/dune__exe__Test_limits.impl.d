test/test_limits.ml: Alcotest Array Enumerate Event Limits List Mo_order Printf QCheck QCheck_alcotest Run
