test/test_weaken.mli:
