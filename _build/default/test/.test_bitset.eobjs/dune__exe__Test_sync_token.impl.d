test/test_sync_token.ml: Alcotest Catalog Classify Eval Gen Hashtbl List Message Mo_core Mo_order Mo_protocol Mo_workload Printf Protocol Sim Sync_token
