test/test_bitset.ml: Alcotest Bitset Int List Mo_order QCheck QCheck_alcotest
