test/test_random_run.mli:
