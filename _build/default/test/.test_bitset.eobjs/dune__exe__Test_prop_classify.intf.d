test/test_prop_classify.mli:
