test/test_sys_run.mli:
