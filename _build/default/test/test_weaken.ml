open Mo_core
open Term

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let only_cycle pred =
  match Cycles.enumerate (Pgraph.of_predicate pred) with
  | [ c ] -> c
  | cs ->
      Alcotest.fail (Printf.sprintf "expected 1 cycle, got %d" (List.length cs))

let test_two_cycle_fixed_point () =
  let c = only_cycle Catalog.causal_b2.Catalog.pred in
  let w = Weaken.contract c in
  check_bool "two vertex form" true (w.form = `Two_vertex);
  check_int "no steps" 0 (List.length w.trace);
  check_int "order preserved" 1 w.original_order

let test_crown_fixed_point () =
  let c = only_cycle (Catalog.sync_crown 4).Catalog.pred in
  let w = Weaken.contract c in
  check_bool "all beta form" true (w.form = `All_beta);
  check_int "no steps" 0 (List.length w.trace);
  check_int "4 conjuncts kept" 4 (List.length w.final)

let test_example_contraction () =
  (* the paper's Example 3: contracting the non-beta vertices of the
     4-cycle yields a 2-vertex order-1 cycle whose beta vertex is x3 *)
  let g = Pgraph.of_predicate Catalog.example_1.Catalog.pred in
  let four_cycle =
    List.find (fun c -> List.length c = 4) (Cycles.enumerate g)
  in
  let w = Weaken.contract four_cycle in
  check_int "two steps" 2 (List.length w.trace);
  check_bool "two vertex form" true (w.form = `Two_vertex);
  check_int "order preserved" 1 w.original_order;
  (* the weakened predicate is a canonical order-1 (causal) form *)
  let p' = Weaken.to_predicate w in
  let r = Classify.classify p' in
  Alcotest.(check string)
    "still tagged" "tagged"
    (Classify.verdict_to_string r.Classify.verdict)

let test_contraction_order_preserved_random () =
  for seed = 0 to 80 do
    let nvars = 3 + (seed mod 5) in
    let p = Mo_workload.Random_pred.cyclic_predicate ~nvars ~seed in
    match Cycles.enumerate (Pgraph.of_predicate p) with
    | [ c ] ->
        let w = Weaken.contract c in
        let final_order =
          (* order of the contracted cycle = order of the weakened
             predicate's unique cycle *)
          match
            Cycles.enumerate (Pgraph.of_predicate (Weaken.to_predicate w))
          with
          | [ c' ] -> Beta.order c'
          | _ -> Alcotest.fail "weakened predicate should be a single cycle"
        in
        check_int
          (Printf.sprintf "seed %d order preserved" seed)
          (Beta.order c) final_order
    | _ -> () (* random multi-cycle graphs are exercised elsewhere *)
  done

let test_weaker_is_implied () =
  (* B ⟹ B': every conjunct of the contraction is implied, so any run
     violating B' must violate B... conversely X_{B'} ⊆ X_B. We check the
     contrapositive on the witness: the witness of B satisfies B'. *)
  let g = Pgraph.of_predicate Catalog.example_1.Catalog.pred in
  let four_cycle =
    List.find (fun c -> List.length c = 4) (Cycles.enumerate g)
  in
  let w = Weaken.contract four_cycle in
  match Witness.build Catalog.example_1.Catalog.pred with
  | Witness.Witness { run; assignment } ->
      (* each final conjunct (over original variable names) holds in the
         witness under the identity assignment *)
      List.iter
        (fun (c : Term.conjunct) ->
          let ev (e : Term.endpoint) =
            {
              Mo_order.Event.msg = assignment.(e.Term.var);
              point = e.Term.point;
            }
          in
          check_bool
            (Format.asprintf "implied: %a" Term.pp_conjunct c)
            true
            (Mo_order.Run.Abstract.lt run (ev c.before) (ev c.after)))
        w.final
  | _ -> Alcotest.fail "witness should exist"

(* Lemma 4's statement "B ⟹ B'" checked with the independent implication
   decision procedure, over random cyclic predicates *)
let test_contraction_is_implied () =
  for seed = 0 to 60 do
    let nvars = 3 + (seed mod 4) in
    let p = Mo_workload.Random_pred.cyclic_predicate ~nvars ~seed in
    match Cycles.enumerate (Pgraph.of_predicate p) with
    | c :: _ ->
        let w = Weaken.contract c in
        let p' = Weaken.to_predicate w in
        check_bool
          (Printf.sprintf "seed %d: B implies its contraction" seed)
          true (Implies.check p p')
    | [] -> ()
  done

let test_self_loop () =
  let p = Forbidden.make ~nvars:1 [ s 0 @> r 0 ] in
  match Cycles.enumerate (Pgraph.of_predicate p) with
  | [ c ] ->
      let w = Weaken.contract c in
      check_bool "self loop form" true (w.form = `Self_loop)
  | _ -> Alcotest.fail "self loop cycle expected"

let test_empty_rejected () =
  Alcotest.check_raises "empty cycle"
    (Invalid_argument "Weaken.contract: empty cycle") (fun () ->
      ignore (Weaken.contract []))

let () =
  Alcotest.run "weaken"
    [
      ( "unit",
        [
          Alcotest.test_case "two-cycle fixed point" `Quick
            test_two_cycle_fixed_point;
          Alcotest.test_case "crown fixed point" `Quick test_crown_fixed_point;
          Alcotest.test_case "example contraction" `Quick
            test_example_contraction;
          Alcotest.test_case "order preserved (random)" `Quick
            test_contraction_order_preserved_random;
          Alcotest.test_case "weaker is implied" `Quick test_weaker_is_implied;
          Alcotest.test_case "contraction implied (Implies)" `Quick
            test_contraction_is_implied;
          Alcotest.test_case "self loop" `Quick test_self_loop;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        ] );
    ]
