open Mo_core
open Term

let check_bool = Alcotest.(check bool)

let test_reflexive () =
  List.iter
    (fun (e : Catalog.entry) ->
      check_bool (e.name ^ " implies itself") true (Implies.check e.pred e.pred))
    Catalog.all

let test_causal_forms () =
  (* abstractly: B2 ⟹ B1 and B2 ⟹ B3, but not conversely (the realizable
     equivalence of Lemma 3.2 is finer than the abstract semantics) *)
  check_bool "B2 => B1" true
    (Implies.check Catalog.causal_b2.Catalog.pred Catalog.causal_b1.Catalog.pred);
  check_bool "B2 => B3" true
    (Implies.check Catalog.causal_b2.Catalog.pred Catalog.causal_b3.Catalog.pred);
  check_bool "B1 !=> B2 (abstractly)" false
    (Implies.check Catalog.causal_b1.Catalog.pred Catalog.causal_b2.Catalog.pred)

let test_guards_weaken () =
  (* FIFO = causal + guards: any FIFO match is a causal match *)
  check_bool "fifo => causal" true
    (Implies.check Catalog.fifo.Catalog.pred Catalog.causal_b2.Catalog.pred);
  check_bool "causal !=> fifo" false
    (Implies.check Catalog.causal_b2.Catalog.pred Catalog.fifo.Catalog.pred);
  (* so the fifo specification is weaker (forbids less) *)
  check_bool "specs compare" true
    (Implies.compare_specs Catalog.fifo.Catalog.pred
       Catalog.causal_b2.Catalog.pred
    = `Weaker)

let test_k_weaker_ladder () =
  (* a longer chain implies the shorter one (pick a subsequence), so the
     k-weaker specifications grow with k *)
  let kw k = (Catalog.k_weaker_causal k).Catalog.pred in
  check_bool "kw2 => kw1" true (Implies.check (kw 2) (kw 1));
  check_bool "kw3 => kw1" true (Implies.check (kw 3) (kw 1));
  check_bool "kw1 !=> kw2" false (Implies.check (kw 1) (kw 2));
  check_bool "kw0 = causal-b2 shape" true
    (Implies.equivalent (kw 0) Catalog.causal_b2.Catalog.pred)

let test_crowns_incomparable () =
  let crown k = (Catalog.sync_crown k).Catalog.pred in
  check_bool "crown2 !=> crown3" false (Implies.check (crown 2) (crown 3));
  check_bool "crown3 !=> crown2" false (Implies.check (crown 3) (crown 2));
  check_bool "incomparable" true
    (Implies.compare_specs (crown 2) (crown 3) = `Incomparable);
  check_bool "crown !=> causal" false
    (Implies.check (crown 2) Catalog.causal_b2.Catalog.pred)

let test_unsatisfiable_premise () =
  let unsat = Forbidden.make ~nvars:1 [ r 0 @> s 0 ] in
  check_bool "unsat implies anything" true
    (Implies.check unsat (Catalog.sync_crown 2).Catalog.pred);
  check_bool "nothing satisfiable implies unsat" false
    (Implies.check Catalog.causal_b2.Catalog.pred unsat)

let test_equivalent_rewrites () =
  (* adding an implied conjunct does not change the specification *)
  let base = Forbidden.make ~nvars:2 [ s 0 @> s 1; r 1 @> r 0 ] in
  let padded =
    Forbidden.make ~nvars:2 [ s 0 @> s 1; r 1 @> r 0; s 0 @> r 1 ]
  in
  check_bool "padded equivalent" true (Implies.equivalent base padded)

let test_spec_minimize () =
  (* FIFO is implied by causal: a spec containing both minimizes to causal *)
  let s =
    Spec.make ~name:"both"
      [ Catalog.fifo.Catalog.pred; Catalog.causal_b2.Catalog.pred ]
  in
  let m = Spec.minimize s in
  check_bool "one member" true (List.length m.Spec.predicates = 1);
  check_bool "causal kept" true
    (Forbidden.equal (List.hd m.Spec.predicates) Catalog.causal_b2.Catalog.pred);
  (* incomparable members both stay *)
  let tw = Spec.minimize Catalog.two_way_flush in
  check_bool "two-way flush keeps both" true
    (List.length tw.Spec.predicates = 2);
  (* equivalent duplicates collapse to one *)
  let dup =
    Spec.make ~name:"dup"
      [
        Catalog.causal_b2.Catalog.pred;
        (Catalog.k_weaker_causal 0).Catalog.pred;
      ]
  in
  check_bool "duplicates collapse" true
    (List.length (Spec.minimize dup).Spec.predicates = 1)

(* implication is transitive: canonical-model composition *)
let prop_transitive =
  QCheck.Test.make ~name:"implication transitive" ~count:50
    QCheck.(triple (int_bound 2_000) (int_bound 2_000) (int_bound 2_000))
    (fun (s1, s2, s3) ->
      let p i = Mo_workload.Random_pred.predicate ~max_vars:3 ~seed:i () in
      let a = p s1 and b = p s2 and c = p s3 in
      (not (Implies.check a b && Implies.check b c)) || Implies.check a c)

(* minimization preserves the specification on every enumerated run *)
let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimize preserves the spec" ~count:40
    QCheck.(pair (int_bound 2_000) (int_bound 2_000))
    (fun (s1, s2) ->
      let spec =
        Spec.make ~name:"rand"
          [
            Mo_workload.Random_pred.predicate ~max_vars:3 ~seed:s1 ();
            Mo_workload.Random_pred.predicate ~max_vars:3 ~seed:s2 ();
          ]
      in
      let m = Spec.minimize spec in
      List.for_all
        (fun r -> Spec.satisfies spec r = Spec.satisfies m r)
        (Mo_order.Enumerate.abstract_runs ~nprocs:2 ~nmsgs:3 ()))

(* semantic soundness: if check says b => b', then on every enumerated
   concrete run, a b-match implies a b'-match *)
let prop_sound_on_runs =
  QCheck.Test.make ~name:"implication sound on concrete runs" ~count:60
    QCheck.(pair (int_bound 2_000) (int_bound 2_000))
    (fun (s1, s2) ->
      let b = Mo_workload.Random_pred.predicate ~max_vars:3 ~seed:s1 () in
      let b' = Mo_workload.Random_pred.predicate ~max_vars:3 ~seed:s2 () in
      if not (Implies.check b b') then true
      else
        List.for_all
          (fun r ->
            (not (Eval.holds b r)) || Eval.holds b' r)
          (Mo_order.Enumerate.abstract_runs ~nprocs:2 ~nmsgs:3 ()))

let () =
  Alcotest.run "implies"
    [
      ( "unit",
        [
          Alcotest.test_case "reflexive" `Quick test_reflexive;
          Alcotest.test_case "causal forms" `Quick test_causal_forms;
          Alcotest.test_case "guards weaken" `Quick test_guards_weaken;
          Alcotest.test_case "k-weaker ladder" `Quick test_k_weaker_ladder;
          Alcotest.test_case "crowns incomparable" `Quick
            test_crowns_incomparable;
          Alcotest.test_case "unsatisfiable premise" `Quick
            test_unsatisfiable_premise;
          Alcotest.test_case "equivalent rewrites" `Quick
            test_equivalent_rewrites;
          Alcotest.test_case "spec minimize" `Quick test_spec_minimize;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sound_on_runs; prop_transitive; prop_minimize_preserves ] );
    ]
