open Mo_core
open Term

let check_bool = Alcotest.(check bool)

let verdict =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Classify.verdict_to_string v))
    ( = )

let test_catalog_expectations () =
  (* the paper's published classifications, in full — experiment T1/T3 as a
     test *)
  List.iter
    (fun (e : Catalog.entry) ->
      let res = Classify.classify e.pred in
      Alcotest.check verdict e.name e.expected res.verdict)
    Catalog.all

let test_unsatisfiable () =
  let res = Classify.classify (Forbidden.make ~nvars:1 [ r 0 @> s 0 ]) in
  Alcotest.check verdict "contradiction -> tagless"
    (Classify.Implementable Classify.Tagless) res.verdict;
  check_bool "flagged" true (res.simplification = `Unsatisfiable)

let test_empty_predicate () =
  (* B = true forbids everything: not implementable *)
  let res = Classify.classify (Forbidden.make ~nvars:0 []) in
  Alcotest.check verdict "empty" Classify.Not_implementable res.verdict;
  (* a predicate that simplifies to true is likewise not implementable *)
  let r2 = Classify.classify (Forbidden.make ~nvars:1 [ s 0 @> r 0 ]) in
  Alcotest.check verdict "tautology only" Classify.Not_implementable r2.verdict;
  check_bool "dropped tautologies" true (r2.simplification = `Dropped_tautologies)

let test_orders_reported () =
  (* example 1 has a 2-cycle of order 1 and a 4-cycle of order 1 *)
  let res = Classify.classify Catalog.example_1.Catalog.pred in
  Alcotest.(check (list int)) "orders" [ 1 ] res.orders;
  check_bool "certificate present" true (res.best_cycle <> None)

let test_mixed_orders () =
  (* a predicate with both an order-0 cycle and an order-2 crown: the
     order-0 cycle wins (tagless) *)
  let p =
    Forbidden.make ~nvars:4
      [
        s 0 @> s 1;
        s 1 @> s 0;
        (* order-0 two-cycle *)
        s 2 @> r 3;
        s 3 @> r 2 (* order-2 crown *);
      ]
  in
  let res = Classify.classify p in
  Alcotest.check verdict "tagless wins"
    (Classify.Implementable Classify.Tagless) res.verdict;
  Alcotest.(check (list int)) "both orders" [ 0; 2 ] res.orders

let test_necessity_flag () =
  check_bool "unguarded exact" true
    (Classify.classify Catalog.causal_b2.Catalog.pred).necessity_exact;
  check_bool "guarded not exact" false
    (Classify.classify Catalog.fifo.Catalog.pred).necessity_exact

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_explain () =
  let e = Classify.explain Catalog.causal_b2.Catalog.pred in
  check_bool "verdict line" true (contains e "verdict: TAGGED");
  check_bool "cites theorem 3.2" true (contains e "Theorem 3.2");
  check_bool "names beta vertex" true (contains e "beta vertices");
  let e2 = Classify.explain Catalog.second_before_first.Catalog.pred in
  check_bool "not implementable" true (contains e2 "NOT IMPLEMENTABLE");
  check_bool "cites theorem 2" true (contains e2 "Theorem 2");
  let e3 = Classify.explain (Forbidden.make ~nvars:1 [ r 0 @> s 0 ]) in
  check_bool "unsat tagless" true (contains e3 "verdict: TAGLESS");
  let e4 = Classify.explain (Catalog.sync_crown 3).Catalog.pred in
  check_bool "general cites 4.2" true (contains e4 "Theorem 4.2");
  let e5 = Classify.explain Catalog.example_1.Catalog.pred in
  check_bool "contraction shown" true (contains e5 "Lemma 4 contracts");
  let e6 = Classify.explain Catalog.fifo.Catalog.pred in
  check_bool "guard caveat" true (contains e6 "guards present")

let test_class_order () =
  check_bool "tagless <= tagged" true
    (Classify.class_leq Classify.Tagless Classify.Tagged);
  check_bool "tagged <= general" true
    (Classify.class_leq Classify.Tagged Classify.General);
  check_bool "general <= tagged is false" false
    (Classify.class_leq Classify.General Classify.Tagged)

(* The verdict is determined by the minimal cycle order: recompute it
   directly and compare, over random predicates. *)
let prop_verdict_matches_min_order =
  QCheck.Test.make ~name:"verdict = f(min cycle order)" ~count:300
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Mo_workload.Random_pred.predicate ~seed () in
      let res = Classify.classify p in
      match Forbidden.simplify p with
      | Forbidden.Unsatisfiable ->
          res.Classify.verdict = Classify.Implementable Classify.Tagless
      | Forbidden.Simplified q ->
          let orders =
            List.map Beta.order (Cycles.enumerate (Pgraph.of_predicate q))
          in
          let expected =
            match List.sort Int.compare orders with
            | [] -> Classify.Not_implementable
            | 0 :: _ -> Classify.Implementable Classify.Tagless
            | 1 :: _ -> Classify.Implementable Classify.Tagged
            | _ -> Classify.Implementable Classify.General
          in
          res.Classify.verdict = expected)

(* Implementability agrees with the witness-based semantic test (Theorem 2
   in both directions). *)
let prop_implementability_semantic =
  QCheck.Test.make ~name:"implementable ⟺ witness not in X_sync" ~count:300
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Mo_workload.Random_pred.predicate ~seed () in
      let graph_verdict = (Classify.classify p).Classify.verdict in
      let semantic = Witness.classify p in
      (graph_verdict = Classify.Not_implementable)
      = (semantic = Classify.Not_implementable))

(* Tagless boundary agrees with semantics: X_B = X_async iff B is
   unsatisfiable iff no witness run exists. *)
let prop_tagless_semantic =
  QCheck.Test.make ~name:"tagless ⟺ predicate unsatisfiable" ~count:300
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Mo_workload.Random_pred.predicate ~seed () in
      let graph_tagless =
        (Classify.classify p).Classify.verdict
        = Classify.Implementable Classify.Tagless
      in
      let unsat =
        match Witness.build p with
        | Witness.Cyclic | Witness.Conflicting_guards -> true
        | Witness.Witness _ -> false
      in
      graph_tagless = unsat)

(* Cyclic random predicates through all vertices exercise each branch:
   their verdict must be Implementable. *)
let prop_cyclic_always_implementable =
  QCheck.Test.make ~name:"cyclic predicates implementable" ~count:200
    QCheck.(pair (int_range 2 7) (int_bound 10_000))
    (fun (nvars, seed) ->
      let p = Mo_workload.Random_pred.cyclic_predicate ~nvars ~seed in
      (Classify.classify p).Classify.verdict <> Classify.Not_implementable)

let () =
  Alcotest.run "classify"
    [
      ( "unit",
        [
          Alcotest.test_case "catalog table (T1/T3)" `Quick
            test_catalog_expectations;
          Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable;
          Alcotest.test_case "empty predicate" `Quick test_empty_predicate;
          Alcotest.test_case "orders reported" `Quick test_orders_reported;
          Alcotest.test_case "mixed orders" `Quick test_mixed_orders;
          Alcotest.test_case "necessity flag" `Quick test_necessity_flag;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "class order" `Quick test_class_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_verdict_matches_min_order;
            prop_implementability_semantic;
            prop_tagless_semantic;
            prop_cyclic_always_implementable;
          ] );
    ]
