open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)

let sync_spec =
  Spec.make ~name:"sync"
    (List.map (fun k -> (Catalog.sync_crown k).Catalog.pred) [ 2; 3; 4; 5 ])

(* the crucial property, hammered across seeds, shapes and sizes: every
   run is logically synchronous and every message is delivered *)
let test_always_sync_and_live () =
  List.iter
    (fun nprocs ->
      List.iter
        (fun seed ->
          List.iter
            (fun ops ->
              let cfg =
                { (Sim.default_config ~nprocs) with Sim.seed; jitter = 15 }
              in
              match Sim.execute cfg Sync_priority.factory ops with
              | Error e -> Alcotest.fail e
              | Ok o -> (
                  check_bool
                    (Printf.sprintf "live n=%d seed=%d" nprocs seed)
                    true o.Sim.all_delivered;
                  match o.Sim.run with
                  | Some r ->
                      check_bool
                        (Printf.sprintf "sync n=%d seed=%d" nprocs seed)
                        true
                        (Mo_order.Limits.is_sync (Mo_order.Run.to_abstract r))
                  | None -> Alcotest.fail "no run"))
            [
              (Gen.uniform ~nprocs ~nmsgs:30 ~seed).Gen.ops;
              (Gen.bursty ~nprocs ~nmsgs:30 ~seed).Gen.ops;
              (Gen.pairwise_flood ~nprocs ~per_pair:3 ~seed).Gen.ops;
            ])
        (List.init 15 (fun i -> (i * 11) + 1)))
    [ 2; 3; 5 ]

(* symmetric duel: both processes request each other at the same instant —
   the priority rule must break the tie without deadlock or crown *)
let test_symmetric_duel () =
  List.iter
    (fun seed ->
      let ops =
        [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:0 ~src:1 ~dst:0 () ]
      in
      let cfg = { (Sim.default_config ~nprocs:2) with Sim.seed; jitter = 9 } in
      let r = Conformance.check_exn ~spec:sync_spec cfg Sync_priority.factory ops in
      check_bool "live" true r.Conformance.live;
      check_bool "sync" true (r.Conformance.spec_ok = Some true))
    (List.init 25 Fun.id)

(* circular request pattern: 0->1->2->0 simultaneously *)
let test_request_cycle () =
  List.iter
    (fun seed ->
      let ops =
        [
          Sim.op ~at:0 ~src:0 ~dst:1 ();
          Sim.op ~at:0 ~src:1 ~dst:2 ();
          Sim.op ~at:0 ~src:2 ~dst:0 ();
        ]
      in
      let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed; jitter = 9 } in
      let r = Conformance.check_exn ~spec:sync_spec cfg Sync_priority.factory ops in
      check_bool "live" true r.Conformance.live;
      check_bool "sync" true (r.Conformance.spec_ok = Some true))
    (List.init 25 Fun.id)

let test_control_overhead () =
  let cfg = Sim.default_config ~nprocs:4 in
  let n = 20 in
  let ops = (Gen.uniform ~nprocs:4 ~nmsgs:n ~seed:2).Gen.ops in
  match Sim.execute cfg Sync_priority.factory ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (* 3 control messages per user message (req/ok/ack), plus a
         cancel + re-request pair per yield under contention *)
      let c = o.Sim.stats.Sim.control_packets in
      check_bool "at least req/ok/ack" true (c >= 3 * n);
      check_bool "bounded contention overhead" true (c <= 6 * n)

(* decentralization pays: on wide workloads the rendezvous protocol beats
   the global sequencer on makespan *)
let test_faster_than_sequencer () =
  let nprocs = 8 in
  let ops = (Gen.pairwise_flood ~nprocs ~per_pair:2 ~seed:3).Gen.ops in
  let cfg = Sim.default_config ~nprocs in
  let makespan factory =
    match Sim.execute cfg factory ops with
    | Ok o -> o.Sim.stats.Sim.makespan
    | Error e -> Alcotest.fail e
  in
  check_bool "priority rendezvous faster" true
    (makespan Sync_priority.factory < makespan Sync_token.factory)

let () =
  Alcotest.run "sync_priority"
    [
      ( "unit",
        [
          Alcotest.test_case "always sync and live" `Slow
            test_always_sync_and_live;
          Alcotest.test_case "symmetric duel" `Quick test_symmetric_duel;
          Alcotest.test_case "request cycle" `Quick test_request_cycle;
          Alcotest.test_case "control overhead" `Quick test_control_overhead;
          Alcotest.test_case "faster than sequencer" `Quick
            test_faster_than_sequencer;
        ] );
    ]
