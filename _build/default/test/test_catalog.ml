open Mo_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_names_unique () =
  let names = List.map (fun (e : Catalog.entry) -> e.name) Catalog.all in
  check_int "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  check_bool "fifo found" true (Catalog.find "fifo" <> None);
  check_bool "missing" true (Catalog.find "no-such-entry" = None);
  match Catalog.find "sync-crown-3" with
  | Some e -> check_int "arity" 3 (Forbidden.nvars e.Catalog.pred)
  | None -> Alcotest.fail "crown-3 missing"

let test_constructors_validate () =
  Alcotest.check_raises "crown k=1"
    (Invalid_argument "Catalog.sync_crown: k must be >= 2") (fun () ->
      ignore (Catalog.sync_crown 1));
  Alcotest.check_raises "k-weaker negative"
    (Invalid_argument "Catalog.k_weaker_causal: k must be >= 0") (fun () ->
      ignore (Catalog.k_weaker_causal (-1)))

let test_descriptions_and_sources () =
  List.iter
    (fun (e : Catalog.entry) ->
      check_bool (e.name ^ " has description") true (e.description <> "");
      check_bool (e.name ^ " has source") true (e.source <> ""))
    Catalog.all

let test_entry_count () =
  (* the catalog covers all named specifications of the paper: 4 causal
     forms (incl. fifo), 6 async forms, 4 crowns, 3 k-weaker, 4 flush/
     marker, handoff, second-before-first, example-1 *)
  check_bool "at least 24 entries" true (List.length Catalog.all >= 24)

let test_two_way_flush_spec () =
  check_int "two members" 2
    (List.length Catalog.two_way_flush.Spec.predicates);
  check_bool "minimal already" true
    (List.length (Spec.minimize Catalog.two_way_flush).Spec.predicates = 2)

let test_guarded_entries_marked () =
  (* every guarded entry must have necessity_exact = false, and no
     unguarded one *)
  List.iter
    (fun (e : Catalog.entry) ->
      let r = Classify.classify e.pred in
      check_bool
        (e.name ^ " necessity flag consistent")
        (not (Forbidden.is_guarded e.pred))
        r.Classify.necessity_exact)
    Catalog.all

let test_crown_family_contains_sync_spec () =
  (* crowns are pairwise incomparable but all weaker than... each crown's
     spec contains X_sync: the sync witness run satisfies each *)
  List.iter
    (fun k ->
      let e = Catalog.sync_crown k in
      match Witness.build e.Catalog.pred with
      | Witness.Witness w ->
          check_bool
            (Printf.sprintf "crown-%d witness is causal, not sync" k)
            true
            (Mo_order.Limits.is_causal w.Witness.run
            && not (Mo_order.Limits.is_sync w.Witness.run))
      | _ -> Alcotest.fail "crown witness should exist")
    [ 2; 3; 4; 5 ]

let () =
  Alcotest.run "catalog"
    [
      ( "unit",
        [
          Alcotest.test_case "names unique" `Quick test_names_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "constructor validation" `Quick
            test_constructors_validate;
          Alcotest.test_case "descriptions" `Quick
            test_descriptions_and_sources;
          Alcotest.test_case "entry count" `Quick test_entry_count;
          Alcotest.test_case "two-way flush spec" `Quick
            test_two_way_flush_spec;
          Alcotest.test_case "guard flags" `Quick test_guarded_entries_marked;
          Alcotest.test_case "crown witnesses" `Quick
            test_crown_family_contains_sync_spec;
        ] );
    ]
