(* Property: the parser and printer agree over random predicates.

   [Forbidden.to_string] numbers variables by storage index while
   [Parse.predicate] numbers by first appearance and drops variables that
   occur nowhere, so one round trip may rename; the properties below pin
   down everything that must survive it:

   - printing always parses back;
   - the round trip is a fixpoint after one normalization pass (parse ∘
     to_string is idempotent, textually and structurally);
   - renaming/pruning preserves the predicate's meaning, witnessed by the
     classification verdict and the conjunct/guard counts. *)

open Mo_core
open Mo_workload

let parse_exn ~ctx s =
  match Parse.predicate s with
  | Ok p -> p
  | Error e -> raise (Prop.Failed (ctx ^ ": " ^ e ^ " in " ^ s))

let gen_unguarded rng =
  Random_pred.predicate ~seed:(Prop.int_range 0 1_000_000 rng) ()

let gen_guarded rng =
  Random_pred.guarded_predicate ~seed:(Prop.int_range 0 1_000_000 rng) ()

let gen_cyclic rng =
  Random_pred.cyclic_predicate
    ~nvars:(Prop.int_range 2 6 rng)
    ~seed:(Prop.int_range 0 1_000_000 rng)

let roundtrip_props p =
  let s = Forbidden.to_string p in
  let p1 = parse_exn ~ctx:"first parse" s in
  let s1 = Forbidden.to_string p1 in
  let p2 = parse_exn ~ctx:"reparse" s1 in
  let s2 = Forbidden.to_string p2 in
  (* fixpoint after one pass *)
  if not (Forbidden.equal p1 p2) then
    raise (Prop.Failed ("roundtrip not a fixpoint: " ^ s ^ " vs " ^ s1));
  if s1 <> s2 then
    raise (Prop.Failed ("printing not a fixpoint: " ^ s1 ^ " vs " ^ s2));
  (* renaming preserves structure size… *)
  if
    List.length (Forbidden.conjuncts p) <> List.length (Forbidden.conjuncts p1)
    || List.length (Forbidden.guards p) <> List.length (Forbidden.guards p1)
  then raise (Prop.Failed ("conjunct/guard count changed: " ^ s));
  (* …and meaning, up to the unused variables the parser prunes *)
  let v = (Classify.classify p).Classify.verdict
  and v1 = (Classify.classify p1).Classify.verdict in
  if v <> v1 then
    raise
      (Prop.Failed
         (Printf.sprintf "verdict changed by roundtrip: %s (%s) vs %s (%s)"
            (Classify.verdict_to_string v)
            s
            (Classify.verdict_to_string v1)
            s1));
  true

let in_first_appearance_order p =
  (* x0, x1, … appear for the first time in increasing order, and every
     variable of the arity occurs — exactly the normal form the parser
     produces *)
  let seen = ref [] in
  let note v = if not (List.mem v !seen) then seen := v :: !seen in
  List.iter
    (fun { Term.before; after } ->
      note before.Term.var;
      note after.Term.var)
    (Forbidden.conjuncts p);
  List.iter
    (fun g ->
      match g with
      | Term.Same_src (a, b) | Term.Same_dst (a, b) ->
          note a;
          note b
      | Term.Color_is (a, _) -> note a)
    (Forbidden.guards p);
  List.rev !seen = List.init (Forbidden.nvars p) Fun.id

let exact_roundtrip p =
  (* a predicate already in the parser's normal form — variables numbered
     by first appearance, none unused — round-trips to itself, exactly *)
  let s = Forbidden.to_string p in
  let p1 = parse_exn ~ctx:"parse" s in
  if in_first_appearance_order p then
    Forbidden.equal p p1
    || raise (Prop.Failed ("normal form, not exact: " ^ s))
  else true

let pp = Forbidden.to_string

let () =
  Alcotest.run "prop_parse"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "unguarded roundtrip" `Quick
            (Prop.test ~count:300 ~seed:42 ~name:"unguarded roundtrip"
               gen_unguarded ~pp roundtrip_props);
          Alcotest.test_case "guarded roundtrip" `Quick
            (Prop.test ~count:300 ~seed:43 ~name:"guarded roundtrip"
               gen_guarded ~pp roundtrip_props);
          Alcotest.test_case "cyclic roundtrip" `Quick
            (Prop.test ~count:200 ~seed:44 ~name:"cyclic roundtrip" gen_cyclic
               ~pp roundtrip_props);
          Alcotest.test_case "exact when arity preserved" `Quick
            (Prop.test ~count:300 ~seed:45 ~name:"exact roundtrip"
               gen_unguarded ~pp exact_roundtrip);
        ] );
    ]
