open Mo_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok s =
  match Parse.predicate s with
  | Ok p -> p
  | Error e -> Alcotest.fail (s ^ ": " ^ e)

let test_causal () =
  let p = parse_ok "x.s < y.s & y.r < x.r" in
  check_int "arity" 2 (Forbidden.nvars p);
  check_bool "equals catalog causal" true
    (Forbidden.equal p Catalog.causal_b2.Catalog.pred)

let test_variable_numbering () =
  (* variables numbered by first appearance *)
  let p = parse_ok "b.r < a.s" in
  check_int "arity" 2 (Forbidden.nvars p);
  match Forbidden.conjuncts p with
  | [ c ] ->
      check_int "b is 0" 0 c.Term.before.Term.var;
      check_int "a is 1" 1 c.Term.after.Term.var
  | _ -> Alcotest.fail "expected one conjunct"

let test_guards () =
  let p =
    parse_ok "x.s < y.s & y.r < x.r & src(x) = src(y) & dst(x) = dst(y)"
  in
  check_bool "is fifo" true (Forbidden.equal p Catalog.fifo.Catalog.pred);
  let q = parse_ok "x.s < y.s & y.r < x.r & color(y) = 1" in
  check_bool "is global forward flush" true
    (Forbidden.equal q Catalog.global_forward_flush.Catalog.pred)

let test_whitespace () =
  let p = parse_ok "  x.s<y.s&y.r<x.r  " in
  check_bool "dense syntax" true
    (Forbidden.equal p Catalog.causal_b2.Catalog.pred)

let test_empty () =
  let p = parse_ok "" in
  check_int "empty predicate" 0 (Forbidden.nvars p)

let test_errors () =
  List.iter
    (fun s ->
      match Parse.predicate s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ s))
    [
      "x.s <";
      "x.s < y.q";
      "x < y.s";
      "x.s y.s";
      "src(x) = dst(y)";
      "color(x) = red";
      "x.s < y.s &";
      "x.s < y.s | y.r < x.r";
    ]

let test_roundtrip_catalog () =
  (* printing then reparsing every catalog entry preserves the predicate *)
  List.iter
    (fun (e : Catalog.entry) ->
      let printed = Forbidden.to_string e.pred in
      let reparsed = parse_ok printed in
      check_bool (e.name ^ " roundtrip") true (Forbidden.equal e.pred reparsed))
    Catalog.all

let test_exn () =
  Alcotest.check_raises "predicate_exn"
    (Invalid_argument "Parse.predicate: expected 's' or 'r' after '.'")
    (fun () -> ignore (Parse.predicate_exn "x.q < y.s"))

let () =
  Alcotest.run "parse"
    [
      ( "unit",
        [
          Alcotest.test_case "causal" `Quick test_causal;
          Alcotest.test_case "variable numbering" `Quick
            test_variable_numbering;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "whitespace" `Quick test_whitespace;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "catalog roundtrip" `Quick test_roundtrip_catalog;
          Alcotest.test_case "exn" `Quick test_exn;
        ] );
    ]
