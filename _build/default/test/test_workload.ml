open Mo_protocol
open Mo_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_uniform () =
  let w = Gen.uniform ~nprocs:4 ~nmsgs:50 ~seed:1 in
  check_int "count" 50 (List.length w.Gen.ops);
  List.iter
    (fun (o : Sim.op) ->
      (match o.dst with
      | Sim.Unicast d ->
          check_bool "distinct endpoints" true (d <> o.src);
          check_bool "in range" true (d >= 0 && d < 4)
      | Sim.Broadcast -> Alcotest.fail "uniform should be unicast");
      check_bool "src in range" true (o.src >= 0 && o.src < 4))
    w.Gen.ops

let test_determinism () =
  let a = Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:9 in
  let b = Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:9 in
  check_bool "same seed" true (a.Gen.ops = b.Gen.ops);
  let c = Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:10 in
  check_bool "different seed differs" true (a.Gen.ops <> c.Gen.ops)

let test_client_server () =
  let w = Gen.client_server ~nprocs:4 ~nmsgs:40 ~seed:2 in
  List.iteri
    (fun i (o : Sim.op) ->
      match o.dst with
      | Sim.Unicast d ->
          if i mod 2 = 0 then check_int "request to server" 0 d
          else check_int "reply from server" 0 o.src
      | Sim.Broadcast -> Alcotest.fail "unicast expected")
    w.Gen.ops

let test_ring () =
  let w = Gen.ring ~nprocs:3 ~rounds:2 ~seed:0 in
  check_int "count" 6 (List.length w.Gen.ops);
  List.iter
    (fun (o : Sim.op) ->
      match o.dst with
      | Sim.Unicast d -> check_int "successor" ((o.src + 1) mod 3) d
      | Sim.Broadcast -> Alcotest.fail "unicast expected")
    w.Gen.ops

let test_broadcast () =
  let w = Gen.broadcast ~nprocs:3 ~nbcasts:5 ~seed:3 in
  check_int "count" 5 (List.length w.Gen.ops);
  List.iter
    (fun (o : Sim.op) ->
      check_bool "broadcast" true (o.Sim.dst = Sim.Broadcast))
    w.Gen.ops

let test_pairwise_flood () =
  let w = Gen.pairwise_flood ~nprocs:3 ~per_pair:2 ~seed:0 in
  (* 3 * 2 ordered pairs * 2 rounds *)
  check_int "count" 12 (List.length w.Gen.ops)

let test_with_colors () =
  let w =
    Gen.with_colors ~every:3 ~color:1 (Gen.ring ~nprocs:2 ~rounds:3 ~seed:0)
  in
  let colored =
    List.filteri (fun i _ -> (i + 1) mod 3 = 0) w.Gen.ops
  in
  List.iter
    (fun (o : Sim.op) -> check_bool "colored" true (o.Sim.color = Some 1))
    colored;
  check_int "uncolored rest" 4
    (List.length (List.filter (fun (o : Sim.op) -> o.Sim.color = None) w.Gen.ops))

let test_with_flush () =
  let w =
    Gen.with_flush ~every:2 ~kind:Message.Forward
      (Gen.ring ~nprocs:2 ~rounds:2 ~seed:0)
  in
  let kinds = List.map (fun (o : Sim.op) -> o.Sim.flush) w.Gen.ops in
  Alcotest.(check bool)
    "alternating" true
    (kinds
    = Message.[ Ordinary; Forward; Ordinary; Forward ])

let test_random_pred_determinism () =
  let a = Random_pred.predicate ~seed:5 () in
  let b = Random_pred.predicate ~seed:5 () in
  check_bool "same" true (Mo_core.Forbidden.equal a b);
  let batch = Random_pred.batch ~seed:0 10 in
  check_int "batch size" 10 (List.length batch)

let test_guarded_pred () =
  let p = Random_pred.guarded_predicate ~seed:5 () in
  check_bool "has guards" true (Mo_core.Forbidden.is_guarded p)

let test_cyclic_pred () =
  for seed = 0 to 10 do
    let p = Random_pred.cyclic_predicate ~nvars:4 ~seed in
    check_int "conjuncts" 4 (List.length (Mo_core.Forbidden.conjuncts p))
  done

let () =
  Alcotest.run "workload"
    [
      ( "gen",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "client-server" `Quick test_client_server;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "pairwise flood" `Quick test_pairwise_flood;
          Alcotest.test_case "with colors" `Quick test_with_colors;
          Alcotest.test_case "with flush" `Quick test_with_flush;
        ] );
      ( "random_pred",
        [
          Alcotest.test_case "determinism" `Quick test_random_pred_determinism;
          Alcotest.test_case "guarded" `Quick test_guarded_pred;
          Alcotest.test_case "cyclic" `Quick test_cyclic_pred;
        ] );
    ]
