open Mo_core

let check_int = Alcotest.(check int)

let only_cycle pred =
  match Cycles.enumerate (Pgraph.of_predicate pred) with
  | [ c ] -> c
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 cycle, got %d" (List.length cs))

let test_causal_forms_order_1 () =
  List.iter
    (fun (e : Catalog.entry) ->
      check_int (e.name ^ " order") 1 (Beta.order (only_cycle e.pred)))
    [ Catalog.causal_b1; Catalog.causal_b2; Catalog.causal_b3 ]

let test_async_forms_order_0 () =
  List.iter
    (fun (e : Catalog.entry) ->
      check_int (e.name ^ " order") 0 (Beta.order (only_cycle e.pred)))
    Catalog.async_forms

let test_crown_all_beta () =
  List.iter
    (fun k ->
      let c = only_cycle (Catalog.sync_crown k).Catalog.pred in
      check_int
        (Printf.sprintf "crown %d order" k)
        k (Beta.order c);
      Alcotest.(check (list int))
        "all vertices beta"
        (List.sort compare (Cycles.vertices c))
        (List.sort compare (Beta.beta_vertices c)))
    [ 2; 3; 4; 5 ]

let test_example_2_3 () =
  (* the paper's Examples 2-3: in the 4-cycle, only x4 (our x3) is a beta
     vertex *)
  let g = Pgraph.of_predicate Catalog.example_1.Catalog.pred in
  let cycles = Cycles.enumerate g in
  let four_cycle =
    match List.find_opt (fun c -> List.length c = 4) cycles with
    | Some c -> c
    | None -> Alcotest.fail "4-cycle not found"
  in
  Alcotest.(check (list int))
    "only x3 is beta" [ 3 ]
    (Beta.beta_vertices four_cycle);
  check_int "order 1" 1 (Beta.order four_cycle)

let test_k_weaker_order_1 () =
  List.iter
    (fun k ->
      let c = only_cycle (Catalog.k_weaker_causal k).Catalog.pred in
      check_int (Printf.sprintf "k-weaker %d order" k) 1 (Beta.order c);
      Alcotest.(check (list int)) "beta vertex is x0" [ 0 ]
        (Beta.beta_vertices c))
    [ 0; 1; 2; 5 ]

let test_is_beta_junction_check () =
  let g = Pgraph.of_predicate Catalog.causal_b2.Catalog.pred in
  match Pgraph.edges g with
  | [ e1; e2 ] ->
      (* e1: x0.s -> x1.s, e2: x1.r -> x0.r. Vertex x0: incoming e2 (ends
         at r), outgoing e1 (starts at s): beta. *)
      Alcotest.(check bool) "x0 beta" true (Beta.is_beta ~incoming:e2 ~outgoing:e1);
      Alcotest.(check bool) "x1 not beta" false
        (Beta.is_beta ~incoming:e1 ~outgoing:e2);
      Alcotest.check_raises "junction mismatch"
        (Invalid_argument "Beta.is_beta: edges do not share a junction vertex")
        (fun () -> ignore (Beta.is_beta ~incoming:e1 ~outgoing:e1))
  | _ -> Alcotest.fail "two edges expected"

let () =
  Alcotest.run "beta"
    [
      ( "unit",
        [
          Alcotest.test_case "causal forms order 1" `Quick
            test_causal_forms_order_1;
          Alcotest.test_case "async forms order 0" `Quick
            test_async_forms_order_0;
          Alcotest.test_case "crowns all beta" `Quick test_crown_all_beta;
          Alcotest.test_case "examples 2-3" `Quick test_example_2_3;
          Alcotest.test_case "k-weaker order 1" `Quick test_k_weaker_order_1;
          Alcotest.test_case "is_beta junction" `Quick
            test_is_beta_junction_check;
        ] );
    ]
