open Mo_core
open Mo_order
open Term

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* P0 sends x0 then x1 to P1; P1 delivers them out of order *)
let overtaking_run () =
  match
    Run.of_sequences ~nprocs:2
      ~msgs:[| (0, 1); (0, 1) |]
      [|
        [ Event.send 0; Event.send 1 ];
        [ Event.deliver 1; Event.deliver 0 ];
      |]
  with
  | Ok r -> Run.to_abstract r
  | Error e -> Alcotest.fail e

let in_order_run () =
  match
    Run.of_schedule ~nprocs:2
      ~msgs:[| (0, 1); (0, 1) |]
      [ Run.Do_send 0; Run.Do_send 1; Run.Do_deliver 0; Run.Do_deliver 1 ]
  with
  | Ok r -> Run.to_abstract r
  | Error e -> Alcotest.fail e

let test_match_found () =
  let b = Catalog.causal_b2.Catalog.pred in
  (match Eval.find_match b (overtaking_run ()) with
  | Some a -> Alcotest.(check (array int)) "assignment" [| 0; 1 |] a
  | None -> Alcotest.fail "violation not found");
  check_bool "holds" true (Eval.holds b (overtaking_run ()));
  check_bool "does not satisfy" false (Eval.satisfies b (overtaking_run ()))

let test_no_match () =
  let b = Catalog.causal_b2.Catalog.pred in
  check_bool "in-order run satisfies causal" true
    (Eval.satisfies b (in_order_run ()))

let test_guards_respected () =
  (* fifo predicate needs same src and dst: a crossing pattern between
     different channels must not match *)
  let r =
    match
      Run.of_sequences ~nprocs:3
        ~msgs:[| (0, 1); (2, 1) |]
        [|
          [ Event.send 0 ];
          [ Event.deliver 1; Event.deliver 0 ];
          [ Event.send 1 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  (* without s0 < s1 there is no causal relation anyway; build the real
     check on the overtaking run instead: same channel matches fifo *)
  check_bool "different channels: no fifo match" true
    (Eval.satisfies Catalog.fifo.Catalog.pred r);
  check_bool "same channel: fifo match" false
    (Eval.satisfies Catalog.fifo.Catalog.pred (overtaking_run ()))

let test_color_guard () =
  let runs color =
    match
      Run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1) |]
        ~colors:[| None; color |]
        [|
          [ Event.send 0; Event.send 1 ];
          [ Event.deliver 1; Event.deliver 0 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  let b = Catalog.global_forward_flush.Catalog.pred in
  check_bool "red marker overtaken: violation" false
    (Eval.satisfies b (runs (Some 1)));
  check_bool "uncolored overtaking: fine" true (Eval.satisfies b (runs None));
  check_bool "other color: fine" true (Eval.satisfies b (runs (Some 3)))

let test_distinctness () =
  (* the crown must not match by mapping both variables to one message *)
  let single =
    Run.Abstract.create_exn ~nmsgs:1 []
  in
  let crown = (Catalog.sync_crown 2).Catalog.pred in
  check_bool "injective: no match on 1 message" true
    (Eval.satisfies crown single);
  check_bool "non-injective: tautology match" false
    (Eval.satisfies ~distinct:false crown single)

let test_find_matches_limit () =
  (* in-order chain of 4 messages: causal-b2 has no match; async pattern
     s0<s1 matches many pairs *)
  let chain =
    match
      Run.of_schedule ~nprocs:2
        ~msgs:(Array.make 4 (0, 1))
        (List.concat
           (List.init 4 (fun i -> [ Run.Do_send i; Run.Do_deliver i ])))
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  let pairs_pred = Forbidden.make ~nvars:2 [ s 0 @> s 1 ] in
  (* ordered pairs (i, j) with i sent before j: 6 of them *)
  check_int "all matches" 6 (List.length (Eval.find_matches pairs_pred chain));
  check_int "limited" 2
    (List.length (Eval.find_matches ~limit:2 pairs_pred chain))

let test_empty_predicate_matches () =
  check_bool "B = true holds everywhere" true
    (Eval.holds (Forbidden.make ~nvars:0 []) (in_order_run ()))

let test_three_var_chain () =
  (* k-weaker-1 pattern: chain of 3 sends with the last delivery
     overtaking the first *)
  let kw1 = (Catalog.k_weaker_causal 1).Catalog.pred in
  (* P0 sends x0 x1 x2; P1 delivers x2 first: chain match *)
  let bad =
    match
      Run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1); (0, 1) |]
        [|
          [ Event.send 0; Event.send 1; Event.send 2 ];
          [ Event.deliver 2; Event.deliver 0; Event.deliver 1 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  (match Eval.find_match kw1 bad with
  | Some a -> Alcotest.(check (array int)) "chain" [| 0; 1; 2 |] a
  | None -> Alcotest.fail "chain not found");
  (* overtaking by exactly one predecessor does not match the k=1 chain *)
  let ok_run =
    match
      Run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1); (0, 1) |]
        [|
          [ Event.send 0; Event.send 1; Event.send 2 ];
          [ Event.deliver 1; Event.deliver 0; Event.deliver 2 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  check_bool "distance-1 overtake allowed" true (Eval.satisfies kw1 ok_run)

let test_multi_guard_conjunction () =
  (* all guards must hold simultaneously: same channel AND color *)
  let p =
    Forbidden.make ~nvars:2
      ~guards:[ Same_src (0, 1); Same_dst (0, 1); Color_is (1, 3) ]
      [ s 0 @> s 1; r 1 @> r 0 ]
  in
  let mk colors msgs =
    match
      Run.of_sequences ~nprocs:3 ~msgs ~colors
        [|
          [ Event.send 0; Event.send 1 ];
          [ Event.deliver 1; Event.deliver 0 ];
          [];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  (* same channel + right color: match *)
  check_bool "full match" false
    (Eval.satisfies p (mk [| None; Some 3 |] [| (0, 1); (0, 1) |]));
  (* wrong color: no match *)
  check_bool "wrong color" true
    (Eval.satisfies p (mk [| None; Some 4 |] [| (0, 1); (0, 1) |]));
  (* right color, different destination: no match *)
  let cross =
    match
      Run.of_sequences ~nprocs:3
        ~msgs:[| (0, 1); (0, 2) |]
        ~colors:[| None; Some 3 |]
        [|
          [ Event.send 0; Event.send 1 ];
          [ Event.deliver 0 ];
          [ Event.deliver 1 ];
        |]
    with
    | Ok r -> Run.to_abstract r
    | Error e -> Alcotest.fail e
  in
  check_bool "different dst" true (Eval.satisfies p cross)

let test_check_assignment () =
  let b = Catalog.causal_b2.Catalog.pred in
  let r = overtaking_run () in
  check_bool "valid" true (Eval.check_assignment b r [| 0; 1 |]);
  check_bool "invalid" false (Eval.check_assignment b r [| 1; 0 |]);
  Alcotest.check_raises "arity"
    (Invalid_argument "Eval.check_assignment: arity mismatch") (fun () ->
      ignore (Eval.check_assignment b r [| 0 |]))

(* consistency: satisfies b r ⟺ the enumerated matcher finds nothing *)
let prop_eval_agrees_with_bruteforce =
  QCheck.Test.make ~name:"matcher agrees with brute force" ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair (int_bound 1_000)
           (oneofl (Enumerate.abstract_runs ~nprocs:2 ~nmsgs:2 ()))))
    (fun (seed, run) ->
      let p = Mo_workload.Random_pred.predicate ~max_vars:2 ~seed () in
      let m = Forbidden.nvars p in
      let n = Run.Abstract.nmsgs run in
      (* brute force all injective assignments *)
      let rec assignments v acc =
        if v = m then [ List.rev acc ]
        else
          List.concat_map
            (fun msg ->
              if List.mem msg acc then [] else assignments (v + 1) (msg :: acc))
            (List.init n Fun.id)
      in
      let brute =
        List.exists
          (fun a -> Eval.check_assignment p run (Array.of_list a))
          (assignments 0 [])
      in
      Eval.holds p run = brute)

let () =
  Alcotest.run "eval"
    [
      ( "unit",
        [
          Alcotest.test_case "match found" `Quick test_match_found;
          Alcotest.test_case "no match" `Quick test_no_match;
          Alcotest.test_case "guards respected" `Quick test_guards_respected;
          Alcotest.test_case "color guard" `Quick test_color_guard;
          Alcotest.test_case "distinctness" `Quick test_distinctness;
          Alcotest.test_case "find_matches limit" `Quick
            test_find_matches_limit;
          Alcotest.test_case "empty predicate" `Quick
            test_empty_predicate_matches;
          Alcotest.test_case "three-var chain" `Quick test_three_var_chain;
          Alcotest.test_case "multi-guard conjunction" `Quick
            test_multi_guard_conjunction;
          Alcotest.test_case "check_assignment" `Quick test_check_assignment;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eval_agrees_with_bruteforce ] );
    ]
