open Mo_order
open Mo_workload

let check_bool = Alcotest.(check bool)

let prop_roundtrip =
  QCheck.Test.make ~name:"trace roundtrip preserves the run" ~count:120
    QCheck.(int_bound 5_000)
    (fun seed ->
      let r = Random_run.run ~nprocs:4 ~nmsgs:12 ~seed () in
      match Trace_io.parse (Trace_io.to_string r) with
      | Ok r' -> Run.Abstract.equal (Run.to_abstract r) (Run.to_abstract r')
      | Error _ -> false)

let prop_monitor_agrees =
  (* serialized trace fed to the online monitor gives the same verdicts as
     the original run *)
  QCheck.Test.make ~name:"serialized trace keeps monitor verdicts" ~count:80
    QCheck.(int_bound 5_000)
    (fun seed ->
      let r = Random_run.run ~nprocs:3 ~nmsgs:10 ~seed () in
      match Trace_io.parse (Trace_io.to_string r) with
      | Ok r' ->
          let v1, s1 = Online.feed_run r and v2, s2 = Online.feed_run r' in
          List.length v1 = List.length v2 && Result.is_ok s1 = Result.is_ok s2
      | Error _ -> false)

let test_simulator_bridge () =
  (* a protocol trace written by the simulator parses back identically *)
  let open Mo_protocol in
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:4).Gen.ops in
  match Sim.execute (Sim.default_config ~nprocs:3) Fifo.factory ops with
  | Ok { Sim.run = Some r; _ } -> (
      let path = Filename.temp_file "mopc_trace" ".txt" in
      Trace_io.write path r;
      match Trace_io.read path with
      | Ok r' ->
          Sys.remove path;
          check_bool "same run" true
            (Run.Abstract.equal (Run.to_abstract r) (Run.to_abstract r'))
      | Error e ->
          Sys.remove path;
          Alcotest.fail e)
  | Ok _ -> Alcotest.fail "not live"
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  List.iter
    (fun text ->
      match Trace_io.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ text))
    [
      "send 0 0";
      "deliver";
      "send a 0 1";
      "frobnicate 3";
      "deliver 0" (* delivery before any send *);
    ]

let test_comments_and_blanks () =
  let text = "# a comment\n\nsend 0 0 1\n  # indented\ndeliver 0\n" in
  match Trace_io.parse text with
  | Ok r -> check_bool "one message" true (Run.nmsgs r = 1)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "trace_io"
    [
      ( "unit",
        [
          Alcotest.test_case "simulator bridge" `Quick test_simulator_bridge;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_comments_and_blanks;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_monitor_agrees ] );
    ]
