open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_choose_mapping () =
  let name v =
    match Synth.choose v with
    | Ok f -> f.Protocol.proto_name
    | Error _ -> "error"
  in
  check_str "tagless" "tagless"
    (name (Classify.Implementable Classify.Tagless));
  check_str "tagged" "causal-rst"
    (name (Classify.Implementable Classify.Tagged));
  check_str "general" "sync-token"
    (name (Classify.Implementable Classify.General));
  check_bool "not implementable" true
    (Result.is_error (Synth.choose Classify.Not_implementable))

let test_for_predicate () =
  (match Synth.for_predicate Catalog.causal_b2.Catalog.pred with
  | Ok (f, r) ->
      check_str "protocol" "causal-rst" f.Protocol.proto_name;
      check_bool "verdict" true
        (r.Classify.verdict = Classify.Implementable Classify.Tagged)
  | Error e -> Alcotest.fail e);
  match Synth.for_predicate Catalog.second_before_first.Catalog.pred with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unimplementable predicate synthesized"

let test_for_spec () =
  (* two-way flush: max class over members (both tagged) *)
  (match Synth.for_spec Catalog.two_way_flush with
  | Ok f -> check_str "two-way flush" "causal-rst" f.Protocol.proto_name
  | Error e -> Alcotest.fail e);
  (* mixing a tagged and a general member needs the general protocol *)
  let mixed =
    Spec.make ~name:"mixed"
      [ Catalog.causal_b2.Catalog.pred; (Catalog.sync_crown 2).Catalog.pred ]
  in
  match Synth.for_spec mixed with
  | Ok f -> check_str "mixed" "sync-token" f.Protocol.proto_name
  | Error e -> Alcotest.fail e

(* end-to-end: for every implementable catalog entry, synthesize and run;
   the resulting trace must satisfy the entry's spec and be live *)
let test_synthesized_protocols_conform () =
  List.iter
    (fun (e : Catalog.entry) ->
      match Synth.for_predicate e.pred with
      | Error _ ->
          check_bool (e.name ^ " expected unimplementable") true
            (e.expected = Classify.Not_implementable)
      | Ok (factory, _) ->
          let cfg = Sim.default_config ~nprocs:4 in
          let ops = (Gen.uniform ~nprocs:4 ~nmsgs:30 ~seed:13).Gen.ops in
          let spec = Spec.make ~name:e.name [ e.pred ] in
          let r = Conformance.check_exn ~spec cfg factory ops in
          check_bool (e.name ^ " live") true r.Conformance.live;
          check_bool (e.name ^ " safe") true
            (r.Conformance.spec_ok = Some true))
    Catalog.all

(* guarded (single-channel) k-weaker predicate *)
let channel_kweaker k =
  let open Term in
  let n = k + 2 in
  let chain = List.init (n - 1) (fun i -> s i @> s (i + 1)) in
  let guards =
    List.concat
      (List.init (n - 1) (fun i -> [ Same_src (i, i + 1); Same_dst (i, i + 1) ]))
  in
  Forbidden.make ~nvars:n ~guards (chain @ [ r (n - 1) @> r 0 ])

let opt_name p =
  match Synth.optimize p with
  | Ok c -> c.Synth.factory.Protocol.proto_name
  | Error _ -> "error"

(* local backward flush: same channel, color on the earlier message *)
let local_backward_flush =
  let open Term in
  Forbidden.make ~nvars:2
    ~guards:[ Same_src (0, 1); Same_dst (0, 1); Color_is (0, 1) ]
    [ s 0 @> s 1; r 1 @> r 0 ]

let test_optimize_choices () =
  check_str "fifo -> fifo" "fifo" (opt_name Catalog.fifo.Catalog.pred);
  check_str "local fwd flush -> selective forward" "selective-forward-1"
    (opt_name Catalog.local_forward_flush.Catalog.pred);
  check_str "local bwd flush -> selective backward" "selective-backward-1"
    (opt_name local_backward_flush);
  check_str "global bwd flush -> rst (no channel guard)" "causal-rst"
    (opt_name Catalog.backward_flush.Catalog.pred);
  check_str "global flush -> rst" "causal-rst"
    (opt_name Catalog.global_forward_flush.Catalog.pred);
  check_str "causal -> rst" "causal-rst"
    (opt_name Catalog.causal_b2.Catalog.pred);
  check_str "crown -> sync" "sync-token"
    (opt_name (Catalog.sync_crown 3).Catalog.pred);
  check_str "unguarded k-weaker -> rst (global spec)" "causal-rst"
    (opt_name (Catalog.k_weaker_causal 2).Catalog.pred);
  check_str "channel k-weaker 0 -> fifo" "fifo" (opt_name (channel_kweaker 0));
  check_str "channel k-weaker 2 -> window" "k-weaker-window-2"
    (opt_name (channel_kweaker 2));
  check_str "async -> tagless" "tagless"
    (opt_name (List.hd Catalog.async_forms).Catalog.pred);
  check_bool "unimplementable -> error" true
    (Result.is_error (Synth.optimize Catalog.second_before_first.Catalog.pred))

(* the optimized choice is still safe: run it against its own spec *)
let test_optimized_conform () =
  let cases =
    [
      Catalog.fifo.Catalog.pred;
      Catalog.local_forward_flush.Catalog.pred;
      local_backward_flush;
      channel_kweaker 1;
      channel_kweaker 3;
      Catalog.global_forward_flush.Catalog.pred;
    ]
  in
  List.iter
    (fun pred ->
      match Synth.optimize pred with
      | Error e -> Alcotest.fail e
      | Ok c ->
          List.iter
            (fun seed ->
              let cfg =
                { (Sim.default_config ~nprocs:3) with Sim.seed; jitter = 20 }
              in
              let ops =
                (Gen.with_colors ~every:4 ~color:1
                   (Gen.pairwise_flood ~nprocs:3 ~per_pair:8 ~seed))
                  .Gen.ops
              in
              let spec = Spec.make ~name:"opt" [ pred ] in
              let r = Conformance.check_exn ~spec cfg c.Synth.factory ops in
              check_bool
                (c.Synth.factory.Protocol.proto_name ^ " live")
                true r.Conformance.live;
              check_bool
                (c.Synth.factory.Protocol.proto_name ^ " safe")
                true
                (r.Conformance.spec_ok = Some true))
            [ 1; 17; 33 ])
    cases

(* the selective protocols buffer less than FIFO: on a marker workload the
   uncolored traffic never waits, so mean latency is no worse *)
let test_selective_latency_benefit () =
  let ops =
    (Gen.with_colors ~every:6 ~color:1
       (Gen.pairwise_flood ~nprocs:3 ~per_pair:20 ~seed:8))
      .Gen.ops
  in
  let cfg = { (Sim.default_config ~nprocs:3) with Sim.jitter = 25 } in
  let mean factory =
    match Sim.execute cfg factory ops with
    | Ok o -> Sim.mean_latency o.Sim.stats ~nmsgs:(Array.length o.Sim.msgs)
    | Error e -> Alcotest.fail e
  in
  check_bool "selective no slower than fifo" true
    (mean (Flush.selective_forward ~color:1) <= mean Fifo.factory)

(* optimization strictly reduces tag bytes where it fires *)
let test_optimized_cheaper () =
  let pred = Catalog.fifo.Catalog.pred in
  let ops = (Gen.pairwise_flood ~nprocs:4 ~per_pair:5 ~seed:2).Gen.ops in
  let cfg = Sim.default_config ~nprocs:4 in
  let bytes factory =
    match Sim.execute cfg factory ops with
    | Ok o -> o.Sim.stats.Sim.tag_bytes
    | Error e -> Alcotest.fail e
  in
  match (Synth.optimize pred, Synth.for_predicate pred) with
  | Ok c, Ok (default, _) ->
      check_bool "optimized cheaper" true
        (bytes c.Synth.factory < bytes default)
  | _ -> Alcotest.fail "synthesis failed"

let () =
  Alcotest.run "synth"
    [
      ( "unit",
        [
          Alcotest.test_case "choose mapping" `Quick test_choose_mapping;
          Alcotest.test_case "for_predicate" `Quick test_for_predicate;
          Alcotest.test_case "for_spec" `Quick test_for_spec;
          Alcotest.test_case "synthesized protocols conform" `Slow
            test_synthesized_protocols_conform;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "choices" `Quick test_optimize_choices;
          Alcotest.test_case "optimized conform" `Slow test_optimized_conform;
          Alcotest.test_case "optimized cheaper" `Quick test_optimized_cheaper;
          Alcotest.test_case "selective latency" `Quick
            test_selective_latency_benefit;
        ] );
    ]
