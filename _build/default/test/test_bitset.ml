open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let test_empty () =
  let s = Bitset.create 10 in
  check_bool "empty" true (Bitset.is_empty s);
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_bool "mem" false (Bitset.mem s 3);
  check_int "capacity" 10 (Bitset.capacity s)

let test_add_remove () =
  let s = Bitset.create 70 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 69;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 69" true (Bitset.mem s 69);
  check_bool "mem 5" false (Bitset.mem s 5);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 2 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 8 in
  Bitset.add s 4;
  Bitset.add s 4;
  check_int "cardinal" 1 (Bitset.cardinal s)

let test_out_of_range () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of [0,8)")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index 8 out of [0,8)")
    (fun () -> Bitset.add s 8)

let test_union_inter () =
  let a = Bitset.of_list 20 [ 1; 3; 5; 19 ] in
  let b = Bitset.of_list 20 [ 3; 4; 19 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~dst:u b;
  check_ints "union" [ 1; 3; 4; 5; 19 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into ~dst:i b;
  check_ints "inter" [ 3; 19 ] (Bitset.elements i)

let test_subset_equal () =
  let a = Bitset.of_list 16 [ 2; 7 ] in
  let b = Bitset.of_list 16 [ 2; 7; 9 ] in
  check_bool "subset" true (Bitset.subset a b);
  check_bool "not subset" false (Bitset.subset b a);
  check_bool "equal self" true (Bitset.equal a (Bitset.copy a));
  check_bool "not equal" false (Bitset.equal a b)

let test_iter_fold () =
  let a = Bitset.of_list 40 [ 0; 8; 39 ] in
  let sum = Bitset.fold (fun i acc -> i + acc) a 0 in
  check_int "fold sum" 47 sum;
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) a;
  check_ints "iter order" [ 39; 8; 0 ] !seen

let prop_union_commutative =
  QCheck.Test.make ~name:"union commutes" ~count:200
    QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (xs, ys) ->
      let a = Mo_order.Bitset.of_list 64 xs
      and b = Mo_order.Bitset.of_list 64 ys in
      let ab = Mo_order.Bitset.copy a in
      Mo_order.Bitset.union_into ~dst:ab b;
      let ba = Mo_order.Bitset.copy b in
      Mo_order.Bitset.union_into ~dst:ba a;
      Mo_order.Bitset.equal ab ba)

let prop_subset_union =
  QCheck.Test.make ~name:"a subset of a∪b" ~count:200
    QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (xs, ys) ->
      let a = Mo_order.Bitset.of_list 64 xs
      and b = Mo_order.Bitset.of_list 64 ys in
      let u = Mo_order.Bitset.copy a in
      Mo_order.Bitset.union_into ~dst:u b;
      Mo_order.Bitset.subset a u && Mo_order.Bitset.subset b u)

let prop_elements_sorted =
  QCheck.Test.make ~name:"elements sorted and deduplicated" ~count:200
    QCheck.(list (int_bound 127))
    (fun xs ->
      let s = Mo_order.Bitset.of_list 128 xs in
      let e = Mo_order.Bitset.elements s in
      e = List.sort_uniq Int.compare xs)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "union/inter" `Quick test_union_inter;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_union_commutative; prop_subset_union; prop_elements_sorted ]
      );
    ]
