open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)

(* the channel-restricted k-weaker predicate from §6 with FIFO guards *)
let kw_pred k =
  let open Term in
  let n = k + 2 in
  let chain = List.init (n - 1) (fun i -> s i @> s (i + 1)) in
  let guards =
    List.concat
      (List.init (n - 1) (fun i ->
           [ Same_src (i, i + 1); Same_dst (i, i + 1) ]))
  in
  Forbidden.make ~nvars:n ~guards (chain @ [ r (n - 1) @> r 0 ])

let kw_spec k = Spec.make ~name:(Printf.sprintf "kw-%d" k) [ kw_pred k ]

let fifo_spec = Spec.make ~name:"fifo" [ Catalog.fifo.Catalog.pred ]

let flood nprocs seed = (Gen.pairwise_flood ~nprocs ~per_pair:10 ~seed).Gen.ops

let test_window_0_is_fifo () =
  List.iter
    (fun seed ->
      let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed = seed } in
      let r =
        Conformance.check_exn ~spec:fifo_spec cfg (Kweaker.window 0)
          (flood 3 seed)
      in
      check_bool "live" true r.Conformance.live;
      check_bool "fifo" true (r.Conformance.spec_ok = Some true))
    [ 2; 19; 77 ]

let test_window_k_satisfies_kw () =
  List.iter
    (fun k ->
      List.iter
        (fun seed ->
          let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed = seed } in
          let r =
            Conformance.check_exn ~spec:(kw_spec k) cfg (Kweaker.window k)
              (flood 3 seed)
          in
          check_bool "live" true r.Conformance.live;
          check_bool
            (Printf.sprintf "k=%d seed=%d" k seed)
            true
            (r.Conformance.spec_ok = Some true))
        [ 2; 19; 77 ])
    [ 1; 2; 3 ]

let test_window_k_violates_fifo_somewhere () =
  (* with slack, out-of-order delivery must actually happen under some
     seed — otherwise the relaxation is pointless *)
  let found = ref false in
  List.iter
    (fun seed ->
      let cfg =
        {
          (Sim.default_config ~nprocs:3) with
          Sim.seed = seed;
          jitter = 20 (* large reordering window *);
        }
      in
      let r =
        Conformance.check_exn ~spec:fifo_spec cfg (Kweaker.window 3)
          (flood 3 seed)
      in
      if r.Conformance.spec_ok = Some false then found := true)
    (List.init 10 Fun.id);
  check_bool "overtaking observed" true !found

let test_conservative_is_causal () =
  let causal_spec = Spec.make ~name:"causal" [ Catalog.causal_b2.Catalog.pred ] in
  let cfg = Sim.default_config ~nprocs:4 in
  let ops = (Gen.uniform ~nprocs:4 ~nmsgs:40 ~seed:5).Gen.ops in
  let r = Conformance.check_exn ~spec:causal_spec cfg (Kweaker.conservative 2) ops in
  check_bool "live" true r.Conformance.live;
  check_bool "causal (hence k-weaker for all k)" true
    (r.Conformance.spec_ok = Some true)

(* flush semantics, exercised deterministically with a scripted protocol
   run: large jitter so reordering would happen without the protocol *)

let flush_cfg seed =
  { (Sim.default_config ~nprocs:2) with Sim.seed = seed; jitter = 30 }

let mk_flush_ops kinds =
  List.mapi
    (fun i kind -> Sim.op ~flush:kind ~at:i ~src:0 ~dst:1 ())
    kinds

let run_flush seed kinds =
  match Sim.execute (flush_cfg seed) Flush.factory (mk_flush_ops kinds) with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let delivery_order (o : Sim.outcome) =
  match o.run with
  | None -> Alcotest.fail "incomplete flush run"
  | Some r ->
      List.filter_map
        (fun (e : Mo_order.Event.t) ->
          match e.point with
          | Mo_order.Event.R -> Some e.msg
          | Mo_order.Event.S -> None)
        (Mo_order.Run.sequence r 1)

let index_of x l =
  let rec go i = function
    | [] -> Alcotest.fail "missing delivery"
    | y :: rest -> if y = x then i else go (i + 1) rest
  in
  go 0 l

let test_forward_flush_semantics () =
  (* F message (index 3) must be delivered after messages 0,1,2 under every
     seed *)
  List.iter
    (fun seed ->
      let o =
        run_flush seed
          Message.[ Ordinary; Ordinary; Ordinary; Forward; Ordinary ]
      in
      let order = delivery_order o in
      let fpos = index_of 3 order in
      List.iter
        (fun m ->
          check_bool
            (Printf.sprintf "seed %d: %d before F" seed m)
            true
            (index_of m order < fpos))
        [ 0; 1; 2 ])
    (List.init 8 Fun.id)

let test_backward_flush_semantics () =
  (* B message (index 1) must be delivered before messages sent after it *)
  List.iter
    (fun seed ->
      let o =
        run_flush seed
          Message.[ Ordinary; Backward; Ordinary; Ordinary; Ordinary ]
      in
      let order = delivery_order o in
      let bpos = index_of 1 order in
      List.iter
        (fun m ->
          check_bool
            (Printf.sprintf "seed %d: B before %d" seed m)
            true
            (bpos < index_of m order))
        [ 2; 3; 4 ])
    (List.init 8 Fun.id)

let test_two_way_flush_semantics () =
  List.iter
    (fun seed ->
      let o =
        run_flush seed
          Message.[ Ordinary; Ordinary; Two_way; Ordinary; Ordinary ]
      in
      let order = delivery_order o in
      let tpos = index_of 2 order in
      check_bool "before barrier" true
        (index_of 0 order < tpos && index_of 1 order < tpos);
      check_bool "after barrier" true
        (tpos < index_of 3 order && tpos < index_of 4 order))
    (List.init 8 Fun.id)

let test_ordinary_messages_can_reorder () =
  (* sanity: with only ordinary sends and large jitter, some seed reorders *)
  let found = ref false in
  List.iter
    (fun seed ->
      let o = run_flush seed Message.[ Ordinary; Ordinary; Ordinary ] in
      if delivery_order o <> [ 0; 1; 2 ] then found := true)
    (List.init 20 Fun.id);
  check_bool "reordering possible" true !found

let test_two_way_flush_spec () =
  (* the two-way-flush spec (a 2-predicate Spec.t) classifies as tagged and
     is satisfied by the flush protocol when barriers are two-way *)
  Alcotest.(check string)
    "classification" "tagged"
    (Classify.verdict_to_string (Spec.classify Catalog.two_way_flush));
  List.iter
    (fun seed ->
      let ops =
        mk_flush_ops
          Message.[ Ordinary; Ordinary; Two_way; Ordinary; Ordinary ]
      in
      (* color the barrier red (message index 2) to engage the guards *)
      let ops =
        List.mapi
          (fun i (o : Sim.op) ->
            if i = 2 then { o with Sim.color = Some 1 } else o)
          ops
      in
      let r =
        Conformance.check_exn ~spec:Catalog.two_way_flush (flush_cfg seed)
          Flush.factory ops
      in
      check_bool "two-way spec ok" true (r.Conformance.spec_ok = Some true))
    (List.init 8 Fun.id)

let () =
  Alcotest.run "flush_kweaker"
    [
      ( "k-weaker",
        [
          Alcotest.test_case "window 0 = fifo" `Quick test_window_0_is_fifo;
          Alcotest.test_case "window k satisfies spec" `Slow
            test_window_k_satisfies_kw;
          Alcotest.test_case "window k overtakes" `Quick
            test_window_k_violates_fifo_somewhere;
          Alcotest.test_case "conservative causal" `Quick
            test_conservative_is_causal;
        ] );
      ( "flush",
        [
          Alcotest.test_case "forward" `Quick test_forward_flush_semantics;
          Alcotest.test_case "backward" `Quick test_backward_flush_semantics;
          Alcotest.test_case "two-way" `Quick test_two_way_flush_semantics;
          Alcotest.test_case "ordinary reorder" `Quick
            test_ordinary_messages_can_reorder;
          Alcotest.test_case "two-way spec" `Quick test_two_way_flush_spec;
        ] );
    ]
