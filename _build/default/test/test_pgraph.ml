open Mo_core
open Term

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_example1_graph () =
  (* Example 1: 5 variables, 6 edges, including the parallel pair between
     x0 and x3 (the paper's x1 and x4) *)
  let g = Pgraph.of_predicate Catalog.example_1.Catalog.pred in
  check_int "vertices" 5 (Pgraph.nvertices g);
  check_int "edges" 6 (Pgraph.nedges g);
  let edge_pairs =
    List.map (fun (e : Pgraph.edge) -> (e.src, e.dst)) (Pgraph.edges g)
  in
  List.iter
    (fun pair ->
      check_bool
        (Printf.sprintf "edge %d->%d present" (fst pair) (snd pair))
        true
        (List.mem pair edge_pairs))
    [ (0, 1); (1, 2); (2, 3); (3, 0); (3, 4); (0, 3) ]

let test_out_in_edges () =
  let g = Pgraph.of_predicate Catalog.example_1.Catalog.pred in
  check_int "out of x3" 2 (List.length (Pgraph.out_edges g 3));
  check_int "in of x3" 2 (List.length (Pgraph.in_edges g 3));
  check_int "in of x4" 1 (List.length (Pgraph.in_edges g 4));
  check_int "out of x4" 0 (List.length (Pgraph.out_edges g 4))

let test_edge_conjunct () =
  let p = Forbidden.make ~nvars:2 [ s 0 @> r 1 ] in
  let g = Pgraph.of_predicate p in
  match Pgraph.edges g with
  | [ e ] ->
      check_bool "conjunct preserved" true
        (Term.conjunct_equal (Pgraph.edge_conjunct e) (s 0 @> r 1))
  | _ -> Alcotest.fail "one edge expected"

let test_cycles_two_cycle () =
  let g = Pgraph.of_predicate Catalog.causal_b2.Catalog.pred in
  let cycles = Cycles.enumerate g in
  check_int "one cycle" 1 (List.length cycles);
  check_int "length 2" 2 (List.length (List.hd cycles))

let test_cycles_example1 () =
  let g = Pgraph.of_predicate Catalog.example_1.Catalog.pred in
  let cycles = Cycles.enumerate g in
  (* cycles: the 4-cycle x0-x1-x2-x3, and the 2-cycle x0-x3 *)
  check_int "two cycles" 2 (List.length cycles);
  let lengths = List.sort compare (List.map List.length cycles) in
  Alcotest.(check (list int)) "lengths" [ 2; 4 ] lengths

let test_cycles_none () =
  let g = Pgraph.of_predicate Catalog.second_before_first.Catalog.pred in
  check_int "no cycle" 0 (List.length (Cycles.enumerate g));
  check_bool "has_cycle false" false (Cycles.has_cycle g)

let test_parallel_edges_cycles () =
  (* two parallel edges each direction: 2 x 2 = 4 distinct 2-cycles *)
  let p =
    Forbidden.make ~nvars:2 [ s 0 @> s 1; r 0 @> r 1; s 1 @> s 0; r 1 @> r 0 ]
  in
  let g = Pgraph.of_predicate p in
  check_int "four 2-cycles" 4 (List.length (Cycles.enumerate g))

let test_crown_cycles () =
  let g = Pgraph.of_predicate (Catalog.sync_crown 4).Catalog.pred in
  let cycles = Cycles.enumerate g in
  check_int "single 4-cycle" 1 (List.length cycles);
  check_int "length" 4 (List.length (List.hd cycles))

let test_has_cycle_agrees () =
  (* has_cycle must agree with enumerate on random predicates *)
  let preds = Mo_workload.Random_pred.batch ~seed:11 60 in
  List.iter
    (fun p ->
      let g = Pgraph.of_predicate p in
      check_bool "agreement" (Cycles.enumerate g <> []) (Cycles.has_cycle g))
    preds

let test_max_cycles_cap () =
  (* a dense graph: enumeration respects the cap *)
  let conjuncts =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if i <> j then Some (s i @> s j) else None)
          [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  let g = Pgraph.of_predicate (Forbidden.make ~nvars:5 conjuncts) in
  check_int "capped" 3 (List.length (Cycles.enumerate ~max_cycles:3 g))

let test_to_dot () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let g = Pgraph.of_predicate Catalog.causal_b2.Catalog.pred in
  let plain = Pgraph.to_dot g in
  check_bool "digraph" true (contains plain "digraph predicate");
  check_bool "edge labels" true (contains plain "label=\"s>s\"");
  check_bool "no highlight" false (contains plain "color=red");
  let hot = Pgraph.to_dot ~highlight:(Pgraph.edges g) g in
  check_bool "highlighted" true (contains hot "color=red")

let test_vertices_of_cycle () =
  let g = Pgraph.of_predicate (Catalog.sync_crown 3).Catalog.pred in
  match Cycles.enumerate g with
  | [ c ] ->
      Alcotest.(check (list int)) "vertices" [ 0; 1; 2 ] (Cycles.vertices c)
  | _ -> Alcotest.fail "one cycle expected"

let () =
  Alcotest.run "pgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "example 1 graph" `Quick test_example1_graph;
          Alcotest.test_case "out/in edges" `Quick test_out_in_edges;
          Alcotest.test_case "edge conjunct" `Quick test_edge_conjunct;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "two-cycle" `Quick test_cycles_two_cycle;
          Alcotest.test_case "example 1 cycles" `Quick test_cycles_example1;
          Alcotest.test_case "acyclic" `Quick test_cycles_none;
          Alcotest.test_case "parallel edges" `Quick
            test_parallel_edges_cycles;
          Alcotest.test_case "crown" `Quick test_crown_cycles;
          Alcotest.test_case "has_cycle agrees" `Quick test_has_cycle_agrees;
          Alcotest.test_case "max cycles cap" `Quick test_max_cycles_cap;
          Alcotest.test_case "cycle vertices" `Quick test_vertices_of_cycle;
        ] );
    ]
