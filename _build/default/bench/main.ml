(* The experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index), then runs the quantitative
   Bechamel benchmarks. `dune exec bench/main.exe` prints everything;
   pass `--repro-only` or `--perf-only` to run half. *)

let () =
  let args = Array.to_list Sys.argv in
  let repro = not (List.mem "--perf-only" args) in
  let perf = not (List.mem "--repro-only" args) in
  if repro then begin
    Repro.run_all ();
    (* B10 is deterministic seeded output (and writes BENCH_obs.json), so
       it belongs to the reproduction pass, not the timing pass *)
    Perf.obs_summary ();
    (* B11: fault-overhead accounting, also deterministic (writes
       BENCH_reliab.json) *)
    Reliab.summary ()
  end;
  if perf then Perf.run_all ()
