(* B11: the price of reliability — protocol overhead under faults.

   A loss sweep plus a partition scenario, representative protocols
   wrapped in the ack/retransmit recovery layer. The interesting columns
   are the recovery costs (retransmissions, acks, timeouts, recovery
   latency) against the clean-network baseline of B10, and the makespan
   growth as the fault rate climbs. Deterministic seeded output; writes
   BENCH_reliab.json. *)

open Mo_protocol
open Mo_workload

let protocols =
  [
    ("tagless", Tagless.factory);
    ("fifo", Fifo.factory);
    ("causal-rst", Causal_rst.factory);
    ("sync-token", Sync_token.factory);
  ]

let scenarios =
  [
    ("clean", Net.none);
    ("drop50", Net.make ~drop_permille:50 ());
    ("drop100", Net.make ~drop_permille:100 ());
    ("drop200", Net.make ~drop_permille:200 ());
    ( "part+drop",
      Net.make ~drop_permille:100
        ~partitions:
          [ { Net.from_proc = 0; to_proc = 1; start_at = 50; stop_at = 250 } ]
        () );
  ]

let nprocs = 4
let nmsgs = 120
let seed = 42

let summary () =
  Format.printf
    "@.%s@.== B11: protocol overhead under faults (reliable wrapper, seeded, \
     %d procs, %d msgs)@.%s@."
    (String.make 74 '=') nprocs nmsgs (String.make 74 '=');
  let ops = (Gen.uniform ~nprocs ~nmsgs ~seed).Gen.ops in
  let scenario_json =
    List.filter_map
      (fun (sname, faults) ->
        let cfg = { (Sim.default_config ~nprocs) with Sim.seed; faults } in
        Format.printf "@.-- %s (faults: %s)@." sname (Net.to_string faults);
        let rows =
          List.filter_map
            (fun (pname, factory) ->
              let registry = Mo_obs.Metrics.create () in
              let wrapped = Wrap.reliable ~registry factory in
              match Observe.run ~config:cfg ~registry wrapped ops with
              | Error e ->
                  Format.printf "  %s: simulation error: %s@." pname e;
                  None
              | Ok (registry, outcome) ->
                  if not outcome.Sim.all_delivered then
                    Format.printf "  %s: NOT LIVE under %s@." pname sname;
                  Some (Observe.report_row registry ~factory:wrapped))
            protocols
        in
        Format.printf "%a@." Mo_obs.Report.pp_comparison rows;
        if rows = [] then None
        else
          Some
            ( sname,
              Mo_obs.Jsonb.Obj
                [
                  ("faults", Mo_obs.Jsonb.String (Net.to_string faults));
                  ("metrics", Mo_obs.Report.to_json rows);
                ] ))
      scenarios
  in
  let json =
    Mo_obs.Jsonb.Obj
      [
        ( "workload",
          Mo_obs.Jsonb.Obj
            [
              ("name", Mo_obs.Jsonb.String "uniform");
              ("nprocs", Mo_obs.Jsonb.Int nprocs);
              ("nmsgs", Mo_obs.Jsonb.Int nmsgs);
              ("seed", Mo_obs.Jsonb.Int seed);
            ] );
        ("scenarios", Mo_obs.Jsonb.Obj scenario_json);
      ]
  in
  let oc = open_out "BENCH_reliab.json" in
  output_string oc (Mo_obs.Jsonb.to_string_pretty json);
  close_out oc;
  Format.printf "  fault-overhead metrics written to BENCH_reliab.json@."
