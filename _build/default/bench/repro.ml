(* Reproduction of every table and figure of the paper. Each [section]
   below corresponds to one experiment id in DESIGN.md's index and prints
   the paper's artifact next to what this implementation computes. *)

open Mo_core
open Mo_order
open Mo_protocol
open Mo_workload

let section id title =
  Format.printf "@.%s@.== %s: %s@.%s@." (String.make 74 '=') id title
    (String.make 74 '=')

let check label ok =
  Format.printf "  [%s] %s@." (if ok then "ok" else "MISMATCH") label;
  ok

(* ------------------------------------------------------------------ *)
(* T1: the classification table of section 4.3, over the full catalog  *)
(* ------------------------------------------------------------------ *)

let t1 () =
  section "T1" "section 4.3 classification table";
  Format.printf
    "  paper: cycle with 0 beta vertices => trivial protocol; 1 => \
     tagging; >=2 => control messages; no cycle => not implementable@.@.";
  Format.printf "  %-22s %-8s %-18s %-18s@." "specification" "orders"
    "computed" "paper";
  let all_ok = ref true in
  List.iter
    (fun (e : Catalog.entry) ->
      let r = Classify.classify e.pred in
      let ok = r.Classify.verdict = e.expected in
      if not ok then all_ok := false;
      Format.printf "  %-22s %-8s %-18s %-18s %s@." e.name
        (String.concat ","
           (List.map string_of_int r.Classify.orders))
        (Classify.verdict_to_string r.Classify.verdict)
        (Classify.verdict_to_string e.expected)
        (if ok then "" else "  <-- MISMATCH"))
    Catalog.all;
  ignore (check "all catalog rows match the paper" !all_ok)

(* ------------------------------------------------------------------ *)
(* T2: Lemma 3 checked against every small concrete run                *)
(* ------------------------------------------------------------------ *)

let t2 () =
  section "T2" "Lemma 3 by exhaustive enumeration";
  let universe =
    Enumerate.abstract_runs ~nprocs:2 ~nmsgs:2 ()
    @ Enumerate.abstract_runs ~nprocs:3 ~nmsgs:2 ()
    @ Enumerate.abstract_runs ~nprocs:2 ~nmsgs:3 ()
    @ Enumerate.abstract_runs ~nprocs:3 ~nmsgs:3 ()
  in
  let total = List.length universe in
  let causal = List.filter Limits.is_causal universe in
  let sync = List.filter Limits.is_sync universe in
  Format.printf
    "  universe: %d concrete runs (2-3 processes, 2-3 messages)@." total;
  Format.printf "  |X_sync| = %d  |X_co| = %d  |X_async| = %d@."
    (List.length sync) (List.length causal) total;
  ignore
    (check "X_sync subset of X_co subset of X_async"
       (List.for_all Limits.is_causal sync
       && List.length sync < List.length causal
       && List.length causal < total));
  let b1 = Catalog.causal_b1.Catalog.pred
  and b2 = Catalog.causal_b2.Catalog.pred
  and b3 = Catalog.causal_b3.Catalog.pred in
  ignore
    (check "Lemma 3.2: X_B1 = X_B2 = X_B3 on every run"
       (List.for_all
          (fun r ->
            let s1 = Eval.satisfies b1 r
            and s2 = Eval.satisfies b2 r
            and s3 = Eval.satisfies b3 r in
            s1 = s2 && s2 = s3)
          universe));
  ignore
    (check "Lemma 3.2: X_B2 is exactly the causally ordered runs"
       (List.for_all
          (fun r -> Eval.satisfies b2 r = Limits.is_causal r)
          universe));
  ignore
    (check "Lemma 3.3: the order-0 predicates hold in no run"
       (List.for_all
          (fun (e : Catalog.entry) ->
            List.for_all (fun r -> Eval.satisfies e.pred r) universe)
          Catalog.async_forms));
  ignore
    (check
       "Lemma 3.1: crown-2 violations are exactly the non-sync 2-message \
        runs"
       (List.for_all
          (fun r ->
            Run.Abstract.nmsgs r <> 2
            || Eval.satisfies (Catalog.sync_crown 2).Catalog.pred r
               = Limits.is_sync r)
          universe))

(* ------------------------------------------------------------------ *)
(* T3: the section 6 examples                                          *)
(* ------------------------------------------------------------------ *)

let t3 () =
  section "T3" "section 6 example specifications";
  List.iter
    (fun (name, claim) ->
      match Catalog.find name with
      | None -> ignore (check (name ^ " present") false)
      | Some e ->
          let r = Classify.classify e.pred in
          ignore
            (check
               (Printf.sprintf "%-22s -> %s (paper: %s)" name
                  (Classify.verdict_to_string r.Classify.verdict)
                  claim)
               (r.Classify.verdict = e.expected)))
    [
      ("fifo", "tagging sufficient");
      ("k-weaker-causal-2", "tagging sufficient");
      ("local-forward-flush", "tagging sufficient");
      ("global-forward-flush", "tagging sufficient");
      ("mobile-handoff", "control messages required");
      ("second-before-first", "not implementable");
    ]

(* ------------------------------------------------------------------ *)
(* T4: Theorem 1 — each protocol's reachable runs vs its limit set      *)
(* ------------------------------------------------------------------ *)

let t4 () =
  section "T4" "Theorem 1: protocols vs limit sets (sampled)";
  let seeds = List.init 12 (fun i -> (i * 31) + 1) in
  let tally factory =
    let counts = Hashtbl.create 4 in
    List.iter
      (fun seed ->
        let cfg =
          { (Sim.default_config ~nprocs:4) with Sim.seed; jitter = 15 }
        in
        let ops = (Gen.uniform ~nprocs:4 ~nmsgs:30 ~seed).Gen.ops in
        match Sim.execute cfg factory ops with
        | Ok { Sim.run = Some r; _ } ->
            let c = Limits.cls_to_string (Limits.classify (Run.to_abstract r)) in
            Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
        | Ok _ | Error _ -> ())
      seeds;
    counts
  in
  let show name factory expectation =
    let counts = tally factory in
    Format.printf "  %-12s runs per class:" name;
    Hashtbl.iter (fun c n -> Format.printf "  %s: %d" c n) counts;
    Format.printf "@.";
    ignore (check (name ^ " " ^ fst expectation) (snd expectation counts))
  in
  let has counts c = Hashtbl.mem counts c in
  let only counts cs =
    Hashtbl.fold (fun c _ acc -> acc && List.mem c cs) counts true
  in
  show "tagless" Tagless.factory
    ( "reaches beyond X_co (X_P = X_async)",
      fun c -> has c "X_async - X_co" );
  show "fifo" Fifo.factory
    ( "reaches beyond X_co (FIFO does not imply causal)",
      fun c -> has c "X_async - X_co" || has c "X_co - X_sync" );
  show "causal-rst" Causal_rst.factory
    ( "stays within X_co but reaches beyond X_sync (X_P = X_co)",
      fun c -> only c [ "X_co - X_sync"; "X_sync" ] && has c "X_co - X_sync"
    );
  show "sync-token" Sync_token.factory
    ("stays within X_sync (X_P = X_sync)", fun c -> only c [ "X_sync" ])

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — causal past                                          *)
(* ------------------------------------------------------------------ *)

let figure1_run () =
  let module E = Event.Sys in
  let quad m =
    ( [ { E.msg = m; kind = E.Invoke }; { E.msg = m; kind = E.Send } ],
      [ { E.msg = m; kind = E.Receive }; { E.msg = m; kind = E.Deliver } ] )
  in
  let s0, r0 = quad 0 and s1, r1 = quad 1 and s2, r2 = quad 2 in
  match
    Sys_run.of_sequences ~nprocs:3
      ~msgs:[| (0, 1); (1, 2); (0, 1) |]
      [| s0 @ s2; r0 @ s1 @ r2; r1 |]
  with
  | Ok h -> h
  | Error e -> failwith e

let f1 () =
  section "F1" "Figure 1: causal past with respect to a process";
  let h = figure1_run () in
  Format.printf "  the run H:@.%s@." (Diagram.render_sys_run h);
  let g = Sys_run.causal_past h 2 in
  Format.printf "  CausalPast_2(H) — only what happened before P2's events:@.%s"
    (Diagram.render_sys_run g);
  ignore
    (check "x2's events are outside the causal past of P2"
       (not (Sys_run.mem g { Event.Sys.msg = 2; kind = Event.Sys.Send })));
  ignore
    (check "x0 and x1 are inside"
       (Sys_run.mem g { Event.Sys.msg = 0; kind = Event.Sys.Send }
       && Sys_run.mem g { Event.Sys.msg = 1; kind = Event.Sys.Deliver }))

(* ------------------------------------------------------------------ *)
(* F2: Figure 2 — the FIFO protocol delays a delivery                  *)
(* ------------------------------------------------------------------ *)

let f2 () =
  section "F2" "Figure 2: FIFO inhibits the early delivery";
  (* find a seed where the network inverts the arrival order of two
     same-channel messages, then show fifo delivering in order anyway *)
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:1 ~src:0 ~dst:1 () ] in
  let inverted seed =
    let cfg = { (Sim.default_config ~nprocs:2) with Sim.seed; jitter = 20 } in
    match Sim.execute cfg Fifo.factory ops with
    | Ok o ->
        let seq = Sys_run.sequence o.Sim.sys_run 1 in
        let receives =
          List.filter_map
            (fun (e : Event.Sys.t) ->
              if e.kind = Event.Sys.Receive then Some e.msg else None)
            seq
        in
        if receives = [ 1; 0 ] then Some o else None
    | Error _ -> None
  in
  match List.find_map inverted (List.init 60 Fun.id) with
  | None -> ignore (check "found an inverted arrival" false)
  | Some o ->
      Format.printf
        "  x1 arrives before x0 (receive events), but the protocol delays \
         its delivery:@.%s"
        (Diagram.render_sys_run o.Sim.sys_run);
      let seq = Sys_run.sequence o.Sim.sys_run 1 in
      let deliveries =
        List.filter_map
          (fun (e : Event.Sys.t) ->
            if e.kind = Event.Sys.Deliver then Some e.msg else None)
          seq
      in
      ignore (check "deliveries in FIFO order" (deliveries = [ 0; 1 ]))

(* ------------------------------------------------------------------ *)
(* F3: Figure 3 — control messages reveal concurrent events            *)
(* ------------------------------------------------------------------ *)

let f3 () =
  section "F3" "Figure 3: control messages carry concurrent knowledge";
  let ops = [ Sim.op ~at:0 ~src:1 ~dst:2 (); Sim.op ~at:1 ~src:2 ~dst:1 () ] in
  let cfg = Sim.default_config ~nprocs:3 in
  (match Sim.execute cfg Sync_token.factory ops with
  | Ok o ->
      Format.printf
        "  user-view run under the token protocol (control messages \
         removed):@.%s"
        (match o.Sim.run with
        | Some r -> Diagram.render_run r
        | None -> "(incomplete)\n");
      Format.printf
        "  the two messages appear concurrent to the user, yet the \
         coordinator@.  serialized them with %d control messages — exactly \
         the situation of@.  Figure 3: the protocol knows about events that \
         look concurrent once@.  control messages are deleted.@."
        o.Sim.stats.Sim.control_packets;
      ignore (check "control messages were used" (o.Sim.stats.Sim.control_packets > 0));
      ignore
        (check "user view is logically synchronous"
           (match o.Sim.run with
           | Some r -> Limits.is_sync (Run.to_abstract r)
           | None -> false))
  | Error e -> ignore (check ("simulation: " ^ e) false))

(* ------------------------------------------------------------------ *)
(* F4: Figure 4 — system view vs user view                             *)
(* ------------------------------------------------------------------ *)

let f4 () =
  section "F4" "Figure 4: system view vs user's view of a FIFO run";
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:1 ~src:0 ~dst:1 () ] in
  let cfg = { (Sim.default_config ~nprocs:2) with Sim.seed = 6; jitter = 20 } in
  match Sim.execute cfg Fifo.factory ops with
  | Error e -> ignore (check e false)
  | Ok o ->
      Format.printf "  system view (with x.s* and x.r* events):@.%s@."
        (Diagram.render_sys_run o.Sim.sys_run);
      (match o.Sim.run with
      | Some r ->
          Format.printf "  user's view (projection):@.%s@."
            (Diagram.render_run r);
          (* in the system view the early receive may causally precede the
             other delivery; in the user view that edge is gone *)
          ignore
            (check "views computed from the same execution"
               (Run.nmsgs r = 2))
      | None -> ignore (check "user view exists" false))

(* ------------------------------------------------------------------ *)
(* F5: Figure 5 — constructing the system run from a user-view run     *)
(* ------------------------------------------------------------------ *)

let f5 () =
  section "F5" "Figure 5: construction of H from (H, >) with star events";
  (* take a logically synchronous user-view run, insert star events
     immediately before their executions (the construction in the proof of
     Theorem 1), and verify the result lands in X_gn *)
  let msgs = [| (0, 1); (1, 2); (2, 0) |] in
  let sched =
    [
      Run.Do_send 0; Run.Do_deliver 0; Run.Do_send 1; Run.Do_deliver 1;
      Run.Do_send 2; Run.Do_deliver 2;
    ]
  in
  match Run.of_schedule ~nprocs:3 ~msgs sched with
  | Error e -> ignore (check e false)
  | Ok user_run ->
      Format.printf "  the user-view run (logically synchronous):@.%s@."
        (Diagram.render_run user_run);
      let module E = Event.Sys in
      let seq =
        Array.init 3 (fun p ->
            List.concat_map
              (fun (e : Event.t) ->
                match e.point with
                | Event.S ->
                    [
                      { E.msg = e.msg; kind = E.Invoke };
                      { E.msg = e.msg; kind = E.Send };
                    ]
                | Event.R ->
                    [
                      { E.msg = e.msg; kind = E.Receive };
                      { E.msg = e.msg; kind = E.Deliver };
                    ])
              (Run.sequence user_run p))
      in
      (match Sys_run.of_sequences ~nprocs:3 ~msgs seq with
      | Error e -> ignore (check e false)
      | Ok h ->
          Format.printf "  the constructed system run H:@.%s@."
            (Diagram.render_sys_run h);
          ignore
            (check "H is in X_gn (numbering with vertical arrows exists)"
               (Sys_run.Lemma2.in_general_set h));
          ignore
            (check "H is in X_td and X_tl too"
               (Sys_run.Lemma2.in_tagged_set h
               && Sys_run.Lemma2.in_tagless_set h)))

(* ------------------------------------------------------------------ *)
(* E1: Examples 1-3 — the worked predicate                             *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1" "Examples 1-3: predicate graph, cycles, beta vertices";
  let pred = Catalog.example_1.Catalog.pred in
  Format.printf "  B = %a@.@." Forbidden.pp pred;
  let g = Pgraph.of_predicate pred in
  Format.printf "%a@." Pgraph.pp g;
  let cycles = Cycles.enumerate g in
  List.iter
    (fun c ->
      Format.printf "  cycle: %a@.    order %d, beta vertices {%s}@."
        Cycles.pp_cycle c (Beta.order c)
        (String.concat ","
           (List.map (fun v -> "x" ^ string_of_int v) (Beta.beta_vertices c))))
    cycles;
  let four_cycle = List.find (fun c -> List.length c = 4) cycles in
  ignore
    (check "the 4-cycle has exactly one beta vertex (x4 in the paper)"
       (Beta.beta_vertices four_cycle = [ 3 ]));
  Format.printf "@.  Lemma 4 contraction of the 4-cycle:@.  %a@." Weaken.pp
    (Weaken.contract four_cycle);
  let r = Classify.classify pred in
  ignore
    (check "classification: tagging sufficient"
       (r.Classify.verdict = Classify.Implementable Classify.Tagged))

(* ------------------------------------------------------------------ *)
(* F8: the appendix constructions, via the inhibitory interpreter      *)
(* ------------------------------------------------------------------ *)

let f8 () =
  section "F8"
    "Lemma 2 / appendix: inhibitory protocols executed on small universes";
  let msgs = [| (0, 1); (0, 1) |] in
  let report (p : Inhibit.t) =
    let reach = Inhibit.reachable ~nprocs:2 ~msgs p in
    let complete = Inhibit.complete_runs ~nprocs:2 ~msgs p in
    Format.printf
      "  %-12s reachable system runs: %4d   complete user views: %d   live: \
       %b@."
      p.Inhibit.name (List.length reach) (List.length complete)
      (Inhibit.live ~nprocs:2 ~msgs p)
  in
  List.iter report [ Inhibit.enable_all; Inhibit.fifo; Inhibit.causal ];
  ignore
    (check "trivial protocol reaches all 4 user-view orderings"
       (List.length (Inhibit.complete_runs ~nprocs:2 ~msgs Inhibit.enable_all)
       = 4));
  ignore
    (check "fifo protocol reaches exactly the 2 FIFO orderings"
       (List.length (Inhibit.complete_runs ~nprocs:2 ~msgs Inhibit.fifo) = 2));
  ignore
    (check "fifo fails the tagless condition but satisfies the tagged one"
       ((not (Inhibit.respects_tagless_condition ~nprocs:2 ~msgs Inhibit.fifo))
       && Inhibit.respects_tagged_condition ~nprocs:2 ~msgs Inhibit.fifo))

(* ------------------------------------------------------------------ *)
(* B1: protocol overhead table                                         *)
(* ------------------------------------------------------------------ *)

let b1 () =
  section "B1" "protocol overhead (tags, control traffic, latency)";
  let protocols =
    [
      ("tagless", Tagless.factory);
      ("fifo", Fifo.factory);
      ("kw-window-2", Kweaker.window 2);
      ("flush", Flush.factory);
      ("causal-ses", Causal_ses.factory);
      ("causal-rst", Causal_rst.factory);
      ("sync-token", Sync_token.factory);
      ("sync-priority", Sync_priority.factory);
    ]
  in
  List.iter
    (fun (nprocs, nmsgs) ->
      Format.printf "@.  n=%d processes, %d messages, uniform workload@."
        nprocs nmsgs;
      Format.printf "  %-14s %8s %8s %10s %10s %10s %9s@." "protocol" "user"
        "control" "tag B" "ctl B" "mean lat" "makespan";
      List.iter
        (fun (name, factory) ->
          let cfg = Sim.default_config ~nprocs in
          let ops = (Gen.uniform ~nprocs ~nmsgs ~seed:17).Gen.ops in
          match Sim.execute cfg factory ops with
          | Ok o ->
              let s = o.Sim.stats in
              Format.printf "  %-14s %8d %8d %10d %10d %10.1f %9d@." name
                s.Sim.user_packets s.Sim.control_packets s.Sim.tag_bytes
                s.Sim.control_bytes
                (Sim.mean_latency s ~nmsgs)
                s.Sim.makespan
          | Error e -> Format.printf "  %-14s error: %s@." name e)
        protocols)
    [ (2, 100); (4, 100); (8, 100); (4, 1000) ];
  Format.printf
    "@.  expected shape: tag bytes none < seqno < flush < matrix (n^2); \
     only sync-token@.  uses control messages (3 per user message) and pays \
     serialization latency.@."

(* ------------------------------------------------------------------ *)
(* B5: k-weaker latency ablation                                       *)
(* ------------------------------------------------------------------ *)

let b5 () =
  section "B4b" "ablation: delivery latency vs k (k-weaker window)";
  Format.printf "  %-6s %12s %12s@." "k" "mean latency" "max latency";
  List.iter
    (fun k ->
      let cfg =
        { (Sim.default_config ~nprocs:3) with Sim.jitter = 25; seed = 9 }
      in
      let ops = (Gen.pairwise_flood ~nprocs:3 ~per_pair:40 ~seed:9).Gen.ops in
      match Sim.execute cfg (Kweaker.window k) ops with
      | Ok o ->
          Format.printf "  %-6d %12.2f %12d@." k
            (Sim.mean_latency o.Sim.stats ~nmsgs:(Array.length o.Sim.msgs))
            o.Sim.stats.Sim.latency_max
      | Error e -> Format.printf "  %-6d error: %s@." k e)
    [ 0; 1; 2; 4; 8; 16 ];
  Format.printf
    "  expected shape: latency decreases as k grows (weaker ordering = \
     less buffering), converging to the raw network delay.@."

(* ------------------------------------------------------------------ *)
(* B6: the multicast extension — broadcast orderings compared           *)
(* ------------------------------------------------------------------ *)

let b6 () =
  section "B6"
    "multicast extension: broadcast orderings (tagless vs BSS vs \
     total-order)";
  let nbcasts = 40 in
  let seeds = List.init 10 Fun.id in
  Format.printf "  %-12s %8s %8s %10s %10s %8s %8s@." "protocol" "ctl"
    "tag B" "mean lat" "makespan" "causal" "total";
  List.iter
    (fun (name, factory) ->
      let causal_ok = ref 0 and total_ok = ref 0 in
      let ctl = ref 0 and tagb = ref 0 and lat = ref 0.0 and mk = ref 0 in
      List.iter
        (fun seed ->
          let cfg =
            { (Sim.default_config ~nprocs:4) with Sim.seed; jitter = 20 }
          in
          let ops =
            List.map
              (fun (op : Sim.op) -> { op with Sim.at = op.Sim.at / 3 })
              (Gen.broadcast ~nprocs:4 ~nbcasts ~seed).Gen.ops
          in
          match Sim.execute cfg factory ops with
          | Ok o -> (
              ctl := !ctl + o.Sim.stats.Sim.control_packets;
              tagb := !tagb + o.Sim.stats.Sim.tag_bytes;
              lat :=
                !lat
                +. Sim.mean_latency o.Sim.stats
                     ~nmsgs:(Array.length o.Sim.msgs);
              mk := !mk + o.Sim.stats.Sim.makespan;
              match o.Sim.run with
              | Some r ->
                  let g =
                    { Broadcast_props.group_of = (fun id -> o.Sim.groups.(id)) }
                  in
                  if Broadcast_props.causal_broadcast r g then incr causal_ok;
                  if Broadcast_props.total_order r g then incr total_ok
              | None -> ())
          | Error e -> Format.printf "  %s: %s@." name e)
        seeds;
      let n = List.length seeds in
      Format.printf "  %-12s %8d %8d %10.1f %10d %5d/%d %5d/%d@." name
        (!ctl / n) (!tagb / n)
        (!lat /. float_of_int n)
        (!mk / n) !causal_ok n !total_ok n)
    [
      ("tagless", Tagless.factory);
      ("causal-bss", Causal_bss.factory);
      ("total-order", Total_order.factory);
    ];
  Format.printf
    "@.  expected shape: BSS restores causal order with n-entry vector \
     tags and no@.  control traffic; total order additionally needs the \
     sequencer's 2 control@.  messages per broadcast — agreement across \
     processes is not a forbidden@.  predicate over happened-before, so \
     tagging cannot provide it.@."

(* ------------------------------------------------------------------ *)
(* B8: how common is each protocol class? (a phase diagram over random  *)
(* predicates — ours; the paper classifies but never asks how the       *)
(* classes are distributed)                                             *)
(* ------------------------------------------------------------------ *)

let b8 () =
  section "B8"
    "class distribution of random predicates vs conjunct density";
  let samples = 400 in
  Format.printf
    "  %d samples per cell; rows: #variables, columns: class fraction \
     (%%)@.@."
    samples;
  Format.printf "  %-6s %-6s %8s %8s %8s %8s@." "vars" "conj" "none"
    "tagless" "tagged" "general";
  List.iter
    (fun nvars ->
      List.iter
        (fun nconj ->
          let counts = Array.make 4 0 in
          for i = 0 to samples - 1 do
            let seed = (nvars * 1_000_000) + (nconj * 10_000) + i in
            let rng = Random.State.make [| seed |] in
            let point () =
              if Random.State.bool rng then Mo_order.Event.S
              else Mo_order.Event.R
            in
            let endpoint () =
              {
                Mo_core.Term.var = Random.State.int rng nvars;
                point = point ();
              }
            in
            let conjuncts =
              List.init nconj (fun _ ->
                  Mo_core.Term.(endpoint () @> endpoint ()))
            in
            let p = Forbidden.make ~nvars conjuncts in
            let slot =
              match (Classify.classify p).Classify.verdict with
              | Classify.Not_implementable -> 0
              | Classify.Implementable Classify.Tagless -> 1
              | Classify.Implementable Classify.Tagged -> 2
              | Classify.Implementable Classify.General -> 3
            in
            counts.(slot) <- counts.(slot) + 1
          done;
          let pct i =
            100.0 *. float_of_int counts.(i) /. float_of_int samples
          in
          Format.printf "  %-6d %-6d %8.1f %8.1f %8.1f %8.1f@." nvars nconj
            (pct 0) (pct 1) (pct 2) (pct 3))
        [ 1; 2; 3; 4; 6; 8 ])
    [ 2; 3; 4 ];
  Format.printf
    "@.  expected shape: sparse predicates are mostly unimplementable (no \
     cycle);@.  density first buys implementability through order-0/1 \
     cycles, and saturated@.  graphs are almost surely tagless — some \
     order-0 cycle appears. Order >= 2@.  without a cheaper cycle \
     (general) is the rare, structured case.@."

(* ------------------------------------------------------------------ *)
(* B9: the nondeterminism funnel — schedules vs distinct user views     *)
(* ------------------------------------------------------------------ *)

let b9 () =
  section "B9"
    "nondeterminism funnel: schedules explored vs distinct user views";
  let crossing =
    [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:0 ~src:1 ~dst:0 () ]
  in
  let same_channel =
    [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:1 ~src:0 ~dst:1 () ]
  in
  Format.printf "  %-14s %-13s %10s %8s@." "protocol" "workload"
    "schedules" "views";
  List.iter
    (fun (wname, nprocs, ops) ->
      List.iter
        (fun (name, factory) ->
          let count = ref 0 in
          match
            Explore.explore ~max_executions:100_000 ~nprocs factory ops
              ~on_outcome:(fun _ -> incr count)
          with
          | Error e -> Format.printf "  %-14s %-13s error: %s@." name wname e
          | Ok _ -> (
              match Explore.distinct_user_views ~nprocs factory ops with
              | Ok views ->
                  Format.printf "  %-14s %-13s %10d %8d@." name wname !count
                    (List.length views)
              | Error e ->
                  Format.printf "  %-14s %-13s error: %s@." name wname e))
        [
          ("tagless", Tagless.factory);
          ("fifo", Fifo.factory);
          ("causal-rst", Causal_rst.factory);
          ("sync-token", Sync_token.factory);
          ("sync-priority", Sync_priority.factory);
        ])
    [ ("crossing", 2, crossing); ("same-channel", 2, same_channel) ];
  Format.printf
    "@.  the stronger the guarantee, the narrower the funnel: many network@.\
     \  schedules collapse onto few observable runs — that collapse is what@.\
     \  tagging/control messages buy. Control-message protocols explore more@.\
     \  schedules (their own traffic is reordered too) yet still land on the@.\
     \  sync views only.@."

let run_all () =
  t1 ();
  t2 ();
  t3 ();
  t4 ();
  f1 ();
  f2 ();
  f3 ();
  f4 ();
  f5 ();
  e1 ();
  f8 ();
  b1 ();
  b5 ();
  b6 ();
  b8 ();
  b9 ()
