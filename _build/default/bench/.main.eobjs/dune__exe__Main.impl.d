bench/main.ml: Array List Perf Reliab Repro Sys
