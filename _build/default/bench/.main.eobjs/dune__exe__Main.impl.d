bench/main.ml: Array List Perf Repro Sys
