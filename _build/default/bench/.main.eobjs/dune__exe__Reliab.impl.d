bench/reliab.ml: Causal_rst Fifo Format Gen List Mo_obs Mo_protocol Mo_workload Net Observe Sim String Sync_token Tagless Wrap
