bench/main.mli:
