(** Random concrete runs, generated directly as schedules (independent of
    any protocol). Complements {!Mo_order.Enumerate}: enumeration is
    exhaustive but tiny, this scales to hundreds of messages for property
    tests and matcher benchmarks. Deterministic in [seed]. *)

val run :
  ?allow_self:bool ->
  nprocs:int ->
  nmsgs:int ->
  seed:int ->
  unit ->
  Mo_order.Run.t
(** A uniformly random valid schedule: message endpoints chosen at random,
    deliveries interleaved anywhere after their sends. *)

val causal_run :
  nprocs:int -> nmsgs:int -> seed:int -> unit -> Mo_order.Run.t
(** As {!run}, but deliveries are scheduled respecting causal order (each
    delivery only once every message to the same destination whose send
    happened-before has been delivered), so the result lies in [X_co]. *)

val serialized_run :
  nprocs:int -> nmsgs:int -> seed:int -> unit -> Mo_order.Run.t
(** Each message fully delivered before the next send: the result lies in
    [X_sync]. *)
