(** Workload generators for the conformance harness and the benches.

    All generators are deterministic in their [seed]. Times are spread so
    that many messages are concurrently in flight (which is what stresses
    an ordering protocol). *)

type t = { nprocs : int; ops : Mo_protocol.Sim.op list }

val uniform : nprocs:int -> nmsgs:int -> seed:int -> t
(** Independent sends with uniformly random (distinct) endpoints. *)

val client_server : nprocs:int -> nmsgs:int -> seed:int -> t
(** Process 0 is the server: clients send requests to it, the server sends
    replies back (alternating), modelling the paper's motivating RPC-style
    traffic. *)

val ring : nprocs:int -> rounds:int -> seed:int -> t
(** Each process sends to its successor, [rounds] times around. *)

val broadcast : nprocs:int -> nbcasts:int -> seed:int -> t
(** Random processes issue broadcasts (for {!Mo_protocol.Causal_bss}). *)

val bursty : nprocs:int -> nmsgs:int -> seed:int -> t
(** Sends arrive in tight bursts separated by idle gaps — maximal
    reordering pressure under the non-FIFO network. *)

val pairwise_flood : nprocs:int -> per_pair:int -> seed:int -> t
(** Every ordered pair of processes exchanges [per_pair] messages — the
    FIFO/k-weaker stress shape. *)

val with_colors :
  every:int -> color:int -> t -> t
(** Recolor every [every]-th message (1-based) with [color] — turns a plain
    workload into a red-marker / flush workload. *)

val with_flush :
  every:int -> kind:Mo_protocol.Message.flush_kind -> t -> t
(** Mark every [every]-th op with the given flush send type. *)
