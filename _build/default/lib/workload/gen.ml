open Mo_protocol

type t = { nprocs : int; ops : Sim.op list }

let check_nprocs nprocs =
  if nprocs < 2 then invalid_arg "Gen: need at least 2 processes"

let uniform ~nprocs ~nmsgs ~seed =
  check_nprocs nprocs;
  let rng = Random.State.make [| seed |] in
  let ops =
    List.init nmsgs (fun i ->
        let src = Random.State.int rng nprocs in
        let dst =
          (src + 1 + Random.State.int rng (nprocs - 1)) mod nprocs
        in
        Sim.op ~at:(i * 2) ~src ~dst ())
  in
  { nprocs; ops }

let client_server ~nprocs ~nmsgs ~seed =
  check_nprocs nprocs;
  let rng = Random.State.make [| seed |] in
  let ops =
    List.init nmsgs (fun i ->
        let client = 1 + Random.State.int rng (nprocs - 1) in
        if i mod 2 = 0 then Sim.op ~at:(i * 2) ~src:client ~dst:0 ()
        else Sim.op ~at:(i * 2) ~src:0 ~dst:client ())
  in
  { nprocs; ops }

let ring ~nprocs ~rounds ~seed:_ =
  check_nprocs nprocs;
  let ops =
    List.concat
      (List.init rounds (fun round ->
           List.init nprocs (fun p ->
               Sim.op
                 ~at:((round * nprocs) + p)
                 ~src:p
                 ~dst:((p + 1) mod nprocs)
                 ())))
  in
  { nprocs; ops }

let broadcast ~nprocs ~nbcasts ~seed =
  check_nprocs nprocs;
  let rng = Random.State.make [| seed |] in
  let ops =
    List.init nbcasts (fun i ->
        Sim.bcast ~at:(i * 3) ~src:(Random.State.int rng nprocs) ())
  in
  { nprocs; ops }

let bursty ~nprocs ~nmsgs ~seed =
  check_nprocs nprocs;
  let rng = Random.State.make [| seed |] in
  let burst = 8 in
  let ops =
    List.init nmsgs (fun i ->
        let at = (i / burst * 50) + (i mod burst) in
        let src = Random.State.int rng nprocs in
        let dst =
          (src + 1 + Random.State.int rng (nprocs - 1)) mod nprocs
        in
        Sim.op ~at ~src ~dst ())
  in
  { nprocs; ops }

let pairwise_flood ~nprocs ~per_pair ~seed:_ =
  check_nprocs nprocs;
  let ops = ref [] in
  let at = ref 0 in
  for round = 0 to per_pair - 1 do
    ignore round;
    for src = 0 to nprocs - 1 do
      for dst = 0 to nprocs - 1 do
        if src <> dst then begin
          ops := Sim.op ~at:!at ~src ~dst () :: !ops;
          incr at
        end
      done
    done
  done;
  { nprocs; ops = List.rev !ops }

let map_every ~every f t =
  if every <= 0 then invalid_arg "Gen: every must be positive";
  let ops =
    List.mapi
      (fun i (o : Sim.op) -> if (i + 1) mod every = 0 then f o else o)
      t.ops
  in
  { t with ops }

let with_colors ~every ~color t =
  map_every ~every (fun (o : Sim.op) -> { o with Sim.color = Some color }) t

let with_flush ~every ~kind t =
  map_every ~every (fun (o : Sim.op) -> { o with Sim.flush = kind }) t
