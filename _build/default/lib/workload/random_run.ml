open Mo_order

let random_msgs ?(allow_self = false) ~nprocs ~nmsgs rng =
  Array.init nmsgs (fun _ ->
      let src = Random.State.int rng nprocs in
      let dst =
        if allow_self then Random.State.int rng nprocs
        else (src + 1 + Random.State.int rng (nprocs - 1)) mod nprocs
      in
      (src, dst))

let build ~nprocs ~msgs sched =
  match Run.of_schedule ~nprocs ~msgs sched with
  | Ok r -> r
  | Error e -> invalid_arg ("Random_run: internal: " ^ e)

let run ?allow_self ~nprocs ~nmsgs ~seed () =
  if nprocs < 2 then invalid_arg "Random_run.run: need at least 2 processes";
  let rng = Random.State.make [| seed; 101 |] in
  let msgs = random_msgs ?allow_self ~nprocs ~nmsgs rng in
  let unsent = ref (List.init nmsgs Fun.id) in
  let pending = ref [] in
  let sched = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let remove x l = List.filter (fun y -> y <> x) l in
  while !unsent <> [] || !pending <> [] do
    let send_possible = !unsent <> [] and deliver_possible = !pending <> [] in
    if
      send_possible
      && ((not deliver_possible) || Random.State.bool rng)
    then begin
      let m = pick !unsent in
      unsent := remove m !unsent;
      pending := m :: !pending;
      sched := Run.Do_send m :: !sched
    end
    else begin
      let m = pick !pending in
      pending := remove m !pending;
      sched := Run.Do_deliver m :: !sched
    end
  done;
  build ~nprocs ~msgs (List.rev !sched)

let causal_run ~nprocs ~nmsgs ~seed () =
  if nprocs < 2 then
    invalid_arg "Random_run.causal_run: need at least 2 processes";
  let rng = Random.State.make [| seed; 103 |] in
  let msgs = random_msgs ~nprocs ~nmsgs rng in
  let clocks = Array.init nprocs (fun _ -> Vclock.create nprocs) in
  let stamp = Array.make nmsgs None in
  let unsent = ref (List.init nmsgs Fun.id) in
  let pending = ref [] in
  let sched = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let remove x l = List.filter (fun y -> y <> x) l in
  let deliverable m =
    (* no still-pending message to the same destination was sent causally
       before this one (unsent messages cannot precede; delivered ones are
       already fine) *)
    let dst = snd msgs.(m) in
    let sm = Option.get stamp.(m) in
    List.for_all
      (fun m' ->
        m' = m || snd msgs.(m') <> dst
        ||
        match stamp.(m') with
        | Some sm' -> not (Vclock.lt sm' sm)
        | None -> true)
      !pending
  in
  while !unsent <> [] || !pending <> [] do
    let dels = List.filter deliverable !pending in
    let do_send = !unsent <> [] && (dels = [] || Random.State.bool rng) in
    if do_send then begin
      let m = pick !unsent in
      let src = fst msgs.(m) in
      unsent := remove m !unsent;
      clocks.(src) <- Vclock.tick clocks.(src) src;
      stamp.(m) <- Some clocks.(src);
      pending := m :: !pending;
      sched := Run.Do_send m :: !sched
    end
    else begin
      let m = pick dels in
      let dst = snd msgs.(m) in
      pending := remove m !pending;
      clocks.(dst) <-
        Vclock.tick (Vclock.merge clocks.(dst) (Option.get stamp.(m))) dst;
      sched := Run.Do_deliver m :: !sched
    end
  done;
  build ~nprocs ~msgs (List.rev !sched)

let serialized_run ~nprocs ~nmsgs ~seed () =
  if nprocs < 2 then
    invalid_arg "Random_run.serialized_run: need at least 2 processes";
  let rng = Random.State.make [| seed; 107 |] in
  let msgs = random_msgs ~nprocs ~nmsgs rng in
  let order =
    (* random permutation of message indices *)
    let a = Array.init nmsgs Fun.id in
    for i = nmsgs - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  let sched =
    Array.to_list order
    |> List.concat_map (fun m -> [ Run.Do_send m; Run.Do_deliver m ])
  in
  build ~nprocs ~msgs sched
