open Mo_core

let point rng =
  if Random.State.bool rng then Mo_order.Event.S else Mo_order.Event.R

let endpoint rng nvars =
  { Term.var = Random.State.int rng nvars; point = point rng }

let predicate ?(max_vars = 5) ?(max_conjuncts = 7) ~seed () =
  let rng = Random.State.make [| seed |] in
  let nvars = 2 + Random.State.int rng (max 1 (max_vars - 1)) in
  let ncon = 1 + Random.State.int rng max_conjuncts in
  let conjuncts =
    List.init ncon (fun _ ->
        Term.(endpoint rng nvars @> endpoint rng nvars))
  in
  Forbidden.make ~nvars conjuncts

let guarded_predicate ?(max_vars = 5) ?(max_conjuncts = 7) ~seed () =
  let rng = Random.State.make [| seed; 17 |] in
  let base = predicate ~max_vars ~max_conjuncts ~seed () in
  let nvars = Forbidden.nvars base in
  let nguards = 1 + Random.State.int rng 2 in
  let guard _ =
    let x = Random.State.int rng nvars
    and y = Random.State.int rng nvars in
    match Random.State.int rng 3 with
    | 0 -> Term.Same_src (x, y)
    | 1 -> Term.Same_dst (x, y)
    | _ -> Term.Color_is (x, Random.State.int rng 3)
  in
  Forbidden.make ~nvars
    ~guards:(List.init nguards guard)
    (Forbidden.conjuncts base)

let cyclic_predicate ~nvars ~seed =
  if nvars < 2 then invalid_arg "Random_pred.cyclic_predicate: nvars >= 2";
  let rng = Random.State.make [| seed; 23 |] in
  let conjuncts =
    List.init nvars (fun i ->
        Term.(
          { var = i; point = point rng }
          @> { var = (i + 1) mod nvars; point = point rng }))
  in
  Forbidden.make ~nvars conjuncts

let batch ?max_vars ?max_conjuncts ~seed n =
  List.init n (fun i -> predicate ?max_vars ?max_conjuncts ~seed:(seed + i) ())
