(** Reading and writing run traces in the `mopc monitor` text format:

    {v
      send <msg> <src> <dst>
      deliver <msg>
    v}

    one event per line, ['#'] comments. Writing a recorded run gives a
    file the CLI monitor (and any external tool) can consume; parsing
    gives back a {!Mo_order.Run.t}. The serialized order is a linear
    extension of the run (per-process order and send-before-delivery are
    preserved), so feeding it to the online monitor reproduces the run's
    verdicts. *)

val to_string : Mo_order.Run.t -> string

val write : string -> Mo_order.Run.t -> unit
(** [write path run]. *)

val parse : string -> (Mo_order.Run.t, string) result
(** Parse trace text (not a path). *)

val read : string -> (Mo_order.Run.t, string) result
(** [read path]. *)
