(** Random forbidden-predicate generation, for property tests and the
    classifier-scaling benches. Deterministic in [seed]. *)

val predicate :
  ?max_vars:int -> ?max_conjuncts:int -> seed:int -> unit -> Mo_core.Forbidden.t
(** Uniform random endpoints over a random arity ≥ 2; no guards. *)

val guarded_predicate :
  ?max_vars:int -> ?max_conjuncts:int -> seed:int -> unit -> Mo_core.Forbidden.t
(** As {!predicate}, plus a few random attribute guards. *)

val cyclic_predicate : nvars:int -> seed:int -> Mo_core.Forbidden.t
(** A predicate whose graph is one random cycle through all [nvars]
    variables with random endpoint labels — always implementable, with a
    random order; used to exercise every classifier branch. *)

val batch :
  ?max_vars:int -> ?max_conjuncts:int -> seed:int -> int ->
  Mo_core.Forbidden.t list
