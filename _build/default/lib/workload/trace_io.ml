open Mo_order

let to_string run =
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : Event.t) ->
      match e.point with
      | Event.S ->
          Buffer.add_string buf
            (Printf.sprintf "send %d %d %d\n" e.msg (Run.msg_src run e.msg)
               (Run.msg_dst run e.msg))
      | Event.R -> Buffer.add_string buf (Printf.sprintf "deliver %d\n" e.msg))
    (Run.linearize run);
  Buffer.contents buf

let write path run =
  let oc = open_out path in
  output_string oc (to_string run);
  close_out oc

let parse text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let err = ref None in
  List.iteri
    (fun lineno line ->
      if !err = None then
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> ()
        | [ "send"; m; src; dst ] -> (
            match
              (int_of_string_opt m, int_of_string_opt src, int_of_string_opt dst)
            with
            | Some m, Some src, Some dst -> entries := `Send (m, src, dst) :: !entries
            | _ -> err := Some (Printf.sprintf "line %d: bad send" (lineno + 1)))
        | [ "deliver"; m ] -> (
            match int_of_string_opt m with
            | Some m -> entries := `Deliver m :: !entries
            | None -> err := Some (Printf.sprintf "line %d: bad deliver" (lineno + 1)))
        | _ -> err := Some (Printf.sprintf "line %d: unrecognized entry" (lineno + 1)))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      let entries = List.rev !entries in
      let sends =
        List.filter_map
          (function `Send (m, s, d) -> Some (m, (s, d)) | `Deliver _ -> None)
          entries
      in
      let nmsgs = List.fold_left (fun acc (m, _) -> max acc (m + 1)) 0 sends in
      let msgs = Array.make nmsgs (0, 0) in
      List.iter (fun (m, sd) -> msgs.(m) <- sd) sends;
      let nprocs =
        Array.fold_left (fun acc (s, d) -> max acc (max s d + 1)) 1 msgs
      in
      let sched =
        List.map
          (function
            | `Send (m, _, _) -> Run.Do_send m
            | `Deliver m -> Run.Do_deliver m)
          entries
      in
      Run.of_schedule ~nprocs ~msgs sched

let read path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text
