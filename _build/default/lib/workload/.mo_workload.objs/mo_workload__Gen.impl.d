lib/workload/gen.ml: List Mo_protocol Random Sim
