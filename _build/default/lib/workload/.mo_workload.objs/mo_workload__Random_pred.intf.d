lib/workload/random_pred.mli: Mo_core
