lib/workload/random_run.ml: Array Fun List Mo_order Option Random Run Vclock
