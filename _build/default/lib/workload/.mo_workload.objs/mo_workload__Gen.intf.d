lib/workload/gen.mli: Mo_protocol
