lib/workload/random_pred.ml: Forbidden List Mo_core Mo_order Random Term
