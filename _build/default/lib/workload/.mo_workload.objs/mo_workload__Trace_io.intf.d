lib/workload/trace_io.mli: Mo_order
