lib/workload/trace_io.ml: Array Buffer Event List Mo_order Printf Run String
