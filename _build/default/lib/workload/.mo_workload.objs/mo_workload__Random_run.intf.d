lib/workload/random_run.mli: Mo_order
