open Term

type entry = {
  name : string;
  description : string;
  pred : Forbidden.t;
  expected : Classify.verdict;
  source : string;
}

let tagless = Classify.Implementable Classify.Tagless
let tagged = Classify.Implementable Classify.Tagged
let general = Classify.Implementable Classify.General

let fifo =
  {
    name = "fifo";
    description =
      "messages between the same pair of processes are delivered in the \
       order sent";
    pred =
      Forbidden.make ~nvars:2
        ~guards:[ Same_src (0, 1); Same_dst (0, 1) ]
        [ s 0 @> s 1; r 1 @> r 0 ];
    expected = tagged;
    source = "section 6";
  }

let causal_b1 =
  {
    name = "causal-b1";
    description = "causal ordering, form B1 of Lemma 3.2";
    pred = Forbidden.make ~nvars:2 [ s 0 @> r 1; r 1 @> r 0 ];
    expected = tagged;
    source = "lemma 3.2(a)";
  }

let causal_b2 =
  {
    name = "causal-b2";
    description = "causal ordering, defining form (x.s > y.s and y.r > x.r)";
    pred = Forbidden.make ~nvars:2 [ s 0 @> s 1; r 1 @> r 0 ];
    expected = tagged;
    source = "lemma 3.2(b)";
  }

let causal_b3 =
  {
    name = "causal-b3";
    description = "causal ordering, form B3 of Lemma 3.2";
    pred = Forbidden.make ~nvars:2 [ s 0 @> s 1; s 1 @> r 0 ];
    expected = tagged;
    source = "lemma 3.2(c)";
  }

let async_form name description conjuncts =
  {
    name;
    description;
    pred = Forbidden.make ~nvars:2 conjuncts;
    expected = tagless;
    source = "lemma 3.3";
  }

let async_forms =
  [
    async_form "async-ss-ss" "send cycle: x.s > y.s and y.s > x.s"
      [ s 0 @> s 1; s 1 @> s 0 ];
    async_form "async-ss-rs" "x.s > y.s and y.r > x.s"
      [ s 0 @> s 1; r 1 @> s 0 ];
    async_form "async-sr-rs" "x.s > y.r and y.r > x.s"
      [ s 0 @> r 1; r 1 @> s 0 ];
    async_form "async-rs-sr" "x.r > y.s and y.s > x.r"
      [ r 0 @> s 1; s 1 @> r 0 ];
    async_form "async-rr-rs" "x.r > y.r and y.r > x.s"
      [ r 0 @> r 1; r 1 @> s 0 ];
    async_form "async-rr-rr" "delivery cycle: x.r > y.r and y.r > x.r"
      [ r 0 @> r 1; r 1 @> r 0 ];
  ]

let sync_crown k =
  if k < 2 then invalid_arg "Catalog.sync_crown: k must be >= 2";
  let conjuncts = List.init k (fun i -> s i @> r ((i + 1) mod k)) in
  {
    name = Printf.sprintf "sync-crown-%d" k;
    description =
      Printf.sprintf
        "logically synchronous ordering, crown of length %d (all %d \
         vertices are beta)"
        k k;
    pred = Forbidden.make ~nvars:k conjuncts;
    expected = general;
    source = "lemma 3.1";
  }

let k_weaker_causal k =
  if k < 0 then invalid_arg "Catalog.k_weaker_causal: k must be >= 0";
  (* chain of k+1 send-precedences over k+2 messages, with the last
     delivery overtaking the first (section 6) *)
  let n = k + 2 in
  let chain = List.init (n - 1) (fun i -> s i @> s (i + 1)) in
  {
    name = Printf.sprintf "k-weaker-causal-%d" k;
    description =
      Printf.sprintf "messages out of order by at most %d messages" k;
    pred = Forbidden.make ~nvars:n (chain @ [ r (n - 1) @> r 0 ]);
    expected = tagged;
    source = "section 6";
  }

let channel_k_weaker k =
  if k < 0 then invalid_arg "Catalog.channel_k_weaker: k must be >= 0";
  let n = k + 2 in
  let chain = List.init (n - 1) (fun i -> s i @> s (i + 1)) in
  let guards =
    List.concat
      (List.init (n - 1) (fun i -> [ Same_src (i, i + 1); Same_dst (i, i + 1) ]))
  in
  {
    name = Printf.sprintf "channel-k-weaker-%d" k;
    description =
      Printf.sprintf
        "per-channel bounded overtaking: a message may overtake at most %d \
         predecessors on its channel"
        k;
    pred = Forbidden.make ~nvars:n ~guards (chain @ [ r (n - 1) @> r 0 ]);
    expected = tagged;
    source = "section 6 (channel-restricted variant)";
  }

let red = 1

let local_forward_flush =
  {
    name = "local-forward-flush";
    description =
      "messages sent before a red message reach the shared destination \
       before it, per channel";
    pred =
      Forbidden.make ~nvars:2
        ~guards:[ Same_src (0, 1); Same_dst (0, 1); Color_is (1, red) ]
        [ s 0 @> s 1; r 1 @> r 0 ];
    expected = tagged;
    source = "section 6";
  }

let global_forward_flush =
  {
    name = "global-forward-flush";
    description = "all messages sent before a red message arrive before it";
    pred =
      Forbidden.make ~nvars:2
        ~guards:[ Color_is (1, red) ]
        [ s 0 @> s 1; r 1 @> r 0 ];
    expected = tagged;
    source = "section 6";
  }

let backward_flush =
  {
    name = "backward-flush";
    description = "no message sent after a red message overtakes it";
    pred =
      Forbidden.make ~nvars:2
        ~guards:[ Color_is (0, red) ]
        [ s 0 @> s 1; r 1 @> r 0 ];
    expected = tagged;
    source = "flush channels [1, 12]";
  }

let two_way_flush =
  Spec.make ~name:"two-way-flush"
    [ global_forward_flush.pred; backward_flush.pred ]

let handoff_color = 7

let mobile_handoff =
  {
    name = "mobile-handoff";
    description =
      "no message straddles a handoff message: every message is wholly \
       before or wholly after it";
    pred =
      Forbidden.make ~nvars:2
        ~guards:[ Color_is (1, handoff_color) ]
        [ s 0 @> r 1; s 1 @> r 0 ];
    expected = general;
    source = "section 6 (mobile computations)";
  }

let second_before_first =
  {
    name = "second-before-first";
    description =
      "deliver the second message before the first: forbids in-order \
       delivery, which would require knowing the future";
    pred = Forbidden.make ~nvars:2 [ s 0 @> s 1; r 0 @> r 1 ];
    expected = Classify.Not_implementable;
    source = "section 6";
  }

let example_1 =
  {
    name = "example-1";
    description = "the worked predicate of Examples 1-3";
    pred =
      Forbidden.make ~nvars:5
        [
          r 0 @> s 1;
          (* x1.r > x2.s *)
          s 1 @> s 2;
          (* x2.s > x3.s *)
          r 2 @> r 3;
          (* x3.r > x4.r *)
          s 3 @> s 0;
          (* x4.s > x1.s : closes the 4-cycle of Example 2 *)
          s 3 @> r 4;
          (* x4.s > x5.r *)
          s 0 @> r 3;
          (* x1.s > x4.r *)
        ];
    expected = tagged;
    source = "examples 1-3 (the 4-cycle has exactly one beta vertex, x4)";
  }

let red_marker =
  {
    name = "red-marker";
    description = "no message overtakes the red marker message";
    pred =
      Forbidden.make ~nvars:2
        ~guards:[ Color_is (1, red) ]
        [ s 0 @> s 1; r 1 @> r 0 ];
    expected = tagged;
    source = "section 4.1";
  }

let all =
  let crowns = List.map sync_crown [ 2; 3; 4; 5 ] in
  let weaker =
    List.map k_weaker_causal [ 1; 2; 3 ] @ List.map channel_k_weaker [ 1; 2 ]
  in
  let base =
    [ fifo; causal_b1; causal_b2; causal_b3 ]
    @ async_forms @ crowns @ weaker
    @ [
        local_forward_flush;
        global_forward_flush;
        backward_flush;
        mobile_handoff;
        second_before_first;
        example_1;
        red_marker;
      ]
  in
  (* deduplicate by name, keeping first occurrences *)
  List.fold_left
    (fun acc e ->
      if List.exists (fun e' -> e'.name = e.name) acc then acc else e :: acc)
    [] base
  |> List.rev

let find name = List.find_opt (fun e -> e.name = name) all
