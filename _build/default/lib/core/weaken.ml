open Mo_order

type step = {
  removed : int;
  incoming : Term.conjunct;
  outgoing : Term.conjunct;
  replaced_by : Term.conjunct;
}

type t = {
  original_order : int;
  final : Term.conjunct list;
  final_vertices : int list;
  trace : step list;
  form : [ `Two_vertex | `All_beta | `Self_loop ];
}

(* We manipulate cycles as conjunct arrays: conjunct i runs from vertex i to
   vertex i+1 (mod k); vertex i sits between conjuncts i-1 and i. *)

let conjunct_of_edge (e : Pgraph.edge) =
  Term.(
    { var = e.src; point = e.src_point }
    @> { var = e.dst; point = e.dst_point })

let vertex_is_beta (incoming : Term.conjunct) (outgoing : Term.conjunct) =
  (match incoming.after.point with Event.R -> true | Event.S -> false)
  && match outgoing.before.point with Event.S -> true | Event.R -> false

let cycle_order conjuncts =
  let arr = Array.of_list conjuncts in
  let k = Array.length arr in
  let n = ref 0 in
  for i = 0 to k - 1 do
    if vertex_is_beta arr.((i + k - 1) mod k) arr.(i) then incr n
  done;
  !n

let contract (cycle : Cycles.cycle) =
  if cycle = [] then invalid_arg "Weaken.contract: empty cycle";
  let conjuncts = List.map conjunct_of_edge cycle in
  let original_order = cycle_order conjuncts in
  let rec go conjuncts trace =
    let arr = Array.of_list conjuncts in
    let k = Array.length arr in
    if k = 1 then (conjuncts, trace, `Self_loop)
    else if k = 2 then (conjuncts, trace, `Two_vertex)
    else
      (* find a non-β vertex to eliminate *)
      let candidate = ref None in
      for i = k - 1 downto 0 do
        let incoming = arr.((i + k - 1) mod k) and outgoing = arr.(i) in
        if not (vertex_is_beta incoming outgoing) then candidate := Some i
      done;
      match !candidate with
      | None -> (conjuncts, trace, `All_beta)
      | Some i ->
          let incoming = arr.((i + k - 1) mod k) and outgoing = arr.(i) in
          (* x.p ▷ y.q  and  y.q' ▷ z.q''  imply  x.p ▷ z.q'' for every
             non-β junction, using y.s ▷ y.r when q = s and q' = r *)
          let replaced_by = Term.(incoming.before @> outgoing.after) in
          let step =
            { removed = outgoing.before.var; incoming; outgoing; replaced_by }
          in
          let next = ref [] in
          for j = k - 1 downto 0 do
            if j = i then () (* outgoing dropped *)
            else if j = (i + k - 1) mod k then
              next := replaced_by :: !next (* incoming replaced *)
            else next := arr.(j) :: !next
          done;
          go !next (step :: trace)
  in
  let final, rev_trace, form = go conjuncts [] in
  let final_vertices =
    List.map (fun (c : Term.conjunct) -> c.before.var) final
  in
  { original_order; final; final_vertices; trace = List.rev rev_trace; form }

let to_predicate t =
  let vars = List.sort_uniq Int.compare t.final_vertices in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vars;
  let rn (e : Term.endpoint) =
    { e with Term.var = Hashtbl.find index e.var }
  in
  let conjuncts =
    List.map
      (fun (c : Term.conjunct) -> Term.(rn c.before @> rn c.after))
      t.final
  in
  Forbidden.make ~nvars:(List.length vars) conjuncts

let pp ppf t =
  Format.fprintf ppf "@[<v>order %d cycle contracts to: @[<h>%a@]"
    t.original_order
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
       Term.pp_conjunct)
    t.final;
  List.iter
    (fun s ->
      Format.fprintf ppf "@   removed x%d: (%a) ∧ (%a) ⟹ (%a)" s.removed
        Term.pp_conjunct s.incoming Term.pp_conjunct s.outgoing
        Term.pp_conjunct s.replaced_by)
    t.trace;
  Format.fprintf ppf "@]"
