(** Forbidden predicates (Definition 4.1).

    A predicate [B ≡ ∃ x_1 … x_m ∈ M : ⋀ (x_j.p ▷ x_k.q)] denotes the
    specification [X_B = { (H,▷) : ¬B(x̄) for all instantiations }] — the
    runs in which the forbidden pattern never occurs. Guards restrict which
    instantiations are considered. *)

type t = private {
  nvars : int;
  conjuncts : Term.conjunct list;
  guards : Term.guard list;
}

val make :
  nvars:int -> ?guards:Term.guard list -> Term.conjunct list -> t
(** @raise Invalid_argument if a conjunct or guard mentions a variable
    outside [0 .. nvars-1]. Duplicate conjuncts are removed. *)

val nvars : t -> int

val conjuncts : t -> Term.conjunct list

val guards : t -> Term.guard list

val is_guarded : t -> bool

type simplified =
  | Simplified of t
      (** Tautological same-variable conjuncts ([x.s ▷ x.r], true in every
          complete run) removed; the result denotes the same
          specification. *)
  | Unsatisfiable
      (** Some same-variable conjunct ([x.r ▷ x.s], [x.p ▷ x.p]) can hold in
          no partial order, so [B] never holds and [X_B = X_async]. *)

val simplify : t -> simplified

val rename : t -> keep:int list -> t
(** Restrict to the given variables (renumbered in list order), dropping
    conjuncts and guards that mention others. Used when extracting the
    predicate of a cycle. *)

val equal : t -> t -> bool
(** Structural equality (same conjunct and guard sets, same arity). *)

val pp : Format.formatter -> t -> unit
(** Concrete syntax accepted by {!Parse.predicate}, e.g.
    ["x0.s < x1.s & x1.r < x0.r"]. *)

val to_string : t -> string
