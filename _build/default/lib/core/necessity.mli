(** Empirical necessity evidence (Theorem 4, operationalized).

    The classifier says e.g. "Tagged": tagging suffices and — for
    unguarded predicates — the trivial protocol does not. This module
    produces the {e concrete run} behind the "does not": a run inside the
    weaker class's limit set that violates the specification. By
    Theorem 1, every live protocol of that class can reach every run of
    its limit set, so such a run refutes the whole class.

    The search is bounded (exhaustive enumeration of small concrete runs,
    optionally recolored for color-guarded predicates), so [None] means
    "no refutation within the bound", not a proof of implementability —
    the exact answer is {!Classify.classify}; this is its checkable
    certificate. *)

val refutation :
  ?nprocs:int ->
  ?nmsgs:int ->
  Classify.protocol_class ->
  Forbidden.t ->
  Mo_order.Run.t option
(** [refutation cls b] searches all concrete runs with exactly [nmsgs]
    (default 3 — cross-process causality may need messages beyond the
    predicate's own variables) messages over [nprocs] (default 3)
    processes that lie in [cls]'s limit set ([Tagless → X_async],
    [Tagged → X_co], [General → X_sync]) and violate [X_b]. For
    color-guarded predicates every relevant recoloring of each run is
    tried. *)

val certificate : Forbidden.t -> string
(** A human-readable summary: the classification plus, for each refuted
    weaker class, the refuting run's diagram. *)
