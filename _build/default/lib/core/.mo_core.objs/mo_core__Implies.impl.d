lib/core/implies.ml: Eval Witness
