lib/core/classify.ml: Beta Buffer Cycles Forbidden Format Int List Pgraph Printf String Term Weaken
