lib/core/catalog.ml: Classify Forbidden List Printf Spec Term
