lib/core/weaken.ml: Array Cycles Event Forbidden Format Hashtbl Int List Mo_order Pgraph Term
