lib/core/pgraph.mli: Forbidden Format Mo_order Term
