lib/core/beta.mli: Cycles Pgraph
