lib/core/classify.mli: Cycles Forbidden Format
