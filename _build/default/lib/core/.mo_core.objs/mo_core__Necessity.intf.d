lib/core/necessity.mli: Classify Forbidden Mo_order
