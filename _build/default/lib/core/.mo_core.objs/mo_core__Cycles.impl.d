lib/core/cycles.ml: Array Format List Pgraph Term
