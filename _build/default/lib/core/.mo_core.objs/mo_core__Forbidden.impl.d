lib/core/forbidden.ml: Format Hashtbl List Mo_order Printf Term
