lib/core/term.ml: Format Mo_order
