lib/core/spec.ml: Classify Eval Forbidden Format Fun Implies List
