lib/core/witness.ml: Array Classify Event Forbidden Fun Hashtbl Limits List Mo_order Run Term
