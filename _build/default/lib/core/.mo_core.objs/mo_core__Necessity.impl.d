lib/core/necessity.ml: Array Buffer Classify Diagram Enumerate Eval Forbidden Int Limits List Mo_order Option Printf Run Term
