lib/core/weaken.mli: Cycles Forbidden Format Term
