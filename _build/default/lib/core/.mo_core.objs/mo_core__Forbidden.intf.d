lib/core/forbidden.mli: Format Term
