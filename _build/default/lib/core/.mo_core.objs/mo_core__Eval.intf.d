lib/core/eval.mli: Forbidden Mo_order
