lib/core/witness.mli: Classify Forbidden Mo_order
