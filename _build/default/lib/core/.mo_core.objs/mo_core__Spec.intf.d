lib/core/spec.mli: Classify Forbidden Format Mo_order
