lib/core/term.mli: Format Mo_order
