lib/core/eval.ml: Array Event Forbidden List Mo_order Option Run Term
