lib/core/beta.ml: Array Cycles List Mo_order Pgraph
