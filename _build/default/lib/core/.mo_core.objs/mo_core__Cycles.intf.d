lib/core/cycles.mli: Format Pgraph
