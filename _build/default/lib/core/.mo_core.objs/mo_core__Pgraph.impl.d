lib/core/pgraph.ml: Array Buffer Forbidden Format List Mo_order Printf Term
