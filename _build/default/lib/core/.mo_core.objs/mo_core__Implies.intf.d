lib/core/implies.mli: Forbidden
