lib/core/catalog.mli: Classify Forbidden Spec
