lib/core/parse.mli: Forbidden
