lib/core/parse.ml: Forbidden Hashtbl List Mo_order Printf Result String Term
