(** Evaluating forbidden predicates over runs.

    [B] {e holds} in a run when some instantiation of its variables by
    messages of the run satisfies every conjunct and guard; the run then
    violates the specification [X_B].

    Instantiations are {e injective} by default: distinct variables denote
    distinct messages. The paper quantifies plainly over [M], but its
    predicates only read correctly under distinctness — the SYNC crown
    [x1.s ▷ x2.r ∧ x2.s ▷ x1.r] would be "satisfied" by [x1 = x2 = x]
    through the tautology [x.s ▷ x.r], making [X_sync] empty. Pass
    [~distinct:false] to get the plain reading.

    The matcher is a backtracking search over variable assignments with
    incremental conjunct/guard checking — exact, and fast enough for the
    bench harness's runs of thousands of messages because conjunct checks
    prune eagerly. *)

val find_match :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> int array option
(** An assignment [a] (variable index → message index) making [B] true, if
    any. *)

val find_matches :
  ?distinct:bool ->
  ?limit:int ->
  Forbidden.t ->
  Mo_order.Run.Abstract.t ->
  int array list
(** Up to [limit] (default 1000) distinct assignments. *)

val holds : ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> bool
(** [B] is true somewhere in the run. *)

val satisfies :
  ?distinct:bool -> Forbidden.t -> Mo_order.Run.Abstract.t -> bool
(** The run belongs to [X_B]: no instantiation satisfies [B]. *)

val check_assignment :
  Forbidden.t -> Mo_order.Run.Abstract.t -> int array -> bool
(** Does this specific assignment satisfy all conjuncts and guards? *)
