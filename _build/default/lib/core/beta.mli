(** β-vertices and cycle order (Definition 4.3).

    Given a cycle, a vertex is a {e β-vertex} when its incoming edge ends at
    a receive endpoint ([… ▷ x.r]) and its outgoing edge starts at a send
    endpoint ([x.s ▷ …]): information must "jump backwards" through the
    vertex, which no amount of tagging can convey. The {e order} of a cycle
    is its number of β-vertices; it drives the classification (§4.3):
    order 0 ⇒ trivial protocol, order 1 ⇒ tagging, order ≥ 2 ⇒ control
    messages. *)

val is_beta : incoming:Pgraph.edge -> outgoing:Pgraph.edge -> bool
(** The junction vertex is [incoming.dst = outgoing.src]. *)

val beta_vertices : Cycles.cycle -> int list
(** The β-vertices of the cycle, in traversal order. *)

val order : Cycles.cycle -> int
(** [List.length (beta_vertices c)]. *)
