(** Implication between forbidden predicates — specification containment.

    [check b b'] decides whether [B ⟹ B'] as existential sentences over
    runs: every run containing the pattern [B] also contains [B']. By the
    paper's observation after Definition 4.1, this is exactly
    [X_B' ⊆ X_B] — the protocol guaranteeing [B'] never occurs also
    guarantees [B] never occurs... conversely, a protocol for [B]
    guarantees [B'] whenever [B' ⟹ B].

    Decision procedure: the canonical-model (homomorphism) theorem for
    conjunctive queries. The witness run of [B] ({!Witness.build}) is the
    canonical model: [B ⟹ B'] iff [B'] matches inside the witness of [B].
    With injective matching on both sides this remains exact: an injective
    match of [B'] in the witness composes with the (injective)
    order-preserving embedding of the witness into any run where [B]
    matches. An unsatisfiable [B] implies everything.

    Caveat (same as {!Witness}): this is implication over the
    abstract-poset semantics. Over realizable runs more implications hold
    — e.g. the causal form [B1] implies [B2] realizably (Lemma 3.2) but
    not abstractly; see DESIGN.md "Model subtleties". [check] is sound
    for realizable runs ([check b b' = true] really means every realizable
    run matching [b] matches [b']), it is complete only abstractly. *)

val check : Forbidden.t -> Forbidden.t -> bool

val equivalent : Forbidden.t -> Forbidden.t -> bool
(** [check] in both directions. *)

val compare_specs :
  Forbidden.t -> Forbidden.t ->
  [ `Equivalent | `Stronger | `Weaker | `Incomparable ]
(** Relationship of the {e specifications}: [`Stronger] means
    [X_{b} ⊆ X_{b'}] strictly (the first forbids more), i.e. [b' ⟹ b]
    only. *)
