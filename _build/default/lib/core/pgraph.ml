type edge = {
  id : int;
  src : int;
  dst : int;
  src_point : Mo_order.Event.point;
  dst_point : Mo_order.Event.point;
}

type t = { nvertices : int; edges : edge array; out : edge list array }

let of_predicate p =
  let nvertices = Forbidden.nvars p in
  let edges =
    List.mapi
      (fun id (c : Term.conjunct) ->
        {
          id;
          src = c.before.var;
          dst = c.after.var;
          src_point = c.before.point;
          dst_point = c.after.point;
        })
      (Forbidden.conjuncts p)
    |> Array.of_list
  in
  let out = Array.make (max nvertices 1) [] in
  Array.iter (fun e -> out.(e.src) <- e :: out.(e.src)) edges;
  Array.iteri (fun i l -> out.(i) <- List.rev l) out;
  { nvertices; edges; out }

let nvertices t = t.nvertices

let edges t = Array.to_list t.edges

let nedges t = Array.length t.edges

let out_edges t v =
  if v < 0 || v >= t.nvertices then invalid_arg "Pgraph.out_edges";
  t.out.(v)

let in_edges t v =
  if v < 0 || v >= t.nvertices then invalid_arg "Pgraph.in_edges";
  List.filter (fun e -> e.dst = v) (edges t)

let edge_conjunct e =
  Term.(
    { var = e.src; point = e.src_point }
    @> { var = e.dst; point = e.dst_point })

let to_dot ?(highlight = []) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph predicate {\n  rankdir=LR;\n";
  for v = 0 to t.nvertices - 1 do
    Buffer.add_string buf (Printf.sprintf "  x%d [shape=circle];\n" v)
  done;
  Array.iter
    (fun e ->
      let hot = List.exists (fun (h : edge) -> h.id = e.id) highlight in
      Buffer.add_string buf
        (Printf.sprintf "  x%d -> x%d [label=\"%s>%s\"%s];\n" e.src e.dst
           (Format.asprintf "%a" Mo_order.Event.pp_point e.src_point)
           (Format.asprintf "%a" Mo_order.Event.pp_point e.dst_point)
           (if hot then ", color=red, penwidth=2.0" else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>vertices: %d@ " t.nvertices;
  Array.iter
    (fun e ->
      Format.fprintf ppf "e%d: x%d --%a%a--> x%d@ " e.id e.src
        Mo_order.Event.pp_point e.src_point Mo_order.Event.pp_point
        e.dst_point e.dst)
    t.edges;
  Format.fprintf ppf "@]"
