type cycle = Pgraph.edge list

let vertices (c : cycle) = List.map (fun (e : Pgraph.edge) -> e.src) c

(* Enumerate simple cycles by DFS from each root vertex in increasing
   order, restricting paths to vertices >= root; a cycle is emitted when an
   edge returns to the root. This canonicalizes each cycle to the rotation
   starting at its smallest vertex (the classic Johnson-style trick; no
   blocking sets needed at predicate-graph sizes). *)
let enumerate ?(max_cycles = 100_000) g =
  let n = Pgraph.nvertices g in
  let results = ref [] in
  let count = ref 0 in
  let on_path = Array.make (max n 1) false in
  (try
     for root = 0 to n - 1 do
       let rec extend v path =
         List.iter
           (fun (e : Pgraph.edge) ->
             if !count >= max_cycles then raise Exit;
             if e.dst = root then begin
               incr count;
               results := List.rev (e :: path) :: !results
             end
             else if e.dst > root && not on_path.(e.dst) then begin
               on_path.(e.dst) <- true;
               extend e.dst (e :: path);
               on_path.(e.dst) <- false
             end)
           (Pgraph.out_edges g v)
       in
       on_path.(root) <- true;
       extend root [];
       on_path.(root) <- false
     done
   with Exit -> ());
  List.rev !results

let has_cycle g =
  let n = Pgraph.nvertices g in
  let color = Array.make (max n 1) 0 in
  (* 0 white, 1 grey, 2 black *)
  let exception Found in
  let rec visit v =
    color.(v) <- 1;
    List.iter
      (fun (e : Pgraph.edge) ->
        if color.(e.dst) = 1 then raise Found
        else if color.(e.dst) = 0 then visit e.dst)
      (Pgraph.out_edges g v);
    color.(v) <- 2
  in
  try
    for v = 0 to n - 1 do
      if color.(v) = 0 then visit v
    done;
    false
  with Found -> true

let pp_cycle ppf (c : cycle) =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ; ")
       (fun ppf e -> Term.pp_conjunct ppf (Pgraph.edge_conjunct e)))
    c
