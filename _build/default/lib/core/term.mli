(** The building blocks of forbidden predicates (Definition 4.1).

    A forbidden predicate is an existentially quantified conjunction of
    causality constraints between endpoints of message variables, optionally
    restricted by attribute guards ("sending process, receiving process, and
    color", §4.1). *)

type endpoint = { var : int; point : Mo_order.Event.point }
(** [x_var.s] or [x_var.r]. Variables are numbered [0 .. nvars-1]; the
    pretty-printers render them [x0, x1, ...]. *)

val s : int -> endpoint
(** [s v] is [x_v.s]. *)

val r : int -> endpoint
(** [r v] is [x_v.r]. *)

type conjunct = { before : endpoint; after : endpoint }
(** [before ▷ after]: the constraint that [before] causally precedes
    [after]. *)

val ( @> ) : endpoint -> endpoint -> conjunct
(** [a @> b] is the conjunct [a ▷ b]. *)

type guard =
  | Same_src of int * int
      (** [process(x.s) = process(y.s)]: same sending process. *)
  | Same_dst of int * int
      (** [process(x.r) = process(y.r)]: same receiving process. *)
  | Color_is of int * int  (** [color(x) = c]. *)

val endpoint_equal : endpoint -> endpoint -> bool

val conjunct_equal : conjunct -> conjunct -> bool

val guard_equal : guard -> guard -> bool

val pp_endpoint : Format.formatter -> endpoint -> unit

val pp_conjunct : Format.formatter -> conjunct -> unit

val pp_guard : Format.formatter -> guard -> unit
