let check b b' =
  match Witness.build b with
  | Witness.Cyclic | Witness.Conflicting_guards ->
      true (* B never holds: implication is vacuous *)
  | Witness.Witness w -> Eval.holds b' w.Witness.run

let equivalent b b' = check b b' && check b' b

let compare_specs b b' =
  (* b ⟹ b' means X_{b'} ⊆ X_b: b' is the stronger specification *)
  match (check b b', check b' b) with
  | true, true -> `Equivalent
  | true, false -> `Weaker (* X_{b'} ⊂ X_b: b forbids less *)
  | false, true -> `Stronger
  | false, false -> `Incomparable
