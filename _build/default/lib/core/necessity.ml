open Mo_order

let guard_colors p =
  List.filter_map
    (fun (g : Term.guard) ->
      match g with Term.Color_is (_, c) -> Some c | _ -> None)
    (Forbidden.guards p)
  |> List.sort_uniq Int.compare

let recolor run colors =
  let nprocs = Run.nprocs run in
  let msgs =
    Array.init (Run.nmsgs run) (fun m -> (Run.msg_src run m, Run.msg_dst run m))
  in
  let seq = Array.init nprocs (Run.sequence run) in
  match Run.of_sequences ~nprocs ~msgs ~colors seq with
  | Ok r -> r
  | Error _ -> run (* unreachable: same structure *)

(* all colorings of [nmsgs] messages over (None :: available colors) *)
let colorings nmsgs palette =
  let options = None :: List.map Option.some palette in
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun c -> List.map (fun l -> c :: l) rest) options
  in
  List.map Array.of_list (go nmsgs)

let in_limit cls a =
  match cls with
  | Classify.Tagless -> true
  | Classify.Tagged -> Limits.is_causal a
  | Classify.General -> Limits.is_sync a

let refutation ?(nprocs = 3) ?nmsgs cls p =
  (* cross-process causality in the refuting run may need intermediate
     messages beyond the predicate's own variables, so the default bound
     is 3 regardless of arity (the enumeration cost caps it there) *)
  let nmsgs = Option.value nmsgs ~default:3 in
  let palette = guard_colors p in
  let candidates = Enumerate.all_runs ~nprocs ~nmsgs () in
  let colorings = colorings nmsgs palette in
  List.find_map
    (fun run ->
      List.find_map
        (fun colors ->
          let run = if palette = [] then run else recolor run colors in
          let a = Run.to_abstract run in
          if in_limit cls a && not (Eval.satisfies p a) then Some run
          else None)
        (if palette = [] then [ Array.make nmsgs None ] else colorings))
    candidates

let certificate p =
  let buf = Buffer.create 512 in
  let result = Classify.classify p in
  Buffer.add_string buf
    (Printf.sprintf "predicate: %s\nclassification: %s\n"
       (Forbidden.to_string p)
       (Classify.verdict_to_string result.Classify.verdict));
  let show cls label =
    match refutation cls p with
    | Some run ->
        Buffer.add_string buf
          (Printf.sprintf
             "\n%s cannot implement it — this run is reachable under any \
              live %s protocol and violates the specification:\n%s"
             label label (Diagram.render_run run))
    | None ->
        Buffer.add_string buf
          (Printf.sprintf
             "\nno %s-class refutation found within the search bound\n"
             label)
  in
  (match result.Classify.verdict with
  | Classify.Not_implementable -> show Classify.General "general"
  | Classify.Implementable Classify.General ->
      show Classify.Tagged "tagged";
      show Classify.Tagless "tagless"
  | Classify.Implementable Classify.Tagged -> show Classify.Tagless "tagless"
  | Classify.Implementable Classify.Tagless -> ());
  Buffer.contents buf
