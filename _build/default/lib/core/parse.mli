(** Concrete syntax for forbidden predicates.

    Grammar (whitespace-insensitive):
    {v
      predicate := clause ( '&' clause )*
      clause    := endpoint '<' endpoint
                 | 'src' '(' var ')' '=' 'src' '(' var ')'
                 | 'dst' '(' var ')' '=' 'dst' '(' var ')'
                 | 'color' '(' var ')' '=' int
      endpoint  := var '.' ( 's' | 'r' )
      var       := letter (letter | digit | '_')*
    v}

    ['<'] is the happened-before relation [▷]. Variables are numbered by
    first appearance, so ["x.s < y.s & y.r < x.r"] is causal ordering with
    [x ↦ 0], [y ↦ 1]. {!Forbidden.pp} prints in this same syntax. *)

val predicate : string -> (Forbidden.t, string) result

val predicate_exn : string -> Forbidden.t
(** @raise Invalid_argument on a syntax error. *)
