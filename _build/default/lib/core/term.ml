type endpoint = { var : int; point : Mo_order.Event.point }

let s var = { var; point = Mo_order.Event.S }

let r var = { var; point = Mo_order.Event.R }

type conjunct = { before : endpoint; after : endpoint }

let ( @> ) before after = { before; after }

type guard =
  | Same_src of int * int
  | Same_dst of int * int
  | Color_is of int * int

let endpoint_equal a b =
  a.var = b.var && Mo_order.Event.point_equal a.point b.point

let conjunct_equal a b =
  endpoint_equal a.before b.before && endpoint_equal a.after b.after

let guard_equal a b =
  match (a, b) with
  | Same_src (x, y), Same_src (x', y') | Same_dst (x, y), Same_dst (x', y')
    ->
      (x = x' && y = y') || (x = y' && y = x')
  | Color_is (x, c), Color_is (x', c') -> x = x' && c = c'
  | (Same_src _ | Same_dst _ | Color_is _), _ -> false

let pp_endpoint ppf e =
  Format.fprintf ppf "x%d.%a" e.var Mo_order.Event.pp_point e.point

let pp_conjunct ppf c =
  Format.fprintf ppf "%a < %a" pp_endpoint c.before pp_endpoint c.after

let pp_guard ppf = function
  | Same_src (x, y) -> Format.fprintf ppf "src(x%d) = src(x%d)" x y
  | Same_dst (x, y) -> Format.fprintf ppf "dst(x%d) = dst(x%d)" x y
  | Color_is (x, c) -> Format.fprintf ppf "color(x%d) = %d" x c
