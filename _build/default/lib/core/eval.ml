open Mo_order

let conjunct_holds run assignment (c : Term.conjunct) =
  let ev (e : Term.endpoint) =
    { Event.msg = assignment.(e.var); point = e.point }
  in
  Run.Abstract.lt run (ev c.before) (ev c.after)

let guard_holds run assignment (g : Term.guard) =
  let attrs v = Run.Abstract.attrs run assignment.(v) in
  match g with
  | Term.Same_src (x, y) -> (
      match ((attrs x).Run.src, (attrs y).Run.src) with
      | Some a, Some b -> a = b
      | _ -> false)
  | Term.Same_dst (x, y) -> (
      match ((attrs x).Run.dst, (attrs y).Run.dst) with
      | Some a, Some b -> a = b
      | _ -> false)
  | Term.Color_is (x, c) -> (attrs x).Run.color = Some c

let check_assignment p run assignment =
  if Array.length assignment <> Forbidden.nvars p then
    invalid_arg "Eval.check_assignment: arity mismatch";
  List.for_all (conjunct_holds run assignment) (Forbidden.conjuncts p)
  && List.for_all (guard_holds run assignment) (Forbidden.guards p)

(* Index conjuncts and guards by the highest variable they mention, so each
   is checked as soon as its last variable is assigned. *)
let stage_by_max_var p =
  let m = Forbidden.nvars p in
  let conj_at = Array.make (max m 1) [] in
  let guard_at = Array.make (max m 1) [] in
  List.iter
    (fun (c : Term.conjunct) ->
      let v = max c.before.var c.after.var in
      conj_at.(v) <- c :: conj_at.(v))
    (Forbidden.conjuncts p);
  List.iter
    (fun (g : Term.guard) ->
      let v =
        match g with
        | Term.Same_src (x, y) | Term.Same_dst (x, y) -> max x y
        | Term.Color_is (x, _) -> x
      in
      guard_at.(v) <- g :: guard_at.(v))
    (Forbidden.guards p);
  (conj_at, guard_at)

let search ?(distinct = true) ?(limit = max_int) p run =
  let m = Forbidden.nvars p in
  let n = Run.Abstract.nmsgs run in
  if m = 0 then [ [||] ] (* empty conjunction: trivially true *)
  else if n = 0 || (distinct && n < m) then []
  else begin
    let conj_at, guard_at = stage_by_max_var p in
    let assignment = Array.make m (-1) in
    let used = Array.make n false in
    let results = ref [] in
    let count = ref 0 in
    let exception Done in
    let rec assign v =
      if v = m then begin
        incr count;
        results := Array.copy assignment :: !results;
        if !count >= limit then raise Done
      end
      else
        for msg = 0 to n - 1 do
          if not (distinct && used.(msg)) then begin
            assignment.(v) <- msg;
            used.(msg) <- true;
            let ok =
              List.for_all (conjunct_holds run assignment) conj_at.(v)
              && List.for_all (guard_holds run assignment) guard_at.(v)
            in
            if ok then assign (v + 1);
            used.(msg) <- false
          end
        done
    in
    (try assign 0 with Done -> ());
    List.rev !results
  end

let find_match ?distinct p run =
  match search ?distinct ~limit:1 p run with a :: _ -> Some a | [] -> None

let find_matches ?distinct ?(limit = 1000) p run =
  search ?distinct ~limit p run

let holds ?distinct p run = Option.is_some (find_match ?distinct p run)

let satisfies ?distinct p run = not (holds ?distinct p run)
