type t = { name : string; predicates : Forbidden.t list }

let make ~name predicates = { name; predicates }

let classify t =
  let verdicts = List.map Classify.classify t.predicates in
  List.fold_left
    (fun acc (r : Classify.result) ->
      match (acc, r.verdict) with
      | Classify.Not_implementable, _ | _, Classify.Not_implementable ->
          Classify.Not_implementable
      | Classify.Implementable a, Classify.Implementable b ->
          Classify.Implementable (if Classify.class_leq a b then b else a))
    (Classify.Implementable Classify.Tagless)
    verdicts

let satisfies t run = List.for_all (fun p -> Eval.satisfies p run) t.predicates

let first_violation t run =
  List.find_map
    (fun p ->
      match Eval.find_match p run with
      | Some a -> Some (p, a)
      | None -> None)
    t.predicates

let minimize t =
  let keep =
    List.filteri
      (fun i b ->
        not
          (List.exists
             (fun j ->
               i <> j
               &&
               let b'' = List.nth t.predicates j in
               (* prefer dropping the later of two equivalent members *)
               Implies.check b b''
               && ((not (Implies.check b'' b)) || j < i))
             (List.init (List.length t.predicates) Fun.id)))
      t.predicates
  in
  { t with predicates = keep }

let pp ppf t =
  Format.fprintf ppf "@[<v>spec %s:" t.name;
  List.iter (fun p -> Format.fprintf ppf "@   forbid %a" Forbidden.pp p)
    t.predicates;
  Format.fprintf ppf "@]"
