(** Lemma 4: weakening a cycle to a canonical form.

    Every cycle of order [k] can be contracted — by repeatedly eliminating a
    non-β vertex [y], replacing its incoming conjunct [x.p ▷ y.q] and
    outgoing conjunct [y.q' ▷ z.q''] with the implied conjunct
    [x.p ▷ z.q''] — into a weaker predicate [B'] (i.e. [B ⟹ B'], so
    [X_B' ⊆ X_B]) whose graph is a cycle with either two vertices or all
    vertices β. The contraction preserves the order, which is how
    Theorem 3 reduces every cycle to one of the Lemma 3 canonical
    predicates. *)

type step = {
  removed : int;  (** the contracted non-β vertex *)
  incoming : Term.conjunct;
  outgoing : Term.conjunct;
  replaced_by : Term.conjunct;
}

type t = {
  original_order : int;
  final : Term.conjunct list;
      (** The conjuncts of the contracted cycle, still over the original
          variable names. *)
  final_vertices : int list;
  trace : step list;
  form : [ `Two_vertex | `All_beta | `Self_loop ];
}

val contract : Cycles.cycle -> t
(** @raise Invalid_argument on an empty cycle. *)

val to_predicate : t -> Forbidden.t
(** The weakened predicate [B'], variables renumbered densely. *)

val pp : Format.formatter -> t -> unit
