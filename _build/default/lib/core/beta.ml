let is_beta ~(incoming : Pgraph.edge) ~(outgoing : Pgraph.edge) =
  if incoming.dst <> outgoing.src then
    invalid_arg "Beta.is_beta: edges do not share a junction vertex";
  (match incoming.dst_point with Mo_order.Event.R -> true | _ -> false)
  && match outgoing.src_point with Mo_order.Event.S -> true | _ -> false

let beta_vertices (c : Cycles.cycle) =
  match c with
  | [] -> []
  | edges ->
      let arr = Array.of_list edges in
      let k = Array.length arr in
      let acc = ref [] in
      for i = 0 to k - 1 do
        let incoming = arr.((i + k - 1) mod k) in
        let outgoing = arr.(i) in
        if is_beta ~incoming ~outgoing then acc := outgoing.src :: !acc
      done;
      List.rev !acc

let order c = List.length (beta_vertices c)
