open Mo_order

type t = { run : Run.Abstract.t; assignment : int array }

type build_result = Witness of t | Cyclic | Conflicting_guards

(* Union-find for the source/destination identification forced by guards. *)
let rec uf_find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- uf_find parent parent.(i);
    parent.(i)
  end

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

let attrs_of_guards ~nvars guards =
  (* slots 0..nvars-1 are per-variable source identities, nvars..2nvars-1
     destination identities; guards merge them, and every final class gets
     a distinct process id (sources and destinations never merge, matching
     the paper's attribute functions process(x.s) / process(x.r)). *)
  let parent = Array.init (2 * nvars) Fun.id in
  let colors = Array.make nvars None in
  let conflict = ref false in
  List.iter
    (fun (g : Term.guard) ->
      match g with
      | Term.Same_src (x, y) -> uf_union parent x y
      | Term.Same_dst (x, y) -> uf_union parent (nvars + x) (nvars + y)
      | Term.Color_is (x, c) -> (
          match colors.(x) with
          | None -> colors.(x) <- Some c
          | Some c' -> if c <> c' then conflict := true))
    guards;
  if !conflict then None
  else begin
    let proc_of_root = Hashtbl.create 8 in
    let next = ref 0 in
    let proc slot =
      let root = uf_find parent slot in
      match Hashtbl.find_opt proc_of_root root with
      | Some p -> p
      | None ->
          let p = !next in
          incr next;
          Hashtbl.replace proc_of_root root p;
          p
    in
    Some
      (Array.init nvars (fun v ->
           {
             Run.src = Some (proc v);
             dst = Some (proc (nvars + v));
             color = colors.(v);
           }))
  end

let build p =
  let nvars = Forbidden.nvars p in
  match attrs_of_guards ~nvars (Forbidden.guards p) with
  | None -> Conflicting_guards
  | Some attrs -> (
      let edges =
        List.map
          (fun (c : Term.conjunct) ->
            ( { Event.msg = c.before.var; point = c.before.point },
              { Event.msg = c.after.var; point = c.after.point } ))
          (Forbidden.conjuncts p)
      in
      match Run.Abstract.create ~nmsgs:nvars ~attrs edges with
      | None -> Cyclic
      | Some run -> Witness { run; assignment = Array.init nvars Fun.id })

let classify p =
  match build p with
  | Cyclic | Conflicting_guards -> Classify.Implementable Classify.Tagless
  | Witness w ->
      if Limits.is_sync w.run then Classify.Not_implementable
      else if Limits.is_causal w.run then
        Classify.Implementable Classify.General
      else Classify.Implementable Classify.Tagged
