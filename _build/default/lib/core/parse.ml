type token =
  | Tident of string
  | Tint of int
  | Tdot
  | Tless
  | Tamp
  | Teq
  | Tlparen
  | Trparen

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '.' -> go (i + 1) (Tdot :: acc)
      | '<' -> go (i + 1) (Tless :: acc)
      | '&' -> go (i + 1) (Tamp :: acc)
      | '=' -> go (i + 1) (Teq :: acc)
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit s.[!j] do
            incr j
          done;
          go !j (Tint (int_of_string (String.sub s i (!j - i))) :: acc)
      | c when is_letter c ->
          let j = ref i in
          while !j < n && (is_letter s.[!j] || is_digit s.[!j] || s.[!j] = '_')
          do
            incr j
          done;
          go !j (Tident (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
  in
  go 0 []

type state = {
  mutable tokens : token list;
  vars : (string, int) Hashtbl.t;
  mutable nvars : int;
}

let var_index st name =
  match Hashtbl.find_opt st.vars name with
  | Some i -> i
  | None ->
      let i = st.nvars in
      st.nvars <- i + 1;
      Hashtbl.replace st.vars name i;
      i

let expect st tok what =
  match st.tokens with
  | t :: rest when t = tok ->
      st.tokens <- rest;
      Ok ()
  | _ -> Error (Printf.sprintf "expected %s" what)

let ( let* ) = Result.bind

let parse_point st =
  match st.tokens with
  | Tident "s" :: rest ->
      st.tokens <- rest;
      Ok Mo_order.Event.S
  | Tident "r" :: rest ->
      st.tokens <- rest;
      Ok Mo_order.Event.R
  | _ -> Error "expected 's' or 'r' after '.'"

let parse_endpoint st name =
  let v = var_index st name in
  let* () = expect st Tdot "'.'" in
  let* point = parse_point st in
  Ok { Term.var = v; point }

let parse_attr_clause st attr =
  (* attr '(' var ')' '=' ( attr '(' var ')' | int ) *)
  let* () = expect st Tlparen "'('" in
  let* x =
    match st.tokens with
    | Tident name :: rest ->
        st.tokens <- rest;
        Ok (var_index st name)
    | _ -> Error "expected a variable"
  in
  let* () = expect st Trparen "')'" in
  let* () = expect st Teq "'='" in
  match (attr, st.tokens) with
  | "color", Tint c :: rest ->
      st.tokens <- rest;
      Ok (Term.Color_is (x, c))
  | ("src" | "dst"), Tident attr2 :: rest when attr2 = attr ->
      st.tokens <- rest;
      let* () = expect st Tlparen "'('" in
      let* y =
        match st.tokens with
        | Tident name :: rest ->
            st.tokens <- rest;
            Ok (var_index st name)
        | _ -> Error "expected a variable"
      in
      let* () = expect st Trparen "')'" in
      if attr = "src" then Ok (Term.Same_src (x, y))
      else Ok (Term.Same_dst (x, y))
  | "color", _ -> Error "expected an integer color"
  | _ -> Error (Printf.sprintf "expected '%s(...)' on the right" attr)

let parse_clause st =
  match st.tokens with
  | Tident (("src" | "dst" | "color") as attr) :: Tlparen :: _ ->
      st.tokens <- List.tl st.tokens;
      let* g = parse_attr_clause st attr in
      Ok (`Guard g)
  | Tident name :: rest ->
      st.tokens <- rest;
      let* before = parse_endpoint st name in
      let* () = expect st Tless "'<'" in
      let* after =
        match st.tokens with
        | Tident name2 :: rest2 ->
            st.tokens <- rest2;
            parse_endpoint st name2
        | _ -> Error "expected an endpoint after '<'"
      in
      Ok (`Conjunct Term.(before @> after))
  | _ -> Error "expected a clause"

let predicate str =
  let* tokens = tokenize str in
  let st = { tokens; vars = Hashtbl.create 8; nvars = 0 } in
  let rec clauses acc =
    let* c = parse_clause st in
    match st.tokens with
    | Tamp :: rest ->
        st.tokens <- rest;
        clauses (c :: acc)
    | [] -> Ok (List.rev (c :: acc))
    | _ -> Error "expected '&' or end of input"
  in
  if st.tokens = [] then Ok (Forbidden.make ~nvars:0 [])
  else
    let* items = clauses [] in
    let conjuncts =
      List.filter_map (function `Conjunct c -> Some c | `Guard _ -> None)
        items
    in
    let guards =
      List.filter_map (function `Guard g -> Some g | `Conjunct _ -> None)
        items
    in
    Ok (Forbidden.make ~nvars:st.nvars ~guards conjuncts)

let predicate_exn str =
  match predicate str with
  | Ok p -> p
  | Error e -> invalid_arg ("Parse.predicate: " ^ e)
