(** Simple-cycle enumeration in predicate multigraphs.

    A cycle is a nonempty edge sequence [e_1 … e_k] with
    [e_i.dst = e_{i+1}.src] (indices mod k) visiting k distinct vertices
    (k = 1 is a self-loop). Cycles are canonicalized to start at their
    smallest vertex, so each simple cycle is reported exactly once; two
    cycles through the same vertices but different parallel edges are
    distinct. *)

type cycle = Pgraph.edge list

val vertices : cycle -> int list
(** In traversal order, starting with the canonical (smallest) vertex. *)

val enumerate : ?max_cycles:int -> Pgraph.t -> cycle list
(** All simple cycles, cut off at [max_cycles] (default 100_000 — a
    safeguard, predicate graphs are small). *)

val has_cycle : Pgraph.t -> bool
(** Cheaper than [enumerate <> []]: a DFS reachability test. *)

val pp_cycle : Format.formatter -> cycle -> unit
