(** Predicate graphs (Definition 4.2).

    The multigraph with one vertex per message variable and one directed
    edge per conjunct: the conjunct [x_j.p ▷ x_k.q] becomes an edge
    [j → k] labelled with the endpoints [(p, q)]. Parallel edges and
    self-loops are preserved — they arise from distinct conjuncts and
    matter for cycle enumeration. *)

type edge = {
  id : int;  (** index into {!edges}; also the conjunct's position *)
  src : int;
  dst : int;
  src_point : Mo_order.Event.point;  (** the [p] of [x_j.p ▷ x_k.q] *)
  dst_point : Mo_order.Event.point;  (** the [q] of [x_j.p ▷ x_k.q] *)
}

type t

val of_predicate : Forbidden.t -> t
(** Builds the graph of the predicate's conjuncts. Guards are not part of
    the graph (the paper's graph construction ignores attribute ranges). *)

val nvertices : t -> int

val edges : t -> edge list

val nedges : t -> int

val out_edges : t -> int -> edge list

val in_edges : t -> int -> edge list

val edge_conjunct : edge -> Term.conjunct
(** The conjunct an edge came from. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?highlight:edge list -> t -> string
(** Graphviz source for the graph. Edges are labelled with their endpoint
    points (e.g. ["s>r"]); the optional highlighted edges (typically a
    certificate cycle) are drawn bold red. *)
