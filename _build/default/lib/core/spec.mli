(** Specifications as sets of forbidden predicates.

    A single forbidden predicate denotes one forbidden pattern; realistic
    guarantees sometimes forbid several (the paper's [X_sync] itself is the
    intersection over all crown lengths, and a two-way flush combines a
    forward and a backward flush). A spec is a finite conjunction of
    predicate specifications: [X_S = ⋂_B X_B].

    Classification lifts pointwise: a protocol class implements the
    intersection iff it implements every member (its limit set must be
    contained in each [X_B]), so the class of a spec is the maximum of the
    member classes, and the spec is implementable iff every member is. *)

type t = { name : string; predicates : Forbidden.t list }

val make : name:string -> Forbidden.t list -> t

val classify : t -> Classify.verdict

val satisfies : t -> Mo_order.Run.Abstract.t -> bool
(** The run avoids every forbidden pattern. *)

val first_violation :
  t -> Mo_order.Run.Abstract.t -> (Forbidden.t * int array) option
(** The first member predicate that holds in the run, with its satisfying
    assignment. *)

val minimize : t -> t
(** Drop members made redundant by stronger members: a predicate [b] is
    redundant when another kept member [b''] satisfies [b ⟹ b'']
    (then [X_{b''} ⊆ X_b], so forbidding [b''] already forbids [b]).
    Uses {!Implies.check}, hence exact for the abstract semantics and
    sound (never drops too much) for realizable runs. *)

val pp : Format.formatter -> t -> unit
