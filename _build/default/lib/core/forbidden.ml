type t = {
  nvars : int;
  conjuncts : Term.conjunct list;
  guards : Term.guard list;
}

let check_var nvars v what =
  if v < 0 || v >= nvars then
    invalid_arg
      (Printf.sprintf "Forbidden.make: %s mentions x%d, arity is %d" what v
         nvars)

let dedup equal l =
  List.fold_left
    (fun acc x -> if List.exists (equal x) acc then acc else x :: acc)
    [] l
  |> List.rev

let make ~nvars ?(guards = []) conjuncts =
  if nvars < 0 then invalid_arg "Forbidden.make: negative arity";
  List.iter
    (fun (c : Term.conjunct) ->
      check_var nvars c.before.var "conjunct";
      check_var nvars c.after.var "conjunct")
    conjuncts;
  List.iter
    (fun (g : Term.guard) ->
      match g with
      | Term.Same_src (x, y) | Term.Same_dst (x, y) ->
          check_var nvars x "guard";
          check_var nvars y "guard"
      | Term.Color_is (x, _) -> check_var nvars x "guard")
    guards;
  {
    nvars;
    conjuncts = dedup Term.conjunct_equal conjuncts;
    guards = dedup Term.guard_equal guards;
  }

let nvars t = t.nvars

let conjuncts t = t.conjuncts

let guards t = t.guards

let is_guarded t = t.guards <> []

type simplified = Simplified of t | Unsatisfiable

let simplify t =
  let unsat = ref false in
  let keep =
    List.filter
      (fun (c : Term.conjunct) ->
        if c.before.var <> c.after.var then true
        else
          match (c.before.point, c.after.point) with
          | Mo_order.Event.S, Mo_order.Event.R ->
              false (* tautology: drop *)
          | Mo_order.Event.R, Mo_order.Event.S
          | Mo_order.Event.S, Mo_order.Event.S
          | Mo_order.Event.R, Mo_order.Event.R ->
              unsat := true;
              true)
      t.conjuncts
  in
  if !unsat then Unsatisfiable else Simplified { t with conjuncts = keep }

let rename t ~keep =
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v i) keep;
  let lookup v = Hashtbl.find_opt index v in
  let conjuncts =
    List.filter_map
      (fun (c : Term.conjunct) ->
        match (lookup c.before.var, lookup c.after.var) with
        | Some b, Some a ->
            Some
              Term.(
                { var = b; point = c.before.point }
                @> { var = a; point = c.after.point })
        | _ -> None)
      t.conjuncts
  in
  let guards =
    List.filter_map
      (fun (g : Term.guard) ->
        match g with
        | Term.Same_src (x, y) -> (
            match (lookup x, lookup y) with
            | Some x', Some y' -> Some (Term.Same_src (x', y'))
            | _ -> None)
        | Term.Same_dst (x, y) -> (
            match (lookup x, lookup y) with
            | Some x', Some y' -> Some (Term.Same_dst (x', y'))
            | _ -> None)
        | Term.Color_is (x, c) -> (
            match lookup x with
            | Some x' -> Some (Term.Color_is (x', c))
            | None -> None))
      t.guards
  in
  make ~nvars:(List.length keep) ~guards conjuncts

let equal a b =
  a.nvars = b.nvars
  && List.length a.conjuncts = List.length b.conjuncts
  && List.for_all
       (fun c -> List.exists (Term.conjunct_equal c) b.conjuncts)
       a.conjuncts
  && List.length a.guards = List.length b.guards
  && List.for_all (fun g -> List.exists (Term.guard_equal g) b.guards)
       a.guards

let pp ppf t =
  let sep ppf () = Format.fprintf ppf " & " in
  match (t.conjuncts, t.guards) with
  | [], [] -> Format.fprintf ppf "true"
  | _ ->
      Format.fprintf ppf "%a"
        (Format.pp_print_list ~pp_sep:sep (fun ppf item -> item ppf))
        (List.map (fun c ppf -> Term.pp_conjunct ppf c) t.conjuncts
        @ List.map (fun g ppf -> Term.pp_guard ppf g) t.guards)

let to_string t = Format.asprintf "%a" pp t
