(** The paper's named specifications, with their published classifications.

    Sources: Lemma 3 (the canonical two-variable predicates and the sync
    crowns), §4.1 (FIFO, red-marker), §6 "Discussion" (FIFO, k-weaker
    causal ordering, local/global forward flush, mobile handoff,
    second-before-first), Examples 1–3 (the worked predicate), and the
    flush-channel primitives of [1, 12]. The bench harness replays this
    table as experiment T1/T3; the tests assert every [expected] value. *)

type entry = {
  name : string;
  description : string;
  pred : Forbidden.t;
  expected : Classify.verdict;
      (** The classification the paper states or that follows from its
          theorems. *)
  source : string;  (** where in the paper the entry comes from *)
}

val fifo : entry
val causal_b1 : entry
val causal_b2 : entry
val causal_b3 : entry

val async_forms : entry list
(** The order-0 two-variable predicates of Lemma 3.3 — each equivalent to
    [X_async]. *)

val sync_crown : int -> entry
(** [sync_crown k] forbids the crown
    [x1.s ▷ x2.r ∧ x2.s ▷ x3.r ∧ … ∧ xk.s ▷ x1.r] (Lemma 3.1); requires
    control messages for every [k ≥ 2]. *)

val k_weaker_causal : int -> entry
(** Messages may overtake by at most [k] (§6); tagged for every [k]. *)

val channel_k_weaker : int -> entry
(** The per-channel variant (same src/dst guards): implemented by the
    sliding-window protocol; [k = 0] is FIFO. *)

val local_forward_flush : entry
val global_forward_flush : entry
val backward_flush : entry
val two_way_flush : Spec.t
(** Forward and backward flush combined — a two-predicate spec. *)

val mobile_handoff : entry
(** No message may straddle a handoff message (§6): a guarded 2-crown;
    needs control messages. *)

val second_before_first : entry
(** "Receive the second message before the first" (§6): no cycle, not
    implementable. *)

val example_1 : entry
(** The predicate of Example 1 (whose graph is drawn in the paper); its
    4-cycle has order 1 (Example 3), so it is tagged-implementable. *)

val red_marker : entry
(** §4.1: no message overtakes a red marker message. *)

val all : entry list
(** Every entry above (crowns for k = 2..5, k-weaker for k = 1..3),
    deduplicated by name. *)

val find : string -> entry option
