(** Per-message lifecycle spans.

    One span per message, carrying the virtual timestamps of the paper's
    four system events: the application's request [s✱] ([invoke]), the
    actual emission [s] ([send]), the network arrival [r✱] ([recv]) and the
    delivery [r] ([deliver]). A timestamp of [-1] means the event never
    happened (e.g. a message still inhibited when the run ended, or a
    packet lost to fault injection).

    The two holds a protocol may impose become first-class durations:
    {!inhibition} is the [s✱ → s] hold (time the send was inhibited) and
    {!delivery_delay} the [r✱ → r] hold (time the delivery was delayed) —
    exactly the costs Theorem 1's class hierarchy trades against tag bytes
    and control traffic. *)

type t = {
  msg : int;
  src : int;
  dst : int;
  invoke : int;
  send : int;
  recv : int;
  deliver : int;
}

val none : int
(** The absent-event timestamp, [-1]. *)

val make :
  msg:int -> src:int -> dst:int ->
  invoke:int -> send:int -> recv:int -> deliver:int -> t

val events : t -> int
(** How many of the four events occurred, 0–4. *)

val is_complete : t -> bool
(** All four events occurred. *)

val inhibition : t -> int option
(** [send − invoke]; [None] unless both occurred. *)

val delivery_delay : t -> int option
(** [deliver − recv]; [None] unless both occurred. *)

val in_flight : t -> int option
(** [recv − send]: pure network latency. *)

val latency : t -> int option
(** [deliver − invoke]: end-to-end, as experienced by the application. *)

val record : Metrics.t -> ?prefix:string -> t array -> unit
(** Aggregate a run's spans into the registry under
    [<prefix>span.*] (default prefix ""): histograms
    [span.inhibition_time], [span.delivery_delay], [span.in_flight_time],
    [span.latency]; counters [span.events_total],
    [span.complete_total], [span.incomplete_total]. *)

val to_json : t -> Jsonb.t

val pp : Format.formatter -> t -> unit
