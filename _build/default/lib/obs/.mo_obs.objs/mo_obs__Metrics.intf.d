lib/obs/metrics.mli: Format Jsonb
