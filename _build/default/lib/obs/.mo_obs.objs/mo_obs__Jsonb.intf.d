lib/obs/jsonb.mli:
