lib/obs/report.ml: Format Jsonb List Metrics Option String
