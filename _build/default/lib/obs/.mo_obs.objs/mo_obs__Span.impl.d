lib/obs/span.ml: Array Format Jsonb Metrics
