lib/obs/jsonb.ml: Buffer Char Float List Printf String
