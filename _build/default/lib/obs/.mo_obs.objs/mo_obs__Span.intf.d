lib/obs/span.mli: Format Jsonb Metrics
