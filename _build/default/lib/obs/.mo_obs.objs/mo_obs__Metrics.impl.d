lib/obs/metrics.ml: Array Format Hashtbl Jsonb List Printf String
