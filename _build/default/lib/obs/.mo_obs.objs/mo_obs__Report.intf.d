lib/obs/report.mli: Format Jsonb Metrics
