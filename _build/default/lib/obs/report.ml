type row = { label : string; kind : string; registry : Metrics.t }

let row ~label ~kind registry = { label; kind; registry }

let to_json rows =
  Jsonb.Obj
    [
      ("schema", Jsonb.String "mopc-obs/1");
      ( "rows",
        Jsonb.List
          (List.map
             (fun r ->
               Jsonb.Obj
                 [
                   ("protocol", Jsonb.String r.label);
                   ("kind", Jsonb.String r.kind);
                   ("metrics", Metrics.to_json r.registry);
                 ])
             rows) );
    ]

let v registry name = Option.value ~default:0 (Metrics.value registry name)

let hmean registry name =
  match Metrics.find_histogram registry name with
  | Some h -> Metrics.hist_mean h
  | None -> 0.

let pp_comparison ppf rows =
  let lw =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 8 rows
  in
  Format.fprintf ppf
    "  %-*s %-8s %6s %6s %6s %8s %8s %8s %8s %8s %7s %8s@." lw "protocol"
    "class" "msgs" "upkt" "cpkt" "tagB" "tagB/m" "ctlB" "inhib" "delay"
    "maxpend" "makespan";
  Format.fprintf ppf "  %s@." (String.make (lw + 96) '-');
  List.iter
    (fun r ->
      let g = v r.registry in
      let msgs = g "sim.msgs_total" in
      let tagb = g "sim.tag_bytes" in
      Format.fprintf ppf
        "  %-*s %-8s %6d %6d %6d %8d %8.1f %8d %8.2f %8.2f %7d %8d@." lw
        r.label r.kind msgs (g "sim.user_packets") (g "sim.control_packets")
        tagb
        (if msgs = 0 then 0. else float_of_int tagb /. float_of_int msgs)
        (g "sim.control_bytes")
        (hmean r.registry "span.inhibition_time")
        (hmean r.registry "span.delivery_delay")
        (g "sim.max_pending") (g "sim.makespan"))
    rows

let pp_registry ppf r =
  Format.fprintf ppf "%s (%s)@.%a" r.label r.kind Metrics.pp_table r.registry
