(** Cross-run reporting: one registry per protocol, rendered side by side.

    This is where the paper's cost hierarchy becomes visible as numbers:
    the comparison table puts tag bytes, control packets and the two hold
    times of every protocol class next to each other, so
    tagless ⊂ tagged ⊂ general reads straight off the columns. *)

type row = {
  label : string;  (** protocol name *)
  kind : string;  (** protocol class: tagless | tagged | general *)
  registry : Metrics.t;
}

val row : label:string -> kind:string -> Metrics.t -> row

val to_json : row list -> Jsonb.t
(** [{schema; rows: [{protocol; kind; metrics}]}] — the [BENCH_obs.json]
    / [mopc stats --json] format. *)

val pp_comparison : Format.formatter -> row list -> unit
(** Aligned table: one line per row, columns for the headline cost metrics
    (packets, tag bytes, control traffic, holds, pending depth). Metrics a
    registry does not contain print as 0. *)

val pp_registry : Format.formatter -> row -> unit
(** The full single-protocol dump: header line plus {!Metrics.pp_table}. *)
