type point = S | R

let point_equal a b =
  match (a, b) with S, S | R, R -> true | S, R | R, S -> false

let pp_point ppf = function
  | S -> Format.pp_print_string ppf "s"
  | R -> Format.pp_print_string ppf "r"

type t = { msg : int; point : point }

let send msg = { msg; point = S }
let deliver msg = { msg; point = R }

let equal a b = a.msg = b.msg && point_equal a.point b.point

let compare a b =
  match Int.compare a.msg b.msg with
  | 0 -> ( match (a.point, b.point) with
      | S, R -> -1
      | R, S -> 1
      | S, S | R, R -> 0)
  | c -> c

let encode e = (2 * e.msg) + match e.point with S -> 0 | R -> 1

let decode i =
  { msg = i / 2; point = (if i mod 2 = 0 then S else R) }

let pp ppf e = Format.fprintf ppf "x%d.%a" e.msg pp_point e.point

module Sys = struct
  type kind = Invoke | Send | Receive | Deliver

  type t = { msg : int; kind : kind }

  let kind_index = function
    | Invoke -> 0
    | Send -> 1
    | Receive -> 2
    | Deliver -> 3

  let kind_of_index = function
    | 0 -> Invoke
    | 1 -> Send
    | 2 -> Receive
    | 3 -> Deliver
    | _ -> invalid_arg "Event.Sys.kind_of_index"

  let equal a b = a.msg = b.msg && kind_index a.kind = kind_index b.kind

  let compare a b =
    match Int.compare a.msg b.msg with
    | 0 -> Int.compare (kind_index a.kind) (kind_index b.kind)
    | c -> c

  let encode e = (4 * e.msg) + kind_index e.kind

  let decode i = { msg = i / 4; kind = kind_of_index (i mod 4) }

  let is_user_visible e =
    match e.kind with Send | Deliver -> true | Invoke | Receive -> false

  let to_user e =
    match e.kind with
    | Send -> Some (e.msg, S)
    | Deliver -> Some (e.msg, R)
    | Invoke | Receive -> None

  let is_controllable = is_user_visible

  let pp ppf e =
    let suffix =
      match e.kind with
      | Invoke -> "s*"
      | Send -> "s"
      | Receive -> "r*"
      | Deliver -> "r"
    in
    Format.fprintf ppf "x%d.%s" e.msg suffix
end
