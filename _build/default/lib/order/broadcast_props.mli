(** Broadcast (multicast) ordering properties — the extension sketched in
    the paper's closing line ("the results in this paper can be extended
    to incorporate multicast messages").

    A broadcast appears in a run as a {e group} of point-to-point copies
    sharing an originator. The two guarantees of interest:

    - {e causal broadcast}: if the broadcast of [g] causally precedes the
      broadcast of [h], every process delivers its copy of [g] before its
      copy of [h]. This is the group lift of [X_co] and is still expressible
      per copy-pair by the causal forbidden predicate.
    - {e total order (atomic broadcast)}: all processes deliver their
      copies of any two groups in the same relative order, whether or not
      the broadcasts are causally related.

    Total order is {e not} expressible as a forbidden predicate over the
    happened-before relation alone: it constrains the {e agreement} between
    deliveries at different processes, and two symmetric runs (p delivers
    g then h, q delivers h then g — all four events pairwise concurrent)
    differ from their agreeing variants only in which copies pair up, not
    in any ▷ pattern a conjunction over ▷ could see. Hence this module
    checks it directly on runs; the corresponding protocol
    ({!Mo_protocol.Total_order} — a sequencer) is a general protocol, in
    line with the folklore that atomic broadcast requires more than
    tagging. *)

type grouping = {
  group_of : int -> int;  (** message id → broadcast group *)
}

type violation = {
  groups : int * int;
  procs : int * int;
  reason : string;
}

val check_total_order : Run.t -> grouping -> (unit, violation) result
(** Every pair of processes that both deliver copies of two groups
    delivers them in the same relative order. *)

val total_order : Run.t -> grouping -> bool

val check_causal_broadcast : Run.t -> grouping -> (unit, violation) result
(** If some send of group [g] happens-before some send of group [h], then
    no process delivers [h]'s copy before [g]'s copy. *)

val causal_broadcast : Run.t -> grouping -> bool

val delivery_order : Run.t -> grouping -> int -> int list
(** The sequence of groups as delivered at one process (groups without a
    copy for that process are absent). *)

val pp_violation : Format.formatter -> violation -> unit
