module E = Event.Sys

type t = {
  nprocs : int;
  msgs : (int * int) array;
  seq : E.t list array;
  present : Bitset.t; (* over 4 * nmsgs encoded events *)
  po : Poset.t; (* over 4 * nmsgs; edges only among present events *)
}

let proc_of_event msgs (e : E.t) =
  let src, dst = msgs.(e.msg) in
  match e.kind with
  | E.Invoke | E.Send -> src
  | E.Receive | E.Deliver -> dst

(* Well-formedness (§3.1): placement, request-before-execution on the same
   process, receive-only-if-sent, acyclicity. *)
let validate ~msgs seq =
  let nmsgs = Array.length msgs in
  let present = Bitset.create (4 * nmsgs) in
  let err = ref None in
  let set_err s = if !err = None then err := Some s in
  Array.iteri
    (fun p events ->
      List.iter
        (fun (e : E.t) ->
          if e.msg < 0 || e.msg >= nmsgs then
            set_err (Printf.sprintf "event of unknown message %d" e.msg)
          else begin
            if proc_of_event msgs e <> p then
              set_err
                (Format.asprintf "%a on process %d, expected %d" E.pp e p
                   (proc_of_event msgs e));
            let i = E.encode e in
            if Bitset.mem present i then
              set_err (Format.asprintf "duplicate event %a" E.pp e)
            else Bitset.add present i
          end)
        events)
    seq;
  (match !err with
  | Some _ -> ()
  | None ->
      (* request precedes execution, in the same process sequence *)
      Array.iter
        (fun events ->
          let seen = Hashtbl.create 16 in
          List.iter
            (fun (e : E.t) ->
              (match e.kind with
              | E.Send ->
                  if not (Hashtbl.mem seen (e.msg, E.Invoke)) then
                    set_err
                      (Printf.sprintf "x%d.s executed before x%d.s*" e.msg
                         e.msg)
              | E.Deliver ->
                  if not (Hashtbl.mem seen (e.msg, E.Receive)) then
                    set_err
                      (Printf.sprintf "x%d.r executed before x%d.r*" e.msg
                         e.msg)
              | E.Invoke | E.Receive -> ());
              Hashtbl.replace seen (e.msg, e.kind) ())
            events)
        seq;
      (* receive only if sent *)
      for m = 0 to nmsgs - 1 do
        if
          Bitset.mem present (E.encode { E.msg = m; kind = E.Receive })
          && not (Bitset.mem present (E.encode { E.msg = m; kind = E.Send }))
        then set_err (Printf.sprintf "x%d.r* present without x%d.s" m m)
      done);
  match !err with Some e -> Error e | None -> Ok present

let build_poset ~msgs seq =
  let nmsgs = Array.length msgs in
  let edges = ref [] in
  Array.iter
    (fun events ->
      let rec chain = function
        | a :: (b :: _ as rest) ->
            edges := (E.encode a, E.encode b) :: !edges;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain events)
    seq;
  (* message edge: x.s -> x.r* (condition 2 of the order definition) *)
  for m = 0 to nmsgs - 1 do
    edges :=
      ( E.encode { E.msg = m; kind = E.Send },
        E.encode { E.msg = m; kind = E.Receive } )
      :: !edges
  done;
  Poset.of_edges (4 * nmsgs) !edges

let of_sequences ~nprocs ~msgs seq =
  if Array.length seq <> nprocs then
    invalid_arg "Sys_run.of_sequences: sequence array length <> nprocs";
  match validate ~msgs seq with
  | Error e -> Error e
  | Ok present -> (
      match build_poset ~msgs seq with
      | None -> Error "sequences induce a cyclic order"
      | Some po -> Ok { nprocs; msgs; seq; present; po })

let nprocs t = t.nprocs

let nmsgs t = Array.length t.msgs

let msg_src t m = fst t.msgs.(m)

let msg_dst t m = snd t.msgs.(m)

let sequence t i =
  if i < 0 || i >= t.nprocs then invalid_arg "Sys_run.sequence";
  t.seq.(i)

let mem t e = Bitset.mem t.present (E.encode e)

let lt t a b =
  if not (mem t a && mem t b) then false
  else Poset.lt t.po (E.encode a) (E.encode b)

let is_complete t =
  let nmsgs = Array.length t.msgs in
  let ok = ref true in
  for m = 0 to nmsgs - 1 do
    List.iter
      (fun kind -> if not (mem t { E.msg = m; kind }) then ok := false)
      [ E.Invoke; E.Send; E.Receive; E.Deliver ]
  done;
  !ok

let rec list_is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | x :: a', y :: b' -> E.equal x y && list_is_prefix a' b'
  | _ :: _, [] -> false

let is_prefix g h =
  g.nprocs = h.nprocs
  && Array.length g.msgs = Array.length h.msgs
  &&
  let ok = ref true in
  for p = 0 to g.nprocs - 1 do
    if not (list_is_prefix g.seq.(p) h.seq.(p)) then ok := false
  done;
  !ok

let causal_past t i =
  if i < 0 || i >= t.nprocs then invalid_arg "Sys_run.causal_past";
  (* keep g on process j≠i iff some event of process i follows it *)
  let followed g =
    List.exists (fun h -> lt t g h) t.seq.(i)
  in
  let seq =
    Array.mapi
      (fun p events ->
        if p = i then events else List.filter followed events)
      t.seq
  in
  match of_sequences ~nprocs:t.nprocs ~msgs:t.msgs seq with
  | Ok g -> g
  | Error e ->
      (* the causal past of a run is always a run *)
      invalid_arg ("Sys_run.causal_past: internal: " ^ e)

let extend t p (e : E.t) =
  if p < 0 || p >= t.nprocs then invalid_arg "Sys_run.extend";
  let seq = Array.copy t.seq in
  seq.(p) <- seq.(p) @ [ e ];
  of_sequences ~nprocs:t.nprocs ~msgs:t.msgs seq

module Pending = struct
  let invokes t i =
    let acc = ref [] in
    Array.iteri
      (fun m (src, _) ->
        if src = i && not (mem t { E.msg = m; kind = E.Invoke }) then
          acc := { E.msg = m; E.kind = E.Invoke } :: !acc)
      t.msgs;
    List.rev !acc

  let sends t i =
    let acc = ref [] in
    Array.iteri
      (fun m (src, _) ->
        if
          src = i
          && mem t { E.msg = m; kind = E.Invoke }
          && not (mem t { E.msg = m; kind = E.Send })
        then acc := { E.msg = m; E.kind = E.Send } :: !acc)
      t.msgs;
    List.rev !acc

  let receives t i =
    let acc = ref [] in
    Array.iteri
      (fun m (_, dst) ->
        if
          dst = i
          && mem t { E.msg = m; kind = E.Send }
          && not (mem t { E.msg = m; kind = E.Receive })
        then acc := { E.msg = m; E.kind = E.Receive } :: !acc)
      t.msgs;
    List.rev !acc

  let deliveries t i =
    let acc = ref [] in
    Array.iteri
      (fun m (_, dst) ->
        if
          dst = i
          && mem t { E.msg = m; kind = E.Receive }
          && not (mem t { E.msg = m; kind = E.Deliver })
        then acc := { E.msg = m; E.kind = E.Deliver } :: !acc)
      t.msgs;
    List.rev !acc

  let controllable t i = sends t i @ deliveries t i

  let all_done t =
    let ok = ref true in
    for i = 0 to t.nprocs - 1 do
      if sends t i <> [] || receives t i <> [] || deliveries t i <> [] then
        ok := false
    done;
    !ok
end

let users_view t =
  if not (is_complete t) then
    Error "users_view: run is not complete (some message lacks events)"
  else
    let seq =
      Array.map
        (fun events ->
          List.filter_map
            (fun (e : E.t) ->
              match E.to_user e with
              | Some (msg, Event.S) -> Some (Event.send msg)
              | Some (msg, Event.R) -> Some (Event.deliver msg)
              | None -> None)
            events)
        t.seq
    in
    Run.of_sequences ~nprocs:t.nprocs ~msgs:t.msgs seq

module Lemma2 = struct
  (* request immediately precedes execution, in every process sequence *)
  let immediate t =
    let ok = ref true in
    Array.iter
      (fun events ->
        let rec scan = function
          | (a : E.t) :: ((b : E.t) :: _ as rest) ->
              (match a.kind with
              | E.Invoke ->
                  if not (b.msg = a.msg && b.kind = E.Send) then ok := false
              | E.Receive ->
                  if not (b.msg = a.msg && b.kind = E.Deliver) then
                    ok := false
              | E.Send | E.Deliver -> ());
              scan rest
          | [ (a : E.t) ] ->
              (match a.kind with
              | E.Invoke | E.Receive -> ok := false
              | E.Send | E.Deliver -> ());
              ()
          | [] -> ()
        in
        scan events)
      t.seq;
    !ok

  let all_requested_delivered t =
    let ok = ref true in
    for m = 0 to Array.length t.msgs - 1 do
      if
        mem t { E.msg = m; kind = E.Invoke }
        && not (mem t { E.msg = m; kind = E.Deliver })
      then ok := false
    done;
    !ok

  let in_tagless_set t = immediate t && all_requested_delivered t

  let causal_on_receives t =
    let nmsgs = Array.length t.msgs in
    let ok = ref true in
    for x = 0 to nmsgs - 1 do
      for y = 0 to nmsgs - 1 do
        if
          x <> y
          && lt t { E.msg = x; kind = E.Send } { E.msg = y; kind = E.Send }
          && lt t
               { E.msg = y; kind = E.Receive }
               { E.msg = x; kind = E.Receive }
        then ok := false
      done
    done;
    !ok

  let in_tagged_set t = in_tagless_set t && causal_on_receives t

  (* numbering N with vertical arrows exists iff the block message graph is
     acyclic: x -> y when some event of x precedes some event of y *)
  let vertical_numbering_exists t =
    let nmsgs = Array.length t.msgs in
    let succ = Array.make nmsgs [] in
    let kinds = [ E.Invoke; E.Send; E.Receive; E.Deliver ] in
    for x = 0 to nmsgs - 1 do
      for y = 0 to nmsgs - 1 do
        if x <> y then
          let precedes =
            List.exists
              (fun ka ->
                List.exists
                  (fun kb ->
                    lt t { E.msg = x; kind = ka } { E.msg = y; kind = kb })
                  kinds)
              kinds
          in
          if precedes then succ.(x) <- y :: succ.(x)
      done
    done;
    let indeg = Array.make nmsgs 0 in
    Array.iter (List.iter (fun y -> indeg.(y) <- indeg.(y) + 1)) succ;
    let queue = Queue.create () in
    for x = 0 to nmsgs - 1 do
      if indeg.(x) = 0 then Queue.add x queue
    done;
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      incr seen;
      List.iter
        (fun y ->
          indeg.(y) <- indeg.(y) - 1;
          if indeg.(y) = 0 then Queue.add y queue)
        succ.(x)
    done;
    !seen = nmsgs

  let in_general_set t = in_tagged_set t && vertical_numbering_exists t
end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun p events ->
      Format.fprintf ppf "P%d: @[<h>%a@]@ " p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           E.pp)
        events)
    t.seq;
  Format.fprintf ppf "@]"
