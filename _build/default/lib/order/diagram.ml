let pad width s =
  if String.length s >= width then s
  else s ^ String.make (width - String.length s) ' '

let render_rows ~nprocs ~column ~ncols ~label ~proc_of events ~arrows =
  let width =
    List.fold_left (fun w e -> max w (String.length (label e) + 1)) 4 events
  in
  let grid = Array.make_matrix nprocs ncols "" in
  List.iter (fun e -> grid.(proc_of e).(column e) <- label e) events;
  let buf = Buffer.create 256 in
  for p = 0 to nprocs - 1 do
    Buffer.add_string buf (Printf.sprintf "P%-2d|" p);
    for c = 0 to ncols - 1 do
      Buffer.add_string buf (pad width (if grid.(p).(c) = "" then "." else grid.(p).(c)))
    done;
    Buffer.add_char buf '\n'
  done;
  List.iter (fun line -> Buffer.add_string buf (line ^ "\n")) arrows;
  Buffer.contents buf

let render_run r =
  let nprocs = Run.nprocs r in
  let events =
    List.concat (List.init nprocs (fun p -> Run.sequence r p))
  in
  (* columns from a topological order of all events *)
  let order =
    (* rebuild the poset indirectly: linearize by repeatedly taking an
       event all of whose predecessors are placed *)
    let placed = Hashtbl.create 16 in
    let col = Hashtbl.create 16 in
    let remaining = ref events in
    let next_col = ref 0 in
    while !remaining <> [] do
      let ready, blocked =
        List.partition
          (fun e ->
            List.for_all
              (fun e' ->
                (not (Run.lt r e' e)) || Hashtbl.mem placed (Event.encode e'))
              events)
          !remaining
      in
      (match ready with
      | [] ->
          (* cannot happen in a valid run; avoid a loop regardless *)
          List.iter
            (fun e ->
              Hashtbl.replace placed (Event.encode e) ();
              Hashtbl.replace col (Event.encode e) !next_col;
              incr next_col)
            blocked;
          remaining := []
      | _ ->
          List.iter
            (fun e ->
              Hashtbl.replace placed (Event.encode e) ();
              Hashtbl.replace col (Event.encode e) !next_col;
              incr next_col)
            ready;
          remaining := blocked)
    done;
    fun e -> Hashtbl.find col (Event.encode e)
  in
  let label (e : Event.t) =
    Format.asprintf "%a%d"
      (fun ppf -> function Event.S -> Format.pp_print_string ppf "s"
        | Event.R -> Format.pp_print_string ppf "r")
      e.point e.msg
  in
  let proc_of (e : Event.t) =
    match e.point with
    | Event.S -> Run.msg_src r e.msg
    | Event.R -> Run.msg_dst r e.msg
  in
  let arrows =
    List.init (Run.nmsgs r) (fun m ->
        Printf.sprintf "  x%d: P%d -> P%d" m (Run.msg_src r m)
          (Run.msg_dst r m))
  in
  render_rows ~nprocs ~column:order ~ncols:(List.length events) ~label
    ~proc_of events ~arrows

let render_sys_run r =
  let module E = Event.Sys in
  let nprocs = Sys_run.nprocs r in
  let events =
    List.concat (List.init nprocs (fun p -> Sys_run.sequence r p))
  in
  let placed = Hashtbl.create 16 in
  let col = Hashtbl.create 16 in
  let next_col = ref 0 in
  let remaining = ref events in
  while !remaining <> [] do
    let ready, blocked =
      List.partition
        (fun e ->
          List.for_all
            (fun e' ->
              (not (Sys_run.lt r e' e)) || Hashtbl.mem placed (E.encode e'))
            events)
        !remaining
    in
    match ready with
    | [] ->
        List.iter
          (fun e ->
            Hashtbl.replace placed (E.encode e) ();
            Hashtbl.replace col (E.encode e) !next_col;
            incr next_col)
          blocked;
        remaining := []
    | _ ->
        List.iter
          (fun e ->
            Hashtbl.replace placed (E.encode e) ();
            Hashtbl.replace col (E.encode e) !next_col;
            incr next_col)
          ready;
        remaining := blocked
  done;
  let column e = Hashtbl.find col (E.encode e) in
  let label (e : E.t) =
    match e.kind with
    | E.Invoke -> Printf.sprintf "s%d*" e.msg
    | E.Send -> Printf.sprintf "s%d" e.msg
    | E.Receive -> Printf.sprintf "r%d*" e.msg
    | E.Deliver -> Printf.sprintf "r%d" e.msg
  in
  let proc_of (e : E.t) =
    match e.kind with
    | E.Invoke | E.Send -> Sys_run.msg_src r e.msg
    | E.Receive | E.Deliver -> Sys_run.msg_dst r e.msg
  in
  let arrows =
    List.init (Sys_run.nmsgs r) (fun m ->
        Printf.sprintf "  x%d: P%d -> P%d" m (Sys_run.msg_src r m)
          (Sys_run.msg_dst r m))
  in
  render_rows ~nprocs ~column ~ncols:(List.length events) ~label ~proc_of
    events ~arrows

let render_abstract a =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "abstract run over %d messages; cover relation:\n"
       (Run.Abstract.nmsgs a));
  List.iter
    (fun (h, g) ->
      Buffer.add_string buf
        (Format.asprintf "  %a -> %a\n" Event.pp (Event.decode h) Event.pp
           (Event.decode g)))
    (Poset.covers (Run.Abstract.poset a));
  Buffer.contents buf
