(** Matrix clocks, as used by the Raynal–Schiper–Toueg causal-ordering
    protocol [20] cited in §2 of the paper.

    Entry [(j, k)] records the holder's knowledge of how many messages
    process [j] has sent to process [k]. The paper's observation that no
    higher-dimensional tagging can restrict ordering further is Theorem 1;
    the matrix is the maximal useful tag. *)

type t

val create : int -> t
(** Zero matrix for [n] processes. *)

val size : t -> int

val get : t -> int -> int -> int

val record_send : t -> src:int -> dst:int -> t
(** Increment entry [(src, dst)]. Persistent. *)

val merge : t -> t -> t
(** Entrywise maximum. *)

val leq : t -> t -> bool

val equal : t -> t -> bool

val row : t -> int -> int array

val pp : Format.formatter -> t -> unit
