lib/order/run.ml: Array Event Format List Poset Printf
