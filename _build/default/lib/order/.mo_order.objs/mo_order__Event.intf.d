lib/order/event.mli: Format
