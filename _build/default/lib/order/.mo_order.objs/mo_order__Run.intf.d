lib/order/run.mli: Event Format Poset
