lib/order/diagram.ml: Array Buffer Event Format Hashtbl List Poset Printf Run String Sys_run
