lib/order/vclock.ml: Array Format Stdlib
