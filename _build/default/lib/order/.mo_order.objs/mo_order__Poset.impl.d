lib/order/poset.ml: Array Bitset Format Fun Hashtbl List Option Queue
