lib/order/poset.mli: Bitset Format
