lib/order/vclock.mli: Format
