lib/order/diagram.mli: Run Sys_run
