lib/order/bitset.mli: Format
