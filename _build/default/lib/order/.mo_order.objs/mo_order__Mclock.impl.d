lib/order/mclock.ml: Array Format
