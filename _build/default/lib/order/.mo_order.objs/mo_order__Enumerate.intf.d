lib/order/enumerate.mli: Run
