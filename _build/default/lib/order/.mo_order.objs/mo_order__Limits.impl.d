lib/order/limits.ml: Array Event Format List Printf Queue Result Run
