lib/order/limits.mli: Format Run
