lib/order/broadcast_props.ml: Array Event Format Hashtbl List Printf Result Run
