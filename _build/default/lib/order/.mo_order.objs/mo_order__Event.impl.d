lib/order/event.ml: Format Int
