lib/order/mclock.mli: Format
