lib/order/online.mli: Run
