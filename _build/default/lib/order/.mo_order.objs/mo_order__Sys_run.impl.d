lib/order/sys_run.ml: Array Bitset Event Format Hashtbl List Poset Printf Queue Run
