lib/order/online.ml: Array Bitset Event Fun Hashtbl List Option Queue Run
