lib/order/broadcast_props.mli: Format Run
