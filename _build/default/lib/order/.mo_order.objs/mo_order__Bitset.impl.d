lib/order/bitset.ml: Array Bytes Char Format List Printf
