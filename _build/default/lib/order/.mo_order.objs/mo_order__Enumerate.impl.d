lib/order/enumerate.ml: Array Event Fun List Run
