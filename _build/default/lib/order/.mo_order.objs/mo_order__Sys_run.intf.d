lib/order/sys_run.mli: Event Format Run
