type grouping = { group_of : int -> int }

type violation = {
  groups : int * int;
  procs : int * int;
  reason : string;
}

let delivery_order run g p =
  List.filter_map
    (fun (e : Event.t) ->
      match e.point with
      | Event.R -> Some (g.group_of e.msg)
      | Event.S -> None)
    (Run.sequence run p)

(* position of each group in a process's delivery sequence *)
let positions run g p =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i grp -> if not (Hashtbl.mem tbl grp) then Hashtbl.replace tbl grp i)
    (delivery_order run g p);
  tbl

let check_total_order run g =
  let n = Run.nprocs run in
  let pos = Array.init n (positions run g) in
  let result = ref (Ok ()) in
  (try
     for p = 0 to n - 1 do
       for q = p + 1 to n - 1 do
         Hashtbl.iter
           (fun g1 i1 ->
             Hashtbl.iter
               (fun g2 i2 ->
                 if g1 < g2 then
                   match
                     ( Hashtbl.find_opt pos.(q) g1,
                       Hashtbl.find_opt pos.(q) g2 )
                   with
                   | Some j1, Some j2 ->
                       if compare i1 i2 <> compare j1 j2 then begin
                         result :=
                           Error
                             {
                               groups = (g1, g2);
                               procs = (p, q);
                               reason =
                                 Printf.sprintf
                                   "P%d delivers group %d %s group %d, P%d \
                                    the other way around"
                                   p g1
                                   (if i1 < i2 then "before" else "after")
                                   g2 q;
                             };
                         raise Exit
                       end
                   | _ -> ())
               pos.(p))
           pos.(p)
       done
     done
   with Exit -> ());
  !result

let total_order run g = Result.is_ok (check_total_order run g)

let check_causal_broadcast run g =
  let nmsgs = Run.nmsgs run in
  (* group g1 causally precedes g2 when some send of g1 happens-before
     some send of g2 *)
  let result = ref (Ok ()) in
  (try
     for m1 = 0 to nmsgs - 1 do
       for m2 = 0 to nmsgs - 1 do
         let g1 = g.group_of m1 and g2 = g.group_of m2 in
         if g1 <> g2 && Run.lt run (Event.send m1) (Event.send m2) then
           (* every process delivering copies of both must deliver g1
              first *)
           for p = 0 to Run.nprocs run - 1 do
             let pos = positions run g p in
             match (Hashtbl.find_opt pos g1, Hashtbl.find_opt pos g2) with
             | Some i1, Some i2 when i2 < i1 ->
                 result :=
                   Error
                     {
                       groups = (g1, g2);
                       procs = (p, p);
                       reason =
                         Printf.sprintf
                           "broadcast %d causally precedes %d but P%d \
                            delivers %d first"
                           g1 g2 p g2;
                     };
                 raise Exit
             | _ -> ()
           done
       done
     done
   with Exit -> ());
  !result

let causal_broadcast run g = Result.is_ok (check_causal_broadcast run g)

let pp_violation ppf v = Format.pp_print_string ppf v.reason
