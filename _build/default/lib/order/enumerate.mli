(** Exhaustive enumeration of small concrete runs.

    Used as a model checker: the theorems of the paper quantify over all
    runs, and for small universes (≤ 3 processes, ≤ 3 messages) we can check
    them against {e every} run rather than samples. A concrete run is
    determined by the per-process orderings of its events, subject to global
    acyclicity, so enumeration is a filtered product of permutations. *)

val permutations : 'a list -> 'a list list

val runs : nprocs:int -> msgs:(int * int) array -> Run.t list
(** All complete runs over exactly the given message set. Two runs are
    distinct iff some process executes its events in a different order. *)

val count_runs : nprocs:int -> msgs:(int * int) array -> int

val configs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> (int * int) array list
(** All assignments of sources and destinations to [nmsgs] messages.
    Self-addressed messages (src = dst) are excluded unless
    [allow_self:true]: the paper's message sets [M_ij] implicitly connect
    distinct processes, and its Lemma 3 equivalences fail when a process
    may message itself (see DESIGN.md, "Model subtleties"). *)

val all_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.t list
(** [runs] over every configuration of [configs]. Exponential; intended for
    [nprocs ≤ 3], [nmsgs ≤ 3]. *)

val abstract_runs :
  ?allow_self:bool -> nprocs:int -> nmsgs:int -> unit -> Run.Abstract.t list
(** The abstract projections of {!all_runs} (duplicates not removed). *)
