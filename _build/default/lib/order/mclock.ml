type t = { n : int; m : int array } (* row-major n×n *)

let create n =
  if n <= 0 then invalid_arg "Mclock.create";
  { n; m = Array.make (n * n) 0 }

let size t = t.n

let idx t j k =
  if j < 0 || j >= t.n || k < 0 || k >= t.n then invalid_arg "Mclock: index";
  (j * t.n) + k

let get t j k = t.m.(idx t j k)

let record_send t ~src ~dst =
  let m = Array.copy t.m in
  let i = idx t src dst in
  m.(i) <- m.(i) + 1;
  { t with m }

let merge a b =
  if a.n <> b.n then invalid_arg "Mclock.merge";
  { a with m = Array.init (Array.length a.m) (fun i -> max a.m.(i) b.m.(i)) }

let leq a b =
  a.n = b.n
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.m.(i) then ok := false) a.m;
  !ok

let equal a b = a.n = b.n && a.m = b.m

let row t j = Array.init t.n (fun k -> get t j k)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for j = 0 to t.n - 1 do
    Format.fprintf ppf "|%a|@ "
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Format.pp_print_int)
      (Array.to_list (row t j))
  done;
  Format.fprintf ppf "@]"
