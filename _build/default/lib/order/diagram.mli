(** ASCII space-time diagrams.

    Renders runs in the style of the paper's figures: one row per process,
    time flowing left to right, events placed at columns of a linear
    extension, message arrows listed beneath. Used by the bench harness to
    re-render Figures 1–5 and by the examples. *)

val render_run : Run.t -> string
(** User-view run: events shown as [s3] / [r3]. *)

val render_sys_run : Sys_run.t -> string
(** System-view run: events shown as [s3*] / [s3] / [r3*] / [r3]. *)

val render_abstract : Run.Abstract.t -> string
(** Abstract run: one row per message listing its causal constraints
    (cover edges of the poset); there is no process axis to draw. *)
