(** System-view runs (§3.1): decomposed posets over the four events of each
    message — invoke [x.s*], send [x.s], receive [x.r*], delivery [x.r] —
    arranged in per-process sequences.

    A system run may be {e partial}: any prefix of a run is a run. The three
    well-formedness conditions of §3.1 are enforced at construction:
    the induced order is a partial order; a receive appears only if the send
    has; and executions are preceded by their requests.

    This module also implements:
    - {!causal_past}: the prefix [CausalPast_i(H)] of Figure 1;
    - the pending-event sets [I_i], [S_i], [R_i], [D_i] of §3.1;
    - {!users_view}: the projection of §3.3 onto send/delivery events;
    - membership in the Lemma 2 sets [X_tl ⊆ X_td ⊆ X_gn] — the runs that
      {e any} live tagless / tagged / general protocol must admit. *)

type t

val of_sequences :
  nprocs:int ->
  msgs:(int * int) array ->
  Event.Sys.t list array ->
  (t, string) result
(** [msgs.(i)] is [(src, dst)]; invoke/send events of message [i] must lie
    on [src], receive/delivery events on [dst], with [x.s*] before [x.s] and
    [x.r*] before [x.r] in process order and no receive without a send. *)

val nprocs : t -> int

val nmsgs : t -> int
(** The size of the message universe [M]; not all messages need have events
    in a partial run. *)

val msg_src : t -> int -> int

val msg_dst : t -> int -> int

val sequence : t -> int -> Event.Sys.t list

val mem : t -> Event.Sys.t -> bool
(** Has this event been executed? *)

val lt : t -> Event.Sys.t -> Event.Sys.t -> bool
(** Happened-before among executed events. *)

val is_complete : t -> bool
(** Every message of the universe has all four events executed. *)

val is_prefix : t -> t -> bool
(** [is_prefix g h]: every process sequence of [g] is a prefix of the
    corresponding sequence of [h] (same universe). *)

val causal_past : t -> int -> t
(** [causal_past h i] is [CausalPast_i(h)]: process [i]'s own sequence plus,
    on every other process, exactly the events followed by some event of
    process [i]. *)

val extend : t -> int -> Event.Sys.t -> (t, string) result
(** [extend h p e] appends event [e] to process [p]'s sequence, checking the
    run conditions. This is the single-step transition of the inductive
    definition of [X_P] in §3.2. *)

(** The pending-event sets of §3.1, per process. *)
module Pending : sig
  val invokes : t -> int -> Event.Sys.t list
  (** [I_i(H)]: invoke events not yet requested by process [i]. *)

  val sends : t -> int -> Event.Sys.t list
  (** [S_i(H)]: requested but not yet sent. *)

  val receives : t -> int -> Event.Sys.t list
  (** [R_i(H)]: sent to [i] but not yet received. *)

  val deliveries : t -> int -> Event.Sys.t list
  (** [D_i(H)]: received but not yet delivered. *)

  val controllable : t -> int -> Event.Sys.t list
  (** [C_i(H) = S_i(H) ∪ D_i(H)]. *)

  val all_done : t -> bool
  (** [S ∪ R ∪ D = ∅]: nothing pending anywhere (liveness target). *)
end

val users_view : t -> (Run.t, string) result
(** The projection of §3.3. Defined on complete runs (so that the result is
    a complete user-view run); returns [Error] otherwise. *)

(** Membership in the Lemma 2 limit sets over complete system runs. *)
module Lemma2 : sig
  val in_tagless_set : t -> bool
  (** [X_tl] (the paper's X_ℓ): requests immediately precede executions, and
      every requested message was delivered. Any live tagless protocol
      admits every such run. *)

  val in_tagged_set : t -> bool
  (** [X_td]: additionally, messages are causally ordered
      — [x.s → y.s] implies that [y.r✱ → x.r✱] does not hold. *)

  val in_general_set : t -> bool
  (** [X_gn]: additionally, a numbering [N] with vertical message arrows
      exists (block message graph acyclic). *)
end

val pp : Format.formatter -> t -> unit
