(** Events of a run, in the user's view and in the system's view.

    The paper (§3.1) breaks each user event into a request and an execution:
    a message [x] consists of the four system events invoke [x.s*], send
    [x.s], receive [x.r*] and delivery [x.r]. The user's view (§3.3) keeps
    only send and delivery.

    Events are identified by the message index they belong to plus their
    kind, and carry a canonical integer encoding so they can index
    {!Poset} universes: user-view event [e] of message [m] is
    [2*m + (0|1)]; system-view event is [4*m + (0..3)]. *)

type point = S | R
(** The two user-visible endpoints of a message: its send ([S]) and its
    delivery ([R]). The paper writes them [x.s] and [x.r]. *)

val point_equal : point -> point -> bool
val pp_point : Format.formatter -> point -> unit

type t = { msg : int; point : point }
(** A user-view event: endpoint [point] of message [msg]. *)

val send : int -> t
val deliver : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val encode : t -> int
(** [encode e] = [2 * e.msg + (if e.point = S then 0 else 1)]. *)

val decode : int -> t

val pp : Format.formatter -> t -> unit
(** Prints as ["x3.s"] / ["x3.r"]. *)

(** System-view events (§3.1): the four events of a message. *)
module Sys : sig
  type kind = Invoke | Send | Receive | Deliver
  (** [Invoke] is [x.s*], [Send] is [x.s], [Receive] is [x.r*], [Deliver]
      is [x.r]. *)

  type t = { msg : int; kind : kind }

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val encode : t -> int
  (** [4 * msg + (0..3)] in the order invoke, send, receive, deliver. *)

  val decode : int -> t

  val is_user_visible : t -> bool
  (** Send and delivery events survive the {e UsersView} projection. *)

  val to_user : t -> (int * point) option
  (** The user-view event this system event projects to, if any. *)

  val is_controllable : t -> bool
  (** Send and delivery events may be delayed by a protocol (they populate
      the sets [S_i] and [D_i] of §3.1); invoke and receive may not. *)

  val pp : Format.formatter -> t -> unit
  (** Prints as ["x3.s*"], ["x3.s"], ["x3.r*"], ["x3.r"]. *)
end
